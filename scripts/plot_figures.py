#!/usr/bin/env python3
"""Plot the paper's figures from bench CSV output.

Usage:
    mkdir -p out
    ./build/bench/bench_fig8_synthetic_latency csv_dir=out
    ./build/bench/bench_fig9_synthetic_ed2    csv_dir=out
    ./build/bench/bench_fig10_app_latency     csv_dir=out
    ./build/bench/bench_fig11_app_ed2         csv_dir=out
    python3 scripts/plot_figures.py out

Writes one PNG per CSV next to it. Requires matplotlib; the C++
benches themselves have no plotting dependency.
"""

import csv
import math
import sys
from pathlib import Path

try:
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt
except ImportError:  # pragma: no cover
    sys.exit("matplotlib is required: pip install matplotlib")

ARCH_STYLE = {
    "NonSpec": dict(color="#666666", marker="s"),
    "Spec-Fast": dict(color="#d62728", marker="^"),
    "Spec-Accurate": dict(color="#1f77b4", marker="v"),
    "NoX": dict(color="#2ca02c", marker="o"),
}


def read_table(path):
    with open(path, newline="") as fh:
        rows = list(csv.reader(fh))
    return rows[0], rows[1:]


def numeric(cell):
    try:
        return float(cell)
    except ValueError:
        return math.nan


def plot_sweep(path, ylabel, logy):
    """Figures 8/9: x = MB/s/node, one line per architecture."""
    header, rows = read_table(path)
    xs = [numeric(r[0]) for r in rows]
    fig, ax = plt.subplots(figsize=(5.2, 3.6))
    for col in range(1, len(header)):
        ys = [numeric(r[col]) for r in rows]
        style = ARCH_STYLE.get(header[col], {})
        ax.plot(xs, ys, label=header[col], markersize=4, **style)
    ax.set_xlabel("injection bandwidth [MB/s/node]")
    ax.set_ylabel(ylabel)
    if logy:
        ax.set_yscale("log")
    ax.set_title(path.stem.replace("_", " "))
    ax.grid(True, alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = path.with_suffix(".png")
    fig.savefig(out, dpi=150)
    plt.close(fig)
    print(f"wrote {out}")


def plot_bars(path, value_cols, ylabel):
    """Figures 10/11: grouped bars per workload."""
    header, rows = read_table(path)
    workloads = [r[0] for r in rows]
    fig, ax = plt.subplots(figsize=(7.0, 3.6))
    n = len(value_cols)
    width = 0.8 / n
    for i, col in enumerate(value_cols):
        ci = header.index(col)
        ys = [numeric(r[ci]) for r in rows]
        xs = [k + (i - n / 2 + 0.5) * width for k in range(len(rows))]
        label = col.replace(" ED2", "")
        style = ARCH_STYLE.get(label, {})
        ax.bar(xs, ys, width=width, label=label,
               color=style.get("color"))
    ax.set_xticks(range(len(workloads)))
    ax.set_xticklabels(workloads, rotation=30, ha="right", fontsize=8)
    ax.set_ylabel(ylabel)
    ax.set_title(path.stem.replace("_", " "))
    ax.grid(True, axis="y", alpha=0.3)
    ax.legend(fontsize=8)
    fig.tight_layout()
    out = path.with_suffix(".png")
    fig.savefig(out, dpi=150)
    plt.close(fig)
    print(f"wrote {out}")


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    directory = Path(sys.argv[1])
    if not directory.is_dir():
        sys.exit(f"not a directory: {directory}")

    for path in sorted(directory.glob("*.csv")):
        header, _ = read_table(path)
        if path.stem.startswith("fig8_"):
            plot_sweep(path, "average latency [ns]", logy=True)
        elif path.stem.startswith("fig9_"):
            plot_sweep(path, "energy-delay$^2$ [pJ·ns$^2$]", logy=True)
        elif path.stem.startswith("fig10_"):
            archs = [h for h in header if h in ARCH_STYLE]
            plot_bars(path, archs, "network latency [ns]")
        elif path.stem.startswith("fig11_"):
            eds = [h for h in header if h.endswith(" ED2")]
            plot_bars(path, eds, "ED$^2$ [pJ·ns$^2$]")
        else:
            print(f"skipping {path} (no plot rule)")


if __name__ == "__main__":
    main()
