#!/usr/bin/env python3
"""Compare a bench perf_json run against a committed baseline.

Fails (exit 1) when any record's cycles_per_s regressed by more than
the tolerance versus the matching baseline label, when a baseline
label is missing from the current run, or when the current run has
labels the baseline has never seen (a stale baseline silently
exempts new rows from the gate — regenerate it instead). Speedups
are reported but never fail the gate.

Usage:
  scripts/check_perf_regression.py \
      --baseline bench/baselines/BENCH_throughput.json \
      --current bench-out/throughput.json [--tolerance 0.10]

The committed baseline is seeded on one reference machine; across
machines of different speed, either regenerate the baseline or loosen
--tolerance. CI runs the gate with the default 10%. Each perf JSON
carries the producing host's fingerprint (CPU model, core count,
cpufreq governor); the gate prints a loud warning when baseline and
current fingerprints differ, since a "regression" on different iron
is usually just the iron.
"""

import argparse
import json
import sys


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    records = {}
    for rec in doc.get("records", []):
        if "label" not in rec:
            sys.exit(f"error: record without a label in {path}")
        records[rec["label"]] = rec
    if not records:
        sys.exit(f"error: no records in {path}")
    return doc.get("bench", "?"), records, doc.get("host")


def describe_host(host):
    if not host:
        return "(not recorded)"
    return (f"{host.get('cpu', 'unknown')}, "
            f"{host.get('cores', '?')} core(s), "
            f"governor {host.get('governor', 'unknown')}")


def check_host(base_host, cur_host):
    """Warn loudly when baseline and current run disagree on the host.

    Cross-host numbers are not comparable at a 10% tolerance, but a
    different machine is a legitimate situation (regenerate or loosen
    --tolerance per the module docstring), so this warns rather than
    fails.
    """
    if base_host == cur_host:
        return
    print("=" * 64, file=sys.stderr)
    print("WARNING: baseline and current run come from different "
          "hosts:", file=sys.stderr)
    print(f"  baseline: {describe_host(base_host)}", file=sys.stderr)
    print(f"  current:  {describe_host(cur_host)}", file=sys.stderr)
    print("  cycles/s is machine-dependent; a failure below may be "
          "the host,\n  not a regression. Regenerate the baseline on "
          "this machine or\n  loosen --tolerance.", file=sys.stderr)
    print("=" * 64, file=sys.stderr)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="max allowed fractional slowdown (default 0.10)")
    args = ap.parse_args()

    base_name, base, base_host = load_records(args.baseline)
    cur_name, cur, cur_host = load_records(args.current)
    if base_name != cur_name:
        sys.exit(f"error: bench mismatch: baseline is '{base_name}', "
                 f"current is '{cur_name}'")
    check_host(base_host, cur_host)

    failures = []
    print(f"{'label':<28} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for label, brec in sorted(base.items()):
        crec = cur.get(label)
        if crec is None:
            failures.append(f"{label}: missing from current run")
            continue
        bcps = brec.get("cycles_per_s", 0.0)
        ccps = crec.get("cycles_per_s", 0.0)
        if bcps <= 0.0 or ccps <= 0.0:
            failures.append(f"{label}: non-positive cycles_per_s")
            continue
        ratio = ccps / bcps
        flag = ""
        if ratio < 1.0 - args.tolerance:
            failures.append(
                f"{label}: {ccps:.0f} cycles/s is "
                f"{(1.0 - ratio) * 100.0:.1f}% below baseline "
                f"{bcps:.0f} (tolerance {args.tolerance * 100.0:.0f}%)")
            flag = "  <-- REGRESSION"
        print(f"{label:<28} {bcps:>12.0f} {ccps:>12.0f} "
              f"{ratio:>8.3f}{flag}")
    # A row the baseline has never seen cannot be gated at all, so a
    # stale baseline would let regressions in new benches through
    # silently. That is a hard failure with a fix-it, not a footnote.
    unbaselined = sorted(set(cur) - set(base))
    for label in unbaselined:
        print(f"{label:<28} {'(no baseline)':>12} "
              f"{cur[label].get('cycles_per_s', 0.0):>12.0f}")
        failures.append(f"{label}: present in the current run but "
                        f"missing from the baseline")

    if failures:
        print(f"\nFAIL: {len(failures)} perf gate failure(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        if unbaselined:
            print(f"\n{len(unbaselined)} label(s) have no baseline "
                  f"entry. Regenerate the committed baseline on the "
                  f"reference machine and commit it, e.g.:\n"
                  f"  <bench> perf_json={args.baseline}",
                  file=sys.stderr)
        return 1
    print(f"\nOK: all {len(base)} labels within "
          f"{args.tolerance * 100.0:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
