#!/usr/bin/env bash
# Reproduce everything: build, test, and regenerate every paper
# table/figure (writing test_output.txt and bench_output.txt).
#
#   scripts/run_all.sh            # full default sweeps (slow)
#   QUICK=1 scripts/run_all.sh    # the shipped recorded settings
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

SWEEP=()
if [ "${QUICK:-0}" = "1" ]; then
    SWEEP=(warmup=6000 measure=16000 drain_limit=70000)
fi

# Host-performance benches: machine-readable PerfRecord JSON lands in
# perf/ for comparison against bench/baselines/ with
# scripts/check_perf_regression.py.
mkdir -p perf

{
    for spec in \
        "bench_table2_clock_periods" \
        "bench_table3_area" \
        "bench_fig8_synthetic_latency ${SWEEP[*]:-}" \
        "bench_fig9_synthetic_ed2 ${SWEEP[*]:-}" \
        "bench_fig10_app_latency" \
        "bench_fig11_app_ed2" \
        "bench_fig12_power_breakdown" \
        "bench_nox_anatomy" \
        "bench_ablation" \
        "bench_cmesh_radix" \
        "bench_vc_vs_physical" \
        "bench_micro_components" \
        "bench_sched_speedup perf_json=perf/sched_speedup.json" \
        "bench_obs_overhead perf_json=perf/obs_overhead.json" \
        "bench_throughput perf_json=perf/throughput.json"; do
        echo "===================================================="
        echo "== build/bench/$spec"
        echo "===================================================="
        # shellcheck disable=SC2086
        ./build/bench/$spec
        echo
    done

    # Telemetry/profiler smoke: a short instrumented run whose JSONL
    # artifacts land in perf/ next to the perf records (live heartbeat
    # plus the phase/router profile trace_tool profile consumes).
    echo "===================================================="
    echo "== build/tools/noxsim (telemetry + profile smoke)"
    echo "===================================================="
    ./build/tools/noxsim warmup=2000 measure=20000 \
        telemetry_interval=5000 \
        telemetry_file=perf/telemetry_smoke.json \
        profile_file=perf/profile_smoke.json
    ./build/tools/trace_tool profile in=perf/profile_smoke.json
    echo
} 2>&1 | tee bench_output.txt
