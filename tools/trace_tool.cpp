/**
 * @file
 * trace_tool — inspect, generate, filter and summarize packet traces,
 * and analyze flight-recorder dumps.
 *
 *   trace_tool gen workload=barnes out=barnes.trace [horizon_ns=N]
 *   trace_tool info in=barnes.trace
 *   trace_tool filter in=a.trace out=b.trace [network=0] [src=N]
 *                     [dst=N] [from_ns=X] [to_ns=Y]
 *   trace_tool histogram in=a.trace [bins=20]
 *   trace_tool analyze in=flight.jsonl [topk=10]
 *   trace_tool snapshot-info in=checkpoint.snap
 *   trace_tool diff a=ledgerA.jsonl b=ledgerB.jsonl
 *   trace_tool bisect a=ledgerA.jsonl b=ledgerB.jsonl
 *                     snap_a=ckptA.snap snap_b=ckptB.snap
 *                     <synthetic key=value...> [a_<key>=V] [b_<key>=V]
 *
 * `analyze` reads a flight-recorder JSONL dump (produced on a drain
 * timeout, an age-limit alarm, or `trace_flight_on_exit=true`),
 * reconstructs per-packet timelines offline, cross-checks each
 * reconstructed latency against the latency the simulator reported
 * online (exits nonzero on any mismatch), and prints the top-K
 * slowest packets with their critical hop and dominant stall cause.
 *
 * `snapshot-info` frame-validates a checkpoint written by
 * noxsim/nettest (magic, version, per-section CRC-32C) and prints its
 * identity card — producing tool, capture cycle, configuration
 * fingerprint, section inventory — without constructing a simulator.
 * Exits nonzero with a structured reason on any corruption.
 *
 * `diff` compares two digest ledgers (digest_file= runs) stride by
 * stride and reports the first divergent stride's cycle plus the
 * exact set of differing components. Exit 0 = identical, 1 =
 * diverged, fatal on unreadable/incomparable ledgers.
 *
 * `bisect` narrows a coarse-stride ledger divergence to the exact
 * cycle and component: it restores both runs from their last agreeing
 * checkpoints and re-steps them in lockstep, capturing a digest every
 * cycle (digest_interval=1 in effect) until the first differing
 * stride. The shared synthetic keys (arch, pattern, rate_mbps, seed,
 * warmup, measure, ...) are exactly noxsim's; per-side differences
 * (e.g. the scheduling kernel or a deliberate perturb_cycle) are
 * expressed with `a_`/`b_`-prefixed overrides. Checkpoint, resume and
 * digest-ledger keys are neutralized in the re-run so a bisection can
 * never clobber the artifacts it is reading. When the re-run config
 * carries a flight recorder (trace=true trace_flight_file=...), the
 * ring is dumped with reason "digest-divergence" at the divergent
 * cycle, implicating the differing components.
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "coherence/trace_generator.hpp"
#include "common/config.hpp"
#include "common/log.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/sim_runner.hpp"
#include "obs/digest.hpp"
#include "obs/flight_analysis.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_recorder.hpp"
#include "snapshot/file.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/trace.hpp"

namespace {

using namespace nox;

int
cmdGen(const Config &config)
{
    CmpParams params;
    CoherenceTraceGenerator gen(
        params, findWorkload(config.getString("workload", "tpcc")),
        config.getUint("seed", 99));
    const Trace trace =
        gen.generate(config.getDouble("horizon_ns", 25000.0),
                     config.getDouble("warmup_ns", 50000.0));
    const std::string out = config.getString("out");
    if (out.empty())
        fatal("gen requires out=<path>");
    writeTraceFile(out, trace);
    std::cout << "wrote " << trace.records.size() << " records ("
              << trace.durationNs << " ns) to " << out << '\n';
    return 0;
}

int
cmdInfo(const Config &config)
{
    const Trace trace = readTraceFile(config.getString("in"));
    std::uint64_t ctrl = 0, data = 0, bytes = 0;
    SampleStats sizes;
    for (const auto &r : trace.records) {
        (r.sizeBytes <= 8 ? ctrl : data) += 1;
        bytes += r.sizeBytes;
        sizes.add(static_cast<double>(r.sizeBytes));
    }
    Table t({"metric", "value"});
    t.addRow({"records", std::to_string(trace.records.size())});
    t.addRow({"duration_ns", Table::num(trace.durationNs, 1)});
    t.addRow({"control packets", std::to_string(ctrl)});
    t.addRow({"data packets", std::to_string(data)});
    t.addRow({"bytes", std::to_string(bytes)});
    t.addRow({"mean packet bytes", Table::num(sizes.mean(), 2)});
    t.addRow({"request-net records",
              std::to_string(trace.forNetwork(0).size())});
    t.addRow({"reply-net records",
              std::to_string(trace.forNetwork(1).size())});
    for (int net : {0, 1}) {
        t.addRow({"net " + std::to_string(net) + " GB/s/node",
                  Table::num(trace.bytesPerNsPerNode(64, net), 3)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdFilter(const Config &config)
{
    const Trace in = readTraceFile(config.getString("in"));
    Trace out;
    out.name = in.name + "-filtered";
    out.durationNs = in.durationNs;
    const double from = config.getDouble("from_ns", 0.0);
    const double to = config.getDouble("to_ns", 1e300);
    for (const auto &r : in.records) {
        if (r.timeNs < from || r.timeNs > to)
            continue;
        if (config.has("network") &&
            r.network != config.getUint("network"))
            continue;
        if (config.has("src") &&
            r.src != static_cast<NodeId>(config.getInt("src")))
            continue;
        if (config.has("dst") &&
            r.dst != static_cast<NodeId>(config.getInt("dst")))
            continue;
        out.records.push_back(r);
    }
    writeTraceFile(config.getString("out"), out);
    std::cout << "kept " << out.records.size() << " of "
              << in.records.size() << " records\n";
    return 0;
}

int
cmdHistogram(const Config &config)
{
    const Trace trace = readTraceFile(config.getString("in"));
    const int bins = static_cast<int>(config.getInt("bins", 20));
    if (trace.records.empty() || trace.durationNs <= 0.0) {
        std::cout << "empty trace\n";
        return 0;
    }
    std::vector<std::uint64_t> counts(
        static_cast<std::size_t>(bins), 0);
    for (const auto &r : trace.records) {
        auto b = static_cast<std::size_t>(
            r.timeNs / trace.durationNs * bins);
        if (b >= counts.size())
            b = counts.size() - 1;
        counts[b] += 1;
    }
    std::uint64_t peak = 1;
    for (auto c : counts)
        peak = std::max(peak, c);
    std::cout << "packets over time (" << bins << " bins of "
              << Table::num(trace.durationNs / bins, 0) << " ns):\n";
    for (int b = 0; b < bins; ++b) {
        const auto c = counts[static_cast<std::size_t>(b)];
        const int stars =
            static_cast<int>(60.0 * static_cast<double>(c) /
                             static_cast<double>(peak));
        std::cout << Table::num(b * trace.durationNs / bins, 0)
                  << "\t" << c << "\t" << std::string(
                         static_cast<std::size_t>(stars), '*')
                  << '\n';
    }
    return 0;
}

int
cmdAnalyze(const Config &config)
{
    FlightDump dump;
    std::string error;
    if (!loadFlightDump(config.getString("in"), dump, error))
        fatal("analyze: ", error);

    const std::vector<PacketTimeline> timelines = buildTimelines(dump);
    std::uint64_t complete = 0, partial = 0, mismatches = 0;
    for (const PacketTimeline &t : timelines) {
        if (t.haveCreate && t.haveDone)
            ++complete;
        else
            ++partial;
        if (!t.consistent()) {
            ++mismatches;
            warn("packet ", t.packet, ": reconstructed latency ",
                 t.latency(), " != online-reported ",
                 t.reportedLatency);
        }
    }

    Table t({"metric", "value"});
    t.addRow({"dump reason", dump.reason});
    t.addRow({"dump cycle", std::to_string(dump.dumpCycle)});
    t.addRow({"events", std::to_string(dump.events.size())});
    t.addRow({"cycles covered",
              std::to_string(dump.firstCycle) + ".." +
                  std::to_string(dump.lastCycle)});
    t.addRow({"packets seen", std::to_string(timelines.size())});
    t.addRow({"complete timelines", std::to_string(complete)});
    t.addRow({"partial timelines", std::to_string(partial)});
    t.addRow({"latency mismatches", std::to_string(mismatches)});
    t.print(std::cout);

    const auto k =
        static_cast<std::size_t>(config.getUint("topk", 10));
    const std::vector<SlowPacket> slow =
        slowestPackets(dump, timelines, k);
    if (!slow.empty()) {
        std::cout << "\nslowest packets (complete timelines only):\n";
        Table s({"packet", "src", "dst", "latency", "stall cycles",
                 "stall at", "e2e retx", "dominant cause"});
        for (const SlowPacket &p : slow) {
            s.addRow({std::to_string(p.packet),
                      std::to_string(p.src), std::to_string(p.dest),
                      std::to_string(p.latency),
                      std::to_string(p.stallEnd - p.stallStart),
                      std::string(p.stallNic ? "nic " : "router ") +
                          std::to_string(p.stallNode),
                      std::to_string(p.e2eRetransmits), p.cause});
        }
        s.print(std::cout);
    }
    return mismatches == 0 ? 0 : 1;
}

int
cmdSnapshotInfo(const Config &config)
{
    const std::string path = config.getString("in");
    if (path.empty())
        fatal("snapshot-info requires in=<snapshot>");
    try {
        const std::vector<std::uint8_t> bytes =
            snap::readFileBytes(path);
        const snap::SnapshotFile file =
            snap::decodeSnapshotFile(bytes.data(), bytes.size());

        Table t({"field", "value"});
        t.addRow({"file", path});
        t.addRow({"bytes", std::to_string(bytes.size())});
        t.addRow({"version", std::to_string(file.version)});
        t.addRow({"sections",
                  std::to_string(file.sections.size())});
        if (const snap::Section *m =
                file.find(snap::kSectionMeta)) {
            snap::Reader r(m->payload.data(), m->payload.size());
            const snap::SnapshotMeta meta = snap::decodeMeta(r);
            r.expectEnd();
            t.addRow({"tool", meta.tool});
            t.addRow({"cycle", std::to_string(meta.cycle)});
            t.addRow({"fingerprint", meta.fingerprint});
        }
        t.print(std::cout);

        Table s({"section", "payload bytes"});
        for (const snap::Section &sec : file.sections)
            s.addRow({snap::fourccName(sec.tag),
                      std::to_string(sec.payload.size())});
        std::cout << '\n';
        s.print(std::cout);
        return 0;
    } catch (const snap::SnapshotError &e) {
        std::cerr << "snapshot-info: invalid snapshot '" << path
                  << "': " << e.what() << '\n';
        return 1;
    }
}

// ---- profile: render a self-profiling JSONL export ----------------

/** Find `"key": <number>` in a single-line JSON object (tolerates
 *  optional whitespace after the colon). */
bool
profFindNum(const std::string &line, const char *key, double &out)
{
    const std::string pat = std::string("\"") + key + "\":";
    const std::size_t pos = line.find(pat);
    if (pos == std::string::npos)
        return false;
    const char *start = line.c_str() + pos + pat.size();
    char *end = nullptr;
    out = std::strtod(start, &end);
    return end != start;
}

/** Find `"key": "<string>"` in a single-line JSON object. */
bool
profFindStr(const std::string &line, const char *key, std::string &out)
{
    const std::string pat = std::string("\"") + key + "\":";
    std::size_t pos = line.find(pat);
    if (pos == std::string::npos)
        return false;
    pos += pat.size();
    while (pos < line.size() && line[pos] == ' ')
        ++pos;
    if (pos >= line.size() || line[pos] != '"')
        return false;
    const std::size_t close = line.find('"', pos + 1);
    if (close == std::string::npos)
        return false;
    out = line.substr(pos + 1, close - pos - 1);
    return true;
}

int
cmdProfile(const Config &config)
{
    const std::string path = config.getString("in");
    if (path.empty())
        fatal("profile requires in=<profile.jsonl>");
    std::ifstream in(path);
    if (!in)
        fatal("profile: cannot open ", path);

    struct PhaseRow
    {
        std::string name;
        double ns = 0.0;
        double enters = 0.0;
    };
    struct RouterRow
    {
        std::uint64_t id = 0, evals = 0, flits = 0, arb = 0;
    };
    double steps = 0, totalNs = 0, phaseNsSum = 0, coverage = 0;
    double width = 0, height = 0, numRouters = 0;
    std::string arch, sched;
    bool haveHeader = false;
    std::vector<PhaseRow> phases;
    std::vector<RouterRow> routers;
    struct ImbalanceRow
    {
        std::string by;
        double shards = 0, index = 0;
    };
    std::vector<ImbalanceRow> imbalances;

    std::string line;
    while (std::getline(in, line)) {
        std::string type;
        if (!profFindStr(line, "type", type))
            continue;
        if (type == "profile_header") {
            haveHeader = true;
            profFindNum(line, "steps", steps);
            profFindNum(line, "total_ns", totalNs);
            profFindNum(line, "phase_ns_sum", phaseNsSum);
            profFindNum(line, "coverage", coverage);
            profFindNum(line, "width", width);
            profFindNum(line, "height", height);
            profFindNum(line, "routers", numRouters);
            profFindStr(line, "arch", arch);
            profFindStr(line, "sched", sched);
        } else if (type == "phase") {
            PhaseRow p;
            profFindStr(line, "name", p.name);
            profFindNum(line, "ns", p.ns);
            profFindNum(line, "enters", p.enters);
            phases.push_back(p);
        } else if (type == "router") {
            double id = 0, evals = 0, flits = 0, arb = 0;
            profFindNum(line, "id", id);
            profFindNum(line, "evals", evals);
            profFindNum(line, "flits", flits);
            profFindNum(line, "arb", arb);
            routers.push_back(
                {static_cast<std::uint64_t>(id),
                 static_cast<std::uint64_t>(evals),
                 static_cast<std::uint64_t>(flits),
                 static_cast<std::uint64_t>(arb)});
        } else if (type == "imbalance") {
            ImbalanceRow r;
            profFindStr(line, "by", r.by);
            profFindNum(line, "shards", r.shards);
            profFindNum(line, "index", r.index);
            imbalances.push_back(r);
        }
    }
    if (!haveHeader)
        fatal("profile: ", path, ": no profile_header record — not a "
              "profiler export (profile_file= output)?");

    Table h({"field", "value"});
    h.addRow({"arch", arch});
    h.addRow({"scheduling", sched});
    h.addRow({"mesh", Table::num(width, 0) + "x" +
                          Table::num(height, 0)});
    h.addRow({"steps", Table::num(steps, 0)});
    h.addRow({"stepped wall", Table::num(totalNs * 1e-9, 4) + " s"});
    h.addRow({"scoped wall",
              Table::num(phaseNsSum * 1e-9, 4) + " s"});
    h.addRow({"coverage", Table::num(coverage, 4)});
    h.print(std::cout);

    if (!phases.empty()) {
        std::cout << "\nhost cost per phase (share of stepped "
                     "wall time):\n";
        Table t({"phase", "seconds", "share", "enters", "ns/enter"});
        for (const PhaseRow &p : phases) {
            t.addRow({p.name, Table::num(p.ns * 1e-9, 4),
                      totalNs > 0
                          ? Table::num(100.0 * p.ns / totalNs, 1) +
                                "%"
                          : "-",
                      Table::num(p.enters, 0),
                      p.enters > 0
                          ? Table::num(p.ns / p.enters, 0)
                          : "-"});
        }
        t.print(std::cout);
    }

    if (!routers.empty()) {
        // "Hottest" = most flits moved; under activity-driven
        // scheduling the evals column additionally shows how often
        // the scheduler actually woke each router.
        const auto k = static_cast<std::size_t>(
            config.getUint("topk", 10));
        std::vector<RouterRow> sorted = routers;
        std::sort(sorted.begin(), sorted.end(),
                  [](const RouterRow &a, const RouterRow &b) {
                      if (a.flits != b.flits)
                          return a.flits > b.flits;
                      return a.id < b.id;
                  });
        if (sorted.size() > k)
            sorted.resize(k);
        std::cout << "\ntop " << sorted.size()
                  << " hottest routers (by flits moved):\n";
        Table t({"router", "evals", "flits", "arb rounds"});
        for (const RouterRow &r : sorted) {
            t.addRow({std::to_string(r.id),
                      std::to_string(r.evals),
                      std::to_string(r.flits),
                      std::to_string(r.arb)});
        }
        t.print(std::cout);
    }

    // Imbalance: report the export's own rows, then optionally
    // recompute over a caller-chosen shard count (shards=N).
    if (!imbalances.empty()) {
        std::cout << "\nload imbalance (max shard / mean shard; "
                     "1.0 = balanced):\n";
        Table t({"by", "shards", "index"});
        for (const ImbalanceRow &r : imbalances) {
            t.addRow({r.by, Table::num(r.shards, 0),
                      Table::num(r.index, 4)});
        }
        t.print(std::cout);
    }
    if (config.has("shards") &&
        static_cast<double>(routers.size()) == width * height) {
        const int shards =
            static_cast<int>(config.getInt("shards", 4));
        std::vector<std::uint64_t> evals, flits;
        std::vector<RouterRow> byId = routers;
        std::sort(byId.begin(), byId.end(),
                  [](const RouterRow &a, const RouterRow &b) {
                      return a.id < b.id;
                  });
        for (const RouterRow &r : byId) {
            evals.push_back(r.evals);
            flits.push_back(r.flits);
        }
        const std::vector<int> shardOf =
            rowStripePartition(static_cast<int>(width),
                               static_cast<int>(height), shards);
        Table t({"by", "shards", "index"});
        t.addRow({"evals", std::to_string(shards),
                  Table::num(loadImbalance(evals, shardOf, shards),
                             4)});
        t.addRow({"flits", std::to_string(shards),
                  Table::num(loadImbalance(flits, shardOf, shards),
                             4)});
        std::cout << "\nrecomputed over " << shards
                  << " row stripes:\n";
        t.print(std::cout);
    }
    return 0;
}

std::string
joinComponents(const std::vector<std::string> &components)
{
    std::string joined;
    for (const auto &c : components) {
        if (!joined.empty())
            joined += ",";
        joined += c;
    }
    return joined;
}

int
cmdDiff(const Config &config)
{
    const std::string pathA = config.getString("a");
    const std::string pathB = config.getString("b");
    if (pathA.empty() || pathB.empty())
        fatal("diff requires a=<ledger.jsonl> b=<ledger.jsonl>");

    LedgerFile a, b;
    std::string err;
    if (!loadDigestLedger(pathA, &a, &err))
        fatal("diff: ", err);
    if (!loadDigestLedger(pathB, &b, &err))
        fatal("diff: ", err);

    const DigestDivergence d = compareLedgers(a, b);
    if (!d.comparable)
        fatal("diff: ledgers are not comparable: ", d.error);

    Table t({"key", "value"});
    t.addRow({"interval", std::to_string(a.interval)});
    t.addRow({"strides_a", std::to_string(a.strides.size())});
    t.addRow({"strides_b", std::to_string(b.strides.size())});
    t.addRow({"strides_compared",
              std::to_string(d.stridesCompared)});
    t.addRow({"diverged", d.diverged ? "1" : "0"});
    if (d.diverged) {
        t.addRow({"first_divergent_stride_cycle",
                  std::to_string(d.cycle)});
        t.addRow({"last_agreeing_stride_cycle",
                  std::to_string(d.lastAgreeCycle)});
        t.addRow({"components", joinComponents(d.components)});
    }
    t.print(std::cout);
    if (d.diverged) {
        std::cout << "divergence lies in ("
                  << (d.lastAgreeCycle < 0
                          ? std::string("start")
                          : std::to_string(d.lastAgreeCycle))
                  << ", " << d.cycle
                  << "]; run `trace_tool bisect` with the last "
                     "agreeing checkpoints to pin the exact cycle\n";
    }
    return d.diverged ? 1 : 0;
}

/** Split the bisect command line into one Config per side: shared
 *  synthetic keys go to both, `a_`/`b_`-prefixed keys override their
 *  side, and bisect's own keys (a=, b=, snap_a=, snap_b=) go to
 *  neither. */
Config
sideConfig(const Config &config, const std::string &prefix,
           const std::string &otherPrefix)
{
    Config side;
    for (const auto &kv : config.items()) {
        const std::string &key = kv.first;
        if (key == "a" || key == "b" || key == "snap_a" ||
            key == "snap_b")
            continue;
        if (key.compare(0, otherPrefix.size(), otherPrefix) == 0)
            continue;
        if (key.compare(0, prefix.size(), prefix) == 0) {
            side.set(key.substr(prefix.size()), kv.second);
            continue;
        }
        side.set(key, kv.second);
    }
    return side;
}

/** Parse one side's synthetic config, neutralizing every knob that
 *  would let the re-run write over the artifacts it reads (its own
 *  checkpoints and ledgers) or skip ahead (resume). */
SyntheticConfig
bisectSideConfig(const Config &config, const char *label)
{
    SyntheticConfig c = parseSyntheticConfig(config);
    config.requireAllUsed(label);
    c.checkpointInterval = 0;
    c.resumePath.clear();
    c.obs.digest.enabled = false;
    c.obs.digest.jsonlPath.clear();
    return c;
}

int
cmdBisect(const Config &config)
{
    const std::string pathA = config.getString("a");
    const std::string pathB = config.getString("b");
    const std::string snapA = config.getString("snap_a");
    const std::string snapB = config.getString("snap_b");
    if (pathA.empty() || pathB.empty() || snapA.empty() ||
        snapB.empty())
        fatal("bisect requires a=<ledger> b=<ledger> "
              "snap_a=<ckpt.snap> snap_b=<ckpt.snap>");

    LedgerFile la, lb;
    std::string err;
    if (!loadDigestLedger(pathA, &la, &err))
        fatal("bisect: ", err);
    if (!loadDigestLedger(pathB, &lb, &err))
        fatal("bisect: ", err);
    const DigestDivergence coarse = compareLedgers(la, lb);
    if (!coarse.comparable)
        fatal("bisect: ledgers are not comparable: ", coarse.error);
    if (!coarse.diverged) {
        std::cout << "ledgers agree over " << coarse.stridesCompared
                  << " strides; nothing to bisect\n";
        return 0;
    }

    const SyntheticConfig ca =
        bisectSideConfig(sideConfig(config, "a_", "b_"),
                         "trace_tool bisect (side a)");
    const SyntheticConfig cb =
        bisectSideConfig(sideConfig(config, "b_", "a_"),
                         "trace_tool bisect (side b)");
    if (ca.warmupCycles != cb.warmupCycles ||
        ca.measureCycles != cb.measureCycles)
        fatal("bisect: the two sides disagree on the measurement "
              "window (warmup/measure) — comparing their "
              "trajectories is meaningless");

    SyntheticNet builtA = buildSyntheticNetwork(ca);
    SyntheticNet builtB = buildSyntheticNetwork(cb);
    Network &netA = *builtA.net;
    Network &netB = *builtB.net;
    try {
        snap::restoreNetwork(netA, snap::loadSnapshotFile(snapA));
    } catch (const snap::SnapshotError &e) {
        fatal("bisect: cannot restore side a from '", snapA,
              "': ", e.what());
    }
    try {
        snap::restoreNetwork(netB, snap::loadSnapshotFile(snapB));
    } catch (const snap::SnapshotError &e) {
        fatal("bisect: cannot restore side b from '", snapB,
              "': ", e.what());
    }
    if (netA.now() != netB.now())
        fatal("bisect: checkpoints are from different cycles (a=",
              netA.now(), ", b=", netB.now(),
              ") — pass the same-interval checkpoints bracketing "
              "the divergence");
    const Cycle start = netA.now();
    if (start >= coarse.cycle)
        fatal("bisect: checkpoints are at cycle ", start,
              ", at or past the first divergent stride (",
              coarse.cycle,
              ") — pass the last checkpoints that still agree");

    Table t({"key", "value"});
    t.addRow({"ledger_interval", std::to_string(la.interval)});
    t.addRow({"ledger_divergent_stride",
              std::to_string(coarse.cycle)});
    t.addRow({"ledger_last_agree",
              coarse.lastAgreeCycle < 0
                  ? std::string("none")
                  : std::to_string(coarse.lastAgreeCycle)});
    t.addRow({"checkpoint_cycle", std::to_string(start)});

    // Lockstep replay: one step at a time on both sides, a full
    // digest capture after every step — digest_interval=1 in effect,
    // without ever writing a ledger.
    snap::Writer scratchA, scratchB;
    DigestStride sa = netA.computeDigestStride(scratchA);
    DigestStride sb = netB.computeDigestStride(scratchB);
    if (sa != sb) {
        // The "agreeing" checkpoints already differ — the coarse
        // ledger stride lied only by granularity; report here.
        t.addRow({"diverged", "1"});
        t.addRow({"first_divergent_cycle", std::to_string(start)});
        t.addRow({"components",
                  joinComponents(divergentComponents(sa, sb))});
        t.print(std::cout);
        std::cout << "the checkpoints themselves differ — rerun "
                     "with earlier checkpoints to see the first "
                     "divergent cycle\n";
        return 0;
    }

    // Replicate runSynthetic's phase schedule: sources off once the
    // measurement window closes, then the drain tail.
    const Cycle m1 = ca.warmupCycles + ca.measureCycles;
    if (start >= m1) {
        netA.setSourcesEnabled(false);
        netB.setSourcesEnabled(false);
    }
    // The divergence is certain by the ledger's divergent stride;
    // pad one interval in case that stride is the last one captured.
    const Cycle limit = coarse.cycle + la.interval;
    bool found = false;
    while (netA.now() < limit) {
        netA.step();
        netB.step();
        sa = netA.computeDigestStride(scratchA);
        sb = netB.computeDigestStride(scratchB);
        if (sa != sb) {
            found = true;
            break;
        }
        if (netA.now() == m1) {
            netA.setSourcesEnabled(false);
            netB.setSourcesEnabled(false);
        }
    }

    if (!found) {
        t.addRow({"diverged", "0"});
        t.print(std::cout);
        warn("bisect: replay did not reproduce the divergence by "
             "cycle ",
             limit,
             " — the runs differ in a way the re-run configs do "
             "not capture (check a_/b_ overrides)");
        return 1;
    }

    const std::vector<std::string> components =
        divergentComponents(sa, sb);
    t.addRow({"diverged", "1"});
    t.addRow({"first_divergent_cycle",
              std::to_string(netA.now())});
    t.addRow({"last_agreeing_cycle",
              std::to_string(netA.now() - 1)});
    t.addRow({"components", joinComponents(components)});

    // Latch a flight-recorder dump at the divergent cycle on each
    // side that carries a tracer, implicating the differing routers
    // and NICs. With the shared trace keys both sides inherit the
    // same flight path; side b then skips its dump rather than
    // silently overwriting side a's (set b_trace_flight_file= to
    // capture both rings).
    std::vector<NodeId> implicated;
    for (const auto &c : components) {
        const std::size_t colon = c.find(':');
        if (colon == std::string::npos)
            continue;
        implicated.push_back(static_cast<NodeId>(
            std::atoi(c.c_str() + colon + 1)));
    }
    std::string dumpedPath;
    for (Network *net : {&netA, &netB}) {
        TraceRecorder *tracer = net->tracer();
        if (!tracer)
            continue;
        if (!dumpedPath.empty() &&
            tracer->params().flightPath == dumpedPath) {
            warn("bisect: side b shares side a's flight path '",
                 dumpedPath,
                 "'; skipping its dump (set b_trace_flight_file= "
                 "to capture both rings)");
            continue;
        }
        if (tracer->triggerFlightDump("digest-divergence",
                                      implicated)) {
            dumpedPath = tracer->params().flightPath;
            t.addRow({"flight_dump", dumpedPath});
        }
    }

    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    const auto positional = config.parseArgs(argc, argv);
    if (positional.empty()) {
        std::cerr
            << "usage: trace_tool <command> key=value...\n"
               "  gen       workload=<name> out=<path> [horizon_ns=N]\n"
               "  info      in=<trace>\n"
               "  filter    in=<trace> out=<trace> [network=0|1] "
               "[src=N] [dst=N] [from_ns=X] [to_ns=Y]\n"
               "  histogram in=<trace> [bins=20]\n"
               "  analyze   in=<flight.jsonl> [topk=10]   "
               "(flight-recorder dump forensics)\n"
               "  snapshot-info in=<checkpoint.snap>      "
               "(validate + describe a checkpoint)\n"
               "  profile   in=<profile.jsonl> [topk=10] [shards=N] "
               "(self-profiling phase/router report)\n"
               "  diff      a=<ledger.jsonl> b=<ledger.jsonl>       "
               "(first divergent digest stride)\n"
               "  bisect    a=<ledger> b=<ledger> snap_a=<ckpt> "
               "snap_b=<ckpt> <synthetic keys> [a_K=V] [b_K=V]\n"
               "            (replay from checkpoints, pin the exact "
               "divergent cycle + components)\n";
        return 2;
    }
    const std::string &cmd = positional.front();
    if (cmd == "gen")
        return cmdGen(config);
    if (cmd == "info")
        return cmdInfo(config);
    if (cmd == "filter")
        return cmdFilter(config);
    if (cmd == "histogram")
        return cmdHistogram(config);
    if (cmd == "analyze")
        return cmdAnalyze(config);
    if (cmd == "snapshot-info")
        return cmdSnapshotInfo(config);
    if (cmd == "profile")
        return cmdProfile(config);
    if (cmd == "diff")
        return cmdDiff(config);
    if (cmd == "bisect")
        return cmdBisect(config);
    nox::fatal("unknown command '", cmd, "'");
}
