/**
 * @file
 * noxsim — the general-purpose command-line front end.
 *
 * Runs a single synthetic or application experiment fully described
 * by key=value arguments (or `--file experiment.cfg`), printing a
 * machine-readable result block. This is the OSS entry point for
 * anyone who wants one number instead of a whole figure sweep.
 *
 * Synthetic mode (default):
 *   noxsim arch=nox pattern=tornado rate_mbps=1500 [selfsimilar=true]
 *          [concentration=4]
 *          [packet_flits=1] [width=8 height=8] [buffer_depth=4]
 *          [warmup=N measure=N] [seed=N] [csv=path]
 *          [digest=true digest_interval=N digest_file=path]
 *          [perturb_cycle=K perturb_router=R]   (test/debug: seed a
 *           deliberate divergence for `trace_tool diff`/`bisect`)
 *
 * Application mode:
 *   noxsim mode=app arch=nox workload=tpcc [horizon_ns=25000]
 *          [trace=path.trace]   (trace= replays a saved trace file)
 */

#include <algorithm>
#include <fstream>
#include <iostream>

#include "coherence/trace_generator.hpp"
#include "common/config.hpp"
#include "common/table.hpp"
#include "core/sim_runner.hpp"
#include "obs/obs_params.hpp"

namespace {

using namespace nox;

int
runSyntheticMode(const Config &config)
{
    // All synthetic-run keys (including checkpoint/resume, digest and
    // the perturb knobs) parse through the shared core parser, so a
    // `trace_tool bisect` re-run accepts exactly this tool's keys.
    const SyntheticConfig c = parseSyntheticConfig(config);

    const std::string csvPath = config.getString("csv");
    // Typos fail before the run burns cycles, not after.
    config.requireAllUsed("noxsim");

    const RunResult r = runSynthetic(c);

    Table t({"key", "value"});
    t.addRow({"mode", "synthetic"});
    t.addRow({"arch", archName(r.arch)});
    t.addRow({"pattern", c.selfSimilar ? "selfsimilar"
                                       : patternName(c.pattern)});
    t.addRow({"period_ns", Table::num(r.periodNs, 4)});
    t.addRow({"offered_mbps", Table::num(r.offeredMBps, 1)});
    t.addRow({"accepted_mbps", Table::num(r.acceptedMBps, 1)});
    t.addRow({"latency_cycles", Table::num(r.avgLatencyCycles, 3)});
    t.addRow({"latency_ns", Table::num(r.avgLatencyNs, 3)});
    t.addRow({"p50_latency_ns", Table::num(r.p50LatencyNs, 3)});
    t.addRow({"p95_latency_ns", Table::num(r.p95LatencyNs, 3)});
    t.addRow({"p99_latency_ns", Table::num(r.p99LatencyNs, 3)});
    t.addRow({"latency_hist_overflow",
              std::to_string(r.latencyHistOverflow)});
    t.addRow({"latency_hist_widenings",
              std::to_string(r.latencyHistWidenings)});
    t.addRow({"packets", std::to_string(r.packetsMeasured)});
    t.addRow({"saturated", r.saturated ? "1" : "0"});
    t.addRow({"power_w", Table::num(r.powerW, 4)});
    t.addRow({"energy_per_packet_pj",
              Table::num(r.energyPerPacketPj, 2)});
    t.addRow({"ed2_pj_ns2", Table::num(r.ed2, 1)});
    t.addRow({"link_energy_share",
              Table::num(r.energy.linkFraction(), 4)});
    if (c.faults.enabled) {
        t.addRow({"faults_injected",
                  std::to_string(r.faults.faultsInjected)});
        t.addRow({"faults_detected",
                  std::to_string(r.faults.faultsDetected)});
        t.addRow({"retransmissions",
                  std::to_string(r.faults.retransmissions)});
        t.addRow({"credit_resyncs",
                  std::to_string(r.faults.creditResyncs)});
        t.addRow({"corrupted_escapes",
                  std::to_string(r.faults.corruptedEscapes)});
        t.addRow({"decode_mismatches",
                  std::to_string(r.faults.decodeMismatches)});
        t.addRow({"hard_link_faults",
                  std::to_string(r.faults.hardLinkFaults)});
        t.addRow({"hard_router_faults",
                  std::to_string(r.faults.hardRouterFaults)});
        t.addRow({"table_rebuilds",
                  std::to_string(r.faults.tableRebuilds)});
        t.addRow({"packets_lost_hard",
                  std::to_string(r.faults.packetsLostHard)});
        t.addRow({"flits_lost_hard",
                  std::to_string(r.faults.flitsLostHard)});
        t.addRow({"unreachable_rejected",
                  std::to_string(r.faults.unreachableRejected)});
        t.addRow({"flow_reorders",
                  std::to_string(r.faults.flowReorders)});
        t.addRow({"age_alarms",
                  std::to_string(r.faults.ageAlarms)});
        if (c.faults.e2eTransport) {
            t.addRow({"e2e_retransmits",
                      std::to_string(r.faults.e2eRetransmits)});
            t.addRow({"dup_suppressed",
                      std::to_string(r.faults.dupSuppressed)});
            t.addRow({"delivery_failures",
                      std::to_string(r.faults.deliveryFailures)});
        }
        if (c.faults.churnWaves > 0) {
            t.addRow({"link_heals",
                      std::to_string(r.faults.linkHeals)});
            t.addRow({"router_heals",
                      std::to_string(r.faults.routerHeals)});
        }
    }
    if (r.provenance) {
        // Latency attribution: where the mean packet's cycles went.
        // Components conserve (they sum to total latency cycles);
        // nonzero violations indicate a simulator bug.
        const double pkts = std::max<double>(
            1.0, static_cast<double>(r.breakdown.packets));
        for (std::size_t i = 0; i < kNumLatencyComponents; ++i) {
            const auto c = static_cast<LatencyComponent>(i);
            t.addRow({std::string("lat_") + latencyComponentName(c) +
                          "_cycles",
                      Table::num(static_cast<double>(r.breakdown[c]) /
                                     pkts,
                                 3)});
        }
        t.addRow({"provenance_violations",
                  std::to_string(r.provenanceViolations)});
    }
    if (r.profiled) {
        // Host-cost decomposition: where each simulated cycle's wall
        // time went. Coverage is the scoped fraction of stepped time;
        // the remainder is unscoped inter-phase glue.
        t.addRow({"sim_cycles_per_s",
                  Table::num(r.wallSeconds > 0.0
                                 ? static_cast<double>(
                                       r.cyclesSimulated) /
                                       r.wallSeconds
                                 : 0.0,
                             1)});
        for (std::size_t p = 0; p < kNumSimPhases; ++p) {
            t.addRow({std::string("prof_") +
                          simPhaseName(static_cast<SimPhase>(p)) +
                          "_s",
                      Table::num(r.phaseSeconds[p], 4)});
        }
        t.addRow({"prof_total_s",
                  Table::num(r.profiledTotalSeconds, 4)});
        t.addRow({"prof_coverage",
                  Table::num(r.profileCoverage, 4)});
        t.addRow({"prof_imbalance_evals",
                  Table::num(r.imbalanceEvals, 4)});
        t.addRow({"prof_imbalance_flits",
                  Table::num(r.imbalanceFlits, 4)});
    }
    if (r.digestStrides >= 0) {
        t.addRow({"digest_strides",
                  std::to_string(r.digestStrides)});
        t.addRow({"last_digest_cycle",
                  std::to_string(r.lastDigestCycle)});
    }
    t.addRow({"drained", r.drained ? "1" : "0"});
    if (!r.drained)
        nox::warn("synthetic run did not drain: ", r.drainDiagnosis);
    if (!csvPath.empty()) {
        std::ofstream out(csvPath);
        t.printCsv(out);
    }
    t.print(std::cout);
    if (!r.metricsHeatmap.empty()) {
        std::cout << "\nmean link utilization (flits/cycle per "
                     "router, mesh outputs)\n"
                  << r.metricsHeatmap;
    }
    return r.drained ? 0 : 1;
}

int
runAppMode(const Config &config)
{
    if (config.has("resume") || config.has("checkpoint_interval") ||
        config.has("checkpoint_file") || config.has("checkpoint_keep"))
        fatal("checkpoint/resume is not supported in app mode");

    AppConfig c;
    c.arch = parseArch(config.getString("arch", "nox").c_str());

    Trace trace;
    if (config.has("trace")) {
        trace = readTraceFile(config.getString("trace"));
    } else {
        CmpParams params;
        CoherenceTraceGenerator gen(
            params,
            findWorkload(config.getString("workload", "tpcc")),
            config.getUint("seed", 99));
        trace = gen.generate(
            config.getDouble("horizon_ns", 25000.0),
            config.getDouble("warmup_ns", 50000.0));
    }

    const std::string csvPath = config.getString("csv");
    config.requireAllUsed("noxsim");

    const AppResult r = runApplication(c, trace);

    Table t({"key", "value"});
    t.addRow({"mode", "application"});
    t.addRow({"arch", archName(r.arch)});
    t.addRow({"trace", trace.name});
    t.addRow({"period_ns", Table::num(r.periodNs, 4)});
    t.addRow({"packets", std::to_string(r.packets)});
    t.addRow({"net_latency_ns", Table::num(r.avgLatencyNs, 3)});
    t.addRow({"total_latency_ns",
              Table::num(r.avgTotalLatencyNs, 3)});
    t.addRow({"req_latency_ns",
              Table::num(r.avgLatencyNsRequest, 3)});
    t.addRow({"reply_latency_ns",
              Table::num(r.avgLatencyNsReply, 3)});
    t.addRow({"power_w", Table::num(r.powerW, 4)});
    t.addRow({"energy_per_packet_pj",
              Table::num(r.energyPerPacketPj, 2)});
    t.addRow({"ed2_pj_ns2", Table::num(r.ed2, 1)});
    t.addRow({"drained", r.drained ? "1" : "0"});
    if (!csvPath.empty()) {
        std::ofstream out(csvPath);
        t.printCsv(out);
    }
    t.print(std::cout);
    return r.drained ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);
    const std::string mode = config.getString("mode", "synthetic");
    int rc;
    if (mode == "app" || mode == "application") {
        rc = runAppMode(config);
    } else if (mode == "synthetic") {
        rc = runSyntheticMode(config);
    } else {
        nox::fatal("unknown mode '", mode,
                   "' (expected synthetic|app)");
    }
    return rc;
}
