/**
 * @file
 * nettest — randomized network soak tester.
 *
 * Fuzzes a network configuration with randomized traffic (mixed
 * packet sizes, per-phase load changes, random pauses) while checking
 * the simulator's hard invariants continuously:
 *
 *   - exactly-once delivery with intact payloads (asserted in the
 *     NIC sink on every flit),
 *   - per-flow ordering (deterministic DOR wormhole),
 *   - credit safety (FIFO overflow aborts),
 *   - full drain after quiescing.
 *
 * Exit code 0 = all phases clean. Use it after modifying any router:
 *
 *   nettest arch=nox seconds=10 [width=8 height=8 concentration=1]
 *           [seed=N] [buffer_depth=4]
 *           [scheduling=alwaystick|activity|equivalence]
 *
 * The default scheduling mode is `equivalence`: the always-tick
 * kernel plus per-cycle asserts that every component retired from
 * the active set is genuinely quiescent, so the soak also fuzzes the
 * activity-driven kernel's quiescence contracts.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "noc/flit_arena.hpp"
#include "noc/network.hpp"
#include "obs/obs_params.hpp"
#include "obs/telemetry.hpp"
#include "routers/factory.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace nox;

/**
 * Where inside one soak phase a checkpoint was taken. The phase's
 * randomized parameters ride along so a resumed process re-enters the
 * exact phase without re-drawing them.
 */
struct PhaseState
{
    int phase = 1;
    double rate = 0.0;
    double dataFrac = 0.0;
    Cycle run = 0;
    int maxFlits = 1;
    Cycle t = 0;        ///< iteration being executed
    std::uint8_t stage = 0; ///< 0=stepping 1=pausing 2=draining
    Cycle pauseEnd = 0; ///< target cycle of the in-progress pause
    Cycle drainEnd = 0; ///< drain deadline (stage 2)
};

void
writePhaseState(snap::Writer &w, const PhaseState &st, const Rng &rng)
{
    snap::tag(w, snap::fourcc("RUNR"));
    w.i32(st.phase);
    w.f64(st.rate);
    w.f64(st.dataFrac);
    w.u64(st.run);
    w.i32(st.maxFlits);
    w.u64(st.t);
    w.u8(st.stage);
    w.u64(st.pauseEnd);
    w.u64(st.drainEnd);
    rng.serialize(w);
}

void
readPhaseState(snap::Reader &r, PhaseState &st, Rng &rng)
{
    snap::checkTag(r, snap::fourcc("RUNR"));
    st.phase = r.i32();
    st.rate = r.f64();
    st.dataFrac = r.f64();
    st.run = r.u64();
    st.maxFlits = r.i32();
    st.t = r.u64();
    st.stage = r.u8();
    if (st.stage > 2)
        r.fail("phase stage out of range");
    st.pauseEnd = r.u64();
    st.drainEnd = r.u64();
    rng.restore(r);
}

class OrderChecker : public SinkListener
{
  public:
    explicit OrderChecker(SinkListener *chain) : chain_(chain) {}

    void
    onFlitDelivered(NodeId node, const FlitDesc &flit,
                    Cycle now) override
    {
        chain_->onFlitDelivered(node, flit, now);
    }

    void
    onPacketCompleted(NodeId node, const FlitDesc &last,
                      Cycle head_inject, Cycle now) override
    {
        const auto key = std::make_pair(last.src, last.dest);
        auto [it, fresh] = lastPacket_.try_emplace(key, last.packet);
        if (!fresh) {
            if (it->second >= last.packet) {
                fatal("ORDER VIOLATION: flow ", last.src, "->",
                      last.dest, " delivered packet ", last.packet,
                      " after ", it->second);
            }
            it->second = last.packet;
        }
        chain_->onPacketCompleted(node, last, head_inject, now);
    }

  private:
    SinkListener *chain_;
    std::map<std::pair<NodeId, NodeId>, PacketId> lastPacket_;
};

/**
 * Exactly-once checker for E2E-transport runs, where retransmission
 * legitimately reorders a flow (so OrderChecker does not apply) but a
 * *duplicate* completion is always a protocol failure. Tracks each
 * flow's delivered flowSeq set as a watermark plus the sparse
 * out-of-order stragglers — O(1) amortised, same shape as the
 * transport's own reorder filter, but independently maintained so the
 * harness does not trust the code under test.
 */
class DupChecker : public SinkListener
{
  public:
    explicit DupChecker(SinkListener *chain) : chain_(chain) {}

    void
    onFlitDelivered(NodeId node, const FlitDesc &flit,
                    Cycle now) override
    {
        chain_->onFlitDelivered(node, flit, now);
    }

    void
    onPacketCompleted(NodeId node, const FlitDesc &last,
                      Cycle head_inject, Cycle now) override
    {
        Flow &f = flows_[(static_cast<std::uint64_t>(last.src) << 32) |
                         static_cast<std::uint32_t>(last.dest)];
        const std::uint32_t seq = last.flowSeq;
        if (seq < f.watermark || !f.above.insert(seq).second) {
            fatal("DUPLICATE DELIVERY: flow ", last.src, "->",
                  last.dest, " completed flowSeq ", seq,
                  " twice (packet ", last.packet, ", cycle ", now,
                  ")");
        }
        while (f.above.erase(f.watermark) != 0)
            ++f.watermark;
        chain_->onPacketCompleted(node, last, head_inject, now);
    }

  private:
    struct Flow
    {
        std::uint32_t watermark = 0;
        std::unordered_set<std::uint32_t> above;
    };
    SinkListener *chain_;
    std::unordered_map<std::uint64_t, Flow> flows_;
};

} // namespace

int
main(int argc, char **argv)
{
    Config config;
    config.parseArgs(argc, argv);

    const RouterArch arch =
        parseArch(config.getString("arch", "nox").c_str());
    const double seconds = config.getDouble("seconds", 5.0);
    const std::uint64_t seed = config.getUint("seed", 12345);
    // phases=N runs exactly N phases instead of a wall-clock budget —
    // the deterministic mode the checkpoint/resume CI check relies on.
    const int maxPhases =
        static_cast<int>(config.getInt("phases", 0));
    const Cycle checkpointInterval =
        config.getUint("checkpoint_interval", 0);
    const std::string checkpointFile =
        config.getString("checkpoint_file", "nox-checkpoint.snap");
    const int checkpointKeep =
        static_cast<int>(config.getInt("checkpoint_keep", 2));
    const std::string resumePath = config.getString("resume");

    NetworkParams params;
    params.width = static_cast<int>(config.getInt("width", 8));
    params.height = static_cast<int>(config.getInt("height", 8));
    params.concentration =
        static_cast<int>(config.getInt("concentration", 1));
    params.router.bufferDepth =
        static_cast<int>(config.getInt("buffer_depth", 4));
    params.router.vcCount =
        static_cast<int>(config.getInt("vc_count", 1));
    params.sinkBufferDepth = params.router.bufferDepth;
    params.schedulingMode = parseSchedulingMode(
        config.getString("scheduling", "equivalence").c_str());
    // Optional deterministic link-fault injection (fault_bitflip_rate=
    // etc.). With recovery enabled (the default) every invariant below
    // must still hold — the soak then fuzzes the CRC/retransmission
    // and watchdog machinery on top of the router logic.
    params.faults = faultParamsFromConfig(config);
    // Optional observability (trace=/metrics= keys): the soak then
    // doubles as a stress test for the recorder/sampler hot paths.
    // Per-phase networks overwrite the export files; the last phase's
    // exports survive.
    params.obs = obsParamsFromConfig(config);
    config.requireAllUsed("nettest");

    Rng rng(seed);
    std::uint64_t total_packets = 0;
    std::uint64_t total_cycles = 0;
    std::uint64_t total_faults = 0;
    std::uint64_t total_retransmissions = 0;
    std::uint64_t total_lost_hard = 0;
    std::uint64_t total_rejected = 0;
    std::uint64_t total_rebuilds = 0;
    std::uint64_t total_e2e_retx = 0;
    std::uint64_t total_dup_suppressed = 0;
    std::uint64_t total_delivery_failures = 0;
    std::uint64_t total_heals = 0;
    LatencyBreakdown totalBreakdown; // provenance=true runs only
    int phase = 0;

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(seconds);

    // Execute (or, after --resume, finish) one soak phase on @p net.
    const auto runOnePhase = [&](Network *net, PhaseState &st,
                                 bool resumed) {
        const int phase = st.phase;
        const auto phaseWall0 = std::chrono::steady_clock::now();
        OrderChecker checker(net);
        DupChecker dupChecker(net);
        // Hard (fail-stop) faults legitimately break per-flow FIFO
        // order: a mid-run table rebuild moves a flow to a new path
        // while older packets finish on the old one. The network's
        // own flowReorders counter tracks those; the strict checker
        // only applies to fault-free topologies. E2E retransmission
        // reorders flows the same way, so transport runs swap in the
        // duplicate-delivery checker instead — exactly-once is the
        // invariant there, not FIFO. (A resumed phase re-attaches
        // either checker cold: checked from its first post-resume
        // delivery onward.)
        const bool hard = params.faults.anyHard();
        if (params.faults.e2eTransport) {
            for (NodeId n = 0; n < net->numNodes(); ++n)
                net->nic(n).setListener(&dupChecker);
        } else if (!hard) {
            for (NodeId n = 0; n < net->numNodes(); ++n)
                net->nic(n).setListener(&checker);
        }
        const double rate = st.rate;
        const int max_flits = st.maxFlits;

        // Random pauses exercise drain/refill transients.
        const auto maybePause = [&]() {
            if (rng.nextBernoulli(0.001)) {
                const Cycle pause = rng.nextBounded(200);
                st.stage = 1;
                st.pauseEnd = net->now() + pause;
                net->run(pause);
            }
        };

        if (checkpointInterval > 0) {
            net->installCheckpoint(
                checkpointInterval, [&](Network &n) {
                    snap::SnapshotFile image =
                        snap::captureNetwork(n, "nettest");
                    snap::Writer rw;
                    writePhaseState(rw, st, rng);
                    image.sections.push_back(
                        {snap::kSectionRunner, rw.take()});
                    snap::writeSnapshotFileAtomic(
                        checkpointFile,
                        snap::encodeSnapshotFile(image),
                        checkpointKeep);
                });
        }

        Cycle t0 = 0;
        if (resumed && st.stage != 2) {
            // Finish the interrupted iteration. Its injections are
            // part of the restored network state; what remains is the
            // post-step pause draw (stage 0) or the tail of an
            // in-progress pause (stage 1).
            if (st.stage == 1) {
                if (net->now() < st.pauseEnd)
                    net->run(st.pauseEnd - net->now());
            } else {
                maybePause();
            }
            t0 = st.t + 1;
        }
        if (!resumed || st.stage != 2) {
            for (Cycle t = t0; t < st.run; ++t) {
                st.t = t;
                st.stage = 0;
                for (NodeId s = 0; s < net->numNodes(); ++s) {
                    if (!rng.nextBernoulli(rate))
                        continue;
                    NodeId d = s;
                    while (d == s) {
                        d = static_cast<NodeId>(rng.nextBounded(
                            static_cast<std::uint64_t>(
                                net->numNodes())));
                    }
                    const int flits =
                        rng.nextBernoulli(st.dataFrac)
                            ? 2 + static_cast<int>(rng.nextBounded(
                                  static_cast<std::uint64_t>(
                                      max_flits - 1)))
                            : 1;
                    net->injectPacket(s, d, flits, net->now(),
                                      TrafficClass::Synthetic);
                }
                net->step();
                maybePause();
            }
            st.stage = 2;
            st.drainEnd = net->now() + 500000;
        }

        const Cycle budget = net->now() < st.drainEnd
                                 ? st.drainEnd - net->now()
                                 : 0;
        if (!net->drain(budget)) {
            fatal("DRAIN FAILURE in phase ", phase, " (arch ",
                  archName(arch), ", rate ", rate, ", max_flits ",
                  max_flits, ", seed ", seed, "): ",
                  net->lastDrainReport().summary());
        }
        // Conservation under hard faults: every injected packet is
        // either delivered, explicitly written off as lost to a
        // fail-stop fault, or (transport runs) abandoned after
        // exhausting its E2E retry budget — never silently dropped
        // and never delivered twice (ejected counts logical packets).
        if (net->stats().packetsEjected +
                net->stats().faults.packetsLostHard +
                net->stats().faults.deliveryFailures !=
            net->stats().packetsInjected) {
            fatal("CONSERVATION FAILURE in phase ", phase, ": ",
                  net->stats().packetsInjected, " injected != ",
                  net->stats().packetsEjected, " ejected + ",
                  net->stats().faults.packetsLostHard, " lost-hard + ",
                  net->stats().faults.deliveryFailures,
                  " delivery-failures");
        }
        // With the transport on, lost-hard must stay zero: every hard
        // casualty is recoverable from the source window by design.
        if (params.faults.e2eTransport &&
            net->stats().faults.packetsLostHard != 0) {
            fatal("WRITE-OFF UNDER TRANSPORT in phase ", phase, ": ",
                  net->stats().faults.packetsLostHard,
                  " packet(s) written off despite the E2E window");
        }
        // Pure churn (every kill is healed, no permanent faults) with
        // the default-sized retry budget must deliver everything:
        // timeout * retries far exceeds the heal latency, so a single
        // delivery failure means the transport gave up too early.
        if (params.faults.e2eTransport && params.faults.churnWaves > 0 &&
            params.faults.hardLinkFaults == 0 &&
            params.faults.hardRouterFaults == 0 &&
            net->stats().faults.deliveryFailures != 0) {
            fatal("DELIVERY FAILURE UNDER CHURN in phase ", phase,
                  ": ", net->stats().faults.deliveryFailures,
                  " packet(s) abandoned although every fault heals");
        }
        if (params.faults.enabled && params.faults.protect &&
            net->stats().faults.corruptedEscapes != 0) {
            fatal("CORRUPTION ESCAPE in phase ", phase, ": ",
                  net->stats().faults.corruptedEscapes,
                  " corrupted payload(s) delivered despite recovery");
        }
        net->finishObservability();
        // Latency-provenance invariants (provenance=true runs): every
        // delivered packet's components summed exactly to its latency,
        // no span leaked past a full drain, and the aggregate still
        // conserves.
        if (const LatencyProvenance *prov = net->provenance()) {
            if (prov->conservationViolations() != 0) {
                fatal("PROVENANCE CONSERVATION FAILURE in phase ",
                      phase, ": ", prov->conservationViolations(),
                      " packet(s) whose latency components do not sum "
                      "to their measured latency");
            }
            if (prov->openSpans() != 0) {
                fatal("PROVENANCE LEAK in phase ", phase, ": ",
                      prov->openSpans(),
                      " span(s) still open after a full drain");
            }
            const LatencyBreakdown &b = prov->total();
            if (b.componentsSum() != b.totalCycles) {
                fatal("PROVENANCE AGGREGATE MISMATCH in phase ", phase,
                      ": components sum to ", b.componentsSum(),
                      " but measured latency totals ", b.totalCycles);
            }
            totalBreakdown.packets += b.packets;
            totalBreakdown.totalCycles += b.totalCycles;
            for (std::size_t i = 0; i < kNumLatencyComponents; ++i)
                totalBreakdown.comp[i] += b.comp[i];
        }
        total_faults += net->stats().faults.faultsInjected;
        total_retransmissions +=
            net->stats().faults.retransmissions;
        total_lost_hard += net->stats().faults.packetsLostHard;
        total_rejected += net->stats().faults.unreachableRejected;
        total_rebuilds += net->stats().faults.tableRebuilds;
        total_e2e_retx += net->stats().faults.e2eRetransmits;
        total_dup_suppressed += net->stats().faults.dupSuppressed;
        total_delivery_failures +=
            net->stats().faults.deliveryFailures;
        total_heals += net->stats().faults.linkHeals +
                       net->stats().faults.routerHeals;
        total_packets += net->stats().packetsEjected;
        total_cycles += net->now();
        // Percentile sanity: the histogram must cover exactly the
        // measured packets and its quantiles must be monotone — the
        // conservation-style contract for the percentile columns.
        const Histogram &lat = net->stats().latencyHist;
        if (lat.count() != net->stats().latency.count()) {
            fatal("HISTOGRAM COUNT MISMATCH in phase ", phase, ": ",
                  lat.count(), " histogram samples != ",
                  net->stats().latency.count(), " measured packets");
        }
        const double p50 = lat.percentile(50);
        const double p95 = lat.percentile(95);
        const double p99 = lat.percentile(99);
        if (!(p50 <= p95 && p95 <= p99)) {
            fatal("PERCENTILE ORDER VIOLATION in phase ", phase,
                  ": p50=", p50, " p95=", p95, " p99=", p99);
        }
        std::cout << "phase " << phase << ": rate="
                  << static_cast<int>(rate * 1000) << "m flits<="
                  << max_flits << " cycles=" << net->now()
                  << " packets=" << net->stats().packetsEjected
                  << " lat p50/p95/p99=" << p50 << "/" << p95 << "/"
                  << p99 << " widen=" << lat.widenings()
                  << " ovf=" << lat.overflowCount() << " ok\n";
        if (params.obs.telemetry.enabled) {
            // One heartbeat-formatted summary per phase: same line
            // renderer as noxsim's --progress stream, fed from the
            // phase's own wall clock and post-drain counters.
            TelemetryRecord rec;
            rec.sample.cycle = net->now();
            rec.sample.activeRouters = net->activeRouters();
            rec.sample.activeNics = net->activeNics();
            rec.sample.packetsInFlight = net->packetsInFlight();
            rec.sample.packetsInjected =
                net->stats().packetsInjected;
            rec.sample.packetsEjected = net->stats().packetsEjected;
            rec.sample.faultsInjected =
                net->stats().faults.faultsInjected;
            rec.sample.retransmissions =
                net->stats().faults.retransmissions;
            rec.sample.e2eRetransmits =
                net->stats().faults.e2eRetransmits;
            rec.sample.dupSuppressed =
                net->stats().faults.dupSuppressed;
            rec.sample.healsApplied =
                net->stats().faults.linkHeals +
                net->stats().faults.routerHeals;
            rec.sample.deadEntities = static_cast<std::uint64_t>(
                net->faultMap().deadRouterCount() +
                net->faultMap().explicitDeadLinkCount());
            const FlitArenaStats &arena =
                FlitArena::instance().stats();
            rec.sample.arenaLive = arena.live();
            rec.sample.arenaGrowths = arena.growths;
            rec.wallSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - phaseWall0)
                    .count();
            if (rec.wallSeconds > 0.0) {
                rec.cumCyclesPerSec =
                    static_cast<double>(net->now()) /
                    rec.wallSeconds;
                rec.instCyclesPerSec = rec.cumCyclesPerSec;
            }
            if (const DigestLedger *digest = net->digest()) {
                rec.sample.digestStrides =
                    static_cast<std::int64_t>(digest->strideCount());
                rec.sample.lastDigestCycle =
                    digest->lastDigestCycle();
            }
            rec.peakRssKb = RunTelemetry::peakRssKb();
            std::cout << "  telemetry: "
                      << RunTelemetry::formatLine(rec, 0) << "\n";
        }
    };

    if (!resumePath.empty()) {
        // Finish the interrupted phase from the snapshot, then report.
        // The RNG rides in the snapshot's RUNR section, so the resumed
        // phase replays the exact traffic the uninterrupted run would
        // have offered.
        auto net = makeNetwork(params, arch);
        PhaseState st;
        try {
            const snap::SnapshotFile file =
                snap::loadSnapshotFile(resumePath);
            snap::restoreNetwork(*net, file);
            const snap::Section &sec =
                file.require(snap::kSectionRunner);
            snap::Reader r(sec.payload.data(), sec.payload.size());
            readPhaseState(r, st, rng);
            r.expectEnd();
        } catch (const snap::SnapshotError &e) {
            fatal("cannot resume from '", resumePath, "': ",
                  e.what());
        }
        phase = st.phase;
        runOnePhase(net.get(), st, true);
    } else {
        while (maxPhases > 0
                   ? phase < maxPhases
                   : std::chrono::steady_clock::now() < deadline) {
            ++phase;
            auto net = makeNetwork(params, arch);
            // Randomized phase parameters, recorded in PhaseState so
            // a checkpointed phase resumes without re-drawing them.
            PhaseState st;
            st.phase = phase;
            st.rate = 0.01 + rng.nextDouble() * 0.22;
            st.dataFrac = rng.nextDouble() * 0.5;
            st.run = 500 + rng.nextBounded(3000);
            st.maxFlits =
                2 + static_cast<int>(rng.nextBounded(10));
            if (params.faults.churnWaves > 0) {
                // Churn mode: the phase must span the whole seeded
                // kill+heal schedule (default phase lengths end long
                // before churn_start), plus a margin so the last
                // wave's heals land under live traffic.
                const FaultParams &f = params.faults;
                st.run = std::max<Cycle>(
                    st.run,
                    f.churnStart +
                        static_cast<Cycle>(f.churnWaves) *
                            f.churnPeriod +
                        2000);
                // The zero-delivery-failure invariant only holds
                // below saturation: overloaded source queues delay a
                // packet past timeout * retry_limit and the bounded
                // retry budget then abandons it by design (and every
                // timeout injects another copy, amplifying the
                // overload). Keep the offered load comfortably under
                // the 2/k uniform-traffic capacity so queueing delay
                // is bounded by the heal latency, not the backlog.
                st.rate = 0.005 + rng.nextDouble() * 0.025;
            }
            runOnePhase(net.get(), st, false);
        }
    }

    std::cout << "SOAK PASSED: " << archName(arch) << ", " << phase
              << " phases, " << total_packets << " packets over "
              << total_cycles << " cycles, every delivery checked";
    if (params.faults.enabled) {
        std::cout << ", " << total_faults << " faults injected, "
                  << total_retransmissions << " retransmissions";
        if (params.faults.anyHard()) {
            std::cout << ", " << total_rebuilds
                      << " table rebuilds, " << total_lost_hard
                      << " packets written off, " << total_rejected
                      << " rejected unreachable";
        }
        if (params.faults.e2eTransport) {
            std::cout << ", " << total_e2e_retx
                      << " e2e retransmits, " << total_dup_suppressed
                      << " duplicates suppressed, "
                      << total_delivery_failures
                      << " delivery failures";
        }
        if (params.faults.churnWaves > 0)
            std::cout << ", " << total_heals << " heals applied";
    }
    std::cout << "\n";
    if (totalBreakdown.packets > 0) {
        std::cout << "latency attribution over "
                  << totalBreakdown.packets << " measured packets ("
                  << totalBreakdown.totalCycles << " cycles):\n";
        for (std::size_t i = 0; i < kNumLatencyComponents; ++i) {
            const auto c = static_cast<LatencyComponent>(i);
            std::cout << "  " << latencyComponentName(c) << ": "
                      << totalBreakdown.comp[i] << "\n";
        }
    }
    return 0;
}
