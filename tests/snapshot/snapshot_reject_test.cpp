/**
 * @file
 * Negative paths of the snapshot container: every way a snapshot can
 * be wrong — flipped bytes, truncation, bad magic, unknown version,
 * missing sections, or a configuration that doesn't match the run —
 * must throw a SnapshotError instead of restoring garbage.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

std::unique_ptr<Network>
buildNetwork(int buffer_depth = 4, int num_sources = -1,
             const FaultParams &faults = {})
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.router.bufferDepth = buffer_depth;
    params.sinkBufferDepth = buffer_depth;
    params.faults = faults;
    auto net = makeNetwork(params, RouterArch::Nox);

    static const Mesh mesh(4, 4);
    static const DestinationPattern pattern(
        PatternKind::UniformRandom, mesh, 0.2);
    Rng seeder(0xBAD5EED);
    const NodeId n_sources =
        num_sources < 0 ? net->numNodes()
                        : static_cast<NodeId>(num_sources);
    for (NodeId n = 0; n < n_sources; ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pattern, 0.05, 2, seeder.next()));
    }
    return net;
}

std::vector<std::uint8_t>
captureBytes(Network &net)
{
    return snap::encodeSnapshotFile(
        snap::captureNetwork(net, "test"));
}

/** Decode + restore into a fresh default network; used to prove a
 *  tampered image fails somewhere on that path. */
void
restoreFromBytes(const std::vector<std::uint8_t> &bytes,
                 const FaultParams &faults = {})
{
    const snap::SnapshotFile file =
        snap::decodeSnapshotFile(bytes.data(), bytes.size());
    auto net = buildNetwork(4, -1, faults);
    snap::restoreNetwork(*net, file);
}

/** E2E-transport-on fault config shared by the TRNS tamper tests. */
FaultParams
transportFaults()
{
    FaultParams faults;
    faults.enabled = true;
    faults.e2eTransport = true;
    return faults;
}

/** Offset of the last "TRNS" fourcc in @p payload — the transport
 *  component is the final piece of the NETW payload, so the last
 *  occurrence is its tag. */
std::size_t
findTrnsTag(const std::vector<std::uint8_t> &payload)
{
    static const std::uint8_t kTag[4] = {'T', 'R', 'N', 'S'};
    const auto it = std::find_end(payload.begin(), payload.end(),
                                  std::begin(kTag), std::end(kTag));
    if (it == payload.end()) {
        ADD_FAILURE() << "no TRNS tag in the NETW payload";
        return 0; // still in-bounds; the corrupt image must throw
    }
    return static_cast<std::size_t>(it - payload.begin());
}

class SnapshotReject : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto net = buildNetwork();
        net->run(200);
        bytes_ = captureBytes(*net);
        ASSERT_GT(bytes_.size(), 64u);
    }

    std::vector<std::uint8_t> bytes_;
};

TEST_F(SnapshotReject, IntactImageRestores)
{
    EXPECT_NO_THROW(restoreFromBytes(bytes_));
}

TEST_F(SnapshotReject, FlippedPayloadByteFailsCrc)
{
    // Flip one byte in the middle of the image (deep inside the NETW
    // payload) — the section CRC must catch it.
    std::vector<std::uint8_t> bad = bytes_;
    bad[bad.size() / 2] ^= 0x40;
    try {
        restoreFromBytes(bad);
        FAIL() << "corrupt image restored";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("CRC"),
                  std::string::npos)
            << "unexpected error: " << e.what();
    }
}

TEST_F(SnapshotReject, EveryTruncationPointRejected)
{
    // Chopping the image anywhere — header, section frame, payload,
    // trailing CRC — must throw, never crash or succeed.
    for (std::size_t len : {std::size_t{0}, std::size_t{4},
                            std::size_t{7}, std::size_t{12},
                            bytes_.size() / 4, bytes_.size() / 2,
                            bytes_.size() - 1}) {
        std::vector<std::uint8_t> bad(bytes_.begin(),
                                      bytes_.begin() +
                                          static_cast<long>(len));
        EXPECT_THROW(restoreFromBytes(bad), snap::SnapshotError)
            << "truncation to " << len << " bytes was accepted";
    }
}

TEST_F(SnapshotReject, BadMagicRejected)
{
    std::vector<std::uint8_t> bad = bytes_;
    bad[0] = 'X';
    EXPECT_THROW(restoreFromBytes(bad), snap::SnapshotError);
}

TEST_F(SnapshotReject, UnknownVersionRejected)
{
    // The version u32 sits right after the 8-byte magic.
    std::vector<std::uint8_t> bad = bytes_;
    bad[8] = 0xFF;
    try {
        restoreFromBytes(bad);
        FAIL() << "future-version image restored";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << "unexpected error: " << e.what();
    }
}

TEST_F(SnapshotReject, MissingSectionRejected)
{
    snap::SnapshotFile file = snap::decodeSnapshotFile(
        bytes_.data(), bytes_.size());
    file.sections.erase(file.sections.begin() + 1); // drop NETW
    const std::vector<std::uint8_t> bad =
        snap::encodeSnapshotFile(file);
    EXPECT_THROW(restoreFromBytes(bad), snap::SnapshotError);
}

TEST_F(SnapshotReject, ConfigMismatchRejected)
{
    // Same snapshot, different buffer depth: the construction
    // fingerprint must refuse the restore before any state moves.
    const snap::SnapshotFile file = snap::decodeSnapshotFile(
        bytes_.data(), bytes_.size());
    auto net = buildNetwork(/*buffer_depth=*/8);
    try {
        snap::restoreNetwork(*net, file);
        FAIL() << "mismatched configuration restored";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("configuration"),
                  std::string::npos)
            << "unexpected error: " << e.what();
    }
}

TEST_F(SnapshotReject, SourceCountMismatchRejected)
{
    // The fingerprint covers construction params, not the attached
    // sources; the NETW decoder still refuses a source-count drift.
    const snap::SnapshotFile file = snap::decodeSnapshotFile(
        bytes_.data(), bytes_.size());
    auto net = buildNetwork(4, /*num_sources=*/3);
    EXPECT_THROW(snap::restoreNetwork(*net, file),
                 snap::SnapshotError);
}

TEST(SnapshotRejectTransport, TamperedTransportTagRejected)
{
    // Corrupt the 'TRNS' component tag inside the decoded NETW
    // payload, then re-encode so the section CRC is fresh: the
    // container-level checks all pass and only the structural fourcc
    // check at the transport boundary can refuse the image.
    auto donor = buildNetwork(4, -1, transportFaults());
    donor->run(200);
    ASSERT_GT(donor->transport()->windowSize(), 0u);
    const std::vector<std::uint8_t> bytes = captureBytes(*donor);

    snap::SnapshotFile file =
        snap::decodeSnapshotFile(bytes.data(), bytes.size());
    for (snap::Section &sec : file.sections) {
        if (sec.tag != snap::kSectionNetwork)
            continue;
        sec.payload[findTrnsTag(sec.payload)] ^= 0x20; // 'T' -> 't'
    }
    const std::vector<std::uint8_t> bad =
        snap::encodeSnapshotFile(file);
    try {
        restoreFromBytes(bad, transportFaults());
        FAIL() << "tampered transport tag restored";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("TRNS"),
                  std::string::npos)
            << "unexpected error: " << e.what();
    }
}

TEST(SnapshotRejectTransport, TransportCountOverflowRejected)
{
    // Blow up the window-entry count (the u64 right after the TRNS
    // tag) under a fresh CRC: the reader must hit the end of the
    // payload and throw, never allocate its way into garbage.
    auto donor = buildNetwork(4, -1, transportFaults());
    donor->run(200);
    const std::vector<std::uint8_t> bytes = captureBytes(*donor);

    snap::SnapshotFile file =
        snap::decodeSnapshotFile(bytes.data(), bytes.size());
    for (snap::Section &sec : file.sections) {
        if (sec.tag != snap::kSectionNetwork)
            continue;
        const std::size_t tag = findTrnsTag(sec.payload);
        ASSERT_LT(tag + 12, sec.payload.size());
        sec.payload[tag + 11] = 0xFF; // count's top byte
    }
    EXPECT_THROW(
        restoreFromBytes(snap::encodeSnapshotFile(file),
                         transportFaults()),
        snap::SnapshotError);
}

TEST(SnapshotRejectTransport, TransportPresenceMismatchRejected)
{
    // A transport-enabled snapshot must not restore into a network
    // built without the transport: the construction fingerprint
    // refuses before any state moves.
    auto donor = buildNetwork(4, -1, transportFaults());
    donor->run(200);
    const std::vector<std::uint8_t> bytes = captureBytes(*donor);
    try {
        restoreFromBytes(bytes);
        FAIL() << "transport snapshot restored without transport";
    } catch (const snap::SnapshotError &e) {
        EXPECT_NE(std::string(e.what()).find("configuration"),
                  std::string::npos)
            << "unexpected error: " << e.what();
    }
}

TEST_F(SnapshotReject, FileIoErrorsAreStructured)
{
    EXPECT_THROW(snap::loadSnapshotFile(
                     "/nonexistent-dir/nonexistent.snap"),
                 snap::SnapshotError);
    EXPECT_THROW(
        snap::writeSnapshotFileAtomic(
            "/nonexistent-dir/nonexistent.snap", bytes_, 2),
        snap::SnapshotError);
}

} // namespace
} // namespace nox
