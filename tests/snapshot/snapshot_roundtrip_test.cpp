/**
 * @file
 * Checkpoint/resume equivalence: a run snapshotted mid-flight and
 * restored into a freshly built network must finish with NetworkStats
 * (and provenance aggregates) bit-identical to the uninterrupted run.
 *
 * The matrix covers every router architecture, every scheduling
 * kernel, and the soft-, hard- and churn-fault regimes — including a
 * checkpoint taken *after* a fail-stop kill, which exercises the
 * kill-list replay + table-rebuild path of Network::restore, and a
 * mid-churn checkpoint (dead entities still pending their heal, E2E
 * transport window non-empty) which exercises the heal-then-rekill
 * replay plus transport/TRNS restore. A file-layer case round-trips
 * through writeSnapshotFileAtomic to prove the on-disk rotation chain
 * restores just as faithfully.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "obs/digest.hpp"
#include "routers/factory.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

constexpr Cycle kWarmup = 300;
constexpr Cycle kMeasure = 900;
constexpr Cycle kDrainLimit = 20000;
constexpr Cycle kMid = 600; ///< checkpoint cycle (mid-measurement)
constexpr std::uint64_t kSeed = 0x5EED5;

enum class Regime { Clean, Soft, Hard, Churn };

FaultParams
faultsFor(Regime regime)
{
    FaultParams faults;
    switch (regime) {
    case Regime::Clean:
        break;
    case Regime::Soft:
        faults.enabled = true;
        faults.bitflipRate = 0.002;
        faults.dropRate = 0.001;
        faults.creditLossRate = 0.001;
        faults.seed = 0xD15EA5E;
        break;
    case Regime::Hard:
        faults.enabled = true;
        faults.hardLinkFaults = 3;
        faults.hardRouterFaults = 1;
        faults.hardFaultCycle = 750;
        faults.seed = 0xD15EA5E;
        break;
    case Regime::Churn:
        // One kill+heal wave timed so kMid checkpoints mid-churn:
        // kill at 400, heal at 700, checkpoint at 600 — the image
        // carries dead entities, a pending heal and a live E2E
        // transport window with armed timeouts.
        faults.enabled = true;
        faults.e2eTransport = true;
        faults.e2eTimeout = 150;
        faults.churnWaves = 1;
        faults.churnStart = 400;
        faults.churnPeriod = 1000;
        faults.churnHealAfter = 300;
        faults.churnLinks = 2;
        faults.churnRouters = 1;
        faults.seed = 0xD15EA5E;
        break;
    }
    return faults;
}

std::unique_ptr<Network>
buildNetwork(RouterArch arch, SchedulingMode mode,
             const FaultParams &faults = {}, int vc_count = 1,
             const ObsParams &obs = {})
{
    NetworkParams params;
    params.width = 6;
    params.height = 6;
    params.schedulingMode = mode;
    params.faults = faults;
    params.router.vcCount = vc_count;
    params.obs = obs;
    auto net = makeNetwork(params, arch);

    static const Mesh mesh(6, 6);
    static const DestinationPattern pattern(
        PatternKind::UniformRandom, mesh, 0.2);
    Rng seeder(kSeed);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pattern, 0.06, 3, seeder.next()));
    }
    net->setMeasurementWindow(kWarmup, kWarmup + kMeasure);
    return net;
}

/** Finish @p net from wherever it is and return its final stats. */
NetworkStats
finishRun(Network &net)
{
    const Cycle end = kWarmup + kMeasure;
    if (net.now() < end)
        net.run(end - net.now());
    EXPECT_TRUE(net.drain(kDrainLimit))
        << net.lastDrainReport().summary();
    return net.stats();
}

/**
 * Snapshot @p make()'s network at @p mid, push the image through the
 * full file encoding (frame + CRC) in memory, restore into a second
 * freshly built network, and return that network finished to
 * completion.
 */
template <typename MakeFn>
NetworkStats
roundtripAt(Cycle mid, MakeFn make,
            std::unique_ptr<Network> *keep = nullptr)
{
    auto donor = make();
    donor->run(mid);
    snap::SnapshotFile image = snap::captureNetwork(*donor, "test");
    const std::vector<std::uint8_t> bytes =
        snap::encodeSnapshotFile(image);
    const snap::SnapshotFile decoded =
        snap::decodeSnapshotFile(bytes.data(), bytes.size());

    auto resumed = make();
    const snap::SnapshotMeta meta =
        snap::restoreNetwork(*resumed, decoded);
    EXPECT_EQ(meta.cycle, mid);
    EXPECT_EQ(resumed->now(), mid);
    // The restored network must already agree with the donor.
    EXPECT_TRUE(identicalStats(donor->stats(), resumed->stats()));

    const NetworkStats stats = finishRun(*resumed);
    if (keep)
        *keep = std::move(resumed);
    return stats;
}

using RoundtripParam =
    std::tuple<RouterArch, SchedulingMode, Regime>;

class SnapshotRoundtrip
    : public ::testing::TestWithParam<RoundtripParam>
{
};

TEST_P(SnapshotRoundtrip, ResumedRunBitIdentical)
{
    const auto [arch, mode, regime] = GetParam();
    const FaultParams faults = faultsFor(regime);
    const auto make = [&] { return buildNetwork(arch, mode, faults); };

    auto reference = make();
    const NetworkStats ref = finishRun(*reference);
    const NetworkStats resumed = roundtripAt(kMid, make);

    EXPECT_TRUE(identicalStats(ref, resumed))
        << archName(arch) << "/" << schedulingModeName(mode)
        << ": resumed run diverged from the uninterrupted run";
}

TEST_P(SnapshotRoundtrip, DigestInvariantUnderRestore)
{
    // digest(restore(capture(net))) == digest(net): the digest reads
    // the same canonical bytes the snapshot writes, so a restore that
    // loses any digested state — or a digest that hashes anything a
    // snapshot does not faithfully carry — breaks this immediately,
    // component by component. Then both nets step in lockstep and
    // must keep agreeing: restore-then-run equals run.
    const auto [arch, mode, regime] = GetParam();
    const FaultParams faults = faultsFor(regime);
    const auto make = [&] { return buildNetwork(arch, mode, faults); };

    auto donor = make();
    donor->run(kMid);
    const DigestStride before = donor->computeDigestStride();
    EXPECT_EQ(before.cycle, kMid);
    EXPECT_NE(before.fold(), 0u);

    const std::vector<std::uint8_t> bytes = snap::encodeSnapshotFile(
        snap::captureNetwork(*donor, "test"));
    auto restored = make();
    snap::restoreNetwork(
        *restored, snap::decodeSnapshotFile(bytes.data(), bytes.size()));
    const DigestStride after = restored->computeDigestStride();
    EXPECT_EQ(before, after)
        << archName(arch) << "/" << schedulingModeName(mode)
        << ": restore changed digested state in "
        << ::testing::PrintToString(
               divergentComponents(before, after));

    snap::Writer scratchA, scratchB;
    for (int i = 0; i < 32; ++i) {
        donor->step();
        restored->step();
        const DigestStride a = donor->computeDigestStride(scratchA);
        const DigestStride b =
            restored->computeDigestStride(scratchB);
        ASSERT_EQ(a, b)
            << archName(arch) << "/" << schedulingModeName(mode)
            << ": donor and restored net diverged " << (i + 1)
            << " cycles after restore in "
            << ::testing::PrintToString(divergentComponents(a, b));
    }
}

INSTANTIATE_TEST_SUITE_P(
    ArchesKernelsRegimes, SnapshotRoundtrip,
    ::testing::Combine(
        ::testing::Values(RouterArch::NonSpeculative,
                          RouterArch::SpecFast,
                          RouterArch::SpecAccurate, RouterArch::Nox),
        ::testing::Values(SchedulingMode::AlwaysTick,
                          SchedulingMode::ActivityDriven,
                          SchedulingMode::EquivalenceCheck),
        ::testing::Values(Regime::Clean, Regime::Soft, Regime::Hard,
                          Regime::Churn)),
    [](const ::testing::TestParamInfo<RoundtripParam> &info) {
        // No structured bindings here: the comma list inside their
        // square brackets would split the macro's arguments.
        const Regime regime = std::get<2>(info.param);
        std::string name =
            std::string(archName(std::get<0>(info.param))) + "_" +
            schedulingModeName(std::get<1>(info.param)) + "_" +
            (regime == Regime::Clean  ? "clean"
             : regime == Regime::Soft ? "soft"
             : regime == Regime::Hard ? "hard"
                                      : "churn");
        std::erase_if(name, [](char c) {
            return c != '_' &&
                   !std::isalnum(static_cast<unsigned char>(c));
        });
        return name;
    });

TEST(SnapshotRoundtripExtra, CheckpointAfterHardKillReplaysKills)
{
    // A snapshot taken after the fail-stop kills fired must replay
    // the dead routers/links into the fresh network (one table
    // rebuild) and still finish bit-identically.
    const FaultParams faults = faultsFor(Regime::Hard);
    const auto make = [&] {
        return buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick, faults);
    };
    auto reference = make();
    const NetworkStats ref = finishRun(*reference);
    ASSERT_GT(ref.faults.hardRouterFaults, 0u);

    const NetworkStats resumed = roundtripAt(1000, make);
    EXPECT_TRUE(identicalStats(ref, resumed))
        << "post-kill checkpoint diverged";
}

TEST(SnapshotRoundtripExtra, MidChurnCheckpointIsGenuinelyMidChurn)
{
    // Guard the matrix's churn regime against silently degenerating:
    // at the checkpoint cycle the donor must actually hold dead
    // entities (kill applied, heal still pending) and a non-empty
    // E2E transport window, or the regime isn't testing what the
    // header claims. Then prove that exact state round-trips.
    const FaultParams faults = faultsFor(Regime::Churn);
    const auto make = [&] {
        return buildNetwork(RouterArch::Nox,
                            SchedulingMode::EquivalenceCheck, faults);
    };

    auto probe = make();
    probe->run(kMid);
    EXPECT_GT(probe->faultMap().deadRouterCount() +
                  probe->faultMap().explicitDeadLinkCount(),
              0)
        << "churn regime no longer has dead entities at kMid";
    ASSERT_NE(probe->transport(), nullptr);
    EXPECT_GT(probe->transport()->windowSize(), 0u)
        << "churn regime has an empty transport window at kMid";

    auto reference = make();
    const NetworkStats ref = finishRun(*reference);
    ASSERT_GT(ref.faults.linkHeals + ref.faults.routerHeals, 0u);

    std::unique_ptr<Network> kept;
    const NetworkStats resumed = roundtripAt(kMid, make, &kept);
    EXPECT_TRUE(identicalStats(ref, resumed))
        << "mid-churn resumed run diverged";
    // Post-drain the resumed network's window must be empty again.
    EXPECT_EQ(kept->transport()->windowSize(), 0u);
}

TEST(SnapshotRoundtripExtra, VirtualChannelRouterRoundtrips)
{
    const auto make = [&] {
        return buildNetwork(RouterArch::NonSpeculative,
                            SchedulingMode::AlwaysTick, {}, 2);
    };
    auto reference = make();
    const NetworkStats ref = finishRun(*reference);
    const NetworkStats resumed = roundtripAt(kMid, make);
    EXPECT_TRUE(identicalStats(ref, resumed))
        << "VC router resumed run diverged";
}

TEST(SnapshotRoundtripExtra, ObservabilityStateRoundtrips)
{
    // Tracing, metrics and provenance all enabled: the resumed run's
    // provenance aggregate (the breakdown noxsim prints) must match
    // the uninterrupted run's exactly.
    ObsParams obs;
    obs.trace.enabled = true;
    obs.trace.capacity = 1u << 12;
    obs.trace.flightPath = ""; // no file writes from a unit test
    obs.metrics.enabled = true;
    obs.metrics.interval = 128;
    obs.metrics.heatmap = false;
    obs.prov.enabled = true;
    const auto make = [&] {
        return buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick,
                            faultsFor(Regime::Soft), 1, obs);
    };

    auto reference = make();
    const NetworkStats ref = finishRun(*reference);
    const LatencyBreakdown refB = reference->provenance()->total();

    std::unique_ptr<Network> kept;
    const NetworkStats resumed = roundtripAt(kMid, make, &kept);
    EXPECT_TRUE(identicalStats(ref, resumed))
        << "obs-enabled resumed run diverged";

    const LatencyBreakdown &b = kept->provenance()->total();
    EXPECT_EQ(refB.packets, b.packets);
    EXPECT_EQ(refB.totalCycles, b.totalCycles);
    for (std::size_t i = 0; i < kNumLatencyComponents; ++i)
        EXPECT_EQ(refB.comp[i], b.comp[i])
            << "provenance component " << i << " diverged";
    EXPECT_EQ(kept->provenance()->conservationViolations(), 0u);
    EXPECT_EQ(kept->provenance()->openSpans(), 0u);
}

TEST(SnapshotRoundtripExtra, FileLayerRotatesAndRestores)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "nox-snapshot-test";
    fs::create_directories(dir);
    const std::string path = (dir / "ckpt.snap").string();
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());

    const auto make = [&] {
        return buildNetwork(RouterArch::Nox,
                            SchedulingMode::ActivityDriven);
    };
    auto reference = make();
    const NetworkStats ref = finishRun(*reference);

    // Two checkpoints: the older one must rotate to "<path>.1".
    auto donor = make();
    donor->run(kMid / 2);
    snap::writeSnapshotFileAtomic(
        path,
        snap::encodeSnapshotFile(snap::captureNetwork(*donor, "test")),
        2);
    donor->run(kMid - donor->now());
    snap::writeSnapshotFileAtomic(
        path,
        snap::encodeSnapshotFile(snap::captureNetwork(*donor, "test")),
        2);
    EXPECT_TRUE(fs::exists(path));
    EXPECT_TRUE(fs::exists(path + ".1"));

    auto resumed = make();
    const snap::SnapshotMeta meta =
        snap::restoreNetwork(*resumed, snap::loadSnapshotFile(path));
    EXPECT_EQ(meta.cycle, kMid);
    EXPECT_EQ(meta.tool, "test");
    EXPECT_TRUE(identicalStats(ref, finishRun(*resumed)))
        << "file-layer resumed run diverged";

    // The rotated predecessor is an equally valid resume point.
    auto older = make();
    const snap::SnapshotMeta ometa = snap::restoreNetwork(
        *older, snap::loadSnapshotFile(path + ".1"));
    EXPECT_EQ(ometa.cycle, kMid / 2);
    EXPECT_TRUE(identicalStats(ref, finishRun(*older)))
        << "rotated-snapshot resumed run diverged";

    fs::remove_all(dir);
}

} // namespace
} // namespace nox
