/** @file Tests for the technology/wire/SRAM/crossbar models and the
 *  Table-2 clock-period calibration. */

#include <gtest/gtest.h>

#include "power/area_model.hpp"
#include "power/crossbar_model.hpp"
#include "power/energy_model.hpp"
#include "power/sram_model.hpp"
#include "power/timing_model.hpp"
#include "power/wire_model.hpp"

namespace nox {
namespace {

Technology
tech()
{
    return Technology::tsmc65();
}

PhysicalParams
phys()
{
    return PhysicalParams{};
}

TEST(WireModel, PaperLinkDelay98ps)
{
    // §6.1: "98 ps link latency for the 2 mm interconnection channel".
    const WireModel link(tech(), 2.0, 64);
    EXPECT_NEAR(link.delayPs(), 98.0, 1.0);
}

TEST(WireModel, DelayLinearInLength)
{
    const WireModel a(tech(), 1.0, 64);
    const WireModel b(tech(), 2.0, 64);
    EXPECT_NEAR(2.0 * a.delayPs(), b.delayPs(), 1e-9);
}

TEST(WireModel, EnergyScalesWithWidthAndLength)
{
    const WireModel narrow(tech(), 2.0, 32);
    const WireModel wide(tech(), 2.0, 64);
    EXPECT_NEAR(2.0 * narrow.energyPerFlitPj(), wide.energyPerFlitPj(),
                1e-9);
    const WireModel half(tech(), 1.0, 64);
    EXPECT_NEAR(2.0 * half.energyPerFlitPj(), wide.energyPerFlitPj(),
                1e-9);
    // Sanity: a 2 mm 64-bit flit transfer costs O(10) pJ at 65 nm.
    EXPECT_GT(wide.energyPerFlitPj(), 5.0);
    EXPECT_LT(wide.energyPerFlitPj(), 40.0);
}

TEST(WireModel, WastedDriveCostsAsMuchAsRealOne)
{
    // The core of the paper's energy argument: a misspeculating
    // router toggles the channel with an indeterminate value.
    const WireModel link(tech(), 2.0, 64);
    EXPECT_DOUBLE_EQ(link.wastedDriveEnergyPj(),
                     link.energyPerFlitPj());
}

TEST(SramModel, PaperReadDelay248ps)
{
    // §6.1: "All router latencies include a 248 ps SRAM delay".
    const SramModel sram(tech(), 4, 64);
    EXPECT_NEAR(sram.readDelayPs(), 248.0, 1.0);
}

TEST(SramModel, EnergySaneAndWriteCostsMore)
{
    const SramModel sram(tech(), 4, 64);
    EXPECT_GT(sram.readEnergyPj(), 0.5);
    EXPECT_LT(sram.readEnergyPj(), 5.0);
    EXPECT_GT(sram.writeEnergyPj(), sram.readEnergyPj());
}

TEST(SramModel, DeeperArraysSlower)
{
    const SramModel four(tech(), 4, 64);
    const SramModel sixteen(tech(), 16, 64);
    EXPECT_GT(sixteen.readDelayPs(), four.readDelayPs());
    EXPECT_GT(sixteen.areaUm2(), four.areaUm2());
}

TEST(CrossbarModel, XorCostsMoreEnergyPerOutput)
{
    // §2.5: "XOR logic gates have higher logical effort than
    // comparable tristate based multiplexers, consuming marginally
    // more power".
    const CrossbarModel mux(tech(), XbarKind::Mux, 5, 64);
    const CrossbarModel xr(tech(), XbarKind::Xor, 5, 64);
    EXPECT_GT(xr.outputDriveEnergyPj(), mux.outputDriveEnergyPj());
    // "Marginal" at the per-flit-hop level: the whole switch (input
    // row + output column) grows ~10%, which is well under 1% of a
    // hop's total energy (the 2 mm channel dominates).
    const double mux_total =
        mux.inputDriveEnergyPj() + mux.outputDriveEnergyPj();
    const double xor_total =
        xr.inputDriveEnergyPj() + xr.outputDriveEnergyPj();
    EXPECT_LT(xor_total, 1.15 * mux_total);
    const WireModel link(tech(), 2.0, 64);
    EXPECT_LT(xor_total - mux_total,
              0.02 * link.energyPerFlitPj());
}

TEST(CrossbarModel, DelaysComparable)
{
    // §2.5: the XOR switch avoids routing time-critical select wires,
    // so traversal delays are comparable.
    const CrossbarModel mux(tech(), XbarKind::Mux, 5, 64);
    const CrossbarModel xr(tech(), XbarKind::Xor, 5, 64);
    EXPECT_NEAR(xr.traversalDelayPs(), mux.traversalDelayPs(), 20.0);
}

TEST(TimingModel, Table2ClockPeriods)
{
    const TimingModel tm(tech(), phys());
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::NonSpeculative), 0.92,
                0.005);
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::SpecFast), 0.69, 0.005);
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::SpecAccurate), 0.72,
                0.005);
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::Nox), 0.76, 0.005);
}

TEST(TimingModel, DecodeOverheadApprox40ps)
{
    // §6.1: NoX vs Spec-Accurate clock difference is the decode logic,
    // "approximately 40 ps of overhead".
    const TimingModel tm(tech(), phys());
    const double delta =
        tm.clockPeriodNs(RouterArch::Nox) * 1000.0 -
        tm.clockPeriodNs(RouterArch::SpecAccurate) * 1000.0;
    EXPECT_NEAR(delta, 40.0, 6.0);
}

TEST(TimingModel, RelativeSpeedupsMatchPaper)
{
    // §6.1: Spec-Fast, Spec-Accurate, NoX are 33.3%, 27.8%, 21.1%
    // faster than the non-speculative router on a clock-period basis.
    const TimingModel tm(tech(), phys());
    const double base = tm.clockPeriodNs(RouterArch::NonSpeculative);
    // "Faster" in §6.1 is the frequency ratio: f/f_base - 1.
    auto faster = [&](RouterArch a) {
        return (base / tm.clockPeriodNs(a) - 1.0) * 100.0;
    };
    EXPECT_NEAR(faster(RouterArch::SpecFast), 33.3, 2.0);
    EXPECT_NEAR(faster(RouterArch::SpecAccurate), 27.8, 2.0);
    EXPECT_NEAR(faster(RouterArch::Nox), 21.1, 2.0);
}

TEST(TimingModel, BreakdownComponentsSumToTotal)
{
    const TimingModel tm(tech(), phys());
    for (RouterArch arch : kAllArchs) {
        const TimingBreakdown b = tm.breakdown(arch);
        double sum = 0.0;
        for (const auto &c : b.components)
            sum += c.delayPs;
        EXPECT_NEAR(sum, b.totalPs, 1e-9);
        EXPECT_GE(b.components.size(), 3u);
    }
}

TEST(TimingModel, PeriodOrderingMatchesPaper)
{
    const TimingModel tm(tech(), phys());
    EXPECT_LT(tm.clockPeriodNs(RouterArch::SpecFast),
              tm.clockPeriodNs(RouterArch::SpecAccurate));
    EXPECT_LT(tm.clockPeriodNs(RouterArch::SpecAccurate),
              tm.clockPeriodNs(RouterArch::Nox));
    EXPECT_LT(tm.clockPeriodNs(RouterArch::Nox),
              tm.clockPeriodNs(RouterArch::NonSpeculative));
}

TEST(AreaModel, NoxDecodeColumn28um)
{
    // §6.2: "The NoX architecture incurs 28.2 um additional
    // horizontal length".
    const AreaModel am(tech(), phys());
    EXPECT_NEAR(am.decodeMaskWidthUm(), 28.2, 0.5);
}

TEST(AreaModel, NoxTileOverhead17Percent)
{
    // §6.2: "the total NoX router tile incurs a 17.2% area penalty".
    const AreaModel am(tech(), phys());
    EXPECT_NEAR(am.noxOverheadFraction(), 0.172, 0.01);
}

TEST(AreaModel, BlocksSumToWidth)
{
    const AreaModel am(tech(), phys());
    for (RouterArch arch :
         {RouterArch::NonSpeculative, RouterArch::Nox}) {
        const AreaBreakdown b = am.breakdown(arch);
        double w = 0.0;
        for (const auto &blk : b.blocks)
            w += blk.widthUm;
        EXPECT_NEAR(w, b.widthUm, 1e-9);
    }
}

TEST(EnergyModel, BreakdownAccumulatesEvents)
{
    const EnergyModel em(tech(), RouterArch::Nox, phys());
    EnergyEvents e;
    e.linkFlits = 10;
    e.bufferWrites = 10;
    e.bufferReads = 10;
    e.xbarInputDrives = 10;
    e.xbarOutputCycles = 10;
    e.cycles = 100;
    const EnergyBreakdown b = em.energyOf(e);
    EXPECT_NEAR(b.linkPj, 10.0 * em.linkFlitPj(), 1e-9);
    EXPECT_NEAR(b.bufferPj,
                10.0 * (em.bufferWritePj() + em.bufferReadPj()), 1e-9);
    EXPECT_NEAR(b.clockPj, 100.0 * em.clockCyclePj(), 1e-9);
    EXPECT_GT(b.totalPj(), 0.0);
}

TEST(EnergyModel, LinkDominatesTypicalMix)
{
    // Per-hop event mix of one flit: write+read+switch+link. The
    // channel should dominate (the premise behind Figure 12's ~74%
    // link share).
    const EnergyModel em(tech(), RouterArch::Nox, phys());
    EnergyEvents e;
    e.linkFlits = 1;
    e.bufferWrites = 1;
    e.bufferReads = 1;
    e.xbarInputDrives = 1;
    e.xbarOutputCycles = 1;
    e.arbDecisions = 1;
    const EnergyBreakdown b = em.energyOf(e);
    EXPECT_GT(b.linkFraction(), 0.55);
    EXPECT_LT(b.linkFraction(), 0.9);
}

TEST(EnergyModel, WastedCyclesChargedToLink)
{
    const EnergyModel em(tech(), RouterArch::SpecFast, phys());
    EnergyEvents clean, wasteful;
    clean.linkFlits = 10;
    wasteful.linkFlits = 10;
    wasteful.linkWastedCycles = 2;
    EXPECT_GT(em.energyOf(wasteful).linkPj,
              em.energyOf(clean).linkPj);
}

TEST(EnergyModel, PowerFromEnergyAndTime)
{
    const EnergyModel em(tech(), RouterArch::Nox, phys());
    EnergyEvents e;
    e.linkFlits = 1000;
    // 1000 flits * ~16 pJ over 1000 cycles * 0.76 ns.
    const double w = em.powerW(e, 0.76, 1000);
    const double expect =
        1000.0 * em.linkFlitPj() / (1000.0 * 0.76) * 1e-3;
    EXPECT_NEAR(w, expect, 1e-12);
    EXPECT_EQ(em.powerW(e, 0.76, 0), 0.0);
}

} // namespace
} // namespace nox
