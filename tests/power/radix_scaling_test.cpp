/** @file §8 physical-model scaling tests: how timing/energy/area
 *  respond to higher-radix routers and longer channels. */

#include <gtest/gtest.h>

#include "power/area_model.hpp"
#include "power/energy_model.hpp"
#include "power/timing_model.hpp"

namespace nox {
namespace {

PhysicalParams
radix(int ports, double link_mm)
{
    PhysicalParams p;
    p.ports = ports;
    p.linkLengthMm = link_mm;
    return p;
}

TEST(RadixScaling, ArbiterDelayGrowsWithPorts)
{
    const Technology tech = Technology::tsmc65();
    const TimingModel r5(tech, radix(5, 2.0));
    const TimingModel r8(tech, radix(8, 2.0));
    const TimingModel r12(tech, radix(12, 2.0));
    EXPECT_GT(r8.arbiterPs(), r5.arbiterPs());
    EXPECT_GT(r12.arbiterPs(), r8.arbiterPs());
    // ...but sub-linearly (log-depth trees).
    EXPECT_LT(r12.arbiterPs(), r5.arbiterPs() * 12.0 / 5.0);
}

TEST(RadixScaling, NoxClockPenaltyShrinksAtHigherRadix)
{
    // §8: the fixed ~40 ps decode cost amortizes over the longer
    // critical paths of higher-radix, longer-channel routers.
    const Technology tech = Technology::tsmc65();
    const TimingModel mesh(tech, radix(5, 2.0));
    const TimingModel cmesh(tech, radix(8, 4.0));

    auto penalty = [](const TimingModel &tm) {
        return tm.clockPeriodNs(RouterArch::Nox) /
                   tm.clockPeriodNs(RouterArch::SpecAccurate) -
               1.0;
    };
    EXPECT_LT(penalty(cmesh), penalty(mesh));
    EXPECT_GT(penalty(cmesh), 0.0); // still a penalty, just smaller
}

TEST(RadixScaling, AllPeriodsGrowWithRadixAndChannel)
{
    const Technology tech = Technology::tsmc65();
    const TimingModel mesh(tech, radix(5, 2.0));
    const TimingModel cmesh(tech, radix(8, 4.0));
    for (RouterArch arch : kAllArchs) {
        EXPECT_GT(cmesh.clockPeriodNs(arch),
                  mesh.clockPeriodNs(arch))
            << archName(arch);
    }
}

TEST(RadixScaling, LinkEnergyScalesWithLength)
{
    const Technology tech = Technology::tsmc65();
    const EnergyModel e2(tech, RouterArch::Nox, radix(5, 2.0));
    const EnergyModel e4(tech, RouterArch::Nox, radix(8, 4.0));
    EXPECT_NEAR(e4.linkFlitPj(), 2.0 * e2.linkFlitPj(),
                e2.linkFlitPj() * 0.01);
}

TEST(RadixScaling, WiderCrossbarCostsMoreEnergy)
{
    const Technology tech = Technology::tsmc65();
    const EnergyModel r5(tech, RouterArch::Nox, radix(5, 2.0));
    const EnergyModel r8(tech, RouterArch::Nox, radix(8, 2.0));
    EXPECT_GT(r8.xbarInputPj(), r5.xbarInputPj());
    EXPECT_GT(r8.xbarOutputPj(), r5.xbarOutputPj());
}

TEST(RadixScaling, DecodeColumnGrowsWithPorts)
{
    const Technology tech = Technology::tsmc65();
    const AreaModel a5(tech, radix(5, 2.0));
    const AreaModel a8(tech, radix(8, 2.0));
    // One decode register + XOR column per input port.
    EXPECT_GT(a8.decodeMaskWidthUm(), a5.decodeMaskWidthUm());
}

TEST(RadixScaling, Radix5RemainsTable2Calibrated)
{
    // The generalization must not move the paper-configuration
    // numbers (Table 2 regression).
    const Technology tech = Technology::tsmc65();
    const TimingModel tm(tech, PhysicalParams{});
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::NonSpeculative), 0.92,
                0.005);
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::SpecFast), 0.69, 0.005);
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::SpecAccurate), 0.72,
                0.005);
    EXPECT_NEAR(tm.clockPeriodNs(RouterArch::Nox), 0.76, 0.005);
}

} // namespace
} // namespace nox
