/** @file Tests for the §2.8 virtual-channel exploration router. */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "routers/vc_router.hpp"

namespace nox {
namespace {

NetworkParams
vcParams(int vcs = 2)
{
    NetworkParams p;
    p.width = 4;
    p.height = 4;
    p.router.vcCount = vcs;
    return p;
}

TEST(VcRouter, FactoryBuildsVcRouterWhenRequested)
{
    auto net = makeNetwork(vcParams(), RouterArch::NonSpeculative);
    EXPECT_EQ(net->router(0).vcCount(), 2);
    EXPECT_NE(dynamic_cast<VcRouter *>(&net->router(0)), nullptr);
}

TEST(VcRouterDeathTest, VcsRequireNonSpeculative)
{
    EXPECT_DEATH(makeNetwork(vcParams(), RouterArch::Nox),
                 "requires the non-speculative");
}

TEST(VcRouter, DeliversOnBothClasses)
{
    auto net = makeNetwork(vcParams(), RouterArch::NonSpeculative);
    net->injectPacket(0, 15, 1, net->now(), TrafficClass::Request);
    net->injectPacket(0, 15, 9, net->now(), TrafficClass::Reply);
    net->injectPacket(15, 0, 9, net->now(), TrafficClass::Reply);
    ASSERT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().packetsEjected, 3u);
    EXPECT_EQ(net->stats().flitsEjected, 19u);
}

TEST(VcRouter, ClassesUseSeparateVcBuffers)
{
    auto net = makeNetwork(vcParams(), RouterArch::NonSpeculative);
    auto &r0 = static_cast<VcRouter &>(net->router(0));
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Request);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Reply);
    net->run(2); // both flits injected into router 0's local port
    EXPECT_GE(r0.vcFifo(kPortLocal, 0).size() +
                  r0.vcFifo(kPortLocal, 1).size(),
              1u);
    ASSERT_TRUE(net->drain(200));
}

TEST(VcRouter, BlockedVcDoesNotBlockTheOther)
{
    // Fill VC1 (replies) toward a stalled destination region while
    // VC0 requests keep flowing over the same physical links.
    auto net = makeNetwork(vcParams(), RouterArch::NonSpeculative);
    // Saturate replies 1->2 (many big packets back up VC1 along row
    // 0 through the shared link).
    for (int i = 0; i < 30; ++i)
        net->injectPacket(1, 3, 9, net->now(), TrafficClass::Reply);
    // A single request along the same path.
    net->injectPacket(1, 3, 1, net->now(), TrafficClass::Request);

    // The request must complete long before the reply pile drains.
    Cycle request_done = 0;
    for (Cycle t = 0; t < 1000; ++t) {
        net->step();
        if (request_done == 0 &&
            net->stats()
                    .latencyByClass[static_cast<int>(
                        TrafficClass::Request)]
                    .count() == 1) {
            request_done = net->now();
        }
    }
    EXPECT_GT(request_done, 0u);
    EXPECT_LT(request_done, 60u)
        << "request waited behind the reply wormhole";
    ASSERT_TRUE(net->drain(5000));
}

TEST(VcRouter, WormholeContiguityPerVc)
{
    // Two multi-flit packets on different VCs interleave on the link
    // but each VC's stream stays contiguous (checked by the payload
    // and lock assertions; completion proves reassembly).
    auto net = makeNetwork(vcParams(), RouterArch::NonSpeculative);
    for (int i = 0; i < 6; ++i) {
        net->injectPacket(0, 15, 5, net->now(),
                          TrafficClass::Request);
        net->injectPacket(0, 15, 5, net->now(), TrafficClass::Reply);
    }
    ASSERT_TRUE(net->drain(2000));
    EXPECT_EQ(net->stats().packetsEjected, 12u);
    EXPECT_EQ(net->stats().flitsEjected, 60u);
}

TEST(VcRouter, RandomSoakConservation)
{
    auto net = makeNetwork(vcParams(), RouterArch::NonSpeculative);
    Rng rng(17);
    for (Cycle t = 0; t < 2500; ++t) {
        for (NodeId s = 0; s < net->numNodes(); ++s) {
            if (!rng.nextBernoulli(0.05))
                continue;
            NodeId d = s;
            while (d == s)
                d = static_cast<NodeId>(rng.nextBounded(16));
            const bool reply = rng.nextBernoulli(0.4);
            net->injectPacket(s, d, reply ? 9 : 1, net->now(),
                              reply ? TrafficClass::Reply
                                    : TrafficClass::Request);
        }
        net->step();
    }
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(60000));
    EXPECT_GT(net->stats().packetsInjected, 1000u);
    EXPECT_EQ(net->stats().packetsEjected,
              net->stats().packetsInjected);
    EXPECT_EQ(net->stats().flitsEjected, net->stats().flitsInjected);
}

TEST(VcRouter, SingleVcDegeneratesToPlainWormhole)
{
    // vcCount=1 through the factory still builds the plain router.
    NetworkParams p = vcParams(1);
    auto net = makeNetwork(p, RouterArch::NonSpeculative);
    EXPECT_EQ(net->router(0).vcCount(), 1);
    EXPECT_EQ(dynamic_cast<VcRouter *>(&net->router(0)), nullptr);
    net->injectPacket(0, 15, 9, net->now(), TrafficClass::Reply);
    ASSERT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().packetsEjected, 1u);
}

TEST(VcRouter, PerVcCreditsRecover)
{
    auto net = makeNetwork(vcParams(), RouterArch::NonSpeculative);
    auto &r0 = static_cast<VcRouter &>(net->router(0));
    const int before0 = r0.vcCredits(kPortEast, 0);
    const int before1 = r0.vcCredits(kPortEast, 1);
    net->injectPacket(0, 3, 3, net->now(), TrafficClass::Reply);
    net->injectPacket(0, 3, 2, net->now(), TrafficClass::Request);
    ASSERT_TRUE(net->drain(300));
    EXPECT_EQ(r0.vcCredits(kPortEast, 0), before0);
    EXPECT_EQ(r0.vcCredits(kPortEast, 1), before1);
}

TEST(VcRouter, WorksOnConcentratedMesh)
{
    NetworkParams p;
    p.width = 2;
    p.height = 2;
    p.concentration = 4;
    p.router.vcCount = 2;
    auto net = makeNetwork(p, RouterArch::NonSpeculative);
    EXPECT_EQ(net->router(0).numPorts(), 8);
    net->injectPacket(0, 15, 9, net->now(), TrafficClass::Reply);
    net->injectPacket(15, 0, 1, net->now(), TrafficClass::Request);
    ASSERT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().packetsEjected, 2u);
}

} // namespace
} // namespace nox
