/**
 * @file
 * Golden cycle-by-cycle tests reproducing the paper's timing diagrams
 * (Figure 2 for NoX, Figure 7a-c for the baselines).
 *
 * Scenario, identical for all routers: packet A arrives on one input
 * at cycle 0; packets B and C arrive simultaneously on two other
 * inputs at cycle 2; all are single-flit and destined for the same
 * output. The paper's expected per-architecture link activity:
 *
 *   NonSpec : A@0, B@2, C@3                      (no waste)
 *   NoX     : A@0, (B^C)@2 encoded, C@3          (no waste, B freed @2)
 *   SpecAcc : A@0, waste@2, B@3, C@4             (1 wasted drive)
 *   SpecFast: A@0, waste@2, B@3, idle@4, C@5     (1 wasted drive +
 *                                                 1 dead reservation)
 */

#include <gtest/gtest.h>

#include "router_fixture.hpp"
#include "routers/nox_router.hpp"

namespace nox {
namespace {

using testing::SingleRouterHarness;

// B arrives on the South port, C on the West port; with a fresh
// round-robin arbiter B wins the cycle-2 arbitration, as in the paper.
constexpr int kPortA = kPortNorth;
constexpr int kPortB = kPortSouth;
constexpr int kPortC = kPortWest;

struct Scenario
{
    FlitDesc a, b, c;
};

Scenario
injectAbc(SingleRouterHarness &h)
{
    Scenario s{h.flitToEast(1), h.flitToEast(2), h.flitToEast(3)};
    h.arrive(kPortA, s.a);
    return s;
}

TEST(GoldenTiming, NonSpeculativeFig7a)
{
    SingleRouterHarness h(RouterArch::NonSpeculative);
    const Scenario s = injectAbc(h);

    auto f0 = h.step(); // cycle 0: A traverses (SA+ST in one cycle)
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->parts.front().packet, s.a.packet);

    EXPECT_FALSE(h.step()); // cycle 1: idle

    h.arrive(kPortB, s.b);
    h.arrive(kPortC, s.c);
    auto f2 = h.step(); // cycle 2: arbitration picks B; B traverses
    ASSERT_TRUE(f2);
    EXPECT_FALSE(f2->encoded);
    EXPECT_EQ(f2->parts.front().packet, s.b.packet);

    auto f3 = h.step(); // cycle 3: C traverses
    ASSERT_TRUE(f3);
    EXPECT_EQ(f3->parts.front().packet, s.c.packet);

    EXPECT_EQ(h.wastedLinkCycles(), 0u);
}

TEST(GoldenTiming, NoxFig2)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());
    const Scenario s = injectAbc(h);

    // Cycle 0: no contention; A passes unmodified. The parallel
    // arbitration decision was unnecessary and masks re-enable all.
    auto f0 = h.step();
    ASSERT_TRUE(f0);
    EXPECT_FALSE(f0->encoded);
    EXPECT_EQ(f0->parts.front().packet, s.a.packet);
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Recovery);

    EXPECT_FALSE(h.step()); // cycle 1: idle

    // Cycle 2: B and C collide; output is (B^C), marked encoded. B
    // receives the grant and its buffer is freed immediately.
    h.arrive(kPortB, s.b);
    h.arrive(kPortC, s.c);
    auto f2 = h.step();
    ASSERT_TRUE(f2);
    EXPECT_TRUE(f2->encoded);
    EXPECT_EQ(f2->fanin(), 2u);
    EXPECT_EQ(f2->payload, s.b.payload ^ s.c.payload);
    EXPECT_TRUE(h.dut().inputFifo(kPortB).empty()) << "winner freed";
    EXPECT_FALSE(h.dut().inputFifo(kPortC).empty()) << "loser kept";

    // One loser remains -> Scheduled mode: switch mask enables only C,
    // arbitration mask is its bitwise complement (§2.6).
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Scheduled);
    EXPECT_EQ(dut.switchMask(kPortEast), RequestMask{1u << kPortC});
    EXPECT_EQ(dut.arbMask(kPortEast),
              RequestMask{0b11111u & ~(1u << kPortC)});

    // Cycle 3: C is the only input allowed switch progression; with no
    // new arbitration requests the logic returns to Recovery mode.
    auto f3 = h.step();
    ASSERT_TRUE(f3);
    EXPECT_FALSE(f3->encoded);
    EXPECT_EQ(f3->parts.front().packet, s.c.packet);
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Recovery);
    EXPECT_EQ(dut.switchMask(kPortEast), RequestMask{0b11111});

    // Every cycle carried useful information: zero waste.
    EXPECT_EQ(h.wastedLinkCycles(), 0u);
}

TEST(GoldenTiming, SpecAccurateFig7c)
{
    SingleRouterHarness h(RouterArch::SpecAccurate);
    const Scenario s = injectAbc(h);

    auto f0 = h.step(); // cycle 0: lone speculation succeeds
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->parts.front().packet, s.a.packet);

    EXPECT_FALSE(h.step()); // cycle 1: idle

    h.arrive(kPortB, s.b);
    h.arrive(kPortC, s.c);
    // Cycle 2: both speculate, collide; an indeterminate value is
    // driven across the channel (wasted energy); B wins arbitration.
    EXPECT_FALSE(h.step());
    EXPECT_EQ(h.wastedLinkCycles(), 1u);

    auto f3 = h.step(); // cycle 3: B (pre-scheduled); C scheduled next
    ASSERT_TRUE(f3);
    EXPECT_EQ(f3->parts.front().packet, s.b.packet);

    auto f4 = h.step(); // cycle 4: C — one cycle after B
    ASSERT_TRUE(f4);
    EXPECT_EQ(f4->parts.front().packet, s.c.packet);

    EXPECT_EQ(h.wastedLinkCycles(), 1u);
}

TEST(GoldenTiming, SpecFastFig7b)
{
    SingleRouterHarness h(RouterArch::SpecFast);
    const Scenario s = injectAbc(h);

    auto f0 = h.step(); // cycle 0: lone speculation succeeds
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->parts.front().packet, s.a.packet);

    EXPECT_FALSE(h.step()); // cycle 1: idle (dead reservation for A)

    h.arrive(kPortB, s.b);
    h.arrive(kPortC, s.c);
    EXPECT_FALSE(h.step()); // cycle 2: misspeculation, wasted drive
    EXPECT_EQ(h.wastedLinkCycles(), 1u);

    auto f3 = h.step(); // cycle 3: B (pre-scheduled)
    ASSERT_TRUE(f3);
    EXPECT_EQ(f3->parts.front().packet, s.b.packet);

    // Cycle 4: Switch-Next re-reserved B's port (unnecessary switch
    // reservation) so the output idles while C waits.
    EXPECT_FALSE(h.step());

    auto f5 = h.step(); // cycle 5: C finally traverses
    ASSERT_TRUE(f5);
    EXPECT_EQ(f5->parts.front().packet, s.c.packet);

    EXPECT_EQ(h.wastedLinkCycles(), 1u);
}

/**
 * Cross-architecture ranking check (§3.2): on the A/B/C contention
 * example, cycle-count efficiency orders NonSpec == NoX (4 cycles),
 * then Spec-Accurate (5), then Spec-Fast (6).
 */
TEST(GoldenTiming, CompletionOrderAcrossArchitectures)
{
    auto completion = [](RouterArch arch) {
        SingleRouterHarness h(arch);
        const Scenario s{h.flitToEast(1), h.flitToEast(2),
                         h.flitToEast(3)};
        h.arrive(kPortA, s.a);
        int delivered = 0;
        Cycle last = 0;
        for (Cycle t = 0; t < 20 && delivered < 3; ++t) {
            if (t == 2) {
                h.arrive(kPortB, s.b);
                h.arrive(kPortC, s.c);
            }
            // Every architecture needs exactly 3 link transfers to
            // move the 3 packets; what differs is when the last one
            // happens.
            if (h.step()) {
                delivered += 1;
                last = t;
            }
        }
        return last;
    };

    const Cycle nonspec = completion(RouterArch::NonSpeculative);
    const Cycle noxr = completion(RouterArch::Nox);
    const Cycle acc = completion(RouterArch::SpecAccurate);
    const Cycle fast = completion(RouterArch::SpecFast);

    EXPECT_EQ(nonspec, 3u);
    EXPECT_EQ(noxr, 3u);
    EXPECT_EQ(acc, 4u);
    EXPECT_EQ(fast, 5u);
}

} // namespace
} // namespace nox
