/** @file Behavioural tests for the speculative routers: reservations,
 *  the newly-exposed fairness rule, wormhole locking and the
 *  three-way-contention efficiency gap between the variants. */

#include <gtest/gtest.h>

#include <map>

#include "noc/network.hpp"
#include "router_fixture.hpp"
#include "routers/spec_router.hpp"

namespace nox {
namespace {

using testing::SingleRouterHarness;

TEST(SpecRouter, LoneSpeculationSucceedsImmediately)
{
    for (RouterArch arch :
         {RouterArch::SpecFast, RouterArch::SpecAccurate}) {
        SingleRouterHarness h(arch);
        const FlitDesc a = h.flitToEast(1);
        h.arrive(kPortNorth, a);
        auto f = h.step();
        ASSERT_TRUE(f) << archName(arch);
        EXPECT_EQ(f->parts.front().packet, a.packet);
        EXPECT_EQ(h.wastedLinkCycles(), 0u);
    }
}

TEST(SpecRouter, MisspeculationDrivesInvalidValue)
{
    for (RouterArch arch :
         {RouterArch::SpecFast, RouterArch::SpecAccurate}) {
        SingleRouterHarness h(arch);
        h.arrive(kPortSouth, h.flitToEast(1));
        h.arrive(kPortWest, h.flitToEast(2));
        EXPECT_FALSE(h.step()) << archName(arch);
        EXPECT_EQ(h.wastedLinkCycles(), 1u) << archName(arch);
        // Neither buffer was freed — the cycle is a pure loss.
        EXPECT_EQ(h.dut().inputFifo(kPortSouth).size(), 1u);
        EXPECT_EQ(h.dut().inputFifo(kPortWest).size(), 1u);
    }
}

TEST(SpecRouter, ThreeWayContentionEfficiencyGap)
{
    // Three packets colliding at once. Spec-Accurate serializes them
    // with a single wasted cycle; Spec-Fast's inaccurate Switch-Next
    // re-reserves used ports and repeatedly re-collides.
    auto run = [](RouterArch arch, std::uint64_t *wasted) {
        SingleRouterHarness h(arch);
        h.arrive(kPortNorth, h.flitToEast(1));
        h.arrive(kPortSouth, h.flitToEast(2));
        h.arrive(kPortWest, h.flitToEast(3));
        int delivered = 0;
        Cycle last = 0;
        for (Cycle t = 0; t < 20 && delivered < 3; ++t) {
            if (h.step()) {
                ++delivered;
                last = t;
            }
        }
        EXPECT_EQ(delivered, 3);
        *wasted = h.wastedLinkCycles();
        return last;
    };

    std::uint64_t acc_waste = 0, fast_waste = 0;
    const Cycle acc_done = run(RouterArch::SpecAccurate, &acc_waste);
    const Cycle fast_done = run(RouterArch::SpecFast, &fast_waste);

    // Spec-Accurate: waste@0, A@1, re-collision waste@2, B@3, C@4.
    EXPECT_EQ(acc_done, 4u);
    EXPECT_EQ(acc_waste, 2u);
    // Spec-Fast additionally idles on dead reservations: done @6.
    EXPECT_EQ(fast_done, 6u);
    EXPECT_EQ(fast_waste, 2u);
    EXPECT_GT(fast_done, acc_done);
}

TEST(SpecFast, UnnecessaryReservationBlocksOutput)
{
    // After a successful reserved traversal, Spec-Fast re-reserves the
    // same port (Switch-Next sees requests as of cycle start), idling
    // the output for a cycle while another input waits.
    SingleRouterHarness h(RouterArch::SpecFast);
    auto &dut = static_cast<SpecRouter &>(h.dut());

    h.arrive(kPortSouth, h.flitToEast(1));
    h.arrive(kPortWest, h.flitToEast(2));
    EXPECT_FALSE(h.step()); // misspec; South reserved
    EXPECT_EQ(dut.reservation(kPortEast), kPortSouth);

    ASSERT_TRUE(h.step()); // packet 1 traverses; South re-reserved
    EXPECT_EQ(dut.reservation(kPortEast), kPortSouth);

    EXPECT_FALSE(h.step()); // dead cycle: reservation points at an
                            // empty input
    EXPECT_EQ(dut.reservation(kPortEast), -1);

    ASSERT_TRUE(h.step()); // packet 2 finally goes
}

TEST(SpecFast, NewlyExposedPacketMayNotRequest)
{
    // Input South holds two back-to-back packets P1, P2; Q waits on
    // West. P2 becomes exposed when P1 departs: per §3.1.2's fairness
    // rule it presents no request in its first cycle as head — it can
    // neither ride P1's (unnecessary) reservation nor arbitrate, so
    // the output idles a cycle and Q then contends on equal footing.
    SingleRouterHarness h(RouterArch::SpecFast);
    auto &dut = static_cast<SpecRouter &>(h.dut());

    const FlitDesc p1 = h.flitToEast(1);
    const FlitDesc p2 = h.flitToEast(2);
    h.arrive(kPortSouth, p1);
    h.arrive(kPortSouth, p2);

    auto f0 = h.step(); // P1 traverses; South reserved (unnecessary)
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->parts.front().packet, p1.packet);
    EXPECT_EQ(dut.reservation(kPortEast), kPortSouth);

    // P2 newly exposed: no request, the reservation sits dead.
    EXPECT_FALSE(h.step());
    EXPECT_EQ(dut.reservation(kPortEast), -1);

    auto f2 = h.step(); // mask open again: P2 speculates through
    ASSERT_TRUE(f2);
    EXPECT_EQ(f2->parts.front().packet, p2.packet);
    EXPECT_EQ(h.wastedLinkCycles(), 0u);
}

TEST(SpecFast, ArrivalIntoEmptyInputRequestsImmediately)
{
    // The newly-exposed rule applies only behind a departing packet;
    // a flit landing in an empty buffer registers normally.
    SingleRouterHarness h(RouterArch::SpecFast);
    h.arrive(kPortSouth, h.flitToEast(1));
    ASSERT_TRUE(h.step());
    EXPECT_FALSE(h.step()); // dead reservation cycle, South empty
    h.arrive(kPortSouth, h.flitToEast(2)); // fresh arrival
    auto f = h.step();
    ASSERT_TRUE(f);
    EXPECT_EQ(f->parts.front().packet, 2u);
}

TEST(SpecRouter, MultiFlitWormholeContiguity)
{
    for (RouterArch arch :
         {RouterArch::SpecFast, RouterArch::SpecAccurate}) {
        SingleRouterHarness h(arch);
        auto &dut = static_cast<SpecRouter &>(h.dut());

        const FlitDesc m0 = h.flitToEast(1, 0, 3);
        const FlitDesc m1 = h.flitToEast(1, 1, 3);
        const FlitDesc m2 = h.flitToEast(1, 2, 3);
        const FlitDesc x = h.flitToEast(2);
        h.arrive(kPortSouth, m0);
        h.arrive(kPortSouth, m1);

        auto f0 = h.step(); // head speculates alone, locks the output
        ASSERT_TRUE(f0) << archName(arch);
        EXPECT_EQ(f0->parts.front().uid, m0.uid);
        EXPECT_EQ(dut.lockOwner(kPortEast), kPortSouth);

        h.arrive(kPortWest, x);
        h.arrive(kPortSouth, m2);
        auto f1 = h.step();
        ASSERT_TRUE(f1);
        EXPECT_EQ(f1->parts.front().uid, m1.uid);

        auto f2 = h.step();
        ASSERT_TRUE(f2);
        EXPECT_EQ(f2->parts.front().uid, m2.uid);
        EXPECT_EQ(dut.lockOwner(kPortEast), -1);

        // X gets through after the tail, with zero invalid drives:
        // the lock masked its speculation.
        bool x_done = false;
        for (int t = 0; t < 4 && !x_done; ++t) {
            auto f = h.step();
            if (f) {
                EXPECT_EQ(f->parts.front().packet, x.packet);
                x_done = true;
            }
        }
        EXPECT_TRUE(x_done);
        EXPECT_EQ(h.wastedLinkCycles(), 0u) << archName(arch);
    }
}

TEST(SpecRouter, MultiFlitHeadCollisionResolvesContiguously)
{
    // Head of a multi-flit packet collides with a single: one wasted
    // cycle, then the arbitration winner flows contiguously.
    SingleRouterHarness h(RouterArch::SpecAccurate);

    const FlitDesc m0 = h.flitToEast(1, 0, 2);
    const FlitDesc m1 = h.flitToEast(1, 1, 2);
    const FlitDesc x = h.flitToEast(2);
    h.arrive(kPortSouth, m0);
    h.arrive(kPortSouth, m1);
    h.arrive(kPortWest, x);

    EXPECT_FALSE(h.step()); // misspeculation
    EXPECT_EQ(h.wastedLinkCycles(), 1u);

    std::vector<std::uint64_t> uids;
    for (int t = 0; t < 8 && uids.size() < 3; ++t) {
        auto f = h.step();
        if (f)
            uids.push_back(f->parts.front().uid);
    }
    ASSERT_EQ(uids.size(), 3u);
    // M won (round-robin from South before West): contiguous M0 M1,
    // then X.
    EXPECT_EQ(uids[0], m0.uid);
    EXPECT_EQ(uids[1], m1.uid);
    EXPECT_EQ(uids[2], x.uid);
}

TEST(SpecFast, ReservationExpiresUnderBackpressure)
{
    // Regression test for a reservation-capture starvation: under
    // stop-and-go credit flow, a reservation surviving the stalled
    // cycles would re-grant the same input forever. Credit gating
    // must expire it so competing flows alternate.
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    auto net = makeNetwork(params, RouterArch::SpecFast);

    // Flows 3->15 and 7->15 share the column x=3; flow 12->15 halves
    // the ejection bandwidth at 15, back-pressuring the column into
    // exactly the stop-and-go regime that triggered the capture.
    std::map<NodeId, int> counts;
    struct Counter : SinkListener
    {
        SinkListener *chain;
        std::map<NodeId, int> *counts;
        void
        onFlitDelivered(NodeId n, const FlitDesc &f, Cycle t) override
        {
            chain->onFlitDelivered(n, f, t);
        }
        void
        onPacketCompleted(NodeId n, const FlitDesc &l, Cycle hi,
                          Cycle t) override
        {
            (*counts)[l.src] += 1;
            chain->onPacketCompleted(n, l, hi, t);
        }
    } counter;
    counter.chain = net.get();
    counter.counts = &counts;
    for (NodeId n = 0; n < net->numNodes(); ++n)
        net->nic(n).setListener(&counter);

    for (Cycle t = 0; t < 4000; ++t) {
        for (NodeId s : {3, 12, 7}) {
            if (net->sourceQueueFlits(s) < 4)
                net->injectPacket(s, 15, 1, net->now(),
                                  TrafficClass::Synthetic);
        }
        net->step();
    }
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(30000));

    // Flows 3 and 7 share one input port at the final router, so each
    // fairly gets ~half of flow 12's share; neither may starve.
    EXPECT_GT(counts[3], counts[12] / 4);
    EXPECT_GT(counts[7], counts[12] / 4);
}

TEST(SpecRouter, ReservationIsPerOutput)
{
    // Contention on East must not disturb traffic to the North port.
    SingleRouterHarness h(RouterArch::SpecAccurate);
    h.arrive(kPortSouth, h.flitToEast(1));
    h.arrive(kPortWest, h.flitToEast(2));

    // A packet for the North output from the Local port.
    FlitDesc up;
    up.uid = flitUid(9, 0);
    up.packet = 9;
    up.packetSize = 1;
    up.src = SingleRouterHarness::center();
    up.dest = 1; // (1,0): North of centre
    up.payload = expectedPayload(9, 0);
    h.arrive(kPortLocal, up);

    h.step(); // East misspeculates; North traffic unaffected
    EXPECT_TRUE(h.dut().inputFifo(kPortLocal).empty())
        << "north-bound packet should have traversed concurrently";
}

} // namespace
} // namespace nox
