/** @file Tests for the NoX microarchitectural instrumentation
 *  (NoxStats) against hand-computed golden scenarios. */

#include <gtest/gtest.h>

#include "router_fixture.hpp"
#include "routers/nox_router.hpp"

namespace nox {
namespace {

using testing::SingleRouterHarness;

TEST(NoxStats, TwoWayCollisionCounted)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());
    h.arrive(kPortSouth, h.flitToEast(1));
    h.arrive(kPortWest, h.flitToEast(2));
    h.step(); // encoded transfer
    h.step(); // loser drains (prescheduled Scheduled-mode traversal)

    const NoxStats &s = dut.noxStats();
    EXPECT_EQ(s.collisionsBySize[2], 1u);
    EXPECT_EQ(s.collisionsBySize[3], 0u);
    EXPECT_EQ(s.totalCollisions(), 1u);
    EXPECT_EQ(s.aborts, 0u);
    EXPECT_EQ(s.prescheduled, 1u); // the loser's Scheduled traversal
}

TEST(NoxStats, ThreeWayCollisionCountedOncePerEncoding)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());
    h.arrive(kPortNorth, h.flitToEast(1));
    h.arrive(kPortSouth, h.flitToEast(2));
    h.arrive(kPortWest, h.flitToEast(3));
    for (int i = 0; i < 4; ++i)
        h.step();

    const NoxStats &s = dut.noxStats();
    EXPECT_EQ(s.collisionsBySize[3], 1u); // A^B^C
    EXPECT_EQ(s.collisionsBySize[2], 1u); // B^C
    EXPECT_EQ(s.totalCollisions(), 2u);
}

TEST(NoxStats, CleanTraversalCounted)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());
    h.arrive(kPortNorth, h.flitToEast(1));
    h.step();
    EXPECT_EQ(dut.noxStats().cleanTraversals, 1u);
    EXPECT_EQ(dut.noxStats().totalCollisions(), 0u);
}

TEST(NoxStats, AbortCounted)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());
    h.arrive(kPortSouth, h.flitToEast(1, 0, 2));
    h.arrive(kPortSouth, h.flitToEast(1, 1, 2));
    h.arrive(kPortWest, h.flitToEast(2));
    for (int i = 0; i < 5; ++i)
        h.step();
    EXPECT_EQ(dut.noxStats().aborts, 1u);
    EXPECT_EQ(dut.noxStats().totalCollisions(), 0u);
    EXPECT_GT(dut.noxStats().lockedCycles, 0u);
}

TEST(NoxStats, ModeResidencyAccumulates)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());
    for (int i = 0; i < 10; ++i)
        h.step(); // idle network: everything sits in Recovery
    const NoxStats &s = dut.noxStats();
    EXPECT_GT(s.recoveryCycles, 0u);
    EXPECT_EQ(s.scheduledCycles, 0u);
    EXPECT_EQ(s.lockedCycles, 0u);
}

TEST(NoxStats, PrescheduledAfterMultiFlitTail)
{
    // Two multi-flit packets on different inputs: abort, stream,
    // tail-cycle pre-schedule, stream — one abort, one presched head.
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());
    for (std::uint32_t s = 0; s < 2; ++s) {
        h.arrive(kPortSouth, h.flitToEast(1, s, 2));
        h.arrive(kPortWest, h.flitToEast(2, s, 2));
    }
    int moved = 0;
    for (int i = 0; i < 12 && moved < 4; ++i)
        moved += h.step().has_value();
    EXPECT_EQ(moved, 4);
    EXPECT_EQ(dut.noxStats().aborts, 1u);
    EXPECT_GE(dut.noxStats().prescheduled, 1u);
}

} // namespace
} // namespace nox
