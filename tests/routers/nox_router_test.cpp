/** @file Behavioural tests for the NoX router beyond the golden
 *  Figure-2 trace: longer chains, aborts, multi-flit locking,
 *  Scheduled-mode pre-scheduling and backpressure. */

#include <gtest/gtest.h>

#include "router_fixture.hpp"
#include "routers/nox_router.hpp"

namespace nox {
namespace {

using testing::SingleRouterHarness;

TEST(NoxRouter, ThreeWayCollisionProducesFullChain)
{
    SingleRouterHarness h(RouterArch::Nox);
    const FlitDesc a = h.flitToEast(1);
    const FlitDesc b = h.flitToEast(2);
    const FlitDesc c = h.flitToEast(3);
    h.arrive(kPortNorth, a);
    h.arrive(kPortSouth, b);
    h.arrive(kPortWest, c);

    // Cycle 0: all three collide -> (A^B^C), one winner freed.
    auto f0 = h.step();
    ASSERT_TRUE(f0);
    EXPECT_TRUE(f0->encoded);
    EXPECT_EQ(f0->fanin(), 3u);
    EXPECT_EQ(f0->payload, a.payload ^ b.payload ^ c.payload);

    // Cycle 1: remaining two collide -> 2-way encoded.
    auto f1 = h.step();
    ASSERT_TRUE(f1);
    EXPECT_TRUE(f1->encoded);
    EXPECT_EQ(f1->fanin(), 2u);

    // Cycle 2: final loser passes uncoded.
    auto f2 = h.step();
    ASSERT_TRUE(f2);
    EXPECT_FALSE(f2->encoded);

    // Every cycle was productive; all buffers now free.
    EXPECT_EQ(h.wastedLinkCycles(), 0u);
    EXPECT_TRUE(h.dut().inputFifo(kPortNorth).empty());
    EXPECT_TRUE(h.dut().inputFifo(kPortSouth).empty());
    EXPECT_TRUE(h.dut().inputFifo(kPortWest).empty());
}

TEST(NoxRouter, ChainDecodesDownstreamInWinOrder)
{
    // Whole-path check: run the 3-way chain through a decoder exactly
    // as the downstream input port would.
    SingleRouterHarness h(RouterArch::Nox);
    const FlitDesc a = h.flitToEast(1);
    const FlitDesc b = h.flitToEast(2);
    const FlitDesc c = h.flitToEast(3);
    h.arrive(kPortNorth, a);
    h.arrive(kPortSouth, b);
    h.arrive(kPortWest, c);

    FlitFifo downstream(8);
    for (int t = 0; t < 3; ++t) {
        auto f = h.step();
        ASSERT_TRUE(f);
        downstream.push(WireFlit(*f));
    }

    XorDecoder dec;
    std::vector<PacketId> order;
    for (int t = 0; t < 8 && order.size() < 3; ++t) {
        const DecodeView v = dec.view(downstream);
        if (v.latchBubble) {
            dec.latch(downstream);
            continue;
        }
        if (v.presented) {
            order.push_back(v.presented->packet);
            dec.accept(downstream);
        }
    }
    // Round-robin from port 0: N (packet 1), then S (2), then W (3).
    EXPECT_EQ(order, (std::vector<PacketId>{1, 2, 3}));
}

TEST(NoxRouter, AbortOnMultiFlitCollision)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());

    // 2-flit packet M on South, single-flit X on West, colliding.
    const FlitDesc m0 = h.flitToEast(1, 0, 2);
    const FlitDesc m1 = h.flitToEast(1, 1, 2);
    const FlitDesc x = h.flitToEast(2);
    h.arrive(kPortSouth, m0);
    h.arrive(kPortSouth, m1);
    h.arrive(kPortWest, x);

    // Cycle 0: collision involves a multi-flit head -> abort: wasted
    // drive, nothing freed, winner owns the output until its tail.
    EXPECT_FALSE(h.step());
    EXPECT_EQ(h.wastedLinkCycles(), 1u);
    EXPECT_EQ(dut.lockOwner(kPortEast), kPortSouth);
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Scheduled);

    // Cycles 1-2: M flows contiguously, uncoded.
    auto f1 = h.step();
    ASSERT_TRUE(f1);
    EXPECT_EQ(f1->parts.front().uid, m0.uid);
    auto f2 = h.step();
    ASSERT_TRUE(f2);
    EXPECT_EQ(f2->parts.front().uid, m1.uid);
    EXPECT_EQ(dut.lockOwner(kPortEast), -1);

    // Cycle 3: X goes after the tail passed.
    auto f3 = h.step();
    ASSERT_TRUE(f3);
    EXPECT_EQ(f3->parts.front().packet, x.packet);
    EXPECT_EQ(h.wastedLinkCycles(), 1u);
}

TEST(NoxRouter, CleanMultiFlitTransmissionLocksOutput)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());

    const FlitDesc m0 = h.flitToEast(1, 0, 3);
    const FlitDesc m1 = h.flitToEast(1, 1, 3);
    const FlitDesc m2 = h.flitToEast(1, 2, 3);
    const FlitDesc x = h.flitToEast(2);
    h.arrive(kPortSouth, m0);
    h.arrive(kPortSouth, m1);

    auto f0 = h.step(); // head traverses uncontended, locks output
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->parts.front().uid, m0.uid);
    EXPECT_EQ(dut.lockOwner(kPortEast), kPortSouth);

    // X shows up mid-packet; it must wait, and no collision/encoding
    // may occur with body flits.
    h.arrive(kPortWest, x);
    h.arrive(kPortSouth, m2);
    auto f1 = h.step();
    ASSERT_TRUE(f1);
    EXPECT_FALSE(f1->encoded);
    EXPECT_EQ(f1->parts.front().uid, m1.uid);

    auto f2 = h.step(); // tail; lock released afterwards
    ASSERT_TRUE(f2);
    EXPECT_EQ(f2->parts.front().uid, m2.uid);
    EXPECT_EQ(dut.lockOwner(kPortEast), -1);

    auto f3 = h.step();
    ASSERT_TRUE(f3);
    EXPECT_EQ(f3->parts.front().packet, x.packet);
    EXPECT_EQ(h.wastedLinkCycles(), 0u);
}

TEST(NoxRouter, ScheduledModePreSchedulesNewRequest)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());

    // 2-way collision puts the output into Scheduled mode.
    h.arrive(kPortSouth, h.flitToEast(1));
    h.arrive(kPortWest, h.flitToEast(2));
    auto f0 = h.step();
    ASSERT_TRUE(f0);
    EXPECT_TRUE(f0->encoded);
    ASSERT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Scheduled);

    // A new packet D arrives during the Scheduled cycle: it may
    // arbitrate (arb mask is the complement of the switch mask) and is
    // pre-scheduled for the next cycle, like a perfect speculator.
    const FlitDesc d = h.flitToEast(3);
    h.arrive(kPortNorth, d);
    auto f1 = h.step(); // loser traverses; D wins arbitration
    ASSERT_TRUE(f1);
    EXPECT_FALSE(f1->encoded);
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Scheduled);
    EXPECT_EQ(dut.switchMask(kPortEast), RequestMask{1u << kPortNorth});

    auto f2 = h.step(); // D traverses uncontended
    ASSERT_TRUE(f2);
    EXPECT_EQ(f2->parts.front().packet, d.packet);
    EXPECT_EQ(h.wastedLinkCycles(), 0u);
}

TEST(NoxRouter, WinnerCreditFreedImmediatelyUnderContention)
{
    // The paper's head-of-line-blocking argument: under contention the
    // granted input's buffer is freed in the same cycle (the encoded
    // transfer carries it), so upstream receives a credit immediately.
    SingleRouterHarness h(RouterArch::Nox);
    h.arrive(kPortSouth, h.flitToEast(1));
    h.arrive(kPortWest, h.flitToEast(2));

    const std::size_t south_before =
        h.dut().inputFifo(kPortSouth).size();
    EXPECT_EQ(south_before, 1u);
    auto f0 = h.step();
    ASSERT_TRUE(f0);
    EXPECT_TRUE(f0->encoded);
    EXPECT_TRUE(h.dut().inputFifo(kPortSouth).empty());
    EXPECT_EQ(h.dut().inputFifo(kPortWest).size(), 1u);
}

TEST(NoxRouter, BackpressureHoldsMasksAndChain)
{
    // Fill the ejection sink (never drained here): the Local output
    // stalls mid-chain and resumes without corrupting the sequence.
    SingleRouterHarness h(RouterArch::Nox);
    auto &net = h.network();

    auto to_center = [&](PacketId p) {
        FlitDesc d;
        d.uid = flitUid(p, 0);
        d.packet = p;
        d.packetSize = 1;
        d.src = 0;
        d.dest = SingleRouterHarness::center();
        d.payload = expectedPayload(p, 0);
        return d;
    };

    // Two colliding packets for the local port start a chain.
    h.arrive(kPortSouth, to_center(1));
    h.arrive(kPortWest, to_center(2));
    // Plus 8 more singles from the North to fill the sink FIFO.
    for (PacketId p = 3; p <= 8; ++p)
        h.arrive(kPortNorth, to_center(p));

    // Run plenty of cycles WITHOUT draining the sink: at most
    // sink-depth (8) wire flits can be accepted.
    for (int t = 0; t < 20; ++t)
        h.step();
    EXPECT_EQ(net.nic(SingleRouterHarness::center()).sinkFifo().size(),
              8u);

    // Now drain; every packet must complete with payloads intact
    // (deliver() asserts payload correctness internally).
    for (int t = 0; t < 40; ++t) {
        net.nic(SingleRouterHarness::center()).evaluateSink(h.now());
        h.step();
    }
    EXPECT_EQ(net.stats().packetsEjected, 8u);
}

TEST(NoxRouter, EncodedDeliveryToEjectionSink)
{
    // Collision on the *local* output: the NIC sink must decode the
    // chain exactly like a downstream router input port.
    SingleRouterHarness h(RouterArch::Nox);
    auto &net = h.network();

    auto to_center = [&](PacketId p) {
        FlitDesc d;
        d.uid = flitUid(p, 0);
        d.packet = p;
        d.packetSize = 1;
        d.src = 0;
        d.dest = SingleRouterHarness::center();
        d.payload = expectedPayload(p, 0);
        return d;
    };
    h.arrive(kPortSouth, to_center(1));
    h.arrive(kPortWest, to_center(2));

    for (int t = 0; t < 10; ++t) {
        net.nic(SingleRouterHarness::center()).evaluateSink(h.now());
        h.step();
    }
    EXPECT_EQ(net.stats().packetsEjected, 2u);
    EXPECT_EQ(net.stats().flitsEjected, 2u);
}

} // namespace
} // namespace nox
