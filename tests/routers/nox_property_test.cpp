/**
 * @file
 * Property-based tests of the NoX XOR-coding pipeline: randomized
 * single-flit arrival sequences at one router must always decode
 * downstream to exactly the injected packets, with zero wasted link
 * cycles and per-input FIFO order preserved.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "router_fixture.hpp"

namespace nox {
namespace {

using testing::SingleRouterHarness;

class NoxRandomArrivals : public ::testing::TestWithParam<int>
{
};

TEST_P(NoxRandomArrivals, AllPacketsDecodeDownstream)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    SingleRouterHarness h(RouterArch::Nox, /*buffer_depth=*/16);

    // Random single-flit arrivals on the four non-east ports over a
    // random schedule.
    const int kPorts[] = {kPortNorth, kPortSouth, kPortWest,
                          kPortLocal};
    std::map<int, std::vector<PacketId>> injected_per_port;
    PacketId next_packet = 1;
    const int total = 3 + static_cast<int>(rng.nextBounded(20));

    std::vector<WireFlit> link;
    int injected = 0;
    for (Cycle t = 0; t < 400 && static_cast<int>(link.size()) <
                                     total; ++t) {
        if (injected < total) {
            // Up to two arrivals per cycle on distinct random ports.
            const int arrivals =
                1 + static_cast<int>(rng.nextBounded(2));
            int used = -1;
            for (int a = 0; a < arrivals && injected < total; ++a) {
                const int port = kPorts[rng.nextBounded(4)];
                if (port == used ||
                    h.dut().inputFifo(port).full())
                    continue;
                used = port;
                const FlitDesc d = h.flitToEast(next_packet);
                injected_per_port[port].push_back(next_packet);
                ++next_packet;
                h.arrive(port, d);
                ++injected;
            }
        }
        auto f = h.step();
        if (f)
            link.push_back(*f);
    }
    ASSERT_EQ(static_cast<int>(link.size()), total)
        << "router failed to move all packets";

    // Zero waste: every link cycle carried decodable information.
    EXPECT_EQ(h.wastedLinkCycles(), 0u);

    // Decode the whole link stream like a downstream input port.
    FlitFifo fifo(64);
    for (auto &f : link)
        fifo.push(std::move(f));
    XorDecoder dec;
    std::vector<FlitDesc> delivered;
    for (int guard = 0; guard < 200 &&
                        static_cast<int>(delivered.size()) < total;
         ++guard) {
        const DecodeView v = dec.view(fifo);
        if (v.latchBubble) {
            dec.latch(fifo);
            continue;
        }
        ASSERT_TRUE(v.presented != nullptr);
        delivered.push_back(*v.presented);
        dec.accept(fifo);
    }
    ASSERT_EQ(static_cast<int>(delivered.size()), total);

    // Exactly-once with intact payloads.
    std::map<PacketId, int> seen;
    for (const FlitDesc &d : delivered) {
        seen[d.packet] += 1;
        EXPECT_EQ(d.payload, expectedPayload(d.packet, 0));
    }
    for (PacketId p = 1; p < next_packet; ++p)
        EXPECT_EQ(seen[p], 1) << "packet " << p;

    // Per-input-port FIFO order: packets from one port must be
    // delivered in their arrival order.
    std::map<int, std::size_t> cursor;
    std::map<PacketId, int> port_of;
    for (const auto &[port, ids] : injected_per_port)
        for (PacketId id : ids)
            port_of[id] = port;
    for (const FlitDesc &d : delivered) {
        const int port = port_of[d.packet];
        auto &idx = cursor[port];
        ASSERT_LT(idx, injected_per_port[port].size());
        EXPECT_EQ(injected_per_port[port][idx], d.packet)
            << "out of order on port " << portName(port);
        ++idx;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoxRandomArrivals,
                         ::testing::Range(0, 24));

class NoxMixedSizes : public ::testing::TestWithParam<int>
{
};

TEST_P(NoxMixedSizes, MultiFlitStreamsStayContiguous)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
    SingleRouterHarness h(RouterArch::Nox, /*buffer_depth=*/32);

    // Mixed single-flit and multi-flit packets from two ports.
    struct Plan
    {
        int port;
        PacketId packet;
        int flits;
    };
    std::vector<Plan> plan;
    PacketId next_packet = 1;
    for (int i = 0; i < 6; ++i) {
        plan.push_back({i % 2 ? kPortSouth : kPortWest, next_packet,
                        rng.nextBernoulli(0.5) ? 3 : 1});
        ++next_packet;
    }

    // Queue everything up front (back-to-back pressure).
    int total_flits = 0;
    for (const Plan &p : plan) {
        for (int s = 0; s < p.flits; ++s) {
            h.arrive(p.port,
                     h.flitToEast(p.packet,
                                  static_cast<std::uint32_t>(s),
                                  static_cast<std::uint32_t>(
                                      p.flits)));
            ++total_flits;
        }
    }

    std::vector<WireFlit> link;
    for (Cycle t = 0; t < 200 && static_cast<int>(link.size()) <
                                     total_flits; ++t) {
        auto f = h.step();
        if (f)
            link.push_back(*f);
    }
    ASSERT_EQ(static_cast<int>(link.size()), total_flits);

    // Contiguity: once a multi-flit packet's head crosses the link,
    // no other packet's flit may appear until its tail has crossed.
    PacketId in_flight = kInvalidPacket;
    for (const WireFlit &f : link) {
        if (f.encoded) {
            // Encoded superpositions only exist between streams.
            EXPECT_EQ(in_flight, kInvalidPacket)
                << "encoded flit inside a wormhole stream";
            continue;
        }
        const FlitDesc &d = f.parts.front();
        if (in_flight != kInvalidPacket) {
            EXPECT_EQ(d.packet, in_flight)
                << "foreign flit interleaved into wormhole stream";
        }
        if (d.isMultiFlit())
            in_flight = d.isTail() ? kInvalidPacket : d.packet;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoxMixedSizes,
                         ::testing::Range(0, 16));

} // namespace
} // namespace nox
