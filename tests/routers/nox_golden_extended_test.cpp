/** @file Extended golden sequences for the NoX mask logic: late
 *  arrivals joining a live chain, chains ending into Scheduled-mode
 *  handoffs, and four-way resolution order. */

#include <gtest/gtest.h>

#include <cmath>

#include "router_fixture.hpp"
#include "routers/nox_router.hpp"

namespace nox {
namespace {

using testing::SingleRouterHarness;

TEST(NoxGoldenExtended, FourWayCollisionDrainsInArbitrationOrder)
{
    SingleRouterHarness h(RouterArch::Nox);
    // Four single-flit packets on all non-East ports, same cycle.
    h.arrive(kPortNorth, h.flitToEast(1));
    h.arrive(kPortSouth, h.flitToEast(2));
    h.arrive(kPortWest, h.flitToEast(3));
    h.arrive(kPortLocal, h.flitToEast(4));

    // Cycle 0: 4-way superposition; round-robin grants port order
    // N(0), then S(2), W(3), L(4) across the following cycles.
    auto f0 = h.step();
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->fanin(), 4u);
    auto f1 = h.step();
    ASSERT_TRUE(f1);
    EXPECT_EQ(f1->fanin(), 3u);
    auto f2 = h.step();
    ASSERT_TRUE(f2);
    EXPECT_EQ(f2->fanin(), 2u);
    auto f3 = h.step();
    ASSERT_TRUE(f3);
    EXPECT_FALSE(f3->encoded);
    EXPECT_EQ(h.wastedLinkCycles(), 0u);

    // Decode the chain: win order must be N, S, W, L = 1,2,3,4.
    FlitFifo fifo(8);
    for (const auto &e : h.events())
        fifo.push(WireFlit(e.flit));
    XorDecoder dec;
    std::vector<PacketId> order;
    for (int i = 0; i < 10 && order.size() < 4; ++i) {
        const DecodeView v = dec.view(fifo);
        if (v.latchBubble) {
            dec.latch(fifo);
            continue;
        }
        ASSERT_TRUE(v.presented);
        order.push_back(v.presented->packet);
        dec.accept(fifo);
    }
    EXPECT_EQ(order, (std::vector<PacketId>{1, 2, 3, 4}));
}

TEST(NoxGoldenExtended, LateArrivalWaitsOutTheChain)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());

    h.arrive(kPortNorth, h.flitToEast(1));
    h.arrive(kPortSouth, h.flitToEast(2));
    h.arrive(kPortWest, h.flitToEast(3));
    auto f0 = h.step(); // 3-way collision
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->fanin(), 3u);
    // Recovery continues with the two losers only.
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Recovery);

    // Packet 4 arrives mid-chain on the (already freed) North port;
    // the Recovery mask excludes it until the chain resolves.
    h.arrive(kPortNorth, h.flitToEast(4));
    auto f1 = h.step();
    ASSERT_TRUE(f1);
    EXPECT_EQ(f1->fanin(), 2u); // the chain, not packet 4
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Scheduled);

    // Scheduled mode: final loser traverses; packet 4 is arbitrated
    // and pre-scheduled for the next cycle.
    auto f2 = h.step();
    ASSERT_TRUE(f2);
    EXPECT_FALSE(f2->encoded);
    EXPECT_EQ(f2->fanin(), 1u);
    EXPECT_NE(f2->parts.front().packet, 4u);

    auto f3 = h.step();
    ASSERT_TRUE(f3);
    EXPECT_EQ(f3->parts.front().packet, 4u);
    EXPECT_EQ(h.wastedLinkCycles(), 0u);
}

TEST(NoxGoldenExtended, BackToBackCollisionsFormSeparateChains)
{
    SingleRouterHarness h(RouterArch::Nox);
    // Wave 1 collides at cycle 0; wave 2 lands at cycle 2 while wave
    // 1's loser is still draining.
    h.arrive(kPortSouth, h.flitToEast(1));
    h.arrive(kPortWest, h.flitToEast(2));

    int wire_flits = 0;
    std::vector<WireFlit> link;
    for (Cycle t = 0; t < 10 && wire_flits < 4; ++t) {
        if (t == 2) {
            h.arrive(kPortSouth, h.flitToEast(3));
            h.arrive(kPortWest, h.flitToEast(4));
        }
        auto f = h.step();
        if (f) {
            ++wire_flits;
            link.push_back(*f);
        }
    }
    ASSERT_EQ(wire_flits, 4);
    EXPECT_EQ(h.wastedLinkCycles(), 0u);

    // All four packets decode exactly once.
    FlitFifo fifo(8);
    for (auto &f : link)
        fifo.push(std::move(f));
    XorDecoder dec;
    std::vector<PacketId> got;
    for (int i = 0; i < 12 && got.size() < 4; ++i) {
        const DecodeView v = dec.view(fifo);
        if (v.latchBubble) {
            dec.latch(fifo);
            continue;
        }
        ASSERT_TRUE(v.presented);
        got.push_back(v.presented->packet);
        dec.accept(fifo);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<PacketId>{1, 2, 3, 4}));
}

TEST(NoxGoldenExtended, IndependentOutputsKeepIndependentMasks)
{
    SingleRouterHarness h(RouterArch::Nox);
    auto &dut = static_cast<NoxRouter &>(h.dut());

    // Collision on East; simultaneously a clean packet for North.
    h.arrive(kPortSouth, h.flitToEast(1));
    h.arrive(kPortWest, h.flitToEast(2));
    FlitDesc up;
    up.uid = flitUid(9, 0);
    up.packet = 9;
    up.packetSize = 1;
    up.src = SingleRouterHarness::center();
    up.dest = 1; // router north of centre in the 3x3 harness mesh
    up.payload = expectedPayload(9, 0);
    h.arrive(kPortLocal, up);

    h.step();
    // East went Scheduled; North stayed in all-open Recovery.
    EXPECT_EQ(dut.mode(kPortEast), NoxRouter::Mode::Scheduled);
    EXPECT_EQ(dut.mode(kPortNorth), NoxRouter::Mode::Recovery);
    EXPECT_EQ(dut.switchMask(kPortNorth), dut.arbMask(kPortNorth));
    EXPECT_TRUE(h.dut().inputFifo(kPortLocal).empty());
}

} // namespace
} // namespace nox
