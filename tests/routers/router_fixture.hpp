/**
 * @file
 * Single-router test harness.
 *
 * Builds a 3x3 mesh of the architecture under test, then drives ONLY
 * the centre router cycle-by-cycle: tests stage flits directly into
 * its input FIFOs and observe what crosses the link to the east
 * neighbour. This reproduces the paper's timing-diagram setting
 * (Figures 2, 3 and 7): isolated router, all inputs destined for one
 * output.
 */

#ifndef NOX_TESTS_ROUTER_FIXTURE_HPP
#define NOX_TESTS_ROUTER_FIXTURE_HPP

#include <optional>
#include <vector>

#include "noc/network.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace testing {

/** What the east-neighbour link carried in one cycle. */
struct LinkEvent
{
    Cycle cycle;
    WireFlit flit;
};

class SingleRouterHarness
{
  public:
    explicit SingleRouterHarness(RouterArch arch, int buffer_depth = 8)
    {
        NetworkParams params;
        params.width = 3;
        params.height = 3;
        params.router.bufferDepth = buffer_depth;
        params.sinkBufferDepth = buffer_depth;
        net_ = makeNetwork(params, arch);
        dut_ = &net_->router(center());
        east_ = &net_->router(center() + 1);
    }

    static constexpr NodeId center() { return 4; } // (1,1) in 3x3
    static constexpr NodeId eastNode() { return 5; } // (2,1)

    Router &dut() { return *dut_; }
    Network &network() { return *net_; }
    Cycle now() const { return now_; }

    /** Build a flit addressed so the DUT routes it out the East port. */
    FlitDesc
    flitToEast(PacketId packet, std::uint32_t seq = 0,
               std::uint32_t size = 1) const
    {
        FlitDesc d;
        d.uid = flitUid(packet, seq);
        d.packet = packet;
        d.seq = seq;
        d.packetSize = size;
        d.src = 0;
        d.dest = eastNode();
        d.payload = expectedPayload(packet, seq);
        d.createCycle = now_;
        return d;
    }

    /**
     * Make a flit appear in the DUT's input FIFO @p port at the START
     * of the current cycle (as if it arrived last cycle), matching the
     * paper's "packet X arrives on cycle N" convention.
     */
    void
    arrive(int port, const FlitDesc &d)
    {
        dut_->inputFifo(port).push(WireFlit::fromDesc(d));
    }

    /**
     * Run one DUT cycle. Returns the flit (if any) that crossed the
     * east link this cycle, and exposes waste/energy via deltas.
     */
    std::optional<WireFlit>
    step()
    {
        dut_->evaluate(now_);
        dut_->commit();
        east_->commit();
        net_->nic(center()).commit();
        ++now_;
        FlitFifo &east_in = east_->inputFifo(kPortWest);
        if (east_in.empty())
            return std::nullopt;
        WireFlit f = east_in.pop();
        dut_->stageCredit(kPortEast); // keep the DUT credit-fed
        events_.push_back({now_ - 1, f});
        return f;
    }

    /** Wasted (invalid) drives on the DUT's links so far. */
    std::uint64_t
    wastedLinkCycles() const
    {
        return dut_->energy().linkWastedCycles +
               dut_->energy().localLinkWasted;
    }

    const std::vector<LinkEvent> &events() const { return events_; }

  private:
    std::unique_ptr<Network> net_;
    Router *dut_;
    Router *east_;
    Cycle now_ = 0;
    std::vector<LinkEvent> events_;
};

} // namespace testing
} // namespace nox

#endif // NOX_TESTS_ROUTER_FIXTURE_HPP
