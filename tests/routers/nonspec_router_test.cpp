/** @file Behavioural tests for the non-speculative baseline. */

#include <gtest/gtest.h>

#include "router_fixture.hpp"
#include "routers/nonspec_router.hpp"

namespace nox {
namespace {

using testing::SingleRouterHarness;

TEST(NonSpecRouter, OutputActiveEveryCycleUnderContention)
{
    // The defining property (§3.1.1): regardless of contention, the
    // output moves a flit every cycle given downstream credits.
    SingleRouterHarness h(RouterArch::NonSpeculative);
    for (PacketId p = 1; p <= 3; ++p) {
        h.arrive(kPortNorth, h.flitToEast(p * 3));
        h.arrive(kPortSouth, h.flitToEast(p * 3 + 1));
        h.arrive(kPortWest, h.flitToEast(p * 3 + 2));
    }
    int delivered = 0;
    for (int t = 0; t < 9; ++t) {
        ASSERT_TRUE(h.step()) << "idle output cycle " << t;
        ++delivered;
    }
    EXPECT_EQ(delivered, 9);
    EXPECT_EQ(h.wastedLinkCycles(), 0u);
}

TEST(NonSpecRouter, RoundRobinFairnessAcrossInputs)
{
    SingleRouterHarness h(RouterArch::NonSpeculative);
    // Saturate two inputs with 4 packets each (buffer depth 8).
    for (PacketId p = 0; p < 4; ++p) {
        h.arrive(kPortSouth, h.flitToEast(10 + p));
        h.arrive(kPortWest, h.flitToEast(20 + p));
    }
    std::vector<PacketId> order;
    for (int t = 0; t < 8; ++t) {
        auto f = h.step();
        ASSERT_TRUE(f);
        order.push_back(f->parts.front().packet);
    }
    // Strict alternation after the first grant.
    for (std::size_t i = 2; i < order.size(); ++i) {
        const bool a = order[i] >= 20;
        const bool b = order[i - 1] >= 20;
        EXPECT_NE(a, b) << "inputs must alternate under round-robin";
    }
}

TEST(NonSpecRouter, WormholeLockUntilTail)
{
    SingleRouterHarness h(RouterArch::NonSpeculative);
    auto &dut = static_cast<NonSpecRouter &>(h.dut());

    const FlitDesc m0 = h.flitToEast(1, 0, 3);
    const FlitDesc m1 = h.flitToEast(1, 1, 3);
    const FlitDesc m2 = h.flitToEast(1, 2, 3);
    const FlitDesc x = h.flitToEast(2);
    h.arrive(kPortSouth, m0);
    h.arrive(kPortWest, x);

    auto f0 = h.step(); // M wins (round-robin), output locks
    ASSERT_TRUE(f0);
    EXPECT_EQ(f0->parts.front().uid, m0.uid);
    EXPECT_EQ(dut.lockOwner(kPortEast), kPortSouth);

    // Body flits trickle in; X must wait even though it is ready.
    h.arrive(kPortSouth, m1);
    auto f1 = h.step();
    ASSERT_TRUE(f1);
    EXPECT_EQ(f1->parts.front().uid, m1.uid);

    h.arrive(kPortSouth, m2);
    auto f2 = h.step();
    ASSERT_TRUE(f2);
    EXPECT_EQ(f2->parts.front().uid, m2.uid);
    EXPECT_EQ(dut.lockOwner(kPortEast), -1);

    auto f3 = h.step();
    ASSERT_TRUE(f3);
    EXPECT_EQ(f3->parts.front().packet, x.packet);
}

TEST(NonSpecRouter, LockedOutputIdlesWhenBodyLate)
{
    // If the locked packet's body has not arrived, the output idles
    // but stays locked (no other input may steal it).
    SingleRouterHarness h(RouterArch::NonSpeculative);
    auto &dut = static_cast<NonSpecRouter &>(h.dut());

    h.arrive(kPortSouth, h.flitToEast(1, 0, 2)); // head only
    h.arrive(kPortWest, h.flitToEast(2));

    ASSERT_TRUE(h.step()); // head traverses
    EXPECT_EQ(dut.lockOwner(kPortEast), kPortSouth);

    EXPECT_FALSE(h.step()); // bubble: body missing, X still blocked
    EXPECT_EQ(dut.lockOwner(kPortEast), kPortSouth);

    h.arrive(kPortSouth, h.flitToEast(1, 1, 2)); // tail arrives
    auto f = h.step();
    ASSERT_TRUE(f);
    EXPECT_EQ(f->parts.front().seq, 1u);
    EXPECT_EQ(dut.lockOwner(kPortEast), -1);
}

TEST(NonSpecRouter, IndependentOutputsServeConcurrently)
{
    SingleRouterHarness h(RouterArch::NonSpeculative);
    // East-bound packet and North-bound packet in the same cycle.
    h.arrive(kPortWest, h.flitToEast(1));
    FlitDesc up;
    up.uid = flitUid(2, 0);
    up.packet = 2;
    up.packetSize = 1;
    up.src = SingleRouterHarness::center();
    up.dest = 1;
    up.payload = expectedPayload(2, 0);
    h.arrive(kPortLocal, up);

    auto f = h.step();
    ASSERT_TRUE(f); // East moved
    EXPECT_TRUE(h.dut().inputFifo(kPortLocal).empty()); // North too
}

TEST(NonSpecRouter, NoTrafficNoEnergyEvents)
{
    SingleRouterHarness h(RouterArch::NonSpeculative);
    for (int t = 0; t < 10; ++t)
        EXPECT_FALSE(h.step());
    const EnergyEvents &e = h.dut().energy();
    EXPECT_EQ(e.linkFlits, 0u);
    EXPECT_EQ(e.bufferReads, 0u);
    EXPECT_EQ(e.arbDecisions, 0u);
}

} // namespace
} // namespace nox
