/** @file Link-level golden test: two wormhole packets on different
 *  VCs time-multiplex one physical link flit-by-flit — the defining
 *  §2.8 behaviour a single-VC wormhole cannot exhibit. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "routers/vc_router.hpp"

namespace nox {
namespace {

TEST(VcInterleave, TwoVcStreamsAlternateOnOneLink)
{
    // 2x1 mesh: node 0 -> node 1 over a single East link.
    NetworkParams params;
    params.width = 2;
    params.height = 1;
    params.router.vcCount = 2;
    auto net = makeNetwork(params, RouterArch::NonSpeculative);

    // Two 4-flit packets, one per class (hence one per VC), queued
    // simultaneously.
    net->injectPacket(0, 1, 4, net->now(), TrafficClass::Request);
    net->injectPacket(0, 1, 4, net->now(), TrafficClass::Reply);

    // Step a few cycles and confirm both VC buffers at router 1 see
    // traffic while BOTH packets are still in flight — the two
    // wormholes really are interleaving over the single link.
    auto &r1 = static_cast<VcRouter &>(net->router(1));
    bool both_vcs_concurrent = false;
    std::size_t max0 = 0, max1 = 0;
    for (Cycle t = 0; t < 12; ++t) {
        net->step();
        max0 = std::max(max0, r1.vcFifo(kPortWest, 0).size());
        max1 = std::max(max1, r1.vcFifo(kPortWest, 1).size());
        if (max0 > 0 && max1 > 0 && net->packetsInFlight() == 2)
            both_vcs_concurrent = true;
    }
    EXPECT_TRUE(both_vcs_concurrent)
        << "VC1 traffic only started after VC0 finished";

    ASSERT_TRUE(net->drain(200));
    EXPECT_EQ(net->stats().packetsEjected, 2u);
    EXPECT_EQ(net->stats().flitsEjected, 8u);

    // Both classes completed in comparable time (interleaved), not
    // serialized: with interleaving, the second packet finishes
    // within ~2x the first's span; a single-VC wormhole would fully
    // serialize them.
    const auto &req =
        net->stats()
            .latencyByClass[static_cast<int>(TrafficClass::Request)];
    const auto &rep =
        net->stats()
            .latencyByClass[static_cast<int>(TrafficClass::Reply)];
    ASSERT_EQ(req.count(), 1u);
    ASSERT_EQ(rep.count(), 1u);
    EXPECT_LT(std::abs(req.mean() - rep.mean()), 3.0)
        << "req " << req.mean() << " vs rep " << rep.mean()
        << ": streams were serialized, not interleaved";
}

TEST(VcInterleave, SingleVcSerializesTheSameWorkload)
{
    // Control experiment: same two packets, plain wormhole router —
    // the second packet waits for the first's tail.
    NetworkParams params;
    params.width = 2;
    params.height = 1;
    auto net = makeNetwork(params, RouterArch::NonSpeculative);
    net->injectPacket(0, 1, 4, net->now(), TrafficClass::Request);
    net->injectPacket(0, 1, 4, net->now(), TrafficClass::Reply);
    ASSERT_TRUE(net->drain(200));

    const auto &req =
        net->stats()
            .latencyByClass[static_cast<int>(TrafficClass::Request)];
    const auto &rep =
        net->stats()
            .latencyByClass[static_cast<int>(TrafficClass::Reply)];
    // Serialization gap: roughly the first packet's length.
    EXPECT_GE(std::abs(rep.mean() - req.mean()), 3.0);
}

} // namespace
} // namespace nox
