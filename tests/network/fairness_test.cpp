/**
 * @file
 * Fairness and starvation-freedom tests.
 *
 * §2.2: packets decoded via the XOR chain "are received in the order
 * which they won arbitration, maintaining any fairness or
 * prioritization mechanisms within the network." With round-robin
 * output arbiters, sustained competing flows must therefore share an
 * output near-equally on every architecture — including NoX, whose
 * encoded transfers must not skew service.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "noc/network.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace {

/** Measures per-flow completions directly with a listener. */
class FlowCounter : public SinkListener
{
  public:
    explicit FlowCounter(SinkListener *chain) : chain_(chain) {}

    void
    onFlitDelivered(NodeId node, const FlitDesc &flit,
                    Cycle now) override
    {
        chain_->onFlitDelivered(node, flit, now);
    }

    void
    onPacketCompleted(NodeId node, const FlitDesc &last,
                      Cycle head_inject, Cycle now) override
    {
        counts[last.src] += 1;
        chain_->onPacketCompleted(node, last, head_inject, now);
    }

    std::map<NodeId, int> counts;

  private:
    SinkListener *chain_;
};

class Fairness : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(Fairness, CompetingFlowsShareAnOutputEqually)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    auto net = makeNetwork(params, GetParam());
    FlowCounter counter(net.get());
    for (NodeId n = 0; n < net->numNodes(); ++n)
        net->nic(n).setListener(&counter);

    // Three flows converging on node 15's ejection port from
    // different directions.
    const std::vector<NodeId> sources{3, 12, 7};
    const NodeId dest = 15;
    const Cycle horizon = 4000;
    for (Cycle t = 0; t < horizon; ++t) {
        for (NodeId s : sources) {
            if (net->sourceQueueFlits(s) < 4)
                net->injectPacket(s, dest, 1, net->now(),
                                  TrafficClass::Synthetic);
        }
        net->step();
    }
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(30000));

    int total = 0;
    int min_count = INT32_MAX;
    int max_count = 0;
    for (NodeId s : sources) {
        total += counter.counts[s];
        min_count = std::min(min_count, counter.counts[s]);
        max_count = std::max(max_count, counter.counts[s]);
    }
    EXPECT_GT(total, 1000);
    // Round-robin service: no flow may get less than ~70% of the
    // fair share. (Spec-Fast's dead reservations cost throughput but
    // the newly-exposed rule keeps the shares even.)
    const double fair = static_cast<double>(total) / 3.0;
    EXPECT_GT(min_count, 0.70 * fair)
        << archName(GetParam()) << " starved a flow: min "
        << min_count << " max " << max_count;
}

TEST_P(Fairness, NoStarvationUnderAsymmetricPressure)
{
    // One aggressive nearby flow vs one distant flow; the distant
    // flow must still make steady progress.
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    auto net = makeNetwork(params, GetParam());
    FlowCounter counter(net.get());
    for (NodeId n = 0; n < net->numNodes(); ++n)
        net->nic(n).setListener(&counter);

    const NodeId near_src = 14, far_src = 0, dest = 15;
    for (Cycle t = 0; t < 4000; ++t) {
        if (net->sourceQueueFlits(near_src) < 6)
            net->injectPacket(near_src, dest, 1, net->now(),
                              TrafficClass::Synthetic);
        if (net->sourceQueueFlits(far_src) < 2)
            net->injectPacket(far_src, dest, 1, net->now(),
                              TrafficClass::Synthetic);
        net->step();
    }
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(30000));

    EXPECT_GT(counter.counts[far_src], 200)
        << archName(GetParam())
        << " starved the distant flow (near flow got "
        << counter.counts[near_src] << ")";
}

INSTANTIATE_TEST_SUITE_P(
    EveryArchitecture, Fairness, ::testing::ValuesIn(kAllArchs),
    [](const ::testing::TestParamInfo<RouterArch> &info) {
        switch (info.param) {
          case RouterArch::NonSpeculative: return "NonSpec";
          case RouterArch::SpecFast: return "SpecFast";
          case RouterArch::SpecAccurate: return "SpecAccurate";
          case RouterArch::Nox: return "NoX";
        }
        return "Unknown";
    });

} // namespace
} // namespace nox
