/**
 * @file
 * Energy-event accounting invariants across architectures:
 *
 *   - link flit counts equal the sum of per-packet hop counts
 *     (conservation between routing and energy accounting);
 *   - buffer writes equal flit arrivals; reads never exceed writes;
 *   - only speculative routers and NoX multi-flit aborts produce
 *     wasted link drives; NoX single-flit traffic never wastes;
 *   - the non-speculative router never drives invalid values.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"

namespace nox {
namespace {

std::unique_ptr<Network>
loadedNetwork(RouterArch arch, double rate, int flits,
              Cycle cycles)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    auto net = makeNetwork(params, arch);
    // Static mesh: the pattern must not dangle into a dead network.
    static const Mesh mesh(4, 4);
    static const DestinationPattern pattern(
        PatternKind::UniformRandom, mesh);
    Rng seeder(3);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pattern, rate, flits, seeder.next()));
    }
    net->run(cycles);
    net->setSourcesEnabled(false);
    EXPECT_TRUE(net->drain(60000));
    return net;
}

/** Sums DOR hop counts (inter-router links) of delivered packets. */
class HopCounter : public SinkListener
{
  public:
    HopCounter(SinkListener *chain, const Mesh &mesh)
        : chain_(chain), mesh_(mesh)
    {
    }

    void
    onFlitDelivered(NodeId node, const FlitDesc &flit,
                    Cycle now) override
    {
        hopFlits += static_cast<std::uint64_t>(
            mesh_.hopDistance(flit.src, flit.dest));
        chain_->onFlitDelivered(node, flit, now);
    }

    void
    onPacketCompleted(NodeId node, const FlitDesc &last,
                      Cycle head_inject, Cycle now) override
    {
        chain_->onPacketCompleted(node, last, head_inject, now);
    }

    std::uint64_t hopFlits = 0;

  private:
    SinkListener *chain_;
    const Mesh &mesh_;
};

class EnergyAccounting : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(EnergyAccounting, LinkFlitsMatchHopCounts)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    auto net = makeNetwork(params, GetParam());
    HopCounter counter(net.get(), net->mesh());
    for (NodeId n = 0; n < net->numNodes(); ++n)
        net->nic(n).setListener(&counter);

    DestinationPattern pattern(PatternKind::UniformRandom,
                               net->mesh());
    Rng seeder(5);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pattern, 0.05, 1, seeder.next()));
    }
    net->run(3000);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(60000));

    const EnergyEvents e = net->totalEnergyEvents();
    // Every productive inter-router transfer is one flit over one
    // hop; a flit's hop count is its DOR distance. NoX encoded
    // transfers carry several packets in one link flit, so linkFlits
    // may be LESS than the hop sum, never more.
    if (GetParam() == RouterArch::Nox) {
        EXPECT_LE(e.linkFlits, counter.hopFlits);
        EXPECT_GE(e.linkFlits, counter.hopFlits / 2);
    } else {
        EXPECT_EQ(e.linkFlits, counter.hopFlits);
    }
    // Inject + eject local hops: one each per flit (NoX ejection-port
    // collisions compress several packets into one link flit).
    if (GetParam() == RouterArch::Nox) {
        EXPECT_LE(e.localLinkFlits, 2 * net->stats().flitsEjected);
    } else {
        EXPECT_EQ(e.localLinkFlits, 2 * net->stats().flitsEjected);
    }
}

TEST_P(EnergyAccounting, BufferWritesMatchArrivals)
{
    auto net = loadedNetwork(GetParam(), 0.08, 1, 4000);
    const EnergyEvents e = net->totalEnergyEvents();
    // Every router-buffer write is a link arrival (inter-router or
    // injection); sink writes add the ejection leg. Every write is
    // eventually read exactly once (pop or decode-latch).
    EXPECT_GT(e.bufferWrites, 0u);
    EXPECT_EQ(e.bufferReads, e.bufferWrites);
}

TEST_P(EnergyAccounting, OnlySpeculationWastes)
{
    auto net = loadedNetwork(GetParam(), 0.10, 1, 4000);
    const EnergyEvents e = net->totalEnergyEvents();
    switch (GetParam()) {
      case RouterArch::NonSpeculative:
        EXPECT_EQ(e.linkWastedCycles + e.localLinkWasted, 0u);
        EXPECT_EQ(e.misspecCycles, 0u);
        break;
      case RouterArch::Nox:
        // Single-flit traffic cannot abort (§2.7): zero waste.
        EXPECT_EQ(e.linkWastedCycles + e.localLinkWasted, 0u);
        EXPECT_EQ(e.abortCycles, 0u);
        break;
      case RouterArch::SpecFast:
      case RouterArch::SpecAccurate:
        EXPECT_GT(e.misspecCycles, 0u);
        EXPECT_EQ(e.linkWastedCycles + e.localLinkWasted,
                  e.misspecCycles);
        break;
    }
}

TEST_P(EnergyAccounting, MultiFlitAbortsOnlyOnNox)
{
    auto net = loadedNetwork(GetParam(), 0.12, 3, 5000);
    const EnergyEvents e = net->totalEnergyEvents();
    if (GetParam() == RouterArch::Nox) {
        EXPECT_GT(e.abortCycles, 0u);
        EXPECT_EQ(e.linkWastedCycles + e.localLinkWasted,
                  e.abortCycles);
    } else {
        EXPECT_EQ(e.abortCycles, 0u);
    }
}

TEST_P(EnergyAccounting, DecodeActivityOnlyOnNox)
{
    auto net = loadedNetwork(GetParam(), 0.10, 1, 4000);
    const EnergyEvents e = net->totalEnergyEvents();
    if (GetParam() == RouterArch::Nox) {
        EXPECT_GT(e.decodeOps + e.decodeLatches, 0u);
        // Chain algebra: each encoded transfer is eventually latched
        // once downstream, and each latch begins a chain that decodes
        // at least one packet by XOR.
        EXPECT_GE(e.decodeOps, e.decodeLatches);
    } else {
        EXPECT_EQ(e.decodeOps, 0u);
        EXPECT_EQ(e.decodeLatches, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    EveryArchitecture, EnergyAccounting,
    ::testing::ValuesIn(kAllArchs),
    [](const ::testing::TestParamInfo<RouterArch> &info) {
        switch (info.param) {
          case RouterArch::NonSpeculative: return "NonSpec";
          case RouterArch::SpecFast: return "SpecFast";
          case RouterArch::SpecAccurate: return "SpecAccurate";
          case RouterArch::Nox: return "NoX";
        }
        return "Unknown";
    });

} // namespace
} // namespace nox
