/**
 * @file
 * DrainReport classification: the drain diagnosis must cleanly
 * separate packets deliberately written off by the hard-fault
 * machinery (undeliverablePackets — accounted losses that do not
 * block a successful drain) from packets genuinely stuck in flight
 * (stalledPackets — the count that decides `drained`).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

std::unique_ptr<Network>
buildLoadedNet(const FaultParams &faults = {})
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.faults = faults;
    auto net = makeNetwork(params, RouterArch::Nox);

    static const Mesh mesh(8, 8);
    static const DestinationPattern pattern(
        PatternKind::UniformRandom, mesh, 0.2);
    Rng seeder(0xDBA1A);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pattern, 0.08, 3, seeder.next()));
    }
    return net;
}

TEST(DrainReport, CleanDrainReportsNothingStuck)
{
    auto net = buildLoadedNet();
    net->run(300);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(5000));

    const DrainReport &r = net->lastDrainReport();
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.packetsInFlight, 0u);
    EXPECT_EQ(r.stalledPackets, 0u);
    EXPECT_EQ(r.undeliverablePackets, 0u);
    EXPECT_TRUE(r.busyRouters.empty());
    EXPECT_TRUE(r.busyNics.empty());
    EXPECT_TRUE(r.partialPackets.empty());
    // The one-paragraph rendering of a clean drain says so.
    EXPECT_NE(r.summary().find("drained"), std::string::npos);
}

TEST(DrainReport, HardFaultWriteOffsAreUndeliverableNotStalled)
{
    // Fail-stop kills under load write off in-flight and unreachable
    // packets. Those are accounted losses: drain still succeeds, and
    // the report classifies them as undeliverable, not stalled.
    FaultParams faults;
    faults.enabled = true;
    faults.hardLinkFaults = 3;
    faults.hardRouterFaults = 1;
    faults.hardFaultCycle = 150;
    faults.seed = 0xD15EA5E;

    auto net = buildLoadedNet(faults);
    net->run(300);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(5000)) << net->lastDrainReport().summary();

    const DrainReport &r = net->lastDrainReport();
    EXPECT_TRUE(r.drained);
    ASSERT_GT(net->stats().faults.packetsLostHard, 0u)
        << "kills never caught a packet: not a write-off test";
    EXPECT_EQ(r.undeliverablePackets,
              net->stats().faults.packetsLostHard);
    EXPECT_EQ(r.stalledPackets, 0u);
    EXPECT_TRUE(r.busyRouters.empty());
    EXPECT_TRUE(r.busyNics.empty());
    // Conservation: everything injected was delivered or written off.
    EXPECT_EQ(net->stats().packetsEjected +
                  net->stats().faults.packetsLostHard,
              net->stats().packetsInjected);
}

TEST(DrainReport, UnprotectedDropWedgesAsStalled)
{
    // With link protection off, a dropped tail flit simply vanishes:
    // the packet can never complete at the sink, so the network
    // wedges and the report must blame a stalled packet — with the
    // busy-component lists and partial-packet forensics populated,
    // and nothing misfiled under undeliverable.
    FaultParams faults;
    faults.enabled = true;
    faults.protect = false;

    // Probe run: a one-shot bit flip stamps the fault log with the
    // cycle the head flit crosses the destination router's west
    // input; flits follow at one-cycle spacing on an idle mesh.
    Cycle head_arrival = 0;
    {
        NetworkParams params;
        params.width = 4;
        params.height = 4;
        params.faults = faults;
        auto probe = makeNetwork(params, RouterArch::NonSpeculative);
        probe->faultInjector()->scheduleOneShot(FaultKind::BitFlip, 0,
                                                /*router=*/3,
                                                kPortWest);
        probe->injectPacket(0, 3, 3, probe->now(),
                            TrafficClass::Synthetic);
        ASSERT_TRUE(probe->drain(500));
        ASSERT_EQ(probe->faultInjector()->log().size(), 1u);
        head_arrival = probe->faultInjector()->log()[0].cycle;
    }

    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.faults = faults;
    auto net = makeNetwork(params, RouterArch::NonSpeculative);
    net->faultInjector()->scheduleOneShot(FaultKind::Drop,
                                          head_arrival + 2,
                                          /*router=*/3, kPortWest);
    net->injectPacket(0, 3, 3, net->now(), TrafficClass::Synthetic);
    EXPECT_FALSE(net->drain(2000))
        << "expected a wedge, but the network drained";

    const DrainReport &r = net->lastDrainReport();
    EXPECT_FALSE(r.drained);
    EXPECT_EQ(r.stalledPackets, 1u);
    EXPECT_EQ(r.undeliverablePackets, 0u)
        << "no hard faults ran, nothing was written off";
    EXPECT_EQ(r.packetsInFlight, 1u);
    EXPECT_FALSE(r.busyRouters.empty() && r.busyNics.empty())
        << "a wedged network must name at least one busy component";
    EXPECT_NE(r.summary().find("stalled"), std::string::npos)
        << "summary: " << r.summary();
}

} // namespace
} // namespace nox
