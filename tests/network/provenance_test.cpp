/**
 * @file
 * Latency-provenance conservation: for every router architecture,
 * every scheduling kernel, and both fault regimes (soft CRC/retry
 * faults and hard fail-stop kills), every delivered packet's latency
 * components must sum *exactly* to its measured latency, no span may
 * outlive a full drain, and the aggregated breakdown must itself
 * conserve and match NetworkStats' measured-packet count.
 *
 * The cross-kernel half extends the PR 4 `identicalStats` contract to
 * the observer: the aggregated LatencyBreakdown (total and per-class)
 * is bit-identical across the always-tick, activity-driven, and
 * equivalence-checking kernels.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "obs/provenance.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

constexpr Cycle kWarmup = 300;
constexpr Cycle kMeasure = 900;
constexpr Cycle kDrainLimit = 500000;
constexpr std::uint64_t kSeed = 0x9A0B5;

std::unique_ptr<Network>
buildNetwork(RouterArch arch, SchedulingMode mode,
             const FaultParams &faults = {}, int vc_count = 1,
             double load = 0.10, int packet_flits = 3)
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.schedulingMode = mode;
    params.faults = faults;
    params.router.vcCount = vc_count;
    params.obs.prov.enabled = true;
    auto net = makeNetwork(params, arch);

    static const Mesh mesh(8, 8);
    static const DestinationPattern pat(PatternKind::UniformRandom,
                                        mesh, 0.2);
    Rng seeder(kSeed);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pat, load, packet_flits, seeder.next()));
    }
    net->setMeasurementWindow(kWarmup, kWarmup + kMeasure);
    return net;
}

/** Run to quiescence and assert every provenance invariant. Returns
 *  the aggregated breakdown for cross-run comparisons. */
LatencyBreakdown
runConserved(Network &net, const std::string &what)
{
    net.run(kWarmup + kMeasure);
    net.setSourcesEnabled(false);
    EXPECT_TRUE(net.drain(kDrainLimit))
        << what << ": " << net.lastDrainReport().summary();
    net.finishObservability();

    const LatencyProvenance *prov = net.provenance();
    EXPECT_NE(prov, nullptr) << what;
    if (prov == nullptr)
        return {};

    // Per-packet conservation held on every delivery.
    EXPECT_EQ(prov->conservationViolations(), 0u)
        << what << ": components did not sum to measured latency";
    // Nothing is still tracked after a full drain (hard-fault
    // write-offs must have been forgotten, not leaked).
    EXPECT_EQ(prov->openSpans(), 0u)
        << what << ": spans leaked past the drain";

    const LatencyBreakdown &b = prov->total();
    // Aggregate conservation and agreement with NetworkStats.
    EXPECT_EQ(b.componentsSum(), b.totalCycles) << what;
    EXPECT_EQ(b.packets, net.stats().packetsMeasuredDone) << what;
    // All traffic here is Synthetic, so the class split is trivial
    // and must exactly reproduce the total.
    EXPECT_TRUE(
        prov->byClass(TrafficClass::Synthetic).identicalTo(b))
        << what;

    // The per-flow rows partition the total: their sums must
    // reassemble it exactly.
    LatencyBreakdown flows;
    for (const auto &[key, fb] : prov->byFlow()) {
        flows.packets += fb.packets;
        flows.totalCycles += fb.totalCycles;
        for (std::size_t i = 0; i < kNumLatencyComponents; ++i)
            flows.comp[i] += fb.comp[i];
        EXPECT_EQ(fb.componentsSum(), fb.totalCycles)
            << what << ": flow " << (key >> 32) << "->"
            << (key & 0xffffffffu);
    }
    EXPECT_TRUE(flows.identicalTo(b))
        << what << ": flow rows do not partition the total";

    // Sanity on the shape: measured packets exist and each costs at
    // least the minimum productive pipeline cycles.
    EXPECT_GT(b.packets, 0u) << what;
    EXPECT_GE(b[LatencyComponent::RouterPipeline], b.packets) << what;
    return b;
}

FaultParams
softFaults()
{
    FaultParams f;
    f.enabled = true;
    f.bitflipRate = 1e-4;
    f.creditLossRate = 1e-4;
    f.seed = 0xBEEF;
    return f;
}

FaultParams
hardFaults()
{
    FaultParams f;
    f.enabled = true;
    f.hardLinkFaults = 2;
    f.hardRouterFaults = 1;
    f.hardFaultCycle = kWarmup + kMeasure / 2;
    f.seed = 0xC0FFEE;
    return f;
}

struct Case
{
    RouterArch arch;
    const char *regime; // "clean", "soft", "hard"
};

class ProvenanceConservation : public ::testing::TestWithParam<Case>
{
  protected:
    static FaultParams
    faultsFor(const std::string &regime)
    {
        if (regime == "soft")
            return softFaults();
        if (regime == "hard")
            return hardFaults();
        return {};
    }
};

TEST_P(ProvenanceConservation, ComponentsSumExactly)
{
    const auto [arch, regime] = GetParam();
    const std::string what =
        std::string(archName(arch)) + "/" + regime;
    auto net = buildNetwork(arch, SchedulingMode::AlwaysTick,
                            faultsFor(regime));
    runConserved(*net, what);
}

TEST_P(ProvenanceConservation, BreakdownIdenticalAcrossKernels)
{
    // The aggregated attribution is part of the deterministic
    // observable state: all three scheduling kernels must produce a
    // bit-identical breakdown, not merely bit-identical NetworkStats.
    const auto [arch, regime] = GetParam();
    const FaultParams faults = faultsFor(regime);
    const std::string what =
        std::string(archName(arch)) + "/" + regime;

    auto tick =
        buildNetwork(arch, SchedulingMode::AlwaysTick, faults);
    const LatencyBreakdown a =
        runConserved(*tick, what + "/alwaystick");
    auto activity =
        buildNetwork(arch, SchedulingMode::ActivityDriven, faults);
    const LatencyBreakdown b =
        runConserved(*activity, what + "/activity");
    auto equiv =
        buildNetwork(arch, SchedulingMode::EquivalenceCheck, faults);
    const LatencyBreakdown c =
        runConserved(*equiv, what + "/equivalence");

    EXPECT_TRUE(identicalStats(tick->stats(), activity->stats()))
        << what;
    EXPECT_TRUE(a.identicalTo(b))
        << what << ": activity kernel changed the attribution";
    EXPECT_TRUE(a.identicalTo(c))
        << what << ": equivalence kernel changed the attribution";
    for (int cls = 0; cls < 3; ++cls) {
        const auto tc = static_cast<TrafficClass>(cls);
        EXPECT_TRUE(tick->provenance()->byClass(tc).identicalTo(
            activity->provenance()->byClass(tc)))
            << what << " class " << cls;
    }
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndRegimes, ProvenanceConservation,
    ::testing::Values(
        Case{RouterArch::NonSpeculative, "clean"},
        Case{RouterArch::SpecFast, "clean"},
        Case{RouterArch::SpecAccurate, "clean"},
        Case{RouterArch::Nox, "clean"},
        Case{RouterArch::NonSpeculative, "soft"},
        Case{RouterArch::SpecFast, "soft"},
        Case{RouterArch::SpecAccurate, "soft"},
        Case{RouterArch::Nox, "soft"},
        Case{RouterArch::NonSpeculative, "hard"},
        Case{RouterArch::SpecFast, "hard"},
        Case{RouterArch::SpecAccurate, "hard"},
        Case{RouterArch::Nox, "hard"}),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string name = std::string(archName(info.param.arch)) +
                           "_" + info.param.regime;
        std::erase_if(name, [](char c) {
            return c != '_' &&
                   !std::isalnum(static_cast<unsigned char>(c));
        });
        return name;
    });

TEST(ProvenanceConservation, VirtualChannelRouter)
{
    // vc_count > 1 swaps in the VC router — a different pipeline with
    // its own arbitration and credit paths; conservation must hold
    // there too, clean and under soft faults.
    auto clean = buildNetwork(RouterArch::NonSpeculative,
                              SchedulingMode::AlwaysTick, {}, 2);
    runConserved(*clean, "vc2/clean");
    auto soft = buildNetwork(RouterArch::NonSpeculative,
                             SchedulingMode::AlwaysTick, softFaults(),
                             2);
    runConserved(*soft, "vc2/soft");
}

TEST(ProvenanceConservation, UnmeasuredPacketsStillConserve)
{
    // A window that excludes everything: aggregates stay empty, but
    // tracked spans must still close cleanly (conservation is checked
    // on every delivery, measured or not).
    auto net = buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick);
    net->setMeasurementWindow(1u << 30, (1u << 30) + 1);
    net->run(kWarmup + kMeasure);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(kDrainLimit));
    const LatencyProvenance *prov = net->provenance();
    ASSERT_NE(prov, nullptr);
    EXPECT_EQ(prov->conservationViolations(), 0u);
    EXPECT_EQ(prov->openSpans(), 0u);
    EXPECT_EQ(prov->total().packets, 0u);
    EXPECT_EQ(prov->total().totalCycles, 0u);
    EXPECT_TRUE(prov->byFlow().empty());
}

} // namespace
} // namespace nox
