/**
 * @file
 * Hard (fail-stop) faults end to end: config-time and mid-run link or
 * router kills on every router architecture, under every scheduling
 * kernel.
 *
 * The delivery guarantee under test: with the mesh degraded by hard
 * faults, every injected packet is either delivered uncorrupted or
 * explicitly written off (in flight on dying hardware) — and every
 * injection toward an unreachable destination is refused and counted
 * at the boundary. No silent losses, no drain timeouts, and the whole
 * fault schedule is a pure function of the fault seed, so all three
 * scheduling kernels produce bit-identical NetworkStats.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

constexpr Cycle kRun = 1200;
constexpr Cycle kDrainLimit = 500000;
constexpr std::uint64_t kSeed = 0xF1683;

std::unique_ptr<Network>
buildNetwork(RouterArch arch, SchedulingMode mode,
             const FaultParams &faults, double load = 0.08,
             int packet_flits = 3, int vc_count = 1)
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.schedulingMode = mode;
    params.faults = faults;
    params.router.vcCount = vc_count;
    auto net = makeNetwork(params, arch);

    static const Mesh mesh(8, 8);
    static const DestinationPattern pat(PatternKind::UniformRandom,
                                        mesh, 0.2);
    Rng seeder(kSeed);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pat, load, packet_flits, seeder.next()));
    }
    return net;
}

/** Run, drain, and enforce the delivery guarantee; returns stats. */
NetworkStats
runChecked(RouterArch arch, SchedulingMode mode,
           const FaultParams &faults, int vc_count = 1)
{
    auto net = buildNetwork(arch, mode, faults, 0.08, 3, vc_count);
    net->run(kRun);
    net->setSourcesEnabled(false);
    EXPECT_TRUE(net->drain(kDrainLimit))
        << archName(arch) << "/" << schedulingModeName(mode) << ": "
        << net->lastDrainReport().summary();

    const NetworkStats &s = net->stats();
    // Conservation: delivered + written-off == injected, exactly.
    EXPECT_EQ(s.packetsEjected + s.faults.packetsLostHard,
              s.packetsInjected)
        << archName(arch) << ": silent packet loss";
    // Nothing stalled; written-off packets are accounted losses.
    const DrainReport &rep = net->lastDrainReport();
    EXPECT_EQ(rep.stalledPackets, 0u);
    EXPECT_EQ(rep.undeliverablePackets, s.faults.packetsLostHard);
    // Payload integrity held on every delivery (asserted in the sink;
    // the escape counter double-checks no corruption slipped out).
    EXPECT_EQ(s.faults.corruptedEscapes, 0u);
    return s;
}

FaultParams
hardFaults(int links, int routers, Cycle at,
           std::uint64_t seed = 0xC0FFEE)
{
    FaultParams f;
    f.enabled = true;
    f.hardLinkFaults = links;
    f.hardRouterFaults = routers;
    f.hardFaultCycle = at;
    f.seed = seed;
    return f;
}

class HardFaults : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(HardFaults, ConfigTimeLinkKillsKernelsBitIdentical)
{
    // Four links die before any traffic: the acceptance scenario.
    // Nothing is ever in flight on dying hardware, so zero packets
    // are written off — and all three kernels agree bit for bit.
    const RouterArch arch = GetParam();
    const FaultParams f = hardFaults(4, 0, 0);
    const NetworkStats tick =
        runChecked(arch, SchedulingMode::AlwaysTick, f);
    EXPECT_EQ(tick.faults.hardLinkFaults, 4u);
    EXPECT_EQ(tick.faults.tableRebuilds, 1u);
    EXPECT_EQ(tick.faults.packetsLostHard, 0u);
    EXPECT_GT(tick.packetsEjected, 0u);

    const NetworkStats activity =
        runChecked(arch, SchedulingMode::ActivityDriven, f);
    const NetworkStats checked =
        runChecked(arch, SchedulingMode::EquivalenceCheck, f);
    EXPECT_TRUE(identicalStats(tick, activity))
        << archName(arch) << ": kernels diverged under hard faults";
    EXPECT_TRUE(identicalStats(tick, checked))
        << archName(arch) << ": equivalence kernel diverged";
}

TEST_P(HardFaults, MidRunKillsDegradeGracefully)
{
    // Links and a router die in the middle of a busy run: in-flight
    // casualties are written off, the table is rebuilt, and the
    // drained network still satisfies exact conservation.
    const RouterArch arch = GetParam();
    const FaultParams f = hardFaults(2, 1, kRun / 2);
    const NetworkStats tick =
        runChecked(arch, SchedulingMode::AlwaysTick, f);
    EXPECT_EQ(tick.faults.hardLinkFaults, 2u);
    EXPECT_EQ(tick.faults.hardRouterFaults, 1u);
    EXPECT_GE(tick.faults.tableRebuilds, 1u);
    EXPECT_GT(tick.packetsEjected, 0u);
    // A dying router under load takes its queued traffic with it.
    EXPECT_GT(tick.faults.packetsLostHard, 0u);
    // Dead terminals make some destinations unreachable; sources keep
    // addressing them and every such injection is counted, refused.
    EXPECT_GT(tick.faults.unreachableRejected, 0u);

    const NetworkStats activity =
        runChecked(arch, SchedulingMode::ActivityDriven, f);
    EXPECT_TRUE(identicalStats(tick, activity))
        << archName(arch)
        << ": kernels diverged across a mid-run kill";
}

TEST_P(HardFaults, ArmedButFaultFreeIsInvisible)
{
    // The whole hard-fault apparatus (injector, table, purge hooks)
    // armed with zero faults must be bit-invisible: identical stats
    // to a network with no fault machinery at all.
    const RouterArch arch = GetParam();
    FaultParams armed;
    armed.enabled = true;
    const NetworkStats with =
        runChecked(arch, SchedulingMode::AlwaysTick, armed);
    const NetworkStats without =
        runChecked(arch, SchedulingMode::AlwaysTick, FaultParams{});
    EXPECT_TRUE(identicalStats(with, without))
        << archName(arch)
        << ": idle fault machinery perturbed the simulation";
}

INSTANTIATE_TEST_SUITE_P(
    Arches, HardFaults,
    ::testing::Values(RouterArch::NonSpeculative, RouterArch::SpecFast,
                      RouterArch::SpecAccurate, RouterArch::Nox),
    [](const ::testing::TestParamInfo<RouterArch> &info) {
        std::string n = archName(info.param);
        std::erase_if(n, [](char c) {
            return !std::isalnum(static_cast<unsigned char>(c));
        });
        return n;
    });

TEST(HardFaultsVc, MidRunKillWithVirtualChannels)
{
    // The VC router keeps per-VC state the purge must cover too.
    const FaultParams f = hardFaults(2, 1, kRun / 2);
    const NetworkStats s = runChecked(
        RouterArch::NonSpeculative, SchedulingMode::AlwaysTick, f,
        /*vc_count=*/2);
    EXPECT_GE(s.faults.tableRebuilds, 1u);
    EXPECT_GT(s.packetsEjected, 0u);
}

TEST(HardFaultsTargeted, UnreachableInjectionRefusedAndCounted)
{
    // Kill one router via the one-shot API, then aim a packet at its
    // terminal: the injection must be refused at the boundary (no
    // leaked packet id, no stranded flits) and counted.
    FaultParams f;
    f.enabled = true;
    auto net = buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick, f,
                            /*load=*/0.0);
    ASSERT_NE(net->faultInjector(), nullptr);
    net->faultInjector()->scheduleOneShot(FaultKind::RouterDead,
                                          /*cycle=*/1, /*router=*/27,
                                          /*port=*/-1);
    net->run(2);
    ASSERT_TRUE(net->faultMap().routerDead(27));

    const NetworkStats before = net->stats();
    EXPECT_EQ(net->injectPacket(0, 27, 1, net->now(),
                                TrafficClass::Synthetic),
              kInvalidPacket);
    EXPECT_EQ(net->stats().faults.unreachableRejected,
              before.faults.unreachableRejected + 1);
    EXPECT_EQ(net->stats().packetsInjected, before.packetsInjected);
    EXPECT_FALSE(net->routingTable().reachable(0, 27));

    // A live pair still routes normally on the rebuilt table.
    EXPECT_NE(net->injectPacket(0, 63, 1, net->now(),
                                TrafficClass::Synthetic),
              kInvalidPacket);
    EXPECT_TRUE(net->drain(kDrainLimit))
        << net->lastDrainReport().summary();
    EXPECT_EQ(net->stats().packetsEjected,
              net->stats().packetsInjected);
}

TEST(HardFaultsTargeted, MidRunLinkKillWritesOffInFlightTraffic)
{
    // A targeted single-link kill during saturation-ish load: the
    // drain report must classify every written-off packet as
    // undeliverable (accounted), never as stalled.
    FaultParams f;
    f.enabled = true;
    auto net = buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick, f,
                            /*load=*/0.2, /*packet_flits=*/5);
    net->faultInjector()->scheduleOneShot(FaultKind::LinkDead,
                                          /*cycle=*/600,
                                          /*router=*/27, kPortEast);
    net->run(kRun);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(kDrainLimit))
        << net->lastDrainReport().summary();

    const NetworkStats &s = net->stats();
    EXPECT_TRUE(net->faultMap().linkDead(27, kPortEast));
    EXPECT_TRUE(net->faultMap().linkDead(28, kPortWest));
    EXPECT_EQ(s.faults.hardLinkFaults, 1u);
    EXPECT_EQ(s.packetsEjected + s.faults.packetsLostHard,
              s.packetsInjected);
    // The mesh stays connected around one dead link: nothing becomes
    // unreachable, so every loss is an in-flight casualty.
    EXPECT_EQ(s.faults.unreachableRejected, 0u);
    const DrainReport &rep = net->lastDrainReport();
    EXPECT_EQ(rep.stalledPackets, 0u);
    EXPECT_EQ(rep.undeliverablePackets, s.faults.packetsLostHard);
}

TEST(HardFaultsTargeted, SoftAndHardFaultsCompose)
{
    // Transient upsets (with CRC/retry protection) and a mid-run hard
    // kill in the same run: recovery machinery and write-off
    // machinery must not double-count or lose anything.
    FaultParams f = hardFaults(2, 0, 500);
    f.bitflipRate = 0.001;
    f.dropRate = 0.0005;
    const NetworkStats s = runChecked(
        RouterArch::Nox, SchedulingMode::AlwaysTick, f);
    EXPECT_GT(s.faults.faultsInjected, 0u);
    EXPECT_EQ(s.faults.hardLinkFaults, 2u);
    EXPECT_GE(s.faults.tableRebuilds, 1u);
}

} // namespace
} // namespace nox
