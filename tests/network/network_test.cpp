/** @file End-to-end network tests: delivery, latency accounting,
 *  multi-flit packets, measurement windows. */

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace {

NetworkParams
smallParams()
{
    NetworkParams p;
    p.width = 4;
    p.height = 4;
    return p;
}

class AllArchs : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(AllArchs, SinglePacketDelivered)
{
    auto net = makeNetwork(smallParams(), GetParam());
    net->injectPacket(0, 15, 1, net->now(), TrafficClass::Synthetic);
    EXPECT_TRUE(net->drain(200));
    EXPECT_EQ(net->stats().packetsEjected, 1u);
    EXPECT_EQ(net->stats().flitsEjected, 1u);

    // 0 -> 15 in a 4x4 mesh is 6 hops; latency must cover at least
    // injection + per-hop traversal + ejection.
    EXPECT_GE(net->stats().latency.mean(), 6.0);
    EXPECT_LE(net->stats().latency.mean(), 20.0);
}

TEST_P(AllArchs, ZeroLoadCycleLatencyIdenticalAcrossRuns)
{
    // Deterministic: same packet twice in fresh networks.
    double lat[2];
    for (int i = 0; i < 2; ++i) {
        auto net = makeNetwork(smallParams(), GetParam());
        net->injectPacket(5, 10, 1, net->now(),
                          TrafficClass::Synthetic);
        ASSERT_TRUE(net->drain(200));
        lat[i] = net->stats().latency.mean();
    }
    EXPECT_DOUBLE_EQ(lat[0], lat[1]);
}

TEST_P(AllArchs, MultiFlitPacketDelivered)
{
    auto net = makeNetwork(smallParams(), GetParam());
    net->injectPacket(3, 12, 9, net->now(), TrafficClass::Reply);
    EXPECT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().packetsEjected, 1u);
    EXPECT_EQ(net->stats().flitsEjected, 9u);
}

TEST_P(AllArchs, ManyPacketsFromOneSourceArriveInOrder)
{
    auto net = makeNetwork(smallParams(), GetParam());
    for (int i = 0; i < 10; ++i)
        net->injectPacket(0, 15, 1, net->now(),
                          TrafficClass::Synthetic);
    EXPECT_TRUE(net->drain(1000));
    EXPECT_EQ(net->stats().packetsEjected, 10u);
}

TEST_P(AllArchs, CrossTrafficAllDelivered)
{
    // Four flows crossing the mesh centre in both dimensions.
    auto net = makeNetwork(smallParams(), GetParam());
    const Mesh &m = net->mesh();
    for (int i = 0; i < 5; ++i) {
        net->injectPacket(m.nodeAt({0, 1}), m.nodeAt({3, 1}), 1,
                          net->now(), TrafficClass::Synthetic);
        net->injectPacket(m.nodeAt({3, 2}), m.nodeAt({0, 2}), 1,
                          net->now(), TrafficClass::Synthetic);
        net->injectPacket(m.nodeAt({1, 0}), m.nodeAt({1, 3}), 1,
                          net->now(), TrafficClass::Synthetic);
        net->injectPacket(m.nodeAt({2, 3}), m.nodeAt({2, 0}), 9,
                          net->now(), TrafficClass::Reply);
        net->run(2);
    }
    EXPECT_TRUE(net->drain(2000));
    EXPECT_EQ(net->stats().packetsEjected, 20u);
    EXPECT_EQ(net->stats().flitsEjected, 5u * (3 + 9));
}

TEST_P(AllArchs, ZeroLoadLatencyEqualsHopsPlusConstant)
{
    // At zero load every evaluated design is a single-cycle-per-hop
    // router: cycle latency must grow by exactly one per extra hop.
    const Mesh mesh(4, 4);
    std::vector<double> lats;
    for (int hops = 1; hops <= 3; ++hops) {
        auto net = makeNetwork(smallParams(), GetParam());
        net->injectPacket(0, hops /* (hops,0) */, 1, net->now(),
                          TrafficClass::Synthetic);
        ASSERT_TRUE(net->drain(100));
        lats.push_back(net->stats().latency.mean());
    }
    EXPECT_DOUBLE_EQ(lats[1] - lats[0], 1.0);
    EXPECT_DOUBLE_EQ(lats[2] - lats[1], 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    EveryArchitecture, AllArchs, ::testing::ValuesIn(kAllArchs),
    [](const ::testing::TestParamInfo<RouterArch> &info) {
        switch (info.param) {
          case RouterArch::NonSpeculative: return "NonSpec";
          case RouterArch::SpecFast: return "SpecFast";
          case RouterArch::SpecAccurate: return "SpecAccurate";
          case RouterArch::Nox: return "NoX";
        }
        return "Unknown";
    });

TEST(Network, MeasurementWindowFiltersLatency)
{
    auto net = makeNetwork(smallParams(), RouterArch::Nox);
    net->setMeasurementWindow(100, 200);

    net->injectPacket(0, 5, 1, net->now(), TrafficClass::Synthetic);
    net->run(100); // packet created at cycle 0: outside window
    EXPECT_EQ(net->stats().latency.count(), 0u);

    net->injectPacket(0, 5, 1, net->now(), TrafficClass::Synthetic);
    EXPECT_TRUE(net->drain(200));
    EXPECT_EQ(net->stats().latency.count(), 1u);
    EXPECT_EQ(net->stats().packetsMeasured, 1u);
    EXPECT_EQ(net->stats().packetsMeasuredDone, 1u);
}

TEST(Network, PerClassLatencyTracked)
{
    auto net = makeNetwork(smallParams(), RouterArch::Nox);
    net->injectPacket(0, 5, 1, net->now(), TrafficClass::Request);
    net->injectPacket(5, 0, 9, net->now(), TrafficClass::Reply);
    EXPECT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats()
                  .latencyByClass[static_cast<int>(TrafficClass::Request)]
                  .count(),
              1u);
    EXPECT_EQ(net->stats()
                  .latencyByClass[static_cast<int>(TrafficClass::Reply)]
                  .count(),
              1u);
}

TEST(Network, EnergyEventsAccumulate)
{
    auto net = makeNetwork(smallParams(), RouterArch::Nox);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(200));
    const EnergyEvents e = net->totalEnergyEvents();
    // 0 -> 3 along the top row traverses routers 0,1,2,3: three
    // inter-router link crossings plus the inject and eject hops.
    EXPECT_EQ(e.linkFlits, 3u);
    EXPECT_EQ(e.localLinkFlits, 2u);
    EXPECT_GE(e.bufferWrites, 3u);
    EXPECT_EQ(e.linkWastedCycles, 0u);
}

TEST(Network, InFlightAccounting)
{
    auto net = makeNetwork(smallParams(), RouterArch::NonSpeculative);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    net->injectPacket(0, 15, 1, net->now(), TrafficClass::Synthetic);
    EXPECT_EQ(net->packetsInFlight(), 1u);
    EXPECT_TRUE(net->drain(200));
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(NetworkDeathTest, SelfAddressedPacketRejected)
{
    auto net = makeNetwork(smallParams(), RouterArch::Nox);
    EXPECT_DEATH(net->injectPacket(3, 3, 1, 0,
                                   TrafficClass::Synthetic),
                 "self-addressed");
}

} // namespace
} // namespace nox
