/**
 * @file
 * Seeded determinism and scheduling-kernel equivalence.
 *
 * The guardrail for the activity-driven kernel: for every router
 * architecture and a representative pattern set, a seeded fig-8-style
 * run must produce bit-identical NetworkStats (a) across repeated
 * runs, (b) across scheduling kernels stepped in lockstep, and
 * (c) under the self-checking equivalence kernel, whose per-cycle
 * asserts verify every retired component is genuinely quiescent.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "noc/flit_arena.hpp"
#include "noc/network.hpp"
#include "obs/digest.hpp"
#include "routers/factory.hpp"
#include "snapshot/io.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

constexpr Cycle kWarmup = 300;
constexpr Cycle kMeasure = 900;
constexpr Cycle kDrainLimit = 20000;
constexpr std::uint64_t kSeed = 0xF1683;

std::unique_ptr<Network>
buildNetwork(RouterArch arch, PatternKind pattern, SchedulingMode mode,
             double load, int packet_flits,
             const FaultParams &faults = {})
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.schedulingMode = mode;
    params.faults = faults;
    auto net = makeNetwork(params, arch);

    // Sources are seeded per node from one seeder, as runSynthetic
    // does, so every kernel sees the same injection sequence.
    static const Mesh mesh(8, 8);
    static const DestinationPattern uniform(PatternKind::UniformRandom,
                                            mesh, 0.2);
    static const DestinationPattern transpose(PatternKind::Transpose,
                                              mesh, 0.2);
    const DestinationPattern &pat =
        pattern == PatternKind::Transpose ? transpose : uniform;
    Rng seeder(kSeed);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pat, load, packet_flits, seeder.next()));
    }
    net->setMeasurementWindow(kWarmup, kWarmup + kMeasure);
    return net;
}

NetworkStats
runOnce(RouterArch arch, PatternKind pattern, SchedulingMode mode,
        double load = 0.05, int packet_flits = 1)
{
    auto net = buildNetwork(arch, pattern, mode, load, packet_flits);
    net->run(kWarmup + kMeasure);
    EXPECT_TRUE(net->drain(kDrainLimit));
    return net->stats();
}

struct Case
{
    RouterArch arch;
    PatternKind pattern;
};

class SchedulingEquivalence : public ::testing::TestWithParam<Case>
{
};

TEST_P(SchedulingEquivalence, RepeatedRunsBitIdentical)
{
    const auto [arch, pattern] = GetParam();
    for (SchedulingMode mode : {SchedulingMode::AlwaysTick,
                                SchedulingMode::ActivityDriven}) {
        const NetworkStats a = runOnce(arch, pattern, mode);
        const NetworkStats b = runOnce(arch, pattern, mode);
        EXPECT_TRUE(identicalStats(a, b))
            << archName(arch) << "/" << schedulingModeName(mode)
            << " diverged between identical seeded runs";
    }
}

TEST_P(SchedulingEquivalence, KernelsBitIdenticalInLockstep)
{
    const auto [arch, pattern] = GetParam();
    auto tick = buildNetwork(arch, pattern,
                             SchedulingMode::AlwaysTick, 0.05, 1);
    auto activity = buildNetwork(
        arch, pattern, SchedulingMode::ActivityDriven, 0.05, 1);

    // Lockstep: both kernels advance one cycle at a time and must
    // agree on every statistic — and on the full canonical state
    // digest, component by component — at every cycle boundary. The
    // digest check is strictly stronger than identicalStats: it
    // covers buffers, arbiter pointers, credits and source RNGs, so
    // a kernel bug that corrupts state without (yet) moving a
    // counter is caught at the first corrupt cycle.
    snap::Writer scratchTick, scratchActivity;
    for (Cycle t = 0; t < kWarmup + kMeasure; ++t) {
        tick->step();
        activity->step();
        ASSERT_TRUE(identicalStats(tick->stats(), activity->stats()))
            << archName(arch) << ": kernels diverged at cycle " << t;
        const DigestStride a =
            tick->computeDigestStride(scratchTick);
        const DigestStride b =
            activity->computeDigestStride(scratchActivity);
        ASSERT_EQ(a.fold(), b.fold())
            << archName(arch) << ": kernel state digests diverged at "
            << "cycle " << t << " in "
            << ::testing::PrintToString(divergentComponents(a, b));
    }
    EXPECT_TRUE(tick->drain(kDrainLimit));
    EXPECT_TRUE(activity->drain(kDrainLimit));
    EXPECT_EQ(tick->now(), activity->now())
        << "kernels drained in different cycle counts";
    EXPECT_TRUE(identicalStats(tick->stats(), activity->stats()));
    EXPECT_EQ(tick->computeDigestStride().fold(),
              activity->computeDigestStride().fold())
        << archName(arch) << ": kernels diverged in drained state";
}

TEST_P(SchedulingEquivalence, MultiFlitKernelsBitIdentical)
{
    // Multi-flit packets exercise the wormhole locks, NoX aborts and
    // the decode registers — the state the quiescence contract must
    // cover honestly.
    const auto [arch, pattern] = GetParam();
    const NetworkStats a = runOnce(arch, pattern,
                                   SchedulingMode::AlwaysTick,
                                   0.08, 5);
    const NetworkStats b = runOnce(arch, pattern,
                                   SchedulingMode::ActivityDriven,
                                   0.08, 5);
    EXPECT_TRUE(identicalStats(a, b))
        << archName(arch) << ": multi-flit kernels diverged";
}

TEST_P(SchedulingEquivalence, EquivalenceModeSelfChecksClean)
{
    // The equivalence kernel asserts per cycle that retired
    // components are quiescent, and must reproduce always-tick stats.
    const auto [arch, pattern] = GetParam();
    const NetworkStats always = runOnce(arch, pattern,
                                        SchedulingMode::AlwaysTick);
    const NetworkStats checked =
        runOnce(arch, pattern, SchedulingMode::EquivalenceCheck);
    EXPECT_TRUE(identicalStats(always, checked))
        << archName(arch) << ": equivalence mode diverged";
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndPatterns, SchedulingEquivalence,
    ::testing::Values(
        Case{RouterArch::NonSpeculative, PatternKind::UniformRandom},
        Case{RouterArch::SpecFast, PatternKind::UniformRandom},
        Case{RouterArch::SpecAccurate, PatternKind::UniformRandom},
        Case{RouterArch::Nox, PatternKind::UniformRandom},
        Case{RouterArch::NonSpeculative, PatternKind::Transpose},
        Case{RouterArch::SpecFast, PatternKind::Transpose},
        Case{RouterArch::SpecAccurate, PatternKind::Transpose},
        Case{RouterArch::Nox, PatternKind::Transpose}),
    [](const ::testing::TestParamInfo<Case> &info) {
        // archName() values contain '-', which gtest names reject.
        std::string name = std::string(archName(info.param.arch)) +
                           "_" + patternName(info.param.pattern);
        std::erase_if(name, [](char c) {
            return c != '_' && !std::isalnum(
                                   static_cast<unsigned char>(c));
        });
        return name;
    });

NetworkStats
runOnceFaulty(RouterArch arch, SchedulingMode mode)
{
    FaultParams faults;
    faults.enabled = true;
    faults.bitflipRate = 0.002;
    faults.dropRate = 0.001;
    faults.creditLossRate = 0.001;
    faults.seed = 0xD15EA5E;
    auto net = buildNetwork(arch, PatternKind::UniformRandom, mode,
                            0.05, 3, faults);
    net->run(kWarmup + kMeasure);
    EXPECT_TRUE(net->drain(kDrainLimit))
        << net->lastDrainReport().summary();
    return net->stats();
}

class FaultDeterminism : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(FaultDeterminism, SameFaultSeedBitIdenticalAcrossKernels)
{
    // The fault schedule is keyed by event identity, not draw order,
    // so the same seed must yield bit-identical NetworkStats —
    // including every fault counter — whichever scheduling kernel
    // evaluates the mesh, and the equivalence kernel's per-cycle
    // quiescence asserts must stay clean while faults and recovery
    // (retries, watchdog resyncs) are in flight.
    const RouterArch arch = GetParam();
    const NetworkStats always =
        runOnceFaulty(arch, SchedulingMode::AlwaysTick);
    const NetworkStats repeat =
        runOnceFaulty(arch, SchedulingMode::AlwaysTick);
    const NetworkStats activity =
        runOnceFaulty(arch, SchedulingMode::ActivityDriven);
    const NetworkStats checked =
        runOnceFaulty(arch, SchedulingMode::EquivalenceCheck);

    EXPECT_GT(always.faults.faultsInjected, 0u);
    EXPECT_TRUE(identicalStats(always, repeat))
        << archName(arch) << ": faulty runs diverged across repeats";
    EXPECT_TRUE(identicalStats(always, activity))
        << archName(arch)
        << ": fault schedule diverged under activity scheduling";
    EXPECT_TRUE(identicalStats(always, checked))
        << archName(arch)
        << ": fault schedule diverged under equivalence checking";
}

NetworkStats
runOnceHardFaulty(RouterArch arch, SchedulingMode mode)
{
    FaultParams faults;
    faults.enabled = true;
    faults.hardLinkFaults = 3;
    faults.hardRouterFaults = 1;
    faults.hardFaultCycle = kWarmup + kMeasure / 2;
    faults.seed = 0xD15EA5E;
    auto net = buildNetwork(arch, PatternKind::UniformRandom, mode,
                            0.05, 3, faults);
    net->run(kWarmup + kMeasure);
    EXPECT_TRUE(net->drain(kDrainLimit))
        << net->lastDrainReport().summary();
    return net->stats();
}

TEST_P(FaultDeterminism, HardFaultScheduleBitIdenticalAcrossKernels)
{
    // Fail-stop kills are planned from the fault seed and applied at
    // a fixed cycle, so a mid-run degradation — dead router, dead
    // links, write-offs, table rebuild, purge — must replay bit-
    // identically under every scheduling kernel, and the equivalence
    // kernel's quiescence asserts must stay clean throughout.
    const RouterArch arch = GetParam();
    const NetworkStats always =
        runOnceHardFaulty(arch, SchedulingMode::AlwaysTick);
    const NetworkStats repeat =
        runOnceHardFaulty(arch, SchedulingMode::AlwaysTick);
    const NetworkStats activity =
        runOnceHardFaulty(arch, SchedulingMode::ActivityDriven);
    const NetworkStats checked =
        runOnceHardFaulty(arch, SchedulingMode::EquivalenceCheck);

    EXPECT_EQ(always.faults.hardLinkFaults, 3u);
    EXPECT_EQ(always.faults.hardRouterFaults, 1u);
    EXPECT_GE(always.faults.tableRebuilds, 1u);
    EXPECT_EQ(always.packetsEjected + always.faults.packetsLostHard,
              always.packetsInjected);
    EXPECT_TRUE(identicalStats(always, repeat))
        << archName(arch)
        << ": hard-fault runs diverged across repeats";
    EXPECT_TRUE(identicalStats(always, activity))
        << archName(arch)
        << ": hard-fault degradation diverged under activity "
           "scheduling";
    EXPECT_TRUE(identicalStats(always, checked))
        << archName(arch)
        << ": hard-fault degradation diverged under equivalence "
           "checking";
}

INSTANTIATE_TEST_SUITE_P(
    Arches, FaultDeterminism,
    ::testing::Values(RouterArch::NonSpeculative, RouterArch::SpecFast,
                      RouterArch::SpecAccurate, RouterArch::Nox),
    [](const ::testing::TestParamInfo<RouterArch> &info) {
        std::string n = archName(info.param);
        std::erase_if(n, [](char c) {
            return !std::isalnum(static_cast<unsigned char>(c));
        });
        return n;
    });

TEST(ArenaGrowthPath, CollisionSpillBitIdenticalAcrossKernels)
{
    // High single-flit NoX load drives collision chains past the
    // PartsVec inline capacity, so WireFlits spill to arena blocks
    // and the freelist grows mid-run. The recycled-allocation path
    // must be invisible to simulation results: stats stay
    // bit-identical across kernels, and nothing leaks.
    FlitArena &arena = FlitArena::instance();
    const FlitArenaStats before = arena.stats();

    const NetworkStats always =
        runOnce(RouterArch::Nox, PatternKind::UniformRandom,
                SchedulingMode::AlwaysTick, 0.30, 1);
    const FlitArenaStats after = arena.stats();
    EXPECT_GT(after.growths + after.reuses,
              before.growths + before.reuses)
        << "workload never spilled a PartsVec: not an arena test";
    EXPECT_EQ(after.live(), before.live())
        << "drained network left arena blocks live";

    const NetworkStats activity =
        runOnce(RouterArch::Nox, PatternKind::UniformRandom,
                SchedulingMode::ActivityDriven, 0.30, 1);
    EXPECT_TRUE(identicalStats(always, activity))
        << "kernels diverged on the arena-growth path";
}

TEST(ActivityKernel, IdleNetworkRetiresEverything)
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.schedulingMode = SchedulingMode::ActivityDriven;
    auto net = makeNetwork(params, RouterArch::Nox);

    // With no traffic, a few settle cycles retire the whole mesh.
    net->run(4);
    EXPECT_EQ(net->activeRouters(), 0);
    EXPECT_EQ(net->activeNics(), 0);

    // One packet re-arms only the touched corridor, and the network
    // goes fully idle again after it drains.
    net->injectPacket(0, 63, 1, net->now(), TrafficClass::Synthetic);
    EXPECT_GT(net->activeNics(), 0);
    EXPECT_TRUE(net->drain(200));
    net->run(4);
    EXPECT_EQ(net->activeRouters(), 0);
    EXPECT_EQ(net->activeNics(), 0);
}

TEST(ActivityKernel, GatedRoutersAccrueNoClockEnergy)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.schedulingMode = SchedulingMode::ActivityDriven;
    auto net = makeNetwork(params, RouterArch::Nox);

    net->run(100);
    // After the initial settle cycles no router is clocked.
    const std::uint64_t cycles = net->totalEnergyEvents().cycles;
    net->run(100);
    EXPECT_EQ(net->totalEnergyEvents().cycles, cycles);
}

} // namespace
} // namespace nox
