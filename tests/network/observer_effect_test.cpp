/**
 * @file
 * Observer-effect determinism: enabling the full observability stack
 * (flight-recorder tracing + periodic metrics sampling + latency
 * provenance + the self-profiler + run telemetry) must not perturb
 * simulation results. For every router architecture and both
 * scheduling kernels — fault-free, under recoverable soft faults,
 * and under fail-stop hard faults — a seeded run with observability
 * on produces bit-identical NetworkStats to the same run with it
 * off: every observer reads simulator state but never touches it,
 * its RNGs, or its statistics.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "obs/digest.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

constexpr Cycle kWarmup = 300;
constexpr Cycle kMeasure = 900;
constexpr Cycle kDrainLimit = 20000;
constexpr std::uint64_t kSeed = 0xF1683;

/** Fully enabled observability with no file exports (the exports are
 *  covered by the obs tests; here only the hot-path effect matters). */
ObsParams
fullObservability()
{
    ObsParams obs;
    obs.trace.enabled = true;
    obs.trace.capacity = 1u << 14;
    obs.trace.chromePath = "";
    obs.trace.flightPath = "";
    obs.metrics.enabled = true;
    obs.metrics.interval = 128;
    obs.metrics.jsonlPath = "";
    obs.metrics.heatmap = false;
    obs.prov.enabled = true;
    obs.prov.jsonlPath = "";
    obs.profile.enabled = true;
    obs.profile.jsonlPath = "";
    obs.telemetry.enabled = true;
    obs.telemetry.interval = 128;
    obs.telemetry.jsonlPath = "";
    obs.telemetry.progress = false;
    obs.digest.enabled = true;
    obs.digest.interval = 128;
    obs.digest.jsonlPath = "";
    return obs;
}

std::unique_ptr<Network>
buildNetwork(RouterArch arch, SchedulingMode mode, bool observed,
             const FaultParams &faults = {})
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.schedulingMode = mode;
    params.faults = faults;
    if (observed)
        params.obs = fullObservability();
    auto net = makeNetwork(params, arch);

    static const Mesh mesh(8, 8);
    static const DestinationPattern pat(PatternKind::UniformRandom,
                                        mesh, 0.2);
    Rng seeder(kSeed);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pat, 0.08, 5, seeder.next()));
    }
    net->setMeasurementWindow(kWarmup, kWarmup + kMeasure);
    return net;
}

struct Case
{
    RouterArch arch;
    SchedulingMode mode;
};

class ObserverEffect : public ::testing::TestWithParam<Case>
{
};

TEST_P(ObserverEffect, TracingAndMetricsDoNotPerturbStats)
{
    const auto [arch, mode] = GetParam();

    auto plain = buildNetwork(arch, mode, false);
    plain->run(kWarmup + kMeasure);
    plain->setSourcesEnabled(false);
    ASSERT_TRUE(plain->drain(kDrainLimit));

    auto observed = buildNetwork(arch, mode, true);
    observed->run(kWarmup + kMeasure);
    observed->setSourcesEnabled(false);
    ASSERT_TRUE(observed->drain(kDrainLimit));
    observed->finishObservability();

    EXPECT_TRUE(identicalStats(plain->stats(), observed->stats()))
        << archName(arch) << "/" << schedulingModeName(mode)
        << ": observability perturbed the simulation";
    EXPECT_EQ(plain->now(), observed->now());

    // The run was genuinely observed, not silently disabled.
    ASSERT_NE(observed->tracer(), nullptr);
    EXPECT_GT(observed->tracer()->totalRecorded(), 0u);
    EXPECT_FALSE(observed->tracer()->flightDumped());
    ASSERT_NE(observed->metrics(), nullptr);
    EXPECT_GT(observed->metrics()->numWindows(), 0u);
    EXPECT_EQ(observed->metrics()->totalEjected(),
              observed->stats().flitsEjected);
    ASSERT_NE(observed->provenance(), nullptr);
    EXPECT_EQ(observed->provenance()->conservationViolations(), 0u);
    EXPECT_EQ(observed->provenance()->openSpans(), 0u);
    EXPECT_EQ(observed->provenance()->total().packets,
              observed->stats().packetsMeasuredDone);
    ASSERT_NE(observed->profiler(), nullptr);
    EXPECT_EQ(observed->profiler()->steps(), observed->now());
    EXPECT_GT(observed->profiler()->phaseNsSum(), 0u);
    EXPECT_LE(observed->profiler()->phaseNsSum(),
              observed->profiler()->totalNs());
    ASSERT_NE(observed->telemetry(), nullptr);
    EXPECT_GT(observed->telemetry()->beats(), 0u);
    ASSERT_NE(observed->digest(), nullptr);
    EXPECT_GT(observed->digest()->strideCount(), 0u);
    EXPECT_EQ(observed->digest()->lastDigestCycle(),
              static_cast<std::int64_t>(observed->now()) -
                  static_cast<std::int64_t>(observed->now() % 128));
    EXPECT_EQ(plain->tracer(), nullptr);
    EXPECT_EQ(plain->metrics(), nullptr);
    EXPECT_EQ(plain->provenance(), nullptr);
    EXPECT_EQ(plain->profiler(), nullptr);
    EXPECT_EQ(plain->telemetry(), nullptr);
    EXPECT_EQ(plain->digest(), nullptr);

    // Full-trajectory equivalence, not just end-state: the digest
    // strides the observed run recorded must match digests of the
    // plain run's state recomputed at the same cycles — proving the
    // ledger measures the simulation, not the observers.
    // (Cheap here because both runs are complete: only the final
    // states exist, so compare the final-cycle capture.)
    const DigestStride plainNow = plain->computeDigestStride();
    const DigestStride observedNow = observed->computeDigestStride();
    EXPECT_EQ(plainNow, observedNow)
        << "divergent: "
        << ::testing::PrintToString(
               divergentComponents(plainNow, observedNow));
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndKernels, ObserverEffect,
    ::testing::Values(
        Case{RouterArch::NonSpeculative, SchedulingMode::AlwaysTick},
        Case{RouterArch::SpecFast, SchedulingMode::AlwaysTick},
        Case{RouterArch::SpecAccurate, SchedulingMode::AlwaysTick},
        Case{RouterArch::Nox, SchedulingMode::AlwaysTick},
        Case{RouterArch::NonSpeculative,
             SchedulingMode::ActivityDriven},
        Case{RouterArch::SpecFast, SchedulingMode::ActivityDriven},
        Case{RouterArch::SpecAccurate,
             SchedulingMode::ActivityDriven},
        Case{RouterArch::Nox, SchedulingMode::ActivityDriven}),
    [](const ::testing::TestParamInfo<Case> &info) {
        std::string name =
            std::string(archName(info.param.arch)) + "_" +
            schedulingModeName(info.param.mode);
        std::erase_if(name, [](char c) {
            return c != '_' &&
                   !std::isalnum(static_cast<unsigned char>(c));
        });
        return name;
    });

TEST_P(ObserverEffect, HardFaultDegradationUnobservedByTracing)
{
    // A mid-run fail-stop kill — write-offs, purge, table rebuild —
    // is heavily instrumented (fault trace events, flight-recorder
    // hooks). None of it may feed back into the simulation: stats
    // with the full observability stack on must stay bit-identical.
    const auto [arch, mode] = GetParam();
    FaultParams faults;
    faults.enabled = true;
    faults.hardLinkFaults = 2;
    faults.hardRouterFaults = 1;
    faults.hardFaultCycle = kWarmup + kMeasure / 2;
    faults.seed = 0xC0FFEE;

    auto plain = buildNetwork(arch, mode, false, faults);
    plain->run(kWarmup + kMeasure);
    ASSERT_TRUE(plain->drain(kDrainLimit))
        << plain->lastDrainReport().summary();

    auto observed = buildNetwork(arch, mode, true, faults);
    observed->run(kWarmup + kMeasure);
    ASSERT_TRUE(observed->drain(kDrainLimit))
        << observed->lastDrainReport().summary();
    observed->finishObservability();

    EXPECT_GE(plain->stats().faults.tableRebuilds, 1u);
    EXPECT_TRUE(identicalStats(plain->stats(), observed->stats()))
        << archName(arch) << "/" << schedulingModeName(mode)
        << ": observability perturbed the hard-fault degradation";
    EXPECT_EQ(plain->now(), observed->now());
    EXPECT_GT(observed->tracer()->totalRecorded(), 0u);
    // Even with mid-run write-offs and reroutes, every delivered
    // packet's latency still decomposes exactly and no span leaks.
    ASSERT_NE(observed->provenance(), nullptr);
    EXPECT_EQ(observed->provenance()->conservationViolations(), 0u);
    EXPECT_EQ(observed->provenance()->openSpans(), 0u);
}

TEST_P(ObserverEffect, SoftFaultRecoveryUnobserved)
{
    // Recoverable link faults (bit flips, drops, credit losses with
    // CRC/retransmission protection on) exercise the retry machinery
    // every observer taps — fault trace events, telemetry's
    // fault/retry counters, the profiler's LinkRetry phase. All of it
    // must stay strictly read-only.
    const auto [arch, mode] = GetParam();
    FaultParams faults;
    faults.enabled = true;
    faults.bitflipRate = 2e-3;
    faults.dropRate = 1e-3;
    faults.creditLossRate = 5e-4;
    faults.seed = 0x50F7;
    faults.protect = true;

    auto plain = buildNetwork(arch, mode, false, faults);
    plain->run(kWarmup + kMeasure);
    ASSERT_TRUE(plain->drain(kDrainLimit))
        << plain->lastDrainReport().summary();

    auto observed = buildNetwork(arch, mode, true, faults);
    observed->run(kWarmup + kMeasure);
    ASSERT_TRUE(observed->drain(kDrainLimit))
        << observed->lastDrainReport().summary();
    observed->finishObservability();

    EXPECT_GT(plain->stats().faults.faultsInjected, 0u);
    EXPECT_TRUE(identicalStats(plain->stats(), observed->stats()))
        << archName(arch) << "/" << schedulingModeName(mode)
        << ": observability perturbed soft-fault recovery";
    EXPECT_EQ(plain->now(), observed->now());
    ASSERT_NE(observed->profiler(), nullptr);
    EXPECT_EQ(observed->profiler()->steps(), observed->now());
    ASSERT_NE(observed->telemetry(), nullptr);
    EXPECT_GT(observed->telemetry()->beats(), 0u);
    // The last beat fired at the final interval boundary, so its
    // counters are a prefix of (at most equal to) the final stats.
    EXPECT_LE(observed->telemetry()
                  ->lastRecord()
                  .sample.faultsInjected,
              observed->stats().faults.faultsInjected);
}

TEST(ObserverEffect, SchedulerEventsOnlyUnderActivityKernel)
{
    // The wake/retire taxonomy is a property of the activity kernel;
    // the always-tick kernel must emit none of it.
    auto count_sched = [](const Network &net) {
        std::uint64_t sched = 0;
        for (const TraceEvent &e : net.tracer()->snapshot()) {
            if (e.kind == TraceEventKind::SchedWake ||
                e.kind == TraceEventKind::SchedRetire)
                ++sched;
        }
        return sched;
    };

    auto tick = buildNetwork(RouterArch::Nox,
                             SchedulingMode::AlwaysTick, true);
    tick->run(200);
    EXPECT_EQ(count_sched(*tick), 0u);

    auto activity = buildNetwork(RouterArch::Nox,
                                 SchedulingMode::ActivityDriven, true);
    activity->run(200);
    EXPECT_GT(count_sched(*activity), 0u);
}

} // namespace
} // namespace nox
