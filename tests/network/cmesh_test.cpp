/**
 * @file
 * Concentrated-mesh tests (the paper's §8 future-work topology):
 * 4 terminals per radix-8 router. Covers topology arithmetic, CMesh
 * wiring, delivery/conservation on every architecture, and
 * router-local traffic between terminals of the same router.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"

namespace nox {
namespace {

TEST(CMeshTopology, NodeRouterArithmetic)
{
    const Mesh m(4, 4, 4); // 16 routers x 4 terminals = 64 nodes
    EXPECT_EQ(m.numRouters(), 16);
    EXPECT_EQ(m.numNodes(), 64);
    EXPECT_EQ(m.radix(), 8);
    EXPECT_EQ(m.routerOf(0), 0);
    EXPECT_EQ(m.routerOf(3), 0);
    EXPECT_EQ(m.routerOf(4), 1);
    EXPECT_EQ(m.routerOf(63), 15);
    EXPECT_EQ(m.localPortOf(0), kPortLocal);
    EXPECT_EQ(m.localPortOf(3), kPortLocal + 3);
    EXPECT_EQ(m.terminalAt(1, kPortLocal + 2), 6);
}

TEST(CMeshTopology, HopDistanceUsesRouters)
{
    const Mesh m(4, 4, 4);
    // Terminals of the same router are zero router-hops apart.
    EXPECT_EQ(m.hopDistance(0, 3), 0);
    // Terminal 0 (router 0) to terminal 63 (router 15): 3+3 hops.
    EXPECT_EQ(m.hopDistance(0, 63), 6);
}

TEST(CMeshTopology, ConcentrationOneUnchanged)
{
    const Mesh m(8, 8);
    EXPECT_EQ(m.concentration(), 1);
    EXPECT_EQ(m.numNodes(), 64);
    EXPECT_EQ(m.numRouters(), 64);
    EXPECT_EQ(m.radix(), 5);
    EXPECT_EQ(m.routerOf(17), 17);
    EXPECT_EQ(m.localPortOf(17), kPortLocal);
}

TEST(CMeshRouting, RoutesToCorrectLocalPort)
{
    const Mesh m(4, 4, 4);
    // Node 6 = router 1, terminal 2: from router 1, route is the
    // terminal's local port.
    EXPECT_EQ(dorRoute(m, 1, 6), kPortLocal + 2);
    // From router 0, first go East toward router 1.
    EXPECT_EQ(dorRoute(m, 0, 6), kPortEast);
}

NetworkParams
cmeshParams()
{
    NetworkParams p;
    p.width = 4;
    p.height = 4;
    p.concentration = 4;
    return p;
}

class CMeshAllArchs : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(CMeshAllArchs, CrossNetworkDelivery)
{
    auto net = makeNetwork(cmeshParams(), GetParam());
    EXPECT_EQ(net->numNodes(), 64);
    EXPECT_EQ(net->numRouters(), 16);
    EXPECT_EQ(net->router(0).numPorts(), 8);

    net->injectPacket(0, 63, 1, net->now(), TrafficClass::Synthetic);
    net->injectPacket(63, 0, 9, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().packetsEjected, 2u);
    EXPECT_EQ(net->stats().flitsEjected, 10u);
}

TEST_P(CMeshAllArchs, RouterLocalTraffic)
{
    // Terminals sharing one router talk through its local ports only.
    auto net = makeNetwork(cmeshParams(), GetParam());
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(100));
    EXPECT_EQ(net->stats().packetsEjected, 1u);
    // No inter-router link was used.
    EXPECT_EQ(net->totalEnergyEvents().linkFlits, 0u);
}

TEST_P(CMeshAllArchs, RandomTrafficConservation)
{
    auto net = makeNetwork(cmeshParams(), GetParam());
    static const Mesh mesh(4, 4, 4);
    static const DestinationPattern pattern(
        PatternKind::UniformRandom, mesh);
    Rng seeder(11);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pattern, 0.04, 1, seeder.next()));
    }
    net->run(2500);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(50000));
    EXPECT_GT(net->stats().packetsInjected, 1000u);
    EXPECT_EQ(net->stats().packetsEjected,
              net->stats().packetsInjected);
    EXPECT_EQ(net->stats().flitsEjected, net->stats().flitsInjected);
}

INSTANTIATE_TEST_SUITE_P(
    EveryArchitecture, CMeshAllArchs, ::testing::ValuesIn(kAllArchs),
    [](const ::testing::TestParamInfo<RouterArch> &info) {
        switch (info.param) {
          case RouterArch::NonSpeculative: return "NonSpec";
          case RouterArch::SpecFast: return "SpecFast";
          case RouterArch::SpecAccurate: return "SpecAccurate";
          case RouterArch::Nox: return "NoX";
        }
        return "Unknown";
    });

TEST(CMeshNox, WideCollisionsResolveProductively)
{
    // Seven single-flit packets from seven different input ports of
    // one radix-8 router, all to the same terminal: the XOR switch
    // must deliver all of them with zero wasted cycles — the higher-
    // radix payoff §8 anticipates.
    auto net = makeNetwork(cmeshParams(), RouterArch::Nox);
    // Router 5 hosts terminals 20..23; fill from its 3 sibling
    // terminals and 4 mesh neighbours' terminals.
    const NodeId dest = 20;
    const std::vector<NodeId> sources{21, 22, 23, 4, 36, 16, 24};
    for (NodeId s : sources)
        net->injectPacket(s, dest, 1, net->now(),
                          TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(300));
    EXPECT_EQ(net->stats().packetsEjected, sources.size());
    const EnergyEvents e = net->totalEnergyEvents();
    EXPECT_EQ(e.linkWastedCycles + e.localLinkWasted, 0u);
    EXPECT_GT(e.decodeOps + e.decodeLatches, 0u);
}

} // namespace
} // namespace nox
