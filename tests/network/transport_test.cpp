/**
 * @file
 * End-to-end exactly-once delivery: the NIC transport layer under
 * targeted kills, heals and soft-fault storms.
 *
 * The guarantee under test upgrades the hard-fault write-off story:
 * with `e2e_transport` on, a packet caught on dying hardware is no
 * longer lost — the source retransmits it after its E2E timeout and
 * the destination suppresses any duplicate attempt, so the delivery
 * identity becomes `ejected + deliveryFailures == injected` with
 * `packetsLostHard == 0`, and when every fault heals within the
 * retry budget, `deliveryFailures == 0` too. All of it is a pure
 * function of the seeds, so every scheduling kernel produces
 * bit-identical NetworkStats.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

constexpr Cycle kRun = 1200;
constexpr Cycle kDrainLimit = 500000;
constexpr std::uint64_t kSeed = 0xE2E5EED;

/** Transport on, with a short timeout so retransmissions land inside
 *  the test horizon instead of deep in the drain. */
FaultParams
transportFaults(Cycle timeout = 300)
{
    FaultParams f;
    f.enabled = true;
    f.e2eTransport = true;
    f.e2eTimeout = timeout;
    return f;
}

std::unique_ptr<Network>
buildNetwork(RouterArch arch, SchedulingMode mode,
             const FaultParams &faults, double load = 0.08,
             int packet_flits = 3, int vc_count = 1)
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.schedulingMode = mode;
    params.faults = faults;
    params.router.vcCount = vc_count;
    auto net = makeNetwork(params, arch);

    static const Mesh mesh(8, 8);
    static const DestinationPattern pat(PatternKind::UniformRandom,
                                        mesh, 0.2);
    Rng seeder(kSeed);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pat, load, packet_flits, seeder.next()));
    }
    return net;
}

/** Run the horizon, stop the sources, drain, and enforce the
 *  transport conservation identity; returns the final stats. */
NetworkStats
finishChecked(Network &net)
{
    if (net.now() < kRun)
        net.run(kRun - net.now());
    net.setSourcesEnabled(false);
    EXPECT_TRUE(net.drain(kDrainLimit))
        << net.lastDrainReport().summary();

    const NetworkStats &s = net.stats();
    // Exactly-once accounting: every accepted packet is delivered or
    // explicitly abandoned after retry exhaustion — and under the
    // transport nothing is ever silently written off.
    EXPECT_EQ(s.packetsEjected + s.faults.deliveryFailures,
              s.packetsInjected)
        << "transport conservation identity violated";
    EXPECT_EQ(s.faults.packetsLostHard, 0u)
        << "hard write-off leaked past the transport";
    const DrainReport &rep = net.lastDrainReport();
    EXPECT_EQ(rep.stalledPackets, 0u);
    EXPECT_EQ(rep.undeliverablePackets, s.faults.deliveryFailures);
    return s;
}

TEST(E2eTransport, LinkKillAndHealDeliversEverything)
{
    // Kill one mesh link mid-run and heal it 300 cycles later: the
    // casualties retransmit and land, so the run ends with zero
    // abandoned packets despite real in-flight losses.
    auto net = buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick,
                            transportFaults(), /*load=*/0.15,
                            /*packet_flits=*/5);
    ASSERT_NE(net->faultInjector(), nullptr);
    net->faultInjector()->scheduleOneShot(FaultKind::LinkDead,
                                          /*cycle=*/400,
                                          /*router=*/27, kPortEast);
    net->faultInjector()->scheduleOneShot(FaultKind::LinkHeal,
                                          /*cycle=*/700,
                                          /*router=*/27, kPortEast);
    net->run(500);
    EXPECT_TRUE(net->faultMap().linkDead(27, kPortEast));
    EXPECT_TRUE(net->faultMap().linkDead(28, kPortWest));

    const NetworkStats s = finishChecked(*net);
    EXPECT_EQ(s.faults.hardLinkFaults, 1u);
    EXPECT_EQ(s.faults.linkHeals, 1u);
    EXPECT_FALSE(net->faultMap().linkDead(27, kPortEast));
    EXPECT_GT(s.faults.flitsLostHard, 0u)
        << "kill at load 0.15 caught no in-flight flits; the "
           "retransmission path went untested";
    EXPECT_GT(s.faults.e2eRetransmits, 0u);
    EXPECT_EQ(s.faults.deliveryFailures, 0u)
        << "every fault healed inside the retry budget, yet packets "
           "were abandoned";
    EXPECT_GE(s.faults.tableRebuilds, 2u); // kill + heal
}

TEST(E2eTransport, RouterKillAndHealDeliversEverything)
{
    // A whole router (and its terminal) dies for 500 cycles. E2E
    // resends toward the dead terminal fail-and-rearm, burning
    // retries; after the heal they land. Nothing is abandoned and
    // the healed table routes every pair again.
    auto net = buildNetwork(RouterArch::Nox,
                            SchedulingMode::ActivityDriven,
                            transportFaults(), /*load=*/0.1);
    net->faultInjector()->scheduleOneShot(FaultKind::RouterDead,
                                          /*cycle=*/400,
                                          /*router=*/27, /*port=*/-1);
    net->faultInjector()->scheduleOneShot(FaultKind::RouterHeal,
                                          /*cycle=*/900,
                                          /*router=*/27, /*port=*/-1);
    net->run(500);
    EXPECT_TRUE(net->faultMap().routerDead(27));
    EXPECT_FALSE(net->routingTable().reachable(0, 27));

    const NetworkStats s = finishChecked(*net);
    EXPECT_EQ(s.faults.hardRouterFaults, 1u);
    EXPECT_EQ(s.faults.routerHeals, 1u);
    EXPECT_EQ(s.faults.deliveryFailures, 0u);
    EXPECT_GT(s.faults.e2eRetransmits, 0u);
    // The healed mesh is whole again: full reachability, no dead
    // entities left behind.
    EXPECT_EQ(net->faultMap().deadRouterCount(), 0);
    EXPECT_EQ(net->faultMap().explicitDeadLinkCount(), 0);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        EXPECT_TRUE(net->routingTable().reachable(n, 27));
        EXPECT_TRUE(net->routingTable().reachable(27, n));
    }
}

TEST(E2eTransport, SoftFaultStormSuppressesDuplicates)
{
    // An aggressive timeout under lossy links forces spurious
    // retransmissions of packets that were merely slow: their extra
    // copies must be counted and suppressed at the door, never
    // double-delivered (the sink asserts payload integrity; nettest's
    // DupChecker covers flow-level duplicates at soak scale).
    FaultParams f = transportFaults(/*timeout=*/25);
    f.e2eRetryLimit = 40;
    f.dropRate = 0.001;
    f.bitflipRate = 0.001;
    f.seed = 0xD15EA5E;
    auto net = buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick, f);
    const NetworkStats s = finishChecked(*net);
    EXPECT_GT(s.faults.e2eRetransmits, 0u);
    EXPECT_GT(s.faults.dupSuppressed, 0u)
        << "a 60-cycle timeout produced no duplicate attempts";
    EXPECT_GT(s.packetsEjected, 0u);
}

TEST(E2eTransport, ChurnStatsBitIdenticalAcrossKernels)
{
    // The transport sweep, the churn schedule and the heal replay are
    // all clocked off committed state, so the three scheduling
    // kernels must agree bit-for-bit even under kill+heal churn plus
    // soft faults.
    FaultParams f = transportFaults();
    f.churnWaves = 2;
    f.churnStart = 300;
    f.churnPeriod = 400;
    f.churnHealAfter = 200;
    f.dropRate = 0.0005;
    f.seed = 0xD15EA5E;

    auto reference = buildNetwork(RouterArch::Nox,
                                  SchedulingMode::AlwaysTick, f);
    const NetworkStats ref = finishChecked(*reference);
    EXPECT_GT(ref.faults.linkHeals + ref.faults.routerHeals, 0u);

    for (const SchedulingMode mode :
         {SchedulingMode::ActivityDriven,
          SchedulingMode::EquivalenceCheck}) {
        auto net = buildNetwork(RouterArch::Nox, mode, f);
        const NetworkStats s = finishChecked(*net);
        EXPECT_TRUE(identicalStats(ref, s))
            << schedulingModeName(mode)
            << " diverged from alwaystick under churn";
    }
}

TEST(E2eTransport, OffByDefaultKeepsHardWriteOffSemantics)
{
    // Without the transport the original contract still holds: a
    // mid-run router kill writes off its in-flight casualties,
    // explicitly counted — proving the new layer is strictly opt-in.
    // (A router kill, not a link kill: a single credit-stalled link
    // can be empty at the kill instant, but a loaded router's
    // buffers cannot.)
    FaultParams f;
    f.enabled = true;
    auto net = buildNetwork(RouterArch::Nox,
                            SchedulingMode::AlwaysTick, f,
                            /*load=*/0.22, /*packet_flits=*/5);
    net->faultInjector()->scheduleOneShot(FaultKind::RouterDead,
                                          /*cycle=*/400,
                                          /*router=*/27, /*port=*/-1);
    net->run(kRun);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(kDrainLimit))
        << net->lastDrainReport().summary();
    const NetworkStats &s = net->stats();
    EXPECT_EQ(net->transport(), nullptr);
    EXPECT_EQ(s.faults.hardRouterFaults, 1u);
    EXPECT_GT(s.faults.packetsLostHard, 0u);
    EXPECT_EQ(s.packetsEjected + s.faults.packetsLostHard,
              s.packetsInjected);
    EXPECT_EQ(s.faults.e2eRetransmits, 0u);
    EXPECT_EQ(s.faults.dupSuppressed, 0u);
}

} // namespace
} // namespace nox
