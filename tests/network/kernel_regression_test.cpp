/**
 * @file
 * Regression tests for two cycle-loop bugs:
 *
 *  - drain() used to keep ticking enabled traffic sources, so an
 *    open-loop run could never reach zero packets in flight; it must
 *    suspend sources for the duration and restore the prior flag.
 *  - stats().maxSourceQueueFlits was only sampled inside
 *    Network::injectPacket(), missing queue growth from packets
 *    enqueued directly on a NIC; the cycle loop must sample it too.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "noc/flit.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

std::unique_ptr<Network>
loadedNetwork(double load, SchedulingMode mode)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.schedulingMode = mode;
    auto net = makeNetwork(params, RouterArch::Nox);

    static const Mesh mesh(4, 4);
    static const DestinationPattern uniform(PatternKind::UniformRandom,
                                            mesh);
    Rng seeder(42);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, uniform, load, 1, seeder.next()));
    }
    return net;
}

TEST(DrainRegression, DrainsUnderLoadWithSourcesEnabled)
{
    // High enough load that in-flight packets never momentarily hit
    // zero if sources keep injecting during the drain.
    auto net = loadedNetwork(0.4, SchedulingMode::AlwaysTick);
    net->run(300);
    ASSERT_GT(net->packetsInFlight(), 0u);

    EXPECT_TRUE(net->drain(5000));
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(DrainRegression, RestoresEnabledFlagAfterDrain)
{
    auto net = loadedNetwork(0.4, SchedulingMode::AlwaysTick);
    net->run(300);
    ASSERT_TRUE(net->drain(5000));

    // Sources were enabled going in, so they resume afterwards.
    const std::uint64_t injected = net->stats().packetsInjected;
    net->run(300);
    EXPECT_GT(net->stats().packetsInjected, injected);
}

TEST(DrainRegression, RestoresDisabledFlagAfterDrain)
{
    auto net = loadedNetwork(0.4, SchedulingMode::AlwaysTick);
    net->run(300);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(5000));

    // Sources were already off; drain must not switch them back on.
    const std::uint64_t injected = net->stats().packetsInjected;
    net->run(300);
    EXPECT_EQ(net->stats().packetsInjected, injected);
}

/** A @p num_flits packet built the way Network::injectPacket does. */
std::vector<FlitDesc>
makePacket(PacketId id, NodeId src, NodeId dst, int num_flits)
{
    std::vector<FlitDesc> flits;
    for (int s = 0; s < num_flits; ++s) {
        FlitDesc d;
        d.uid = flitUid(id, static_cast<std::uint32_t>(s));
        d.packet = id;
        d.seq = static_cast<std::uint32_t>(s);
        d.packetSize = static_cast<std::uint32_t>(num_flits);
        d.src = src;
        d.dest = dst;
        d.payload = expectedPayload(id, static_cast<std::uint32_t>(s));
        flits.push_back(d);
    }
    return flits;
}

class QueuePeakSampling
    : public ::testing::TestWithParam<SchedulingMode>
{
};

TEST_P(QueuePeakSampling, CycleLoopCapturesStalledQueue)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.schedulingMode = GetParam();
    auto net = makeNetwork(params, RouterArch::Nox);

    // Enqueue a burst directly on the NIC, bypassing injectPacket()
    // and therefore its sampling; only the cycle loop can see this
    // backlog. The queue drains one flit per cycle at best.
    constexpr int kBurst = 12;
    for (int i = 0; i < kBurst; ++i) {
        net->nic(0).enqueuePacket(
            makePacket(static_cast<PacketId>(1000 + i), 0, 5, 1));
    }
    ASSERT_EQ(net->stats().maxSourceQueueFlits, 0u)
        << "direct enqueue must not be sampled outside the cycle loop";

    // First cycle: one flit injects, the loop samples the remainder.
    net->step();
    EXPECT_EQ(net->stats().maxSourceQueueFlits, kBurst - 1);

    // Later cycles only ever see a shorter queue; the peak sticks.
    net->run(30);
    EXPECT_EQ(net->stats().maxSourceQueueFlits, kBurst - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Modes, QueuePeakSampling,
    ::testing::Values(SchedulingMode::AlwaysTick,
                      SchedulingMode::ActivityDriven,
                      SchedulingMode::EquivalenceCheck),
    [](const ::testing::TestParamInfo<SchedulingMode> &info) {
        return std::string(schedulingModeName(info.param));
    });

} // namespace
} // namespace nox
