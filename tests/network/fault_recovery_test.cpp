/**
 * @file
 * Link-fault recovery at network scope.
 *
 * Targeted one-shot faults verify each defence in isolation — CRC
 * detection + nack-driven retransmission for bit flips, retry-timeout
 * retransmission for drops, watchdog resync for lost credits — and
 * rate-driven sweeps verify the composition: with recovery on, every
 * packet is delivered exactly once with an intact payload under all
 * four router architectures (plus the VC configuration), under the
 * self-checking equivalence scheduling kernel. With recovery off, the
 * fabric is raw: corruption must be *accounted* (decode mismatches and
 * corrupted-delivery escapes cover every upset) and stranded packets
 * must be *diagnosable* via the structured drain report.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace {

constexpr RouterArch kAllArchs[] = {
    RouterArch::NonSpeculative,
    RouterArch::SpecFast,
    RouterArch::SpecAccurate,
    RouterArch::Nox,
};

std::unique_ptr<Network>
buildFaultNet(RouterArch arch, const FaultParams &faults,
              int vc_count = 1,
              SchedulingMode mode = SchedulingMode::AlwaysTick)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.router.vcCount = vc_count;
    params.schedulingMode = mode;
    params.faults = faults;
    return makeNetwork(params, arch);
}

FaultParams
oneShotOnly()
{
    FaultParams p;
    p.enabled = true; // injector built, but no rate-driven faults
    return p;
}

/** Drive random traffic from every node (both traffic classes, so VC
 *  configurations exercise both lanes). */
void
driveTraffic(Network &net, Cycle cycles, double rate,
             std::uint64_t seed)
{
    Rng rng(seed);
    for (Cycle t = 0; t < cycles; ++t) {
        for (NodeId s = 0; s < net.numNodes(); ++s) {
            if (!rng.nextBernoulli(rate))
                continue;
            NodeId d = s;
            while (d == s) {
                d = static_cast<NodeId>(rng.nextBounded(
                    static_cast<std::uint64_t>(net.numNodes())));
            }
            const int flits =
                rng.nextBernoulli(0.3)
                    ? 3 + static_cast<int>(rng.nextBounded(4))
                    : 1;
            const TrafficClass cls = rng.nextBernoulli(0.5)
                                         ? TrafficClass::Reply
                                         : TrafficClass::Synthetic;
            net.injectPacket(s, d, flits, net.now(), cls);
        }
        net.step();
    }
}

class TargetedFault : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(TargetedFault, BitflipIsCaughtByCrcAndRetransmitted)
{
    auto net = buildFaultNet(GetParam(), oneShotOnly());
    // Packet 0 -> 3 crosses router 1's west input (DOR, X first).
    net->faultInjector()->scheduleOneShot(FaultKind::BitFlip, 0,
                                          /*router=*/1, kPortWest);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(500));

    const FaultStats &f = net->stats().faults;
    EXPECT_EQ(net->faultInjector()->pendingOneShots(), 0u);
    EXPECT_EQ(f.bitflipsInjected, 1u);
    EXPECT_GE(f.faultsDetected, 1u); // CRC rejected the corrupt flit
    EXPECT_GE(f.retransmissions, 1u);
    EXPECT_EQ(f.corruptedEscapes, 0u);
    EXPECT_EQ(net->stats().packetsEjected, 1u);
    EXPECT_EQ(net->stats().flitsEjected, 1u);
}

TEST_P(TargetedFault, DropIsDetectedByRetryTimeout)
{
    auto net = buildFaultNet(GetParam(), oneShotOnly());
    net->faultInjector()->scheduleOneShot(FaultKind::Drop, 0,
                                          /*router=*/1, kPortWest);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(500));

    const FaultStats &f = net->stats().faults;
    EXPECT_EQ(f.dropsInjected, 1u);
    EXPECT_GE(f.faultsDetected, 1u); // ack timeout declared the loss
    EXPECT_GE(f.retransmissions, 1u);
    EXPECT_EQ(net->stats().packetsEjected, 1u);
}

TEST_P(TargetedFault, LostCreditIsRestoredByWatchdog)
{
    auto net = buildFaultNet(GetParam(), oneShotOnly());
    // The credit returning to router 0's east output vanishes.
    net->faultInjector()->scheduleOneShot(FaultKind::CreditLoss, 0,
                                          /*router=*/0, kPortEast);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().faults.creditsLostInjected, 1u);

    // Run past the watchdog period: the audit restores the credit and
    // the mesh returns to a fully quiescent state.
    net->run(2 * net->faultInjector()->params().watchdogPeriod);
    const FaultStats &f = net->stats().faults;
    EXPECT_GE(f.creditResyncs, 1u);
    EXPECT_GE(f.faultsDetected, 1u);
    for (NodeId r = 0; r < net->numRouters(); ++r)
        EXPECT_TRUE(net->router(r).quiescent()) << "router " << r;

    // The restored link keeps working at full capacity.
    net->injectPacket(0, 3, 4, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().packetsEjected, 2u);
}

INSTANTIATE_TEST_SUITE_P(Arches, TargetedFault,
                         ::testing::ValuesIn(kAllArchs),
                         [](const auto &info) {
                             std::string n = archName(info.param);
                             std::erase(n, '-');
                             return n;
                         });

struct RecoveryCase
{
    RouterArch arch;
    int vcCount;
};

class RecoverySweep : public ::testing::TestWithParam<RecoveryCase>
{
};

TEST_P(RecoverySweep, ExactlyOnceDeliveryUnderRateFaults)
{
    const RecoveryCase &c = GetParam();
    FaultParams faults;
    faults.enabled = true;
    faults.bitflipRate = 0.01;
    faults.dropRate = 0.005;
    faults.creditLossRate = 0.005;

    // Equivalence scheduling self-checks, per cycle, that every
    // component retired from the active set is genuinely quiescent —
    // so this sweep also proves the link layer's quiescence contracts
    // (pending retries, lost credits) hold under fault load.
    auto net = buildFaultNet(c.arch, faults, c.vcCount,
                             SchedulingMode::EquivalenceCheck);
    driveTraffic(*net, 1500, 0.05, 0xFA117 + c.vcCount);
    ASSERT_TRUE(net->drain(200000)) << net->lastDrainReport().summary();

    const NetworkStats &s = net->stats();
    EXPECT_GT(s.faults.faultsInjected, 50u);
    EXPECT_EQ(s.packetsEjected, s.packetsInjected);
    EXPECT_EQ(s.flitsEjected, s.flitsInjected);
    EXPECT_EQ(s.faults.corruptedEscapes, 0u);
    // Every bit flip and drop forces a retransmission.
    EXPECT_GE(s.faults.retransmissions,
              s.faults.bitflipsInjected + s.faults.dropsInjected);
    if (s.faults.creditsLostInjected > 0) {
        EXPECT_GE(s.faults.creditResyncs, 1u);
    }

    // A successful drain leaves a clean report behind.
    const DrainReport &report = net->lastDrainReport();
    EXPECT_TRUE(report.drained);
    EXPECT_EQ(report.packetsInFlight, 0u);
    EXPECT_TRUE(report.busyRouters.empty());
    EXPECT_TRUE(report.partialPackets.empty());
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndVc, RecoverySweep,
    ::testing::Values(RecoveryCase{RouterArch::NonSpeculative, 1},
                      RecoveryCase{RouterArch::SpecFast, 1},
                      RecoveryCase{RouterArch::SpecAccurate, 1},
                      RecoveryCase{RouterArch::Nox, 1},
                      RecoveryCase{RouterArch::NonSpeculative, 2}),
    [](const auto &info) {
        std::string n = archName(info.param.arch);
        std::erase(n, '-');
        if (info.param.vcCount > 1)
            n += "_vc" + std::to_string(info.param.vcCount);
        return n;
    });

class RawFabric : public ::testing::TestWithParam<RouterArch>
{
};

TEST_P(RawFabric, BitflipsAreFullyAccountedWithRecoveryOff)
{
    // Recovery off: corruption rides to completion. Delivery still
    // conserves packets (payload faults never strand a worm), and the
    // integrity layers must account for every upset — each flip shows
    // up as a decode mismatch and/or a corrupted-delivery escape,
    // never as a silent repair.
    FaultParams faults;
    faults.enabled = true;
    faults.bitflipRate = 0.01;
    faults.protect = false;

    auto net = buildFaultNet(GetParam(), faults);
    driveTraffic(*net, 1500, 0.05, 0xBAD5EED);
    ASSERT_TRUE(net->drain(50000));

    const NetworkStats &s = net->stats();
    ASSERT_GT(s.faults.bitflipsInjected, 20u);
    EXPECT_EQ(s.packetsEjected, s.packetsInjected);
    EXPECT_EQ(s.faults.retransmissions, 0u);
    EXPECT_EQ(s.faults.creditResyncs, 0u);
    EXPECT_GT(s.faults.corruptedEscapes, 0u);
    EXPECT_GE(s.faults.faultsDetected + s.faults.corruptedEscapes,
              s.faults.bitflipsInjected)
        << "an injected upset was silently repaired or lost";
    if (GetParam() == RouterArch::Nox) {
        // Corrupt wire values reaching the XOR decode chain are
        // flagged in-network, before the sink sees them.
        EXPECT_GT(s.faults.decodeMismatches, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Arches, RawFabric,
                         ::testing::ValuesIn(kAllArchs),
                         [](const auto &info) {
                             std::string n = archName(info.param);
                             std::erase(n, '-');
                             return n;
                         });

TEST(DrainReport, DiagnosesStrandedPacketWithRecoveryOff)
{
    FaultParams faults;
    faults.enabled = true;
    faults.protect = false;
    auto net = buildFaultNet(RouterArch::NonSpeculative, faults);

    // The head flit of 0 -> 3 vanishes on router 1's west input; with
    // no link protection the packet is stranded forever.
    net->faultInjector()->scheduleOneShot(FaultKind::Drop, 0,
                                          /*router=*/1, kPortWest);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    EXPECT_FALSE(net->drain(2000));

    const DrainReport &report = net->lastDrainReport();
    EXPECT_FALSE(report.drained);
    EXPECT_EQ(report.packetsInFlight, 1u);
    EXPECT_FALSE(report.summary().empty());
    EXPECT_NE(report.summary().find("packet"), std::string::npos);
}

TEST(DrainReport, NamesPartiallyDeliveredPackets)
{
    // Probe run: a one-shot bit flip stamps the fault log with the
    // cycle the head flit crosses the destination router's west input;
    // flits follow head at one-cycle spacing on an idle mesh.
    Cycle head_arrival = 0;
    {
        FaultParams faults;
        faults.enabled = true;
        faults.protect = false;
        auto probe = buildFaultNet(RouterArch::NonSpeculative, faults);
        probe->faultInjector()->scheduleOneShot(FaultKind::BitFlip, 0,
                                                /*router=*/3,
                                                kPortWest);
        probe->injectPacket(0, 3, 3, probe->now(),
                            TrafficClass::Synthetic);
        ASSERT_TRUE(probe->drain(500));
        ASSERT_EQ(probe->faultInjector()->log().size(), 1u);
        head_arrival = probe->faultInjector()->log()[0].cycle;
    }

    // Real run: drop the tail (third) flit at the same link, so two of
    // three flits reach the destination NIC.
    FaultParams faults;
    faults.enabled = true;
    faults.protect = false;
    auto net = buildFaultNet(RouterArch::NonSpeculative, faults);
    net->faultInjector()->scheduleOneShot(FaultKind::Drop,
                                          head_arrival + 2,
                                          /*router=*/3, kPortWest);
    net->injectPacket(0, 3, 3, net->now(), TrafficClass::Synthetic);
    EXPECT_FALSE(net->drain(2000));

    const DrainReport &report = net->lastDrainReport();
    ASSERT_EQ(report.partialPackets.size(), 1u);
    EXPECT_EQ(report.partialPackets[0].node, 3);
    EXPECT_EQ(report.partialPackets[0].flitsArrived, 2u);
    EXPECT_NE(report.summary().find("partial"), std::string::npos);
}

TEST(FaultRecovery, RecoveryIsInvisibleToFaultFreeTraffic)
{
    // An enabled injector with zero rates must not perturb results:
    // the protected network produces bit-identical stats to one built
    // without any fault machinery.
    auto plain =
        buildFaultNet(RouterArch::Nox, FaultParams{}); // disabled
    auto armed = buildFaultNet(RouterArch::Nox, oneShotOnly());
    driveTraffic(*plain, 800, 0.06, 0x5EED);
    driveTraffic(*armed, 800, 0.06, 0x5EED);
    ASSERT_TRUE(plain->drain(50000));
    ASSERT_TRUE(armed->drain(50000));
    EXPECT_TRUE(identicalStats(plain->stats(), armed->stats()));
    EXPECT_EQ(armed->stats().faults.faultsInjected, 0u);
}

} // namespace
} // namespace nox
