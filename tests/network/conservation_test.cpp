/**
 * @file
 * Property-based conservation tests, parameterized over router
 * architecture, injection rate and packet mix:
 *
 *   1. Every injected packet is ejected exactly once.
 *   2. Payloads survive intact (asserted inside the NIC sink, which
 *      checks every delivered flit against expectedPayload()).
 *   3. Per source-destination flow, packets arrive in injection order
 *      (deterministic DOR wormhole — and NoX coding must preserve it).
 *   4. Credit flow never overflows a FIFO (asserted in FlitFifo).
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace {

/** Bernoulli uniform-random source used only by this test. */
class TestRandomSource : public TrafficSource
{
  public:
    TestRandomSource(NodeId self, int num_nodes, double rate,
                     double data_fraction, std::uint64_t seed)
        : self_(self), numNodes_(num_nodes), rate_(rate),
          dataFraction_(data_fraction), rng_(seed)
    {
    }

    void
    tick(Cycle now, PacketInjector &inj) override
    {
        if (!rng_.nextBernoulli(rate_))
            return;
        NodeId dst = self_;
        while (dst == self_)
            dst = static_cast<NodeId>(
                rng_.nextBounded(static_cast<std::uint64_t>(numNodes_)));
        const int flits =
            rng_.nextBernoulli(dataFraction_) ? 9 : 1;
        inj.injectPacket(self_, dst, flits, now,
                         TrafficClass::Synthetic);
    }

  private:
    NodeId self_;
    int numNodes_;
    double rate_;
    double dataFraction_;
    Rng rng_;
};

/** Records completion order per flow while forwarding to the chain. */
class OrderRecorder : public SinkListener
{
  public:
    explicit OrderRecorder(SinkListener *chain) : chain_(chain) {}

    void
    onFlitDelivered(NodeId node, const FlitDesc &flit,
                    Cycle now) override
    {
        chain_->onFlitDelivered(node, flit, now);
    }

    void
    onPacketCompleted(NodeId node, const FlitDesc &last,
                      Cycle head_inject, Cycle now) override
    {
        const auto key = std::make_pair(last.src, last.dest);
        auto [it, fresh] = lastPacket_.try_emplace(key, last.packet);
        if (!fresh) {
            // Packet ids are allocated in injection order, globally
            // monotonic, so per-flow order equals id order.
            EXPECT_LT(it->second, last.packet)
                << "flow (" << last.src << "->" << last.dest
                << ") delivered out of order";
            it->second = last.packet;
        }
        chain_->onPacketCompleted(node, last, head_inject, now);
    }

  private:
    SinkListener *chain_;
    std::map<std::pair<NodeId, NodeId>, PacketId> lastPacket_;
};

struct ConservationCase
{
    RouterArch arch;
    double rate;          // packets/node/cycle
    double dataFraction;  // fraction of 9-flit packets
    bool faults = false;  // link faults + recovery enabled
    int vcCount = 1;
};

std::string
caseName(const ::testing::TestParamInfo<ConservationCase> &info)
{
    std::string n = archName(info.param.arch);
    for (auto &c : n)
        if (c == '-')
            c = '_';
    n += "_r" + std::to_string(static_cast<int>(
                    info.param.rate * 1000));
    n += "_d" + std::to_string(static_cast<int>(
                    info.param.dataFraction * 100));
    if (info.param.vcCount > 1)
        n += "_vc" + std::to_string(info.param.vcCount);
    if (info.param.faults)
        n += "_faults";
    return n;
}

class Conservation : public ::testing::TestWithParam<ConservationCase>
{
};

TEST_P(Conservation, AllPacketsDeliveredOnceInOrder)
{
    const ConservationCase &c = GetParam();

    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.router.vcCount = c.vcCount;
    if (c.faults) {
        // Link faults with full recovery: conservation, payload
        // integrity and ordering must all survive the injected bit
        // flips, drops and credit losses.
        params.faults.enabled = true;
        params.faults.bitflipRate = 0.002;
        params.faults.dropRate = 0.001;
        params.faults.creditLossRate = 0.001;
    }
    auto net = makeNetwork(params, c.arch);

    OrderRecorder recorder(net.get());
    for (NodeId n = 0; n < net->numNodes(); ++n)
        net->nic(n).setListener(&recorder);

    Rng seeder(0xC0FFEE ^ static_cast<std::uint64_t>(c.arch) ^
               static_cast<std::uint64_t>(c.rate * 1e6));
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<TestRandomSource>(
            n, net->numNodes(), c.rate, c.dataFraction,
            seeder.next()));
    }

    net->run(2000);
    const std::uint64_t injected = net->stats().packetsInjected;
    EXPECT_GT(injected, 100u);

    // Quiesce the sources, then drain everything still in flight.
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(50000)) << net->lastDrainReport().summary();
    EXPECT_EQ(net->stats().packetsEjected, net->stats().packetsInjected);
    EXPECT_EQ(net->stats().flitsEjected, net->stats().flitsInjected);
    if (c.faults) {
        EXPECT_GT(net->stats().faults.faultsInjected, 0u);
        EXPECT_EQ(net->stats().faults.corruptedEscapes, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conservation,
    ::testing::Values(
        ConservationCase{RouterArch::NonSpeculative, 0.02, 0.0},
        ConservationCase{RouterArch::NonSpeculative, 0.08, 0.0},
        ConservationCase{RouterArch::NonSpeculative, 0.05, 0.3},
        ConservationCase{RouterArch::SpecFast, 0.02, 0.0},
        ConservationCase{RouterArch::SpecFast, 0.06, 0.0},
        ConservationCase{RouterArch::SpecFast, 0.04, 0.3},
        ConservationCase{RouterArch::SpecAccurate, 0.02, 0.0},
        ConservationCase{RouterArch::SpecAccurate, 0.08, 0.0},
        ConservationCase{RouterArch::SpecAccurate, 0.05, 0.3},
        ConservationCase{RouterArch::Nox, 0.02, 0.0},
        ConservationCase{RouterArch::Nox, 0.08, 0.0},
        ConservationCase{RouterArch::Nox, 0.05, 0.3},
        ConservationCase{RouterArch::Nox, 0.12, 0.1},
        // Arena-growth path: enough single-flit collisions that
        // encoded chains spill PartsVecs to FlitArena blocks and the
        // freelist grows mid-run; conservation and ordering must hold
        // on recycled storage too.
        ConservationCase{RouterArch::Nox, 0.20, 0.0},
        ConservationCase{RouterArch::NonSpeculative, 0.05, 0.3, true},
        ConservationCase{RouterArch::SpecFast, 0.04, 0.3, true},
        ConservationCase{RouterArch::SpecAccurate, 0.05, 0.3, true},
        ConservationCase{RouterArch::Nox, 0.05, 0.3, true},
        ConservationCase{RouterArch::NonSpeculative, 0.05, 0.3, true,
                         2}),
    caseName);

} // namespace
} // namespace nox
