/** @file Table 1 rendering test for the CMP parameter block. */

#include <gtest/gtest.h>

#include <sstream>

#include "coherence/cmp_params.hpp"

namespace nox {
namespace {

TEST(CmpParams, DefaultsMatchTable1)
{
    const CmpParams p;
    EXPECT_EQ(p.cores, 64);
    EXPECT_EQ(p.meshWidth * p.meshHeight, 64);
    EXPECT_DOUBLE_EQ(p.cpuGhz, 3.0);
    EXPECT_EQ(p.l1SizeKB, 32);
    EXPECT_EQ(p.l1Ways, 2);
    EXPECT_EQ(p.l2SizeKB, 256);
    EXPECT_EQ(p.l2Ways, 8);
    EXPECT_EQ(p.lineBytes, 64);
    EXPECT_EQ(p.memLatencyCpuCycles, 100);
    EXPECT_EQ(p.ctrlPacketBytes, 8);
    EXPECT_EQ(p.dataPacketBytes, 72);
    EXPECT_NEAR(p.cpuCycleNs(), 1.0 / 3.0, 1e-12);
}

TEST(CmpParams, PrintsEveryTable1Row)
{
    const CmpParams p;
    std::ostringstream os;
    p.printTable(os);
    const std::string out = os.str();
    for (const char *needle :
         {"Cores", "64", "8x8 mesh", "3GHz in order PowerPC",
          "32KB, 2-way set associative",
          "256KB, 8-way set associative", "64-bytes", "100 cycles",
          "64-bit request, 64-bit reply network",
          "8 byte control, 72 byte data", "4 64-bit entries/port",
          "2mm", "Dimension Ordered Routing"}) {
        EXPECT_NE(out.find(needle), std::string::npos) << needle;
    }
}

} // namespace
} // namespace nox
