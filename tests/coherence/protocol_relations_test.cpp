/**
 * @file
 * Coherence-protocol relationship tests: drive the trace generator
 * with specially constructed profiles whose behaviour is predictable,
 * and check the transaction mix obeys protocol logic. (The directory
 * itself asserts the single-writer/sharer-list invariants on every
 * transaction, so any run of the generator is also an invariant
 * check.)
 */

#include <gtest/gtest.h>

#include <cmath>

#include "coherence/trace_generator.hpp"

namespace nox {
namespace {

WorkloadProfile
baseProfile()
{
    WorkloadProfile w = findWorkload("barnes");
    w.name = "synthetic-test";
    w.commPeriodNs = 0.0; // no phase modulation: steady behaviour
    return w;
}

TraceGenStats
runProfile(const WorkloadProfile &w, double horizon = 8000.0)
{
    CmpParams params;
    CoherenceTraceGenerator gen(params, w, 7);
    (void)gen.generate(horizon, 10000.0);
    return gen.stats();
}

TEST(ProtocolRelations, NoWritesMeansNoInvalidationsOrWritebacks)
{
    WorkloadProfile w = baseProfile();
    w.writeFraction = 0.0;
    w.hotWriteFraction = 0.0;
    const TraceGenStats s = runProfile(w);
    EXPECT_GT(s.getS, 0u);
    EXPECT_EQ(s.getM, 0u);
    EXPECT_EQ(s.invalidations, 0u);
    EXPECT_EQ(s.writebacks, 0u);
    // Read-only data is never in M, so no 3-hop forwards either.
    EXPECT_EQ(s.forwards, 0u);
}

TEST(ProtocolRelations, PrivateOnlyMeansNoCoherenceActions)
{
    WorkloadProfile w = baseProfile();
    w.sharedFraction = 0.0;
    const TraceGenStats s = runProfile(w);
    // Private lines are only ever touched by their owner: the
    // directory never has to invalidate or forward.
    EXPECT_EQ(s.invalidations, 0u);
    EXPECT_EQ(s.forwards, 0u);
    EXPECT_GT(s.l1Hits, 0u);
}

TEST(ProtocolRelations, SharingProducesInvalidationsAndForwards)
{
    WorkloadProfile w = baseProfile();
    w.sharedFraction = 0.4;
    w.writeFraction = 0.4;
    w.hotWriteFraction = 0.1;
    const TraceGenStats s = runProfile(w);
    EXPECT_GT(s.invalidations, 100u);
    EXPECT_GT(s.forwards, 100u);
    EXPECT_GT(s.getM, 0u);
}

TEST(ProtocolRelations, MissesBoundTransactions)
{
    const TraceGenStats s = runProfile(baseProfile());
    // Every GetS/GetM is caused by an L2 miss or an upgrade-in-place;
    // upgrades are bounded by write volume.
    EXPECT_GE(s.getS + s.getM, s.l2Misses);
    EXPECT_LE(s.l2Misses, s.l1Misses);
    EXPECT_LE(s.l1Misses, s.memOps);
}

TEST(ProtocolRelations, ControlDominatesPacketMix)
{
    const TraceGenStats s = runProfile(baseProfile());
    EXPECT_GT(s.ctrlPackets, s.dataPackets);
}

TEST(ProtocolRelations, TinyCacheRaisesMissRate)
{
    // A strictly cycling private working set of 64KB (1024 lines):
    // it fits the default 256KB L2 (capacity hits after the first
    // pass) but thrashes a 32KB one. Long horizon so each core walks
    // its set several times.
    WorkloadProfile w = baseProfile();
    w.privateWorkingSetKB = 64;
    w.sharedFraction = 0.0;
    w.sequentialProb = 1.0;
    w.lineRepeatMean = 3.0;
    w.mlp = 4.0;
    w.memOpsPerCpuCycle = 0.3;

    CmpParams small;
    small.l1SizeKB = 4;
    small.l2SizeKB = 32;
    CmpParams big;

    CoherenceTraceGenerator gsmall(small, w, 7);
    (void)gsmall.generate(20000.0, 40000.0);
    CoherenceTraceGenerator gbig(big, w, 7);
    (void)gbig.generate(20000.0, 40000.0);

    // Per-L2-lookup miss ratio: ~1 for the thrashing cache, low for
    // the one that holds the working set.
    const double small_ratio =
        static_cast<double>(gsmall.stats().l2Misses) /
        static_cast<double>(gsmall.stats().l1Misses);
    const double big_ratio =
        static_cast<double>(gbig.stats().l2Misses) /
        static_cast<double>(gbig.stats().l1Misses);
    EXPECT_GT(small_ratio, 0.9);
    EXPECT_LT(big_ratio, 0.6);
}

TEST(ProtocolRelations, MlpRaisesThroughputNotMix)
{
    WorkloadProfile w1 = baseProfile();
    w1.mlp = 1.0;
    WorkloadProfile w4 = baseProfile();
    w4.mlp = 4.0;
    const TraceGenStats s1 = runProfile(w1);
    const TraceGenStats s4 = runProfile(w4);
    // Overlapped misses let the blocking core issue more ops in the
    // same wall-clock horizon.
    EXPECT_GT(s4.memOps, s1.memOps);
}

TEST(ProtocolRelations, PhaseWindowsConcentrateTraffic)
{
    WorkloadProfile w = baseProfile();
    w.commPeriodNs = 3000.0;
    w.commWindowNs = 800.0;
    CmpParams params;
    CoherenceTraceGenerator gen(params, w, 7);
    const Trace t = gen.generate(9000.0, 9000.0);
    ASSERT_GT(t.records.size(), 500u);

    // Compare packet density inside vs outside communication windows.
    double in_window = 0.0, outside = 0.0;
    for (const auto &r : t.records) {
        const double phase =
            r.timeNs - std::floor(r.timeNs / 3000.0) * 3000.0;
        (phase < 800.0 ? in_window : outside) += 1.0;
    }
    const double in_density = in_window / 800.0;
    const double out_density = outside / (3000.0 - 800.0);
    // Transactions started inside a window emit some packets after it
    // closes (invalidation chains, refills), so the measured contrast
    // is softer than the issue-rate boost.
    EXPECT_GT(in_density, 1.4 * out_density);
}

} // namespace
} // namespace nox
