/** @file Integration tests for the coherence trace generator. */

#include <gtest/gtest.h>

#include <map>

#include "coherence/trace_generator.hpp"

namespace nox {
namespace {

Trace
smallTrace(const char *workload, double horizon = 3000.0,
           double warmup = 6000.0)
{
    CmpParams params;
    CoherenceTraceGenerator gen(params, findWorkload(workload), 42);
    return gen.generate(horizon, warmup);
}

TEST(TraceGen, ProducesTraffic)
{
    const Trace t = smallTrace("barnes");
    EXPECT_GT(t.records.size(), 1000u);
    EXPECT_GE(t.durationNs, 3000.0);
}

TEST(TraceGen, Deterministic)
{
    const Trace a = smallTrace("fft");
    const Trace b = smallTrace("fft");
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.records[i].timeNs, b.records[i].timeNs);
        EXPECT_EQ(a.records[i].src, b.records[i].src);
        EXPECT_EQ(a.records[i].dst, b.records[i].dst);
    }
}

TEST(TraceGen, PacketSizesMatchTable1)
{
    const Trace t = smallTrace("tpcc");
    for (const auto &r : t.records) {
        EXPECT_TRUE(r.sizeBytes == 8 || r.sizeBytes == 72)
            << r.sizeBytes;
    }
}

TEST(TraceGen, ControlPacketsAreTheMajority)
{
    // §2.7: "the majority of packets are single-flit control packets
    // in cache coherent systems".
    const Trace t = smallTrace("barnes", 6000.0);
    std::size_t ctrl = 0;
    for (const auto &r : t.records)
        ctrl += (r.sizeBytes == 8);
    EXPECT_GT(static_cast<double>(ctrl) /
                  static_cast<double>(t.records.size()),
              0.6);
}

TEST(TraceGen, TwoPhysicalNetworksBothUsed)
{
    const Trace t = smallTrace("ocean");
    EXPECT_GT(t.forNetwork(0).size(), 100u);
    EXPECT_GT(t.forNetwork(1).size(), 100u);
    // Classes align with networks.
    for (const auto &r : t.forNetwork(0))
        EXPECT_EQ(static_cast<int>(r.cls),
                  static_cast<int>(TrafficClass::Request));
    for (const auto &r : t.forNetwork(1))
        EXPECT_EQ(static_cast<int>(r.cls),
                  static_cast<int>(TrafficClass::Reply));
}

TEST(TraceGen, NoSelfAddressedPackets)
{
    const Trace t = smallTrace("lu");
    for (const auto &r : t.records)
        EXPECT_NE(r.src, r.dst);
}

TEST(TraceGen, TimeSortedAndRebasedAfterWarmup)
{
    const Trace t = smallTrace("radix");
    double prev = 0.0;
    for (const auto &r : t.records) {
        EXPECT_GE(r.timeNs, 0.0);
        EXPECT_GE(r.timeNs, prev);
        prev = r.timeNs;
    }
}

TEST(TraceGen, WarmCachesHitMostly)
{
    CmpParams params;
    CoherenceTraceGenerator gen(params, findWorkload("water"), 7);
    (void)gen.generate(4000.0, 30000.0);
    const TraceGenStats &s = gen.stats();
    EXPECT_GT(s.memOps, 100000u);
    // After warmup the overall hit rate must be high (spatial reuse).
    const double l1_hit_rate =
        static_cast<double>(s.l1Hits) / s.memOps;
    EXPECT_GT(l1_hit_rate, 0.80);
    EXPECT_LT(s.l2Misses, s.l1Misses);
}

TEST(TraceGen, CoherenceActivityPresent)
{
    CmpParams params;
    CoherenceTraceGenerator gen(params, findWorkload("tpcc"), 7);
    (void)gen.generate(8000.0, 20000.0);
    const TraceGenStats &s = gen.stats();
    EXPECT_GT(s.getS, 0u);
    EXPECT_GT(s.getM, 0u);
    EXPECT_GT(s.invalidations, 0u);
    EXPECT_GT(s.forwards, 0u);
}

TEST(TraceGen, RequestsAndRepliesRoughlyPaired)
{
    // Every data-bearing transaction has a request; the request net
    // cannot be empty relative to replies.
    const Trace t = smallTrace("specjbb", 5000.0);
    const double req = static_cast<double>(t.forNetwork(0).size());
    const double rep = static_cast<double>(t.forNetwork(1).size());
    EXPECT_GT(req / rep, 0.5);
    EXPECT_LT(req / rep, 4.0);
}

TEST(TraceGen, LoadInEvaluationBand)
{
    // The shipped profiles target a per-node load below saturation
    // but high enough to exercise contention (roughly 1.5-4 GB/s
    // combined across both physical networks).
    for (const char *name : {"barnes", "tpcc"}) {
        const Trace t = smallTrace(name, 8000.0, 30000.0);
        const double load = t.bytesPerNsPerNode(64, 0) +
                            t.bytesPerNsPerNode(64, 1);
        EXPECT_GT(load, 1.0) << name;
        EXPECT_LT(load, 4.5) << name;
    }
}

TEST(TraceGen, DifferentWorkloadsDifferentTraffic)
{
    // The sharing-heavy commercial profile produces far more
    // invalidation activity per memory operation than the regular
    // scientific kernel.
    CmpParams params;
    CoherenceTraceGenerator lu(params, findWorkload("lu"), 42);
    (void)lu.generate(4000.0, 6000.0);
    CoherenceTraceGenerator tpcc(params, findWorkload("tpcc"), 42);
    (void)tpcc.generate(4000.0, 6000.0);

    const double lu_inv =
        static_cast<double>(lu.stats().invalidations) /
        static_cast<double>(lu.stats().memOps);
    const double tpcc_inv =
        static_cast<double>(tpcc.stats().invalidations) /
        static_cast<double>(tpcc.stats().memOps);
    EXPECT_GT(tpcc_inv, 2.0 * lu_inv);
}

} // namespace
} // namespace nox
