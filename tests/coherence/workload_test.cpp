/** @file Unit tests for workload profiles and address streams. */

#include <gtest/gtest.h>

#include <set>

#include "coherence/workload.hpp"

namespace nox {
namespace {

TEST(Workloads, SuiteHasScientificAndCommercial)
{
    const auto &ws = builtinWorkloads();
    EXPECT_EQ(ws.size(), 10u);
    for (const char *name : {"barnes", "fft", "lu", "ocean", "radix",
                             "water", "apache", "specjbb", "specweb",
                             "tpcc"}) {
        EXPECT_EQ(findWorkload(name).name, name);
    }
}

TEST(Workloads, ParametersSane)
{
    for (const auto &w : builtinWorkloads()) {
        EXPECT_GT(w.memOpsPerCpuCycle, 0.0) << w.name;
        EXPECT_LT(w.memOpsPerCpuCycle, 1.0) << w.name;
        EXPECT_GE(w.writeFraction, 0.0);
        EXPECT_LE(w.writeFraction, 1.0);
        EXPECT_GT(w.privateWorkingSetKB, 0);
        EXPECT_GT(w.sharedWorkingSetKB, 0);
        EXPECT_GT(w.lineRepeatMean, 1.0);
        EXPECT_GE(w.mlp, 1.0);
        EXPECT_GT(w.hotLines, 0);
        EXPECT_GT(w.hotHomes, 0);
    }
}

TEST(WorkloadsDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT((void)findWorkload("quake"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(AddressStream, PrivateRegionsDisjointAcrossCores)
{
    const WorkloadProfile &w = findWorkload("barnes");
    AddressStream a(w, 0, 64, 1);
    AddressStream b(w, 1, 64, 2);
    std::set<std::uint64_t> seen_a;
    for (int i = 0; i < 2000; ++i) {
        const auto op = a.next(0.0); // private only
        seen_a.insert(op.addr >> 26); // arena id
    }
    for (int i = 0; i < 2000; ++i) {
        const auto op = b.next(0.0);
        EXPECT_EQ(seen_a.count(op.addr >> 26), 0u);
    }
}

TEST(AddressStream, SharedRegionCommon)
{
    const WorkloadProfile &w = findWorkload("tpcc");
    AddressStream a(w, 0, 64, 1);
    AddressStream b(w, 63, 64, 2);
    std::set<std::uint64_t> lines_a, lines_b;
    for (int i = 0; i < 30000; ++i) {
        const auto opa = a.next(5.0); // force mostly shared
        const auto opb = b.next(5.0);
        if (opa.addr >= (1ULL << 40))
            lines_a.insert(opa.addr / 64);
        if (opb.addr >= (1ULL << 40))
            lines_b.insert(opb.addr / 64);
    }
    // The two cores overlap on shared lines.
    int common = 0;
    for (auto l : lines_a)
        common += lines_b.count(l);
    EXPECT_GT(common, 10);
}

TEST(AddressStream, LineReuseMatchesRepeatMean)
{
    WorkloadProfile w = findWorkload("fft");
    w.sharedFraction = 0.0;
    w.sequentialProb = 0.0;
    AddressStream s(w, 0, 64, 3);
    // Average run length of identical consecutive line addresses.
    int runs = 0;
    std::uint64_t prev = ~0ULL;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const auto op = s.next();
        const std::uint64_t line = op.addr / 64;
        if (line != prev)
            ++runs;
        prev = line;
    }
    const double mean_run = static_cast<double>(n) / runs;
    EXPECT_NEAR(mean_run, w.lineRepeatMean, w.lineRepeatMean * 0.15);
}

TEST(AddressStream, HotLinesConcentrateOnHotHomes)
{
    WorkloadProfile w = findWorkload("barnes");
    AddressStream s(w, 0, 64, 4);
    std::set<int> homes;
    for (int i = 0; i < 50000; ++i) {
        const auto op = s.next(5.0, 5.0);
        if (op.hot)
            homes.insert(static_cast<int>((op.addr / 64) % 64));
    }
    EXPECT_GT(homes.size(), 0u);
    EXPECT_LE(static_cast<int>(homes.size()), w.hotHomes);
}

TEST(AddressStream, HotLinesAreReadMostly)
{
    WorkloadProfile w = findWorkload("water");
    AddressStream s(w, 0, 64, 5);
    int hot_ops = 0, hot_writes = 0;
    for (int i = 0; i < 200000; ++i) {
        const auto op = s.next(5.0, 3.0);
        if (op.hot) {
            ++hot_ops;
            hot_writes += op.write;
        }
    }
    ASSERT_GT(hot_ops, 1000);
    EXPECT_NEAR(static_cast<double>(hot_writes) / hot_ops,
                w.hotWriteFraction, 0.02);
}

TEST(AddressStream, SharedScaleZeroMeansPrivateOnly)
{
    const WorkloadProfile &w = findWorkload("apache");
    AddressStream s(w, 3, 64, 6);
    for (int i = 0; i < 5000; ++i) {
        const auto op = s.next(0.0);
        EXPECT_LT(op.addr, 1ULL << 40);
        EXPECT_FALSE(op.hot);
    }
}

} // namespace
} // namespace nox
