/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "coherence/cache.hpp"

namespace nox {
namespace {

TEST(Cache, GeometryDerivedFromParameters)
{
    // 32KB, 2-way, 64B lines -> 512 lines -> 256 sets (Table 1 L1).
    SetAssocCache l1(32, 2, 64);
    EXPECT_EQ(l1.numSets(), 256);
    EXPECT_EQ(l1.ways(), 2);

    // 256KB, 8-way, 64B lines -> 4096 lines -> 512 sets (Table 1 L2).
    SetAssocCache l2(256, 8, 64);
    EXPECT_EQ(l2.numSets(), 512);
    EXPECT_EQ(l2.ways(), 8);
}

TEST(Cache, LineOfDividesByLineSize)
{
    SetAssocCache c(32, 2, 64);
    EXPECT_EQ(c.lineOf(0), 0u);
    EXPECT_EQ(c.lineOf(63), 0u);
    EXPECT_EQ(c.lineOf(64), 1u);
    EXPECT_EQ(c.lineOf(6400), 100u);
}

TEST(Cache, MissThenHit)
{
    SetAssocCache c(32, 2, 64);
    EXPECT_FALSE(c.lookup(42));
    c.insert(42, false);
    EXPECT_TRUE(c.lookup(42));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictionWithinSet)
{
    SetAssocCache c(32, 2, 64); // 256 sets: lines n and n+256 collide
    c.insert(0, false);
    c.insert(256, false);
    // Touch 0 so 256 becomes LRU.
    EXPECT_TRUE(c.lookup(0));
    const auto v = c.insert(512, false);
    EXPECT_TRUE(v.evicted);
    EXPECT_EQ(v.victimLine, 256u);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(256));
}

TEST(Cache, EvictionReportsDirtyVictim)
{
    SetAssocCache c(32, 2, 64);
    c.insert(0, true);
    c.insert(256, false);
    c.lookup(256); // 0 becomes LRU
    const auto v = c.insert(512, false);
    EXPECT_TRUE(v.evicted);
    EXPECT_EQ(v.victimLine, 0u);
    EXPECT_TRUE(v.victimDirty);
}

TEST(Cache, DirtyBitLifecycle)
{
    SetAssocCache c(32, 2, 64);
    c.insert(7, false);
    EXPECT_FALSE(c.isDirty(7));
    EXPECT_TRUE(c.markDirty(7));
    EXPECT_TRUE(c.isDirty(7));
    EXPECT_TRUE(c.clearDirty(7));
    EXPECT_FALSE(c.isDirty(7));
    EXPECT_FALSE(c.markDirty(999)); // absent line
}

TEST(Cache, InvalidateRemovesLine)
{
    SetAssocCache c(32, 2, 64);
    c.insert(5, false);
    EXPECT_TRUE(c.invalidate(5));
    EXPECT_FALSE(c.contains(5));
    EXPECT_FALSE(c.invalidate(5));
}

TEST(Cache, NoEvictionWhileSetHasRoom)
{
    SetAssocCache c(256, 8, 64); // 8-way
    for (int i = 0; i < 8; ++i) {
        const auto v = c.insert(
            static_cast<std::uint64_t>(i) * 512, false);
        EXPECT_FALSE(v.evicted) << i;
    }
    const auto v = c.insert(8 * 512, false);
    EXPECT_TRUE(v.evicted);
}

TEST(Cache, WorkingSetSmallerThanCacheAlwaysHitsAfterWarm)
{
    SetAssocCache c(32, 2, 64); // 512 lines
    for (std::uint64_t l = 0; l < 400; ++l)
        c.insert(l, false);
    for (std::uint64_t l = 0; l < 400; ++l)
        EXPECT_TRUE(c.lookup(l)) << l;
}

TEST(CacheDeathTest, DoubleInsertAborts)
{
    SetAssocCache c(32, 2, 64);
    c.insert(1, false);
    EXPECT_DEATH(c.insert(1, false), "already-present");
}

} // namespace
} // namespace nox
