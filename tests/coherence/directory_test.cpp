/** @file Unit tests for the MSI directory. */

#include <gtest/gtest.h>

#include "coherence/directory.hpp"

namespace nox {
namespace {

TEST(Directory, HomeInterleavedByLine)
{
    Directory d(64);
    EXPECT_EQ(d.homeOf(0), 0);
    EXPECT_EQ(d.homeOf(63), 63);
    EXPECT_EQ(d.homeOf(64), 0);
    EXPECT_EQ(d.homeOf(130), 2);
}

TEST(Directory, UntrackedLineIsInvalid)
{
    Directory d(64);
    EXPECT_EQ(d.find(100), nullptr);
}

TEST(Directory, SharersAccumulate)
{
    Directory d(64);
    d.addSharer(5, 3);
    d.addSharer(5, 7);
    const DirEntry *e = d.find(5);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Shared);
    EXPECT_EQ(e->sharerCount(), 2);
    EXPECT_TRUE(e->isSharer(3));
    EXPECT_TRUE(e->isSharer(7));
    EXPECT_FALSE(e->isSharer(4));
}

TEST(Directory, ModifiedHasSingleOwner)
{
    Directory d(64);
    d.addSharer(9, 1);
    d.addSharer(9, 2);
    d.setModified(9, 5);
    const DirEntry *e = d.find(9);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Modified);
    EXPECT_EQ(e->owner, 5);
    EXPECT_EQ(e->sharerCount(), 1);
    EXPECT_TRUE(e->isSharer(5));
}

TEST(Directory, RemoveLastSharerInvalidates)
{
    Directory d(64);
    d.addSharer(4, 2);
    d.removeSharer(4, 2);
    EXPECT_EQ(d.find(4), nullptr);
    EXPECT_EQ(d.trackedLines(), 0u);
}

TEST(Directory, RemoveOwnerDowngrades)
{
    Directory d(64);
    d.setModified(8, 3);
    d.addSharer(8, 4); // reader joins; entry downgraded internally
    const DirEntry *e = d.find(8);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->state, DirState::Shared);
    EXPECT_EQ(e->owner, kInvalidNode);
    EXPECT_EQ(e->sharerCount(), 2);
}

TEST(Directory, RemoveSharerOnUntrackedLineIsNoop)
{
    Directory d(64);
    d.removeSharer(77, 3);
    EXPECT_EQ(d.find(77), nullptr);
}

TEST(Directory, SetInvalidErases)
{
    Directory d(64);
    d.setModified(6, 1);
    d.setInvalid(6);
    EXPECT_EQ(d.find(6), nullptr);
}

} // namespace
} // namespace nox
