/** @file Unit tests for the key=value Config store. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/config.hpp"

namespace nox {
namespace {

TEST(Config, ParseArgsKeyValue)
{
    const char *argv[] = {"prog", "width=8", "rate=0.25", "arch=nox"};
    Config c;
    const auto positional = c.parseArgs(4, argv);
    EXPECT_TRUE(positional.empty());
    EXPECT_EQ(c.getInt("width"), 8);
    EXPECT_DOUBLE_EQ(c.getDouble("rate"), 0.25);
    EXPECT_EQ(c.getString("arch"), "nox");
}

TEST(Config, PositionalArgsReturned)
{
    const char *argv[] = {"prog", "run", "width=4"};
    Config c;
    const auto positional = c.parseArgs(3, argv);
    ASSERT_EQ(positional.size(), 1u);
    EXPECT_EQ(positional[0], "run");
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_DOUBLE_EQ(c.getDouble("missing", 1.5), 1.5);
    EXPECT_EQ(c.getString("missing", "x"), "x");
    EXPECT_TRUE(c.getBool("missing", true));
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, TypedSettersRoundTrip)
{
    Config c;
    c.set("i", std::int64_t{-12});
    c.set("d", 2.5);
    c.set("b", true);
    c.set("s", std::string("hello"));
    EXPECT_EQ(c.getInt("i"), -12);
    EXPECT_DOUBLE_EQ(c.getDouble("d"), 2.5);
    EXPECT_TRUE(c.getBool("b"));
    EXPECT_EQ(c.getString("s"), "hello");
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"1", "true", "yes", "on", "TRUE", "Yes"}) {
        c.set("k", std::string(t));
        EXPECT_TRUE(c.getBool("k")) << t;
    }
    for (const char *f : {"0", "false", "no", "off", "False"}) {
        c.set("k", std::string(f));
        EXPECT_FALSE(c.getBool("k")) << f;
    }
}

TEST(Config, Lists)
{
    Config c;
    c.set("rates", std::string("0.1, 0.2,0.3"));
    const auto ds = c.getDoubleList("rates");
    ASSERT_EQ(ds.size(), 3u);
    EXPECT_DOUBLE_EQ(ds[1], 0.2);

    c.set("names", std::string("a, b , c"));
    const auto ss = c.getStringList("names");
    ASSERT_EQ(ss.size(), 3u);
    EXPECT_EQ(ss[2], "c");
}

TEST(Config, EmptyListWhenAbsent)
{
    Config c;
    EXPECT_TRUE(c.getDoubleList("none").empty());
    EXPECT_TRUE(c.getStringList("none").empty());
}

TEST(Config, LoadFileWithCommentsAndBlanks)
{
    const std::string path = ::testing::TempDir() + "nox_cfg_test.cfg";
    {
        std::ofstream out(path);
        out << "# a comment\n"
            << "width = 4\n"
            << "\n"
            << "rate = 0.5  # trailing comment\n";
    }
    Config c;
    c.loadFile(path);
    EXPECT_EQ(c.getInt("width"), 4);
    EXPECT_DOUBLE_EQ(c.getDouble("rate"), 0.5);
    std::remove(path.c_str());
}

TEST(Config, UnusedKeysReported)
{
    Config c;
    c.set("used", std::int64_t{1});
    c.set("unused", std::int64_t{2});
    (void)c.getInt("used");
    const auto unused = c.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "unused");
}

TEST(Config, ItemsSorted)
{
    Config c;
    c.set("b", std::int64_t{2});
    c.set("a", std::int64_t{1});
    const auto items = c.items();
    ASSERT_EQ(items.size(), 2u);
    EXPECT_EQ(items[0].first, "a");
    EXPECT_EQ(items[1].first, "b");
}

TEST(ConfigDeathTest, BadIntegerDies)
{
    Config c;
    c.set("k", std::string("abc"));
    EXPECT_EXIT((void)c.getInt("k"), ::testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ConfigDeathTest, BadBoolDies)
{
    Config c;
    c.set("k", std::string("maybe"));
    EXPECT_EXIT((void)c.getBool("k"), ::testing::ExitedWithCode(1),
                "not a boolean");
}

} // namespace
} // namespace nox
