/** @file Unit tests for logging and error reporting. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/log.hpp"

namespace nox {
namespace {

class LogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogStream(&stream_);
        setLogLevel(LogLevel::Debug);
    }

    void
    TearDown() override
    {
        setLogStream(nullptr);
        setLogLevel(LogLevel::Warn);
    }

    std::ostringstream stream_;
};

TEST_F(LogTest, InformEmitsAtInfoLevel)
{
    inform("hello ", 42);
    EXPECT_EQ(stream_.str(), "info: hello 42\n");
}

TEST_F(LogTest, WarnEmits)
{
    warn("watch out");
    EXPECT_EQ(stream_.str(), "warn: watch out\n");
}

TEST_F(LogTest, VerbosityFiltersInfo)
{
    setLogLevel(LogLevel::Warn);
    inform("quiet");
    EXPECT_TRUE(stream_.str().empty());
    warn("loud");
    EXPECT_EQ(stream_.str(), "warn: loud\n");
}

TEST_F(LogTest, SilentSuppressesWarn)
{
    setLogLevel(LogLevel::Silent);
    warn("nope");
    inform("nope");
    debugLog("nope");
    EXPECT_TRUE(stream_.str().empty());
}

TEST_F(LogTest, DebugOnlyAtDebugLevel)
{
    debugLog("trace me");
    EXPECT_EQ(stream_.str(), "debug: trace me\n");
}

TEST(LogDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "fatal: bad config");
}

TEST(LogDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("invariant"), "panic: invariant");
}

TEST(LogDeathTest, AssertMacroAborts)
{
    EXPECT_DEATH(NOX_ASSERT(1 == 2, "math broke"),
                 "assertion failed");
}

TEST(LogDeathTest, AssertMacroPassesSilently)
{
    NOX_ASSERT(1 == 1);
    SUCCEED();
}

} // namespace
} // namespace nox
