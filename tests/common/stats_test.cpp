/** @file Unit tests for statistics primitives. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace nox {
namespace {

TEST(SampleStats, EmptyIsZero)
{
    SampleStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SampleStats, KnownValues)
{
    SampleStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.sum(), 40.0, 1e-9);
}

TEST(SampleStats, MergeEqualsCombined)
{
    SampleStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SampleStats, MergeWithEmpty)
{
    SampleStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b); // no-op
    EXPECT_EQ(a.count(), 2u);
    b.merge(a); // copy
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleStats, ResetClears)
{
    SampleStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(1.0, 4); // [0,1) [1,2) [2,3) [3,4) + overflow
    h.add(0.5);
    h.add(1.5);
    h.add(1.9);
    h.add(3.99);
    h.add(10.0);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
}

TEST(Histogram, NegativeClampsToZeroBucket)
{
    Histogram h(1.0, 2);
    h.add(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, QuantileMedian)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, QuantileInOverflowReturnsUpperBound)
{
    Histogram h(1.0, 2);
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 2);
    h.add(0.5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(0), 0u);
}

TEST(Histogram, AutoWidenDoublesWidthInsteadOfOverflowing)
{
    Histogram h(1.0, 4, true); // [0,4) initially
    h.add(0.5);
    h.add(1.5);
    h.add(3.5);
    EXPECT_EQ(h.widenings(), 0u);

    // 10.0 needs [0,16): two widenings, width 1 -> 4.
    h.add(10.0);
    EXPECT_EQ(h.widenings(), 2u);
    EXPECT_DOUBLE_EQ(h.bucketWidth(), 4.0);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_EQ(h.count(), 4u);
    // Old buckets merged pairwise twice: [0,4) holds the first three
    // samples, [8,12) holds the new one.
    EXPECT_EQ(h.bucketCount(0), 3u);
    EXPECT_EQ(h.bucketCount(2), 1u);
}

TEST(Histogram, AutoWidenPreservesTotalAndQuantileOrder)
{
    Histogram h(1.0, 8, true);
    for (int i = 0; i < 1000; ++i)
        h.add(static_cast<double>(i));
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.overflowCount(), 0u);
    EXPECT_GT(h.widenings(), 0u);
    // Quantiles stay monotone and in range despite coarser buckets.
    const double p50 = h.percentile(50);
    const double p95 = h.percentile(95);
    const double p99 = h.percentile(99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_NEAR(p50, 500.0, h.bucketWidth());
    EXPECT_NEAR(p99, 990.0, h.bucketWidth());
}

TEST(Histogram, AutoWidenIsDeterministic)
{
    // identicalTo() must keep certifying equal histories when the
    // same samples arrive in the same order (the kernel-equivalence
    // contract covers the auto-widened latency histogram).
    Histogram a(1.0, 16, true), b(1.0, 16, true);
    for (int i = 0; i < 300; ++i) {
        const double x = static_cast<double>((i * 37) % 977);
        a.add(x);
        b.add(x);
    }
    EXPECT_TRUE(a.identicalTo(b));
    EXPECT_EQ(a.widenings(), b.widenings());
}

TEST(Histogram, FixedShapeStillOverflowsWithoutAutoWiden)
{
    Histogram h(1.0, 4);
    h.add(100.0);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.widenings(), 0u);
}

TEST(Histogram, PercentileMatchesQuantile)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i) + 0.5);
    EXPECT_DOUBLE_EQ(h.percentile(50), h.quantile(0.5));
    EXPECT_DOUBLE_EQ(h.percentile(99), h.quantile(0.99));
}

TEST(Histogram, QuantileOfEmptyIsZero)
{
    Histogram h(1.0, 8);
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
}

TEST(Histogram, QuantileClampsOutOfRangeP)
{
    Histogram h(1.0, 4);
    h.add(0.5);
    h.add(2.5);
    EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(Histogram, SingleBucketQuantilesStayInRange)
{
    Histogram h(4.0, 1); // one bucket [0,4) plus overflow
    for (int i = 0; i < 10; ++i)
        h.add(1.0);
    EXPECT_EQ(h.overflowCount(), 0u);
    for (double p : {0.1, 0.5, 0.9}) {
        const double q = h.quantile(p);
        EXPECT_GE(q, 0.0);
        EXPECT_LE(q, 4.0);
    }
    // p=1 interpolates to the bucket's upper edge.
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
    // A quantile landing in the overflow bucket reports the histogram
    // upper bound — never a value the histogram cannot resolve.
    h.add(100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, QuantileMonotoneInP)
{
    Histogram h(1.0, 16);
    for (int i = 0; i < 200; ++i)
        h.add(static_cast<double>((i * 7) % 16));
    double prev = -1.0;
    for (int pct = 0; pct <= 100; pct += 5) {
        const double q = h.percentile(pct);
        EXPECT_GE(q, prev) << "pct " << pct;
        prev = q;
    }
}

TEST(Histogram, QuantileStableAcrossAutoWiden)
{
    // Widening coarsens resolution but must not move an existing
    // quantile by more than one post-widen bucket width, and must
    // never spill samples into the overflow bucket.
    Histogram h(1.0, 8, true);
    for (int i = 0; i < 64; ++i)
        h.add(static_cast<double>(i % 8));
    const double before50 = h.quantile(0.5);
    const double before90 = h.quantile(0.9);
    h.add(100.0); // forces several widenings
    EXPECT_GT(h.widenings(), 0u);
    EXPECT_EQ(h.count(), 65u);
    EXPECT_EQ(h.overflowCount(), 0u);
    const double w = h.bucketWidth();
    EXPECT_NEAR(h.quantile(0.5), before50, w);
    EXPECT_NEAR(h.quantile(0.9), before90, w);
}

TEST(Counter, IncrementAndReset)
{
    Counter c("flits");
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(c.name(), "flits");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Ewma, ConvergesToConstant)
{
    Ewma e(0.25);
    EXPECT_FALSE(e.valid());
    for (int i = 0; i < 100; ++i)
        e.add(3.0);
    EXPECT_TRUE(e.valid());
    EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Ewma, FirstSamplePrimes)
{
    Ewma e(0.5);
    e.add(10.0);
    EXPECT_DOUBLE_EQ(e.value(), 10.0);
    e.add(0.0);
    EXPECT_DOUBLE_EQ(e.value(), 5.0);
}

} // namespace
} // namespace nox
