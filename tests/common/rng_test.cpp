/** @file Unit tests for the xoshiro256** RNG and its distributions. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace nox {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const auto first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.nextBounded(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliRate)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBernoulli(0.0));
        EXPECT_TRUE(r.nextBernoulli(1.0));
    }
}

TEST(Rng, ParetoMinimumRespected)
{
    Rng r(23);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(r.nextPareto(1.4, 8.0), 8.0);
}

TEST(Rng, ParetoMeanMatchesTheory)
{
    // Mean of Pareto(alpha, xmin) is alpha*xmin/(alpha-1) for alpha>1.
    // alpha=1.4 has heavy tails, so use the paper's parameters but a
    // large sample and a loose tolerance.
    Rng r(29);
    double sum = 0.0;
    const int n = 2000000;
    for (int i = 0; i < n; ++i)
        sum += r.nextPareto(1.4, 8.0);
    const double expected = 1.4 * 8.0 / 0.4;
    EXPECT_NEAR(sum / n, expected, expected * 0.10);
}

TEST(Rng, ExponentialMean)
{
    Rng r(31);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.nextExponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GeometricMean)
{
    // Mean number of failures is (1-p)/p.
    Rng r(37);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextGeometric(0.25));
    EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, SplitStreamsAreIndependent)
{
    Rng base(41);
    Rng a = base.split(1);
    Rng b = base.split(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, Mix64IsDeterministicAndSpreads)
{
    EXPECT_EQ(mix64(1), mix64(1));
    EXPECT_NE(mix64(1), mix64(2));
    // Low bits of input affect high bits of output.
    EXPECT_NE(mix64(1) >> 32, mix64(2) >> 32);
}

} // namespace
} // namespace nox
