/** @file Unit tests for the ASCII table printer. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/table.hpp"

namespace nox {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"name", "v"});
    t.addRow({"long-name", "1"});
    t.addRow({"x", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name       v"), std::string::npos);
    EXPECT_NE(out.find("long-name  1"), std::string::npos);
    EXPECT_NE(out.find("x          22"), std::string::npos);
}

TEST(Table, HeaderRuleMatchesWidth)
{
    Table t({"ab"});
    t.addRow({"abcd"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("----"), std::string::npos);
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Table, CountsRowsAndCols)
{
    Table t({"a", "b", "c"});
    EXPECT_EQ(t.numCols(), 3u);
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TableDeathTest, RowArityMismatchAborts)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row arity mismatch");
}

TEST(TableCsv, PlainFields)
{
    Table t({"name", "value"});
    t.addRow({"x", "1.5"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "name,value\nx,1.5\n");
}

TEST(TableCsv, QuotesCommasAndQuotes)
{
    Table t({"a"});
    t.addRow({"hello, world"});
    t.addRow({"say \"hi\""});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(),
              "a\n\"hello, world\"\n\"say \"\"hi\"\"\"\n");
}

TEST(TableCsv, QuotesNewlines)
{
    Table t({"a", "b"});
    t.addRow({"line1\nline2", "z"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"line1\nline2\",z\n");
}

} // namespace
} // namespace nox
