/**
 * @file
 * Offline forensics round trip: a flight-recorder dump written by a
 * live run must reconstruct, from the dump alone, the same per-packet
 * latencies the simulator reported online — and the reconstruction
 * must agree with the latency-provenance observer's aggregates.
 *
 * The ring is sized so the whole run fits (no wrap): every injected
 * packet's PacketCreate and PacketDone survive, so every delivered
 * packet yields a complete, consistent timeline.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "obs/flight_analysis.hpp"
#include "obs/provenance.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

constexpr Cycle kWarmup = 200;
constexpr Cycle kMeasure = 600;
constexpr Cycle kDrainLimit = 20000;
constexpr std::uint64_t kSeed = 0xD07;

class FlightAnalysisRoundTrip : public ::testing::Test
{
  protected:
    std::string path_;

    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "/nox_flight_rt.jsonl";
        std::remove(path_.c_str());
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::unique_ptr<Network>
    buildNetwork(RouterArch arch)
    {
        NetworkParams params;
        params.width = 8;
        params.height = 8;
        params.obs.trace.enabled = true;
        params.obs.trace.capacity = 1u << 20; // no wrap: full history
        params.obs.trace.chromePath = "";
        params.obs.trace.flightPath = path_;
        params.obs.prov.enabled = true;
        auto net = makeNetwork(params, arch);

        static const Mesh mesh(8, 8);
        static const DestinationPattern pat(
            PatternKind::UniformRandom, mesh, 0.2);
        Rng seeder(kSeed);
        for (NodeId n = 0; n < net->numNodes(); ++n) {
            net->addSource(std::make_unique<BernoulliSource>(
                n, pat, 0.06, 3, seeder.next()));
        }
        net->setMeasurementWindow(kWarmup, kWarmup + kMeasure);
        return net;
    }
};

TEST_F(FlightAnalysisRoundTrip, DumpReproducesOnlineLatencies)
{
    for (RouterArch arch :
         {RouterArch::NonSpeculative, RouterArch::Nox}) {
        SCOPED_TRACE(archName(arch));
        auto net = buildNetwork(arch);
        net->run(kWarmup + kMeasure);
        net->setSourcesEnabled(false);
        ASSERT_TRUE(net->drain(kDrainLimit));
        ASSERT_TRUE(net->tracer()->triggerFlightDump("test", {}));

        FlightDump dump;
        std::string error;
        ASSERT_TRUE(loadFlightDump(path_, dump, error)) << error;
        EXPECT_EQ(dump.reason, "test");
        ASSERT_FALSE(dump.events.empty());
        // The ring never wrapped, so the dump spans the whole run.
        EXPECT_LE(dump.firstCycle, 1u);

        const auto timelines = buildTimelines(dump);
        std::uint64_t complete = 0;
        std::uint64_t measured_packets = 0;
        std::uint64_t measured_cycles = 0;
        for (const PacketTimeline &t : timelines) {
            ASSERT_TRUE(t.haveCreate) << "packet " << t.packet;
            if (!t.haveDone)
                continue; // written off / undelivered (none here)
            ++complete;
            // The offline reconstruction must match what the
            // simulator reported online for this exact packet.
            EXPECT_TRUE(t.consistent())
                << "packet " << t.packet << ": reconstructed "
                << t.latency() << " != online "
                << t.reportedLatency;
            // Movement events must exist and be ordered.
            ASSERT_FALSE(t.hops.empty()) << "packet " << t.packet;
            for (std::size_t i = 1; i < t.hops.size(); ++i) {
                EXPECT_LE(t.hops[i - 1].cycle, t.hops[i].cycle)
                    << "packet " << t.packet;
            }
            if (t.createCycle >= kWarmup &&
                t.createCycle < kWarmup + kMeasure) {
                ++measured_packets;
                measured_cycles += t.latency();
            }
        }
        EXPECT_EQ(complete, net->stats().packetsEjected);
        EXPECT_EQ(complete, timelines.size());

        // Cross-check against the online provenance aggregates: the
        // dump-side sum over measured packets reassembles the exact
        // total the span builder conserved online.
        const LatencyProvenance *prov = net->provenance();
        ASSERT_NE(prov, nullptr);
        EXPECT_EQ(prov->conservationViolations(), 0u);
        EXPECT_EQ(measured_packets, prov->total().packets);
        EXPECT_EQ(measured_cycles, prov->total().totalCycles);

        // Slow-packet forensics: top-K is sorted, bounded, and every
        // entry names a cause and a stall window inside the packet's
        // lifetime.
        const auto slow = slowestPackets(dump, timelines, 5);
        ASSERT_LE(slow.size(), 5u);
        ASSERT_FALSE(slow.empty());
        for (std::size_t i = 1; i < slow.size(); ++i)
            EXPECT_GE(slow[i - 1].latency, slow[i].latency);
        for (const SlowPacket &s : slow) {
            EXPECT_FALSE(s.cause.empty());
            EXPECT_LE(s.stallStart, s.stallEnd);
        }

        std::remove(path_.c_str());
    }
}

TEST_F(FlightAnalysisRoundTrip, MissingFileReportsError)
{
    FlightDump dump;
    std::string error;
    EXPECT_FALSE(
        loadFlightDump(path_ + ".does-not-exist", dump, error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace nox
