/**
 * @file
 * Self-profiler and run-telemetry unit tests: phase accounting
 * (scopes sum into the step total, nesting is rejected), the
 * load-imbalance index on hand-built work distributions, the
 * row-stripe partition, the telemetry JSONL heartbeat schema, and
 * the profile JSONL export — the latter two through a real Network.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "obs/profiler.hpp"
#include "obs/telemetry.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

// ---- phase accounting --------------------------------------------

TEST(PhaseProfiler, ScopedPhasesSumIntoStepTotal)
{
    PhaseProfiler prof({}, 4);
    for (int i = 0; i < 50; ++i) {
        prof.beginStep();
        {
            ProfScope s(&prof, SimPhase::TrafficInject);
        }
        {
            ProfScope s(&prof, SimPhase::RouterEvaluate);
        }
        {
            ProfScope s(&prof, SimPhase::Scheduler);
        }
        prof.endStep();
    }
    EXPECT_EQ(prof.steps(), 50u);
    EXPECT_EQ(prof.phase(SimPhase::TrafficInject).enters, 50u);
    EXPECT_EQ(prof.phase(SimPhase::RouterEvaluate).enters, 50u);
    EXPECT_EQ(prof.phase(SimPhase::Scheduler).enters, 50u);
    EXPECT_EQ(prof.phase(SimPhase::LinkRetry).enters, 0u);
    EXPECT_EQ(prof.phase(SimPhase::Checkpoint).enters, 0u);
    // The scopes ran strictly inside the step timer, so their sum
    // cannot exceed it, and coverage is a valid fraction.
    EXPECT_LE(prof.phaseNsSum(), prof.totalNs());
    EXPECT_GE(prof.coverage(), 0.0);
    EXPECT_LE(prof.coverage(), 1.0);
}

TEST(PhaseProfiler, CoverageIsOneWithNoTimedSteps)
{
    PhaseProfiler prof({}, 1);
    EXPECT_EQ(prof.steps(), 0u);
    EXPECT_EQ(prof.totalNs(), 0u);
    EXPECT_DOUBLE_EQ(prof.coverage(), 1.0);
}

TEST(PhaseProfilerDeathTest, NestedPhaseScopesPanic)
{
    PhaseProfiler prof({}, 1);
    prof.beginStep();
    prof.enterPhase(SimPhase::RouterEvaluate);
    EXPECT_DEATH(prof.enterPhase(SimPhase::NicEject), "nest");
}

TEST(PhaseProfilerDeathTest, LeavingAPhaseThatIsNotOpenPanics)
{
    PhaseProfiler prof({}, 1);
    prof.beginStep();
    prof.enterPhase(SimPhase::RouterEvaluate);
    EXPECT_DEATH(prof.leavePhase(SimPhase::NicEject), "not open");
}

TEST(PhaseProfilerDeathTest, OpenPhaseAcrossStepBoundaryPanics)
{
    PhaseProfiler prof({}, 1);
    prof.beginStep();
    prof.enterPhase(SimPhase::Scheduler);
    EXPECT_DEATH(prof.endStep(), "open");
}

TEST(PhaseProfiler, RouterWorkAccumulates)
{
    PhaseProfiler prof({}, 3);
    prof.countEvalsAll();
    prof.countEvalsAll();
    prof.countEval(1);
    prof.recordRouterWork(1, 40, 7);
    EXPECT_EQ(prof.evaluations(0), 2u);
    EXPECT_EQ(prof.evaluations(1), 3u);
    EXPECT_EQ(prof.evaluations(2), 2u);
    const RouterWork w = prof.routerWork(1);
    EXPECT_EQ(w.evaluations, 3u);
    EXPECT_EQ(w.flitsMoved, 40u);
    EXPECT_EQ(w.arbRounds, 7u);
    EXPECT_EQ(prof.routerWork(0).flitsMoved, 0u);
}

// ---- imbalance index ---------------------------------------------

TEST(LoadImbalance, BalancedDistributionIsOne)
{
    // 4 routers, 2 shards, equal work everywhere.
    const std::vector<std::uint64_t> work{10, 10, 10, 10};
    const std::vector<int> shardOf{0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(loadImbalance(work, shardOf, 2), 1.0);
}

TEST(LoadImbalance, AllWorkOnOneShardIsShardCount)
{
    const std::vector<std::uint64_t> work{30, 30, 0, 0};
    const std::vector<int> shardOf{0, 0, 1, 1};
    // Shard loads 60 and 0: max 60, mean 30 -> index 2 (= k shards).
    EXPECT_DOUBLE_EQ(loadImbalance(work, shardOf, 2), 2.0);
}

TEST(LoadImbalance, SkewedDistribution)
{
    const std::vector<std::uint64_t> work{9, 3, 2, 2};
    const std::vector<int> shardOf{0, 1, 2, 3};
    // Shard loads 9,3,2,2: max 9, mean 4 -> 2.25.
    EXPECT_DOUBLE_EQ(loadImbalance(work, shardOf, 4), 2.25);
}

TEST(LoadImbalance, ZeroWorkIsBalancedByConvention)
{
    const std::vector<std::uint64_t> work{0, 0};
    const std::vector<int> shardOf{0, 1};
    EXPECT_DOUBLE_EQ(loadImbalance(work, shardOf, 2), 1.0);
}

TEST(RowStripePartition, CoversEveryRouterInOrder)
{
    // 8x8 mesh into 4 stripes: 2 rows (16 routers) per stripe.
    const std::vector<int> shardOf = rowStripePartition(8, 8, 4);
    ASSERT_EQ(shardOf.size(), 64u);
    std::vector<int> counts(4, 0);
    for (std::size_t r = 0; r < shardOf.size(); ++r) {
        ASSERT_GE(shardOf[r], 0);
        ASSERT_LT(shardOf[r], 4);
        // Stripes are contiguous by row index.
        EXPECT_EQ(shardOf[r], static_cast<int>(r / 8) * 4 / 8);
        counts[static_cast<std::size_t>(shardOf[r])] += 1;
    }
    for (int c : counts)
        EXPECT_EQ(c, 16);
}

TEST(RowStripePartition, UnevenHeightStillCoversAll)
{
    // 5 rows into 2 shards: every router assigned, both shards used.
    const std::vector<int> shardOf = rowStripePartition(4, 5, 2);
    ASSERT_EQ(shardOf.size(), 20u);
    std::vector<int> counts(2, 0);
    for (int s : shardOf) {
        ASSERT_GE(s, 0);
        ASSERT_LT(s, 2);
        counts[static_cast<std::size_t>(s)] += 1;
    }
    EXPECT_GT(counts[0], 0);
    EXPECT_GT(counts[1], 0);
}

// ---- telemetry + profile exports through a real Network ----------

std::unique_ptr<Network>
buildObservedNetwork(const ObsParams &obs)
{
    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.obs = obs;
    auto net = makeNetwork(params, RouterArch::Nox);
    static const Mesh mesh(4, 4);
    static const DestinationPattern pat(PatternKind::UniformRandom,
                                        mesh, 0.2);
    Rng seeder(0xBEA7);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pat, 0.05, 2, seeder.next()));
    }
    return net;
}

/** Every key the telemetry JSONL schema promises. */
const char *const kTelemetryKeys[] = {
    "\"type\": \"telemetry\"", "\"cycle\":",   "\"target_cycles\":",
    "\"wall_s\":",             "\"cps_inst\":", "\"cps_cum\":",
    "\"eta_s\":",              "\"active_routers\":",
    "\"active_nics\":",        "\"inflight\":", "\"injected\":",
    "\"ejected\":",            "\"faults_injected\":",
    "\"retransmissions\":",    "\"arena_live\":",
    "\"arena_growths\":",      "\"peak_rss_kb\":", "\"ckpt_age\":",
};

TEST(RunTelemetry, JsonlHeartbeatSchemaRoundTrip)
{
    const std::string path =
        testing::TempDir() + "nox_telemetry_test.jsonl";
    std::remove(path.c_str());

    ObsParams obs;
    obs.telemetry.enabled = true;
    obs.telemetry.interval = 100;
    obs.telemetry.jsonlPath = path;
    auto net = buildObservedNetwork(obs);
    ASSERT_NE(net->telemetry(), nullptr);
    net->telemetry()->setTargetCycles(1000);
    net->run(1000);

    EXPECT_EQ(net->telemetry()->beats(), 10u);
    const TelemetryRecord &last = net->telemetry()->lastRecord();
    EXPECT_EQ(last.sample.cycle, 1000u);
    EXPECT_GT(last.cumCyclesPerSec, 0.0);
    EXPECT_EQ(last.sample.checkpointAge, -1);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        ++lines;
        for (const char *key : kTelemetryKeys) {
            EXPECT_NE(line.find(key), std::string::npos)
                << "line " << lines << " missing " << key << ": "
                << line;
        }
    }
    EXPECT_EQ(lines, 10u);
    std::remove(path.c_str());
}

TEST(RunTelemetry, FormatLineRendersEta)
{
    TelemetryRecord rec;
    rec.sample.cycle = 50000;
    rec.sample.activeRouters = 16;
    rec.sample.activeNics = 16;
    rec.sample.packetsInFlight = 7;
    rec.instCyclesPerSec = 90000.0;
    rec.cumCyclesPerSec = 88000.0;
    rec.etaSeconds = 12.5;
    const std::string line =
        RunTelemetry::formatLine(rec, 100000);
    EXPECT_NE(line.find("cycle 50000/100000"), std::string::npos)
        << line;
    EXPECT_NE(line.find("eta"), std::string::npos) << line;
    EXPECT_NE(line.find("16r+16n"), std::string::npos) << line;
}

TEST(RunTelemetry, PeakRssIsPositiveOnSupportedPlatforms)
{
#if defined(__unix__) || defined(__APPLE__)
    EXPECT_GT(RunTelemetry::peakRssKb(), 0);
#else
    SUCCEED();
#endif
}

TEST(PhaseProfiler, NetworkProfileJsonlExport)
{
    const std::string path =
        testing::TempDir() + "nox_profile_test.jsonl";
    std::remove(path.c_str());

    ObsParams obs;
    obs.profile.enabled = true;
    obs.profile.jsonlPath = path;
    auto net = buildObservedNetwork(obs);
    ASSERT_NE(net->profiler(), nullptr);
    net->run(500);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(20000));
    net->finishObservability();

    const PhaseProfiler *prof = net->profiler();
    EXPECT_EQ(prof->steps(), net->now());
    // Always-tick: every router evaluated on every stepped cycle.
    for (NodeId r = 0; r < 16; ++r)
        EXPECT_EQ(prof->evaluations(r), net->now());

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line;
    std::size_t headers = 0, phases = 0, routers = 0, imbalances = 0;
    while (std::getline(in, line)) {
        if (line.find("\"type\": \"profile_header\"") !=
            std::string::npos) {
            ++headers;
            EXPECT_NE(line.find("\"steps\":"), std::string::npos);
            EXPECT_NE(line.find("\"coverage\":"),
                      std::string::npos);
            EXPECT_NE(line.find("\"arch\": \"NoX\""),
                      std::string::npos)
                << line;
        } else if (line.find("\"type\": \"phase\"") !=
                   std::string::npos) {
            ++phases;
        } else if (line.find("\"type\": \"router\"") !=
                   std::string::npos) {
            ++routers;
        } else if (line.find("\"type\": \"imbalance\"") !=
                   std::string::npos) {
            ++imbalances;
        }
    }
    EXPECT_EQ(headers, 1u);
    EXPECT_EQ(phases, kNumSimPhases);
    EXPECT_EQ(routers, 16u);
    EXPECT_EQ(imbalances, 2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace nox
