/**
 * @file
 * MetricsSampler tests: window arithmetic, the flit-conservation
 * contract against NetworkStats, JSONL export shape, and the
 * link-utilization heatmap grid.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "obs/metrics.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {
namespace {

MetricsParams
testParams(Cycle interval)
{
    MetricsParams p;
    p.enabled = true;
    p.interval = interval;
    p.jsonlPath = "";
    p.heatmap = false;
    return p;
}

TEST(MetricsSampler, WindowBoundaryArithmetic)
{
    MetricsSampler m(testParams(256), 4);
    EXPECT_FALSE(m.windowEnds(1));
    EXPECT_FALSE(m.windowEnds(255));
    EXPECT_TRUE(m.windowEnds(256));
    EXPECT_FALSE(m.windowEnds(257));
    EXPECT_TRUE(m.windowEnds(512));
}

TEST(MetricsSampler, WindowsAccumulateAndConserveCounts)
{
    MetricsSampler m(testParams(100), 2);
    for (int i = 0; i < 7; ++i)
        m.onFlitEjected(i % 2 == 0); // 4 measured, 3 not
    m.recordWindow(100, {RouterWindowSample{}, RouterWindowSample{}},
                   2, 1);
    m.onFlitEjected(true);
    m.recordWindow(200, {RouterWindowSample{}, RouterWindowSample{}},
                   0, 0);

    ASSERT_EQ(m.numWindows(), 2u);
    EXPECT_EQ(m.window(0).start, 0u);
    EXPECT_EQ(m.window(0).end, 100u);
    EXPECT_EQ(m.window(0).flitsEjected, 7u);
    EXPECT_EQ(m.window(0).flitsEjectedMeasured, 4u);
    EXPECT_EQ(m.window(0).activeRouters, 2);
    EXPECT_EQ(m.window(1).start, 100u);
    EXPECT_EQ(m.window(1).flitsEjected, 1u);
    EXPECT_EQ(m.totalEjected(), 8u);
    EXPECT_EQ(m.totalEjectedMeasured(), 5u);

    // Counts still ejected into a not-yet-closed window are included
    // in the totals, so conservation holds mid-window too.
    m.onFlitEjected(false);
    EXPECT_EQ(m.totalEjected(), 9u);
    EXPECT_TRUE(m.openWindowDirty(250));
    EXPECT_FALSE(m.openWindowDirty(200));
}

/** Seeded 8x8 run with metrics sampling on. */
std::unique_ptr<Network>
buildSampledNetwork(const MetricsParams &metrics)
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.obs.metrics = metrics;
    auto net = makeNetwork(params, RouterArch::Nox);

    static const Mesh mesh(8, 8);
    static const DestinationPattern pat(PatternKind::UniformRandom,
                                        mesh, 0.2);
    Rng seeder(0xF1683);
    for (NodeId n = 0; n < net->numNodes(); ++n) {
        net->addSource(std::make_unique<BernoulliSource>(
            n, pat, 0.1, 2, seeder.next()));
    }
    net->setMeasurementWindow(300, 1200);
    return net;
}

TEST(MetricsConservation, WindowSumsMatchNetworkStats)
{
    // A measurement interval that does NOT divide the run length, so
    // the final window is partial and only flushed by
    // finishObservability().
    auto net = buildSampledNetwork(testParams(256));
    net->run(1200);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(20000));
    net->finishObservability();

    ASSERT_NE(net->metrics(), nullptr);
    const MetricsSampler &m = *net->metrics();
    EXPECT_GT(m.numWindows(), 3u);
    EXPECT_GT(net->stats().flitsEjected, 0u);
    // Conservation: every ejected flit landed in exactly one window.
    EXPECT_EQ(m.totalEjected(), net->stats().flitsEjected);
    EXPECT_EQ(m.totalEjectedMeasured(),
              net->stats().flitsEjectedInWindow);
    // Windows tile the run without gaps or overlap.
    for (std::size_t i = 0; i < m.numWindows(); ++i) {
        const MetricsWindow &w = m.window(i);
        EXPECT_LT(w.start, w.end);
        if (i > 0)
            EXPECT_EQ(w.start, m.window(i - 1).end);
        EXPECT_EQ(w.routers.size(),
                  static_cast<std::size_t>(net->numRouters()));
    }
    EXPECT_EQ(m.window(m.numWindows() - 1).end, net->now());
}

TEST(MetricsConservation, SampledRunSeesLinkTraffic)
{
    auto net = buildSampledNetwork(testParams(256));
    net->run(1200);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(20000));
    net->finishObservability();

    // Uniform-random traffic crosses mesh links, so some router must
    // show non-zero link utilization, and warmup windows must show
    // active routers under the (default) always-tick kernel.
    const MetricsSampler &m = *net->metrics();
    double util = 0.0;
    for (NodeId r = 0; r < net->numRouters(); ++r)
        util += m.meanLinkUtilization(r);
    EXPECT_GT(util, 0.0);
    EXPECT_GT(m.window(0).activeRouters, 0);
}

TEST(MetricsExport, JsonlHasOneObjectPerWindow)
{
    const std::string path =
        ::testing::TempDir() + "metrics_windows.jsonl";
    std::remove(path.c_str());

    MetricsParams p = testParams(128);
    p.jsonlPath = path;
    auto net = buildSampledNetwork(p);
    net->run(600);
    net->setSourcesEnabled(false);
    ASSERT_TRUE(net->drain(20000));
    net->finishObservability();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "metrics JSONL not written";
    std::size_t lines = 0;
    std::string line;
    std::uint64_t summed = 0;
    while (std::getline(in, line)) {
        ++lines;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"flits_ejected\":"), std::string::npos);
        // Re-derive the conservation sum from the exported text.
        const auto key = line.find("\"flits_ejected\":");
        summed += std::stoull(line.substr(key + 16));
    }
    EXPECT_EQ(lines, net->metrics()->numWindows());
    EXPECT_EQ(summed, net->stats().flitsEjected);
    std::remove(path.c_str());
}

TEST(MetricsExport, HeatmapTableIsWidthByHeight)
{
    MetricsSampler m(testParams(64), 64);
    std::vector<RouterWindowSample> samples(64);
    samples[9].linkFlits = 32; // router 9 = (x=1, y=1)
    m.recordWindow(64, samples, 64, 64);

    const Table t = m.heatmapTable(8, 8);
    EXPECT_EQ(t.numRows(), 8u);
    EXPECT_EQ(t.numCols(), 9u); // row label + 8 columns
    EXPECT_DOUBLE_EQ(m.meanLinkUtilization(9), 0.5);
    EXPECT_DOUBLE_EQ(m.meanLinkUtilization(0), 0.0);
}

} // namespace
} // namespace nox
