/**
 * @file
 * TraceRecorder unit tests: ring wraparound, intra-cycle ordering,
 * and the flight-recorder dump — both the unit-level trigger and the
 * end-to-end path where a scheduled one-shot link fault corrupts or
 * strands a packet and the Network dumps the ring automatically.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "noc/network.hpp"
#include "obs/trace_recorder.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace {

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::vector<std::string>
readLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

TEST(TraceRecorder, RingWrapsKeepingNewestEvents)
{
    TraceParams p;
    p.enabled = true;
    p.capacity = 8;
    p.flightPath = "";
    TraceRecorder rec(p);

    for (std::uint64_t i = 0; i < 20; ++i) {
        rec.beginCycle(i);
        rec.record(TraceEventKind::FlitSend, 0, 1, i);
    }
    EXPECT_EQ(rec.totalRecorded(), 20u);
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.capacity(), 8u);

    // Snapshot is oldest-first and holds exactly the last 8 events.
    const auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 8u);
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(snap[i].id, 12u + i);
        EXPECT_EQ(snap[i].cycle, 12u + i);
    }
}

TEST(TraceRecorder, PartiallyFilledRingSnapshotsInOrder)
{
    TraceParams p;
    p.enabled = true;
    p.capacity = 64;
    p.flightPath = "";
    TraceRecorder rec(p);

    rec.beginCycle(3);
    rec.record(TraceEventKind::FlitInject, 5, kPortLocal, 100, 0, true);
    rec.record(TraceEventKind::FlitSend, 5, kPortEast, 100);
    rec.record(TraceEventKind::Arbitrate, 5, kPortEast, 1, 0b11);
    EXPECT_EQ(rec.size(), 3u);

    // Intra-cycle order is insertion order — the ring never reorders.
    const auto snap = rec.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].kind, TraceEventKind::FlitInject);
    EXPECT_TRUE(snap[0].nic);
    EXPECT_EQ(snap[1].kind, TraceEventKind::FlitSend);
    EXPECT_FALSE(snap[1].nic);
    EXPECT_EQ(snap[2].kind, TraceEventKind::Arbitrate);
    EXPECT_EQ(snap[2].arg, 0b11u);
    for (const auto &e : snap)
        EXPECT_EQ(e.cycle, 3u);
}

TEST(TraceRecorder, EveryKindHasAName)
{
    for (int k = 0; k <= static_cast<int>(TraceEventKind::SchedRetire);
         ++k) {
        const char *name =
            traceEventKindName(static_cast<TraceEventKind>(k));
        ASSERT_NE(name, nullptr);
        EXPECT_STRNE(name, "?") << "unnamed TraceEventKind " << k;
    }
}

TEST(TraceRecorder, FlightDumpWritesWholeRingOnceSpanningHistory)
{
    const std::string path = tempPath("flight_unit.jsonl");
    std::remove(path.c_str());

    TraceParams p;
    p.enabled = true;
    p.capacity = 1u << 12;
    p.flightPath = path;
    TraceRecorder rec(p);

    // One event per cycle across 2000 cycles: the dump must cover at
    // least the last 1000 cycles of history around the trigger.
    for (Cycle c = 0; c < 2000; ++c) {
        rec.beginCycle(c);
        rec.record(TraceEventKind::FlitSend, 7, kPortEast, c);
    }
    EXPECT_FALSE(rec.flightDumped());
    EXPECT_TRUE(rec.triggerFlightDump("test-reason", {7, 12}));
    EXPECT_TRUE(rec.flightDumped());
    EXPECT_EQ(rec.flightReason(), "test-reason");

    // Second trigger latches nothing and writes nothing new.
    EXPECT_FALSE(rec.triggerFlightDump("other-reason", {}));
    EXPECT_EQ(rec.flightReason(), "test-reason");

    const auto lines = readLines(path);
    // Header + one line per held event.
    ASSERT_EQ(lines.size(), rec.size() + 1);
    EXPECT_NE(lines[0].find("\"flight_recorder\":\"test-reason\""),
              std::string::npos);
    EXPECT_NE(lines[0].find("\"implicated\":[7,12]"),
              std::string::npos);

    const auto snap = rec.snapshot();
    ASSERT_FALSE(snap.empty());
    EXPECT_GE(snap.back().cycle - snap.front().cycle, 1000u)
        << "flight dump covers too little history";
    std::remove(path.c_str());
}

TEST(TraceRecorder, EmptyFlightPathLatchesWithoutWriting)
{
    TraceParams p;
    p.enabled = true;
    p.capacity = 16;
    p.flightPath = "";
    TraceRecorder rec(p);
    rec.beginCycle(1);
    rec.record(TraceEventKind::FlitSend, 0, 0, 1);
    EXPECT_FALSE(rec.triggerFlightDump("no-file", {0}));
    EXPECT_TRUE(rec.flightDumped());
    EXPECT_EQ(rec.flightReason(), "no-file");
}

/** Harness: 8x8 mesh with tracing plus a raw (no-recovery) injector
 *  so scheduled one-shot faults corrupt or strand traffic. */
std::unique_ptr<Network>
buildFaultyTracedNetwork(const std::string &flight_path)
{
    NetworkParams params;
    params.width = 8;
    params.height = 8;
    params.faults.enabled = true;
    params.faults.protect = false; // raw fabric: faults propagate
    params.obs.trace.enabled = true;
    params.obs.trace.flightPath = flight_path;
    return makeNetwork(params, RouterArch::Nox);
}

TEST(FlightRecorder, CorruptedDeliveryFromOneShotFaultDumpsRing)
{
    const std::string path = tempPath("flight_escape.jsonl");
    std::remove(path.c_str());
    auto net = buildFaultyTracedNetwork(path);

    // A single-flit packet 0 -> 1 crosses exactly one mesh link and
    // arrives at router 1's west input; flip a payload bit there.
    // With recovery off the corruption rides to the destination NIC,
    // whose ejection-port decode integrity check flags it first
    // ("decode-fault" latches the dump); the sink's end-to-end check
    // then accounts the escape (its own trigger is already latched).
    net->faultInjector()->scheduleOneShot(FaultKind::BitFlip, 0, 1,
                                          kPortWest, 0x8);
    net->injectPacket(0, 1, 1, net->now(), TrafficClass::Synthetic);
    EXPECT_TRUE(net->drain(1000));

    EXPECT_EQ(net->stats().faults.decodeMismatches, 1u);
    EXPECT_EQ(net->stats().faults.corruptedEscapes, 1u);
    ASSERT_NE(net->tracer(), nullptr);
    EXPECT_TRUE(net->tracer()->flightDumped());
    EXPECT_EQ(net->tracer()->flightReason(), "decode-fault");

    const auto lines = readLines(path);
    ASSERT_GE(lines.size(), 2u);
    EXPECT_NE(lines[0].find("decode-fault"), std::string::npos);
    EXPECT_NE(lines[0].find("\"implicated\":[1]"), std::string::npos);
    // The ring captured the injected fault and its detection.
    bool saw_fault = false, saw_inject = false;
    for (const auto &l : lines) {
        saw_fault |= l.find("decode_fault") != std::string::npos;
        saw_inject |= l.find("fault_inject") != std::string::npos;
    }
    EXPECT_TRUE(saw_fault);
    EXPECT_TRUE(saw_inject);
    std::remove(path.c_str());
}

TEST(FlightRecorder, DrainTimeoutFromOneShotDropDumpsRing)
{
    const std::string path = tempPath("flight_drain.jsonl");
    std::remove(path.c_str());
    auto net = buildFaultyTracedNetwork(path);

    // Drop a packet's only flit on the wire: with recovery off it is
    // stranded forever, so the drain times out and the network dumps
    // the flight ring.
    net->faultInjector()->scheduleOneShot(FaultKind::Drop, 0, 1,
                                          kPortWest);
    net->injectPacket(0, 1, 1, net->now(), TrafficClass::Synthetic);
    EXPECT_FALSE(net->drain(500));

    ASSERT_NE(net->tracer(), nullptr);
    EXPECT_TRUE(net->tracer()->flightDumped());
    EXPECT_EQ(net->tracer()->flightReason(), "drain-timeout");
    const auto lines = readLines(path);
    ASSERT_GE(lines.size(), 1u);
    EXPECT_NE(lines[0].find("drain-timeout"), std::string::npos);
    std::remove(path.c_str());
}

TEST(ChromeTrace, ExportsValidShapedJson)
{
    const std::string path = tempPath("chrome_trace.json");
    std::remove(path.c_str());

    NetworkParams params;
    params.width = 4;
    params.height = 4;
    params.obs.trace.enabled = true;
    params.obs.trace.flightPath = "";
    params.obs.trace.chromePath = path;
    auto net = makeNetwork(params, RouterArch::Nox);
    net->injectPacket(0, 15, 3, net->now(), TrafficClass::Synthetic);
    EXPECT_TRUE(net->drain(500));
    net->finishObservability();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "chrome trace not written";
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string json = ss.str();
    // Chrome trace_event envelope with metadata and instant events.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
    std::remove(path.c_str());
}

} // namespace
} // namespace nox
