/**
 * @file
 * Unit tests for the digest primitives and the ledger file format:
 * hash properties (absence sentinel, order sensitivity), stride
 * folding and component attribution, JSONL round-trip with fold
 * re-verification, and the stride/ledger comparison semantics diff
 * and bisect rely on (first divergence, prefix tolerance, alignment
 * and interval guards).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/digest.hpp"

namespace nox {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t>
bytes(std::initializer_list<int> vals)
{
    std::vector<std::uint8_t> b;
    for (int v : vals)
        b.push_back(static_cast<std::uint8_t>(v));
    return b;
}

TEST(DigestHashTest, NeverReturnsAbsenceSentinel)
{
    // 0 is reserved for "component absent"; real digests remap it.
    const auto empty = digestBytes(nullptr, 0);
    EXPECT_NE(empty, 0u);
    for (int v = 0; v < 64; ++v) {
        const auto b = bytes({v});
        EXPECT_NE(digestBytes(b.data(), b.size()), 0u);
    }
}

TEST(DigestHashTest, SensitiveToEveryByteAndToLength)
{
    const auto a = bytes({1, 2, 3, 4});
    const auto h = digestBytes(a.data(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        auto mutated = a;
        mutated[i] ^= 1;
        EXPECT_NE(digestBytes(mutated.data(), mutated.size()), h)
            << "bit flip in byte " << i << " not detected";
    }
    EXPECT_NE(digestBytes(a.data(), a.size() - 1), h);
    // And deterministic: same bytes, same hash.
    EXPECT_EQ(digestBytes(a.data(), a.size()), h);
}

TEST(DigestHashTest, MixIsOrderSensitive)
{
    const DigestHash h0 = 0x1234;
    EXPECT_NE(digestMix(digestMix(h0, 1), 2),
              digestMix(digestMix(h0, 2), 1));
    EXPECT_NE(digestMix(h0, 1), h0);
}

DigestStride
makeStride(Cycle cycle)
{
    DigestStride s;
    s.cycle = cycle;
    s.global = 0x1111;
    s.sources = 0x2222;
    s.faults = 0; // absent
    s.transport = 0x4444;
    s.routers = {10, 20, 30, 40};
    s.nics = {50, 60, 70, 80};
    return s;
}

TEST(DigestStrideTest, FoldCoversEveryComponent)
{
    const DigestStride base = makeStride(100);
    const DigestHash fold = base.fold();
    EXPECT_NE(fold, 0u);

    auto check = [&](auto mutate, const char *what) {
        DigestStride m = base;
        mutate(m);
        EXPECT_NE(m.fold(), fold) << what << " not folded";
    };
    check([](DigestStride &s) { s.cycle = 101; }, "cycle");
    check([](DigestStride &s) { s.global ^= 1; }, "global");
    check([](DigestStride &s) { s.sources ^= 1; }, "sources");
    check([](DigestStride &s) { s.faults = 0x3333; }, "faults");
    check([](DigestStride &s) { s.transport ^= 1; }, "transport");
    check([](DigestStride &s) { s.routers[2] ^= 1; }, "router");
    check([](DigestStride &s) { s.nics[3] ^= 1; }, "nic");
    check([](DigestStride &s) { s.routers.pop_back(); },
          "router count");
}

TEST(DigestStrideTest, DivergentComponentsNamesExactOffenders)
{
    const DigestStride a = makeStride(100);
    DigestStride b = a;
    EXPECT_TRUE(divergentComponents(a, b).empty());

    b.global ^= 1;
    b.routers[2] ^= 1;
    b.nics[0] ^= 1;
    const std::vector<std::string> names = divergentComponents(a, b);
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "global");
    EXPECT_EQ(names[1], "router:2");
    EXPECT_EQ(names[2], "nic:0");
}

TEST(DigestLedgerTest, DueAtIntervalBoundariesOnly)
{
    DigestParams params;
    params.enabled = true;
    params.interval = 250;
    DigestLedger ledger(params);
    EXPECT_FALSE(ledger.due(0)); // construction state is not a stride
    EXPECT_FALSE(ledger.due(1));
    EXPECT_FALSE(ledger.due(249));
    EXPECT_TRUE(ledger.due(250));
    EXPECT_FALSE(ledger.due(251));
    EXPECT_TRUE(ledger.due(500));
}

TEST(DigestLedgerTest, RecordsInMemoryWithoutFile)
{
    DigestParams params;
    params.enabled = true;
    params.interval = 10;
    DigestLedger ledger(params);
    EXPECT_EQ(ledger.strideCount(), 0u);
    EXPECT_EQ(ledger.lastDigestCycle(), -1);

    ledger.record(makeStride(10));
    ledger.record(makeStride(20));
    EXPECT_EQ(ledger.strideCount(), 2u);
    EXPECT_EQ(ledger.lastDigestCycle(), 20);
    EXPECT_EQ(ledger.strides()[0].cycle, 10u);
}

class DigestLedgerFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = fs::temp_directory_path() / "nox-digest-test";
        fs::create_directories(dir_);
        path_ = (dir_ / "ledger.jsonl").string();
        std::remove(path_.c_str());
    }
    void TearDown() override { fs::remove_all(dir_); }

    fs::path dir_;
    std::string path_;
};

TEST_F(DigestLedgerFileTest, JsonlRoundtrip)
{
    DigestParams params;
    params.enabled = true;
    params.interval = 100;
    params.jsonlPath = path_;
    {
        DigestLedger ledger(params);
        ledger.writeHeader("arch=test sched=alwaystick");
        ledger.record(makeStride(100));
        DigestStride second = makeStride(200);
        second.faults = 0x5555; // present this time
        ledger.record(second);
    }

    LedgerFile file;
    std::string err;
    ASSERT_TRUE(loadDigestLedger(path_, &file, &err)) << err;
    EXPECT_EQ(file.fingerprint, "arch=test sched=alwaystick");
    EXPECT_EQ(file.interval, 100u);
    ASSERT_EQ(file.strides.size(), 2u);
    EXPECT_EQ(file.strides[0], makeStride(100));
    EXPECT_EQ(file.strides[1].faults, 0x5555u);
    EXPECT_EQ(file.strides[1].cycle, 200u);
}

TEST_F(DigestLedgerFileTest, CorruptedFoldRejected)
{
    DigestParams params;
    params.enabled = true;
    params.interval = 100;
    params.jsonlPath = path_;
    {
        DigestLedger ledger(params);
        ledger.writeHeader("fp");
        ledger.record(makeStride(100));
    }
    // Flip one hex digit of the recorded global digest; the stored
    // fold no longer matches, so the ledger must refuse to load.
    std::ifstream in(path_);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    const std::size_t pos = all.find("1111");
    ASSERT_NE(pos, std::string::npos);
    all[pos] = '2';
    std::ofstream(path_, std::ios::trunc) << all;

    LedgerFile file;
    std::string err;
    EXPECT_FALSE(loadDigestLedger(path_, &file, &err));
    EXPECT_NE(err.find("fold"), std::string::npos) << err;
}

TEST_F(DigestLedgerFileTest, MissingFileReportsError)
{
    LedgerFile file;
    std::string err;
    EXPECT_FALSE(loadDigestLedger(
        (dir_ / "does-not-exist.jsonl").string(), &file, &err));
    EXPECT_FALSE(err.empty());
}

TEST_F(DigestLedgerFileTest, ForeignRecordTypesTolerated)
{
    // Ledgers may share a JSONL stream with other observers; lines of
    // other types are skipped, not errors.
    DigestParams params;
    params.enabled = true;
    params.interval = 100;
    params.jsonlPath = path_;
    {
        DigestLedger ledger(params);
        ledger.writeHeader("fp");
        ledger.record(makeStride(100));
    }
    std::ofstream(path_, std::ios::app)
        << "{\"type\": \"heartbeat\", \"cycle\": 150}\n";

    LedgerFile file;
    std::string err;
    ASSERT_TRUE(loadDigestLedger(path_, &file, &err)) << err;
    EXPECT_EQ(file.strides.size(), 1u);
}

std::vector<DigestStride>
strideSeq(Cycle interval, std::size_t n)
{
    std::vector<DigestStride> v;
    for (std::size_t i = 1; i <= n; ++i)
        v.push_back(makeStride(interval * static_cast<Cycle>(i)));
    return v;
}

TEST(CompareStridesTest, IdenticalAndPrefixAgree)
{
    const auto a = strideSeq(100, 5);
    auto b = a;
    DigestDivergence d = compareStrides(a, b);
    EXPECT_TRUE(d.comparable);
    EXPECT_FALSE(d.diverged);
    EXPECT_EQ(d.stridesCompared, 5u);

    // A shorter run is a prefix, not a divergence.
    b.pop_back();
    d = compareStrides(a, b);
    EXPECT_TRUE(d.comparable);
    EXPECT_FALSE(d.diverged);
    EXPECT_EQ(d.stridesCompared, 4u);
}

TEST(CompareStridesTest, FirstDivergenceAttributed)
{
    const auto a = strideSeq(100, 5);
    auto b = a;
    b[2].routers[1] ^= 1; // diverge at cycle 300
    b[3].global ^= 1;     // later damage must not mask the first
    const DigestDivergence d = compareStrides(a, b);
    ASSERT_TRUE(d.comparable);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.cycle, 300u);
    EXPECT_EQ(d.lastAgreeCycle, 200);
    ASSERT_EQ(d.components.size(), 1u);
    EXPECT_EQ(d.components[0], "router:1");
}

TEST(CompareStridesTest, DivergenceAtFirstStrideHasNoAgreeCycle)
{
    const auto a = strideSeq(100, 2);
    auto b = a;
    b[0].sources ^= 1;
    const DigestDivergence d = compareStrides(a, b);
    ASSERT_TRUE(d.diverged);
    EXPECT_EQ(d.cycle, 100u);
    EXPECT_EQ(d.lastAgreeCycle, -1);
}

TEST(CompareStridesTest, CycleMisalignmentIsNotComparable)
{
    const auto a = strideSeq(100, 3);
    const auto b = strideSeq(200, 3);
    const DigestDivergence d = compareStrides(a, b);
    EXPECT_FALSE(d.comparable);
    EXPECT_FALSE(d.error.empty());
}

TEST(CompareLedgersTest, IntervalMismatchIsNotComparable)
{
    LedgerFile a, b;
    a.interval = 100;
    b.interval = 200;
    a.strides = strideSeq(100, 2);
    b.strides = strideSeq(200, 2);
    const DigestDivergence d = compareLedgers(a, b);
    EXPECT_FALSE(d.comparable);
    EXPECT_NE(d.error.find("interval"), std::string::npos)
        << d.error;
}

TEST(CompareLedgersTest, FingerprintDifferenceTolerated)
{
    // Kernel-A vs kernel-B ledgers legitimately differ in their
    // fingerprints (sched=...); comparison is still meaningful.
    LedgerFile a, b;
    a.fingerprint = "sched=alwaystick";
    b.fingerprint = "sched=activity";
    a.interval = b.interval = 100;
    a.strides = b.strides = strideSeq(100, 3);
    const DigestDivergence d = compareLedgers(a, b);
    EXPECT_TRUE(d.comparable);
    EXPECT_FALSE(d.diverged);
}

} // namespace
} // namespace nox
