/** @file Unit tests for flit representations and XOR coding. */

#include <gtest/gtest.h>

#include "noc/flit.hpp"

namespace nox {
namespace {

FlitDesc
makeFlit(PacketId packet, std::uint32_t seq = 0,
         std::uint32_t size = 1)
{
    FlitDesc d;
    d.uid = flitUid(packet, seq);
    d.packet = packet;
    d.seq = seq;
    d.packetSize = size;
    d.src = 0;
    d.dest = 1;
    d.payload = expectedPayload(packet, seq);
    return d;
}

TEST(Flit, HeadTailFlags)
{
    EXPECT_TRUE(makeFlit(1, 0, 1).isHead());
    EXPECT_TRUE(makeFlit(1, 0, 1).isTail());
    EXPECT_FALSE(makeFlit(1, 0, 1).isMultiFlit());

    const FlitDesc head = makeFlit(2, 0, 3);
    const FlitDesc body = makeFlit(2, 1, 3);
    const FlitDesc tail = makeFlit(2, 2, 3);
    EXPECT_TRUE(head.isHead());
    EXPECT_FALSE(head.isTail());
    EXPECT_TRUE(head.isMultiFlit());
    EXPECT_FALSE(body.isHead());
    EXPECT_FALSE(body.isTail());
    EXPECT_FALSE(tail.isHead());
    EXPECT_TRUE(tail.isTail());
}

TEST(Flit, UidsUniquePerPacketAndSeq)
{
    EXPECT_NE(flitUid(1, 0), flitUid(1, 1));
    EXPECT_NE(flitUid(1, 0), flitUid(2, 0));
    EXPECT_EQ(flitUid(3, 2), flitUid(3, 2));
}

TEST(Flit, ExpectedPayloadDistinct)
{
    EXPECT_NE(expectedPayload(1, 0), expectedPayload(1, 1));
    EXPECT_NE(expectedPayload(1, 0), expectedPayload(2, 0));
}

TEST(WireFlit, FromDescIsUncoded)
{
    const FlitDesc d = makeFlit(1);
    const WireFlit w = WireFlit::fromDesc(d);
    EXPECT_FALSE(w.encoded);
    EXPECT_EQ(w.fanin(), 1u);
    EXPECT_EQ(w.payload, d.payload);
}

TEST(WireFlit, CombineTwoIsEncodedXor)
{
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const WireFlit w = WireFlit::combine({a, b});
    EXPECT_TRUE(w.encoded);
    EXPECT_EQ(w.fanin(), 2u);
    EXPECT_EQ(w.payload, a.payload ^ b.payload);
}

TEST(WireFlit, CombineSingleIsUncoded)
{
    const WireFlit w = WireFlit::combine({makeFlit(1)});
    EXPECT_FALSE(w.encoded);
}

TEST(Decode, PaperProperty)
{
    // (A ^ B ^ C) ^ (B ^ C) == A — the paper's §2.2 identity.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);
    const WireFlit e1 = WireFlit::combine({a, b, c});
    const WireFlit e2 = WireFlit::combine({b, c});
    const FlitDesc got = decodeDiff(e1, e2);
    EXPECT_EQ(got.packet, a.packet);
    EXPECT_EQ(got.payload, a.payload);
}

TEST(Decode, FinalPairAgainstUncoded)
{
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);
    const WireFlit e2 = WireFlit::combine({b, c});
    const WireFlit e3 = WireFlit::fromDesc(c);
    const FlitDesc got = decodeDiff(e2, e3);
    EXPECT_EQ(got.packet, b.packet);
}

TEST(Decode, FiveWayChainRecoversAllInOrder)
{
    // A full 5-input collision chain, decoded pairwise.
    std::vector<FlitDesc> flits;
    for (PacketId p = 1; p <= 5; ++p)
        flits.push_back(makeFlit(p));

    std::vector<WireFlit> chain;
    for (std::size_t i = 0; i < flits.size(); ++i) {
        chain.push_back(WireFlit::combine(
            {flits.begin() + static_cast<long>(i), flits.end()}));
    }

    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        const FlitDesc got = decodeDiff(chain[i], chain[i + 1]);
        EXPECT_EQ(got.packet, flits[i].packet);
        EXPECT_EQ(got.payload, flits[i].payload);
    }
    EXPECT_FALSE(chain.back().encoded);
}

TEST(DecodeDeathTest, MismatchedSizesAbort)
{
    const WireFlit e1 =
        WireFlit::combine({makeFlit(1), makeFlit(2), makeFlit(3)});
    const WireFlit e3 = WireFlit::fromDesc(makeFlit(3));
    EXPECT_DEATH((void)decodeDiff(e1, e3), "decode requires");
}

TEST(DecodeDeathTest, CorruptedPayloadDetected)
{
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    WireFlit e1 = WireFlit::combine({a, b});
    e1.payload ^= 0x1; // single bit flip on the link
    const WireFlit e2 = WireFlit::fromDesc(b);
    EXPECT_DEATH((void)decodeDiff(e1, e2), "payload mismatch");
}

} // namespace
} // namespace nox
