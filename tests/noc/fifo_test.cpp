/** @file Unit tests for the bounded flit FIFO. */

#include <gtest/gtest.h>

#include "noc/fifo.hpp"

namespace nox {
namespace {

WireFlit
wf(PacketId p)
{
    FlitDesc d;
    d.uid = flitUid(p, 0);
    d.packet = p;
    d.payload = expectedPayload(p, 0);
    return WireFlit::fromDesc(d);
}

TEST(FlitFifo, StartsEmpty)
{
    FlitFifo f(4);
    EXPECT_TRUE(f.empty());
    EXPECT_FALSE(f.full());
    EXPECT_EQ(f.size(), 0u);
    EXPECT_EQ(f.capacity(), 4u);
}

TEST(FlitFifo, FifoOrder)
{
    FlitFifo f(4);
    f.push(wf(1));
    f.push(wf(2));
    f.push(wf(3));
    EXPECT_EQ(f.pop().parts.front().packet, 1u);
    EXPECT_EQ(f.pop().parts.front().packet, 2u);
    EXPECT_EQ(f.pop().parts.front().packet, 3u);
    EXPECT_TRUE(f.empty());
}

TEST(FlitFifo, FullAtCapacity)
{
    FlitFifo f(2);
    f.push(wf(1));
    EXPECT_FALSE(f.full());
    f.push(wf(2));
    EXPECT_TRUE(f.full());
}

TEST(FlitFifo, FrontDoesNotConsume)
{
    FlitFifo f(2);
    f.push(wf(9));
    EXPECT_EQ(f.front().parts.front().packet, 9u);
    EXPECT_EQ(f.size(), 1u);
}

TEST(FlitFifo, WrapsAroundManyTimes)
{
    FlitFifo f(3);
    for (PacketId p = 1; p <= 100; ++p) {
        f.push(wf(p));
        EXPECT_EQ(f.pop().parts.front().packet, p);
    }
}

TEST(FlitFifoDeathTest, OverflowAborts)
{
    FlitFifo f(1);
    f.push(wf(1));
    EXPECT_DEATH(f.push(wf(2)), "overflow");
}

TEST(FlitFifoDeathTest, UnderflowAborts)
{
    FlitFifo f(1);
    EXPECT_DEATH((void)f.pop(), "empty");
    EXPECT_DEATH((void)f.front(), "empty");
}

} // namespace
} // namespace nox
