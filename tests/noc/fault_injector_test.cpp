/**
 * @file
 * Unit tests for deterministic link-fault injection: hash-keyed draw
 * determinism and order-independence, one-shot targeted faults, the
 * drop-beats-bitflip rule, counter/log bookkeeping, link CRC
 * properties, and fault_* config parsing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/config.hpp"
#include "noc/fault_injector.hpp"
#include "noc/flit.hpp"

namespace nox {
namespace {

FaultParams
rateParams(double bitflip, double drop, double credit,
           std::uint64_t seed = 0xFA01)
{
    FaultParams p;
    p.enabled = true;
    p.bitflipRate = bitflip;
    p.dropRate = drop;
    p.creditLossRate = credit;
    p.seed = seed;
    return p;
}

/** One recorded draw outcome, for schedule comparison. */
struct DrawRecord
{
    std::uint64_t flipMask;
    bool dropped;
    bool creditLost;

    bool
    operator==(const DrawRecord &o) const
    {
        return flipMask == o.flipMask && dropped == o.dropped &&
               creditLost == o.creditLost;
    }
};

std::vector<DrawRecord>
sweepSchedule(FaultInjector &inj)
{
    std::vector<DrawRecord> out;
    for (Cycle t = 0; t < 200; ++t) {
        inj.beginCycle(t);
        for (NodeId r = 0; r < 4; ++r) {
            for (int p = 0; p < 5; ++p) {
                const FlitFaults f = inj.drawFlitFaults(r, p);
                const bool c = inj.drawCreditLoss(r, p, 0);
                out.push_back({f.flipMask, f.dropped, c});
            }
        }
    }
    return out;
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    FaultInjector a(rateParams(0.1, 0.05, 0.05));
    FaultInjector b(rateParams(0.1, 0.05, 0.05));
    EXPECT_EQ(sweepSchedule(a), sweepSchedule(b));

    // The fault logs agree event-for-event too.
    ASSERT_EQ(a.log().size(), b.log().size());
    EXPECT_GT(a.log().size(), 0u);
    for (std::size_t i = 0; i < a.log().size(); ++i) {
        EXPECT_EQ(a.log()[i].cycle, b.log()[i].cycle);
        EXPECT_EQ(a.log()[i].kind, b.log()[i].kind);
        EXPECT_EQ(a.log()[i].router, b.log()[i].router);
        EXPECT_EQ(a.log()[i].port, b.log()[i].port);
        EXPECT_EQ(a.log()[i].flipMask, b.log()[i].flipMask);
    }
    EXPECT_TRUE(a.stats().identicalTo(b.stats()));
}

TEST(FaultInjector, DifferentSeedsDifferentSchedule)
{
    FaultInjector a(rateParams(0.1, 0.05, 0.05, 1));
    FaultInjector b(rateParams(0.1, 0.05, 0.05, 2));
    EXPECT_NE(sweepSchedule(a), sweepSchedule(b));
}

TEST(FaultInjector, DrawsAreOrderIndependent)
{
    // The draw is a pure function of the event identity — the
    // property that makes the schedule identical across scheduling
    // kernels, which evaluate routers in different orders.
    FaultInjector a(rateParams(0.3, 0.2, 0.2));
    FaultInjector b(rateParams(0.3, 0.2, 0.2));
    a.beginCycle(7);
    b.beginCycle(7);

    const FlitFaults a01 = a.drawFlitFaults(0, 1);
    const FlitFaults a23 = a.drawFlitFaults(2, 3);
    const FlitFaults b23 = b.drawFlitFaults(2, 3); // reversed order
    const FlitFaults b01 = b.drawFlitFaults(0, 1);

    EXPECT_EQ(a01.flipMask, b01.flipMask);
    EXPECT_EQ(a01.dropped, b01.dropped);
    EXPECT_EQ(a23.flipMask, b23.flipMask);
    EXPECT_EQ(a23.dropped, b23.dropped);
}

TEST(FaultInjector, BitflipFlipsExactlyOneBit)
{
    FaultInjector inj(rateParams(1.0, 0.0, 0.0));
    for (Cycle t = 0; t < 64; ++t) {
        inj.beginCycle(t);
        const FlitFaults f = inj.drawFlitFaults(1, 2);
        EXPECT_FALSE(f.dropped);
        ASSERT_NE(f.flipMask, 0u);
        // Power of two: exactly one payload bit upset per event.
        EXPECT_EQ(f.flipMask & (f.flipMask - 1), 0u);
    }
    EXPECT_EQ(inj.stats().bitflipsInjected, 64u);
    EXPECT_EQ(inj.stats().faultsInjected, 64u);
}

TEST(FaultInjector, DropBeatsBitflip)
{
    // With both rates certain, the flit vanishes — there are no bits
    // left to corrupt, and only the drop is accounted.
    FaultInjector inj(rateParams(1.0, 1.0, 0.0));
    inj.beginCycle(0);
    const FlitFaults f = inj.drawFlitFaults(0, 0);
    EXPECT_TRUE(f.dropped);
    EXPECT_EQ(f.flipMask, 0u);
    EXPECT_EQ(inj.stats().dropsInjected, 1u);
    EXPECT_EQ(inj.stats().bitflipsInjected, 0u);
}

TEST(FaultInjector, OneShotFiresOnceAtOrAfterCycle)
{
    FaultParams p;
    p.enabled = true; // no rates: only targeted faults fire
    FaultInjector inj(p);
    inj.scheduleOneShot(FaultKind::Drop, 5, 2, 3);
    EXPECT_EQ(inj.pendingOneShots(), 1u);

    inj.beginCycle(3);
    EXPECT_FALSE(inj.drawFlitFaults(2, 3).dropped); // too early
    inj.beginCycle(5);
    EXPECT_FALSE(inj.drawFlitFaults(2, 0).dropped); // wrong port
    EXPECT_FALSE(inj.drawFlitFaults(1, 3).dropped); // wrong router
    EXPECT_TRUE(inj.drawFlitFaults(2, 3).dropped);  // fires
    EXPECT_EQ(inj.pendingOneShots(), 0u);
    EXPECT_FALSE(inj.drawFlitFaults(2, 3).dropped); // consumed
    EXPECT_EQ(inj.stats().dropsInjected, 1u);
}

TEST(FaultInjector, OneShotBitflipMaskDefaultsToBitZero)
{
    FaultParams p;
    p.enabled = true;
    FaultInjector inj(p);
    inj.scheduleOneShot(FaultKind::BitFlip, 0, 1, 1);
    inj.scheduleOneShot(FaultKind::BitFlip, 0, 1, 2, 0xF0ULL);
    inj.beginCycle(0);
    EXPECT_EQ(inj.drawFlitFaults(1, 1).flipMask, 1u);
    EXPECT_EQ(inj.drawFlitFaults(1, 2).flipMask, 0xF0u);
}

TEST(FaultInjector, OneShotCreditLoss)
{
    FaultParams p;
    p.enabled = true;
    FaultInjector inj(p);
    inj.scheduleOneShot(FaultKind::CreditLoss, 2, 0, kPortEast);
    inj.beginCycle(2);
    EXPECT_FALSE(inj.drawCreditLoss(0, kPortWest));
    EXPECT_TRUE(inj.drawCreditLoss(0, kPortEast));
    EXPECT_FALSE(inj.drawCreditLoss(0, kPortEast));
    EXPECT_EQ(inj.stats().creditsLostInjected, 1u);
}

TEST(FaultInjector, BindStatsRedirectsCounters)
{
    FaultStats external;
    FaultInjector inj(rateParams(1.0, 0.0, 0.0));
    inj.bindStats(&external);
    inj.beginCycle(0);
    inj.drawFlitFaults(0, 0);
    inj.onCorruptionRejected();
    inj.onRetransmission();
    EXPECT_EQ(external.faultsInjected, 1u);
    EXPECT_EQ(external.faultsDetected, 1u);
    EXPECT_EQ(external.retransmissions, 1u);
    EXPECT_EQ(&inj.stats(), &external);
}

TEST(FaultInjector, LogRecordsEventIdentity)
{
    FaultParams p;
    p.enabled = true;
    FaultInjector inj(p);
    inj.scheduleOneShot(FaultKind::BitFlip, 4, 3, 2, 0x8ULL);
    inj.beginCycle(4);
    inj.drawFlitFaults(3, 2);
    ASSERT_EQ(inj.log().size(), 1u);
    EXPECT_EQ(inj.log()[0].cycle, 4u);
    EXPECT_EQ(inj.log()[0].kind, FaultKind::BitFlip);
    EXPECT_EQ(inj.log()[0].router, 3);
    EXPECT_EQ(inj.log()[0].port, 2);
    EXPECT_EQ(inj.log()[0].flipMask, 0x8u);
}

TEST(FaultInjector, KindNames)
{
    EXPECT_STREQ(faultKindName(FaultKind::BitFlip), "bitflip");
    EXPECT_STREQ(faultKindName(FaultKind::Drop), "drop");
    EXPECT_STREQ(faultKindName(FaultKind::CreditLoss), "creditloss");
}

// -- link CRC ---------------------------------------------------------

TEST(WireChecksum, CatchesEverySingleBitPayloadUpset)
{
    FlitDesc d;
    d.uid = flitUid(7, 0);
    d.packet = 7;
    d.payload = expectedPayload(7, 0);
    WireFlit w = WireFlit::fromDesc(d);
    w.crc = wireChecksum(w);
    EXPECT_TRUE(wireChecksumOk(w));

    for (int bit = 0; bit < 64; ++bit) {
        WireFlit upset = w;
        upset.payload ^= 1ULL << bit;
        EXPECT_FALSE(wireChecksumOk(upset)) << "bit " << bit;
    }
}

TEST(WireChecksum, CoversEncodedMarkerAndVcTag)
{
    FlitDesc d;
    d.uid = flitUid(9, 0);
    d.packet = 9;
    d.payload = expectedPayload(9, 0);
    WireFlit w = WireFlit::fromDesc(d);
    w.crc = wireChecksum(w);

    WireFlit marker = w;
    marker.encoded = !marker.encoded;
    EXPECT_FALSE(wireChecksumOk(marker));

    WireFlit vc = w;
    vc.vc ^= 1;
    EXPECT_FALSE(wireChecksumOk(vc));
}

// -- config parsing ---------------------------------------------------

TEST(FaultParamsFromConfig, DisabledByDefault)
{
    Config config;
    const FaultParams p = faultParamsFromConfig(config);
    EXPECT_FALSE(p.enabled);
    EXPECT_FALSE(p.anyRate());
    EXPECT_TRUE(p.protect);
}

TEST(FaultParamsFromConfig, ReadsAllKeys)
{
    Config config;
    config.set("fault_bitflip_rate", 0.25);
    config.set("fault_drop_rate", 0.125);
    config.set("fault_credit_loss_rate", 0.0625);
    config.set("fault_seed", std::int64_t{42});
    config.set("fault_recovery", false);
    config.set("fault_retry_timeout", std::int64_t{16});
    config.set("fault_watchdog_period", std::int64_t{128});

    const FaultParams p = faultParamsFromConfig(config);
    EXPECT_TRUE(p.enabled);
    EXPECT_DOUBLE_EQ(p.bitflipRate, 0.25);
    EXPECT_DOUBLE_EQ(p.dropRate, 0.125);
    EXPECT_DOUBLE_EQ(p.creditLossRate, 0.0625);
    EXPECT_EQ(p.seed, 42u);
    EXPECT_FALSE(p.protect);
    EXPECT_EQ(p.retryTimeout, 16u);
    EXPECT_EQ(p.watchdogPeriod, 128u);
}

TEST(FaultParamsFromConfig, SeedAloneEnablesInjector)
{
    // fault_seed= with no rates builds the (quiet) injector, so tests
    // and tools can schedule one-shot faults against it.
    Config config;
    config.set("fault_seed", std::int64_t{7});
    const FaultParams p = faultParamsFromConfig(config);
    EXPECT_TRUE(p.enabled);
    EXPECT_FALSE(p.anyRate());
}

} // namespace
} // namespace nox
