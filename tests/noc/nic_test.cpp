/** @file Unit tests for the NIC: injection credits, sink decode,
 *  delivery bookkeeping and listener callbacks. */

#include <gtest/gtest.h>

#include <vector>

#include "noc/network.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace {

class Recorder : public SinkListener
{
  public:
    /** Chain to the Network so its drain accounting keeps working. */
    explicit Recorder(SinkListener *chain = nullptr) : chain_(chain) {}

    void setChain(SinkListener *chain) { chain_ = chain; }

    void
    onFlitDelivered(NodeId node, const FlitDesc &flit,
                    Cycle now) override
    {
        flits.push_back({flit.packet, flit.seq, now});
        if (chain_)
            chain_->onFlitDelivered(node, flit, now);
    }

    void
    onPacketCompleted(NodeId node, const FlitDesc &last,
                      Cycle head_inject, Cycle now) override
    {
        completed.push_back({last.packet, head_inject, now});
        if (chain_)
            chain_->onPacketCompleted(node, last, head_inject, now);
    }

    struct FlitEvent
    {
        PacketId packet;
        std::uint32_t seq;
        Cycle when;
    };
    struct PacketEvent
    {
        PacketId packet;
        Cycle headInject;
        Cycle when;
    };
    std::vector<FlitEvent> flits;
    std::vector<PacketEvent> completed;

  private:
    SinkListener *chain_ = nullptr;
};

/** 2x1 mesh: node 0 -> node 1, minimal real wiring. */
struct TwoNodeFixture
{
    TwoNodeFixture()
    {
        NetworkParams params;
        params.width = 2;
        params.height = 1;
        net = makeNetwork(params, RouterArch::Nox);
        recorder.setChain(net.get());
        net->nic(1).setListener(&recorder);
    }

    std::unique_ptr<Network> net;
    Recorder recorder;
};

TEST(Nic, InjectConsumesAndRecoversCredits)
{
    TwoNodeFixture f;
    Nic &nic = f.net->nic(0);
    EXPECT_EQ(nic.injectCredits(), 4);

    // Five packets: more than the local input buffer depth.
    for (int i = 0; i < 5; ++i)
        f.net->injectPacket(0, 1, 1, f.net->now(),
                            TrafficClass::Synthetic);
    EXPECT_EQ(nic.sourceQueueFlits(), 5u);

    f.net->step();
    EXPECT_EQ(nic.injectCredits(), 3); // one flit staged
    ASSERT_TRUE(f.net->drain(100));
    EXPECT_EQ(nic.injectCredits(), 4); // all credits recovered
    EXPECT_EQ(nic.sourceQueueFlits(), 0u);
}

TEST(Nic, AtMostOneFlitInjectedPerCycle)
{
    TwoNodeFixture f;
    for (int i = 0; i < 3; ++i)
        f.net->injectPacket(0, 1, 1, f.net->now(),
                            TrafficClass::Synthetic);
    f.net->step();
    EXPECT_EQ(f.net->nic(0).sourceQueueFlits(), 2u);
    f.net->step();
    EXPECT_EQ(f.net->nic(0).sourceQueueFlits(), 1u);
}

TEST(Nic, FlitDeliveryOrderWithinPacket)
{
    TwoNodeFixture f;
    f.net->injectPacket(0, 1, 4, f.net->now(),
                        TrafficClass::Synthetic);
    ASSERT_TRUE(f.net->drain(200));
    ASSERT_EQ(f.recorder.flits.size(), 4u);
    for (std::uint32_t s = 0; s < 4; ++s)
        EXPECT_EQ(f.recorder.flits[s].seq, s);
    ASSERT_EQ(f.recorder.completed.size(), 1u);
    EXPECT_EQ(f.recorder.completed[0].when,
              f.recorder.flits.back().when);
}

TEST(Nic, HeadInjectCycleReported)
{
    TwoNodeFixture f;
    f.net->run(7); // idle cycles first
    f.net->injectPacket(0, 1, 2, f.net->now(),
                        TrafficClass::Synthetic);
    ASSERT_TRUE(f.net->drain(200));
    ASSERT_EQ(f.recorder.completed.size(), 1u);
    // Head was injected the cycle it reached the front of the queue.
    EXPECT_EQ(f.recorder.completed[0].headInject, 7u);
    EXPECT_GT(f.recorder.completed[0].when,
              f.recorder.completed[0].headInject);
}

TEST(Nic, InterleavedPacketsCompleteIndependently)
{
    TwoNodeFixture f;
    // Two packets back to back; deliveries interleave at the flit
    // level only within each packet (wormhole keeps them whole).
    f.net->injectPacket(0, 1, 3, f.net->now(),
                        TrafficClass::Synthetic);
    f.net->injectPacket(0, 1, 1, f.net->now(),
                        TrafficClass::Synthetic);
    ASSERT_TRUE(f.net->drain(300));
    ASSERT_EQ(f.recorder.completed.size(), 2u);
    EXPECT_EQ(f.recorder.completed[0].packet, 1u);
    EXPECT_EQ(f.recorder.completed[1].packet, 2u);
}

TEST(Nic, SinkBackpressureStallsWithoutLoss)
{
    // Tiny sink buffer: the ejection path throttles but delivers all.
    NetworkParams params;
    params.width = 2;
    params.height = 1;
    params.sinkBufferDepth = 1;
    auto net = makeNetwork(params, RouterArch::NonSpeculative);
    for (int i = 0; i < 10; ++i)
        net->injectPacket(0, 1, 1, net->now(),
                          TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(500));
    EXPECT_EQ(net->stats().packetsEjected, 10u);
}

TEST(NicDeathTest, DoubleStagedSinkFlitAborts)
{
    TwoNodeFixture f;
    Nic &nic = f.net->nic(1);
    nic.stageSinkFlit(WireFlit::fromDesc(FlitDesc{}));
    EXPECT_DEATH(nic.stageSinkFlit(WireFlit::fromDesc(FlitDesc{})),
                 "two flits staged");
}

} // namespace
} // namespace nox
