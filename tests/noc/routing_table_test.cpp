/**
 * @file
 * RoutingTable: DOR equivalence on fault-free meshes and fuzzed
 * correctness under random hard-fault maps.
 *
 * The fault-free table must be *bit-identical* to the functional DOR
 * baseline — every (current router, destination node) pair, both
 * dimension orders, including concentrated meshes — because the paper
 * reproduction runs through the table even when no fault machinery is
 * configured. Under random fault maps the rebuilt up-down table must
 * stay provably deadlock-free (acyclic channel-dependency graph),
 * route every still-connected pair to its destination in bounded
 * hops, and report exactly the BFS-disconnected pairs unreachable.
 */

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "noc/routing.hpp"
#include "noc/routing_table.hpp"
#include "noc/topology.hpp"

namespace nox {
namespace {

void
expectMatchesFunction(const Mesh &mesh, RoutingAlgo algo,
                      RoutingFunction fn)
{
    RoutingTable table(mesh, algo);
    for (NodeId r = 0; r < mesh.numRouters(); ++r) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            ASSERT_EQ(table.lookup(r, d), fn(mesh, r, d))
                << "algo " << static_cast<int>(algo) << " router "
                << r << " dest " << d;
        }
    }
    EXPECT_TRUE(table.dependencyGraphAcyclic());
}

TEST(RoutingTableFaultFree, DorXyTableMatchesDorRoute)
{
    const Mesh mesh(8, 8);
    expectMatchesFunction(mesh, RoutingAlgo::DorXY, &dorRoute);
}

TEST(RoutingTableFaultFree, DorYxTableMatchesDorRouteYX)
{
    const Mesh mesh(8, 8);
    expectMatchesFunction(mesh, RoutingAlgo::DorYX, &dorRouteYX);
}

TEST(RoutingTableFaultFree, RectangularAndConcentratedMeshes)
{
    // Non-square shape and a concentrated mesh (several terminals per
    // router) exercise routerOf/localPortOf in the table fill.
    for (const Mesh &mesh :
         {Mesh(6, 3), Mesh(4, 4, 2), Mesh(2, 5, 4)}) {
        expectMatchesFunction(mesh, RoutingAlgo::DorXY, &dorRoute);
        expectMatchesFunction(mesh, RoutingAlgo::DorYX, &dorRouteYX);
    }
}

TEST(RoutingTableFaultFree, EmptyFaultMapRebuildStaysOnDor)
{
    // A rebuild with a fault-free map must stay on the DOR fast path
    // (not switch to up-down, whose routes differ).
    const Mesh mesh(8, 8);
    RoutingTable table(mesh, RoutingAlgo::DorXY);
    table.rebuild(FaultMap(mesh));
    for (NodeId r = 0; r < mesh.numRouters(); ++r) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d)
            ASSERT_EQ(table.lookup(r, d), dorRoute(mesh, r, d));
    }
}

/** Router-level reachability over live links, ground truth by BFS. */
std::vector<bool>
bfsReachable(const Mesh &mesh, const FaultMap &map, NodeId from)
{
    std::vector<bool> seen(
        static_cast<std::size_t>(mesh.numRouters()), false);
    if (map.routerDead(from))
        return seen;
    std::queue<NodeId> q;
    seen[static_cast<std::size_t>(from)] = true;
    q.push(from);
    while (!q.empty()) {
        const NodeId u = q.front();
        q.pop();
        for (int p = kPortNorth; p <= kPortWest; ++p) {
            if (map.linkDead(u, p))
                continue;
            const NodeId v = mesh.neighbor(u, p);
            if (v == kInvalidNode || map.routerDead(v) ||
                seen[static_cast<std::size_t>(v)])
                continue;
            seen[static_cast<std::size_t>(v)] = true;
            q.push(v);
        }
    }
    return seen;
}

/** Follow the table from @p src to @p dest_node; return hops taken,
 *  or -1 on a dead end / hop-bound overrun. */
int
walkTable(const Mesh &mesh, const RoutingTable &table, NodeId src,
          NodeId dest_node)
{
    const NodeId dr = mesh.routerOf(dest_node);
    NodeId at = src;
    const int bound = 4 * mesh.numRouters();
    for (int hops = 0; hops <= bound; ++hops) {
        const int out = table.lookup(at, dest_node);
        if (out < 0)
            return -1;
        if (at == dr) {
            // Terminal hop: must name the destination's local port.
            return mesh.terminalAt(at, out) == dest_node ? hops : -1;
        }
        if (out > kPortWest)
            return -1; // local port while not at the destination
        at = mesh.neighbor(at, out);
        if (at == kInvalidNode)
            return -1; // routed off the mesh edge
    }
    return -1;
}

TEST(RoutingTableFuzz, RandomFaultMapsStayDeadlockFreeAndExact)
{
    const Mesh mesh(8, 8);
    Rng rng(0xFADE0);
    int disconnected_pairs_seen = 0;

    for (int trial = 0; trial < 100; ++trial) {
        FaultMap map(mesh);
        const int router_kills =
            static_cast<int>(rng.nextBounded(3)); // 0..2
        const int link_kills =
            1 + static_cast<int>(rng.nextBounded(6)); // 1..6
        for (int k = 0; k < router_kills; ++k) {
            map.killRouter(static_cast<NodeId>(rng.nextBounded(
                static_cast<std::uint64_t>(mesh.numRouters()))));
        }
        for (int k = 0; k < link_kills; ++k) {
            map.killLink(
                static_cast<NodeId>(rng.nextBounded(
                    static_cast<std::uint64_t>(mesh.numRouters()))),
                static_cast<int>(rng.nextBounded(4)));
        }

        RoutingTable table(mesh, trial % 2 == 0 ? RoutingAlgo::DorXY
                                                : RoutingAlgo::DorYX);
        table.rebuild(map);

        // Deadlock freedom: the channel-dependency graph of the
        // rebuilt table must be acyclic, whatever the fault map.
        ASSERT_TRUE(table.dependencyGraphAcyclic())
            << "trial " << trial << ": cyclic CDG";

        for (NodeId r = 0; r < mesh.numRouters(); ++r) {
            const std::vector<bool> reach = bfsReachable(mesh, map, r);
            for (NodeId d = 0; d < mesh.numNodes(); ++d) {
                const NodeId dr = mesh.routerOf(d);
                const bool connected =
                    !map.routerDead(r) &&
                    reach[static_cast<std::size_t>(dr)];
                if (connected) {
                    ASSERT_GE(walkTable(mesh, table, r, d), 0)
                        << "trial " << trial << ": " << r << " -> "
                        << d << " is connected but the table walk "
                        << "fails";
                } else {
                    ++disconnected_pairs_seen;
                    ASSERT_EQ(table.lookup(r, d), -1)
                        << "trial " << trial << ": " << r << " -> "
                        << d << " is disconnected but the table "
                        << "routes it";
                }
            }
        }
    }
    // The fuzz corpus genuinely exercised the unreachable branch.
    EXPECT_GT(disconnected_pairs_seen, 0);
}

TEST(RoutingTableFuzz, KillApiRejectsDoubleAndEdgeKills)
{
    const Mesh mesh(4, 4);
    FaultMap map(mesh);
    EXPECT_FALSE(map.killLink(0, kPortNorth)); // mesh edge: no link
    EXPECT_FALSE(map.killLink(0, kPortWest));
    EXPECT_TRUE(map.killLink(0, kPortEast));
    EXPECT_FALSE(map.killLink(0, kPortEast)); // already dead
    EXPECT_FALSE(map.killLink(1, kPortWest)); // reverse of the same
    EXPECT_TRUE(map.killRouter(5));
    EXPECT_FALSE(map.killRouter(5));
    EXPECT_FALSE(map.killLink(5, kPortSouth)); // dead endpoint
    EXPECT_TRUE(map.routerDead(5));
    EXPECT_TRUE(map.linkDead(5, kPortEast));
    EXPECT_TRUE(map.linkDead(6, kPortWest));
}

TEST(RoutingTableFuzz, SplitMeshRoutesWithinEachComponent)
{
    // Cut a 4x4 mesh into left and right halves: every cross pair is
    // unreachable, every same-side pair still routes deadlock-free.
    const Mesh mesh(4, 4);
    FaultMap map(mesh);
    for (int y = 0; y < 4; ++y)
        ASSERT_TRUE(map.killLink(mesh.nodeAt({1, y}), kPortEast));

    RoutingTable table(mesh, RoutingAlgo::DorXY);
    table.rebuild(map);
    ASSERT_TRUE(table.dependencyGraphAcyclic());

    for (NodeId r = 0; r < mesh.numRouters(); ++r) {
        for (NodeId d = 0; d < mesh.numNodes(); ++d) {
            const bool same_side =
                (mesh.coordOf(r).x <= 1) ==
                (mesh.coordOf(mesh.routerOf(d)).x <= 1);
            if (same_side)
                EXPECT_GE(walkTable(mesh, table, r, d), 0);
            else
                EXPECT_EQ(table.lookup(r, d), -1);
        }
    }
}

} // namespace
} // namespace nox
