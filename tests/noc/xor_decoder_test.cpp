/** @file Unit tests for the NoX decode state machine (§2.4, Fig 3). */

#include <gtest/gtest.h>

#include "noc/xor_decoder.hpp"

namespace nox {
namespace {

FlitDesc
makeFlit(PacketId packet)
{
    FlitDesc d;
    d.uid = flitUid(packet, 0);
    d.packet = packet;
    d.payload = expectedPayload(packet, 0);
    return d;
}

TEST(XorDecoder, EmptyFifoPresentsNothing)
{
    FlitFifo fifo(4);
    XorDecoder dec;
    const DecodeView v = dec.view(fifo);
    EXPECT_FALSE(v.presented.has_value());
    EXPECT_FALSE(v.latchBubble);
}

TEST(XorDecoder, UncodedPassesThrough)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::fromDesc(makeFlit(1)));
    XorDecoder dec;
    const DecodeView v = dec.view(fifo);
    ASSERT_TRUE(v.presented.has_value());
    EXPECT_EQ(v.presented->packet, 1u);
    EXPECT_FALSE(v.decodedByXor);
    EXPECT_TRUE(v.acceptPops);
    EXPECT_TRUE(dec.accept(fifo));
    EXPECT_TRUE(fifo.empty());
}

TEST(XorDecoder, EncodedHeadRequiresLatchBubble)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({makeFlit(1), makeFlit(2)}));
    XorDecoder dec;
    const DecodeView v = dec.view(fifo);
    EXPECT_FALSE(v.presented.has_value());
    EXPECT_TRUE(v.latchBubble);
    EXPECT_TRUE(dec.latch(fifo));
    EXPECT_TRUE(fifo.empty());
    EXPECT_TRUE(dec.registerValid());
}

TEST(XorDecoder, Figure3Sequence)
{
    // Paper Figure 3: receive A, then (B^C), then C.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);

    FlitFifo fifo(4);
    XorDecoder dec;

    // Cycle 0: A read, presented immediately (no decoding needed).
    fifo.push(WireFlit::fromDesc(a));
    DecodeView v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, a.packet);
    dec.accept(fifo);

    // Cycle 2: coded (B^C) read, latched, no switch request.
    fifo.push(WireFlit::combine({b, c}));
    v = dec.view(fifo);
    EXPECT_TRUE(v.latchBubble);
    dec.latch(fifo);

    // Cycle 3: C read; (B^C)^C == B presented as the switch request.
    fifo.push(WireFlit::fromDesc(c));
    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, b.packet);
    EXPECT_EQ(v.presented->payload, b.payload);
    EXPECT_TRUE(v.decodedByXor);
    EXPECT_FALSE(v.acceptPops); // C stays in the FIFO
    EXPECT_FALSE(dec.accept(fifo));

    // Cycle 4: uncoded C transmitted from the input buffer.
    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, c.packet);
    EXPECT_FALSE(v.decodedByXor);
    EXPECT_TRUE(dec.accept(fifo));
    EXPECT_TRUE(fifo.empty());
    EXPECT_FALSE(dec.registerValid());
}

TEST(XorDecoder, ThreeWayChain)
{
    // Chain: (A^B^C), (B^C), C -> decoded A, B, C in win order.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);

    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({a, b, c}));
    fifo.push(WireFlit::combine({b, c}));
    fifo.push(WireFlit::fromDesc(c));

    XorDecoder dec;

    DecodeView v = dec.view(fifo);
    EXPECT_TRUE(v.latchBubble);
    dec.latch(fifo);

    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, a.packet);
    EXPECT_TRUE(v.acceptPops); // next head (B^C) is encoded: chain
    EXPECT_TRUE(dec.accept(fifo));

    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, b.packet);
    EXPECT_FALSE(dec.accept(fifo)); // C kept

    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, c.packet);
    EXPECT_TRUE(dec.accept(fifo));
    EXPECT_TRUE(fifo.empty());
}

TEST(XorDecoder, RegisterValidWithEmptyFifoStalls)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({makeFlit(1), makeFlit(2)}));
    XorDecoder dec;
    dec.latch(fifo);
    const DecodeView v = dec.view(fifo);
    EXPECT_FALSE(v.presented.has_value());
    EXPECT_FALSE(v.latchBubble);
}

TEST(XorDecoder, ViewIsIdempotent)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::fromDesc(makeFlit(7)));
    XorDecoder dec;
    const DecodeView v1 = dec.view(fifo);
    const DecodeView v2 = dec.view(fifo);
    ASSERT_TRUE(v1.presented && v2.presented);
    EXPECT_EQ(v1.presented->packet, v2.presented->packet);
    EXPECT_EQ(fifo.size(), 1u);
}

TEST(XorDecoder, BackToBackChains)
{
    // Two consecutive 2-way chains on the same port.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);
    const FlitDesc d = makeFlit(4);

    FlitFifo fifo(8);
    fifo.push(WireFlit::combine({a, b}));
    fifo.push(WireFlit::fromDesc(b));
    fifo.push(WireFlit::combine({c, d}));
    fifo.push(WireFlit::fromDesc(d));

    XorDecoder dec;
    std::vector<PacketId> got;
    for (int cycle = 0; cycle < 12 && got.size() < 4; ++cycle) {
        const DecodeView v = dec.view(fifo);
        if (v.latchBubble) {
            dec.latch(fifo);
            continue;
        }
        if (v.presented) {
            got.push_back(v.presented->packet);
            dec.accept(fifo);
        }
    }
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got, (std::vector<PacketId>{1, 2, 3, 4}));
}

TEST(XorDecoder, ResetClearsRegister)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({makeFlit(1), makeFlit(2)}));
    XorDecoder dec;
    dec.latch(fifo);
    EXPECT_TRUE(dec.registerValid());
    dec.reset();
    EXPECT_FALSE(dec.registerValid());
}

} // namespace
} // namespace nox
