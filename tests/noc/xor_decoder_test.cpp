/** @file Unit tests for the NoX decode state machine (§2.4, Fig 3). */

#include <gtest/gtest.h>

#include "noc/xor_decoder.hpp"

namespace nox {
namespace {

FlitDesc
makeFlit(PacketId packet)
{
    FlitDesc d;
    d.uid = flitUid(packet, 0);
    d.packet = packet;
    d.payload = expectedPayload(packet, 0);
    return d;
}

TEST(XorDecoder, EmptyFifoPresentsNothing)
{
    FlitFifo fifo(4);
    XorDecoder dec;
    const DecodeView v = dec.view(fifo);
    EXPECT_FALSE(v.presented != nullptr);
    EXPECT_FALSE(v.latchBubble);
}

TEST(XorDecoder, UncodedPassesThrough)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::fromDesc(makeFlit(1)));
    XorDecoder dec;
    const DecodeView v = dec.view(fifo);
    ASSERT_TRUE(v.presented != nullptr);
    EXPECT_EQ(v.presented->packet, 1u);
    EXPECT_FALSE(v.decodedByXor);
    EXPECT_TRUE(v.acceptPops);
    EXPECT_TRUE(dec.accept(fifo));
    EXPECT_TRUE(fifo.empty());
}

TEST(XorDecoder, EncodedHeadRequiresLatchBubble)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({makeFlit(1), makeFlit(2)}));
    XorDecoder dec;
    const DecodeView v = dec.view(fifo);
    EXPECT_FALSE(v.presented != nullptr);
    EXPECT_TRUE(v.latchBubble);
    EXPECT_TRUE(dec.latch(fifo));
    EXPECT_TRUE(fifo.empty());
    EXPECT_TRUE(dec.registerValid());
}

TEST(XorDecoder, Figure3Sequence)
{
    // Paper Figure 3: receive A, then (B^C), then C.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);

    FlitFifo fifo(4);
    XorDecoder dec;

    // Cycle 0: A read, presented immediately (no decoding needed).
    fifo.push(WireFlit::fromDesc(a));
    DecodeView v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, a.packet);
    dec.accept(fifo);

    // Cycle 2: coded (B^C) read, latched, no switch request.
    fifo.push(WireFlit::combine({b, c}));
    v = dec.view(fifo);
    EXPECT_TRUE(v.latchBubble);
    dec.latch(fifo);

    // Cycle 3: C read; (B^C)^C == B presented as the switch request.
    fifo.push(WireFlit::fromDesc(c));
    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, b.packet);
    EXPECT_EQ(v.presented->payload, b.payload);
    EXPECT_TRUE(v.decodedByXor);
    EXPECT_FALSE(v.acceptPops); // C stays in the FIFO
    EXPECT_FALSE(dec.accept(fifo));

    // Cycle 4: uncoded C transmitted from the input buffer.
    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, c.packet);
    EXPECT_FALSE(v.decodedByXor);
    EXPECT_TRUE(dec.accept(fifo));
    EXPECT_TRUE(fifo.empty());
    EXPECT_FALSE(dec.registerValid());
}

TEST(XorDecoder, ThreeWayChain)
{
    // Chain: (A^B^C), (B^C), C -> decoded A, B, C in win order.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);

    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({a, b, c}));
    fifo.push(WireFlit::combine({b, c}));
    fifo.push(WireFlit::fromDesc(c));

    XorDecoder dec;

    DecodeView v = dec.view(fifo);
    EXPECT_TRUE(v.latchBubble);
    dec.latch(fifo);

    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, a.packet);
    EXPECT_TRUE(v.acceptPops); // next head (B^C) is encoded: chain
    EXPECT_TRUE(dec.accept(fifo));

    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, b.packet);
    EXPECT_FALSE(dec.accept(fifo)); // C kept

    v = dec.view(fifo);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, c.packet);
    EXPECT_TRUE(dec.accept(fifo));
    EXPECT_TRUE(fifo.empty());
}

TEST(XorDecoder, RegisterValidWithEmptyFifoStalls)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({makeFlit(1), makeFlit(2)}));
    XorDecoder dec;
    dec.latch(fifo);
    const DecodeView v = dec.view(fifo);
    EXPECT_FALSE(v.presented != nullptr);
    EXPECT_FALSE(v.latchBubble);
}

TEST(XorDecoder, ViewIsIdempotent)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::fromDesc(makeFlit(7)));
    XorDecoder dec;
    const DecodeView v1 = dec.view(fifo);
    const DecodeView v2 = dec.view(fifo);
    ASSERT_TRUE(v1.presented && v2.presented);
    EXPECT_EQ(v1.presented->packet, v2.presented->packet);
    EXPECT_EQ(fifo.size(), 1u);
}

TEST(XorDecoder, BackToBackChains)
{
    // Two consecutive 2-way chains on the same port.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);
    const FlitDesc d = makeFlit(4);

    FlitFifo fifo(8);
    fifo.push(WireFlit::combine({a, b}));
    fifo.push(WireFlit::fromDesc(b));
    fifo.push(WireFlit::combine({c, d}));
    fifo.push(WireFlit::fromDesc(d));

    XorDecoder dec;
    std::vector<PacketId> got;
    for (int cycle = 0; cycle < 12 && got.size() < 4; ++cycle) {
        const DecodeView v = dec.view(fifo);
        if (v.latchBubble) {
            dec.latch(fifo);
            continue;
        }
        if (v.presented) {
            got.push_back(v.presented->packet);
            dec.accept(fifo);
        }
    }
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got, (std::vector<PacketId>{1, 2, 3, 4}));
}

TEST(TryDecodeDiff, CleanChainDecodesWithoutFault)
{
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const WireFlit prev = WireFlit::combine({a, b});
    const WireFlit next = WireFlit::fromDesc(b);
    const DecodeResult r = tryDecodeDiff(prev, next);
    EXPECT_EQ(r.fault, DecodeFault::None);
    ASSERT_TRUE(r.flit.has_value());
    EXPECT_EQ(r.flit->packet, a.packet);
    EXPECT_EQ(r.flit->payload, a.payload);
}

TEST(TryDecodeDiff, PayloadMismatchIsStructuredNotFatal)
{
    // A bit upset on a coded wire value reaches the decode chain: the
    // structure is intact, so the flit is still recovered — but with
    // the payload the hardware would actually compute (prev XOR next),
    // carrying the corruption forward bit-faithfully — and the
    // mismatch is reported instead of tripping an assert.
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    WireFlit prev = WireFlit::combine({a, b});
    prev.payload ^= 1ULL << 17; // in-flight corruption
    const WireFlit next = WireFlit::fromDesc(b);

    const DecodeResult r = tryDecodeDiff(prev, next);
    EXPECT_EQ(r.fault, DecodeFault::PayloadMismatch);
    ASSERT_TRUE(r.flit.has_value());
    EXPECT_EQ(r.flit->packet, a.packet);
    EXPECT_EQ(r.flit->payload, prev.payload ^ next.payload);
    EXPECT_NE(r.flit->payload, a.payload);
}

TEST(TryDecodeDiff, StructuralFaultRecoversNothing)
{
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);

    // next is unrelated to prev: a wire value vanished mid-chain.
    DecodeResult r = tryDecodeDiff(WireFlit::fromDesc(a),
                                   WireFlit::fromDesc(b));
    EXPECT_EQ(r.fault, DecodeFault::Structural);
    EXPECT_FALSE(r.flit.has_value());

    // prev is next plus TWO flits — also unrecoverable.
    r = tryDecodeDiff(WireFlit::combine({a, b, c}),
                      WireFlit::fromDesc(c));
    EXPECT_EQ(r.fault, DecodeFault::Structural);
    EXPECT_FALSE(r.flit.has_value());
}

TEST(XorDecoder, LenientViewFlagsCorruptUncodedHead)
{
    // The parts bookkeeping remembers the clean payload; the wire
    // bits are what the hardware has. The lenient view must present
    // the corrupted wire bits (not silently repair them) and flag the
    // divergence.
    const FlitDesc a = makeFlit(5);
    WireFlit w = WireFlit::fromDesc(a);
    w.payload ^= 1ULL << 3;

    FlitFifo fifo(4);
    fifo.push(std::move(w));
    XorDecoder dec;
    const DecodeView v = dec.view(fifo, /*lenient=*/true);
    ASSERT_TRUE(v.presented != nullptr);
    EXPECT_EQ(v.fault, DecodeFault::PayloadMismatch);
    EXPECT_EQ(v.presented->payload, a.payload ^ (1ULL << 3));
}

TEST(XorDecoder, LenientViewDecodeMismatchFlaggedOnce)
{
    // Figure-3 sequence with the coded value corrupted: the decode of
    // B is flagged, and the corrupt payload rides B (prev XOR next),
    // so the follow-on presentation of C is clean again.
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);
    WireFlit coded = WireFlit::combine({b, c});
    coded.payload ^= 1ULL << 40;

    FlitFifo fifo(4);
    fifo.push(std::move(coded));
    XorDecoder dec;
    DecodeView v = dec.view(fifo, true);
    EXPECT_TRUE(v.latchBubble);
    dec.latch(fifo);

    fifo.push(WireFlit::fromDesc(c));
    v = dec.view(fifo, true);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, b.packet);
    EXPECT_EQ(v.fault, DecodeFault::PayloadMismatch);
    EXPECT_EQ(v.presented->payload, b.payload ^ (1ULL << 40));
    dec.accept(fifo);

    v = dec.view(fifo, true);
    ASSERT_TRUE(v.presented);
    EXPECT_EQ(v.presented->packet, c.packet);
    EXPECT_EQ(v.fault, DecodeFault::None);
}

TEST(XorDecoder, LenientViewStructuralPresentsNothing)
{
    const FlitDesc a = makeFlit(1);
    const FlitDesc b = makeFlit(2);
    const FlitDesc c = makeFlit(3);

    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({a, b}));
    XorDecoder dec;
    dec.latch(fifo);

    // The chain's closing flit was lost; an unrelated one arrives.
    fifo.push(WireFlit::fromDesc(c));
    const DecodeView v = dec.view(fifo, true);
    EXPECT_FALSE(v.presented != nullptr);
    EXPECT_EQ(v.fault, DecodeFault::Structural);
}

TEST(XorDecoder, ResetClearsRegister)
{
    FlitFifo fifo(4);
    fifo.push(WireFlit::combine({makeFlit(1), makeFlit(2)}));
    XorDecoder dec;
    dec.latch(fifo);
    EXPECT_TRUE(dec.registerValid());
    dec.reset();
    EXPECT_FALSE(dec.registerValid());
}

} // namespace
} // namespace nox
