/** @file Tests for the Router base-class plumbing: wiring, staging,
 *  credits and two-phase commit discipline. */

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "routers/factory.hpp"

namespace nox {
namespace {

std::unique_ptr<Network>
mesh2x2(RouterArch arch = RouterArch::NonSpeculative)
{
    NetworkParams params;
    params.width = 2;
    params.height = 2;
    return makeNetwork(params, arch);
}

FlitDesc
flitTo(NodeId dest, PacketId p = 1)
{
    FlitDesc d;
    d.uid = flitUid(p, 0);
    d.packet = p;
    d.packetSize = 1;
    d.src = 0;
    d.dest = dest;
    d.payload = expectedPayload(p, 0);
    return d;
}

TEST(RouterBase, MeshWiringConnectsInteriorPortsOnly)
{
    auto net = mesh2x2();
    // Node 0 = (0,0): East and South connected, North/West edges not.
    const Router &r = net->router(0);
    EXPECT_TRUE(r.outputConnected(kPortEast));
    EXPECT_TRUE(r.outputConnected(kPortSouth));
    EXPECT_FALSE(r.outputConnected(kPortNorth));
    EXPECT_FALSE(r.outputConnected(kPortWest));
    EXPECT_TRUE(r.outputConnected(kPortLocal));
}

TEST(RouterBase, InitialCreditsMatchDownstreamBufferDepth)
{
    NetworkParams params;
    params.width = 2;
    params.height = 2;
    params.router.bufferDepth = 7;
    params.sinkBufferDepth = 3;
    auto net = makeNetwork(params, RouterArch::NonSpeculative);
    EXPECT_EQ(net->router(0).outputCredits(kPortEast), 7);
    EXPECT_EQ(net->router(0).outputCredits(kPortLocal), 3);
}

TEST(RouterBase, StagedFlitInvisibleUntilCommit)
{
    auto net = mesh2x2();
    Router &r = net->router(0);
    r.stageFlit(kPortWest, WireFlit::fromDesc(flitTo(1)));
    EXPECT_TRUE(r.inputFifo(kPortWest).empty());
    r.commit();
    EXPECT_EQ(r.inputFifo(kPortWest).size(), 1u);
}

TEST(RouterBase, StagedCreditInvisibleUntilCommit)
{
    auto net = mesh2x2();
    Router &r = net->router(0);
    const int before = r.outputCredits(kPortEast);
    r.stageCredit(kPortEast, 2);
    EXPECT_EQ(r.outputCredits(kPortEast), before);
    r.commit();
    EXPECT_EQ(r.outputCredits(kPortEast), before + 2);
}

TEST(RouterBase, CreditFlowsBackAfterTraversal)
{
    auto net = mesh2x2();
    // 0 -> 3 goes East to 1, then South. Watch 0's East credits.
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    const int before = net->router(0).outputCredits(kPortEast);
    ASSERT_TRUE(net->drain(100));
    EXPECT_EQ(net->router(0).outputCredits(kPortEast), before);
}

TEST(RouterBase, EnergyCountersMonotonic)
{
    auto net = mesh2x2(RouterArch::Nox);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    const EnergyEvents mid = net->totalEnergyEvents();
    net->run(3);
    net->injectPacket(0, 3, 1, net->now(), TrafficClass::Synthetic);
    ASSERT_TRUE(net->drain(100));
    const EnergyEvents end = net->totalEnergyEvents();
    EXPECT_GE(end.linkFlits, mid.linkFlits);
    EXPECT_GE(end.bufferWrites, mid.bufferWrites);
    EXPECT_GE(end.cycles, mid.cycles);
    // diff() must invert merge-like accumulation.
    const EnergyEvents d = diff(end, mid);
    EXPECT_EQ(d.linkFlits, end.linkFlits - mid.linkFlits);
    EXPECT_EQ(d.cycles, end.cycles - mid.cycles);
}

TEST(RouterBaseDeathTest, DoubleStageSameInputAborts)
{
    auto net = mesh2x2();
    Router &r = net->router(0);
    r.stageFlit(kPortWest, WireFlit::fromDesc(flitTo(1)));
    EXPECT_DEATH(
        r.stageFlit(kPortWest, WireFlit::fromDesc(flitTo(1, 2))),
        "two flits staged");
}

TEST(RouterBaseDeathTest, BadPortAborts)
{
    auto net = mesh2x2();
    EXPECT_DEATH(net->router(0).stageFlit(
                     9, WireFlit::fromDesc(flitTo(1))),
                 "bad port");
    EXPECT_DEATH(net->router(0).stageCredit(-1), "bad port");
}

TEST(RouterBase, ArbiterKindSelectable)
{
    for (ArbiterKind kind :
         {ArbiterKind::RoundRobin, ArbiterKind::FixedPriority,
          ArbiterKind::Matrix}) {
        NetworkParams params;
        params.width = 2;
        params.height = 2;
        params.router.arbiterKind = kind;
        auto net = makeNetwork(params, RouterArch::Nox);
        net->injectPacket(0, 3, 1, net->now(),
                          TrafficClass::Synthetic);
        EXPECT_TRUE(net->drain(100));
        EXPECT_EQ(net->stats().packetsEjected, 1u);
    }
}

TEST(RouterBase, EvaluationOrderIndependence)
{
    // The two-phase discipline means the Network's (fixed) iteration
    // order cannot matter; as a proxy, identical stimuli through two
    // separately constructed networks yield identical statistics.
    for (RouterArch arch : kAllArchs) {
        std::uint64_t flits[2];
        double lat[2];
        for (int i = 0; i < 2; ++i) {
            auto net = mesh2x2(arch);
            for (int k = 0; k < 8; ++k) {
                net->injectPacket(k % 4, 3 - (k % 4), 1 + (k % 2) * 2,
                                  net->now(),
                                  TrafficClass::Synthetic);
                net->step();
            }
            EXPECT_TRUE(net->drain(1000));
            flits[i] = net->stats().flitsEjected;
            lat[i] = net->stats().latency.mean();
        }
        EXPECT_EQ(flits[0], flits[1]);
        EXPECT_DOUBLE_EQ(lat[0], lat[1]);
    }
}

} // namespace
} // namespace nox
