/** @file Unit tests for dimension-ordered routing. */

#include <gtest/gtest.h>

#include "noc/routing.hpp"

namespace nox {
namespace {

TEST(DorRoute, XBeforeY)
{
    const Mesh m(8, 8);
    // From (0,0) to (3,5): go East until x matches, then South.
    EXPECT_EQ(dorRoute(m, m.nodeAt({0, 0}), m.nodeAt({3, 5})),
              kPortEast);
    EXPECT_EQ(dorRoute(m, m.nodeAt({3, 0}), m.nodeAt({3, 5})),
              kPortSouth);
    EXPECT_EQ(dorRoute(m, m.nodeAt({5, 5}), m.nodeAt({3, 5})),
              kPortWest);
    EXPECT_EQ(dorRoute(m, m.nodeAt({3, 7}), m.nodeAt({3, 5})),
              kPortNorth);
}

TEST(DorRoute, LocalAtDestination)
{
    const Mesh m(8, 8);
    EXPECT_EQ(dorRoute(m, 12, 12), kPortLocal);
}

TEST(DorRoute, EveryPairTerminatesWithMinimalHops)
{
    const Mesh m(8, 8);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            NodeId cur = s;
            int hops = 0;
            while (cur != d) {
                const int port = dorRoute(m, cur, d);
                ASSERT_NE(port, kPortLocal);
                cur = m.neighbor(cur, port);
                ASSERT_NE(cur, kInvalidNode);
                ++hops;
                ASSERT_LE(hops, 14);
            }
            EXPECT_EQ(hops, m.hopDistance(s, d));
            EXPECT_EQ(dorRoute(m, cur, d), kPortLocal);
        }
    }
}

TEST(DorRoute, XYNeverTurnsFromYToX)
{
    // Once a packet moves vertically it must never move horizontally
    // again — the invariant that makes DOR deadlock-free.
    const Mesh m(8, 8);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            NodeId cur = s;
            bool moved_vertically = false;
            while (cur != d) {
                const int port = dorRoute(m, cur, d);
                const bool vertical =
                    (port == kPortNorth || port == kPortSouth);
                if (moved_vertically) {
                    ASSERT_TRUE(vertical);
                }
                moved_vertically |= vertical;
                cur = m.neighbor(cur, port);
            }
        }
    }
}

TEST(DorRouteYX, YBeforeX)
{
    const Mesh m(8, 8);
    EXPECT_EQ(dorRouteYX(m, m.nodeAt({0, 0}), m.nodeAt({3, 5})),
              kPortSouth);
    EXPECT_EQ(dorRouteYX(m, m.nodeAt({0, 5}), m.nodeAt({3, 5})),
              kPortEast);
    EXPECT_EQ(dorRouteYX(m, 20, 20), kPortLocal);
}

TEST(DorRouteYX, EveryPairTerminates)
{
    const Mesh m(4, 4);
    for (NodeId s = 0; s < m.numNodes(); ++s) {
        for (NodeId d = 0; d < m.numNodes(); ++d) {
            NodeId cur = s;
            int hops = 0;
            while (cur != d) {
                cur = m.neighbor(cur, dorRouteYX(m, cur, d));
                ASSERT_NE(cur, kInvalidNode);
                ASSERT_LE(++hops, 6);
            }
        }
    }
}

} // namespace
} // namespace nox
