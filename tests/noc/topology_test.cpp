/** @file Unit tests for the mesh topology. */

#include <gtest/gtest.h>

#include "noc/topology.hpp"

namespace nox {
namespace {

TEST(Mesh, CoordinateRoundTrip)
{
    const Mesh m(8, 8);
    for (NodeId n = 0; n < m.numNodes(); ++n)
        EXPECT_EQ(m.nodeAt(m.coordOf(n)), n);
}

TEST(Mesh, RowMajorNumbering)
{
    const Mesh m(8, 8);
    EXPECT_EQ(m.coordOf(0), (Coord{0, 0}));
    EXPECT_EQ(m.coordOf(7), (Coord{7, 0}));
    EXPECT_EQ(m.coordOf(8), (Coord{0, 1}));
    EXPECT_EQ(m.coordOf(63), (Coord{7, 7}));
}

TEST(Mesh, InteriorNeighbors)
{
    const Mesh m(8, 8);
    const NodeId n = m.nodeAt({3, 3});
    EXPECT_EQ(m.neighbor(n, kPortNorth), m.nodeAt({3, 2}));
    EXPECT_EQ(m.neighbor(n, kPortSouth), m.nodeAt({3, 4}));
    EXPECT_EQ(m.neighbor(n, kPortEast), m.nodeAt({4, 3}));
    EXPECT_EQ(m.neighbor(n, kPortWest), m.nodeAt({2, 3}));
}

TEST(Mesh, EdgesHaveNoNeighbor)
{
    const Mesh m(4, 4);
    EXPECT_EQ(m.neighbor(0, kPortNorth), kInvalidNode);
    EXPECT_EQ(m.neighbor(0, kPortWest), kInvalidNode);
    EXPECT_EQ(m.neighbor(15, kPortSouth), kInvalidNode);
    EXPECT_EQ(m.neighbor(15, kPortEast), kInvalidNode);
}

TEST(Mesh, NeighborSymmetry)
{
    const Mesh m(5, 3);
    for (NodeId n = 0; n < m.numNodes(); ++n) {
        for (int p = kPortNorth; p <= kPortWest; ++p) {
            const NodeId nb = m.neighbor(n, p);
            if (nb == kInvalidNode)
                continue;
            EXPECT_EQ(m.neighbor(nb, Mesh::oppositePort(p)), n);
        }
    }
}

TEST(Mesh, OppositePorts)
{
    EXPECT_EQ(Mesh::oppositePort(kPortNorth), kPortSouth);
    EXPECT_EQ(Mesh::oppositePort(kPortSouth), kPortNorth);
    EXPECT_EQ(Mesh::oppositePort(kPortEast), kPortWest);
    EXPECT_EQ(Mesh::oppositePort(kPortWest), kPortEast);
}

TEST(Mesh, HopDistanceManhattan)
{
    const Mesh m(8, 8);
    EXPECT_EQ(m.hopDistance(0, 0), 0);
    EXPECT_EQ(m.hopDistance(0, 7), 7);
    EXPECT_EQ(m.hopDistance(0, 63), 14);
    EXPECT_EQ(m.hopDistance(m.nodeAt({2, 3}), m.nodeAt({5, 1})), 5);
}

TEST(Mesh, NonSquareSupported)
{
    const Mesh m(4, 2);
    EXPECT_EQ(m.numNodes(), 8);
    EXPECT_EQ(m.coordOf(5), (Coord{1, 1}));
}

TEST(MeshDeathTest, InvalidNodeAborts)
{
    const Mesh m(2, 2);
    EXPECT_DEATH((void)m.coordOf(4), "out of range");
}

TEST(PortNames, AllDistinct)
{
    EXPECT_STREQ(portName(kPortNorth), "N");
    EXPECT_STREQ(portName(kPortEast), "E");
    EXPECT_STREQ(portName(kPortSouth), "S");
    EXPECT_STREQ(portName(kPortWest), "W");
    EXPECT_STREQ(portName(kPortLocal), "L");
}

} // namespace
} // namespace nox
