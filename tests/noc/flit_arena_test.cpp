/**
 * @file
 * Lifecycle tests for the flit-part arena (FlitArena) and its only
 * client, PartsVec: freelist growth and reuse accounting, release
 * poisoning (hardware-poisoned under AddressSanitizer), and the
 * hard-fault write-off path returning every spilled block.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "noc/flit.hpp"
#include "noc/flit_arena.hpp"
#include "noc/network.hpp"
#include "routers/factory.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/patterns.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define NOX_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NOX_TEST_ASAN 1
#endif
#endif

namespace nox {
namespace {

FlitDesc
descWith(std::uint64_t uid)
{
    FlitDesc d;
    d.uid = uid;
    d.payload = uid * 3;
    return d;
}

TEST(FlitArena, GrowthThenReuseFromFreelist)
{
    FlitArena &arena = FlitArena::instance();
    arena.drain();
    const FlitArenaStats before = arena.stats();

    // Exhausted freelist: every acquire is a growth.
    FlitArena::Block a = FlitArena::acquire();
    FlitArena::Block b = FlitArena::acquire();
    EXPECT_EQ(arena.stats().growths, before.growths + 2);
    EXPECT_EQ(arena.stats().reuses, before.reuses);

    // Give the blocks capacity so release parks them instead of
    // discarding empties.
    a.push_back(descWith(1));
    b.push_back(descWith(2));
    const std::size_t cap_a = a.capacity();
    FlitArena::release(std::move(a));
    FlitArena::release(std::move(b));
    EXPECT_EQ(arena.freeBlocks(), 2u);

    // Warm freelist: acquires are reuses (no growth), come back
    // empty, and keep the parked capacity.
    FlitArena::Block c = FlitArena::acquire();
    EXPECT_EQ(arena.stats().reuses, before.reuses + 1);
    EXPECT_EQ(arena.stats().growths, before.growths + 2);
    EXPECT_TRUE(c.empty());
    EXPECT_GE(c.capacity(), cap_a);

    // One more than the freelist holds: the last acquire grows again.
    FlitArena::Block d = FlitArena::acquire();
    FlitArena::Block e = FlitArena::acquire();
    EXPECT_EQ(arena.stats().reuses, before.reuses + 2);
    EXPECT_EQ(arena.stats().growths, before.growths + 3);

    FlitArena::release(std::move(c));
    FlitArena::release(std::move(d));
    FlitArena::release(std::move(e));
    EXPECT_EQ(arena.stats().live(), before.live());
    arena.drain();
}

TEST(FlitArena, PartsVecSpillAcquiresAndReleaseReturns)
{
    FlitArena &arena = FlitArena::instance();
    arena.drain();
    const FlitArenaStats before = arena.stats();
    {
        PartsVec v;
        v.push_back(descWith(1)); // inline — no arena traffic
        EXPECT_EQ(arena.stats().acquires, before.acquires);
        v.push_back(descWith(2)); // spill
        EXPECT_EQ(arena.stats().acquires, before.acquires + 1);
        EXPECT_EQ(v.size(), 2u);
        EXPECT_EQ(v[0].uid, 1u);
        EXPECT_EQ(v[1].uid, 2u);

        PartsVec copy(v); // spilled copy acquires its own block
        EXPECT_EQ(arena.stats().acquires, before.acquires + 2);
        EXPECT_EQ(copy.size(), 2u);

        PartsVec moved(std::move(copy)); // move transfers the block
        EXPECT_EQ(arena.stats().acquires, before.acquires + 2);
        EXPECT_EQ(moved.size(), 2u);
    }
    // Every owner destroyed: both blocks are back on the freelist.
    EXPECT_EQ(arena.stats().live(), before.live());
    EXPECT_EQ(arena.stats().releases, before.releases + 2);
    arena.drain();
}

TEST(FlitArena, ReleasedBlockIsPoisoned)
{
    FlitArena &arena = FlitArena::instance();
    arena.drain();

    FlitArena::Block block = FlitArena::acquire();
    block.push_back(descWith(42));
    block.push_back(descWith(43));
    const FlitDesc *stale = block.data();
    FlitArena::release(std::move(block));

#ifdef NOX_TEST_ASAN
    // Parked storage is hardware-poisoned: a stale reference into a
    // released block must abort the process, not read quietly.
    EXPECT_DEATH(
        {
            volatile std::uint64_t sink = stale->uid;
            (void)sink;
        },
        "use-after-poison");
#else
    (void)stale;
#endif

    // Reacquiring unpoisons: the recycled block is fully usable and
    // carries none of the old contents.
    FlitArena::Block again = FlitArena::acquire();
    EXPECT_TRUE(again.empty());
    again.push_back(descWith(7));
    EXPECT_EQ(again.front().uid, 7u);
    FlitArena::release(std::move(again));
    arena.drain();
}

TEST(FlitArena, HardFaultWriteOffReturnsBlocks)
{
    FlitArena &arena = FlitArena::instance();
    arena.drain();
    const FlitArenaStats before = arena.stats();
    {
        // NoX mesh under enough single-flit load that collision
        // chains (fanin >= 2) spill PartsVecs to the arena, with a
        // mid-run fail-stop router kill so in-flight chains are
        // written off rather than delivered.
        const Mesh mesh(4, 4);
        const DestinationPattern uniform(PatternKind::UniformRandom,
                                         mesh);
        NetworkParams params;
        params.width = 4;
        params.height = 4;
        params.faults.enabled = true;
        params.faults.hardRouterFaults = 1;
        params.faults.hardLinkFaults = 2;
        params.faults.hardFaultCycle = 300;
        params.faults.seed = 0xA4E7A;
        auto net = makeNetwork(params, RouterArch::Nox);
        Rng seeder(0xA4E7A);
        for (NodeId n = 0; n < net->numNodes(); ++n) {
            net->addSource(std::make_unique<BernoulliSource>(
                n, uniform, 0.25, 1, seeder.next()));
        }
        net->run(600);
        net->setSourcesEnabled(false);
        ASSERT_TRUE(net->drain(50000))
            << net->lastDrainReport().summary();
        EXPECT_GT(net->stats().faults.packetsLostHard, 0u);

        // The run must actually have exercised the spill path.
        EXPECT_GT(arena.stats().acquires, before.acquires);
    }
    // Network destroyed: every spilled block — including those of
    // flits written off by the kill and purge — is back in the arena.
    EXPECT_EQ(arena.stats().live(), before.live());
    arena.drain();
}

} // namespace
} // namespace nox
