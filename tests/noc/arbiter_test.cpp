/** @file Unit tests for the output arbiters. */

#include <gtest/gtest.h>

#include <array>

#include "noc/arbiter.hpp"

namespace nox {
namespace {

TEST(RoundRobin, NoRequestsNoGrant)
{
    RoundRobinArbiter a(5);
    EXPECT_EQ(a.grant(0), -1);
}

TEST(RoundRobin, SingleRequestWins)
{
    RoundRobinArbiter a(5);
    EXPECT_EQ(a.grant(1u << 3), 3);
}

TEST(RoundRobin, RotatesAmongContenders)
{
    RoundRobinArbiter a(4);
    const RequestMask all = 0xF;
    EXPECT_EQ(a.grant(all), 0);
    EXPECT_EQ(a.grant(all), 1);
    EXPECT_EQ(a.grant(all), 2);
    EXPECT_EQ(a.grant(all), 3);
    EXPECT_EQ(a.grant(all), 0);
}

TEST(RoundRobin, SkipsNonRequesters)
{
    RoundRobinArbiter a(4);
    EXPECT_EQ(a.grant(0b1010), 1);
    EXPECT_EQ(a.grant(0b1010), 3);
    EXPECT_EQ(a.grant(0b1010), 1);
}

TEST(RoundRobin, FairUnderSaturation)
{
    RoundRobinArbiter a(5);
    std::array<int, 5> wins{};
    for (int i = 0; i < 5000; ++i)
        wins[static_cast<std::size_t>(a.grant(0b11111))] += 1;
    for (int w : wins)
        EXPECT_EQ(w, 1000);
}

TEST(RoundRobin, ResetRestoresPointer)
{
    RoundRobinArbiter a(3);
    (void)a.grant(0b111);
    a.reset();
    EXPECT_EQ(a.pointer(), 0);
    EXPECT_EQ(a.grant(0b111), 0);
}

TEST(FixedPriority, AlwaysLowestIndex)
{
    FixedPriorityArbiter a(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.grant(0b10110), 1);
    EXPECT_EQ(a.grant(0), -1);
}

TEST(Matrix, SingleRequestWins)
{
    MatrixArbiter a(5);
    EXPECT_EQ(a.grant(1u << 4), 4);
}

TEST(Matrix, LeastRecentlyServedWins)
{
    MatrixArbiter a(3);
    EXPECT_EQ(a.grant(0b111), 0); // initial order by index
    EXPECT_EQ(a.grant(0b111), 1);
    EXPECT_EQ(a.grant(0b111), 2);
    // 0 was served longest ago among {0,2}.
    EXPECT_EQ(a.grant(0b101), 0);
    EXPECT_EQ(a.grant(0b101), 2);
}

TEST(Matrix, FairUnderSaturation)
{
    MatrixArbiter a(4);
    std::array<int, 4> wins{};
    for (int i = 0; i < 4000; ++i)
        wins[static_cast<std::size_t>(a.grant(0xF))] += 1;
    for (int w : wins)
        EXPECT_EQ(w, 1000);
}

TEST(Matrix, NoRequestsNoGrant)
{
    MatrixArbiter a(4);
    EXPECT_EQ(a.grant(0), -1);
}

} // namespace
} // namespace nox
