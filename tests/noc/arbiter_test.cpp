/** @file Unit tests for the output arbiters. */

#include <gtest/gtest.h>

#include <array>

#include "noc/arbiter.hpp"

namespace nox {
namespace {

TEST(RoundRobin, NoRequestsNoGrant)
{
    RoundRobinArbiter a(5);
    EXPECT_EQ(a.grant(0), -1);
}

TEST(RoundRobin, SingleRequestWins)
{
    RoundRobinArbiter a(5);
    EXPECT_EQ(a.grant(1u << 3), 3);
}

TEST(RoundRobin, RotatesAmongContenders)
{
    RoundRobinArbiter a(4);
    const RequestMask all = 0xF;
    EXPECT_EQ(a.grant(all), 0);
    EXPECT_EQ(a.grant(all), 1);
    EXPECT_EQ(a.grant(all), 2);
    EXPECT_EQ(a.grant(all), 3);
    EXPECT_EQ(a.grant(all), 0);
}

TEST(RoundRobin, SkipsNonRequesters)
{
    RoundRobinArbiter a(4);
    EXPECT_EQ(a.grant(0b1010), 1);
    EXPECT_EQ(a.grant(0b1010), 3);
    EXPECT_EQ(a.grant(0b1010), 1);
}

TEST(RoundRobin, FairUnderSaturation)
{
    RoundRobinArbiter a(5);
    std::array<int, 5> wins{};
    for (int i = 0; i < 5000; ++i)
        wins[static_cast<std::size_t>(a.grant(0b11111))] += 1;
    for (int w : wins)
        EXPECT_EQ(w, 1000);
}

TEST(RoundRobin, ResetRestoresPointer)
{
    RoundRobinArbiter a(3);
    (void)a.grant(0b111);
    a.reset();
    EXPECT_EQ(a.pointer(), 0);
    EXPECT_EQ(a.grant(0b111), 0);
}

TEST(FixedPriority, AlwaysLowestIndex)
{
    FixedPriorityArbiter a(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.grant(0b10110), 1);
    EXPECT_EQ(a.grant(0), -1);
}

TEST(Matrix, SingleRequestWins)
{
    MatrixArbiter a(5);
    EXPECT_EQ(a.grant(1u << 4), 4);
}

TEST(Matrix, LeastRecentlyServedWins)
{
    MatrixArbiter a(3);
    EXPECT_EQ(a.grant(0b111), 0); // initial order by index
    EXPECT_EQ(a.grant(0b111), 1);
    EXPECT_EQ(a.grant(0b111), 2);
    // 0 was served longest ago among {0,2}.
    EXPECT_EQ(a.grant(0b101), 0);
    EXPECT_EQ(a.grant(0b101), 2);
}

TEST(Matrix, FairUnderSaturation)
{
    MatrixArbiter a(4);
    std::array<int, 4> wins{};
    for (int i = 0; i < 4000; ++i)
        wins[static_cast<std::size_t>(a.grant(0xF))] += 1;
    for (int w : wins)
        EXPECT_EQ(w, 1000);
}

TEST(Matrix, NoRequestsNoGrant)
{
    MatrixArbiter a(4);
    EXPECT_EQ(a.grant(0), -1);
}

// -- boundary-width coverage: RequestMask is 64 bits wide so a
// concentrated CMesh radix beyond 32 cannot silently truncate.

TEST(MaskHelpers, CoverFullWidth)
{
    EXPECT_EQ(maskBit(0), RequestMask{1});
    EXPECT_EQ(maskBit(33), RequestMask{1} << 33);
    EXPECT_EQ(maskBit(63), RequestMask{1} << 63);
    EXPECT_EQ(maskAll(1), RequestMask{1});
    EXPECT_EQ(maskAll(33), (RequestMask{1} << 33) - 1);
    EXPECT_EQ(maskAll(64), ~RequestMask{0});
}

TEST(RoundRobin, GrantsAboveBit32)
{
    RoundRobinArbiter a(64);
    EXPECT_EQ(a.grant(maskBit(40)), 40);
    EXPECT_EQ(a.grant(maskBit(63)), 63);
    // Pointer wrapped past 63: lowest index wins again.
    EXPECT_EQ(a.grant(maskBit(5) | maskBit(45)), 5);
    EXPECT_EQ(a.grant(maskBit(5) | maskBit(45)), 45);
}

TEST(RoundRobin, FairAtBoundaryWidth)
{
    RoundRobinArbiter a(64);
    std::array<int, 64> wins{};
    for (int i = 0; i < 6400; ++i)
        wins[static_cast<std::size_t>(a.grant(~RequestMask{0}))] += 1;
    for (int w : wins)
        EXPECT_EQ(w, 100);
}

TEST(FixedPriority, GrantsAboveBit32)
{
    FixedPriorityArbiter a(64);
    EXPECT_EQ(a.grant(maskBit(63)), 63);
    EXPECT_EQ(a.grant(maskBit(34) | maskBit(63)), 34);
}

TEST(Matrix, LeastRecentlyServedAtBoundaryWidth)
{
    MatrixArbiter a(64);
    EXPECT_EQ(a.grant(maskBit(2) | maskBit(62)), 2);
    EXPECT_EQ(a.grant(maskBit(2) | maskBit(62)), 62);
    EXPECT_EQ(a.grant(maskBit(2) | maskBit(62)), 2);
}

TEST(ArbiterDeathTest, WidthBeyondMaskRejected)
{
    EXPECT_DEATH(RoundRobinArbiter a(65), "bad arbiter width");
    EXPECT_DEATH(MatrixArbiter a(65), "bad arbiter width");
}

} // namespace
} // namespace nox
