/** @file Tests for the experiment runners (synthetic + application)
 *  including paper-shape assertions on small configurations. */

#include <gtest/gtest.h>

#include "coherence/trace_generator.hpp"
#include "core/sim_runner.hpp"

namespace nox {
namespace {

TEST(UnitConversion, MbpsFlitsRoundTrip)
{
    // 8000 MB/s at a 1 ns clock is exactly one 8-byte flit per cycle.
    EXPECT_DOUBLE_EQ(mbpsToFlitsPerCycle(8000.0, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(flitsPerCycleToMbps(1.0, 1.0), 8000.0);
    for (double mbps : {100.0, 575.0, 2775.0}) {
        for (double period : {0.69, 0.76, 0.92}) {
            EXPECT_NEAR(flitsPerCycleToMbps(
                            mbpsToFlitsPerCycle(mbps, period), period),
                        mbps, 1e-9);
        }
    }
}

TEST(UnitConversion, FasterClockMeansFewerFlitsPerCycle)
{
    EXPECT_LT(mbpsToFlitsPerCycle(1000.0, 0.69),
              mbpsToFlitsPerCycle(1000.0, 0.92));
}

SyntheticConfig
quickConfig(RouterArch arch, double mbps)
{
    SyntheticConfig c;
    c.arch = arch;
    c.injectionMBps = mbps;
    c.warmupCycles = 2000;
    c.measureCycles = 6000;
    c.drainLimitCycles = 60000;
    return c;
}

TEST(RunSynthetic, LowLoadLatencyNearZeroLoad)
{
    const RunResult r = runSynthetic(quickConfig(RouterArch::Nox, 200));
    EXPECT_FALSE(r.saturated);
    EXPECT_TRUE(r.drained);
    EXPECT_GT(r.packetsMeasured, 1000u);
    // 8x8 mesh zero-load is ~9 cycles; allow queueing slack.
    EXPECT_GT(r.avgLatencyCycles, 7.0);
    EXPECT_LT(r.avgLatencyCycles, 12.0);
    EXPECT_NEAR(r.avgLatencyNs, r.avgLatencyCycles * r.periodNs,
                1e-9);
}

TEST(RunSynthetic, AcceptedTracksOfferedBelowSaturation)
{
    const RunResult r =
        runSynthetic(quickConfig(RouterArch::SpecAccurate, 800));
    EXPECT_FALSE(r.saturated);
    EXPECT_NEAR(r.acceptedMBps, r.offeredMBps, r.offeredMBps * 0.08);
}

TEST(RunSynthetic, LatencyIncreasesWithLoad)
{
    const RunResult lo = runSynthetic(quickConfig(RouterArch::Nox, 300));
    const RunResult hi =
        runSynthetic(quickConfig(RouterArch::Nox, 1800));
    EXPECT_GT(hi.avgLatencyNs, lo.avgLatencyNs);
}

TEST(RunSynthetic, SaturationDetected)
{
    const RunResult r =
        runSynthetic(quickConfig(RouterArch::SpecFast, 4000));
    EXPECT_TRUE(r.saturated);
}

TEST(RunSynthetic, BeyondPeakInjectionMarkedSaturated)
{
    const RunResult r =
        runSynthetic(quickConfig(RouterArch::NonSpeculative, 20000));
    EXPECT_TRUE(r.saturated);
    EXPECT_EQ(r.packetsMeasured, 0u);
}

TEST(RunSynthetic, ClockPeriodRankingAtLowLoad)
{
    // At low load every router is near zero-load, so nanosecond
    // latency must follow Table 2's clock ordering (§5.1).
    double lat[4];
    int i = 0;
    for (RouterArch a : kAllArchs)
        lat[i++] = runSynthetic(quickConfig(a, 200)).avgLatencyNs;
    // NonSpec slowest; SpecFast fastest.
    EXPECT_GT(lat[0], lat[1]);
    EXPECT_GT(lat[0], lat[2]);
    EXPECT_GT(lat[0], lat[3]);
    EXPECT_LT(lat[1], lat[2]);
    EXPECT_LT(lat[2], lat[3]);
}

TEST(RunSynthetic, NoxWinsHighLoadSingleFlit)
{
    // Above the crossover region the NoX offers the lowest latency
    // (Fig 8a shape).
    double lat[4];
    int i = 0;
    for (RouterArch a : kAllArchs)
        lat[i++] = runSynthetic(quickConfig(a, 2500)).avgLatencyNs;
    EXPECT_LT(lat[3], lat[0]);
    EXPECT_LT(lat[3], lat[1]);
    EXPECT_LT(lat[3], lat[2]);
}

TEST(RunSynthetic, EnergyBreakdownPopulated)
{
    const RunResult r = runSynthetic(quickConfig(RouterArch::Nox, 800));
    EXPECT_GT(r.energy.totalPj(), 0.0);
    EXPECT_GT(r.energy.linkFraction(), 0.4);
    EXPECT_GT(r.powerW, 0.0);
    EXPECT_GT(r.energyPerPacketPj, 0.0);
    EXPECT_GT(r.ed2, 0.0);
}

TEST(RunSynthetic, SpecRoutersWasteLinkEnergyNoxDoesNot)
{
    const RunResult spec =
        runSynthetic(quickConfig(RouterArch::SpecAccurate, 1500));
    const RunResult noxr =
        runSynthetic(quickConfig(RouterArch::Nox, 1500));
    // Same offered bytes; the speculative router's link energy
    // includes misspeculation drives (§3.2).
    EXPECT_GT(spec.energy.linkPj, noxr.energy.linkPj * 1.005);
}

TEST(RunSynthetic, SelfSimilarRunsAndIsBurstier)
{
    SyntheticConfig c = quickConfig(RouterArch::Nox, 800);
    c.selfSimilar = true;
    c.measureCycles = 10000;
    const RunResult pareto = runSynthetic(c);
    EXPECT_GT(pareto.packetsMeasured, 100u);
    // Bursty traffic queues more at equal mean load.
    const RunResult bern = runSynthetic(quickConfig(RouterArch::Nox,
                                                    800));
    EXPECT_GT(pareto.avgLatencyNs, bern.avgLatencyNs);
}

TEST(RunSynthetic, DeterministicAcrossRuns)
{
    const RunResult a = runSynthetic(quickConfig(RouterArch::Nox, 600));
    const RunResult b = runSynthetic(quickConfig(RouterArch::Nox, 600));
    EXPECT_DOUBLE_EQ(a.avgLatencyNs, b.avgLatencyNs);
    EXPECT_EQ(a.packetsMeasured, b.packetsMeasured);
}

TEST(RunApplication, ReplaysTraceThroughBothNetworks)
{
    CmpParams params;
    CoherenceTraceGenerator gen(params, findWorkload("water"), 11);
    const Trace trace = gen.generate(2500.0, 5000.0);

    AppConfig config;
    config.arch = RouterArch::Nox;
    const AppResult r = runApplication(config, trace);
    EXPECT_TRUE(r.drained);
    EXPECT_GT(r.packets, 1000u);
    EXPECT_GT(r.avgLatencyNs, 4.0);
    EXPECT_LT(r.avgLatencyNs, 60.0);
    EXPECT_GT(r.avgLatencyNsRequest, 0.0);
    EXPECT_GT(r.avgLatencyNsReply, 0.0);
    EXPECT_GE(r.avgTotalLatencyNs, r.avgLatencyNs);
    EXPECT_GT(r.energyPerPacketPj, 0.0);
    EXPECT_GT(r.ed2, 0.0);
}

TEST(RunApplication, ArchitectureOrderingOnApplicationTraffic)
{
    CmpParams params;
    CoherenceTraceGenerator gen(params, findWorkload("barnes"), 11);
    const Trace trace = gen.generate(4000.0, 8000.0);

    double lat[4];
    int i = 0;
    for (RouterArch a : kAllArchs) {
        AppConfig config;
        config.arch = a;
        lat[i++] = runApplication(config, trace).avgLatencyNs;
    }
    // NonSpec worst; the NoX/Spec-Accurate pair leads (EXPERIMENTS.md
    // discusses the intra-pair placement vs the paper).
    EXPECT_GT(lat[0], lat[2]);
    EXPECT_GT(lat[0], lat[3]);
    EXPECT_GT(lat[1], lat[2]);
    EXPECT_GT(lat[1], lat[3]);
}

} // namespace
} // namespace nox
