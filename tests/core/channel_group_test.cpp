/** @file Tests for the multiple-physical-networks substrate (§2.8). */

#include <gtest/gtest.h>

#include "core/channel_group.hpp"

namespace nox {
namespace {

NetworkParams
params4x4()
{
    NetworkParams p;
    p.width = 4;
    p.height = 4;
    return p;
}

TEST(ChannelGroup, ClassMappingRequestReply)
{
    PhysicalChannelGroup g(params4x4(), RouterArch::Nox, 2);
    EXPECT_EQ(g.numChannels(), 2);
    EXPECT_EQ(g.channelOf(TrafficClass::Request), 0);
    EXPECT_EQ(g.channelOf(TrafficClass::Reply), 1);
    EXPECT_EQ(g.channelOf(TrafficClass::Synthetic), 0);
}

TEST(ChannelGroup, SingleChannelFoldsEverything)
{
    PhysicalChannelGroup g(params4x4(), RouterArch::Nox, 1);
    EXPECT_EQ(g.channelOf(TrafficClass::Reply), 0);
}

TEST(ChannelGroup, ClassesTravelOnSeparateNetworks)
{
    PhysicalChannelGroup g(params4x4(), RouterArch::SpecAccurate, 2);
    g.injectPacket(0, 5, 1, TrafficClass::Request);
    g.injectPacket(5, 0, 9, TrafficClass::Reply);
    ASSERT_TRUE(g.drain(500));

    EXPECT_EQ(g.channel(0).stats().packetsEjected, 1u);
    EXPECT_EQ(g.channel(0).stats().flitsEjected, 1u);
    EXPECT_EQ(g.channel(1).stats().packetsEjected, 1u);
    EXPECT_EQ(g.channel(1).stats().flitsEjected, 9u);
    EXPECT_EQ(g.packetsEjected(), 2u);
}

TEST(ChannelGroup, LockstepAdvancesAllChannels)
{
    PhysicalChannelGroup g(params4x4(), RouterArch::Nox, 3);
    g.run(10);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(g.channel(i).now(), 10u);
    EXPECT_EQ(g.now(), 10u);
}

TEST(ChannelGroup, MergedStatsCombineChannels)
{
    PhysicalChannelGroup g(params4x4(), RouterArch::Nox, 2);
    for (int i = 0; i < 5; ++i) {
        g.injectPacket(0, 15, 1, TrafficClass::Request);
        g.injectPacket(15, 0, 1, TrafficClass::Reply);
    }
    ASSERT_TRUE(g.drain(1000));
    EXPECT_EQ(g.mergedLatency().count(), 10u);
    EXPECT_EQ(g.mergedNetLatency().count(), 10u);
    EXPECT_GT(g.totalEnergyEvents().linkFlits, 0u);
    EXPECT_EQ(g.packetsInFlight(), 0u);
}

TEST(ChannelGroup, IsolationNoCrossChannelInterference)
{
    // Saturating the reply channel must not delay request packets —
    // the whole point of physical-channel class isolation.
    PhysicalChannelGroup g(params4x4(), RouterArch::Nox, 2);
    for (int i = 0; i < 40; ++i)
        g.injectPacket(1, 2, 9, TrafficClass::Reply);
    g.injectPacket(1, 2, 1, TrafficClass::Request);
    // Step a handful of cycles: the request, alone on channel 0,
    // must complete quickly despite channel 1 being busy.
    for (int i = 0; i < 15; ++i)
        g.step();
    EXPECT_EQ(g.channel(0).stats().packetsEjected, 1u);
    EXPECT_LT(g.channel(1).stats().packetsEjected, 40u);
    ASSERT_TRUE(g.drain(5000));
}

TEST(ChannelGroup, ExplicitChannelInjection)
{
    PhysicalChannelGroup g(params4x4(), RouterArch::NonSpeculative,
                           3);
    g.injectPacket(2, 0, 5, 1, TrafficClass::Synthetic);
    ASSERT_TRUE(g.drain(500));
    EXPECT_EQ(g.channel(2).stats().packetsEjected, 1u);
    EXPECT_EQ(g.channel(0).stats().packetsEjected, 0u);
}

TEST(ChannelGroupDeathTest, BadChannelIndexAborts)
{
    PhysicalChannelGroup g(params4x4(), RouterArch::Nox, 2);
    EXPECT_DEATH(
        g.injectPacket(7, 0, 5, 1, TrafficClass::Synthetic),
        "bad channel");
}

} // namespace
} // namespace nox
