/** @file Runner coverage extras: percentiles, CMesh configurations,
 *  activity counters, and the fragmentation-equivalence sanity. */

#include <gtest/gtest.h>

#include "core/sim_runner.hpp"

namespace nox {
namespace {

SyntheticConfig
quick(RouterArch arch, double mbps)
{
    SyntheticConfig c;
    c.arch = arch;
    c.injectionMBps = mbps;
    c.warmupCycles = 2000;
    c.measureCycles = 6000;
    c.drainLimitCycles = 60000;
    return c;
}

TEST(RunnerExtras, PercentilesOrderedAboveMean)
{
    const RunResult r = runSynthetic(quick(RouterArch::Nox, 1500));
    EXPECT_GT(r.p95LatencyNs, r.avgLatencyNs);
    EXPECT_GE(r.p99LatencyNs, r.p95LatencyNs);
    // Tail below ~4x mean at this moderate load.
    EXPECT_LT(r.p99LatencyNs, 4.0 * r.avgLatencyNs);
}

TEST(RunnerExtras, WasteCountersByArchitecture)
{
    const RunResult noxr = runSynthetic(quick(RouterArch::Nox, 1800));
    EXPECT_EQ(noxr.misspecCycles, 0u);
    EXPECT_EQ(noxr.abortCycles, 0u); // single-flit never aborts
    EXPECT_EQ(noxr.wastedLinkCycles, 0u);

    const RunResult acc =
        runSynthetic(quick(RouterArch::SpecAccurate, 1800));
    EXPECT_GT(acc.misspecCycles, 0u);
    EXPECT_EQ(acc.wastedLinkCycles, acc.misspecCycles);

    SyntheticConfig mf = quick(RouterArch::Nox, 1500);
    mf.packetFlits = 9;
    const RunResult data = runSynthetic(mf);
    EXPECT_GT(data.abortCycles, 0u);
}

TEST(RunnerExtras, CMeshConfigurationRuns)
{
    SyntheticConfig c = quick(RouterArch::Nox, 700);
    c.width = 4;
    c.height = 4;
    c.concentration = 4;
    const RunResult r = runSynthetic(c);
    EXPECT_FALSE(r.saturated);
    EXPECT_GT(r.packetsMeasured, 500u);
    // The CMesh clock is slower than the plain mesh's (radix-8
    // arbiter, 4 mm channels).
    EXPECT_GT(r.periodNs, 0.80);
}

TEST(RunnerExtras, CMeshLowerZeroLoadCycles)
{
    // Half the network diameter: fewer hops at low load than the
    // 8x8 mesh, in cycles.
    SyntheticConfig mesh = quick(RouterArch::Nox, 300);
    SyntheticConfig cmesh = quick(RouterArch::Nox, 300);
    cmesh.width = 4;
    cmesh.height = 4;
    cmesh.concentration = 4;
    const RunResult rm = runSynthetic(mesh);
    const RunResult rc = runSynthetic(cmesh);
    EXPECT_LT(rc.avgLatencyCycles, rm.avgLatencyCycles);
}

TEST(RunnerExtras, SeedChangesTrafficNotInvariants)
{
    SyntheticConfig a = quick(RouterArch::Nox, 900);
    SyntheticConfig b = a;
    b.seed = a.seed + 1;
    const RunResult ra = runSynthetic(a);
    const RunResult rb = runSynthetic(b);
    EXPECT_TRUE(ra.drained);
    EXPECT_TRUE(rb.drained);
    EXPECT_NE(ra.packetsMeasured, rb.packetsMeasured);
    EXPECT_NEAR(ra.avgLatencyNs, rb.avgLatencyNs,
                0.15 * ra.avgLatencyNs);
}

TEST(RunnerExtras, FragmentedPayloadEquivalence)
{
    // The §2.7 fragmentation ablation's premise: 9-flit packets at
    // rate R and 1-flit packets at rate 12R/9 carry the same payload
    // with header overhead; both configurations must run unsaturated
    // at a moderate payload rate and deliver proportional flit
    // volume.
    SyntheticConfig contig = quick(RouterArch::Nox, 900);
    contig.packetFlits = 9;
    SyntheticConfig frag = quick(RouterArch::Nox, 900.0 * 12 / 9);
    frag.packetFlits = 1;

    const RunResult rc = runSynthetic(contig);
    const RunResult rf = runSynthetic(frag);
    EXPECT_FALSE(rc.saturated);
    EXPECT_FALSE(rf.saturated);
    EXPECT_EQ(rf.abortCycles, 0u);
    EXPECT_NEAR(rf.acceptedMBps / rc.acceptedMBps, 12.0 / 9.0, 0.08);
}

} // namespace
} // namespace nox
