/** @file Tests for the Bernoulli and self-similar Pareto sources. */

#include <gtest/gtest.h>

#include <vector>

#include "traffic/bernoulli_source.hpp"
#include "traffic/pareto_source.hpp"

namespace nox {
namespace {

/** Captures injections without a network. */
class FakeInjector : public PacketInjector
{
  public:
    struct Event
    {
        NodeId src, dst;
        int flits;
        Cycle when;
    };

    PacketId
    injectPacket(NodeId src, NodeId dst, int flits, Cycle now,
                 TrafficClass) override
    {
        events.push_back({src, dst, flits, now});
        return static_cast<PacketId>(events.size());
    }

    std::size_t sourceQueueFlits(NodeId) const override { return 0; }

    std::uint64_t
    totalFlits() const
    {
        std::uint64_t f = 0;
        for (const auto &e : events)
            f += static_cast<std::uint64_t>(e.flits);
        return f;
    }

    std::vector<Event> events;
};

TEST(BernoulliSource, RateMatchesTarget)
{
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, m);
    BernoulliSource src(0, pattern, 0.2, 1, 42);
    FakeInjector inj;
    const Cycle cycles = 100000;
    for (Cycle t = 0; t < cycles; ++t)
        src.tick(t, inj);
    const double rate =
        static_cast<double>(inj.totalFlits()) / cycles;
    EXPECT_NEAR(rate, 0.2, 0.01);
}

TEST(BernoulliSource, MultiFlitPacketsKeepFlitRate)
{
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, m);
    BernoulliSource src(0, pattern, 0.18, 9, 43);
    FakeInjector inj;
    const Cycle cycles = 200000;
    for (Cycle t = 0; t < cycles; ++t)
        src.tick(t, inj);
    const double rate =
        static_cast<double>(inj.totalFlits()) / cycles;
    EXPECT_NEAR(rate, 0.18, 0.01);
    for (const auto &e : inj.events)
        EXPECT_EQ(e.flits, 9);
}

TEST(BernoulliSource, ZeroRateInjectsNothing)
{
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, m);
    BernoulliSource src(0, pattern, 0.0, 1, 44);
    FakeInjector inj;
    for (Cycle t = 0; t < 1000; ++t)
        src.tick(t, inj);
    EXPECT_TRUE(inj.events.empty());
}

TEST(BernoulliSource, SilentOnSelfMappedDeterministicSource)
{
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::Transpose, m);
    // Node (3,3) is on the transpose diagonal.
    BernoulliSource src(m.nodeAt({3, 3}), pattern, 0.5, 1, 45);
    FakeInjector inj;
    for (Cycle t = 0; t < 1000; ++t)
        src.tick(t, inj);
    EXPECT_TRUE(inj.events.empty());
}

TEST(ParetoSource, MeanRateMatchesTarget)
{
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, m);
    // Long horizon: heavy-tailed phases converge slowly.
    for (double target : {0.1, 0.3}) {
        double total = 0.0;
        const int streams = 16;
        const Cycle cycles = 200000;
        for (int s = 0; s < streams; ++s) {
            ParetoSource src(0, pattern, target, 1,
                             1000 + static_cast<std::uint64_t>(s));
            FakeInjector inj;
            for (Cycle t = 0; t < cycles; ++t)
                src.tick(t, inj);
            total += static_cast<double>(inj.totalFlits()) / cycles;
        }
        EXPECT_NEAR(total / streams, target, target * 0.15)
            << "target " << target;
    }
}

TEST(ParetoSource, TrafficIsBursty)
{
    // Self-similar traffic must be burstier than Bernoulli at equal
    // rate: compare the variance of per-window packet counts.
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, m);
    const double rate = 0.2;
    const Cycle cycles = 200000;
    const Cycle window = 100;

    auto window_variance = [&](auto &src) {
        FakeInjector inj;
        for (Cycle t = 0; t < cycles; ++t)
            src.tick(t, inj);
        std::vector<double> counts(cycles / window, 0.0);
        for (const auto &e : inj.events)
            counts[e.when / window] += 1.0;
        double mean = 0.0;
        for (double c : counts)
            mean += c;
        mean /= static_cast<double>(counts.size());
        double var = 0.0;
        for (double c : counts)
            var += (c - mean) * (c - mean);
        return var / static_cast<double>(counts.size());
    };

    BernoulliSource bern(0, pattern, rate, 1, 7);
    ParetoSource pareto(0, pattern, rate, 1, 7);
    EXPECT_GT(window_variance(pareto), 3.0 * window_variance(bern));
}

TEST(ParetoSource, BurstAddressesSingleDestination)
{
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, m);
    ParetoSource src(0, pattern, 0.3, 1, 11);
    FakeInjector inj;
    for (Cycle t = 0; t < 5000; ++t)
        src.tick(t, inj);
    ASSERT_GT(inj.events.size(), 50u);
    // Consecutive-cycle injections belong to one burst -> same dest.
    for (std::size_t i = 1; i < inj.events.size(); ++i) {
        if (inj.events[i].when == inj.events[i - 1].when + 1) {
            EXPECT_EQ(inj.events[i].dst, inj.events[i - 1].dst);
        }
    }
}

TEST(ParetoSource, OffScaleGrowsAsRateShrinks)
{
    const Mesh m(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, m);
    ParetoSource slow(0, pattern, 0.05, 1, 1);
    ParetoSource fast(0, pattern, 0.5, 1, 1);
    EXPECT_GT(slow.offScale(), fast.offScale());
}

} // namespace
} // namespace nox
