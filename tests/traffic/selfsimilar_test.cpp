/**
 * @file
 * Statistical self-similarity check for the Pareto ON/OFF source.
 *
 * Aggregating a self-similar process over windows of size m shrinks
 * the variance of the per-window rate like m^(2H-2) with Hurst
 * parameter H > 0.5, much slower than the m^-1 of memoryless
 * (Bernoulli/Poisson) traffic — the defining property from Leland et
 * al. [15] that §5.1's traffic generator is meant to reproduce.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "traffic/bernoulli_source.hpp"
#include "traffic/pareto_source.hpp"

namespace nox {
namespace {

class CountingInjector : public PacketInjector
{
  public:
    PacketId
    injectPacket(NodeId, NodeId, int, Cycle now, TrafficClass) override
    {
        perCycle[now] += 1;
        return 1;
    }

    std::size_t sourceQueueFlits(NodeId) const override { return 0; }

    std::vector<int> perCycle;
};

/** Slope of log(var of m-aggregated rate) vs log(m). */
template <typename Source>
double
varianceDecaySlope(Source &src, Cycle cycles)
{
    CountingInjector inj;
    inj.perCycle.assign(cycles, 0);
    for (Cycle t = 0; t < cycles; ++t)
        src.tick(t, inj);

    std::vector<double> log_m, log_var;
    for (std::size_t m : {16u, 64u, 256u, 1024u}) {
        const std::size_t windows = cycles / m;
        double mean = 0.0;
        std::vector<double> agg(windows, 0.0);
        for (std::size_t w = 0; w < windows; ++w) {
            for (std::size_t i = 0; i < m; ++i)
                agg[w] += inj.perCycle[w * m + i];
            agg[w] /= static_cast<double>(m);
            mean += agg[w];
        }
        mean /= static_cast<double>(windows);
        double var = 0.0;
        for (double a : agg)
            var += (a - mean) * (a - mean);
        var /= static_cast<double>(windows);
        log_m.push_back(std::log(static_cast<double>(m)));
        log_var.push_back(std::log(std::max(var, 1e-12)));
    }
    // Least-squares slope.
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const auto n = static_cast<double>(log_m.size());
    for (std::size_t i = 0; i < log_m.size(); ++i) {
        sx += log_m[i];
        sy += log_var[i];
        sxx += log_m[i] * log_m[i];
        sxy += log_m[i] * log_var[i];
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

TEST(SelfSimilarity, ParetoDecaysSlowerThanBernoulli)
{
    const Mesh mesh(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, mesh);
    const Cycle cycles = 1 << 18;

    // Average the slope over several independent streams (heavy
    // tails make single streams noisy).
    double pareto_slope = 0.0, bern_slope = 0.0;
    const int streams = 6;
    for (int s = 0; s < streams; ++s) {
        ParetoSource pareto(0, pattern, 0.25, 1,
                            1000 + static_cast<std::uint64_t>(s));
        BernoulliSource bern(0, pattern, 0.25, 1,
                             2000 + static_cast<std::uint64_t>(s));
        pareto_slope += varianceDecaySlope(pareto, cycles);
        bern_slope += varianceDecaySlope(bern, cycles);
    }
    pareto_slope /= streams;
    bern_slope /= streams;

    // Memoryless traffic: slope ~ -1. Self-similar with
    // alpha = 1.4 => H = (3 - alpha)/2 = 0.8 => slope ~ -0.4.
    EXPECT_LT(bern_slope, -0.85);
    EXPECT_GT(pareto_slope, -0.75)
        << "Pareto source is not long-range dependent";
    EXPECT_GT(bern_slope + 0.25, pareto_slope - 1e9); // sanity guard
    EXPECT_GT(pareto_slope, bern_slope + 0.2);
}

TEST(SelfSimilarity, HurstEstimateInSelfSimilarRange)
{
    const Mesh mesh(8, 8);
    const DestinationPattern pattern(PatternKind::UniformRandom, mesh);
    double slope = 0.0;
    const int streams = 6;
    for (int s = 0; s < streams; ++s) {
        ParetoSource src(0, pattern, 0.25, 1,
                         500 + static_cast<std::uint64_t>(s));
        slope += varianceDecaySlope(src, 1 << 18);
    }
    slope /= streams;
    const double hurst = 1.0 + slope / 2.0;
    // Theory for alpha=1.4 gives H = 0.8; accept the self-similar
    // band (estimators on finite traces are biased toward 0.5).
    EXPECT_GT(hurst, 0.55);
    EXPECT_LE(hurst, 1.0);
}

} // namespace
} // namespace nox
