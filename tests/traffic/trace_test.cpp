/** @file Tests for trace I/O and nanosecond-to-cycle replay. */

#include <gtest/gtest.h>

#include <sstream>

#include "traffic/replay_source.hpp"
#include "traffic/trace.hpp"

namespace nox {
namespace {

Trace
sampleTrace()
{
    Trace t;
    t.name = "sample";
    t.durationNs = 100.0;
    t.records = {
        {1.5, 0, 5, 8, 0, TrafficClass::Request},
        {2.0, 5, 0, 72, 1, TrafficClass::Reply},
        {50.0, 3, 9, 8, 0, TrafficClass::Request},
        {99.0, 9, 3, 72, 1, TrafficClass::Reply},
    };
    return t;
}

TEST(Trace, FlitSizing)
{
    TraceRecord ctrl{0.0, 0, 1, 8, 0, TrafficClass::Request};
    TraceRecord data{0.0, 0, 1, 72, 1, TrafficClass::Reply};
    EXPECT_EQ(ctrl.flits(), 1);  // 8-byte control packet, 64-bit flit
    EXPECT_EQ(data.flits(), 9);  // 72-byte data packet
    TraceRecord odd{0.0, 0, 1, 12, 0, TrafficClass::Request};
    EXPECT_EQ(odd.flits(), 2);   // rounds up
}

TEST(Trace, RoundTripThroughStream)
{
    const Trace t = sampleTrace();
    std::stringstream ss;
    writeTrace(ss, t);
    const Trace u = readTrace(ss, "sample");
    ASSERT_EQ(u.records.size(), t.records.size());
    EXPECT_DOUBLE_EQ(u.durationNs, t.durationNs);
    for (std::size_t i = 0; i < t.records.size(); ++i) {
        EXPECT_DOUBLE_EQ(u.records[i].timeNs, t.records[i].timeNs);
        EXPECT_EQ(u.records[i].src, t.records[i].src);
        EXPECT_EQ(u.records[i].dst, t.records[i].dst);
        EXPECT_EQ(u.records[i].sizeBytes, t.records[i].sizeBytes);
        EXPECT_EQ(u.records[i].network, t.records[i].network);
        EXPECT_EQ(static_cast<int>(u.records[i].cls),
                  static_cast<int>(t.records[i].cls));
    }
}

TEST(Trace, ReadSortsByTime)
{
    std::stringstream ss;
    ss << "5.0 0 1 8 0 1\n1.0 2 3 8 0 1\n";
    const Trace t = readTrace(ss);
    ASSERT_EQ(t.records.size(), 2u);
    EXPECT_DOUBLE_EQ(t.records[0].timeNs, 1.0);
    EXPECT_DOUBLE_EQ(t.records[1].timeNs, 5.0);
}

TEST(Trace, PerNetworkSplit)
{
    const Trace t = sampleTrace();
    EXPECT_EQ(t.forNetwork(0).size(), 2u);
    EXPECT_EQ(t.forNetwork(1).size(), 2u);
    for (const auto &r : t.forNetwork(1))
        EXPECT_EQ(r.sizeBytes, 72u);
}

TEST(Trace, LoadAccounting)
{
    const Trace t = sampleTrace();
    // Request net: 16 bytes over 100 ns over N nodes.
    EXPECT_NEAR(t.bytesPerNsPerNode(4, 0), 16.0 / 100.0 / 4.0, 1e-12);
    EXPECT_NEAR(t.bytesPerNsPerNode(4, 1), 144.0 / 100.0 / 4.0, 1e-12);
}

class ReplayInjector : public PacketInjector
{
  public:
    struct Event
    {
        NodeId src, dst;
        int flits;
        Cycle when;
    };

    PacketId
    injectPacket(NodeId src, NodeId dst, int flits, Cycle now,
                 TrafficClass) override
    {
        events.push_back({src, dst, flits, now});
        return 1;
    }

    std::size_t sourceQueueFlits(NodeId) const override { return 0; }

    std::vector<Event> events;
};

TEST(ReplaySource, ConvertsNsToCyclesAtPeriod)
{
    // Period 0.76 ns: a 1.5 ns event lands at cycle ceil(1.97) = 2.
    ReplaySource src(sampleTrace().forNetwork(0), 0.76);
    ReplayInjector inj;
    for (Cycle t = 0; t < 200 && !src.done(); ++t)
        src.tick(t, inj);
    ASSERT_EQ(inj.events.size(), 2u);
    EXPECT_EQ(inj.events[0].when, 2u);   // ceil(1.5/0.76)
    EXPECT_EQ(inj.events[0].flits, 1);
    EXPECT_EQ(inj.events[1].when, 66u);  // ceil(50/0.76)
    EXPECT_TRUE(src.done());
}

TEST(ReplaySource, FasterClockMeansLaterCycleNumbers)
{
    ReplaySource slow(sampleTrace().forNetwork(0), 0.92);
    ReplaySource fast(sampleTrace().forNetwork(0), 0.69);
    ReplayInjector a, b;
    for (Cycle t = 0; t < 200; ++t) {
        slow.tick(t, a);
        fast.tick(t, b);
    }
    ASSERT_EQ(a.events.size(), b.events.size());
    // Same wall-clock instant -> more cycles on the faster network.
    EXPECT_LE(a.events[1].when, b.events[1].when);
}

TEST(ReplaySource, CatchesUpAfterIdleTicks)
{
    // If tick is first called late (e.g. cycle 100), all due records
    // inject immediately rather than being dropped.
    ReplaySource src(sampleTrace().forNetwork(0), 1.0);
    ReplayInjector inj;
    src.tick(100, inj);
    EXPECT_EQ(inj.events.size(), 2u);
}

} // namespace
} // namespace nox
