/** @file Unit tests for the synthetic traffic patterns. */

#include <gtest/gtest.h>

#include <set>

#include "traffic/patterns.hpp"

namespace nox {
namespace {

TEST(Patterns, ParseAndNameRoundTrip)
{
    for (PatternKind k : kAllPatterns)
        EXPECT_EQ(parsePattern(patternName(k)), k);
}

TEST(PatternsDeathTest, UnknownNameFatal)
{
    EXPECT_EXIT((void)parsePattern("nonsense"),
                ::testing::ExitedWithCode(1), "unknown traffic");
}

TEST(Patterns, UniformNeverSelfCoversAll)
{
    const Mesh m(8, 8);
    const DestinationPattern p(PatternKind::UniformRandom, m);
    EXPECT_FALSE(p.isDeterministic());
    Rng rng(1);
    std::set<NodeId> seen;
    for (int i = 0; i < 5000; ++i) {
        const NodeId d = p.pick(7, rng);
        EXPECT_NE(d, 7);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 64);
        seen.insert(d);
    }
    EXPECT_EQ(seen.size(), 63u);
}

TEST(Patterns, TransposeSwapsCoordinates)
{
    const Mesh m(8, 8);
    const DestinationPattern p(PatternKind::Transpose, m);
    EXPECT_TRUE(p.isDeterministic());
    Rng rng(1);
    EXPECT_EQ(p.pick(m.nodeAt({2, 5}), rng), m.nodeAt({5, 2}));
    EXPECT_EQ(p.pick(m.nodeAt({0, 7}), rng), m.nodeAt({7, 0}));
    // Diagonal sources map to themselves and stay silent.
    EXPECT_EQ(p.pick(m.nodeAt({3, 3}), rng), kInvalidNode);
}

TEST(Patterns, BitComplementMirrorsBothAxes)
{
    const Mesh m(8, 8);
    const DestinationPattern p(PatternKind::BitComplement, m);
    Rng rng(1);
    EXPECT_EQ(p.pick(m.nodeAt({0, 0}), rng), m.nodeAt({7, 7}));
    EXPECT_EQ(p.pick(m.nodeAt({2, 5}), rng), m.nodeAt({5, 2}));
    EXPECT_EQ(p.pick(m.nodeAt({1, 6}), rng), m.nodeAt({6, 1}));
}

TEST(Patterns, BitReverseReversesIndexBits)
{
    const Mesh m(8, 8); // 64 nodes, 6 index bits
    const DestinationPattern p(PatternKind::BitReverse, m);
    Rng rng(1);
    // 0b000001 -> 0b100000.
    EXPECT_EQ(p.pick(1, rng), 32);
    // 0b000110 -> 0b011000.
    EXPECT_EQ(p.pick(6, rng), 24);
    // Palindromic index maps to itself -> silent.
    EXPECT_EQ(p.pick(0, rng), kInvalidNode);
}

TEST(Patterns, ShuffleRotatesLeft)
{
    const Mesh m(8, 8);
    const DestinationPattern p(PatternKind::Shuffle, m);
    Rng rng(1);
    EXPECT_EQ(p.pick(1, rng), 2);
    EXPECT_EQ(p.pick(33, rng), 3); // 0b100001 -> 0b000011
    EXPECT_EQ(p.pick(0, rng), kInvalidNode);
}

TEST(Patterns, TornadoHalfwayAroundX)
{
    const Mesh m(8, 8);
    const DestinationPattern p(PatternKind::Tornado, m);
    Rng rng(1);
    // k=8: offset (k+1)/2 - 1 = 3 columns east, same row.
    EXPECT_EQ(p.pick(m.nodeAt({0, 2}), rng), m.nodeAt({3, 2}));
    EXPECT_EQ(p.pick(m.nodeAt({6, 5}), rng), m.nodeAt({1, 5}));
}

TEST(Patterns, NeighborNextColumn)
{
    const Mesh m(8, 8);
    const DestinationPattern p(PatternKind::Neighbor, m);
    Rng rng(1);
    EXPECT_EQ(p.pick(m.nodeAt({3, 4}), rng), m.nodeAt({4, 4}));
    EXPECT_EQ(p.pick(m.nodeAt({7, 4}), rng), m.nodeAt({0, 4}));
}

TEST(Patterns, HotspotBiasTowardHotNode)
{
    const Mesh m(8, 8);
    const DestinationPattern p(PatternKind::Hotspot, m, 0.3);
    Rng rng(3);
    int hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hot += (p.pick(0, rng) == p.hotNode());
    // 30% direct + small uniform residual (~1/63 of the rest).
    EXPECT_NEAR(static_cast<double>(hot) / n, 0.311, 0.02);
}

TEST(Patterns, DeterministicPatternsIgnoreRngState)
{
    const Mesh m(8, 8);
    for (PatternKind k :
         {PatternKind::Transpose, PatternKind::BitComplement,
          PatternKind::BitReverse, PatternKind::Shuffle,
          PatternKind::Tornado, PatternKind::Neighbor}) {
        const DestinationPattern p(k, m);
        Rng r1(1), r2(999);
        for (NodeId s = 0; s < 64; ++s)
            EXPECT_EQ(p.pick(s, r1), p.pick(s, r2))
                << patternName(k) << " src " << s;
    }
}

TEST(Patterns, AllDestinationsValidOnWholeMesh)
{
    const Mesh m(8, 8);
    Rng rng(5);
    for (PatternKind k : kAllPatterns) {
        const DestinationPattern p(k, m);
        for (NodeId s = 0; s < 64; ++s) {
            const NodeId d = p.pick(s, rng);
            if (d == kInvalidNode)
                continue;
            EXPECT_GE(d, 0);
            EXPECT_LT(d, 64);
            EXPECT_NE(d, s) << patternName(k);
        }
    }
}

} // namespace
} // namespace nox
