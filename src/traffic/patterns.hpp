/**
 * @file
 * Standard synthetic traffic patterns for mesh evaluation (§5.1 of
 * the paper cites the single-flit patterns of Dally & Towles [4]).
 *
 * Deterministic patterns map each source to a fixed destination; the
 * random patterns (uniform, hotspot) draw per packet. Sources whose
 * deterministic destination equals themselves (e.g. the diagonal under
 * transpose) inject nothing, following common practice.
 */

#ifndef NOX_TRAFFIC_PATTERNS_HPP
#define NOX_TRAFFIC_PATTERNS_HPP

#include <string>

#include "common/rng.hpp"
#include "noc/topology.hpp"

namespace nox {

/** Supported synthetic traffic patterns. */
enum class PatternKind : std::uint8_t {
    UniformRandom = 0,
    Transpose,
    BitComplement,
    BitReverse,
    Shuffle,
    Tornado,
    Neighbor,
    Hotspot,
};

/** Parse a pattern name ("uniform", "transpose", ...). */
PatternKind parsePattern(const std::string &name);

/** Display name of a pattern. */
const char *patternName(PatternKind kind);

/** All patterns in presentation order. */
inline constexpr PatternKind kAllPatterns[] = {
    PatternKind::UniformRandom, PatternKind::Transpose,
    PatternKind::BitComplement, PatternKind::BitReverse,
    PatternKind::Shuffle,       PatternKind::Tornado,
    PatternKind::Neighbor,      PatternKind::Hotspot,
};

/** Destination chooser for one pattern on one mesh. */
class DestinationPattern
{
  public:
    /**
     * @param kind pattern to implement
     * @param mesh target topology (bit patterns need power-of-two
     *        node counts; asserted)
     * @param hotspot_fraction probability of addressing the hot node
     *        (Hotspot pattern only)
     */
    DestinationPattern(PatternKind kind, const Mesh &mesh,
                       double hotspot_fraction = 0.2);

    /**
     * Destination for a packet from @p src; kInvalidNode when this
     * source does not inject under a deterministic pattern (fixed
     * destination equal to itself).
     */
    NodeId pick(NodeId src, Rng &rng) const;

    /** True when pick() ignores the RNG. */
    bool isDeterministic() const;

    PatternKind kind() const { return kind_; }

    /** The hot node used by the Hotspot pattern (mesh centre). */
    NodeId hotNode() const { return hotNode_; }

  private:
    NodeId deterministicDest(NodeId src) const;

    PatternKind kind_;
    const Mesh &mesh_;
    double hotspotFraction_;
    NodeId hotNode_;
    int indexBits_;
};

} // namespace nox

#endif // NOX_TRAFFIC_PATTERNS_HPP
