#include "traffic/pareto_source.hpp"

#include <cmath>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

ParetoSource::ParetoSource(NodeId self,
                           const DestinationPattern &pattern,
                           double flits_per_cycle, int packet_flits,
                           std::uint64_t seed, double alpha, double b)
    : self_(self), pattern_(pattern), packetFlits_(packet_flits),
      alpha_(alpha), onScale_(b), rng_(seed)
{
    NOX_ASSERT(alpha > 1.0, "Pareto shape must exceed 1 (finite mean)");
    const double peak = static_cast<double>(packet_flits); // flits/cyc
    NOX_ASSERT(flits_per_cycle > 0.0 && flits_per_cycle < peak,
               "self-similar load must be in (0, peak)");

    // Mean ON duration: E[Pareto(alpha, b)] = alpha*b/(alpha-1).
    // Duty cycle r/peak = on/(on+off)  =>  solve the OFF scale T_off.
    const double mean_on = alpha * b / (alpha - 1.0);
    const double duty = flits_per_cycle / peak;
    const double mean_off = mean_on * (1.0 - duty) / duty;
    offScale_ = mean_off * (alpha - 1.0) / alpha;
}

void
ParetoSource::startOn(Cycle now)
{
    on_ = true;
    const double len = rng_.nextPareto(alpha_, onScale_);
    phaseEnd_ = now + static_cast<Cycle>(std::llround(
                          std::max(1.0, len)));
    burstDest_ = kInvalidNode;
    // Bursts address one destination, per the pseudo-Pareto model.
    for (int attempts = 0; attempts < 8; ++attempts) {
        const NodeId d = pattern_.pick(self_, rng_);
        if (d != kInvalidNode) {
            burstDest_ = d;
            break;
        }
    }
}

void
ParetoSource::startOff(Cycle now)
{
    on_ = false;
    const double len = rng_.nextPareto(alpha_, offScale_);
    phaseEnd_ = now + static_cast<Cycle>(std::llround(
                          std::max(1.0, len)));
}

void
ParetoSource::tick(Cycle now, PacketInjector &inj)
{
    if (!primed_) {
        primed_ = true;
        // Randomize the initial phase so sources do not synchronize.
        if (rng_.nextBernoulli(0.5))
            startOn(now);
        else
            startOff(now);
    }

    while (now >= phaseEnd_) {
        if (on_)
            startOff(phaseEnd_);
        else
            startOn(phaseEnd_);
    }

    if (on_ && burstDest_ != kInvalidNode) {
        inj.injectPacket(self_, burstDest_, packetFlits_, now,
                         TrafficClass::Synthetic);
    }
}


void
ParetoSource::serialize(snap::Writer &w) const
{
    rng_.serialize(w);
    w.boolean(on_);
    w.u64(phaseEnd_);
    w.i32(burstDest_);
    w.boolean(primed_);
}

void
ParetoSource::restore(snap::Reader &r)
{
    rng_.restore(r);
    on_ = r.boolean();
    phaseEnd_ = r.u64();
    burstDest_ = r.i32();
    primed_ = r.boolean();
}

} // namespace nox
