#include "traffic/replay_source.hpp"

#include <cmath>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

ReplaySource::ReplaySource(std::vector<TraceRecord> records,
                           double clock_period_ns,
                           std::uint32_t link_bytes)
    : records_(std::move(records)), periodNs_(clock_period_ns),
      linkBytes_(link_bytes)
{
    NOX_ASSERT(clock_period_ns > 0.0, "invalid clock period");
    for (std::size_t i = 1; i < records_.size(); ++i) {
        NOX_ASSERT(records_[i - 1].timeNs <= records_[i].timeNs,
                   "replay trace must be time-sorted");
    }
}

void
ReplaySource::tick(Cycle now, PacketInjector &inj)
{
    while (next_ < records_.size()) {
        const TraceRecord &r = records_[next_];
        const Cycle due = static_cast<Cycle>(
            std::ceil(r.timeNs / periodNs_));
        if (due > now)
            break;
        if (r.src != r.dst) {
            inj.injectPacket(r.src, r.dst, r.flits(linkBytes_), now,
                             r.cls);
        }
        ++next_;
    }
}


void
ReplaySource::serialize(snap::Writer &w) const
{
    w.u64(next_);
}

void
ReplaySource::restore(snap::Reader &r)
{
    next_ = static_cast<std::size_t>(r.u64());
    if (next_ > records_.size())
        r.fail("replay cursor past end of trace");
}

} // namespace nox
