/**
 * @file
 * Open-loop Bernoulli packet source: the standard injection process
 * for latency-vs-load sweeps (Figure 8/9 of the paper).
 */

#ifndef NOX_TRAFFIC_BERNOULLI_SOURCE_HPP
#define NOX_TRAFFIC_BERNOULLI_SOURCE_HPP

#include "common/rng.hpp"
#include "noc/traffic_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {

/**
 * Injects fixed-size packets with independent per-cycle Bernoulli
 * trials so that the offered load equals @p flits_per_cycle.
 */
class BernoulliSource : public TrafficSource
{
  public:
    /**
     * @param self this source's node
     * @param pattern destination chooser (not owned; outlives source)
     * @param flits_per_cycle offered load in flits/node/cycle
     * @param packet_flits flits per packet (the paper's synthetic
     *        traffic is single-flit)
     * @param seed private RNG seed
     */
    BernoulliSource(NodeId self, const DestinationPattern &pattern,
                    double flits_per_cycle, int packet_flits,
                    std::uint64_t seed);

    void tick(Cycle now, PacketInjector &inj) override;

    void serialize(snap::Writer &w) const override;
    void restore(snap::Reader &r) override;

    double offeredLoad() const { return flitsPerCycle_; }

  private:
    NodeId self_;
    const DestinationPattern &pattern_;
    double flitsPerCycle_;
    int packetFlits_;
    double packetProb_;
    Rng rng_;
};

} // namespace nox

#endif // NOX_TRAFFIC_BERNOULLI_SOURCE_HPP
