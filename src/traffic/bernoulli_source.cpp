#include "traffic/bernoulli_source.hpp"

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

BernoulliSource::BernoulliSource(NodeId self,
                                 const DestinationPattern &pattern,
                                 double flits_per_cycle,
                                 int packet_flits, std::uint64_t seed)
    : self_(self), pattern_(pattern), flitsPerCycle_(flits_per_cycle),
      packetFlits_(packet_flits),
      packetProb_(flits_per_cycle / packet_flits), rng_(seed)
{
    NOX_ASSERT(packet_flits >= 1, "packet size must be >= 1 flit");
    NOX_ASSERT(flits_per_cycle >= 0.0 && packetProb_ <= 1.0,
               "offered load out of range: ", flits_per_cycle,
               " flits/cycle with ", packet_flits, "-flit packets");
}

void
BernoulliSource::tick(Cycle now, PacketInjector &inj)
{
    if (!rng_.nextBernoulli(packetProb_))
        return;
    const NodeId dst = pattern_.pick(self_, rng_);
    if (dst == kInvalidNode)
        return; // source silent under this deterministic pattern
    inj.injectPacket(self_, dst, packetFlits_, now,
                     TrafficClass::Synthetic);
}


void
BernoulliSource::serialize(snap::Writer &w) const
{
    rng_.serialize(w);
}

void
BernoulliSource::restore(snap::Reader &r)
{
    rng_.restore(r);
}

} // namespace nox
