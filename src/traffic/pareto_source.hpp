/**
 * @file
 * Self-similar Pareto ON/OFF packet source.
 *
 * The paper (§5.1) uses "a self similar pareto-based traffic pattern
 * commonly used in networking evaluations ... generated using
 * alpha = 1.4, b = 8 and varying T_off to obtain desired injection
 * rates" — the pseudo-Pareto construction of Kramer [11] and the
 * Ethernet self-similarity result of Leland et al. [15].
 *
 * During an ON burst the source injects one packet per cycle toward a
 * per-burst destination; burst and gap lengths are Pareto distributed.
 */

#ifndef NOX_TRAFFIC_PARETO_SOURCE_HPP
#define NOX_TRAFFIC_PARETO_SOURCE_HPP

#include "common/rng.hpp"
#include "noc/traffic_source.hpp"
#include "traffic/patterns.hpp"

namespace nox {

/** Pareto ON/OFF self-similar source. */
class ParetoSource : public TrafficSource
{
  public:
    /**
     * @param self this source's node
     * @param pattern per-burst destination chooser
     * @param flits_per_cycle target mean offered load
     * @param packet_flits flits per packet
     * @param seed private RNG seed
     * @param alpha Pareto shape (paper: 1.4)
     * @param b minimum ON duration in cycles (paper: 8)
     */
    ParetoSource(NodeId self, const DestinationPattern &pattern,
                 double flits_per_cycle, int packet_flits,
                 std::uint64_t seed, double alpha = 1.4,
                 double b = 8.0);

    void tick(Cycle now, PacketInjector &inj) override;

    void serialize(snap::Writer &w) const override;
    void restore(snap::Reader &r) override;

    /** Mean OFF-scale (T_off) solved for the target rate (test). */
    double offScale() const { return offScale_; }

  private:
    void startOn(Cycle now);
    void startOff(Cycle now);

    NodeId self_;
    const DestinationPattern &pattern_;
    int packetFlits_;
    double alpha_;
    double onScale_;
    double offScale_;
    Rng rng_;

    bool on_ = false;
    Cycle phaseEnd_ = 0; ///< first cycle NOT in the current phase
    NodeId burstDest_ = kInvalidNode;
    bool primed_ = false;
};

} // namespace nox

#endif // NOX_TRAFFIC_PARETO_SOURCE_HPP
