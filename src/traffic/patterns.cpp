#include "traffic/patterns.hpp"

#include <bit>

#include "common/log.hpp"

namespace nox {

PatternKind
parsePattern(const std::string &name)
{
    if (name == "uniform" || name == "uniform_random")
        return PatternKind::UniformRandom;
    if (name == "transpose")
        return PatternKind::Transpose;
    if (name == "bitcomp" || name == "bit_complement")
        return PatternKind::BitComplement;
    if (name == "bitrev" || name == "bit_reverse")
        return PatternKind::BitReverse;
    if (name == "shuffle")
        return PatternKind::Shuffle;
    if (name == "tornado")
        return PatternKind::Tornado;
    if (name == "neighbor")
        return PatternKind::Neighbor;
    if (name == "hotspot")
        return PatternKind::Hotspot;
    fatal("unknown traffic pattern: '", name, "'");
}

const char *
patternName(PatternKind kind)
{
    switch (kind) {
      case PatternKind::UniformRandom: return "uniform";
      case PatternKind::Transpose: return "transpose";
      case PatternKind::BitComplement: return "bitcomp";
      case PatternKind::BitReverse: return "bitrev";
      case PatternKind::Shuffle: return "shuffle";
      case PatternKind::Tornado: return "tornado";
      case PatternKind::Neighbor: return "neighbor";
      case PatternKind::Hotspot: return "hotspot";
    }
    return "?";
}

DestinationPattern::DestinationPattern(PatternKind kind, const Mesh &mesh,
                                       double hotspot_fraction)
    : kind_(kind), mesh_(mesh), hotspotFraction_(hotspot_fraction)
{
    const auto n = static_cast<unsigned>(mesh.numNodes());
    indexBits_ = std::bit_width(n) - 1;
    if (kind == PatternKind::BitComplement ||
        kind == PatternKind::BitReverse ||
        kind == PatternKind::Shuffle) {
        NOX_ASSERT(std::has_single_bit(n),
                   "bit-permutation patterns need a power-of-two mesh");
    }
    hotNode_ = mesh.nodeAt(
        {mesh.width() / 2, mesh.height() / 2});
}

bool
DestinationPattern::isDeterministic() const
{
    return kind_ != PatternKind::UniformRandom &&
           kind_ != PatternKind::Hotspot;
}

NodeId
DestinationPattern::pick(NodeId src, Rng &rng) const
{
    switch (kind_) {
      case PatternKind::UniformRandom: {
        NodeId dst = src;
        while (dst == src) {
            dst = static_cast<NodeId>(rng.nextBounded(
                static_cast<std::uint64_t>(mesh_.numNodes())));
        }
        return dst;
      }
      case PatternKind::Hotspot: {
        if (src != hotNode_ && rng.nextBernoulli(hotspotFraction_))
            return hotNode_;
        NodeId dst = src;
        while (dst == src) {
            dst = static_cast<NodeId>(rng.nextBounded(
                static_cast<std::uint64_t>(mesh_.numNodes())));
        }
        return dst;
      }
      default: {
        const NodeId dst = deterministicDest(src);
        return dst == src ? kInvalidNode : dst;
      }
    }
}

NodeId
DestinationPattern::deterministicDest(NodeId src) const
{
    const Coord c = mesh_.coordOf(src);
    const int k = mesh_.width();
    switch (kind_) {
      case PatternKind::Transpose:
        // (x,y) -> (y,x); needs a square mesh.
        NOX_ASSERT(mesh_.width() == mesh_.height(),
                   "transpose needs a square mesh");
        return mesh_.nodeAt({c.y, c.x});
      case PatternKind::BitComplement:
        return mesh_.nodeAt(
            {mesh_.width() - 1 - c.x, mesh_.height() - 1 - c.y});
      case PatternKind::BitReverse: {
        unsigned v = static_cast<unsigned>(src);
        unsigned r = 0;
        for (int i = 0; i < indexBits_; ++i) {
            r = (r << 1) | (v & 1u);
            v >>= 1;
        }
        return static_cast<NodeId>(r);
      }
      case PatternKind::Shuffle: {
        const auto n = static_cast<unsigned>(mesh_.numNodes());
        const unsigned v = static_cast<unsigned>(src);
        return static_cast<NodeId>(
            ((v << 1) | (v >> (indexBits_ - 1))) & (n - 1));
      }
      case PatternKind::Tornado:
        // Half-way around the X dimension.
        return mesh_.nodeAt({(c.x + (k + 1) / 2 - 1) % k, c.y});
      case PatternKind::Neighbor:
        return mesh_.nodeAt({(c.x + 1) % k, c.y});
      default:
        panic("deterministicDest on a random pattern");
    }
}

} // namespace nox
