/**
 * @file
 * Packet trace format for application-driven network simulation
 * (§5.2 of the paper: traces are collected once in the CPU clock
 * domain, then replayed identically into each network so that CPU
 * injection bandwidth is constant across router designs).
 *
 * The on-disk format is line-oriented text:
 *     # header comments
 *     <time_ns> <src> <dst> <size_bytes> <network> <class>
 * sorted by time_ns.
 */

#ifndef NOX_TRAFFIC_TRACE_HPP
#define NOX_TRAFFIC_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "noc/types.hpp"

namespace nox {

/** One packet injection event in CPU (nanosecond) time. */
struct TraceRecord
{
    double timeNs = 0.0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint32_t sizeBytes = 8;
    std::uint8_t network = 0; ///< physical network index (0=req,1=rep)
    TrafficClass cls = TrafficClass::Request;

    /** Flits on a @p link_bytes-wide network (Table 1: 8-byte flits). */
    int
    flits(std::uint32_t link_bytes = 8) const
    {
        return static_cast<int>((sizeBytes + link_bytes - 1) /
                                link_bytes);
    }
};

/** An in-memory packet trace plus its provenance. */
struct Trace
{
    std::string name;
    std::vector<TraceRecord> records;
    double durationNs = 0.0; ///< generation horizon (>= last record)

    /** Records belonging to physical network @p net, time-sorted. */
    std::vector<TraceRecord> forNetwork(std::uint8_t net) const;

    /** Mean offered load over the horizon in bytes/ns/node. */
    double bytesPerNsPerNode(int num_nodes,
                             std::uint8_t net) const;
};

/** Write a trace to a stream / file. */
void writeTrace(std::ostream &os, const Trace &trace);
void writeTraceFile(const std::string &path, const Trace &trace);

/** Read a trace back. Fatal on malformed input. */
Trace readTrace(std::istream &is, const std::string &name = "trace");
Trace readTraceFile(const std::string &path);

} // namespace nox

#endif // NOX_TRAFFIC_TRACE_HPP
