#include "traffic/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace nox {

std::vector<TraceRecord>
Trace::forNetwork(std::uint8_t net) const
{
    std::vector<TraceRecord> out;
    for (const auto &r : records) {
        if (r.network == net)
            out.push_back(r);
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.timeNs < b.timeNs;
                     });
    return out;
}

double
Trace::bytesPerNsPerNode(int num_nodes, std::uint8_t net) const
{
    if (durationNs <= 0.0 || num_nodes <= 0)
        return 0.0;
    double bytes = 0.0;
    for (const auto &r : records) {
        if (r.network == net)
            bytes += r.sizeBytes;
    }
    return bytes / durationNs / num_nodes;
}

void
writeTrace(std::ostream &os, const Trace &trace)
{
    os << "# noxsim packet trace: " << trace.name << '\n';
    os << "# duration_ns " << trace.durationNs << '\n';
    os << "# time_ns src dst size_bytes network class\n";
    for (const auto &r : trace.records) {
        os << r.timeNs << ' ' << r.src << ' ' << r.dst << ' '
           << r.sizeBytes << ' ' << static_cast<int>(r.network) << ' '
           << static_cast<int>(r.cls) << '\n';
    }
}

void
writeTraceFile(const std::string &path, const Trace &trace)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open trace file for writing: ", path);
    writeTrace(out, trace);
}

Trace
readTrace(std::istream &is, const std::string &name)
{
    Trace trace;
    trace.name = name;
    std::string line;
    int lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream hs(line.substr(1));
            std::string key;
            hs >> key;
            if (key == "duration_ns")
                hs >> trace.durationNs;
            continue;
        }
        std::istringstream ls(line);
        TraceRecord r;
        int network = 0;
        int cls = 0;
        if (!(ls >> r.timeNs >> r.src >> r.dst >> r.sizeBytes >>
              network >> cls)) {
            fatal("malformed trace line ", lineno, ": '", line, "'");
        }
        r.network = static_cast<std::uint8_t>(network);
        r.cls = static_cast<TrafficClass>(cls);
        trace.records.push_back(r);
    }
    std::stable_sort(trace.records.begin(), trace.records.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.timeNs < b.timeNs;
                     });
    if (trace.durationNs == 0.0 && !trace.records.empty())
        trace.durationNs = trace.records.back().timeNs;
    return trace;
}

Trace
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open trace file: ", path);
    return readTrace(in, path);
}

} // namespace nox
