/**
 * @file
 * Trace replay: converts nanosecond-domain packet events into cycle-
 * domain injections for a network running at its own clock period —
 * the paper's asynchronous-clock-domain methodology (§5.2): the same
 * trace drives every router design, each at its maximum frequency.
 */

#ifndef NOX_TRAFFIC_REPLAY_SOURCE_HPP
#define NOX_TRAFFIC_REPLAY_SOURCE_HPP

#include <vector>

#include "noc/traffic_source.hpp"
#include "traffic/trace.hpp"

namespace nox {

/**
 * A single source object injecting the whole trace (any src node) —
 * add exactly one per Network.
 */
class ReplaySource : public TrafficSource
{
  public:
    /**
     * @param records time-sorted records for ONE physical network
     * @param clock_period_ns this network's clock period
     * @param link_bytes flit width in bytes (Table 1: 8)
     */
    ReplaySource(std::vector<TraceRecord> records,
                 double clock_period_ns, std::uint32_t link_bytes = 8);

    void tick(Cycle now, PacketInjector &inj) override;

    void serialize(snap::Writer &w) const override;
    void restore(snap::Reader &r) override;

    /** All records consumed? */
    bool done() const { return next_ >= records_.size(); }

  private:
    std::vector<TraceRecord> records_;
    double periodNs_;
    std::uint32_t linkBytes_;
    std::size_t next_ = 0;
};

} // namespace nox

#endif // NOX_TRAFFIC_REPLAY_SOURCE_HPP
