#include "coherence/cmp_params.hpp"

#include <ostream>

#include "common/table.hpp"

namespace nox {

void
CmpParams::printTable(std::ostream &os) const
{
    Table t({"Parameter", "Value"});
    t.addRow({"Cores", std::to_string(cores)});
    t.addRow({"Topology", std::to_string(meshWidth) + "x" +
                              std::to_string(meshHeight) + " mesh"});
    t.addRow({"Processor", Table::num(cpuGhz, 0) +
                               "GHz in order PowerPC"});
    t.addRow({"L1 I/D Caches", std::to_string(l1SizeKB) + "KB, " +
                                   std::to_string(l1Ways) +
                                   "-way set associative"});
    t.addRow({"L2 Cache", std::to_string(l2SizeKB) + "KB, " +
                              std::to_string(l2Ways) +
                              "-way set associative"});
    t.addRow({"Cache Line Size", std::to_string(lineBytes) + "-bytes"});
    t.addRow({"Memory Latency",
              std::to_string(memLatencyCpuCycles) + " cycles"});
    t.addRow({"Interconnect",
              "64-bit request, 64-bit reply network"});
    t.addRow({"Packet Sizes", std::to_string(ctrlPacketBytes) +
                                  " byte control, " +
                                  std::to_string(dataPacketBytes) +
                                  " byte data"});
    t.addRow({"Buffer Depth", "4 64-bit entries/port"});
    t.addRow({"Channel Length", "2mm"});
    t.addRow({"Routing Algorithm", "Dimension Ordered Routing"});
    t.print(os);
}

} // namespace nox
