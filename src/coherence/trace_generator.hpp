/**
 * @file
 * CMP coherence-traffic trace generator (the substrate behind the
 * paper's §5.2 application evaluation).
 *
 * A 64-core tiled CMP is modelled at transaction granularity: each
 * in-order 3 GHz core issues a synthetic memory-reference stream
 * through private L1/L2 caches; L2 misses become directory (MSI)
 * transactions whose messages are emitted as timestamped packets on
 * two physical networks — requests (GetS/GetM/Inv/Fwd control and
 * writeback data) and replies (data and acks) — with the paper's
 * 8-byte control / 72-byte data packet sizes.
 *
 * Cores block on misses, so the generated traffic self-throttles like
 * real applications; the timestamps depend only on CPU-side
 * parameters, so the same trace replays identically into every router
 * architecture (constant injection bandwidth, §5.2).
 */

#ifndef NOX_COHERENCE_TRACE_GENERATOR_HPP
#define NOX_COHERENCE_TRACE_GENERATOR_HPP

#include <memory>
#include <vector>

#include "coherence/cache.hpp"
#include "coherence/cmp_params.hpp"
#include "coherence/directory.hpp"
#include "coherence/workload.hpp"
#include "noc/topology.hpp"
#include "traffic/trace.hpp"

namespace nox {

/** Aggregate behaviour counters of one generation run. */
struct TraceGenStats
{
    std::uint64_t memOps = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t getS = 0;
    std::uint64_t getM = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t forwards = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t ctrlPackets = 0;
    std::uint64_t dataPackets = 0;
};

/** Generates an application packet trace from a workload profile. */
class CoherenceTraceGenerator
{
  public:
    CoherenceTraceGenerator(const CmpParams &params,
                            const WorkloadProfile &profile,
                            std::uint64_t seed);
    ~CoherenceTraceGenerator();

    /**
     * Run all cores until @p warmup_ns + @p horizon_ns of CPU time
     * has elapsed. Packets emitted during the warmup (cold caches)
     * are discarded; the remainder are re-based to time zero so the
     * trace reflects steady-state cache behaviour.
     */
    Trace generate(double horizon_ns, double warmup_ns = 0.0);

    const TraceGenStats &stats() const { return stats_; }
    const CmpParams &params() const { return params_; }

  private:
    struct Core;

    /** Process one memory operation of @p core at its local time. */
    void processOp(Core &core);

    /** L2-miss coherence transaction; returns its latency [ns]. */
    double transaction(Core &core, std::uint64_t line, bool write);

    /** Fill @p line into the core's L2+L1, handling evictions. */
    double fill(Core &core, std::uint64_t line, bool dirty);

    /** Invalidate a line from a (possibly remote) tile's caches. */
    void invalidateTile(NodeId tile, std::uint64_t line);

    /** One-way message latency estimate [ns]. */
    double msgLatencyNs(NodeId from, NodeId to, int bytes) const;

    /** Record a packet (dropped when src == dst: tile-local). */
    void emit(double time_ns, NodeId src, NodeId dst, int bytes,
              std::uint8_t network, TrafficClass cls);

    CmpParams params_;
    const WorkloadProfile &profile_;
    Mesh mesh_;
    Directory directory_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<TraceRecord> records_;
    TraceGenStats stats_;
};

} // namespace nox

#endif // NOX_COHERENCE_TRACE_GENERATOR_HPP
