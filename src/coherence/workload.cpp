#include "coherence/workload.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nox {

const std::vector<WorkloadProfile> &
builtinWorkloads()
{
    // Scientific (SPLASH-2-like) profiles: smaller shared sets, more
    // regular access, lower miss traffic. Commercial (SPEC/TPC-like)
    // profiles: large irregular working sets, heavy sharing, higher
    // control-packet churn. Parameters follow the published memory
    // characterizations of each application class (Woo et al. [28]
    // for SPLASH-2; TPC/SPEC disclosures for the server side).
    static const std::vector<WorkloadProfile> workloads = {
        // name     ops/c  wr    shr   privKB shrKB  seq   hot  hl
        //           rep   mlp   hotWr seed
        {"barnes",   0.153, 0.25, 0.12,  128,   64, 0.55, 0.30, 48,
         11.0, 2.0, 0.020, 11},
        {"fft",      0.180, 0.35, 0.06,  160,   96, 0.85, 0.05, 16,
         12.0, 3.0, 0.015, 12},
        {"lu",       0.198, 0.30, 0.05,  128,   64, 0.90, 0.10, 16,
         13.0, 2.5, 0.015, 13},
        {"ocean",    0.162, 0.33, 0.08,  160,   96, 0.80, 0.08, 32,
         10.0, 3.0, 0.018, 14},
        {"radix",    0.162, 0.45, 0.08,  160,   96, 0.40, 0.12, 32,
         9.0, 3.0, 0.020, 15},
        {"water",    0.180, 0.22, 0.10,  128,   64, 0.60, 0.25, 40,
         12.0, 1.8, 0.022, 16},
        {"apache",   0.126, 0.28, 0.11, 192, 160, 0.35, 0.18, 96, 10.0, 2.2, 0.028, 21},
        {"specjbb",   0.135, 0.30, 0.10, 224, 192, 0.40, 0.15, 96, 10.5, 2.2, 0.025, 22},
        {"specweb",   0.117, 0.26, 0.11, 192, 160, 0.30, 0.20, 128, 10.0, 2.0, 0.028, 23},
        {"tpcc",   0.117, 0.38, 0.12, 256, 192, 0.30, 0.22, 128, 10.0, 2.0, 0.032, 24},
    };
    return workloads;
}

const WorkloadProfile &
findWorkload(const std::string &name)
{
    for (const auto &w : builtinWorkloads()) {
        if (w.name == name)
            return w;
    }
    fatal("unknown workload: '", name, "'");
}

AddressStream::AddressStream(const WorkloadProfile &profile, int core,
                             int line_bytes, std::uint64_t seed)
    : profile_(profile), lineBytes_(line_bytes), rng_(seed)
{
    // Private region: one disjoint 64 MB arena per core.
    privateBase_ = (static_cast<std::uint64_t>(core) + 1) << 26;
    privateLines_ = static_cast<std::uint64_t>(
                        profile.privateWorkingSetKB) *
                    1024 / line_bytes;
    // Shared region: one arena common to all cores, above the
    // private arenas.
    sharedBase_ = 1ULL << 40;
    sharedLines_ = static_cast<std::uint64_t>(
                       profile.sharedWorkingSetKB) *
                   1024 / line_bytes;
    NOX_ASSERT(privateLines_ > 0 && sharedLines_ > 0,
               "degenerate working set");
    lastPrivateLine_ = rng_.nextBounded(privateLines_);
    lastSharedLine_ = rng_.nextBounded(sharedLines_);
}

std::uint64_t
AddressStream::pickPrivate()
{
    if (rng_.nextBernoulli(profile_.sequentialProb)) {
        lastPrivateLine_ = (lastPrivateLine_ + 1) % privateLines_;
    } else {
        lastPrivateLine_ = rng_.nextBounded(privateLines_);
    }
    return privateBase_ + lastPrivateLine_ * lineBytes_;
}

std::uint64_t
AddressStream::pickShared(double hot_scale)
{
    if (rng_.nextBernoulli(
            std::min(0.95, profile_.hotFraction * hot_scale))) {
        // Hot synchronization / metadata lines, concentrated on a few
        // directory homes (locks and barrier flags share pages, so
        // their home tiles become traffic hot spots).
        currentHot_ = true;
        const std::uint64_t hot = rng_.nextBounded(
            static_cast<std::uint64_t>(profile_.hotLines));
        const std::uint64_t home =
            (hot * 2654435761ULL) %
            static_cast<std::uint64_t>(profile_.hotHomes);
        // line % numTiles selects the home; build a line index whose
        // residue is the chosen hot home (64 tiles assumed by the
        // generator; kept abstract via a wide stride).
        const std::uint64_t line = hot * 64 + home;
        return sharedBase_ + line * lineBytes_;
    }
    if (rng_.nextBernoulli(profile_.sequentialProb)) {
        lastSharedLine_ = (lastSharedLine_ + 1) % sharedLines_;
    } else {
        lastSharedLine_ = rng_.nextBounded(sharedLines_);
    }
    // Offset past the (strided) hot block.
    return sharedBase_ +
           (static_cast<std::uint64_t>(profile_.hotLines) * 64 +
            lastSharedLine_) *
               lineBytes_;
}

AddressStream::Op
AddressStream::next(double shared_scale, double hot_scale)
{
    // Spatial + temporal reuse: each visited line receives a
    // geometrically distributed burst of accesses (words within the
    // 64B line, loop reuse) before the stream moves on.
    if (repeatsLeft_ <= 0) {
        currentHot_ = false;
        const double shared_p = std::min(
            0.95, profile_.sharedFraction * shared_scale);
        currentAddr_ = rng_.nextBernoulli(shared_p)
                           ? pickShared(hot_scale)
                           : pickPrivate();
        const double p = 1.0 / profile_.lineRepeatMean;
        repeatsLeft_ = static_cast<int>(rng_.nextGeometric(p)) + 1;
    }
    --repeatsLeft_;

    Op op;
    op.addr = currentAddr_;
    op.hot = currentHot_;
    // Hot lines are read-mostly: sharers accumulate widely between
    // writes, so each write produces a broad invalidation storm.
    op.write = rng_.nextBernoulli(
        currentHot_ ? profile_.hotWriteFraction
                    : profile_.writeFraction);
    return op;
}

} // namespace nox
