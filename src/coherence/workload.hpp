/**
 * @file
 * Synthetic workload profiles standing in for the paper's SPLASH-2
 * scientific and SPEC/TPC commercial traces (§5.2), which are not
 * redistributable. Each profile parameterizes per-core memory
 * reference streams (working-set sizes, sharing, read/write mix,
 * locality) chosen to mimic the published memory behaviour of the
 * named application class; the coherence model turns these streams
 * into network packet traces with the structural properties the
 * router evaluation depends on (request/reply pairing, control-packet
 * majority, bursty hot-home traffic).
 */

#ifndef NOX_COHERENCE_WORKLOAD_HPP
#define NOX_COHERENCE_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace nox {

/** Parameters of one synthetic application. */
struct WorkloadProfile
{
    std::string name;
    double memOpsPerCpuCycle = 0.30; ///< issued loads+stores per cycle
    double writeFraction = 0.3;
    double sharedFraction = 0.15;    ///< ops addressing shared data
    int privateWorkingSetKB = 512;
    int sharedWorkingSetKB = 2048;
    double sequentialProb = 0.6;     ///< next-line locality
    double hotFraction = 0.2;        ///< shared ops hitting hot lines
    int hotLines = 64;
    double lineRepeatMean = 8.0;     ///< accesses per line visit
                                     ///< (spatial + temporal reuse)
    double mlp = 3.0;                ///< mean overlapped misses (memory
                                     ///< level parallelism): bursts of
                                     ///< back-to-back requests
    double hotWriteFraction = 0.05;  ///< writes to hot (read-mostly
                                     ///< synchronization) lines; each
                                     ///< one triggers an invalidation
                                     ///< storm over the sharer set
    // Parallel applications alternate compute phases with barrier-
    // synchronized communication phases; traffic concentrates into
    // the communication windows (the bursty structure behind the
    // paper's application results and its self-similar observation).
    double commPeriodNs = 3000.0;    ///< phase repetition period
    double commWindowNs = 800.0;    ///< communication window length
    double windowSharedBoost = 2.5;  ///< shared-access multiplier
                                     ///< inside the window
    double windowHotBoost = 2.5;     ///< hot-line multiplier inside
                                     ///< the window (lock/barrier
                                     ///< activity, control-heavy)
    double windowOpBoost = 2.5;      ///< issue-rate multiplier inside
                                     ///< the window
    int hotHomes = 16;                ///< directory homes the hot lines
                                     ///< concentrate on
    std::uint64_t seedSalt = 0;
};

/**
 * The built-in workload suite: six SPLASH-2-like scientific kernels
 * and four commercial server profiles.
 */
const std::vector<WorkloadProfile> &builtinWorkloads();

/** Look up a built-in profile by name (fatal if unknown). */
const WorkloadProfile &findWorkload(const std::string &name);

/** Generates one core's byte-address reference stream. */
class AddressStream
{
  public:
    /** One memory operation. */
    struct Op
    {
        std::uint64_t addr;
        bool write;
        bool hot; ///< addresses a hot synchronization line
    };

    AddressStream(const WorkloadProfile &profile, int core,
                  int line_bytes, std::uint64_t seed);

    /**
     * Produce the core's next reference. @p shared_scale multiplies
     * the profile's shared-access fraction and @p hot_scale the
     * hot-line fraction (communication phases boost both; compute
     * phases suppress them).
     */
    Op next(double shared_scale = 1.0, double hot_scale = 1.0);

  private:
    std::uint64_t pickPrivate();
    std::uint64_t pickShared(double hot_scale);

    const WorkloadProfile &profile_;
    int lineBytes_;
    std::uint64_t privateBase_;
    std::uint64_t privateLines_;
    std::uint64_t sharedBase_;
    std::uint64_t sharedLines_;
    std::uint64_t lastPrivateLine_;
    std::uint64_t lastSharedLine_;
    std::uint64_t currentAddr_ = 0;
    bool currentHot_ = false;
    int repeatsLeft_ = 0;
    Rng rng_;
};

} // namespace nox

#endif // NOX_COHERENCE_WORKLOAD_HPP
