/**
 * @file
 * Full-map MSI directory for the 64-core CMP traffic generator.
 *
 * Home nodes are assigned by cache-line interleaving. The directory
 * tracks, per line, whether it is uncached (I), shared by a set of
 * tiles (S), or owned modified by one tile (M).
 */

#ifndef NOX_COHERENCE_DIRECTORY_HPP
#define NOX_COHERENCE_DIRECTORY_HPP

#include <cstdint>
#include <unordered_map>

#include "noc/types.hpp"

namespace nox {

/** Directory entry state. */
enum class DirState : std::uint8_t { Invalid, Shared, Modified };

/** Per-line directory entry (full sharer bitmap; <=64 tiles). */
struct DirEntry
{
    DirState state = DirState::Invalid;
    std::uint64_t sharers = 0; ///< bitmap over tiles
    NodeId owner = kInvalidNode;

    int
    sharerCount() const
    {
        return static_cast<int>(__builtin_popcountll(sharers));
    }

    bool
    isSharer(NodeId n) const
    {
        return (sharers >> n) & 1ULL;
    }
};

/** The distributed directory (modelled centrally, homed per line). */
class Directory
{
  public:
    explicit Directory(int num_tiles) : numTiles_(num_tiles) {}

    /** Home tile of a line (line-interleaved). */
    NodeId
    homeOf(std::uint64_t line) const
    {
        return static_cast<NodeId>(
            line % static_cast<std::uint64_t>(numTiles_));
    }

    /** Entry lookup (default-Invalid when absent). */
    DirEntry &entry(std::uint64_t line) { return entries_[line]; }

    const DirEntry *
    find(std::uint64_t line) const
    {
        const auto it = entries_.find(line);
        return it == entries_.end() ? nullptr : &it->second;
    }

    void addSharer(std::uint64_t line, NodeId tile);
    void removeSharer(std::uint64_t line, NodeId tile);
    void setModified(std::uint64_t line, NodeId owner);
    void setInvalid(std::uint64_t line);

    /**
     * Invariant check: Modified entries have exactly one sharer (the
     * owner); Shared entries have >=1 sharers and no owner; Invalid
     * entries are empty. Panics on violation.
     */
    void checkInvariants(std::uint64_t line) const;

    std::size_t trackedLines() const { return entries_.size(); }

  private:
    int numTiles_;
    std::unordered_map<std::uint64_t, DirEntry> entries_;
};

} // namespace nox

#endif // NOX_COHERENCE_DIRECTORY_HPP
