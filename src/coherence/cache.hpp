/**
 * @file
 * Set-associative cache model with LRU replacement, used for the
 * per-tile L1 and L2 of the application-traffic generator.
 */

#ifndef NOX_COHERENCE_CACHE_HPP
#define NOX_COHERENCE_CACHE_HPP

#include <cstdint>
#include <vector>

namespace nox {

/** Line-granular set-associative cache (tags only; no data). */
class SetAssocCache
{
  public:
    /** Result of inserting a line. */
    struct Insert
    {
        bool evicted = false;
        std::uint64_t victimLine = 0;
        bool victimDirty = false;
    };

    /**
     * @param size_kb total capacity
     * @param ways associativity
     * @param line_bytes line size (addresses are byte addresses)
     */
    SetAssocCache(int size_kb, int ways, int line_bytes);

    /** Line address (address / lineBytes) of a byte address. */
    std::uint64_t lineOf(std::uint64_t byte_addr) const;

    /** Probe for a line; updates LRU on hit. */
    bool lookup(std::uint64_t line);

    /** Probe without touching LRU state. */
    bool contains(std::uint64_t line) const;

    /** Insert a line (must not be present), possibly evicting LRU. */
    Insert insert(std::uint64_t line, bool dirty);

    /** Mark a present line dirty; returns false if absent. */
    bool markDirty(std::uint64_t line);

    /** Clear a present line's dirty bit (e.g. after a sharing
     *  writeback); returns false if absent. */
    bool clearDirty(std::uint64_t line);

    /** Is a present line dirty? */
    bool isDirty(std::uint64_t line) const;

    /** Remove a line if present; returns true if it was there. */
    bool invalidate(std::uint64_t line);

    int numSets() const { return numSets_; }
    int ways() const { return ways_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        std::uint64_t line = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
        bool dirty = false;
    };

    std::vector<Way> &setOf(std::uint64_t line);
    const std::vector<Way> &setOf(std::uint64_t line) const;

    int lineBytes_;
    int numSets_;
    int ways_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace nox

#endif // NOX_COHERENCE_CACHE_HPP
