#include "coherence/trace_generator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/log.hpp"

namespace nox {

namespace {

constexpr std::uint8_t kReqNet = 0;
constexpr std::uint8_t kRepNet = 1;

} // namespace

/** Per-core state. */
struct CoherenceTraceGenerator::Core
{
    Core(int id_, const CmpParams &p, const WorkloadProfile &w,
         std::uint64_t seed)
        : id(id_), l1(p.l1SizeKB, p.l1Ways, p.lineBytes),
          l2(p.l2SizeKB, p.l2Ways, p.lineBytes),
          stream(w, id_, p.lineBytes, seed), rng(seed ^ 0x5EED)
    {
    }

    int id;
    double timeNs = 0.0;
    SetAssocCache l1;
    SetAssocCache l2;
    AddressStream stream;
    Rng rng;
};

CoherenceTraceGenerator::CoherenceTraceGenerator(
    const CmpParams &params, const WorkloadProfile &profile,
    std::uint64_t seed)
    : params_(params), profile_(profile),
      mesh_(params.meshWidth, params.meshHeight),
      directory_(params.cores)
{
    NOX_ASSERT(params.cores == mesh_.numNodes(),
               "core count must match mesh size");
    Rng seeder(seed ^ profile.seedSalt);
    for (int c = 0; c < params.cores; ++c) {
        cores_.push_back(std::make_unique<Core>(c, params, profile,
                                                seeder.next()));
    }
}

CoherenceTraceGenerator::~CoherenceTraceGenerator() = default;

double
CoherenceTraceGenerator::msgLatencyNs(NodeId from, NodeId to,
                                      int bytes) const
{
    if (from == to)
        return 0.0;
    // Roughly one network cycle (~0.8 ns) per hop plus injection /
    // ejection overhead, plus wormhole serialization of body flits.
    const double per_hop = 0.8;
    const int hops = mesh_.hopDistance(from, to) + 2;
    const int flits = (bytes + 7) / 8;
    return per_hop * (hops + flits - 1);
}

void
CoherenceTraceGenerator::emit(double time_ns, NodeId src, NodeId dst,
                              int bytes, std::uint8_t network,
                              TrafficClass cls)
{
    if (src == dst)
        return; // tile-local transfer never enters the network
    TraceRecord r;
    r.timeNs = time_ns;
    r.src = src;
    r.dst = dst;
    r.sizeBytes = static_cast<std::uint32_t>(bytes);
    r.network = network;
    r.cls = cls;
    records_.push_back(r);
    if (bytes > params_.ctrlPacketBytes)
        stats_.dataPackets += 1;
    else
        stats_.ctrlPackets += 1;
}

void
CoherenceTraceGenerator::invalidateTile(NodeId tile,
                                        std::uint64_t line)
{
    Core &c = *cores_[tile];
    c.l1.invalidate(line);
    c.l2.invalidate(line);
    directory_.removeSharer(line, tile);
}

double
CoherenceTraceGenerator::fill(Core &core, std::uint64_t line,
                              bool dirty)
{
    double extra = 0.0;
    const double cpu = params_.cpuCycleNs();

    // L2 fill with inclusive eviction handling.
    const auto l2v = core.l2.insert(line, dirty);
    if (l2v.evicted) {
        // Inclusion: purge the victim from L1 (fold its dirtiness in).
        bool victim_dirty = l2v.victimDirty;
        if (core.l1.contains(l2v.victimLine)) {
            victim_dirty |= core.l1.isDirty(l2v.victimLine);
            core.l1.invalidate(l2v.victimLine);
        }
        const NodeId home = directory_.homeOf(l2v.victimLine);
        if (victim_dirty) {
            // PutM with data on the request network; home acks.
            stats_.writebacks += 1;
            emit(core.timeNs, core.id, home, params_.dataPacketBytes,
                 kReqNet, TrafficClass::Request);
            emit(core.timeNs +
                     msgLatencyNs(core.id, home,
                                  params_.dataPacketBytes),
                 home, core.id, params_.ctrlPacketBytes, kRepNet,
                 TrafficClass::Reply);
            directory_.setInvalid(l2v.victimLine);
            extra += 2.0 * cpu; // queue the writeback
        } else {
            // Clean eviction: explicit PutS keeps the directory's
            // sharer list exact (non-silent protocol); the home acks.
            emit(core.timeNs, core.id, home, params_.ctrlPacketBytes,
                 kReqNet, TrafficClass::Request);
            emit(core.timeNs +
                     msgLatencyNs(core.id, home,
                                  params_.ctrlPacketBytes),
                 home, core.id, params_.ctrlPacketBytes, kRepNet,
                 TrafficClass::Reply);
            directory_.removeSharer(l2v.victimLine, core.id);
        }
    }

    // L1 fill.
    const auto l1v = core.l1.insert(line, dirty);
    if (l1v.evicted && l1v.victimDirty) {
        // Dirty L1 victim folds into L2 (inclusion guarantees
        // presence unless it was just purged above).
        core.l2.markDirty(l1v.victimLine);
    }
    return extra;
}

double
CoherenceTraceGenerator::transaction(Core &core, std::uint64_t line,
                                     bool write)
{
    const double cpu = params_.cpuCycleNs();
    const double mem = params_.memLatencyCpuCycles * cpu;
    const int ctrl = params_.ctrlPacketBytes;
    const int data = params_.dataPacketBytes;
    const NodeId home = directory_.homeOf(line);
    const double t0 = core.timeNs;

    // Request to the home directory.
    if (write)
        stats_.getM += 1;
    else
        stats_.getS += 1;
    emit(t0, core.id, home, ctrl, kReqNet, TrafficClass::Request);
    const double t_home = t0 + msgLatencyNs(core.id, home, ctrl);

    const DirEntry *e = directory_.find(line);
    const DirState state = e ? e->state : DirState::Invalid;
    double t_done;

    if (state == DirState::Modified && e->owner != core.id) {
        // 3-hop: forward to the owner, who supplies the data.
        stats_.forwards += 1;
        const NodeId owner = e->owner;
        emit(t_home, home, owner, ctrl, kReqNet,
             TrafficClass::Request);
        const double t_owner =
            t_home + msgLatencyNs(home, owner, ctrl);
        // Owner sends the line to the requestor...
        emit(t_owner, owner, core.id, data, kRepNet,
             TrafficClass::Reply);
        t_done = t_owner + msgLatencyNs(owner, core.id, data);
        if (write) {
            // ...and invalidates its copy.
            invalidateTile(owner, line);
            directory_.setModified(line, core.id);
        } else {
            // ...and also writes the dirty line back to the home.
            emit(t_owner, owner, home, data, kRepNet,
                 TrafficClass::Reply);
            cores_[owner]->l2.clearDirty(line); // stays cached, clean
            cores_[owner]->l1.clearDirty(line);
            directory_.entry(line).state = DirState::Shared;
            directory_.entry(line).owner = kInvalidNode;
            directory_.addSharer(line, owner);
            directory_.addSharer(line, core.id);
        }
    } else if (state == DirState::Shared && write) {
        // Invalidate all sharers; they ack the requestor directly.
        double t_acks = t_home;
        const std::uint64_t sharers = e->sharers;
        const bool upgrade = e->isSharer(core.id);
        for (NodeId s = 0; s < params_.cores; ++s) {
            if (!((sharers >> s) & 1ULL) || s == core.id)
                continue;
            stats_.invalidations += 1;
            emit(t_home, home, s, ctrl, kReqNet,
                 TrafficClass::Request);
            const double t_s = t_home + msgLatencyNs(home, s, ctrl);
            emit(t_s, s, core.id, ctrl, kRepNet, TrafficClass::Reply);
            t_acks = std::max(t_acks,
                              t_s + msgLatencyNs(s, core.id, ctrl));
            invalidateTile(s, line);
        }
        // Home grants in parallel with invalidation: full data for a
        // miss, a control-sized ack for an upgrade (the writer
        // already holds the line).
        const int grant = upgrade ? ctrl : data;
        emit(t_home + cpu, home, core.id, grant, kRepNet,
             TrafficClass::Reply);
        const double t_data =
            t_home + cpu + msgLatencyNs(home, core.id, grant);
        t_done = std::max(t_acks, t_data);
        directory_.setModified(line, core.id);
    } else if (state == DirState::Shared && !write) {
        // Home supplies the data (from its cached/memory copy).
        const double t_issue = t_home + 6.0 * cpu;
        emit(t_issue, home, core.id, data, kRepNet,
             TrafficClass::Reply);
        t_done = t_issue + msgLatencyNs(home, core.id, data);
        directory_.addSharer(line, core.id);
    } else {
        // Invalid (or stale-Modified self): fetch from memory.
        NOX_ASSERT(!(state == DirState::Modified &&
                     e->owner == core.id),
                   "L2 miss on a line the directory says we own");
        const double t_issue = t_home + mem;
        emit(t_issue, home, core.id, data, kRepNet,
             TrafficClass::Reply);
        t_done = t_issue + msgLatencyNs(home, core.id, data);
        if (write)
            directory_.setModified(line, core.id);
        else
            directory_.addSharer(line, core.id);
    }

    // Completion (unblock) message closing the transaction at the
    // home, as in MSHR-based directory implementations.
    emit(t_done, core.id, home, ctrl, kReqNet, TrafficClass::Request);

    directory_.checkInvariants(line);
    return std::max(t_done - t0, cpu);
}

void
CoherenceTraceGenerator::processOp(Core &core)
{
    const double cpu = params_.cpuCycleNs();

    // Barrier-synchronized phase schedule, global across cores: the
    // communication window concentrates shared accesses and raises
    // the issue rate; compute phases touch mostly private data.
    const double phase =
        profile_.commPeriodNs > 0.0
            ? core.timeNs -
                  std::floor(core.timeNs / profile_.commPeriodNs) *
                      profile_.commPeriodNs
            : 0.0;
    const bool in_window = profile_.commPeriodNs > 0.0 &&
                           phase < profile_.commWindowNs;

    // Issue gap between memory operations.
    double mean_gap = cpu / profile_.memOpsPerCpuCycle;
    double shared_scale = 0.25;
    double hot_scale = 1.0;
    if (in_window) {
        mean_gap /= profile_.windowOpBoost;
        shared_scale = profile_.windowSharedBoost;
        hot_scale = profile_.windowHotBoost;
    }
    core.timeNs += core.rng.nextExponential(mean_gap);

    const AddressStream::Op op =
        core.stream.next(shared_scale, hot_scale);
    const std::uint64_t line = core.l1.lineOf(op.addr);
    stats_.memOps += 1;

    // Upgrade-in-place: a write hitting a clean line we only share
    // needs GetM; model via the dirty bit + directory state.
    if (core.l1.lookup(line)) {
        stats_.l1Hits += 1;
        if (op.write && !core.l1.isDirty(line)) {
            const DirEntry *e = directory_.find(line);
            const bool exclusive = e &&
                                   e->state == DirState::Modified &&
                                   e->owner == core.id;
            if (!exclusive) {
                core.timeNs += transaction(core, line, true);
            }
            core.l1.markDirty(line);
            core.l2.markDirty(line);
        }
        return;
    }
    stats_.l1Misses += 1;
    core.timeNs += 2.0 * cpu; // L1 miss detection / L2 probe

    if (core.l2.lookup(line)) {
        stats_.l2Hits += 1;
        core.timeNs += 8.0 * cpu; // L2 hit latency
        if (op.write && !core.l2.isDirty(line)) {
            const DirEntry *e = directory_.find(line);
            const bool exclusive = e &&
                                   e->state == DirState::Modified &&
                                   e->owner == core.id;
            if (!exclusive)
                core.timeNs += transaction(core, line, true);
            core.l2.markDirty(line);
        }
        // Refill L1 from L2 (inclusion holds).
        const auto l1v = core.l1.insert(line, op.write);
        if (l1v.evicted && l1v.victimDirty)
            core.l2.markDirty(l1v.victimLine);
        return;
    }
    stats_.l2Misses += 1;
    const double lat = transaction(core, line, op.write);
    // Memory-level parallelism: an in-order core with a miss buffer
    // overlaps (mlp-1)/mlp of its misses with an earlier outstanding
    // one, paying only the issue gap; the final miss of each burst
    // pays the full round trip. Overlapped issue produces the
    // back-to-back request bursts characteristic of real traffic.
    if (profile_.mlp > 1.0 &&
        core.rng.nextBernoulli(1.0 - 1.0 / profile_.mlp)) {
        core.timeNs += 2.0 * params_.cpuCycleNs();
    } else {
        core.timeNs += lat;
    }
    core.timeNs += fill(core, line, op.write);
}

Trace
CoherenceTraceGenerator::generate(double horizon_ns, double warmup_ns)
{
    NOX_ASSERT(horizon_ns > 0.0, "horizon must be positive");
    NOX_ASSERT(warmup_ns >= 0.0, "warmup must be non-negative");
    const double end_ns = warmup_ns + horizon_ns;
    // Globally ordered simulation: always advance the core with the
    // smallest local time, so directory transactions interleave in
    // timestamp order.
    using Entry = std::pair<double, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap;
    for (const auto &c : cores_)
        heap.push({c->timeNs, c->id});

    while (!heap.empty()) {
        const auto [t, id] = heap.top();
        heap.pop();
        Core &core = *cores_[id];
        if (core.timeNs > t)
            continue; // stale heap entry
        if (core.timeNs >= end_ns)
            continue; // this core is done
        processOp(core);
        heap.push({core.timeNs, core.id});
    }

    // Discard warmup-phase packets and re-base the rest to t=0.
    std::vector<TraceRecord> kept;
    kept.reserve(records_.size());
    for (const TraceRecord &r : records_) {
        if (r.timeNs < warmup_ns)
            continue;
        TraceRecord shifted = r;
        shifted.timeNs -= warmup_ns;
        kept.push_back(shifted);
    }
    records_ = std::move(kept);

    Trace trace;
    trace.name = profile_.name;
    trace.durationNs = horizon_ns;
    std::stable_sort(records_.begin(), records_.end(),
                     [](const TraceRecord &a, const TraceRecord &b) {
                         return a.timeNs < b.timeNs;
                     });
    // Transactions issued near the horizon may emit slightly past it;
    // keep them (the replay handles any timestamp) but extend the
    // duration bookkeeping.
    trace.records = std::move(records_);
    if (!trace.records.empty()) {
        trace.durationNs = std::max(
            horizon_ns, trace.records.back().timeNs);
    }
    return trace;
}

} // namespace nox
