#include "coherence/cache.hpp"

#include <bit>

#include "common/log.hpp"

namespace nox {

SetAssocCache::SetAssocCache(int size_kb, int ways, int line_bytes)
    : lineBytes_(line_bytes), ways_(ways)
{
    NOX_ASSERT(size_kb > 0 && ways > 0 && line_bytes > 0,
               "invalid cache geometry");
    const long long lines =
        static_cast<long long>(size_kb) * 1024 / line_bytes;
    NOX_ASSERT(lines % ways == 0, "capacity not divisible by ways");
    numSets_ = static_cast<int>(lines / ways);
    NOX_ASSERT(std::has_single_bit(static_cast<unsigned>(numSets_)),
               "set count must be a power of two, got ", numSets_);
    sets_.assign(static_cast<std::size_t>(numSets_),
                 std::vector<Way>(static_cast<std::size_t>(ways)));
}

std::uint64_t
SetAssocCache::lineOf(std::uint64_t byte_addr) const
{
    return byte_addr / static_cast<std::uint64_t>(lineBytes_);
}

std::vector<SetAssocCache::Way> &
SetAssocCache::setOf(std::uint64_t line)
{
    return sets_[line & static_cast<std::uint64_t>(numSets_ - 1)];
}

const std::vector<SetAssocCache::Way> &
SetAssocCache::setOf(std::uint64_t line) const
{
    return sets_[line & static_cast<std::uint64_t>(numSets_ - 1)];
}

bool
SetAssocCache::lookup(std::uint64_t line)
{
    for (Way &w : setOf(line)) {
        if (w.valid && w.line == line) {
            w.lastUse = ++useClock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
SetAssocCache::contains(std::uint64_t line) const
{
    for (const Way &w : setOf(line)) {
        if (w.valid && w.line == line)
            return true;
    }
    return false;
}

SetAssocCache::Insert
SetAssocCache::insert(std::uint64_t line, bool dirty)
{
    NOX_ASSERT(!contains(line), "inserting already-present line");
    auto &set = setOf(line);
    Way *victim = &set[0];
    for (Way &w : set) {
        if (!w.valid) {
            victim = &w;
            break;
        }
        if (w.lastUse < victim->lastUse)
            victim = &w;
    }

    Insert result;
    if (victim->valid) {
        result.evicted = true;
        result.victimLine = victim->line;
        result.victimDirty = victim->dirty;
    }
    victim->valid = true;
    victim->line = line;
    victim->dirty = dirty;
    victim->lastUse = ++useClock_;
    return result;
}

bool
SetAssocCache::markDirty(std::uint64_t line)
{
    for (Way &w : setOf(line)) {
        if (w.valid && w.line == line) {
            w.dirty = true;
            w.lastUse = ++useClock_;
            return true;
        }
    }
    return false;
}

bool
SetAssocCache::clearDirty(std::uint64_t line)
{
    for (Way &w : setOf(line)) {
        if (w.valid && w.line == line) {
            w.dirty = false;
            return true;
        }
    }
    return false;
}

bool
SetAssocCache::isDirty(std::uint64_t line) const
{
    for (const Way &w : setOf(line)) {
        if (w.valid && w.line == line)
            return w.dirty;
    }
    return false;
}

bool
SetAssocCache::invalidate(std::uint64_t line)
{
    for (Way &w : setOf(line)) {
        if (w.valid && w.line == line) {
            w.valid = false;
            return true;
        }
    }
    return false;
}

} // namespace nox
