#include "coherence/directory.hpp"

#include "common/log.hpp"

namespace nox {

void
Directory::addSharer(std::uint64_t line, NodeId tile)
{
    DirEntry &e = entries_[line];
    e.sharers |= (1ULL << tile);
    e.owner = kInvalidNode;
    e.state = DirState::Shared;
    checkInvariants(line);
}

void
Directory::removeSharer(std::uint64_t line, NodeId tile)
{
    auto it = entries_.find(line);
    if (it == entries_.end())
        return;
    DirEntry &e = it->second;
    e.sharers &= ~(1ULL << tile);
    if (e.owner == tile)
        e.owner = kInvalidNode;
    if (e.sharers == 0) {
        e.state = DirState::Invalid;
        e.owner = kInvalidNode;
        entries_.erase(it);
        return;
    }
    if (e.state == DirState::Modified && e.owner == kInvalidNode)
        e.state = DirState::Shared;
    checkInvariants(line);
}

void
Directory::setModified(std::uint64_t line, NodeId owner)
{
    DirEntry &e = entries_[line];
    e.state = DirState::Modified;
    e.owner = owner;
    e.sharers = (1ULL << owner);
    checkInvariants(line);
}

void
Directory::setInvalid(std::uint64_t line)
{
    entries_.erase(line);
}

void
Directory::checkInvariants(std::uint64_t line) const
{
    const DirEntry *e = find(line);
    if (!e)
        return;
    switch (e->state) {
      case DirState::Invalid:
        NOX_ASSERT(e->sharers == 0 && e->owner == kInvalidNode,
                   "Invalid entry with residents for line ", line);
        break;
      case DirState::Shared:
        NOX_ASSERT(e->sharers != 0, "Shared entry without sharers");
        NOX_ASSERT(e->owner == kInvalidNode,
                   "Shared entry with an owner");
        break;
      case DirState::Modified:
        NOX_ASSERT(e->owner != kInvalidNode,
                   "Modified entry without owner");
        NOX_ASSERT(e->sharers == (1ULL << e->owner),
                   "Modified entry must have exactly the owner "
                   "as resident (single-writer invariant)");
        break;
    }
}

} // namespace nox
