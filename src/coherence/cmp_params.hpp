/**
 * @file
 * Common system parameters of the evaluated CMP (Table 1 of the
 * paper).
 */

#ifndef NOX_COHERENCE_CMP_PARAMS_HPP
#define NOX_COHERENCE_CMP_PARAMS_HPP

#include <cstdint>
#include <iosfwd>

namespace nox {

/** Table 1: Common System Parameters. */
struct CmpParams
{
    int cores = 64;
    int meshWidth = 8;
    int meshHeight = 8;
    double cpuGhz = 3.0;        ///< in-order PowerPC cores
    int l1SizeKB = 32;          ///< I/D each; D-side modelled
    int l1Ways = 2;
    int l2SizeKB = 256;         ///< private per-tile L2
    int l2Ways = 8;
    int lineBytes = 64;
    int memLatencyCpuCycles = 100;
    int ctrlPacketBytes = 8;    ///< single-flit control
    int dataPacketBytes = 72;   ///< 64B line + 8B header = 9 flits

    double cpuCycleNs() const { return 1.0 / cpuGhz; }

    /** Print as the paper's Table 1. */
    void printTable(std::ostream &os) const;
};

} // namespace nox

#endif // NOX_COHERENCE_CMP_PARAMS_HPP
