/**
 * @file
 * Multiple parallel physical networks (§2.8).
 *
 * The evaluated routers are wormhole designs without virtual
 * channels; protocol-level deadlock is avoided with multiple physical
 * channels instead, which several works cited by the paper argue is
 * the more power-efficient alternative. PhysicalChannelGroup bundles
 * N identical networks, assigns packets to subnetworks by traffic
 * class (or explicitly), steps them in lockstep and aggregates their
 * statistics — the substrate used for the request/reply pair of the
 * application evaluation and for wider class splits.
 */

#ifndef NOX_CORE_CHANNEL_GROUP_HPP
#define NOX_CORE_CHANNEL_GROUP_HPP

#include <memory>
#include <vector>

#include "noc/network.hpp"

namespace nox {

/** A bundle of parallel physical networks. */
class PhysicalChannelGroup
{
  public:
    /**
     * @param params per-subnetwork construction parameters
     * @param arch router architecture (identical across channels)
     * @param num_channels number of physical networks (>= 1)
     */
    PhysicalChannelGroup(const NetworkParams &params, RouterArch arch,
                         int num_channels);

    int numChannels() const
    {
        return static_cast<int>(nets_.size());
    }
    Network &channel(int i) { return *nets_[static_cast<size_t>(i)]; }
    const Network &channel(int i) const
    {
        return *nets_[static_cast<size_t>(i)];
    }

    /** Map a traffic class to its subnetwork (Request->0, Reply->1
     *  modulo the channel count; Synthetic->0). */
    int channelOf(TrafficClass cls) const;

    /** Inject into the class-mapped subnetwork. */
    PacketId injectPacket(NodeId src, NodeId dst, int num_flits,
                          TrafficClass cls);

    /** Inject into an explicit subnetwork. */
    PacketId injectPacket(int channel, NodeId src, NodeId dst,
                          int num_flits, TrafficClass cls);

    /** Advance every subnetwork one cycle (lockstep). */
    void step();

    /** Advance @p cycles cycles. */
    void run(Cycle cycles);

    /** Drain all subnetworks; true when everything delivered. */
    bool drain(Cycle limit);

    Cycle now() const { return nets_.front()->now(); }
    std::uint64_t packetsInFlight() const;

    /** Sum of per-channel injected/ejected packet counts. */
    std::uint64_t packetsInjected() const;
    std::uint64_t packetsEjected() const;

    /** Merged latency statistics across channels. */
    SampleStats mergedLatency() const;
    SampleStats mergedNetLatency() const;

    /** Summed energy-event counters across channels. */
    EnergyEvents totalEnergyEvents() const;

  private:
    std::vector<std::unique_ptr<Network>> nets_;
};

} // namespace nox

#endif // NOX_CORE_CHANNEL_GROUP_HPP
