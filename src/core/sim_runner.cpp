#include "core/sim_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <sstream>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "noc/fault_injector.hpp"
#include "noc/network.hpp"
#include "obs/obs_params.hpp"
#include "noc/snapshot_codec.hpp"
#include "routers/factory.hpp"
#include "snapshot/snapshot.hpp"
#include "traffic/bernoulli_source.hpp"
#include "traffic/pareto_source.hpp"
#include "traffic/replay_source.hpp"

namespace nox {

double
mbpsToFlitsPerCycle(double mbps, double period_ns)
{
    // MB/s = 1e6 B / 1e9 ns = 1e-3 B/ns; 8 bytes per flit.
    return mbps * 1e-3 / 8.0 * period_ns;
}

double
flitsPerCycleToMbps(double flits_per_cycle, double period_ns)
{
    return flits_per_cycle * 8.0 / period_ns * 1e3;
}

SyntheticConfig
parseSyntheticConfig(const Config &config)
{
    SyntheticConfig c;
    c.arch = parseArch(config.getString("arch", "nox").c_str());
    c.pattern = parsePattern(config.getString("pattern", "uniform"));
    c.injectionMBps = config.getDouble("rate_mbps", 1000.0);
    c.selfSimilar = config.getBool("selfsimilar", false);
    c.packetFlits =
        static_cast<int>(config.getInt("packet_flits", 1));
    c.width = static_cast<int>(config.getInt("width", 8));
    c.height = static_cast<int>(config.getInt("height", 8));
    c.concentration =
        static_cast<int>(config.getInt("concentration", 1));
    c.bufferDepth =
        static_cast<int>(config.getInt("buffer_depth", 4));
    c.sinkBufferDepth = c.bufferDepth;
    c.warmupCycles = config.getUint("warmup", c.warmupCycles);
    c.measureCycles = config.getUint("measure", c.measureCycles);
    c.drainLimitCycles =
        config.getUint("drain_limit", c.drainLimitCycles);
    c.seed = config.getUint("seed", c.seed);
    c.schedulingMode = parseSchedulingMode(
        config.getString("scheduling", "alwaystick").c_str());
    c.faults = faultParamsFromConfig(config);
    c.obs = obsParamsFromConfig(config);

    const std::string arb = config.getString("arbiter", "roundrobin");
    if (arb == "fixed")
        c.arbiterKind = ArbiterKind::FixedPriority;
    else if (arb == "matrix")
        c.arbiterKind = ArbiterKind::Matrix;

    c.checkpointInterval =
        config.getUint("checkpoint_interval", c.checkpointInterval);
    c.checkpointFile =
        config.getString("checkpoint_file", c.checkpointFile);
    c.checkpointKeep = static_cast<int>(
        config.getInt("checkpoint_keep", c.checkpointKeep));
    c.resumePath = config.getString("resume");

    c.perturbCycle = config.getUint("perturb_cycle", 0);
    c.perturbRouter = static_cast<NodeId>(
        config.getInt("perturb_router", 0));
    return c;
}

double
syntheticOfferedFlitsPerCycle(const SyntheticConfig &config)
{
    // The physical model follows the topology: concentrated meshes
    // have higher-radix routers and (same die area, fewer routers)
    // proportionally longer channels — §8's future-work setting.
    PhysicalParams phys = config.phys;
    if (config.concentration > 1) {
        phys.ports = meshRadix(config.concentration);
        phys.linkLengthMm *= std::sqrt(
            static_cast<double>(config.concentration));
    }
    const TimingModel timing(config.tech, phys);
    return mbpsToFlitsPerCycle(config.injectionMBps,
                               timing.clockPeriodNs(config.arch));
}

SyntheticNet
buildSyntheticNetwork(const SyntheticConfig &config)
{
    SyntheticNet built;
    built.offeredFlitsPerCycle =
        syntheticOfferedFlitsPerCycle(config);

    NetworkParams params;
    params.width = config.width;
    params.height = config.height;
    params.concentration = config.concentration;
    params.router.bufferDepth = config.bufferDepth;
    params.router.arbiterKind = config.arbiterKind;
    params.sinkBufferDepth = config.sinkBufferDepth;
    params.schedulingMode = config.schedulingMode;
    params.faults = config.faults;
    params.obs = config.obs;
    params.debugPerturbCycle = config.perturbCycle;
    params.debugPerturbRouter = config.perturbRouter;
    built.net = makeNetwork(params, config.arch);

    built.pattern = std::make_unique<DestinationPattern>(
        config.pattern, built.net->mesh(), config.hotspotFraction);
    Rng seeder(config.seed);
    for (NodeId n = 0; n < built.net->numNodes(); ++n) {
        if (config.selfSimilar) {
            built.net->addSource(std::make_unique<ParetoSource>(
                n, *built.pattern, built.offeredFlitsPerCycle,
                config.packetFlits, seeder.next()));
        } else {
            built.net->addSource(std::make_unique<BernoulliSource>(
                n, *built.pattern, built.offeredFlitsPerCycle,
                config.packetFlits, seeder.next()));
        }
    }
    built.net->setMeasurementWindow(
        config.warmupCycles,
        config.warmupCycles + config.measureCycles);
    return built;
}

std::string
syntheticRunnerFingerprint(const SyntheticConfig &config)
{
    // The Network fingerprint covers construction parameters only;
    // runner-level knobs (traffic pattern, offered load, window
    // boundaries, seed) live here so a resume under a different
    // experiment is rejected instead of silently continuing wrong.
    std::ostringstream rfp;
    rfp.precision(17);
    rfp << "pattern="
        << (config.selfSimilar ? "selfsimilar"
                               : patternName(config.pattern))
        << " rate_mbps=" << config.injectionMBps
        << " flits=" << config.packetFlits
        << " hotspot=" << config.hotspotFraction
        << " warmup=" << config.warmupCycles
        << " measure=" << config.measureCycles
        << " drain_limit=" << config.drainLimitCycles
        << " seed=" << config.seed;
    return rfp.str();
}

RunResult
runSynthetic(const SyntheticConfig &config)
{
    RunResult res;
    res.arch = config.arch;

    PhysicalParams phys = config.phys;
    if (config.concentration > 1) {
        phys.ports = meshRadix(config.concentration);
        phys.linkLengthMm *= std::sqrt(
            static_cast<double>(config.concentration));
    }
    const TimingModel timing(config.tech, phys);
    res.periodNs = timing.clockPeriodNs(config.arch);
    res.offeredMBps = config.injectionMBps;
    res.offeredFlitsPerCycle =
        mbpsToFlitsPerCycle(config.injectionMBps, res.periodNs);

    if (res.offeredFlitsPerCycle >= 1.0) {
        // Beyond the injection channel's peak: trivially saturated.
        res.saturated = true;
        res.drained = false;
        return res;
    }

    SyntheticNet built = buildSyntheticNetwork(config);
    auto &net = built.net;

    const Cycle m0 = config.warmupCycles;
    const Cycle m1 = config.warmupCycles + config.measureCycles;

    // Runner-phase state that outlives a checkpoint: the energy
    // snapshots bracketing the measurement window. Captured-flags
    // handle checkpoints that fire before the respective boundary.
    EnergyEvents before, after;
    bool beforeCaptured = false, afterCaptured = false;

    const std::string runnerFp = syntheticRunnerFingerprint(config);

    if (!config.resumePath.empty()) {
        try {
            const snap::SnapshotFile file =
                snap::loadSnapshotFile(config.resumePath);
            snap::restoreNetwork(*net, file);
            const snap::Section &rsec =
                file.require(snap::kSectionRunner);
            snap::Reader rr(rsec.payload.data(),
                            rsec.payload.size());
            snap::checkTag(rr, snap::fourcc("RUNR"));
            const std::string savedFp = rr.str();
            if (savedFp != runnerFp) {
                throw snap::SnapshotError(
                    "snapshot was taken from a different "
                    "experiment:\n  snapshot: " +
                    savedFp + "\n  this run: " + runnerFp);
            }
            beforeCaptured = rr.boolean();
            if (beforeCaptured)
                before = snap::readEnergyEvents(rr);
            afterCaptured = rr.boolean();
            if (afterCaptured)
                after = snap::readEnergyEvents(rr);
            rr.expectEnd();
        } catch (const snap::SnapshotError &e) {
            fatal("cannot resume from '", config.resumePath,
                  "': ", e.what());
        }
    }

    if (config.checkpointInterval > 0) {
        net->installCheckpoint(
            config.checkpointInterval, [&](Network &n) {
                snap::SnapshotFile image =
                    snap::captureNetwork(n, "noxsim");
                snap::Writer rw;
                snap::tag(rw, snap::fourcc("RUNR"));
                rw.str(runnerFp);
                rw.boolean(beforeCaptured);
                if (beforeCaptured)
                    snap::writeEnergyEvents(rw, before);
                rw.boolean(afterCaptured);
                if (afterCaptured)
                    snap::writeEnergyEvents(rw, after);
                image.sections.push_back(
                    {snap::kSectionRunner, rw.take()});
                snap::writeSnapshotFileAtomic(
                    config.checkpointFile,
                    snap::encodeSnapshotFile(image),
                    config.checkpointKeep);
            });
    }

    // The drain tail is open-ended, so the ETA targets the end of the
    // measurement window — the last boundary known in advance.
    if (net->telemetry())
        net->telemetry()->setTargetCycles(m1);

    // Wall-clock the whole simulation (warmup + measure + drain) —
    // this is the quantity the scheduling kernels are compared on.
    const auto wall0 = std::chrono::steady_clock::now();

    // Phase boundaries are absolute cycles, so a resumed run simply
    // finishes whatever remains of each phase (possibly nothing).
    const Cycle start = net->now();
    net->run(start < m0 ? m0 - start : 0);
    if (!beforeCaptured) {
        before = net->totalEnergyEvents();
        beforeCaptured = true;
    }
    net->run(net->now() < m1 ? m1 - net->now() : 0);
    if (!afterCaptured) {
        after = net->totalEnergyEvents();
        afterCaptured = true;
    }

    net->setSourcesEnabled(false);
    const Cycle deadline = m1 + config.drainLimitCycles;
    res.drained =
        net->drain(net->now() < deadline ? deadline - net->now() : 0);
    if (!res.drained)
        res.drainDiagnosis = net->lastDrainReport().summary();

    const auto wall1 = std::chrono::steady_clock::now();
    res.wallSeconds =
        std::chrono::duration<double>(wall1 - wall0).count();
    res.cyclesSimulated = net->now();

    // End-of-run observability flush: final partial metrics window,
    // JSONL + Chrome trace exports. Outside the wall-clock window so
    // export I/O never pollutes the kernel-speed comparison.
    net->finishObservability();
    if (const LatencyProvenance *prov = net->provenance()) {
        res.provenance = true;
        res.breakdown = prov->total();
        for (int cls = 0; cls < 3; ++cls) {
            res.breakdownByClass[static_cast<std::size_t>(cls)] =
                prov->byClass(static_cast<TrafficClass>(cls));
        }
        res.provenanceViolations = prov->conservationViolations();
    }
    if (const PhaseProfiler *prof = net->profiler()) {
        res.profiled = true;
        for (std::size_t p = 0; p < kNumSimPhases; ++p) {
            const PhaseTotals &t =
                prof->phase(static_cast<SimPhase>(p));
            res.phaseSeconds[p] = static_cast<double>(t.ns) * 1e-9;
            res.phaseEnters[p] = t.enters;
        }
        res.profiledTotalSeconds =
            static_cast<double>(prof->totalNs()) * 1e-9;
        res.profileCoverage = prof->coverage();
        const int shards = std::min(4, config.height);
        const std::vector<int> shardOf =
            rowStripePartition(config.width, config.height, shards);
        std::vector<std::uint64_t> evals, flits;
        for (NodeId r = 0;
             r < static_cast<NodeId>(prof->numRouters()); ++r) {
            const RouterWork w = prof->routerWork(r);
            evals.push_back(w.evaluations);
            flits.push_back(w.flitsMoved);
        }
        if (shardOf.size() == evals.size()) {
            res.imbalanceEvals = loadImbalance(evals, shardOf, shards);
            res.imbalanceFlits = loadImbalance(flits, shardOf, shards);
        }
    }
    if (const DigestLedger *digest = net->digest()) {
        res.digestStrides =
            static_cast<std::int64_t>(digest->strideCount());
        res.lastDigestCycle = digest->lastDigestCycle();
    }
    if (net->metrics() && net->metrics()->params().heatmap) {
        std::ostringstream os;
        net->metrics()
            ->heatmapTable(config.width, config.height)
            .print(os);
        res.metricsHeatmap = os.str();
    }

    const NetworkStats &stats = net->stats();
    res.packetsMeasured = stats.latency.count();
    res.avgLatencyCycles = stats.latency.mean();
    res.avgLatencyNs = res.avgLatencyCycles * res.periodNs;
    res.p50LatencyNs = stats.latencyHist.percentile(50) * res.periodNs;
    res.p95LatencyNs = stats.latencyHist.percentile(95) * res.periodNs;
    res.p99LatencyNs = stats.latencyHist.percentile(99) * res.periodNs;
    res.latencyHistOverflow = stats.latencyHist.overflowCount();
    res.latencyHistWidenings = stats.latencyHist.widenings();
    res.acceptedFlitsPerCycle =
        stats.acceptedFlitsPerNodeCycle(net->numNodes());
    res.acceptedMBps =
        flitsPerCycleToMbps(res.acceptedFlitsPerCycle, res.periodNs);
    res.maxSourceQueueFlits = stats.maxSourceQueueFlits;
    res.faults = stats.faults;

    // Saturation: the network no longer accepts the load its sources
    // actually created (silent sources under deterministic patterns
    // lower the real offered load, so compare against creations), or
    // source queues grew without bound during the window. Self-
    // similar sources are legitimately bursty, so only the throughput
    // check applies to them (with a looser margin).
    const double accept_ratio =
        stats.flitsCreatedInWindow > 0
            ? static_cast<double>(stats.flitsEjectedInWindow) /
                  static_cast<double>(stats.flitsCreatedInWindow)
            : 1.0;
    if (config.selfSimilar) {
        res.saturated = accept_ratio < 0.85 || !res.drained;
    } else {
        res.saturated = accept_ratio < 0.92 || !res.drained ||
                        res.maxSourceQueueFlits >
                            static_cast<std::size_t>(
                                200 + 40 * config.packetFlits);
    }

    const EnergyModel energy(config.tech, config.arch, phys);
    const EnergyEvents window = diff(after, before);
    res.abortCycles = window.abortCycles;
    res.misspecCycles = window.misspecCycles;
    res.flitHops = window.linkFlits + window.localLinkFlits;
    res.wastedLinkCycles =
        window.linkWastedCycles + window.localLinkWasted;
    res.energy = energy.energyOf(window);
    res.powerW =
        energy.powerW(window, res.periodNs, config.measureCycles);
    if (res.packetsMeasured > 0) {
        res.energyPerPacketPj =
            res.energy.totalPj() /
            static_cast<double>(stats.flitsEjectedInWindow) *
            static_cast<double>(config.packetFlits);
        res.ed2 = res.energyPerPacketPj * res.avgLatencyNs *
                  res.avgLatencyNs;
    }
    return res;
}

namespace {

/** Replay one physical network's records to completion. */
struct PhysNetOutcome
{
    NetworkStats stats;
    EnergyEvents events;
    Cycle cycles = 0;
    bool drained = true;
};

PhysNetOutcome
replayOne(const AppConfig &config, std::vector<TraceRecord> records,
          double period_ns)
{
    NetworkParams params;
    params.width = config.width;
    params.height = config.height;
    params.router.bufferDepth = config.bufferDepth;
    params.sinkBufferDepth = config.sinkBufferDepth;
    auto net = makeNetwork(params, config.arch);

    auto source =
        std::make_unique<ReplaySource>(std::move(records), period_ns);
    ReplaySource *replay = source.get();
    net->addSource(std::move(source));

    PhysNetOutcome out;
    Cycle guard = 0;
    while ((!replay->done() || net->packetsInFlight() > 0) &&
           guard < config.drainLimitCycles) {
        net->step();
        ++guard;
    }
    out.drained = replay->done() && net->packetsInFlight() == 0;
    out.stats = net->stats();
    out.events = net->totalEnergyEvents();
    out.cycles = net->now();
    return out;
}

} // namespace

AppResult
runApplication(const AppConfig &config, const Trace &trace)
{
    AppResult res;
    res.arch = config.arch;

    const TimingModel timing(config.tech, config.phys);
    res.periodNs = timing.clockPeriodNs(config.arch);

    // Two physical 64-bit wormhole networks isolate the request and
    // reply coherence classes (§5.2 / Table 1).
    const PhysNetOutcome req =
        replayOne(config, trace.forNetwork(0), res.periodNs);
    const PhysNetOutcome rep =
        replayOne(config, trace.forNetwork(1), res.periodNs);
    res.drained = req.drained && rep.drained;
    if (!res.drained) {
        warn("application replay did not drain for ",
             archName(config.arch));
    }

    SampleStats all = req.stats.netLatency;
    all.merge(rep.stats.netLatency);
    SampleStats total = req.stats.latency;
    total.merge(rep.stats.latency);
    res.packets = all.count();
    res.avgLatencyCycles = all.mean();
    res.avgLatencyNs = res.avgLatencyCycles * res.periodNs;
    res.avgTotalLatencyNs = total.mean() * res.periodNs;
    res.avgLatencyNsRequest =
        req.stats.netLatency.mean() * res.periodNs;
    res.avgLatencyNsReply =
        rep.stats.netLatency.mean() * res.periodNs;

    const EnergyModel energy(config.tech, config.arch, config.phys);
    EnergyEvents events = req.events;
    events.merge(rep.events);
    res.energy = energy.energyOf(events);
    const Cycle span = std::max(req.cycles, rep.cycles);
    res.powerW = energy.powerW(events, res.periodNs, span);
    if (res.packets > 0) {
        res.energyPerPacketPj =
            res.energy.totalPj() / static_cast<double>(res.packets);
        res.ed2 = res.energyPerPacketPj * res.avgLatencyNs *
                  res.avgLatencyNs;
    }
    return res;
}

} // namespace nox
