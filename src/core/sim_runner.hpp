/**
 * @file
 * High-level experiment runners.
 *
 * runSynthetic() performs one point of a latency-vs-load sweep
 * (Figures 8/9): build a mesh of the chosen router architecture,
 * offer load at a given MB/s/node (converted to flits/cycle using the
 * architecture's clock period from the timing model), warm up,
 * measure, drain, and report latency / throughput / energy / ED^2.
 *
 * runApplication() replays a packet trace (Figure 10/11): the same
 * nanosecond-domain trace drives each architecture at its own clock,
 * on two physical networks (request + reply) as in §5.2.
 */

#ifndef NOX_CORE_SIM_RUNNER_HPP
#define NOX_CORE_SIM_RUNNER_HPP

#include <array>
#include <cstdint>

#include "noc/network.hpp"
#include "obs/profiler.hpp"
#include "obs/provenance.hpp"
#include "noc/router.hpp"
#include "noc/types.hpp"
#include "power/energy_model.hpp"
#include "power/timing_model.hpp"
#include "traffic/patterns.hpp"
#include "traffic/trace.hpp"

namespace nox {

/** Configuration for one synthetic-traffic measurement point. */
struct SyntheticConfig
{
    RouterArch arch = RouterArch::Nox;
    PatternKind pattern = PatternKind::UniformRandom;
    double injectionMBps = 500.0; ///< offered load per node
    bool selfSimilar = false;     ///< Pareto ON/OFF instead of
                                  ///< Bernoulli
    int packetFlits = 1;          ///< paper synthetic: single-flit
    int width = 8;
    int height = 8;
    int concentration = 1; ///< terminals per router (>1 = CMesh, §8)
    int bufferDepth = 4;
    int sinkBufferDepth = 4;
    ArbiterKind arbiterKind = ArbiterKind::RoundRobin;
    double hotspotFraction = 0.2;
    Cycle warmupCycles = 10000;
    Cycle measureCycles = 30000;
    Cycle drainLimitCycles = 150000;
    std::uint64_t seed = 0xA11CE5;
    SchedulingMode schedulingMode = SchedulingMode::AlwaysTick;
    FaultParams faults; ///< link-fault injection (disabled by default)
    ObsParams obs;      ///< tracing + metrics (disabled by default)
    Technology tech = Technology::tsmc65();
    PhysicalParams phys;

    /** Periodic checkpointing: every this many cycles a crash-safe
     *  snapshot is written to checkpointFile (0 = off). */
    Cycle checkpointInterval = 0;
    std::string checkpointFile = "nox-checkpoint.snap";
    /** Snapshots retained (live file + rotated predecessors). */
    int checkpointKeep = 2;
    /** Resume from this snapshot instead of starting at cycle 0. The
     *  run's configuration must match the snapshot's (fingerprint
     *  checked); the resumed run completes with NetworkStats and
     *  provenance bit-identical to the uninterrupted run. */
    std::string resumePath;

    /** Deliberate-divergence knob (test/debug only), forwarded to
     *  NetworkParams::debugPerturbCycle: corrupt one arbiter draw in
     *  this router at the end of this cycle (0 = off). Seeds a known
     *  divergence for the digest ledger / trace_tool bisect flow. */
    Cycle perturbCycle = 0;
    NodeId perturbRouter = 0;
};

/** Result of one measurement point. */
struct RunResult
{
    RouterArch arch = RouterArch::Nox;
    double periodNs = 0.0;

    double offeredMBps = 0.0;
    double offeredFlitsPerCycle = 0.0;
    double acceptedMBps = 0.0;
    double acceptedFlitsPerCycle = 0.0;

    std::uint64_t packetsMeasured = 0;
    double avgLatencyCycles = 0.0;
    double avgLatencyNs = 0.0;
    double p50LatencyNs = 0.0;
    double p95LatencyNs = 0.0;
    double p99LatencyNs = 0.0;

    /** Latency-histogram coverage diagnostics: samples past the upper
     *  bound (should be 0 — auto-widening absorbs them) and how many
     *  times the bucket width doubled to keep them in range. */
    std::uint64_t latencyHistOverflow = 0;
    std::uint32_t latencyHistWidenings = 0;

    /** Rendered link-utilization heatmap ("" when metrics are off). */
    std::string metricsHeatmap;

    /** Latency-provenance attribution over the measured packets
     *  (provenance= runs only; see obs/provenance.hpp). */
    bool provenance = false;
    LatencyBreakdown breakdown;
    std::array<LatencyBreakdown, 3> breakdownByClass;
    /** Packets whose components failed to sum to their latency
     *  (must be 0 — a nonzero count is a simulator bug). */
    std::uint64_t provenanceViolations = 0;

    bool saturated = false;
    bool drained = true;
    std::string drainDiagnosis; ///< non-empty when drain timed out
    std::size_t maxSourceQueueFlits = 0;

    /** Fault-injection counters over the whole run (all zero when
     *  injection is disabled). */
    FaultStats faults;

    // Simulator (host) performance over warmup+measure+drain; the
    // activity-driven kernel is evaluated on cyclesPerSecond().
    double wallSeconds = 0.0;
    std::uint64_t cyclesSimulated = 0;
    /** Flit-hops (mesh-link + NIC-link flit traversals) over the
     *  measurement window — the work-done numerator for the
     *  throughput bench's flit-hops/s figure. */
    std::uint64_t flitHops = 0;
    double
    cyclesPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(cyclesSimulated) / wallSeconds
                   : 0.0;
    }

    /** Self-profiling phase breakdown (profile= runs only; see
     *  obs/profiler.hpp). Seconds of host wall time per SimPhase,
     *  total stepped time, and the scoped-coverage fraction. */
    bool profiled = false;
    std::array<double, kNumSimPhases> phaseSeconds{};
    std::array<std::uint64_t, kNumSimPhases> phaseEnters{};
    double profiledTotalSeconds = 0.0;
    double profileCoverage = 0.0;
    /** Load-imbalance index (max shard / mean shard) over row-stripe
     *  partitions, by router evaluations and by flits moved. */
    double imbalanceEvals = 0.0;
    double imbalanceFlits = 0.0;

    /** State-digest ledger summary (digest= runs only; -1 = off). */
    std::int64_t digestStrides = -1;
    std::int64_t lastDigestCycle = -1;

    EnergyBreakdown energy;      ///< over the measurement window
    double powerW = 0.0;         ///< mean power over the window
    double energyPerPacketPj = 0.0;
    double ed2 = 0.0;            ///< pJ * ns^2 (paper's ED^2 metric)

    // Raw microarchitectural activity over the window.
    std::uint64_t abortCycles = 0;   ///< NoX multi-flit aborts
    std::uint64_t misspecCycles = 0; ///< speculative collisions
    std::uint64_t wastedLinkCycles = 0;
};

/** Run one synthetic measurement point. */
RunResult runSynthetic(const SyntheticConfig &config);

class Config;

/**
 * Parse the shared synthetic-run keys (arch, pattern, rate_mbps,
 * checkpoint/resume knobs, perturb knobs, ...) from a key=value
 * Config — one parser for every front end (noxsim, trace_tool
 * bisect), so a bisection re-run accepts exactly the keys of the run
 * it reproduces. Does not call requireAllUsed: callers own their
 * leftover-key policy.
 */
SyntheticConfig parseSyntheticConfig(const Config &config);

/** Offered load in flits/node/cycle for one synthetic point (clock
 *  period from the arch's timing model, concentration-adjusted). */
double syntheticOfferedFlitsPerCycle(const SyntheticConfig &config);

/**
 * A constructed-but-not-yet-run synthetic network: the Network plus
 * the destination pattern its sources reference (member order makes
 * the net destruct first). Shared by runSynthetic and the trace_tool
 * bisector so a re-run reproduces the exact construction.
 */
struct SyntheticNet
{
    double offeredFlitsPerCycle = 0.0;
    std::unique_ptr<DestinationPattern> pattern;
    std::unique_ptr<Network> net; ///< destroyed before pattern
};

/** Build network + per-node sources + measurement window for one
 *  synthetic point. Fatal when the offered load saturates the
 *  injection channel (callers check via runSynthetic for sweeps). */
SyntheticNet buildSyntheticNetwork(const SyntheticConfig &config);

/** Runner-level fingerprint (pattern/rate/window/seed) guarding
 *  resume: embedded in checkpoints next to the Network fingerprint. */
std::string syntheticRunnerFingerprint(const SyntheticConfig &config);

/** Configuration for an application-trace replay. */
struct AppConfig
{
    RouterArch arch = RouterArch::Nox;
    int width = 8;
    int height = 8;
    int bufferDepth = 4;
    int sinkBufferDepth = 4;
    Cycle drainLimitCycles = 4000000;
    Technology tech = Technology::tsmc65();
    PhysicalParams phys;
};

/** Result of replaying one application trace. */
struct AppResult
{
    RouterArch arch = RouterArch::Nox;
    double periodNs = 0.0;

    std::uint64_t packets = 0;
    /** Network latency (head injection -> delivery), the paper's
     *  figure-10 metric for open-loop trace replay. */
    double avgLatencyCycles = 0.0;
    double avgLatencyNs = 0.0;
    /** Total latency including source queueing (diagnostic). */
    double avgTotalLatencyNs = 0.0;
    double avgLatencyNsRequest = 0.0;
    double avgLatencyNsReply = 0.0;

    bool drained = true;
    EnergyBreakdown energy; ///< both physical networks, full run
    double powerW = 0.0;
    double energyPerPacketPj = 0.0;
    double ed2 = 0.0;
};

/** Replay @p trace through request+reply networks of @p config. */
AppResult runApplication(const AppConfig &config, const Trace &trace);

/** MB/s/node -> flits/node/cycle at a clock period [ns] with 8-byte
 *  flits (Table 1). */
double mbpsToFlitsPerCycle(double mbps, double period_ns);

/** flits/node/cycle -> MB/s/node. */
double flitsPerCycleToMbps(double flits_per_cycle, double period_ns);

} // namespace nox

#endif // NOX_CORE_SIM_RUNNER_HPP
