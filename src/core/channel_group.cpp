#include "core/channel_group.hpp"

#include "common/log.hpp"
#include "routers/factory.hpp"

namespace nox {

PhysicalChannelGroup::PhysicalChannelGroup(const NetworkParams &params,
                                           RouterArch arch,
                                           int num_channels)
{
    NOX_ASSERT(num_channels >= 1, "need at least one channel");
    for (int i = 0; i < num_channels; ++i)
        nets_.push_back(makeNetwork(params, arch));
}

int
PhysicalChannelGroup::channelOf(TrafficClass cls) const
{
    switch (cls) {
      case TrafficClass::Request:
        return 0;
      case TrafficClass::Reply:
        return (numChannels() > 1) ? 1 : 0;
      case TrafficClass::Synthetic:
      default:
        return 0;
    }
}

PacketId
PhysicalChannelGroup::injectPacket(NodeId src, NodeId dst,
                                   int num_flits, TrafficClass cls)
{
    return injectPacket(channelOf(cls), src, dst, num_flits, cls);
}

PacketId
PhysicalChannelGroup::injectPacket(int channel, NodeId src, NodeId dst,
                                   int num_flits, TrafficClass cls)
{
    NOX_ASSERT(channel >= 0 && channel < numChannels(),
               "bad channel index ", channel);
    return nets_[static_cast<size_t>(channel)]->injectPacket(
        src, dst, num_flits, nets_[static_cast<size_t>(channel)]->now(),
        cls);
}

void
PhysicalChannelGroup::step()
{
    for (auto &n : nets_)
        n->step();
}

void
PhysicalChannelGroup::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
PhysicalChannelGroup::drain(Cycle limit)
{
    const Cycle deadline = now() + limit;
    while (packetsInFlight() > 0 && now() < deadline)
        step();
    return packetsInFlight() == 0;
}

std::uint64_t
PhysicalChannelGroup::packetsInFlight() const
{
    std::uint64_t n = 0;
    for (const auto &net : nets_)
        n += net->packetsInFlight();
    return n;
}

std::uint64_t
PhysicalChannelGroup::packetsInjected() const
{
    std::uint64_t n = 0;
    for (const auto &net : nets_)
        n += net->stats().packetsInjected;
    return n;
}

std::uint64_t
PhysicalChannelGroup::packetsEjected() const
{
    std::uint64_t n = 0;
    for (const auto &net : nets_)
        n += net->stats().packetsEjected;
    return n;
}

SampleStats
PhysicalChannelGroup::mergedLatency() const
{
    SampleStats s;
    for (const auto &net : nets_)
        s.merge(net->stats().latency);
    return s;
}

SampleStats
PhysicalChannelGroup::mergedNetLatency() const
{
    SampleStats s;
    for (const auto &net : nets_)
        s.merge(net->stats().netLatency);
    return s;
}

EnergyEvents
PhysicalChannelGroup::totalEnergyEvents() const
{
    EnergyEvents total;
    for (const auto &net : nets_)
        total.merge(net->totalEnergyEvents());
    return total;
}

} // namespace nox
