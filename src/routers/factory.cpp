#include "routers/factory.hpp"

#include "common/log.hpp"
#include "routers/nonspec_router.hpp"
#include "routers/nox_router.hpp"
#include "routers/spec_router.hpp"
#include "routers/vc_router.hpp"

namespace nox {

std::unique_ptr<Router>
makeRouter(RouterArch arch, NodeId id, const Mesh &mesh,
           const RoutingTable &table, const RouterParams &params)
{
    if (params.vcCount > 1) {
        // §2.8: virtual channels are only explored on the
        // non-speculative baseline; a VC NoX is the paper's (and this
        // repo's) future work.
        NOX_ASSERT(arch == RouterArch::NonSpeculative,
                   "vcCount > 1 requires the non-speculative router");
        return std::make_unique<VcRouter>(id, mesh, table, params,
                                          params.vcCount);
    }
    switch (arch) {
      case RouterArch::NonSpeculative:
        return std::make_unique<NonSpecRouter>(id, mesh, table, params);
      case RouterArch::SpecFast:
        return std::make_unique<SpecRouter>(id, mesh, table, params,
                                            SpecRouter::Variant::Fast);
      case RouterArch::SpecAccurate:
        return std::make_unique<SpecRouter>(
            id, mesh, table, params, SpecRouter::Variant::Accurate);
      case RouterArch::Nox:
        return std::make_unique<NoxRouter>(id, mesh, table, params);
    }
    panic("unknown router architecture");
}

RouterFactory
routerFactoryFor(RouterArch arch)
{
    return [arch](NodeId id, const Mesh &mesh, const RoutingTable &table,
                  const RouterParams &params) {
        return makeRouter(arch, id, mesh, table, params);
    };
}

std::unique_ptr<Network>
makeNetwork(const NetworkParams &params, RouterArch arch)
{
    return std::make_unique<Network>(params, routerFactoryFor(arch));
}

} // namespace nox
