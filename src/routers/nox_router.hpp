/**
 * @file
 * The NoX router (§2 of the paper).
 *
 * The crossbar is an XOR of all switch-enabled inputs per output: with
 * one driver the flit passes unmodified; with several, the output is
 * their bitwise XOR, marked encoded, and *still productive* — the
 * downstream router recovers every flit by XORing consecutively
 * received values (see XorDecoder). An output arbiter runs in parallel
 * with traversal; under contention its grant decides which input's
 * buffer is freed immediately.
 *
 * Each output's arbitration/masking logic operates in two modes
 * (§2.6):
 *   - Recovery: switch mask == arb mask; collisions may occur freely
 *     and are resolved by successive masking of past winners.
 *   - Scheduled: the switch mask enables exactly one input and the
 *     arb mask is its complement, pre-scheduling the next transfer
 *     like a perfectly speculating router.
 *
 * Multi-flit packets (§2.7) are sent contiguously; any collision
 * involving a multi-flit head aborts the cycle (invalid value on the
 * link, nothing freed) and the arbiter's winner owns the output until
 * its tail passes.
 */

#ifndef NOX_ROUTERS_NOX_ROUTER_HPP
#define NOX_ROUTERS_NOX_ROUTER_HPP

#include <array>
#include <memory>
#include <vector>

#include "noc/router.hpp"
#include "noc/xor_decoder.hpp"

namespace nox {

/** Microarchitectural activity statistics specific to the NoX. */
struct NoxStats
{
    /** Productive encoded transfers by collision fan-in (index =
     *  number of colliding inputs; 2..radix used; sized generously
     *  for concentrated-mesh radixes). */
    std::array<std::uint64_t, 33> collisionsBySize{};

    /** Output-cycles spent in each §2.6 mode. */
    std::uint64_t recoveryCycles = 0;
    std::uint64_t scheduledCycles = 0;
    std::uint64_t lockedCycles = 0;

    /** Uncontended single-input traversals. */
    std::uint64_t cleanTraversals = 0;

    /** Transfers that were pre-scheduled by Scheduled-mode
     *  arbitration (including tail-cycle pre-scheduling). */
    std::uint64_t prescheduled = 0;

    /** Multi-flit abort events (§2.7). */
    std::uint64_t aborts = 0;

    std::uint64_t
    totalCollisions() const
    {
        std::uint64_t t = 0;
        for (auto c : collisionsBySize)
            t += c;
        return t;
    }
};

/** The XOR-coded-crossbar router. */
class NoxRouter : public Router
{
  public:
    /** Output arbitration/masking mode (§2.6). */
    enum class Mode { Recovery, Scheduled };

    NoxRouter(NodeId id, const Mesh &mesh, const RoutingTable &table,
              const RouterParams &params);

    RouterArch arch() const override { return RouterArch::Nox; }

    void evaluate(Cycle now) override;

    /**
     * A severed input link can leave an XOR decode chain open forever
     * (its remaining values will never arrive): drop the undecodable
     * open suffix — register and/or trailing encoded values — and
     * count its unrecovered constituents as lost.
     */
    void killInput(int in_port, std::vector<FlitDesc> &lost) override;

    /**
     * NoX ports buffer *wire values*, not flits: when any constituent
     * of a port's decode chain is condemned the whole port content is
     * dropped (the chain is undecodable without every value); clean
     * ports are untouched. Collateral flits are reported in
     * @p removed so the network can cascade the loss.
     */
    void purgeFlits(const FlitCondemned &condemned,
                    std::vector<FlitDesc> &removed) override;

    /** Reset every output's mask automaton and lock after a mid-run
     *  routing-table rebuild. */
    void onTableRebuild() override;

    /**
     * Quiescent iff base state is idle, every input decode register
     * is empty, and every output's mask automaton has settled back to
     * the fully-open Recovery state (a Scheduled or partially-masked
     * output still needs ticks — or a returning credit — before a
     * newly arriving flit would see the open switch).
     */
    bool quiescent() const override;

    // Introspection for the golden timing tests.
    Mode mode(int port) const { return out_[port].mode; }
    RequestMask switchMask(int port) const
    {
        return out_[port].switchMask;
    }
    RequestMask arbMask(int port) const { return out_[port].arbMask; }
    int lockOwner(int port) const { return out_[port].lockOwner; }
    const XorDecoder &decoder(int port) const { return decoders_[port]; }
    const NoxStats &noxStats() const { return noxStats_; }

    std::uint64_t xorCollisions() const override
    {
        return noxStats_.totalCollisions();
    }

    void serialize(snap::Writer &w,
                   snap::Scope scope) const override;
    void restore(snap::Reader &r) override;

    void debugPerturb() override;

  private:
    struct OutState
    {
        Mode mode = Mode::Recovery;
        RequestMask switchMask = 0; // set in constructor
        RequestMask arbMask = 0;
        int lockOwner = -1;         // multi-flit exclusive owner
        PacketId lockPacket = kInvalidPacket;
        std::unique_ptr<Arbiter> arb;
    };

    /** Accept input @p port's presented flit (decoder advance, SRAM
     *  read accounting, upstream credit). */
    void acceptPresented(int port, const DecodeView &view);

    /** Drop the undecodable open chain suffix at @p in_port (see
     *  killInput / purgeFlits), crediting live upstream senders for
     *  the freed buffer slots. */
    void dropOpenChain(int in_port, std::vector<FlitDesc> &lost);

    /** Uncontended (or Scheduled) single-input traversal. */
    void traverseSingle(int in_port, int out_port,
                        const DecodeView &view, Cycle now);

    void lockOutput(OutState &st, int in_port, PacketId packet);
    void unlockOutput(OutState &st);

    std::vector<XorDecoder> decoders_;
    std::vector<OutState> out_;
    NoxStats noxStats_;

    // Per-evaluate scratch (reused across cycles, see evaluate()).
    // scratchViews_ is sized once and *not* cleared between cycles:
    // entries are only read for ports named by this cycle's request
    // masks, so stale views of idle ports are unreachable — which is
    // what lets evaluate() skip both the per-cycle fill and the
    // decoder query for idle ports.
    std::vector<DecodeView> scratchViews_;
    std::vector<RequestMask> scratchRequests_; ///< per-output requests
    std::vector<FlitDesc> scratchColliding_;   ///< XOR-combine inputs
};

} // namespace nox

#endif // NOX_ROUTERS_NOX_ROUTER_HPP
