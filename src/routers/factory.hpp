/**
 * @file
 * Router construction helpers tying the architecture enum to the
 * concrete classes.
 */

#ifndef NOX_ROUTERS_FACTORY_HPP
#define NOX_ROUTERS_FACTORY_HPP

#include <memory>

#include "noc/network.hpp"
#include "noc/router.hpp"

namespace nox {

/** Build one router of the given architecture. */
std::unique_ptr<Router> makeRouter(RouterArch arch, NodeId id,
                                   const Mesh &mesh,
                                   const RoutingTable &table,
                                   const RouterParams &params);

/** A RouterFactory (for Network) that builds @p arch routers. */
RouterFactory routerFactoryFor(RouterArch arch);

/** Convenience: a Network whose nodes all use @p arch routers. */
std::unique_ptr<Network> makeNetwork(const NetworkParams &params,
                                     RouterArch arch);

} // namespace nox

#endif // NOX_ROUTERS_FACTORY_HPP
