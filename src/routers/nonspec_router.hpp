/**
 * @file
 * The non-speculative baseline router (§3.1.1, Figure 5).
 *
 * A canonical wormhole router with lookahead route computation: switch
 * arbitration and switch traversal happen sequentially *within one
 * long clock cycle* (0.92 ns in Table 2), so every output can move a
 * flit every cycle regardless of contention — maximum efficiency, at
 * the price of the slowest clock of the four designs.
 */

#ifndef NOX_ROUTERS_NONSPEC_ROUTER_HPP
#define NOX_ROUTERS_NONSPEC_ROUTER_HPP

#include <memory>
#include <vector>

#include "noc/router.hpp"

namespace nox {

/** Non-speculative single-cycle wormhole router. */
class NonSpecRouter : public Router
{
  public:
    NonSpecRouter(NodeId id, const Mesh &mesh,
                  const RoutingTable &table,
                  const RouterParams &params);

    RouterArch arch() const override
    {
        return RouterArch::NonSpeculative;
    }

    void evaluate(Cycle now) override;

    /** Quiescent iff base state is idle and no wormhole is open. */
    bool quiescent() const override;

    /** Drop all wormhole locks: rerouted flits may reach this router
     *  through different inputs than their heads did. */
    void onTableRebuild() override;

    /** Input currently owning output @p port mid-packet (-1 = none). */
    int lockOwner(int port) const { return lockOwner_[port]; }

    void serialize(snap::Writer &w,
                   snap::Scope scope) const override;
    void restore(snap::Reader &r) override;

    void debugPerturb() override;

  private:
    void traverse(int in_port, int out_port);

    std::vector<std::unique_ptr<Arbiter>> arb_;
    std::vector<int> lockOwner_;
    std::vector<PacketId> lockPacket_;

    // Per-evaluate scratch (reused across cycles, see evaluate()).
    std::vector<std::optional<FlitDesc>> scratchHead_;
    std::vector<int> scratchOut_;
};

} // namespace nox

#endif // NOX_ROUTERS_NONSPEC_ROUTER_HPP
