#include "routers/spec_router.hpp"

#include <algorithm>
#include <bit>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

SpecRouter::SpecRouter(NodeId id, const Mesh &mesh,
                       const RoutingTable &table,
                       const RouterParams &params, Variant variant)
    : Router(id, mesh, table, params), variant_(variant)
{
    const auto ports = static_cast<std::size_t>(params.numPorts);
    arb_.resize(ports);
    reserved_.assign(ports, -1);
    lockOwner_.assign(ports, -1);
    lockPacket_.assign(ports, kInvalidPacket);
    prevHeadPacket_.assign(ports, kInvalidPacket);
    for (auto &a : arb_)
        a = makeArbiter();
}

void
SpecRouter::evaluate(Cycle now)
{
    const int ports = numPorts();
    // Member scratch — per-call allocation would dominate evaluate().
    auto &head = scratchHead_;
    auto &out_of = scratchOut_;
    auto &head_packet_at_start = scratchHeadPacket_;
    head.assign(static_cast<std::size_t>(ports), std::nullopt);
    out_of.assign(static_cast<std::size_t>(ports), -1);
    head_packet_at_start.assign(static_cast<std::size_t>(ports),
                                kInvalidPacket);
    for (int p = 0; p < ports; ++p) {
        head[p] = plainHead(p);
        out_of[p] = head[p] ? routeOf(*head[p]) : -1;
        head_packet_at_start[p] = head[p] ? head[p]->packet
                                          : kInvalidPacket;

        // Spec-Fast fairness rule (§3.1.2): a packet newly exposed
        // behind a departing packet on the same input may not request
        // arbitration in its first cycle as head — its request wires
        // still carry the predecessor's state, so it neither rides
        // the stale reservation nor reaches the allocator. (A flit
        // arriving into an empty input registers normally.)
        if (variant_ == Variant::Fast && head[p]) {
            const bool newly_exposed =
                prevHeadPacket_[p] != kInvalidPacket &&
                prevHeadPacket_[p] != head[p]->packet;
            if (newly_exposed) {
                out_of[p] = -1;
                // Fairness-rule blanking costs the new head one
                // arbitration cycle.
                provStall(*head[p], LatencyComponent::ArbLoss, now);
            }
        }
    }

    for (int o = 0; o < ports; ++o) {
        if (!outputConnected(o))
            continue;

        RequestMask requests = 0;
        for (int p = 0; p < ports; ++p) {
            if (out_of[p] == o)
                requests |= maskBit(p);
        }

        if (!haveCredit(o) || linkBusy(o, now)) {
            // Switch requests are gated by credits (and by the link-
            // level retry protocol, which owns the wire until its
            // pending flit is acknowledged): nothing drives the
            // output, Switch-Next sees no requests, and any
            // pending reservation expires (the mask reopens). Letting
            // a reservation survive back-pressure would let one input
            // capture the output indefinitely under stop-and-go
            // credit flow — defeating the fairness the §3.1.2 rules
            // exist to protect.
            if (prov_) {
                const LatencyComponent c =
                    linkBusy(o, now) ? LatencyComponent::Retransmit
                                     : LatencyComponent::CreditStall;
                for (int p = 0; p < ports; ++p) {
                    if (out_of[p] == o)
                        provStall(*head[p], c, now);
                }
            }
            reserved_[o] = -1;
            continue;
        }

        if (degraded_ && lockOwner_[o] >= 0) {
            // After a mid-run table rebuild the locked packet may have
            // been purged, rerouted, or interleaved with foreign
            // flits. If the owner cannot supply the locked packet this
            // cycle, abandon the lock and let the remaining flits flow
            // flit-wise (delivery is count-based).
            const int p = lockOwner_[o];
            if (!(head[p] && out_of[p] == o &&
                  head[p]->packet == lockPacket_[o])) {
                lockOwner_[o] = -1;
                lockPacket_[o] = kInvalidPacket;
            }
        }

        // Switch-Fast mask for this cycle: a wormhole lock pins the
        // mask to the owner; otherwise last cycle's reservation (if
        // any) selects a single input; otherwise fully open.
        RequestMask fast_mask;
        if (lockOwner_[o] >= 0)
            fast_mask = maskBit(lockOwner_[o]);
        else if (reserved_[o] >= 0)
            fast_mask = maskBit(reserved_[o]);
        else
            fast_mask = allPortsMask();

        const RequestMask drivers = requests & fast_mask;
        const int fanin = std::popcount(drivers);

        if (prov_) {
            // Requests outside the Switch-Fast mask lost to the lock
            // or reservation holder; on misspeculation every driver
            // loses the cycle too.
            for (int p = 0; p < ports; ++p) {
                const RequestMask bit = maskBit(p);
                if ((requests & bit) &&
                    (!(fast_mask & bit) ||
                     (fanin > 1 && (drivers & bit))))
                    provStall(*head[p], LatencyComponent::ArbLoss,
                              now);
            }
        }

        int success = -1;
        if (fanin == 1) {
            success = std::countr_zero(drivers);
            if (lockOwner_[o] >= 0) {
                NOX_ASSERT(head[success]->packet == lockPacket_[o],
                           "foreign flit inside locked wormhole");
            }
            traverse(success, o);
            provSend(*head[success], o, now);
        } else if (fanin > 1) {
            // Misspeculation: the switch drives the XOR^W an
            // indeterminate value; the cycle and link energy are lost.
            driveWasted(o);
            energy_.misspecCycles += 1;
            energy_.xbarInputDrives += static_cast<std::uint64_t>(fanin);
        }

        // Reservation is single-use; recomputed below by Switch Next.
        reserved_[o] = -1;

        if (lockOwner_[o] >= 0) {
            // Multi-flit transmission in progress (the traverse above
            // may have just set or cleared the lock): all other
            // requests are masked from arbitration.
            continue;
        }

        // Switch Next: choose next cycle's reservation.
        RequestMask next_requests;
        if (variant_ == Variant::Fast) {
            // All requests not masked by Switch-Fast — including one
            // that succeeded this cycle (unnecessary reservations).
            // Newly exposed packets were already excluded above.
            next_requests = requests & fast_mask;
        } else {
            // Accurate: the same (post-mask) requests Switch-Fast saw,
            // minus the one that successfully traversed this cycle —
            // the only functional difference from Spec-Fast (§3.1.2),
            // eliminating its unnecessary reservations.
            next_requests = requests & fast_mask;
            if (success >= 0)
                next_requests &= ~maskBit(success);
        }

        if (next_requests) {
            energy_.allocEvals += 1;
            reserved_[o] = arb_[o]->grant(next_requests);
            energy_.arbDecisions += 1;
            trace(TraceEventKind::Arbitrate, o,
                  static_cast<std::uint64_t>(reserved_[o]),
                  static_cast<std::uint32_t>(next_requests));
        }
    }

    prevHeadPacket_ = head_packet_at_start;
}

bool
SpecRouter::quiescent() const
{
    if (!Router::quiescent())
        return false;
    for (int owner : lockOwner_) {
        if (owner >= 0)
            return false;
    }
    for (int r : reserved_) {
        if (r >= 0)
            return false;
    }
    for (PacketId p : prevHeadPacket_) {
        if (p != kInvalidPacket)
            return false;
    }
    return true;
}

void
SpecRouter::traverse(int in_port, int out_port)
{
    WireFlit w = in_[in_port].pop();
    const FlitDesc &d = w.parts.front();
    energy_.bufferReads += 1;
    energy_.xbarInputDrives += 1;
    returnCredit(in_port);

    if (d.isHead() && !d.isTail()) {
        lockOwner_[out_port] = in_port;
        lockPacket_[out_port] = d.packet;
    } else if (d.isTail() &&
               (lockOwner_[out_port] < 0 ||
                lockPacket_[out_port] == d.packet)) {
        // The packet-match guard only matters in degraded mode, where
        // a lock-free tail must not clear another packet's lock.
        lockOwner_[out_port] = -1;
        lockPacket_[out_port] = kInvalidPacket;
    }

    sendFlit(out_port, std::move(w));
}

void
SpecRouter::onTableRebuild()
{
    Router::onTableRebuild();
    std::fill(lockOwner_.begin(), lockOwner_.end(), -1);
    std::fill(lockPacket_.begin(), lockPacket_.end(), kInvalidPacket);
    std::fill(reserved_.begin(), reserved_.end(), -1);
}

void
SpecRouter::debugPerturb()
{
    arb_[0]->perturb();
}

void
SpecRouter::serialize(snap::Writer &w, snap::Scope scope) const
{
    Router::serialize(w, scope);
    for (const auto &a : arb_)
        a->serialize(w);
    for (int v : reserved_)
        w.i32(v);
    for (int o : lockOwner_)
        w.i32(o);
    for (PacketId p : lockPacket_)
        w.u64(p);
    for (PacketId p : prevHeadPacket_)
        w.u64(p);
}

void
SpecRouter::restore(snap::Reader &r)
{
    Router::restore(r);
    for (auto &a : arb_)
        a->restore(r);
    for (int &v : reserved_) {
        v = r.i32();
        if (v < -1 || v >= numPorts())
            r.fail("switch reservation out of range");
    }
    for (int &o : lockOwner_) {
        o = r.i32();
        if (o < -1 || o >= numPorts())
            r.fail("wormhole lock owner out of range");
    }
    for (PacketId &p : lockPacket_)
        p = r.u64();
    for (PacketId &p : prevHeadPacket_)
        p = r.u64();
}

} // namespace nox
