#include "routers/vc_router.hpp"

#include <algorithm>
#include <bit>

#include "common/log.hpp"
#include "noc/fault_injector.hpp"
#include "noc/nic.hpp"
#include "noc/snapshot_codec.hpp"

namespace nox {

VcRouter::VcRouter(NodeId id, const Mesh &mesh, const RoutingTable &table,
                   const RouterParams &params, int vc_count)
    : Router(id, mesh, table, params), vcs_(vc_count)
{
    NOX_ASSERT(vc_count >= 1 && vc_count <= 8, "bad VC count");
    const std::size_t slots =
        static_cast<std::size_t>(params.numPorts) *
        static_cast<std::size_t>(vc_count);
    vcIn_.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i)
        vcIn_.emplace_back(
            static_cast<std::size_t>(params.bufferDepth));
    // Downstream mirrors our own geometry; per-VC credits start at
    // the per-VC buffer depth (NIC sinks are sized accordingly).
    vcCredits_.assign(slots, params.bufferDepth);
    stagedVcCredits_.assign(slots, 0);
    vcCreditsLost_.assign(slots, 0);
    lockOwner_.assign(slots, -1);
    lockPacket_.assign(slots, kInvalidPacket);

    outArb_.resize(static_cast<std::size_t>(params.numPorts));
    vcArb_.resize(static_cast<std::size_t>(params.numPorts));
    for (int p = 0; p < params.numPorts; ++p) {
        outArb_[static_cast<std::size_t>(p)] = makeArbiter();
        vcArb_[static_cast<std::size_t>(p)] =
            std::make_unique<RoundRobinArbiter>(vc_count);
    }
}

void
VcRouter::commit()
{
    const int ports = numPorts();
    RequestMask staged = stagedInMask_;
    stagedInMask_ = 0;
    while (staged) {
        const int p = std::countr_zero(staged);
        staged &= staged - 1;
        energy_.bufferWrites += 1;
        WireFlit f = std::move(stagedIn_[p]);
        NOX_ASSERT(f.vc < vcs_, "flit VC ", int(f.vc),
                   " out of range");
        vcIn_[index(p, f.vc)].push(std::move(f));
    }
    stagedCreditMask_ = 0;
    for (int p = 0; p < ports; ++p) {
        // Plain per-port credits are unused by this router, but the
        // base bookkeeping still runs for wiring assertions.
        credits_[p] += stagedCredits_[p];
        stagedCredits_[p] = 0;
        for (int v = 0; v < vcs_; ++v) {
            vcCredits_[index(p, v)] += stagedVcCredits_[index(p, v)];
            stagedVcCredits_[index(p, v)] = 0;
        }
    }
}

void
VcRouter::stageCreditVc(int out_port, int vc)
{
    NOX_ASSERT(out_port >= 0 && out_port < numPorts(), "bad port");
    NOX_ASSERT(vc >= 0 && vc < vcs_, "bad vc");
    if (faults_ && outTarget_[out_port].router &&
        faults_->drawCreditLoss(id_, out_port,
                                static_cast<std::uint64_t>(vc))) {
        // With protection the loss is owed to this lane until the
        // watchdog's next audit; raw mode just leaks the slot.
        if (faults_->protectEnabled())
            vcCreditsLost_[index(out_port, vc)] += 1;
        wake();
        return;
    }
    stagedVcCredits_[index(out_port, vc)] += 1;
    wake();
}

void
VcRouter::evaluateLink(Cycle now)
{
    Router::evaluateLink(now);
    if (!faults_ || !faults_->protectEnabled())
        return;
    const Cycle period = faults_->params().watchdogPeriod;
    if (period == 0 || now % period != 0)
        return;
    for (std::size_t lane = 0; lane < vcCreditsLost_.size(); ++lane) {
        if (vcCreditsLost_[lane] == 0)
            continue;
        faults_->onCreditResync(
            static_cast<std::uint64_t>(vcCreditsLost_[lane]));
        vcCredits_[lane] += vcCreditsLost_[lane];
        vcCreditsLost_[lane] = 0;
    }
}

bool
VcRouter::quiescent() const
{
    if (!Router::quiescent())
        return false;
    for (const FlitFifo &fifo : vcIn_) {
        if (!fifo.empty())
            return false;
    }
    for (int staged : stagedVcCredits_) {
        if (staged != 0)
            return false;
    }
    for (int lost : vcCreditsLost_) {
        if (lost != 0)
            return false; // the watchdog still owes this lane credits
    }
    for (int owner : lockOwner_) {
        if (owner >= 0)
            return false;
    }
    return true;
}

void
VcRouter::killOutput(int out_port, std::vector<FlitDesc> &lost)
{
    const bool was_connected = outTarget_[out_port].connected();
    Router::killOutput(out_port, lost);
    if (!was_connected)
        return;
    for (int v = 0; v < vcs_; ++v) {
        const std::size_t lane = index(out_port, v);
        vcCredits_[lane] = 0;
        stagedVcCredits_[lane] = 0;
        vcCreditsLost_[lane] = 0;
        lockOwner_[lane] = -1;
        lockPacket_[lane] = kInvalidPacket;
    }
}

void
VcRouter::purgeFlits(const FlitCondemned &condemned,
                     std::vector<FlitDesc> &removed)
{
    const int ports = numPorts();
    for (int p = 0; p < ports; ++p) {
        for (int v = 0; v < vcs_; ++v) {
            FlitFifo &fifo = vcIn_[index(p, v)];
            const std::size_t n = fifo.size();
            for (std::size_t i = 0; i < n; ++i) {
                WireFlit w = fifo.pop();
                bool drop = false;
                for (const FlitDesc &d : w.parts) {
                    if (condemned(id_, p, d)) {
                        drop = true;
                        break;
                    }
                }
                if (drop) {
                    for (const FlitDesc &d : w.parts)
                        removed.push_back(d);
                    returnVcCredit(p, v);
                } else {
                    fifo.push(std::move(w));
                }
            }
        }
    }
    purgeLinkState(condemned, removed);
}

void
VcRouter::onOutputRevived(int out_port)
{
    for (int v = 0; v < vcs_; ++v) {
        const std::size_t lane = index(out_port, v);
        vcCredits_[lane] = params_.bufferDepth;
        stagedVcCredits_[lane] = 0;
        vcCreditsLost_[lane] = 0;
        lockOwner_[lane] = -1;
        lockPacket_[lane] = kInvalidPacket;
    }
}

void
VcRouter::onTableRebuild()
{
    Router::onTableRebuild();
    std::fill(lockOwner_.begin(), lockOwner_.end(), -1);
    std::fill(lockPacket_.begin(), lockPacket_.end(), kInvalidPacket);
}

void
VcRouter::returnVcCredit(int in_port, int vc)
{
    const CreditTarget &t = creditTarget_[in_port];
    if (!t.connected())
        return;
    if (t.router)
        t.router->stageCreditVc(t.port, vc);
    else
        t.nic->stageInjectCredit(1, vc);
}

void
VcRouter::evaluate(Cycle now)
{
    const int ports = numPorts();

    if (degraded_) {
        // After a mid-run table rebuild a locked lane's packet may
        // have been purged, rerouted to another input, or had foreign
        // flits interleaved ahead of it. Whenever the owner cannot
        // supply the locked packet this cycle, abandon the lock and
        // let the remaining flits flow flit-wise (delivery is
        // count-based, so intact packets still complete).
        for (int o = 0; o < ports; ++o) {
            for (int v = 0; v < vcs_; ++v) {
                const std::size_t lane = index(o, v);
                const int p = lockOwner_[lane];
                if (p < 0)
                    continue;
                const FlitFifo &fifo = vcIn_[index(p, v)];
                const bool supplied =
                    !fifo.empty() &&
                    fifo.front().parts.front().packet ==
                        lockPacket_[lane] &&
                    routeOf(fifo.front().parts.front()) == o;
                if (!supplied) {
                    lockOwner_[lane] = -1;
                    lockPacket_[lane] = kInvalidPacket;
                }
            }
        }
    }

    // Stage 1 (VC allocation): each input port selects one eligible
    // (head present, downstream per-VC credit available) VC.
    // Member scratch — per-call allocation would dominate evaluate().
    auto &chosen = scratchChosen_;
    chosen.assign(static_cast<std::size_t>(ports), Candidate{});
    auto &out_of = scratchVcOut_;
    for (int p = 0; p < ports; ++p) {
        RequestMask eligible = 0;
        out_of.assign(static_cast<std::size_t>(vcs_), -1);
        for (int v = 0; v < vcs_; ++v) {
            const FlitFifo &fifo = vcIn_[index(p, v)];
            if (fifo.empty())
                continue;
            const FlitDesc &d = fifo.front().parts.front();
            const int o = routeOf(d);
            // Wormhole: mid-packet, only the owner input may use the
            // (o, v) lane; heads must find it unlocked.
            const int owner = lockOwner_[index(o, v)];
            if (owner >= 0 && owner != p) {
                provStall(d, LatencyComponent::ArbLoss, now);
                continue;
            }
            if (owner < 0 && !d.isHead() && !degraded_) {
                // body flit of a packet we do not own here
                provStall(d, LatencyComponent::ArbLoss, now);
                continue;
            }
            if (vcCredits_[index(o, v)] <= 0 || linkBusy(o, now)) {
                provStall(d,
                          linkBusy(o, now)
                              ? LatencyComponent::Retransmit
                              : LatencyComponent::CreditStall,
                          now);
                continue;
            }
            eligible |= maskBit(v);
            out_of[static_cast<std::size_t>(v)] = o;
        }
        if (eligible) {
            const int v =
                vcArb_[static_cast<std::size_t>(p)]->grant(eligible);
            if (prov_) {
                for (int u = 0; u < vcs_; ++u) {
                    if (u != v && (eligible & maskBit(u)))
                        provStall(
                            vcIn_[index(p, u)].front().parts.front(),
                            LatencyComponent::ArbLoss, now);
                }
            }
            chosen[static_cast<std::size_t>(p)] = {
                v, out_of[static_cast<std::size_t>(v)]};
        }
    }

    // Stage 2 (switch allocation): one winner per output port.
    for (int o = 0; o < ports; ++o) {
        if (!outputConnected(o))
            continue;
        RequestMask requests = 0;
        for (int p = 0; p < ports; ++p) {
            if (chosen[static_cast<std::size_t>(p)].out == o)
                requests |= maskBit(p);
        }
        if (!requests)
            continue;
        const int winner =
            outArb_[static_cast<std::size_t>(o)]->grant(requests);
        energy_.arbDecisions += 1;
        trace(TraceEventKind::Arbitrate, o,
              static_cast<std::uint64_t>(winner),
              static_cast<std::uint32_t>(requests));
        if (prov_) {
            for (int p = 0; p < ports; ++p) {
                if (p == winner || !(requests & maskBit(p)))
                    continue;
                const int v =
                    chosen[static_cast<std::size_t>(p)].vc;
                provStall(vcIn_[index(p, v)].front().parts.front(),
                          LatencyComponent::ArbLoss, now);
            }
        }
        traverse(winner, chosen[static_cast<std::size_t>(winner)].vc,
                 o, now);
    }
}

void
VcRouter::traverse(int in_port, int vc, int out_port, Cycle now)
{
    FlitFifo &fifo = vcIn_[index(in_port, vc)];
    WireFlit w = fifo.pop();
    const FlitDesc &d = w.parts.front();
    provSend(d, out_port, now);
    energy_.bufferReads += 1;
    energy_.xbarInputDrives += 1;
    returnVcCredit(in_port, vc);

    const std::size_t lane = index(out_port, vc);
    if (d.isHead() && !d.isTail()) {
        lockOwner_[lane] = in_port;
        lockPacket_[lane] = d.packet;
    } else if (d.isTail()) {
        // The packet-match guard only matters in degraded mode, where
        // a lock-free tail must not clear another packet's lock.
        if (lockOwner_[lane] < 0 || lockPacket_[lane] == d.packet) {
            lockOwner_[lane] = -1;
            lockPacket_[lane] = kInvalidPacket;
        }
    } else {
        NOX_ASSERT(degraded_ || lockPacket_[lane] == d.packet,
                   "foreign body inside VC wormhole");
    }

    NOX_ASSERT(vcCredits_[lane] > 0, "VC credit underflow");
    --vcCredits_[lane];
    dispatchFlit(out_port, std::move(w));
}

void
VcRouter::debugPerturb()
{
    outArb_[0]->perturb();
}

void
VcRouter::serialize(snap::Writer &w, snap::Scope scope) const
{
    for (int c : stagedVcCredits_)
        NOX_ASSERT(c == 0, "snapshot with staged VC credits");
    Router::serialize(w, scope);
    w.u8(static_cast<std::uint8_t>(vcs_));
    for (const FlitFifo &f : vcIn_)
        snap::writeFlitFifo(w, f);
    for (int c : vcCredits_)
        w.i32(c);
    for (int c : vcCreditsLost_)
        w.i32(c);
    for (int o : lockOwner_)
        w.i32(o);
    for (PacketId p : lockPacket_)
        w.u64(p);
    for (const auto &a : outArb_)
        a->serialize(w);
    for (const auto &a : vcArb_)
        a->serialize(w);
}

void
VcRouter::restore(snap::Reader &r)
{
    Router::restore(r);
    if (static_cast<int>(r.u8()) != vcs_)
        r.fail("VC count mismatch (wrong geometry)");
    for (FlitFifo &f : vcIn_)
        snap::readFlitFifo(r, f);
    for (int &c : vcCredits_)
        c = r.i32();
    for (int &c : vcCreditsLost_)
        c = r.i32();
    for (int &o : lockOwner_) {
        o = r.i32();
        if (o < -1 || o >= numPorts())
            r.fail("wormhole lock owner out of range");
    }
    for (PacketId &p : lockPacket_)
        p = r.u64();
    for (auto &a : outArb_)
        a->restore(r);
    for (auto &a : vcArb_)
        a->restore(r);
}

} // namespace nox
