#include "routers/nonspec_router.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

NonSpecRouter::NonSpecRouter(NodeId id, const Mesh &mesh,
                             const RoutingTable &table,
                             const RouterParams &params)
    : Router(id, mesh, table, params)
{
    const auto ports = static_cast<std::size_t>(params.numPorts);
    arb_.resize(ports);
    lockOwner_.assign(ports, -1);
    lockPacket_.assign(ports, kInvalidPacket);
    for (auto &a : arb_)
        a = makeArbiter();
}

void
NonSpecRouter::evaluate(Cycle now)
{
    // Combinational request gathering: each input's (uncoded) head
    // flit requests exactly one output via lookahead DOR.
    const int ports = numPorts();
    // Member scratch: evaluate() runs once per active router per
    // cycle, so per-call vector allocation dominates the idle-path
    // cost; reuse the buffers instead.
    auto &head = scratchHead_;
    auto &out_of = scratchOut_;
    head.assign(static_cast<std::size_t>(ports), std::nullopt);
    out_of.assign(static_cast<std::size_t>(ports), -1);
    for (int p = 0; p < ports; ++p) {
        head[p] = plainHead(p);
        out_of[p] = head[p] ? routeOf(*head[p]) : -1;
    }

    for (int o = 0; o < ports; ++o) {
        if (!outputConnected(o))
            continue;
        if (!haveCredit(o) || linkBusy(o, now)) {
            if (prov_) {
                // Everyone presenting for this output waits on the
                // downstream buffer (or on the link-retry protocol
                // holding the wire).
                const LatencyComponent c =
                    linkBusy(o, now) ? LatencyComponent::Retransmit
                                     : LatencyComponent::CreditStall;
                for (int p = 0; p < ports; ++p) {
                    if (out_of[p] == o)
                        provStall(*head[p], c, now);
                }
            }
            continue;
        }

        if (lockOwner_[o] >= 0) {
            // Wormhole: output reserved for an in-flight packet; body
            // flits pass without re-arbitration.
            const int p = lockOwner_[o];
            if (degraded_ &&
                !(head[p] && out_of[p] == o &&
                  head[p]->packet == lockPacket_[o])) {
                // After a mid-run table rebuild the locked packet may
                // have been purged, rerouted to a different input, or
                // had foreign flits interleaved into its stream.
                // Whenever the owner cannot supply the locked packet
                // this cycle, abandon the lock: the remaining flits
                // flow flit-wise (delivery is count-based, so intact
                // packets still complete).
                lockOwner_[o] = -1;
                lockPacket_[o] = kInvalidPacket;
                if (prov_) {
                    for (int q = 0; q < ports; ++q) {
                        if (out_of[q] == o)
                            provStall(*head[q],
                                      LatencyComponent::Reroute, now);
                    }
                }
                continue;
            }
            if (prov_) {
                for (int q = 0; q < ports; ++q) {
                    if (q != p && out_of[q] == o)
                        provStall(*head[q],
                                  LatencyComponent::ArbLoss, now);
                }
            }
            if (head[p] && out_of[p] == o) {
                NOX_ASSERT(head[p]->packet == lockPacket_[o],
                           "foreign flit inside locked wormhole");
                traverse(p, o);
                provSend(*head[p], o, now);
            }
            continue;
        }

        RequestMask requests = 0;
        for (int p = 0; p < ports; ++p) {
            if (out_of[p] == o)
                requests |= maskBit(p);
        }
        if (!requests)
            continue;

        const int winner = arb_[o]->grant(requests);
        energy_.arbDecisions += 1;
        NOX_ASSERT(winner >= 0, "arbiter returned no grant");
        trace(TraceEventKind::Arbitrate, o,
              static_cast<std::uint64_t>(winner),
              static_cast<std::uint32_t>(requests));
        if (prov_) {
            for (int p = 0; p < ports; ++p) {
                if (p != winner && (requests & maskBit(p)))
                    provStall(*head[p], LatencyComponent::ArbLoss,
                              now);
            }
        }
        traverse(winner, o);
        provSend(*head[winner], o, now);
    }
}

bool
NonSpecRouter::quiescent() const
{
    if (!Router::quiescent())
        return false;
    for (int owner : lockOwner_) {
        if (owner >= 0)
            return false; // multi-flit transfer in progress
    }
    return true;
}

void
NonSpecRouter::traverse(int in_port, int out_port)
{
    WireFlit w = in_[in_port].pop();
    const FlitDesc &d = w.parts.front();
    energy_.bufferReads += 1;
    energy_.xbarInputDrives += 1;
    returnCredit(in_port);

    if (d.isHead() && !d.isTail()) {
        lockOwner_[out_port] = in_port;
        lockPacket_[out_port] = d.packet;
    } else if (d.isTail() &&
               (lockOwner_[out_port] < 0 ||
                lockPacket_[out_port] == d.packet)) {
        // The packet-match guard only matters in degraded mode, where
        // a lock-free tail must not clear another packet's lock.
        lockOwner_[out_port] = -1;
        lockPacket_[out_port] = kInvalidPacket;
    }

    sendFlit(out_port, std::move(w));
}

void
NonSpecRouter::onTableRebuild()
{
    Router::onTableRebuild();
    std::fill(lockOwner_.begin(), lockOwner_.end(), -1);
    std::fill(lockPacket_.begin(), lockPacket_.end(), kInvalidPacket);
}

void
NonSpecRouter::debugPerturb()
{
    arb_[0]->perturb();
}

void
NonSpecRouter::serialize(snap::Writer &w, snap::Scope scope) const
{
    Router::serialize(w, scope);
    for (const auto &a : arb_)
        a->serialize(w);
    for (int o : lockOwner_)
        w.i32(o);
    for (PacketId p : lockPacket_)
        w.u64(p);
}

void
NonSpecRouter::restore(snap::Reader &r)
{
    Router::restore(r);
    for (auto &a : arb_)
        a->restore(r);
    for (int &o : lockOwner_) {
        o = r.i32();
        if (o < -1 || o >= numPorts())
            r.fail("wormhole lock owner out of range");
    }
    for (PacketId &p : lockPacket_)
        p = r.u64();
}

} // namespace nox
