/**
 * @file
 * Virtual-channel wormhole router — the §2.8 exploration.
 *
 * The paper's evaluated designs are all VC-free wormhole routers that
 * rely on multiple physical networks for protocol-deadlock isolation,
 * citing works [1, 17, 27, 29] that argue physical channels can be
 * the more power-efficient choice. To let this repo *quantify* that
 * §2.8 trade-off, VcRouter implements the conventional alternative:
 * one physical network whose input ports hold V parallel buffers
 * (virtual channels) with per-VC credit flow.
 *
 * Scope (documented, deliberate):
 *  - the microarchitecture is the non-speculative baseline (§3.1.1)
 *    with SA+ST in one cycle; no speculation, no XOR coding — the
 *    paper explicitly leaves a VC NoX to future work;
 *  - VC assignment is static per packet (by traffic class), i.e. VCs
 *    are used for class isolation exactly as the request/reply
 *    physical-network pair is — the comparison the §2.8 debate and
 *    Yoon et al. [29] are about;
 *  - allocation is two-stage: each input port round-robins across its
 *    VCs with eligible heads, then each output round-robins across
 *    input ports; one flit per output per cycle (single crossbar).
 *
 * Wormhole locks are per (output, vc): a blocked packet on one VC
 * does not prevent the other VC from using the same physical link —
 * the property that makes VCs an alternative to physical channels.
 */

#ifndef NOX_ROUTERS_VC_ROUTER_HPP
#define NOX_ROUTERS_VC_ROUTER_HPP

#include <memory>
#include <vector>

#include "noc/router.hpp"

namespace nox {

/** VC-enabled non-speculative wormhole router. */
class VcRouter : public Router
{
  public:
    VcRouter(NodeId id, const Mesh &mesh, const RoutingTable &table,
             const RouterParams &params, int vc_count);

    RouterArch arch() const override
    {
        return RouterArch::NonSpeculative;
    }

    int vcCount() const override { return vcs_; }

    void evaluate(Cycle now) override;
    void commit() override;
    void stageCreditVc(int out_port, int vc) override;

    /** Base retry handling plus the per-VC credit watchdog. */
    void evaluateLink(Cycle now) override;

    /** Quiescent iff base state is idle and every per-VC buffer,
     *  staged credit and wormhole lane is empty/closed. */
    bool quiescent() const override;

    /** Base teardown plus zeroing the dead output's per-VC credit
     *  books and clearing its wormhole lanes (a stale lock on a dead
     *  link would block quiescence forever). */
    void killOutput(int out_port, std::vector<FlitDesc> &lost) override;

    /** Per-lane purge: condemned flits are removed from every VC
     *  buffer (with per-lane upstream credit return), then the base
     *  link-retry state is scrubbed. */
    void purgeFlits(const FlitCondemned &condemned,
                    std::vector<FlitDesc> &removed) override;

    /** Clear every wormhole lane after a mid-run table rebuild. */
    void onTableRebuild() override;

    /** Refill the revived output's per-VC credit lanes to the full
     *  buffer depth and clear its staged/owed books and lanes — the
     *  same state construction gives a fresh output. */
    void onOutputRevived(int out_port) override;

    // Introspection (tests).
    const FlitFifo &vcFifo(int port, int vc) const
    {
        return vcIn_[index(port, vc)];
    }
    int vcCredits(int out_port, int vc) const
    {
        return vcCredits_[index(out_port, vc)];
    }
    int lockOwner(int out_port, int vc) const
    {
        return lockOwner_[index(out_port, vc)];
    }

    void serialize(snap::Writer &w,
                   snap::Scope scope) const override;
    void restore(snap::Reader &r) override;

    void debugPerturb() override;

  protected:
    /** A flushed retry entry refunds the credit of its own VC lane. */
    void refundRetryCredit(int out_port, const WireFlit &flit) override
    {
        vcCredits_[index(out_port, flit.vc)] += 1;
    }

  private:
    std::size_t
    index(int port, int vc) const
    {
        return static_cast<std::size_t>(port) *
                   static_cast<std::size_t>(vcs_) +
               static_cast<std::size_t>(vc);
    }

    void traverse(int in_port, int vc, int out_port, Cycle now);

    /** Send a VC-tagged credit for (in_port, vc) upstream. */
    void returnVcCredit(int in_port, int vc);

    int vcs_;
    std::vector<FlitFifo> vcIn_;        ///< [port][vc]
    std::vector<int> vcCredits_;        ///< [out_port][vc]
    std::vector<int> stagedVcCredits_;  ///< [out_port][vc]
    std::vector<int> vcCreditsLost_;    ///< [out_port][vc] credits the
                                        ///< injector swallowed, owed
                                        ///< by the watchdog
    std::vector<int> lockOwner_;        ///< [out_port][vc] input or -1
    std::vector<PacketId> lockPacket_;  ///< [out_port][vc]
    std::vector<std::unique_ptr<Arbiter>> outArb_; ///< per output
    std::vector<std::unique_ptr<Arbiter>> vcArb_;  ///< per input

    /** Stage-1 winner of one input port (see evaluate()). */
    struct Candidate
    {
        int vc = -1;
        int out = -1;
    };

    // Per-evaluate scratch (reused across cycles, see evaluate()).
    std::vector<Candidate> scratchChosen_;
    std::vector<int> scratchVcOut_;
};

} // namespace nox

#endif // NOX_ROUTERS_VC_ROUTER_HPP
