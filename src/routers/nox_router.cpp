#include "routers/nox_router.hpp"

#include <bit>

#include "common/log.hpp"
#include "noc/fault_injector.hpp"
#include "snapshot/io.hpp"

namespace nox {

namespace {

/** Append @p w 's constituent flits to @p out, skipping uids already
 *  collected (successive chain values are nested subsets). */
void
collectUnique(const WireFlit &w, std::vector<FlitDesc> &out)
{
    for (const FlitDesc &d : w.parts) {
        bool seen = false;
        for (const FlitDesc &e : out)
            seen = seen || e.uid == d.uid;
        if (!seen)
            out.push_back(d);
    }
}

} // namespace

NoxRouter::NoxRouter(NodeId id, const Mesh &mesh,
                     const RoutingTable &table,
                     const RouterParams &params)
    : Router(id, mesh, table, params)
{
    decoders_.resize(static_cast<std::size_t>(params.numPorts));
    out_.resize(static_cast<std::size_t>(params.numPorts));
    for (auto &o : out_) {
        o.switchMask = allPortsMask();
        o.arbMask = allPortsMask();
        o.arb = makeArbiter();
    }
    scratchViews_.resize(static_cast<std::size_t>(params.numPorts));
    scratchRequests_.resize(static_cast<std::size_t>(params.numPorts));
}

void
NoxRouter::evaluate(Cycle now)
{
    // Per-input decode views: what each input port can present to the
    // switch this cycle (§2.4). Encoded heads consume the cycle
    // latching into the decode register.
    const int ports = numPorts();
    const RequestMask all = allPortsMask();
    const bool lenient = faults_ != nullptr;
    // Hoisted observer gate: with provenance off the per-flit charge
    // loops below vanish behind this one predictable branch.
    LatencyProvenance *const prov = prov_;
    // Member scratch — per-call allocation would dominate evaluate().
    auto &views = scratchViews_;
    auto &requests_for = scratchRequests_;
    // Hand-rolled zeroing: assign() lowers to a libc memset call,
    // measurable at one call per router per cycle.
    for (int o = 0; o < ports; ++o)
        requests_for[static_cast<std::size_t>(o)] = 0;
    for (int p = 0; p < ports; ++p) {
        // Idle port (no buffered wire values, no open decode chain):
        // nothing to present, nothing to bill. views[p] keeps last
        // cycle's contents, unreachable while no request mask names p.
        if (in_[p].empty() && !decoders_[p].registerValid())
            continue;
        // Lenient decode under fault injection: integrity violations
        // surface in DecodeView::fault instead of killing the run.
        DecodeView &v = views[p];
        v = decoders_[p].view(in_[p], lenient);
        if (v.latchBubble) {
            if (prov) {
                // The cycle is consumed latching an encoded head:
                // bill the chain constituent already accepted to this
                // router (the location guard skips constituents still
                // buffered upstream — they accrue their own charges
                // there).
                for (const FlitDesc &d : in_[p].front().parts)
                    provStall(d, LatencyComponent::XorRecovery, now);
            }
            decoders_[p].latch(in_[p]);
            energy_.bufferReads += 1;
            energy_.decodeLatches += 1;
            returnCredit(p);
            continue;
        }
        if (v.presented) {
            requests_for[routeOf(*v.presented)] |= maskBit(p);
        } else if (prov && decoders_[p].registerValid()) {
            // Decode register loaded but the chain's next wire value
            // has not arrived yet: the flit it will recover is stuck
            // in XOR recovery, not on a link.
            for (const FlitDesc &d :
                 decoders_[p].registerValue().parts)
                provStall(d, LatencyComponent::XorRecovery, now);
        }
    }

    for (RequestMask cm = connectedOutputs(); cm; cm &= cm - 1) {
        const int o = std::countr_zero(cm);
        OutState &st = out_[o];

        const RequestMask requests = requests_for[o];

        // Switch requests are gated by downstream credits and by the
        // link-level retry protocol (which owns the wire until its
        // pending flit is acknowledged); when the output is back-
        // pressured everything (including the masks) simply holds.
        if (!haveCredit(o) || linkBusy(o, now)) {
            if (prov) {
                const LatencyComponent c =
                    linkBusy(o, now) ? LatencyComponent::Retransmit
                                     : LatencyComponent::CreditStall;
                for (RequestMask m = requests; m; m &= m - 1)
                    provStall(*views[std::countr_zero(m)].presented, c,
                              now);
            }
            continue;
        }

        // Mode-residency accounting (only for outputs with activity
        // potential: connected and credit-eligible this cycle).
        if (st.lockOwner >= 0)
            noxStats_.lockedCycles += 1;
        else if (st.mode == Mode::Recovery)
            noxStats_.recoveryCycles += 1;
        else
            noxStats_.scheduledCycles += 1;

        if (st.lockOwner >= 0) {
            // Exclusive multi-flit service: no other arbitration
            // winners until the tail flit has passed (§2.7). On the
            // tail cycle itself the output arbiter resumes Scheduled-
            // mode operation, pre-scheduling a waiting input for the
            // cycle after the tail — the §2.6 behaviour that lets the
            // NoX perform like a perfectly speculating router when
            // requests can be non-speculatively pre-scheduled.
            const int p = st.lockOwner;
            if (degraded_ &&
                !((requests & maskBit(p)) &&
                  views[p].presented->packet == st.lockPacket)) {
                // After a mid-run table rebuild the locked packet may
                // have been purged, rerouted, or interleaved with
                // foreign flits; abandon the lock and let the
                // remaining flits re-arbitrate flit-wise.
                unlockOutput(st);
                if (prov) {
                    for (RequestMask m = requests; m; m &= m - 1)
                        provStall(*views[std::countr_zero(m)].presented,
                                  LatencyComponent::Reroute, now);
                }
                continue;
            }
            if (prov) {
                for (RequestMask m = requests & ~maskBit(p); m;
                     m &= m - 1)
                    provStall(*views[std::countr_zero(m)].presented,
                              LatencyComponent::ArbLoss, now);
            }
            if (requests & maskBit(p)) {
                const FlitDesc d = *views[p].presented;
                NOX_ASSERT(d.packet == st.lockPacket,
                           "foreign flit inside locked NoX output");
                traverseSingle(p, o, views[p], now);
                if (d.isTail()) {
                    unlockOutput(st);
                    const RequestMask others =
                        requests & ~maskBit(p);
                    if (others) {
                        const int g = st.arb->grant(others);
                        energy_.arbDecisions += 1;
                        trace(TraceEventKind::Arbitrate, o,
                              static_cast<std::uint64_t>(g),
                              static_cast<std::uint32_t>(others));
                        st.mode = Mode::Scheduled;
                        st.switchMask = maskBit(g);
                        st.arbMask = all & ~maskBit(g);
                        energy_.maskUpdates += 1;
                    }
                }
            }
            continue;
        }

        if (st.mode == Mode::Recovery) {
            // Recovery: switch mask == arb mask; collisions resolve
            // through successive masking of past winners.
            const RequestMask part = requests & st.switchMask;
            if (prov) {
                // Requesters masked out by the collision-recovery
                // automaton wait for past winners' chains to clear.
                for (RequestMask m = requests & ~part; m; m &= m - 1)
                    provStall(*views[std::countr_zero(m)].presented,
                              LatencyComponent::XorRecovery, now);
            }
            if (!part)
                continue;
            const int fanin = std::popcount(part);

            if (fanin == 1) {
                const int p = std::countr_zero(part);
                const FlitDesc d = *views[p].presented;
                // The arbiter ran in parallel; its (unneeded) grant is
                // still a decision for energy purposes and RR state.
                st.arb->grant(part);
                energy_.arbDecisions += 1;
                noxStats_.cleanTraversals += 1;
                traverseSingle(p, o, views[p], now);
                if (d.isMultiFlit() && d.isHead() && !d.isTail()) {
                    lockOutput(st, p, d.packet);
                } else {
                    // Masking all remaining inputs would inhibit
                    // everything -> re-enable all

                    st.switchMask = all;
                    st.arbMask = all;
                }
                continue;
            }

            // Collision. Multi-flit involvement forces an abort.
            bool multi_flit = false;
            for (RequestMask m = part; m; m &= m - 1) {
                if (views[std::countr_zero(m)].presented->isMultiFlit())
                    multi_flit = true;
            }

            if (multi_flit) {
                // Abort: indeterminate value driven, nothing freed;
                // the grant winner owns the output until its tail.
                driveWasted(o);
                energy_.abortCycles += 1;
                noxStats_.aborts += 1;
                energy_.xbarInputDrives +=
                    static_cast<std::uint64_t>(fanin);
                const int g = st.arb->grant(part);
                energy_.arbDecisions += 1;
                trace(TraceEventKind::Arbitrate, o,
                      static_cast<std::uint64_t>(g),
                      static_cast<std::uint32_t>(part));
                trace(TraceEventKind::NoxAbort, o,
                      views[g].presented->uid,
                      static_cast<std::uint32_t>(fanin));
                if (prov) {
                    // Abort wastes the cycle for every collider,
                    // including the grant winner.
                    for (RequestMask m = part; m; m &= m - 1)
                        provStall(*views[std::countr_zero(m)].presented,
                                  LatencyComponent::XorRecovery, now);
                }
                lockOutput(st, g, views[g].presented->packet);
                continue;
            }

            // Productive XOR-coded transfer (§2.2): the output is the
            // XOR of all colliding single-flit packets; the arbiter's
            // winner is freed immediately. Member scratch again: the
            // collision list is rebuilt every encoded transfer.
            auto &colliding = scratchColliding_;
            colliding.clear();
            for (RequestMask m = part; m; m &= m - 1) {
                colliding.push_back(
                    *views[std::countr_zero(m)].presented);
                energy_.xbarInputDrives += 1;
            }
            const int g = st.arb->grant(part);
            energy_.arbDecisions += 1;
            trace(TraceEventKind::Arbitrate, o,
                  static_cast<std::uint64_t>(g),
                  static_cast<std::uint32_t>(part));
            noxStats_.collisionsBySize[static_cast<std::size_t>(
                fanin)] += 1;
            trace(TraceEventKind::XorEncode, o,
                  views[g].presented->uid,
                  static_cast<std::uint32_t>(fanin));
            if (prov) {
                // Only the arbitration winner is freed by an encoded
                // transfer; the other colliders begin (or continue)
                // their XOR-recovery wait.
                for (RequestMask m = part & ~maskBit(g); m; m &= m - 1)
                    provStall(*views[std::countr_zero(m)].presented,
                              LatencyComponent::XorRecovery, now);
                provSend(*views[g].presented, o, now);
            }
            acceptPresented(g, views[g]);
            sendFlit(o, WireFlit::combine(colliding));

            const RequestMask losers = part & ~maskBit(g);
            energy_.maskUpdates += 1;
            NOX_ASSERT(losers != 0, "collision with no losers");
            if (std::popcount(losers) == 1) {
                st.mode = Mode::Scheduled;
                st.switchMask = losers;
                st.arbMask = all & ~losers;
            } else {
                st.switchMask = losers;
                st.arbMask = losers;
            }
            continue;
        }

        // Scheduled mode: one input enabled for traversal, everyone
        // else enabled for arbitration (§2.6).
        const RequestMask sw = requests & st.switchMask;
        NOX_ASSERT(std::popcount(sw) <= 1,
                   "multiple switch-enabled inputs in Scheduled mode");
        if (prov) {
            // Requesters not pre-scheduled for the switch this cycle
            // wait out (at least) one arbitration round.
            for (RequestMask m = requests & ~sw; m; m &= m - 1)
                provStall(*views[std::countr_zero(m)].presented,
                          LatencyComponent::ArbLoss, now);
        }
        if (sw) {
            const int p = std::countr_zero(sw);
            const FlitDesc d = *views[p].presented;
            noxStats_.prescheduled += 1;
            traverseSingle(p, o, views[p], now);
            if (d.isMultiFlit() && d.isHead() && !d.isTail()) {
                lockOutput(st, p, d.packet);
                continue;
            }
        }

        const RequestMask arb_requests = requests & st.arbMask;
        energy_.maskUpdates += 1;
        if (arb_requests) {
            const int g = st.arb->grant(arb_requests);
            energy_.arbDecisions += 1;
            trace(TraceEventKind::Arbitrate, o,
                  static_cast<std::uint64_t>(g),
                  static_cast<std::uint32_t>(arb_requests));
            st.switchMask = maskBit(g);
            st.arbMask = all & ~maskBit(g);
        } else {
            // No grant generated: transition back to the optimistic
            // Recovery mode with everything enabled.
            st.mode = Mode::Recovery;
            st.switchMask = all;
            st.arbMask = all;
        }
    }
}

bool
NoxRouter::quiescent() const
{
    if (!Router::quiescent())
        return false;
    for (const XorDecoder &d : decoders_) {
        if (d.registerValid())
            return false; // mid-decode of an encoded chain
    }
    const RequestMask all = allPortsMask();
    for (const OutState &st : out_) {
        if (st.lockOwner >= 0 || st.mode != Mode::Recovery ||
            st.switchMask != all || st.arbMask != all)
            return false;
    }
    return true;
}

void
NoxRouter::acceptPresented(int port, const DecodeView &view)
{
    if (view.decodedByXor) {
        energy_.decodeOps += 1;
        trace(TraceEventKind::XorDecode, port, view.presented->uid);
    }
    // Count integrity violations when the flit is accepted (view()
    // re-inspects the same head every cycle; accept happens once).
    if (view.fault == DecodeFault::PayloadMismatch) {
        faults_->onDecodeMismatch();
        trace(TraceEventKind::DecodeFault, port, view.presented->uid);
        if (tracer_)
            tracer_->triggerFlightDump("decode-fault", {id_});
    }
    const bool popped = decoders_[port].accept(in_[port]);
    if (popped) {
        energy_.bufferReads += 1;
        returnCredit(port);
    }
}

void
NoxRouter::traverseSingle(int in_port, int out_port,
                          const DecodeView &view, Cycle now)
{
    WireFlit w = WireFlit::fromDesc(*view.presented);
    provSend(w.parts.front(), out_port, now);
    energy_.xbarInputDrives += 1;
    acceptPresented(in_port, view); // invalidates view.presented
    sendFlit(out_port, std::move(w));
}

void
NoxRouter::lockOutput(OutState &st, int in_port, PacketId packet)
{
    st.mode = Mode::Scheduled;
    st.lockOwner = in_port;
    st.lockPacket = packet;
    st.switchMask = maskBit(in_port);
    st.arbMask = 0;
    energy_.maskUpdates += 1;
}

void
NoxRouter::unlockOutput(OutState &st)
{
    st.mode = Mode::Recovery;
    st.lockOwner = -1;
    st.lockPacket = kInvalidPacket;
    st.switchMask = allPortsMask();
    st.arbMask = allPortsMask();
    energy_.maskUpdates += 1;
}

void
NoxRouter::killInput(int in_port, std::vector<FlitDesc> &lost)
{
    Router::killInput(in_port, lost);
    dropOpenChain(in_port, lost);
}

void
NoxRouter::dropOpenChain(int in_port, std::vector<FlitDesc> &lost)
{
    // Scan the port for a decode chain left open forever — either
    // its link died, or a mid-run table rebuild reset the upstream
    // output masks so the subset chain will never be continued.
    // Simulate future decode progress: a chain closes on its final
    // (plain) wire value; trailing encoded values with no closure
    // can never be recovered.
    XorDecoder &dec = decoders_[in_port];
    FlitFifo &fifo = in_[in_port];
    const std::size_t n = fifo.size();
    std::vector<WireFlit> entries;
    entries.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        entries.push_back(fifo.pop());

    bool open = dec.registerValid();
    std::ptrdiff_t start = open ? -1 : 0; // -1 = the register itself
    for (std::size_t i = 0; i < n; ++i) {
        if (open) {
            if (!entries[i].encoded)
                open = false;
        } else if (entries[i].encoded) {
            open = true;
            start = static_cast<std::ptrdiff_t>(i);
        }
    }
    if (open) {
        std::vector<FlitDesc> dropped;
        if (start < 0) {
            collectUnique(dec.registerValue(), dropped);
            dec.reset();
            start = 0; // every buffered value continued that chain
        }
        for (std::size_t i = static_cast<std::size_t>(start); i < n;
             ++i) {
            collectUnique(entries[i], dropped);
            // Freed buffer slot: credit the (live) upstream router —
            // a no-op when this port's link died with its sender.
            returnCredit(in_port);
        }
        entries.resize(static_cast<std::size_t>(start));
        lost.insert(lost.end(), dropped.begin(), dropped.end());
    }
    for (WireFlit &w : entries)
        fifo.push(std::move(w));
}

void
NoxRouter::purgeFlits(const FlitCondemned &condemned,
                      std::vector<FlitDesc> &removed)
{
    const int ports = numPorts();
    // A mid-run rebuild resets every output's subset-chain masks, so
    // chains still open at our inputs will never be continued by the
    // upstream output: break them now (idempotent — once dropped, the
    // port's trailing chain is closed) before judging survivors.
    for (int p = 0; p < ports; ++p)
        dropOpenChain(p, removed);
    for (int p = 0; p < ports; ++p) {
        FlitFifo &fifo = in_[p];
        const std::size_t n = fifo.size();
        std::vector<WireFlit> entries;
        entries.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            entries.push_back(fifo.pop());

        bool contaminated = false;
        if (decoders_[p].registerValid()) {
            for (const FlitDesc &d :
                 decoders_[p].registerValue().parts)
                contaminated = contaminated || condemned(id_, p, d);
        }
        for (const WireFlit &w : entries) {
            for (const FlitDesc &d : w.parts)
                contaminated = contaminated || condemned(id_, p, d);
        }
        if (!contaminated) {
            for (WireFlit &w : entries)
                fifo.push(std::move(w));
            continue;
        }

        // Wire values are XOR combinations: one condemned constituent
        // poisons every chain value it appears in, so the whole port
        // content is dropped. Clean flits lost alongside are reported
        // in @p removed and cascade through the network's fixpoint.
        std::vector<FlitDesc> dropped;
        if (decoders_[p].registerValid()) {
            collectUnique(decoders_[p].registerValue(), dropped);
            decoders_[p].reset();
        }
        for (const WireFlit &w : entries) {
            collectUnique(w, dropped);
            returnCredit(p); // one buffer slot per dropped wire value
        }
        removed.insert(removed.end(), dropped.begin(), dropped.end());
    }
    purgeLinkState(condemned, removed);
}

void
NoxRouter::onTableRebuild()
{
    Router::onTableRebuild();
    for (OutState &st : out_) {
        st.mode = Mode::Recovery;
        st.lockOwner = -1;
        st.lockPacket = kInvalidPacket;
        st.switchMask = allPortsMask();
        st.arbMask = allPortsMask();
    }
}

void
NoxRouter::debugPerturb()
{
    out_[0].arb->perturb();
}

void
NoxRouter::serialize(snap::Writer &w, snap::Scope scope) const
{
    Router::serialize(w, scope);
    for (const XorDecoder &d : decoders_)
        d.serialize(w);
    for (const OutState &st : out_) {
        w.u8(static_cast<std::uint8_t>(st.mode));
        w.u64(st.switchMask);
        w.u64(st.arbMask);
        w.i32(st.lockOwner);
        w.u64(st.lockPacket);
        st.arb->serialize(w);
    }
    for (std::uint64_t c : noxStats_.collisionsBySize)
        w.u64(c);
    // The mode-residency counters advance on every *ticked* cycle
    // with an eligible output, so — like energy events — they are
    // kernel-dependent: the activity kernel clock-gates idle routers
    // and accrues no residency there. The digest scope omits them;
    // the event-driven counters below fire only on real traffic and
    // must agree across kernels, so they stay in the digest.
    if (scope == snap::Scope::Snapshot) {
        w.u64(noxStats_.recoveryCycles);
        w.u64(noxStats_.scheduledCycles);
        w.u64(noxStats_.lockedCycles);
    }
    w.u64(noxStats_.cleanTraversals);
    w.u64(noxStats_.prescheduled);
    w.u64(noxStats_.aborts);
}

void
NoxRouter::restore(snap::Reader &r)
{
    Router::restore(r);
    for (XorDecoder &d : decoders_)
        d.restore(r);
    for (OutState &st : out_) {
        const std::uint8_t m = r.u8();
        if (m > static_cast<std::uint8_t>(Mode::Scheduled))
            r.fail("NoX output mode out of range");
        st.mode = static_cast<Mode>(m);
        st.switchMask = r.u64();
        st.arbMask = r.u64();
        st.lockOwner = r.i32();
        if (st.lockOwner < -1 || st.lockOwner >= numPorts())
            r.fail("NoX lock owner out of range");
        st.lockPacket = r.u64();
        st.arb->restore(r);
    }
    for (std::uint64_t &c : noxStats_.collisionsBySize)
        c = r.u64();
    noxStats_.recoveryCycles = r.u64();
    noxStats_.scheduledCycles = r.u64();
    noxStats_.lockedCycles = r.u64();
    noxStats_.cleanTraversals = r.u64();
    noxStats_.prescheduled = r.u64();
    noxStats_.aborts = r.u64();
}

} // namespace nox
