/**
 * @file
 * The speculative single-cycle routers (§3.1.2, Figure 6), adapted
 * from Mullins et al. [21, 22] to wormhole flow control.
 *
 * Every request not masked by the Switch-Fast mask speculatively
 * traverses the switch. If exactly one input drives an output the
 * transfer succeeds; if several collide, the cycle is wasted and an
 * indeterminate value is driven across the output channel (energy is
 * spent, nothing is delivered). An allocator running in parallel
 * ("Switch Next") computes the next cycle's Switch-Fast mask.
 *
 * The two variants differ only in what Switch Next sees:
 *   - Spec-Fast: all requests not masked by Switch-Fast — including a
 *     currently-succeeding one, producing the paper's "unnecessary
 *     switch reservations" (the extra dead cycle of Figure 7b). For
 *     wormhole fairness, a packet newly exposed behind a departing
 *     packet may not request arbitration in its first cycle.
 *   - Spec-Accurate: the same requests as Switch-Fast, minus those
 *     that successfully traversed this cycle, so a collision loser is
 *     pre-scheduled immediately (Figure 7c).
 */

#ifndef NOX_ROUTERS_SPEC_ROUTER_HPP
#define NOX_ROUTERS_SPEC_ROUTER_HPP

#include <memory>
#include <vector>

#include "noc/router.hpp"

namespace nox {

/** Speculative router; @see SpecVariant for the two flavours. */
class SpecRouter : public Router
{
  public:
    enum class Variant { Fast, Accurate };

    SpecRouter(NodeId id, const Mesh &mesh, const RoutingTable &table,
               const RouterParams &params, Variant variant);

    RouterArch arch() const override
    {
        return variant_ == Variant::Fast ? RouterArch::SpecFast
                                         : RouterArch::SpecAccurate;
    }

    void evaluate(Cycle now) override;

    /**
     * Quiescent iff base state is idle, no wormhole is open, no
     * reservation is pending, and the previous-head registers have
     * settled to invalid (the Spec-Fast newly-exposed rule reads
     * them, so retiring the router with a stale entry would mask a
     * future head's first request — one idle tick clears them).
     */
    bool quiescent() const override;

    /** Drop wormhole locks and pending reservations after a mid-run
     *  routing-table rebuild. */
    void onTableRebuild() override;

    Variant variant() const { return variant_; }

    /** Reserved input for the next cycle on @p port (-1 = open). */
    int reservation(int port) const { return reserved_[port]; }

    /** Input currently owning output @p port mid-packet (-1 = none). */
    int lockOwner(int port) const { return lockOwner_[port]; }

    void serialize(snap::Writer &w,
                   snap::Scope scope) const override;
    void restore(snap::Reader &r) override;

    void debugPerturb() override;

  private:
    void traverse(int in_port, int out_port);

    Variant variant_;
    std::vector<std::unique_ptr<Arbiter>> arb_;

    /** Switch-Fast reservation for the *current* cycle (-1 = open). */
    std::vector<int> reserved_;

    /** Wormhole multi-flit exclusive ownership. */
    std::vector<int> lockOwner_;
    std::vector<PacketId> lockPacket_;

    /** Head packet at each input at the start of the previous cycle
     *  (0 = FIFO was empty) — drives the newly-exposed rule. */
    std::vector<PacketId> prevHeadPacket_;

    // Per-evaluate scratch (reused across cycles, see evaluate()).
    std::vector<std::optional<FlitDesc>> scratchHead_;
    std::vector<int> scratchOut_;
    std::vector<PacketId> scratchHeadPacket_;
};

} // namespace nox

#endif // NOX_ROUTERS_SPEC_ROUTER_HPP
