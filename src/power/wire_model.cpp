#include "power/wire_model.hpp"

#include <cmath>

#include "common/log.hpp"

namespace nox {

WireModel::WireModel(const Technology &tech, double length_mm,
                     int width_bits)
    : tech_(tech), lengthMm_(length_mm), widthBits_(width_bits)
{
    NOX_ASSERT(length_mm > 0.0 && width_bits > 0,
               "invalid channel geometry");
}

double
WireModel::delayPs() const
{
    // Optimally repeated wires are delay-linear in length; the
    // calibrated 49 ps/mm reproduces the paper's 98 ps for the 2 mm
    // inter-tile channel (§6.1).
    return tech_.wireDelayPerMmPs * lengthMm_;
}

double
WireModel::capPerBitFf() const
{
    return tech_.wireCapPerMmFf * lengthMm_;
}

double
WireModel::energyPerFlitPj() const
{
    const double per_bit =
        tech_.switchingEnergyPj(capPerBitFf()) * tech_.activityFactor;
    return per_bit * widthBits_;
}

int
WireModel::repeatersPerWire() const
{
    // ~3 repeater stages per mm is typical for 65 nm global wires.
    return static_cast<int>(std::ceil(3.0 * lengthMm_));
}

} // namespace nox
