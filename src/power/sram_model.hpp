/**
 * @file
 * Input-buffer SRAM model (the paper generates these with a memory
 * compiler and SPICE-extracts timing/power; we substitute a first-
 * order 6T-array model calibrated to the same headline numbers:
 * 248 ps read access for the 4-deep 64-bit FIFO).
 */

#ifndef NOX_POWER_SRAM_MODEL_HPP
#define NOX_POWER_SRAM_MODEL_HPP

#include "power/technology.hpp"

namespace nox {

/** A small single-read single-write SRAM FIFO array. */
class SramModel
{
  public:
    /**
     * @param tech technology constants
     * @param words FIFO depth (Table 1: 4)
     * @param bits_per_word flit width (Table 1: 64)
     */
    SramModel(const Technology &tech, int words, int bits_per_word);

    /** Read access time [ps] (calibrated: 248 ps, §6.1). */
    double readDelayPs() const;

    /** Energy of one read / write access [pJ]. */
    double readEnergyPj() const;
    double writeEnergyPj() const;

    /** Macro area including periphery [um^2]. */
    double areaUm2() const;

    int words() const { return words_; }
    int bitsPerWord() const { return bits_; }

  private:
    Technology tech_;
    int words_;
    int bits_;
};

} // namespace nox

#endif // NOX_POWER_SRAM_MODEL_HPP
