/**
 * @file
 * Repeated-wire channel model (after Balfour & Dally [1] and Mui et
 * al. [20], the papers the evaluation cites for channel delay and
 * energy estimation).
 */

#ifndef NOX_POWER_WIRE_MODEL_HPP
#define NOX_POWER_WIRE_MODEL_HPP

#include "power/technology.hpp"

namespace nox {

/** An optimally repeated point-to-point channel. */
class WireModel
{
  public:
    /**
     * @param tech technology constants
     * @param length_mm physical channel length
     * @param width_bits parallel wires (Table 1: 64-bit links)
     */
    WireModel(const Technology &tech, double length_mm, int width_bits);

    /** One-way propagation delay [ps]. */
    double delayPs() const;

    /**
     * Energy to move one flit across the channel [pJ] at the
     * technology's activity factor.
     */
    double energyPerFlitPj() const;

    /** Energy for a wasted (indeterminate-value) drive [pJ]; the
     *  speculative routers pay this on misspeculation. Indeterminate
     *  data toggles at the same mean activity as real data. */
    double wastedDriveEnergyPj() const { return energyPerFlitPj(); }

    /** Total switched capacitance per bit [fF]. */
    double capPerBitFf() const;

    /** Repeaters per wire at optimal spacing (for the area model). */
    int repeatersPerWire() const;

    double lengthMm() const { return lengthMm_; }
    int widthBits() const { return widthBits_; }

  private:
    Technology tech_;
    double lengthMm_;
    int widthBits_;
};

} // namespace nox

#endif // NOX_POWER_WIRE_MODEL_HPP
