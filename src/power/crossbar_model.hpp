/**
 * @file
 * Crossbar switch models: the conventional multiplexer/tristate
 * switch and the NoX XOR switch (§2.5). Manual-floorplan style: width
 * set by wire spacing, height by the standard-cell row (§6.2).
 */

#ifndef NOX_POWER_CROSSBAR_MODEL_HPP
#define NOX_POWER_CROSSBAR_MODEL_HPP

#include "power/technology.hpp"

namespace nox {

/** Switch fabric flavour. */
enum class XbarKind { Mux, Xor };

/** A ports x ports, bits-wide crossbar. */
class CrossbarModel
{
  public:
    CrossbarModel(const Technology &tech, XbarKind kind, int ports,
                  int bits);

    /** Input-to-output traversal delay [ps], including the select /
     *  inhibit distribution appropriate to the flavour. */
    double traversalDelayPs() const;

    /** Energy of driving one input row for a cycle [pJ]. */
    double inputDriveEnergyPj() const;

    /** Energy of one active output column for a cycle [pJ]. */
    double outputDriveEnergyPj() const;

    /** Datapath footprint [um]. */
    double widthUm() const;
    double heightUm() const;
    double areaUm2() const { return widthUm() * heightUm(); }

    XbarKind kind() const { return kind_; }

  private:
    double spanMm() const;

    Technology tech_;
    XbarKind kind_;
    int ports_;
    int bits_;
};

} // namespace nox

#endif // NOX_POWER_CROSSBAR_MODEL_HPP
