#include "power/timing_model.hpp"

#include <cmath>

#include "common/log.hpp"

namespace nox {

TimingModel::TimingModel(const Technology &tech,
                         const PhysicalParams &params)
    : tech_(tech), params_(params),
      sram_(tech, params.bufferDepth, params.flitBits),
      link_(tech, params.linkLengthMm, params.flitBits),
      mux_(tech, XbarKind::Mux, params.ports, params.flitBits),
      xorXbar_(tech, XbarKind::Xor, params.ports, params.flitBits)
{
}

double
TimingModel::arbiterPs() const
{
    // Serialized round-robin output arbitration in the non-speculative
    // router: priority encode + grant + mask. Depth grows with the
    // radix (~log2): 13.6 FO4 at the paper's 5 ports, more on the
    // higher-radix routers of §8's concentrated meshes.
    const double lg =
        std::log2(static_cast<double>(params_.ports));
    return (6.17 + 3.2 * lg) * tech_.fo4Ps;
}

double
TimingModel::specMaskPs() const
{
    // Applying the precomputed Switch-Fast mask and enabling the
    // input drivers: ~4.4 FO4.
    return 4.4 * tech_.fo4Ps;
}

double
TimingModel::specNextAccuratePs() const
{
    // Spec-Accurate's Switch-Next must observe the current cycle's
    // traversal successes before allocation: ~1.2 FO4 of margin.
    return 1.2 * tech_.fo4Ps;
}

double
TimingModel::decodeXorPs() const
{
    // One 2-input XOR level plus register mux at the input port
    // (§6.1: "decoding logic ... incurs approximately 40 ps").
    return 1.6 * tech_.fo4Ps;
}

TimingBreakdown
TimingModel::breakdown(RouterArch arch) const
{
    TimingBreakdown b;
    b.arch = arch;
    auto add = [&b](const std::string &name, double ps) {
        b.components.push_back({name, ps});
        b.totalPs += ps;
    };

    add("sram read", sramReadPs());
    switch (arch) {
      case RouterArch::NonSpeculative:
        add("switch arbitration", arbiterPs());
        add("mux crossbar", xbarMuxPs());
        break;
      case RouterArch::SpecFast:
        add("switch-fast mask", specMaskPs());
        add("mux crossbar", xbarMuxPs());
        break;
      case RouterArch::SpecAccurate:
        add("switch-fast mask", specMaskPs());
        add("accurate switch-next", specNextAccuratePs());
        add("mux crossbar", xbarMuxPs());
        break;
      case RouterArch::Nox:
        add("xor decode", decodeXorPs());
        add("switch mask", specMaskPs());
        add("mask-mode control", specNextAccuratePs());
        add("xor crossbar", xbarXorPs());
        break;
    }
    add("2mm link", linkPs());
    return b;
}

double
TimingModel::clockPeriodNs(RouterArch arch) const
{
    return breakdown(arch).totalNs();
}

} // namespace nox
