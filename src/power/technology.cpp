#include "power/technology.hpp"

namespace nox {

Technology
Technology::tsmc65()
{
    return Technology{};
}

} // namespace nox
