/**
 * @file
 * Router floorplan / area model (§6.2, Figure 13).
 *
 * Layout adapted from Balfour & Dally [1], as in the paper: the
 * router datapath is a fixed-height strip; input SRAMs are stacked
 * with bit interleaving; crossbar width is set by wire spacing and
 * its height by the standard-cell row; channel repeaters and output
 * drivers occupy their own columns. The NoX variant appends a
 * decode + masking column (paper: +28.2 um horizontal, +17.2% tile
 * area). Allocation/abort/route logic fits in the spare corner and
 * does not change the envelope (per §6.2).
 */

#ifndef NOX_POWER_AREA_MODEL_HPP
#define NOX_POWER_AREA_MODEL_HPP

#include <string>
#include <vector>

#include "noc/types.hpp"
#include "power/technology.hpp"
#include "power/timing_model.hpp"

namespace nox {

/** One floorplan column. */
struct AreaBlock
{
    std::string name;
    double widthUm;
    double areaUm2;
};

/** A router tile's floorplan summary. */
struct AreaBreakdown
{
    RouterArch arch;
    std::vector<AreaBlock> blocks;
    double heightUm = 0.0;
    double widthUm = 0.0;

    double areaUm2() const { return widthUm * heightUm; }
};

/** Computes router tile floorplans for each architecture. */
class AreaModel
{
  public:
    AreaModel(const Technology &tech, const PhysicalParams &params);

    AreaBreakdown breakdown(RouterArch arch) const;

    /** Width of the NoX decode+masking column [um] (paper: 28.2). */
    double decodeMaskWidthUm() const;

    /** NoX tile area overhead vs the conventional router (paper:
     *  0.172). */
    double noxOverheadFraction() const;

    double tileHeightUm() const { return heightUm_; }

  private:
    double sramColumnWidthUm() const;
    double xbarWidthUm() const;
    double repeaterColumnWidthUm() const;
    double driverColumnWidthUm() const;
    double controlColumnWidthUm() const;

    Technology tech_;
    PhysicalParams params_;
    double heightUm_;
};

} // namespace nox

#endif // NOX_POWER_AREA_MODEL_HPP
