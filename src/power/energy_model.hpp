/**
 * @file
 * Per-event energy model: turns the simulator's EnergyEvents counters
 * into the paper's energy/power numbers (§4: "a cycle-accurate C++
 * simulation model is complemented with necessary event counters to
 * form an accurate power model"; §5.3 / Figure 12 break network power
 * into link, switch, buffer and control components).
 */

#ifndef NOX_POWER_ENERGY_MODEL_HPP
#define NOX_POWER_ENERGY_MODEL_HPP

#include "noc/energy_events.hpp"
#include "noc/types.hpp"
#include "power/crossbar_model.hpp"
#include "power/sram_model.hpp"
#include "power/technology.hpp"
#include "power/timing_model.hpp"
#include "power/wire_model.hpp"

namespace nox {

/** Energy totals by component [pJ]. */
struct EnergyBreakdown
{
    double linkPj = 0.0;    ///< inter-tile channels (incl. waste)
    double localPj = 0.0;   ///< NIC-side wiring
    double bufferPj = 0.0;  ///< input SRAM reads/writes
    double xbarPj = 0.0;    ///< switch fabric
    double arbPj = 0.0;     ///< arbitration / allocation / masking
    double decodePj = 0.0;  ///< NoX XOR decode + decode registers
    double clockPj = 0.0;   ///< clock distribution

    double
    totalPj() const
    {
        return linkPj + localPj + bufferPj + xbarPj + arbPj +
               decodePj + clockPj;
    }

    /** Link share of total (paper: ~74% at 2 GB/s/node uniform). */
    double
    linkFraction() const
    {
        const double t = totalPj();
        return t > 0.0 ? (linkPj + localPj) / t : 0.0;
    }
};

/** Maps event counts to energy for one router architecture. */
class EnergyModel
{
  public:
    EnergyModel(const Technology &tech, RouterArch arch,
                const PhysicalParams &params);

    /** Energy consumed by the given activity counters. */
    EnergyBreakdown energyOf(const EnergyEvents &events) const;

    /**
     * Mean power [W] over @p elapsed_cycles of simulated time at
     * @p period_ns per cycle.
     */
    double powerW(const EnergyEvents &events, double period_ns,
                  Cycle elapsed_cycles) const;

    // Per-event energies [pJ], exposed for tests/benches.
    double linkFlitPj() const { return link_.energyPerFlitPj(); }
    double localFlitPj() const { return local_.energyPerFlitPj(); }
    double bufferReadPj() const { return sram_.readEnergyPj(); }
    double bufferWritePj() const { return sram_.writeEnergyPj(); }
    double xbarInputPj() const { return xbar_.inputDriveEnergyPj(); }
    double xbarOutputPj() const { return xbar_.outputDriveEnergyPj(); }
    double arbDecisionPj() const;
    double allocEvalPj() const;
    double maskUpdatePj() const;
    double decodeOpPj() const;
    double decodeLatchPj() const;
    double clockCyclePj() const;

    RouterArch arch() const { return arch_; }

  private:
    Technology tech_;
    RouterArch arch_;
    PhysicalParams params_;
    WireModel link_;
    WireModel local_;
    SramModel sram_;
    CrossbarModel xbar_;
};

} // namespace nox

#endif // NOX_POWER_ENERGY_MODEL_HPP
