#include "power/crossbar_model.hpp"

#include "common/log.hpp"

namespace nox {

CrossbarModel::CrossbarModel(const Technology &tech, XbarKind kind,
                             int ports, int bits)
    : tech_(tech), kind_(kind), ports_(ports), bits_(bits)
{
    NOX_ASSERT(ports > 1 && bits > 0, "invalid crossbar shape");
}

double
CrossbarModel::widthUm() const
{
    // Width is set by wire spacing: every input's bus crosses the
    // fabric on its own track group (§6.2).
    return static_cast<double>(ports_) * bits_ * tech_.wirePitchUm;
}

double
CrossbarModel::heightUm() const
{
    // One standard-cell row per bit-slice column group.
    return static_cast<double>(bits_) * tech_.cellHeightUm / 4.0 +
           static_cast<double>(ports_) * tech_.cellHeightUm;
}

double
CrossbarModel::spanMm() const
{
    return widthUm() * 1e-3;
}

double
CrossbarModel::traversalDelayPs() const
{
    // Wire flight across the fabric plus the merge gate.
    const double wire = tech_.wireDelayPerMmPs * spanMm() * 2.0;
    if (kind_ == XbarKind::Mux) {
        // 5:1 mux tree (~6 FO4) plus time-critical select wires that
        // must be routed across the fabric and fanned out (§2.5).
        const double mux_gates = 6.0 * tech_.fo4Ps;
        const double select_route = 3.1 * tech_.fo4Ps;
        return wire + mux_gates + select_route;
    }
    // XOR gates have higher logical effort (~7 FO4) but the inhibit
    // masks are precomputed and applied locally at each port, so no
    // time-critical select distribution is needed (§2.5).
    const double xor_gates = 7.0 * tech_.fo4Ps;
    const double local_inhibit = 2.0 * tech_.fo4Ps;
    return wire + xor_gates + local_inhibit;
}

double
CrossbarModel::inputDriveEnergyPj() const
{
    // Driving one input's row wires across the fabric width.
    const double cap_ff = tech_.wireCapPerMmFf * spanMm() * bits_;
    const double gate_loading =
        tech_.gateCapFf * bits_ * (ports_ - 1);
    return tech_.switchingEnergyPj(cap_ff + gate_loading) *
           tech_.activityFactor;
}

double
CrossbarModel::outputDriveEnergyPj() const
{
    // Output column wire plus the merge gates' internal switching.
    const double cap_ff = tech_.wireCapPerMmFf * spanMm() * bits_;
    // XOR merge gates switch internally far more than pass-tristates:
    // an XOR tree propagates every input transition through all of
    // its levels (activity amplification), where a mux only toggles
    // the selected path (§2.5: "XOR logic gates have higher logical
    // effort ... consuming marginally more power").
    const double gate_factor = (kind_ == XbarKind::Xor) ? 3.3 : 1.4;
    const double gate_ff = tech_.gateCapFf * bits_ * gate_factor;
    return tech_.switchingEnergyPj(cap_ff + gate_ff) *
           tech_.activityFactor;
}

} // namespace nox
