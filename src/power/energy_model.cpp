#include "power/energy_model.hpp"

namespace nox {

EnergyModel::EnergyModel(const Technology &tech, RouterArch arch,
                         const PhysicalParams &params)
    : tech_(tech), arch_(arch), params_(params),
      link_(tech, params.linkLengthMm, params.flitBits),
      local_(tech, params.localLinkLengthMm, params.flitBits),
      sram_(tech, params.bufferDepth, params.flitBits),
      xbar_(tech,
            arch == RouterArch::Nox ? XbarKind::Xor : XbarKind::Mux,
            params.ports, params.flitBits)
{
}

double
EnergyModel::arbDecisionPj() const
{
    // A 5-input arbiter: a few tens of gates.
    return tech_.switchingEnergyPj(40.0 * tech_.gateCapFf) *
           tech_.activityFactor;
}

double
EnergyModel::allocEvalPj() const
{
    // Switch-Next request selection logic.
    return tech_.switchingEnergyPj(50.0 * tech_.gateCapFf) *
           tech_.activityFactor;
}

double
EnergyModel::maskUpdatePj() const
{
    // Two 5-bit mask registers plus update gates.
    return tech_.switchingEnergyPj(24.0 * tech_.gateCapFf) *
           tech_.activityFactor;
}

double
EnergyModel::decodeOpPj() const
{
    // 64 two-input XOR gates plus output wiring at the input port.
    return tech_.switchingEnergyPj(2.4 * params_.flitBits *
                                   tech_.gateCapFf) *
           tech_.activityFactor;
}

double
EnergyModel::decodeLatchPj() const
{
    // Writing the 64-bit decode register (clock-gated otherwise).
    return tech_.switchingEnergyPj(2.0 * params_.flitBits *
                                   tech_.gateCapFf);
}

double
EnergyModel::clockCyclePj() const
{
    // Per-router clock tree: port registers, FIFO pointers, masks.
    // NoX clock-gates its decode registers, so its extra state costs
    // only a small increment.
    const double base_ff = 380.0;
    const double extra_ff = (arch_ == RouterArch::Nox) ? 40.0 : 0.0;
    return tech_.switchingEnergyPj(base_ff + extra_ff) * 0.5;
}

EnergyBreakdown
EnergyModel::energyOf(const EnergyEvents &e) const
{
    EnergyBreakdown b;
    const double wf = static_cast<double>(e.linkFlits) +
                      static_cast<double>(e.linkWastedCycles);
    b.linkPj = wf * linkFlitPj();
    const double lf = static_cast<double>(e.localLinkFlits) +
                      static_cast<double>(e.localLinkWasted);
    b.localPj = lf * localFlitPj();
    b.bufferPj =
        static_cast<double>(e.bufferWrites) * bufferWritePj() +
        static_cast<double>(e.bufferReads) * bufferReadPj();
    b.xbarPj =
        static_cast<double>(e.xbarInputDrives) * xbarInputPj() +
        static_cast<double>(e.xbarOutputCycles) * xbarOutputPj();
    b.arbPj = static_cast<double>(e.arbDecisions) * arbDecisionPj() +
              static_cast<double>(e.allocEvals) * allocEvalPj() +
              static_cast<double>(e.maskUpdates) * maskUpdatePj();
    b.decodePj =
        static_cast<double>(e.decodeOps) * decodeOpPj() +
        static_cast<double>(e.decodeLatches) * decodeLatchPj();
    b.clockPj = static_cast<double>(e.cycles) * clockCyclePj();
    return b;
}

double
EnergyModel::powerW(const EnergyEvents &events, double period_ns,
                    Cycle elapsed_cycles) const
{
    if (elapsed_cycles == 0 || period_ns <= 0.0)
        return 0.0;
    const double pj = energyOf(events).totalPj();
    const double ns =
        static_cast<double>(elapsed_cycles) * period_ns;
    return pj / ns * 1e-3; // pJ/ns == mW; -> W
}

} // namespace nox
