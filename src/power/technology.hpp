/**
 * @file
 * First-order 65 nm technology parameters.
 *
 * The paper extracts channel/SRAM/logic parameters from a TSMC 65 nm
 * standard-cell library, memory-compiler output and SPICE (§4). Those
 * collateral are proprietary, so this model substitutes published
 * first-order constants for the same node (FO4 delay, wire
 * capacitance of repeated global wires, SRAM access energy) and
 * documents each value. The *uses* of the numbers — clock periods
 * (Table 2), per-event energies (Fig 9/11/12), areas (§6.2) — follow
 * the same model structure as the paper's references [1] (Balfour &
 * Dally) and [20] (Mui et al.).
 */

#ifndef NOX_POWER_TECHNOLOGY_HPP
#define NOX_POWER_TECHNOLOGY_HPP

namespace nox {

/** Process / circuit constants for one technology node. */
struct Technology
{
    // -- electrical --
    double vdd = 1.1;            ///< supply voltage [V]
    double fo4Ps = 25.0;         ///< FO4 inverter delay [ps]
    double wireCapPerMmFf = 210.0; ///< repeated global wire incl.
                                   ///< repeaters [fF/mm]
    double wireDelayPerMmPs = 49.0; ///< optimally repeated wire [ps/mm]
    double activityFactor = 0.5; ///< mean switching probability/bit
    double gateCapFf = 1.3;      ///< min-size gate input cap [fF]

    // -- geometry (standard-cell / SRAM) --
    double cellHeightUm = 2.52;  ///< standard cell row height (§6.2)
    double sramBitCellUm2 = 0.52; ///< 6T SRAM bit cell [um^2]
    double sramArrayOverhead = 2.1; ///< periphery multiplier
    double wirePitchUm = 0.21;   ///< intermediate-layer wire pitch

    // -- memory timing/energy (memory-compiler substitutes) --
    double sramReadPs = 248.0;   ///< input buffer read (paper §6.1)
    double sramAccessEnergyPerBitFj = 21.0; ///< per-bit read/write

    /** Energy to charge capacitance C [fF] across full swing [pJ]. */
    double
    switchingEnergyPj(double cap_ff) const
    {
        return cap_ff * vdd * vdd * 1e-3; // fF*V^2 -> pJ
    }

    /** The calibrated 65 nm node used throughout the reproduction. */
    static Technology tsmc65();
};

} // namespace nox

#endif // NOX_POWER_TECHNOLOGY_HPP
