/**
 * @file
 * Clock-period model (reproduces Table 2 of the paper).
 *
 * Every evaluated design is a single-cycle router, so its clock period
 * is the sum of the structures on its critical path: the input-buffer
 * SRAM read (248 ps), the architecture-specific control logic, the
 * switch fabric, and the 2 mm inter-tile link (98 ps). The paper
 * obtains component delays from synthesis; we compose them from the
 * logical-effort/FO4 estimates in the component models, calibrated so
 * the four totals land on Table 2:
 *
 *   NonSpec 0.92 ns, Spec-Fast 0.69 ns, Spec-Accurate 0.72 ns,
 *   NoX 0.76 ns (decode logic ~ +40 ps over Spec-Accurate).
 */

#ifndef NOX_POWER_TIMING_MODEL_HPP
#define NOX_POWER_TIMING_MODEL_HPP

#include <string>
#include <vector>

#include "noc/types.hpp"
#include "power/crossbar_model.hpp"
#include "power/sram_model.hpp"
#include "power/technology.hpp"
#include "power/wire_model.hpp"

namespace nox {

/** Physical configuration shared by the power/timing/area models. */
struct PhysicalParams
{
    int ports = 5;
    int flitBits = 64;
    int bufferDepth = 4;
    double linkLengthMm = 2.0;      ///< inter-tile channel (Table 1)
    double localLinkLengthMm = 0.5; ///< router <-> NIC wiring
};

/** One named element of a critical path. */
struct PathComponent
{
    std::string name;
    double delayPs;
};

/** A router's critical path and its total. */
struct TimingBreakdown
{
    RouterArch arch;
    std::vector<PathComponent> components;
    double totalPs = 0.0;

    double totalNs() const { return totalPs * 1e-3; }
};

/** Composes per-architecture clock periods from component models. */
class TimingModel
{
  public:
    TimingModel(const Technology &tech, const PhysicalParams &params);

    /** Clock period [ns] for one architecture. */
    double clockPeriodNs(RouterArch arch) const;

    /** Full critical-path breakdown (Table 2 bench output). */
    TimingBreakdown breakdown(RouterArch arch) const;

    // Component delays [ps], exposed for tests and the bench.
    double sramReadPs() const { return sram_.readDelayPs(); }
    double linkPs() const { return link_.delayPs(); }
    double arbiterPs() const;
    double specMaskPs() const;
    double specNextAccuratePs() const;
    double decodeXorPs() const;
    double xbarMuxPs() const { return mux_.traversalDelayPs(); }
    double xbarXorPs() const { return xorXbar_.traversalDelayPs(); }

  private:
    Technology tech_;
    PhysicalParams params_;
    SramModel sram_;
    WireModel link_;
    CrossbarModel mux_;
    CrossbarModel xorXbar_;
};

} // namespace nox

#endif // NOX_POWER_TIMING_MODEL_HPP
