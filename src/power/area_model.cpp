#include "power/area_model.hpp"

#include "common/log.hpp"
#include "power/crossbar_model.hpp"
#include "power/sram_model.hpp"

namespace nox {

AreaModel::AreaModel(const Technology &tech,
                     const PhysicalParams &params)
    : tech_(tech), params_(params), heightUm_(70.0)
{
}

double
AreaModel::sramColumnWidthUm() const
{
    const SramModel sram(tech_, params_.bufferDepth, params_.flitBits);
    const double total = sram.areaUm2() * params_.ports;
    return total / heightUm_;
}

double
AreaModel::xbarWidthUm() const
{
    const CrossbarModel xbar(tech_, XbarKind::Mux, params_.ports,
                             params_.flitBits);
    return xbar.widthUm();
}

double
AreaModel::repeaterColumnWidthUm() const
{
    // Four mesh channels x flit width x repeater stages; each
    // repeater is a large inverter pair (~2.4 um^2).
    const WireModel link(tech_, params_.linkLengthMm,
                         params_.flitBits);
    const double count =
        4.0 * params_.flitBits * link.repeatersPerWire();
    return count * 2.4 / heightUm_;
}

double
AreaModel::driverColumnWidthUm() const
{
    // Output channel drivers: one large driver per wire.
    const double count = 4.0 * params_.flitBits;
    return count * 3.5 / heightUm_;
}

double
AreaModel::controlColumnWidthUm() const
{
    // Credit counters, flow-control state, clocking spine.
    return 800.0 / heightUm_;
}

double
AreaModel::decodeMaskWidthUm() const
{
    // Per input port: 64 2-input XOR cells, a 64-bit decode register,
    // and the port's share of mask logic; plus global mode control.
    const double xor_cells = params_.flitBits * 2.0;   // um^2
    const double reg_cells = params_.flitBits * 2.8;   // um^2
    const double mask_logic = 57.2;                    // um^2
    const double per_port = xor_cells + reg_cells + mask_logic;
    const double control = 153.0;                      // um^2
    const double total = per_port * params_.ports + control;
    return total / heightUm_;
}

AreaBreakdown
AreaModel::breakdown(RouterArch arch) const
{
    AreaBreakdown b;
    b.arch = arch;
    b.heightUm = heightUm_;

    auto add = [&](const std::string &name, double width_um) {
        b.blocks.push_back({name, width_um, width_um * heightUm_});
        b.widthUm += width_um;
    };

    add("input SRAM buffers", sramColumnWidthUm());
    add("crossbar switch", xbarWidthUm());
    add("channel repeaters", repeaterColumnWidthUm());
    add("output drivers", driverColumnWidthUm());
    add("flow control + clocking", controlColumnWidthUm());
    if (arch == RouterArch::Nox)
        add("decode + masking", decodeMaskWidthUm());
    return b;
}

double
AreaModel::noxOverheadFraction() const
{
    const double base =
        breakdown(RouterArch::NonSpeculative).areaUm2();
    const double noxa = breakdown(RouterArch::Nox).areaUm2();
    NOX_ASSERT(base > 0.0, "empty floorplan");
    return noxa / base - 1.0;
}

} // namespace nox
