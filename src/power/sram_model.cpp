#include "power/sram_model.hpp"

#include <cmath>

#include "common/log.hpp"

namespace nox {

SramModel::SramModel(const Technology &tech, int words,
                     int bits_per_word)
    : tech_(tech), words_(words), bits_(bits_per_word)
{
    NOX_ASSERT(words > 0 && bits_per_word > 0, "invalid SRAM shape");
}

double
SramModel::readDelayPs() const
{
    // Decode + wordline + bitline + sense chain. For the tiny FIFO
    // macros used here the access time is dominated by the fixed
    // periphery chain; scale weakly (logarithmically) with depth.
    // Calibrated so the 4x64b buffer reads in the paper's 248 ps.
    const double base = 9.0 * tech_.fo4Ps;             // 225 ps
    const double depth_term =
        tech_.fo4Ps * 0.46 * std::log2(static_cast<double>(words_));
    return base + depth_term; // 4 words -> 248 ps
}

double
SramModel::readEnergyPj() const
{
    // Per-bit bitline + sense energy, plus a wordline/decoder term.
    const double bit_fj = tech_.sramAccessEnergyPerBitFj;
    const double array = bit_fj * bits_ * 1e-3; // fJ -> pJ
    const double periphery = 0.12 * array;
    return array + periphery;
}

double
SramModel::writeEnergyPj() const
{
    // Writes drive full-swing bitlines: modestly more than reads.
    return 1.25 * readEnergyPj();
}

double
SramModel::areaUm2() const
{
    const double cells = static_cast<double>(words_) * bits_;
    return cells * tech_.sramBitCellUm2 * tech_.sramArrayOverhead;
}

} // namespace nox
