#include "noc/flit.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace nox {

std::uint64_t
expectedPayload(PacketId packet, std::uint32_t seq)
{
    return mix64(packet * 0x100ULL + seq + 1);
}

std::uint64_t
flitUid(PacketId packet, std::uint32_t seq)
{
    // Packet ids are dense from 1; 8 bits of sequence is plenty since
    // the largest packet in the paper's system is 9 flits.
    NOX_ASSERT(seq < 256, "flit sequence too large for uid encoding");
    return (packet << 8) | seq;
}

WireFlit
WireFlit::fromDesc(const FlitDesc &d)
{
    WireFlit w;
    w.payload = d.payload;
    w.encoded = false;
    w.vc = d.vc;
    w.parts.push_back(d);
    return w;
}

WireFlit
WireFlit::combine(const std::vector<FlitDesc> &inputs)
{
    NOX_ASSERT(!inputs.empty(), "combine needs at least one flit");
    WireFlit w;
    for (const auto &d : inputs) {
        w.payload ^= d.payload;
        w.parts.push_back(d);
    }
    w.encoded = inputs.size() > 1;
    return w;
}

std::uint32_t
wireChecksum(const WireFlit &w)
{
    // CRC-32C (Castagnoli), bitwise over the 64-bit payload plus the
    // link sideband bits (encoded marker, VC tag). Software speed is
    // irrelevant here: the checksum is only computed on fault-
    // protected links, never on the fault-free hot path.
    constexpr std::uint32_t kPoly = 0x82F63B78u; // reflected 0x1EDC6F41
    std::uint32_t crc = 0xFFFFFFFFu;
    const auto feed = [&crc](std::uint8_t byte) {
        crc ^= byte;
        for (int b = 0; b < 8; ++b)
            crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    };
    for (int i = 0; i < 8; ++i)
        feed(static_cast<std::uint8_t>(w.payload >> (8 * i)));
    feed(static_cast<std::uint8_t>(w.encoded ? 1 : 0));
    feed(w.vc);
    return crc ^ 0xFFFFFFFFu;
}

DecodeResult
tryDecodeDiff(const WireFlit &prev, const WireFlit &next)
{
    DecodeResult r;
    if (prev.parts.size() != next.parts.size() + 1) {
        r.fault = DecodeFault::Structural;
        return r;
    }

    const FlitDesc *found = nullptr;
    for (const auto &p : prev.parts) {
        const bool in_next =
            std::any_of(next.parts.begin(), next.parts.end(),
                        [&](const FlitDesc &q) { return q.uid == p.uid; });
        if (!in_next) {
            if (found) {
                r.fault = DecodeFault::Structural;
                return r;
            }
            found = &p;
        }
    }
    if (!found) {
        r.fault = DecodeFault::Structural;
        return r;
    }

    // Integrity: the XOR of the two received values must reproduce the
    // recovered flit's bits exactly — this is the paper's decoding
    // property (A^B^C) ^ (B^C) == A, checked on real payload bits. On
    // mismatch the hardware would still compute prev^next, so that is
    // what the recovered flit carries (corruption propagates instead
    // of being silently repaired from bookkeeping).
    r.flit = *found;
    const std::uint64_t recovered = prev.payload ^ next.payload;
    if (recovered != found->payload) {
        r.flit->payload = recovered;
        r.fault = DecodeFault::PayloadMismatch;
    }
    return r;
}

FlitDesc
decodeDiff(const WireFlit &prev, const WireFlit &next)
{
    const DecodeResult r = tryDecodeDiff(prev, next);
    NOX_ASSERT(r.fault != DecodeFault::Structural,
               "decode requires |prev| == |next| + 1 with one unmatched "
               "flit, got ",
               prev.parts.size(), " and ", next.parts.size());
    NOX_ASSERT(r.fault != DecodeFault::PayloadMismatch,
               "XOR decode payload mismatch for packet ",
               r.flit->packet);
    return *r.flit;
}

} // namespace nox
