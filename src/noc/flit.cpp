#include "noc/flit.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace nox {

std::uint64_t
expectedPayload(PacketId packet, std::uint32_t seq)
{
    return mix64(packet * 0x100ULL + seq + 1);
}

std::uint64_t
flitUid(PacketId packet, std::uint32_t seq)
{
    // Packet ids are dense from 1; 8 bits of sequence is plenty since
    // the largest packet in the paper's system is 9 flits.
    NOX_ASSERT(seq < 256, "flit sequence too large for uid encoding");
    return (packet << 8) | seq;
}

WireFlit
WireFlit::fromDesc(const FlitDesc &d)
{
    WireFlit w;
    w.payload = d.payload;
    w.encoded = false;
    w.vc = d.vc;
    w.parts.push_back(d);
    return w;
}

WireFlit
WireFlit::combine(const std::vector<FlitDesc> &inputs)
{
    NOX_ASSERT(!inputs.empty(), "combine needs at least one flit");
    WireFlit w;
    for (const auto &d : inputs) {
        w.payload ^= d.payload;
        w.parts.push_back(d);
    }
    w.encoded = inputs.size() > 1;
    return w;
}

FlitDesc
decodeDiff(const WireFlit &prev, const WireFlit &next)
{
    NOX_ASSERT(prev.parts.size() == next.parts.size() + 1,
               "decode requires |prev| == |next| + 1, got ",
               prev.parts.size(), " and ", next.parts.size());

    const FlitDesc *found = nullptr;
    for (const auto &p : prev.parts) {
        const bool in_next =
            std::any_of(next.parts.begin(), next.parts.end(),
                        [&](const FlitDesc &q) { return q.uid == p.uid; });
        if (!in_next) {
            NOX_ASSERT(!found, "decode found two unmatched flits");
            found = &p;
        }
    }
    NOX_ASSERT(found, "decode found no unmatched flit");

    // Integrity: the XOR of the two received values must reproduce the
    // recovered flit's bits exactly — this is the paper's decoding
    // property (A^B^C) ^ (B^C) == A, checked on real payload bits.
    NOX_ASSERT((prev.payload ^ next.payload) == found->payload,
               "XOR decode payload mismatch for packet ", found->packet);
    return *found;
}

} // namespace nox
