#include "noc/snapshot_codec.hpp"

namespace nox::snap {

void
writeFlitDesc(Writer &w, const FlitDesc &d)
{
    w.u64(d.uid);
    w.u64(d.packet);
    w.u32(d.seq);
    w.u32(d.packetSize);
    w.i32(d.src);
    w.i32(d.dest);
    w.u64(d.payload);
    w.u64(d.createCycle);
    w.u64(d.injectCycle);
    w.u8(static_cast<std::uint8_t>(d.cls));
    w.u8(d.vc);
    w.u32(d.flowSeq);
}

FlitDesc
readFlitDesc(Reader &r)
{
    FlitDesc d;
    d.uid = r.u64();
    d.packet = r.u64();
    d.seq = r.u32();
    d.packetSize = r.u32();
    d.src = r.i32();
    d.dest = r.i32();
    d.payload = r.u64();
    d.createCycle = r.u64();
    d.injectCycle = r.u64();
    d.cls = static_cast<TrafficClass>(r.u8());
    d.vc = r.u8();
    d.flowSeq = r.u32();
    return d;
}

void
writeWireFlit(Writer &w, const WireFlit &f)
{
    w.u64(f.payload);
    w.boolean(f.encoded);
    w.u8(f.vc);
    w.u32(f.crc);
    w.u64(f.parts.size());
    for (const FlitDesc &d : f.parts)
        writeFlitDesc(w, d);
}

WireFlit
readWireFlit(Reader &r)
{
    WireFlit f;
    f.payload = r.u64();
    f.encoded = r.boolean();
    f.vc = r.u8();
    f.crc = r.u32();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i)
        f.parts.push_back(readFlitDesc(r));
    return f;
}

void
writeFlitFifo(Writer &w, const FlitFifo &f)
{
    w.u64(f.capacity());
    w.u64(f.size());
    for (std::size_t i = 0; i < f.size(); ++i)
        writeWireFlit(w, f.at(i));
}

void
readFlitFifo(Reader &r, FlitFifo &f)
{
    if (r.u64() != f.capacity())
        r.fail("FIFO capacity mismatch (wrong geometry)");
    while (!f.empty())
        f.pop();
    const std::uint64_t n = r.u64();
    if (n > f.capacity())
        r.fail("FIFO occupancy exceeds capacity");
    for (std::uint64_t i = 0; i < n; ++i)
        f.push(readWireFlit(r));
}

void
writeEnergyEvents(Writer &w, const EnergyEvents &e)
{
    w.u64(e.bufferWrites);
    w.u64(e.bufferReads);
    w.u64(e.xbarInputDrives);
    w.u64(e.xbarOutputCycles);
    w.u64(e.linkFlits);
    w.u64(e.linkWastedCycles);
    w.u64(e.localLinkFlits);
    w.u64(e.localLinkWasted);
    w.u64(e.arbDecisions);
    w.u64(e.allocEvals);
    w.u64(e.decodeOps);
    w.u64(e.decodeLatches);
    w.u64(e.maskUpdates);
    w.u64(e.abortCycles);
    w.u64(e.misspecCycles);
    w.u64(e.cycles);
}

EnergyEvents
readEnergyEvents(Reader &r)
{
    EnergyEvents e;
    e.bufferWrites = r.u64();
    e.bufferReads = r.u64();
    e.xbarInputDrives = r.u64();
    e.xbarOutputCycles = r.u64();
    e.linkFlits = r.u64();
    e.linkWastedCycles = r.u64();
    e.localLinkFlits = r.u64();
    e.localLinkWasted = r.u64();
    e.arbDecisions = r.u64();
    e.allocEvals = r.u64();
    e.decodeOps = r.u64();
    e.decodeLatches = r.u64();
    e.maskUpdates = r.u64();
    e.abortCycles = r.u64();
    e.misspecCycles = r.u64();
    e.cycles = r.u64();
    return e;
}

void
writeFaultStats(Writer &w, const FaultStats &s)
{
    w.u64(s.faultsInjected);
    w.u64(s.bitflipsInjected);
    w.u64(s.dropsInjected);
    w.u64(s.creditsLostInjected);
    w.u64(s.faultsDetected);
    w.u64(s.retransmissions);
    w.u64(s.creditResyncs);
    w.u64(s.corruptedEscapes);
    w.u64(s.decodeMismatches);
    w.u64(s.hardLinkFaults);
    w.u64(s.hardRouterFaults);
    w.u64(s.tableRebuilds);
    w.u64(s.flitsLostHard);
    w.u64(s.packetsLostHard);
    w.u64(s.e2eRetransmits);
    w.u64(s.dupSuppressed);
    w.u64(s.deliveryFailures);
    w.u64(s.linkHeals);
    w.u64(s.routerHeals);
    w.u64(s.unreachableRejected);
    w.u64(s.flowReorders);
    w.u64(s.ageAlarms);
}

void
readFaultStats(Reader &r, FaultStats &s)
{
    s.faultsInjected = r.u64();
    s.bitflipsInjected = r.u64();
    s.dropsInjected = r.u64();
    s.creditsLostInjected = r.u64();
    s.faultsDetected = r.u64();
    s.retransmissions = r.u64();
    s.creditResyncs = r.u64();
    s.corruptedEscapes = r.u64();
    s.decodeMismatches = r.u64();
    s.hardLinkFaults = r.u64();
    s.hardRouterFaults = r.u64();
    s.tableRebuilds = r.u64();
    s.flitsLostHard = r.u64();
    s.packetsLostHard = r.u64();
    s.e2eRetransmits = r.u64();
    s.dupSuppressed = r.u64();
    s.deliveryFailures = r.u64();
    s.linkHeals = r.u64();
    s.routerHeals = r.u64();
    s.unreachableRejected = r.u64();
    s.flowReorders = r.u64();
    s.ageAlarms = r.u64();
}

void
writeNetworkStats(Writer &w, const NetworkStats &s)
{
    tag(w, fourcc("STAT"));
    w.u64(s.packetsInjected);
    w.u64(s.flitsInjected);
    w.u64(s.packetsEjected);
    w.u64(s.flitsEjected);
    w.u64(s.measureStart);
    w.u64(s.measureEnd);
    s.latency.serialize(w);
    s.netLatency.serialize(w);
    s.latencyHist.serialize(w);
    for (const SampleStats &c : s.latencyByClass)
        c.serialize(w);
    w.u64(s.packetsMeasured);
    w.u64(s.packetsMeasuredDone);
    w.u64(s.flitsEjectedInWindow);
    w.u64(s.flitsCreatedInWindow);
    w.u64(s.maxSourceQueueFlits);
    writeFaultStats(w, s.faults);
}

void
readNetworkStats(Reader &r, NetworkStats &s)
{
    checkTag(r, fourcc("STAT"));
    s.packetsInjected = r.u64();
    s.flitsInjected = r.u64();
    s.packetsEjected = r.u64();
    s.flitsEjected = r.u64();
    s.measureStart = r.u64();
    s.measureEnd = r.u64();
    s.latency.restore(r);
    s.netLatency.restore(r);
    s.latencyHist.restore(r);
    for (SampleStats &c : s.latencyByClass)
        c.restore(r);
    s.packetsMeasured = r.u64();
    s.packetsMeasuredDone = r.u64();
    s.flitsEjectedInWindow = r.u64();
    s.flitsCreatedInWindow = r.u64();
    s.maxSourceQueueFlits = static_cast<std::size_t>(r.u64());
    readFaultStats(r, s.faults);
}

} // namespace nox::snap
