#include "noc/network.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace nox {

Network::Network(const NetworkParams &params, RouterFactory factory)
    : params_(params),
      mesh_(params.width, params.height, params.concentration)
{
    NOX_ASSERT(factory, "router factory required");

    // Router radix follows the topology's concentration factor.
    RouterParams rp = params.router;
    rp.numPorts = mesh_.radix();
    params_.router = rp;

    const int nr = mesh_.numRouters();
    const int nn = mesh_.numNodes();
    routers_.reserve(static_cast<std::size_t>(nr));
    nics_.reserve(static_cast<std::size_t>(nn));

    for (NodeId r = 0; r < nr; ++r)
        routers_.push_back(factory(r, mesh_, params.route, rp));
    // Sinks hold one buffer's worth per VC (per-VC output credits
    // must all be backed by real sink capacity).
    const int sink_depth = params.sinkBufferDepth * rp.vcCount;
    for (NodeId node = 0; node < nn; ++node)
        nics_.push_back(std::make_unique<Nic>(node, sink_depth));

    // Wire inter-router links: for each router, connect the four mesh
    // outputs to the neighbour's opposite input, and the matching
    // credit return path.
    for (NodeId r = 0; r < nr; ++r) {
        Router &router = *routers_[r];
        for (int port = kPortNorth; port <= kPortWest; ++port) {
            const NodeId nb = mesh_.neighbor(r, port);
            if (nb == kInvalidNode)
                continue;
            const int back = Mesh::oppositePort(port);

            Router::FlitTarget ft;
            ft.router = routers_[nb].get();
            ft.port = back;
            router.connectOutput(port, ft, rp.bufferDepth);

            Router::CreditTarget ct;
            ct.router = routers_[nb].get();
            ct.port = back; // our input `port` is fed by nb's output
            router.connectInputCredit(port, ct);
        }
    }
    // Attach each terminal's NIC to its router's local port.
    for (NodeId node = 0; node < nn; ++node) {
        nics_[node]->connectRouter(
            routers_[mesh_.routerOf(node)].get(),
            mesh_.localPortOf(node));
        nics_[node]->setListener(this);
    }
}

void
Network::addSource(std::unique_ptr<TrafficSource> source)
{
    NOX_ASSERT(source, "null traffic source");
    sources_.push_back(std::move(source));
}

void
Network::step()
{
    // 1. Traffic generation for this cycle.
    if (sourcesEnabled_) {
        for (auto &src : sources_)
            src->tick(now_, *this);
    }

    // 2. NIC injection (stages flits into router local inputs).
    for (auto &nic : nics_)
        nic->evaluateInject(now_);

    // 3. Router evaluation (order-independent; staged effects only).
    for (auto &r : routers_)
        r->evaluate(now_);

    // 4. NIC sinks drain their committed FIFOs.
    for (auto &nic : nics_)
        nic->evaluateSink(now_);

    // 5. Commit staged arrivals and credits everywhere.
    for (auto &r : routers_) {
        r->energy().cycles += 1;
        r->commit();
    }
    for (auto &nic : nics_)
        nic->commit();

    ++now_;
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
Network::drain(Cycle limit)
{
    const Cycle deadline = now_ + limit;
    while (packetsInFlight() > 0 && now_ < deadline)
        step();
    return packetsInFlight() == 0;
}

void
Network::setMeasurementWindow(Cycle start, Cycle end)
{
    NOX_ASSERT(start < end, "empty measurement window");
    stats_.measureStart = start;
    stats_.measureEnd = end;
}

std::uint64_t
Network::packetsInFlight() const
{
    return stats_.packetsInjected - stats_.packetsEjected;
}

EnergyEvents
Network::totalEnergyEvents() const
{
    EnergyEvents total;
    for (const auto &r : routers_)
        total.merge(r->energy());
    for (const auto &nic : nics_)
        total.merge(nic->energy());
    return total;
}

PacketId
Network::injectPacket(NodeId src, NodeId dst, int num_flits, Cycle now,
                      TrafficClass cls)
{
    NOX_ASSERT(src >= 0 && src < numNodes(), "bad source node ", src);
    NOX_ASSERT(dst >= 0 && dst < numNodes(), "bad dest node ", dst);
    NOX_ASSERT(src != dst, "self-addressed packet");
    NOX_ASSERT(num_flits >= 1, "packet needs at least one flit");

    const PacketId id = nextPacket_++;
    std::vector<FlitDesc> flits;
    flits.reserve(static_cast<std::size_t>(num_flits));
    for (int s = 0; s < num_flits; ++s) {
        FlitDesc d;
        d.uid = flitUid(id, static_cast<std::uint32_t>(s));
        d.packet = id;
        d.seq = static_cast<std::uint32_t>(s);
        d.packetSize = static_cast<std::uint32_t>(num_flits);
        d.src = src;
        d.dest = dst;
        d.payload = expectedPayload(id, static_cast<std::uint32_t>(s));
        d.createCycle = now;
        d.cls = cls;
        // Static VC assignment by class (request/reply isolation).
        if (params_.router.vcCount > 1 && cls == TrafficClass::Reply)
            d.vc = 1;
        flits.push_back(d);
    }
    nics_[src]->enqueuePacket(std::move(flits));

    stats_.packetsInjected += 1;
    stats_.flitsInjected += static_cast<std::uint64_t>(num_flits);
    if (now >= stats_.measureStart && now < stats_.measureEnd) {
        stats_.packetsMeasured += 1;
        stats_.flitsCreatedInWindow +=
            static_cast<std::uint64_t>(num_flits);
    }
    stats_.maxSourceQueueFlits =
        std::max(stats_.maxSourceQueueFlits,
                 nics_[src]->sourceQueueFlits());
    return id;
}

std::size_t
Network::sourceQueueFlits(NodeId node) const
{
    return nics_[node]->sourceQueueFlits();
}

void
Network::onFlitDelivered(NodeId, const FlitDesc &, Cycle now)
{
    stats_.flitsEjected += 1;
    if (now >= stats_.measureStart && now < stats_.measureEnd)
        stats_.flitsEjectedInWindow += 1;
}

void
Network::onPacketCompleted(NodeId, const FlitDesc &last_flit,
                           Cycle head_inject, Cycle now)
{
    stats_.packetsEjected += 1;
    const Cycle created = last_flit.createCycle;
    if (created >= stats_.measureStart && created < stats_.measureEnd) {
        const double lat = static_cast<double>(now - created) + 1.0;
        stats_.latency.add(lat);
        stats_.latencyHist.add(lat);
        stats_.netLatency.add(
            static_cast<double>(now - head_inject) + 1.0);
        stats_.latencyByClass[static_cast<int>(last_flit.cls)].add(lat);
        stats_.packetsMeasuredDone += 1;
    }
}

} // namespace nox
