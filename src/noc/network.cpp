#include "noc/network.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <string_view>

#include "common/log.hpp"
#include "noc/flit_arena.hpp"
#include "noc/snapshot_codec.hpp"

namespace nox {

std::string
DrainReport::summary() const
{
    std::ostringstream os;
    if (drained) {
        os << "drained by cycle " << stoppedAt;
        return os.str();
    }
    os << "drain timed out at cycle " << stoppedAt << " with "
       << stalledPackets << " stalled packet(s)";
    if (undeliverablePackets > 0) {
        os << " (plus " << undeliverablePackets
           << " written off as undeliverable after hard faults)";
    }
    os << "; ";
    os << busyRouters.size() << " busy router(s)";
    if (!busyRouters.empty()) {
        os << " [";
        for (std::size_t i = 0; i < busyRouters.size(); ++i)
            os << (i ? " " : "") << busyRouters[i];
        os << "]";
    }
    os << ", " << busyNics.size() << " busy NIC(s)";
    if (!busyNics.empty()) {
        os << " [";
        for (std::size_t i = 0; i < busyNics.size(); ++i)
            os << (i ? " " : "") << busyNics[i];
        os << "]";
    }
    if (!partialPackets.empty()) {
        os << "; partially delivered:";
        for (const auto &p : partialPackets)
            os << " packet " << p.packet << " (" << p.flitsArrived
               << " flits at node " << p.node << ")";
    }
    return os.str();
}

const char *
schedulingModeName(SchedulingMode mode)
{
    switch (mode) {
      case SchedulingMode::AlwaysTick:
        return "alwaystick";
      case SchedulingMode::ActivityDriven:
        return "activity";
      case SchedulingMode::EquivalenceCheck:
        return "equivalence";
    }
    panic("unknown scheduling mode");
}

SchedulingMode
parseSchedulingMode(const char *name)
{
    const std::string_view n(name);
    if (n == "alwaystick" || n == "always")
        return SchedulingMode::AlwaysTick;
    if (n == "activity" || n == "scheduled")
        return SchedulingMode::ActivityDriven;
    if (n == "equivalence" || n == "check")
        return SchedulingMode::EquivalenceCheck;
    fatal("unknown scheduling mode '", n,
          "' (alwaystick | activity | equivalence)");
}

Network::Network(const NetworkParams &params, RouterFactory factory)
    : params_(params),
      mesh_(params.width, params.height, params.concentration),
      table_(mesh_, params.routing), faultMap_(mesh_)
{
    NOX_ASSERT(factory, "router factory required");

    // Router radix follows the topology's concentration factor.
    RouterParams rp = params.router;
    rp.numPorts = mesh_.radix();
    params_.router = rp;

    const int nr = mesh_.numRouters();
    const int nn = mesh_.numNodes();
    routers_.reserve(static_cast<std::size_t>(nr));
    nics_.reserve(static_cast<std::size_t>(nn));

    for (NodeId r = 0; r < nr; ++r)
        routers_.push_back(factory(r, mesh_, table_, rp));
    // Sinks hold one buffer's worth per VC (per-VC output credits
    // must all be backed by real sink capacity).
    const int sink_depth = params.sinkBufferDepth * rp.vcCount;
    for (NodeId node = 0; node < nn; ++node)
        nics_.push_back(std::make_unique<Nic>(node, sink_depth));

    // Wire inter-router links: for each router, connect the four mesh
    // outputs to the neighbour's opposite input, and the matching
    // credit return path.
    for (NodeId r = 0; r < nr; ++r) {
        Router &router = *routers_[r];
        for (int port = kPortNorth; port <= kPortWest; ++port) {
            const NodeId nb = mesh_.neighbor(r, port);
            if (nb == kInvalidNode)
                continue;
            const int back = Mesh::oppositePort(port);

            Router::FlitTarget ft;
            ft.router = routers_[nb].get();
            ft.port = back;
            router.connectOutput(port, ft, rp.bufferDepth);

            Router::CreditTarget ct;
            ct.router = routers_[nb].get();
            ct.port = back; // our input `port` is fed by nb's output
            router.connectInputCredit(port, ct);
        }
    }
    // Attach each terminal's NIC to its router's local port.
    for (NodeId node = 0; node < nn; ++node) {
        nics_[node]->connectRouter(
            routers_[mesh_.routerOf(node)].get(),
            mesh_.localPortOf(node));
        nics_[node]->setListener(this);
    }

    // Fault injection: one shared injector, counters bound to this
    // network's stats so the fault schedule and its detection record
    // are part of the cross-kernel equivalence contract.
    if (params.faults.enabled) {
        faults_ = std::make_unique<FaultInjector>(params.faults);
        faults_->bindStats(&stats_.faults);
        for (auto &r : routers_)
            r->attachFaults(faults_.get());
        for (auto &nic : nics_)
            nic->attachFaults(faults_.get());
        faults_->planHardFaults(mesh_);
        // Config-time (cycle-0) kills apply before any traffic
        // exists: clean topology surgery, no losses, no degradation.
        if (faults_->hardFaultsPending())
            applyDueHardFaults(/*at_construction=*/true);
        // End-to-end transport: source-side retransmission windows at
        // the NICs plus destination-side duplicate suppression.
        if (params.faults.e2eTransport) {
            transport_ = std::make_unique<E2eTransport>(
                params.faults.e2eTimeout, params.faults.e2eRetryLimit,
                params.faults.e2eAckDelay);
            for (auto &nic : nics_)
                nic->attachTransport(transport_.get());
        }
    }

    // Active-set bookkeeping: everything starts armed (the first
    // cycles retire whatever is genuinely idle). The flag vectors are
    // sized once here and never reallocated, so the bound pointers
    // stay valid for the network's lifetime.
    routerActive_.assign(static_cast<std::size_t>(nr), 1);
    nicActive_.assign(static_cast<std::size_t>(nn), 1);
    scratchRouters_.reserve(static_cast<std::size_t>(nr));
    for (NodeId r = 0; r < nr; ++r)
        routers_[r]->bindActivity(&routerActive_[r]);
    for (NodeId node = 0; node < nn; ++node)
        nics_[node]->bindActivity(&nicActive_[node]);

    // Observability: the recorder and sampler are passive observers —
    // they read committed state and counters but never mutate router,
    // NIC, RNG or stats state, so enabling them cannot change a run.
    if (params.obs.trace.enabled) {
        tracer_ = std::make_unique<TraceRecorder>(params.obs.trace);
        for (auto &r : routers_)
            r->attachTracer(tracer_.get());
        for (auto &nic : nics_)
            nic->attachTracer(tracer_.get());
        if (faults_)
            faults_->attachTracer(tracer_.get());
        prevRouterActive_ = routerActive_;
        prevNicActive_ = nicActive_;
    }
    if (params.obs.metrics.enabled) {
        metrics_ =
            std::make_unique<MetricsSampler>(params.obs.metrics, nr);
        lastLinkFlits_.assign(static_cast<std::size_t>(nr), 0);
        lastCollisions_.assign(static_cast<std::size_t>(nr), 0);
    }
    if (params.obs.prov.enabled) {
        prov_ = std::make_unique<LatencyProvenance>(params.obs.prov);
        for (auto &r : routers_)
            r->attachProvenance(prov_.get());
        for (auto &nic : nics_)
            nic->attachProvenance(prov_.get());
    }
    // Simulator self-observation: the profiler reads only the host
    // clock, the heartbeat reads committed counters — neither can
    // perturb the run (observer-effect tested like the rest).
    if (params.obs.profile.enabled) {
        profiler_ =
            std::make_unique<PhaseProfiler>(params.obs.profile, nr);
    }
    if (params.obs.telemetry.enabled)
        telemetry_ = std::make_unique<RunTelemetry>(params.obs.telemetry);
    if (params.obs.digest.enabled) {
        digest_ = std::make_unique<DigestLedger>(params.obs.digest);
        digest_->writeHeader(fingerprint());
    }
}

void
Network::killLink(NodeId router, int port, std::vector<FlitDesc> &lost)
{
    if (!faultMap_.killLink(router, port))
        return; // no live link there (edge, or already dead)
    const NodeId nb = mesh_.neighbor(router, port);
    const int back = Mesh::oppositePort(port);
    // Both directions die at once: the forward flit wire and the
    // turnaround credit wire share the failed physical channel.
    routers_[router]->killOutput(port, lost);
    routers_[nb]->killInput(back, lost);
    routers_[nb]->killOutput(back, lost);
    routers_[router]->killInput(port, lost);
}

void
Network::killRouter(NodeId router, std::vector<FlitDesc> &lost)
{
    if (!faultMap_.killRouter(router))
        return; // already dead
    for (int port = kPortNorth; port <= kPortWest; ++port) {
        const NodeId nb = mesh_.neighbor(router, port);
        if (nb == kInvalidNode)
            continue;
        routers_[router]->killOutput(port, lost);
        routers_[router]->killInput(port, lost);
        const int back = Mesh::oppositePort(port);
        routers_[nb]->killOutput(back, lost);
        routers_[nb]->killInput(back, lost);
    }
    // Terminal connections and their NICs die with the router.
    for (int t = 0; t < mesh_.concentration(); ++t) {
        const int lp = kPortLocal + t;
        routers_[router]->killOutput(lp, lost);
        routers_[router]->killInput(lp, lost);
        nics_[mesh_.terminalAt(router, lp)]->killAttached(lost);
    }
}

void
Network::wireLink(NodeId router, int port)
{
    const NodeId nb = mesh_.neighbor(router, port);
    NOX_ASSERT(nb != kInvalidNode, "wiring a link off the mesh edge");
    const int back = Mesh::oppositePort(port);
    const RouterParams &rp = params_.router;

    // Both directions come back together, exactly as wired at
    // construction: forward flit wire plus turnaround credit wire.
    Router::FlitTarget ft;
    ft.router = routers_[nb].get();
    ft.port = back;
    routers_[router]->connectOutput(port, ft, rp.bufferDepth);
    Router::CreditTarget ct;
    ct.router = routers_[nb].get();
    ct.port = back;
    routers_[router]->connectInputCredit(port, ct);

    ft.router = routers_[router].get();
    ft.port = port;
    routers_[nb]->connectOutput(back, ft, rp.bufferDepth);
    ct.router = routers_[router].get();
    ct.port = port;
    routers_[nb]->connectInputCredit(back, ct);

    // Per-port microarchitectural state (VC credit books, lane locks)
    // resets to the pristine post-construction value on both sides.
    routers_[router]->onOutputRevived(port);
    routers_[nb]->onOutputRevived(back);
}

void
Network::healLink(NodeId router, int port, bool record)
{
    if (!faultMap_.healLink(router, port))
        return; // no explicit fault recorded there
    // The explicit fault is lifted either way, but the channel only
    // carries traffic again once neither endpoint router is dead —
    // a dead endpoint keeps the link implicitly down until its own
    // heal re-wires it.
    if (!faultMap_.linkDead(router, port))
        wireLink(router, port);
    if (record)
        faults_->recordHeal(FaultKind::LinkHeal, router, port);
}

void
Network::healRouter(NodeId router, bool record)
{
    if (!faultMap_.healRouter(router))
        return; // not dead
    for (int port = kPortNorth; port <= kPortWest; ++port) {
        const NodeId nb = mesh_.neighbor(router, port);
        if (nb == kInvalidNode)
            continue;
        // Re-wire every implicit casualty of the original kill; links
        // with their own explicit fault, or whose far endpoint is
        // still dead, stay down until their own heal.
        if (!faultMap_.linkDead(router, port))
            wireLink(router, port);
    }
    // Terminal NICs come back quiescent and empty: killAttached()
    // drained their queues, and connectRouter() rebuilds the credit
    // books against the (freshly constructed-state) local port.
    for (int t = 0; t < mesh_.concentration(); ++t) {
        const int lp = kPortLocal + t;
        const NodeId node = mesh_.terminalAt(router, lp);
        nics_[node]->revive();
        nics_[node]->connectRouter(routers_[router].get(), lp);
        routers_[router]->onOutputRevived(lp);
    }
    if (record)
        faults_->recordHeal(FaultKind::RouterHeal, router, -1);
}

void
Network::applyDueHardFaults(bool at_construction)
{
    std::vector<FaultInjector::HardFault> due =
        faults_->takeDueHardFaults(now_);
    if (due.empty())
        return;

    std::vector<FlitDesc> lost;
    for (const auto &h : due) {
        switch (h.kind) {
          case FaultKind::RouterDead:
            killRouter(h.router, lost);
            break;
          case FaultKind::LinkDead:
            killLink(h.router, h.port, lost);
            break;
          case FaultKind::RouterHeal:
            healRouter(h.router);
            break;
          case FaultKind::LinkHeal:
            healLink(h.router, h.port);
            break;
          default:
            panic("soft fault kind in the hard-fault schedule");
        }
    }

    // A heal changes the topology exactly like a kill: the table
    // rebuild below (toward DOR as the fault map empties) can orphan
    // in-flight flits on now-forbidden turns, so the purge fixpoint
    // runs for heal-only batches too.

    table_.rebuild(faultMap_);
    stats_.faults.tableRebuilds += 1;
    if (tracer_) {
        tracer_->record(TraceEventKind::TableRebuild, kInvalidNode, -1,
                        table_.rebuilds(),
                        static_cast<std::uint32_t>(due.size()));
    }
    if (at_construction)
        return; // nothing in flight; routers stay pristine

    // Mid-run: every router drops wormhole/reservation state that the
    // new topology may have invalidated, and enters degraded mode.
    for (auto &r : routers_)
        r->onTableRebuild();

    // Purge fixpoint: a packet is condemned once any of its flits is
    // lost or its destination became unreachable from wherever the
    // flit currently sits; removing flits can condemn further packets
    // (NoX full-port drops take clean bystanders with them), so sweep
    // until no new casualties appear. Losses are deduplicated by flit
    // uid — the same flit can surface twice (e.g. once inside a
    // downstream decode chain and once in an upstream buffer copy).
    std::unordered_set<std::uint64_t> lostUids;
    std::unordered_map<PacketId, NodeId> lostPackets; // id -> dest
    // The first sweep must run even when the dying components held no
    // flits: live routers elsewhere can still hold traffic for
    // destinations the fault just disconnected.
    std::vector<FlitDesc> pending = std::move(lost);
    do {
        for (const FlitDesc &d : pending) {
            if (lostUids.insert(d.uid).second)
                lostPackets.emplace(d.packet, d.dest);
        }
        pending.clear();

        std::vector<FlitDesc> removed;
        auto condemned = [&](NodeId at, int in_port,
                             const FlitDesc &d) {
            if (lostPackets.count(d.packet) != 0)
                return true;
            const int out = table_.lookup(at, d.dest);
            if (out < 0)
                return true; // destination now unreachable from here
            // Stale-epoch guard: a flit already past this input when
            // the table changed may sit on a channel the new table
            // never routes through. If its next hop would be the
            // down-then-up turn up-down routing forbids, its wait
            // edge is outside the verified CDG and can deadlock the
            // mesh — write it off. Every surviving flit's future
            // waits are table edges, covered by the acyclicity check.
            if (in_port >= kPortNorth && in_port <= kPortWest &&
                out >= kPortNorth && out <= kPortWest) {
                const NodeId from = mesh_.neighbor(at, in_port);
                const NodeId to = mesh_.neighbor(at, out);
                if (from != kInvalidNode && to != kInvalidNode &&
                    table_.forbiddenTurn(from, at, to))
                    return true;
            }
            return false;
        };
        for (NodeId r = 0; r < numRouters(); ++r)
            routers_[r]->purgeFlits(condemned, removed);
        for (NodeId n = 0; n < numNodes(); ++n)
            nics_[n]->purgeCondemned(condemned, removed);
        for (const FlitDesc &d : removed) {
            if (!lostUids.count(d.uid))
                pending.push_back(d);
        }
    } while (!pending.empty());

    stats_.faults.flitsLostHard += lostUids.size();
    if (prov_) {
        // Written-off flits will never be delivered: their open spans
        // are abandoned (they were never measured anyway).
        std::vector<std::uint64_t> uids(lostUids.begin(),
                                        lostUids.end());
        prov_->forgetFlits(uids);
    }
    if (transport_) {
        // With the E2E transport on, a purged wire packet is a
        // recoverable loss, not a write-off: the source window still
        // holds the logical packet and will retransmit on timeout.
        // Only the destination's partial-arrival record of this
        // attempt is scrubbed (the attempt can never complete).
        for (const auto &[packet, dest] : lostPackets)
            nics_[dest]->forgetArrived(packet);
    } else {
        stats_.faults.packetsLostHard += lostPackets.size();
        for (const auto &[packet, dest] : lostPackets) {
            nics_[dest]->forgetArrived(packet);
            ageInFlight_.erase(packet);
        }
    }
}

void
Network::checkPacketAges()
{
    const Cycle limit = faults_->params().packetAgeLimit;
    while (!ageQueue_.empty()) {
        const auto &[packet, created] = ageQueue_.front();
        if (!ageInFlight_.count(packet)) {
            ageQueue_.pop_front(); // delivered or written off
            continue;
        }
        if (now_ - created <= limit)
            break; // everyone behind is younger still
        stats_.faults.ageAlarms += 1;
        if (tracer_ && !ageDumpLatched_) {
            // Livelock alarm: latch the flight recorder exactly once.
            ageDumpLatched_ = true;
            tracer_->triggerFlightDump("age-limit", {});
        }
        ageQueue_.pop_front(); // alarm once per packet
    }
}

void
Network::addSource(std::unique_ptr<TrafficSource> source)
{
    NOX_ASSERT(source, "null traffic source");
    sources_.push_back(std::move(source));
}

void
Network::step()
{
    if (profiler_)
        profiler_->beginStep();
    switch (params_.schedulingMode) {
      case SchedulingMode::AlwaysTick:
        stepAlwaysTick();
        break;
      case SchedulingMode::ActivityDriven:
        stepScheduled(false);
        break;
      case SchedulingMode::EquivalenceCheck:
        stepScheduled(true);
        break;
      default:
        panic("unknown scheduling mode");
    }
    // Deliberate-divergence knob (test/debug only): fires after the
    // kernel committed the step ending at now_, before the digest
    // stride below — so the first differing stride carries exactly
    // this cycle (see NetworkParams::debugPerturbCycle).
    if (params_.debugPerturbCycle != 0 &&
        now_ == params_.debugPerturbCycle) {
        routers_[static_cast<std::size_t>(params_.debugPerturbRouter)]
            ->debugPerturb();
    }
    if (digest_ && digest_->due(now_)) {
        ProfScope ps(profiler_.get(), SimPhase::ObsFlush);
        digest_->record(computeDigestStride(digest_->scratch()));
    }
    if (telemetry_ && telemetry_->due(now_)) {
        ProfScope ps(profiler_.get(), SimPhase::ObsFlush);
        emitTelemetry();
    }
    if (profiler_)
        profiler_->endStep();
}

void
Network::stepAlwaysTick()
{
    PhaseProfiler *const prof = profiler_.get();

    // 0. Fault-injection clock: draws during this cycle key off now_.
    if (faults_) {
        ProfScope ps(prof, SimPhase::Scheduler);
        faults_->beginCycle(now_);
        if (faults_->hardFaultsPending())
            applyDueHardFaults(/*at_construction=*/false);
        if (faults_->params().packetAgeLimit > 0)
            checkPacketAges();
        if (transport_)
            transport_->sweep(now_, *this);
    }
    if (tracer_) {
        ProfScope ps(prof, SimPhase::ObsFlush);
        tracer_->beginCycle(now_);
    }

    // 1. Traffic generation for this cycle.
    if (sourcesEnabled_) {
        ProfScope ps(prof, SimPhase::TrafficInject);
        for (auto &src : sources_)
            src->tick(now_, *this);
    }

    // 1b. Link-layer maintenance (retransmissions, credit watchdog)
    // runs before any router reads its committed state, so a
    // retransmitted flit is staged exactly like a first transmission.
    if (faults_) {
        ProfScope ps(prof, SimPhase::LinkRetry);
        for (auto &r : routers_)
            r->evaluateLink(now_);
    }

    // 2. NIC injection (stages flits into router local inputs).
    {
        ProfScope ps(prof, SimPhase::TrafficInject);
        for (auto &nic : nics_)
            nic->evaluateInject(now_);
    }

    // 3. Router evaluation (order-independent; staged effects only).
    {
        ProfScope ps(prof, SimPhase::RouterEvaluate);
        for (auto &r : routers_)
            r->evaluate(now_);
    }
    if (prof)
        prof->countEvalsAll();

    // 4. NIC sinks drain their committed FIFOs.
    {
        ProfScope ps(prof, SimPhase::NicEject);
        for (auto &nic : nics_)
            nic->evaluateSink(now_);
    }

    // 5. Commit staged arrivals and credits everywhere.
    {
        ProfScope ps(prof, SimPhase::Scheduler);
        for (auto &r : routers_) {
            r->energy().cycles += 1;
            r->commit();
        }
        for (NodeId n = 0; n < numNodes(); ++n) {
            nics_[n]->commit();
            sampleSourceQueue(n);
        }
        ++now_;
    }
    if (metrics_ && metrics_->windowEnds(now_)) {
        ProfScope ps(prof, SimPhase::ObsFlush);
        sampleMetricsWindow();
    }
    if (checkpointInterval_ != 0 && now_ % checkpointInterval_ == 0 &&
        checkpointHook_) {
        ProfScope ps(prof, SimPhase::Checkpoint);
        checkpointHook_(*this);
        if (telemetry_)
            telemetry_->noteCheckpoint(now_);
    }
}

void
Network::stepScheduled(bool check)
{
    PhaseProfiler *const prof = profiler_.get();
    const int nr = numRouters();
    const int nn = numNodes();

    // Equivalence mode: every retired component must still honour the
    // quiescence contract at the start of the cycle. Because a
    // retired component's flag is only re-set by staging, this also
    // proves (inductively) that ticking it last cycle was a no-op.
    if (check) {
        ProfScope ps(prof, SimPhase::Scheduler);
        for (NodeId r = 0; r < nr; ++r) {
            NOX_ASSERT(routerActive_[r] || routers_[r]->quiescent(),
                       "retired router ", r, " is not quiescent");
        }
        for (NodeId n = 0; n < nn; ++n) {
            NOX_ASSERT(nicActive_[n] || nics_[n]->quiescent(),
                       "retired NIC ", n, " is not quiescent");
        }
    }

    // 0. Fault-injection clock (see stepAlwaysTick). Hard faults and
    // the age sweep run identically under every kernel — they read
    // and mutate committed state only, before any evaluation.
    if (faults_) {
        ProfScope ps(prof, SimPhase::Scheduler);
        faults_->beginCycle(now_);
        if (faults_->hardFaultsPending())
            applyDueHardFaults(/*at_construction=*/false);
        if (faults_->params().packetAgeLimit > 0)
            checkPacketAges();
        if (transport_)
            transport_->sweep(now_, *this);
    }
    if (tracer_) {
        ProfScope ps(prof, SimPhase::ObsFlush);
        tracer_->beginCycle(now_);
        traceWakes();
    }

    // 1. Traffic generation always runs: sources draw from their RNG
    // every cycle regardless of kernel, so both kernels see the same
    // injection sequence. injectPacket() re-arms the target NIC.
    if (sourcesEnabled_) {
        ProfScope ps(prof, SimPhase::TrafficInject);
        for (auto &src : sources_)
            src->tick(now_, *this);
    }

    // 1b. Link-layer maintenance over the active set. Retired routers
    // are guaranteed a no-op here (quiescent() covers retry entries
    // and owed watchdog credits), so skipping them is exact.
    if (faults_) {
        ProfScope ps(prof, SimPhase::LinkRetry);
        for (NodeId r = 0; r < nr; ++r) {
            if (routerActive_[r] || check)
                routers_[r]->evaluateLink(now_);
        }
    }

    // 2. NIC injection for the active set (live flags: a NIC armed by
    // this cycle's traffic injects this cycle, as in always-tick).
    {
        ProfScope ps(prof, SimPhase::TrafficInject);
        for (NodeId n = 0; n < nn; ++n) {
            if (nicActive_[n] || check)
                nics_[n]->evaluateInject(now_);
        }
    }

    // 3. Router evaluation over a snapshot of the active set: a
    // router woken mid-phase by a staged flit starts evaluating next
    // cycle — its staged arrival is latched by this cycle's commit,
    // exactly as under always-tick where evaluation reads committed
    // state only.
    {
        ProfScope ps(prof, SimPhase::RouterEvaluate);
        scratchRouters_.clear();
        for (NodeId r = 0; r < nr; ++r) {
            if (routerActive_[r] || check)
                scratchRouters_.push_back(r);
        }
        for (NodeId r : scratchRouters_)
            routers_[r]->evaluate(now_);
    }
    if (prof) {
        for (NodeId r : scratchRouters_)
            prof->countEval(r);
    }

    // 4. NIC sinks (live flags; a sink woken this cycle has an empty
    // committed FIFO, so evaluating it is the same no-op as under
    // always-tick).
    {
        ProfScope ps(prof, SimPhase::NicEject);
        for (NodeId n = 0; n < nn; ++n) {
            if (nicActive_[n] || check)
                nics_[n]->evaluateSink(now_);
        }
    }

    // 5. Commit every component that is (or became) active this
    // cycle, then retire those that report quiescent. Clock energy is
    // only charged to committed routers — retired routers are clock
    // gated (equivalence mode charges everyone, like always-tick).
    {
        ProfScope ps(prof, SimPhase::Scheduler);
        for (NodeId r = 0; r < nr; ++r) {
            if (!(routerActive_[r] || check))
                continue;
            routers_[r]->energy().cycles += 1;
            routers_[r]->commit();
            if (routerActive_[r] && routers_[r]->quiescent()) {
                routerActive_[r] = 0;
                if (tracer_) {
                    tracer_->record(TraceEventKind::SchedRetire, r,
                                    -1, 0);
                }
            }
        }
        for (NodeId n = 0; n < nn; ++n) {
            if (!(nicActive_[n] || check))
                continue;
            nics_[n]->commit();
            sampleSourceQueue(n);
            if (nicActive_[n] && nics_[n]->quiescent()) {
                nicActive_[n] = 0;
                if (tracer_) {
                    tracer_->record(TraceEventKind::SchedRetire, n,
                                    -1, 0, 0, true);
                }
            }
        }
        ++now_;
    }
    if (metrics_ && metrics_->windowEnds(now_)) {
        ProfScope ps(prof, SimPhase::ObsFlush);
        sampleMetricsWindow();
    }
    if (checkpointInterval_ != 0 && now_ % checkpointInterval_ == 0 &&
        checkpointHook_) {
        ProfScope ps(prof, SimPhase::Checkpoint);
        checkpointHook_(*this);
        if (telemetry_)
            telemetry_->noteCheckpoint(now_);
    }
}

void
Network::traceWakes()
{
    // A component whose flag went 0 -> 1 since the last cycle's edge
    // scan was woken by some staging (or fresh traffic); record the
    // edge against the cycle it first gets evaluated as active.
    for (NodeId r = 0; r < numRouters(); ++r) {
        if (routerActive_[r] && !prevRouterActive_[r])
            tracer_->record(TraceEventKind::SchedWake, r, -1, 0);
        prevRouterActive_[r] = routerActive_[r];
    }
    for (NodeId n = 0; n < numNodes(); ++n) {
        if (nicActive_[n] && !prevNicActive_[n])
            tracer_->record(TraceEventKind::SchedWake, n, -1, 0, 0,
                            true);
        prevNicActive_[n] = nicActive_[n];
    }
}

void
Network::sampleMetricsWindow()
{
    std::vector<RouterWindowSample> samples;
    samples.reserve(routers_.size());
    for (NodeId r = 0; r < numRouters(); ++r) {
        const Router &router = *routers_[r];
        RouterWindowSample s;
        s.bufferedFlits = router.bufferedFlits();
        const std::uint64_t link = router.energy().linkFlits;
        const std::uint64_t coll = router.xorCollisions();
        s.linkFlits =
            static_cast<std::uint32_t>(link - lastLinkFlits_[r]);
        s.xorCollisions =
            static_cast<std::uint32_t>(coll - lastCollisions_[r]);
        lastLinkFlits_[r] = link;
        lastCollisions_[r] = coll;
        s.retryPending = router.retryPending();
        s.active = routerActive_[r] != 0;
        samples.push_back(s);
    }
    metrics_->recordWindow(now_, std::move(samples), activeRouters(),
                           activeNics());
}

void
Network::finishObservability()
{
    if (metrics_) {
        if (metrics_->openWindowDirty(now_))
            sampleMetricsWindow();
        if (!metrics_->params().jsonlPath.empty())
            metrics_->writeJsonl(metrics_->params().jsonlPath);
    }
    if (tracer_ && !tracer_->params().chromePath.empty()) {
        tracer_->writeChromeTrace(tracer_->params().chromePath,
                                  params_.width,
                                  params_.concentration);
    }
    // End-of-run flight dump: a deterministic input for offline
    // timeline reconstruction (trace_tool analyze) even when no
    // failure trigger fired during the run.
    if (tracer_ && tracer_->params().flightOnExit &&
        !tracer_->flightDumped())
        tracer_->triggerFlightDump("end-of-run", {});
    if (prov_ && !prov_->params().jsonlPath.empty())
        prov_->writeJsonl(prov_->params().jsonlPath);
    if (profiler_) {
        // Derived work counters come from the routers' monotonic
        // energy-event counters — free on the hot path, exact here.
        for (NodeId r = 0; r < numRouters(); ++r) {
            const EnergyEvents &e = routers_[r]->energy();
            profiler_->recordRouterWork(
                r, e.linkFlits + e.localLinkFlits, e.arbDecisions);
        }
        if (!profiler_->params().jsonlPath.empty()) {
            ProfileMeta meta;
            meta.width = params_.width;
            meta.height = params_.height;
            meta.arch = archName(routers_[0]->arch());
            meta.sched = schedulingModeName(params_.schedulingMode);
            profiler_->writeJsonl(profiler_->params().jsonlPath,
                                  meta);
        }
    }
}

void
Network::emitTelemetry()
{
    TelemetrySample s;
    s.cycle = now_;
    s.activeRouters = activeRouters();
    s.activeNics = activeNics();
    s.packetsInFlight = packetsInFlight();
    s.packetsInjected = stats_.packetsInjected;
    s.packetsEjected = stats_.packetsEjected;
    s.faultsInjected = stats_.faults.faultsInjected;
    s.retransmissions = stats_.faults.retransmissions;
    s.e2eRetransmits = stats_.faults.e2eRetransmits;
    s.dupSuppressed = stats_.faults.dupSuppressed;
    s.healsApplied =
        stats_.faults.linkHeals + stats_.faults.routerHeals;
    s.deadEntities = static_cast<std::uint64_t>(
        faultMap_.deadRouterCount() + faultMap_.explicitDeadLinkCount());
    const FlitArenaStats &arena = FlitArena::instance().stats();
    s.arenaLive = arena.live();
    s.arenaGrowths = arena.growths;
    s.checkpointAge = telemetry_->checkpointAge(now_);
    if (digest_) {
        s.digestStrides =
            static_cast<std::int64_t>(digest_->strideCount());
        s.lastDigestCycle = digest_->lastDigestCycle();
    }
    telemetry_->beat(s);
}

int
Network::activeRouters() const
{
    if (params_.schedulingMode == SchedulingMode::AlwaysTick)
        return numRouters();
    return static_cast<int>(std::count(routerActive_.begin(),
                                       routerActive_.end(), 1));
}

int
Network::activeNics() const
{
    if (params_.schedulingMode == SchedulingMode::AlwaysTick)
        return numNodes();
    return static_cast<int>(
        std::count(nicActive_.begin(), nicActive_.end(), 1));
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
Network::drain(Cycle limit)
{
    // Draining with live sources would keep injecting fresh packets
    // and burn the whole cycle limit; suspend them for the duration
    // and restore the caller's setting on exit.
    const bool sources_were_enabled = sourcesEnabled_;
    sourcesEnabled_ = false;
    const Cycle deadline = now_ + limit;
    while (!drainComplete() && now_ < deadline)
        step();
    sourcesEnabled_ = sources_were_enabled;

    drainReport_ = DrainReport{};
    drainReport_.drained = drainComplete();
    drainReport_.stoppedAt = now_;
    drainReport_.packetsInFlight = packetsInFlight();
    drainReport_.stalledPackets = packetsInFlight();
    drainReport_.undeliverablePackets = transport_
        ? stats_.faults.deliveryFailures
        : stats_.faults.packetsLostHard;
    if (!drainReport_.drained) {
        for (NodeId r = 0; r < numRouters(); ++r) {
            if (!routers_[r]->quiescent())
                drainReport_.busyRouters.push_back(r);
        }
        for (NodeId n = 0; n < numNodes(); ++n) {
            if (!nics_[n]->quiescent())
                drainReport_.busyNics.push_back(n);
            for (const auto &[packet, count] :
                 nics_[n]->partialPackets())
                drainReport_.partialPackets.push_back(
                    {n, packet, count});
        }
        // Flight recorder: a drain timeout is exactly the situation
        // the ring exists for — dump the recent event history around
        // the stuck components before anyone tears the network down.
        if (tracer_) {
            tracer_->triggerFlightDump("drain-timeout",
                                       drainReport_.busyRouters);
        }
    }
    return drainReport_.drained;
}

void
Network::setMeasurementWindow(Cycle start, Cycle end)
{
    NOX_ASSERT(start < end, "empty measurement window");
    stats_.measureStart = start;
    stats_.measureEnd = end;
    if (prov_)
        prov_->setMeasurementWindow(start, end);
}

std::uint64_t
Network::packetsInFlight() const
{
    // Hard-fault casualties are accounted losses, not in-flight
    // packets: conservation is ejected + lost == injected. With the
    // E2E transport on, purge casualties stay logically in flight in
    // the source window; only exhausted-retry abandonments count as
    // losses (ejected + deliveryFailures == injected).
    const std::uint64_t accounted = transport_
        ? stats_.faults.deliveryFailures
        : stats_.faults.packetsLostHard;
    return stats_.packetsInjected - stats_.packetsEjected - accounted;
}

bool
Network::drainComplete() const
{
    if (packetsInFlight() != 0)
        return false;
    if (!transport_)
        return true;
    // Exactly-once requires the stale attempts to finish too: every
    // straggler flit must reach its destination door and be dropped
    // there, and every window entry must be acked or abandoned —
    // otherwise a resumed run could deliver a duplicate later.
    if (transport_->windowSize() != 0)
        return false;
    for (const auto &r : routers_) {
        if (!r->quiescent())
            return false;
    }
    for (const auto &nic : nics_) {
        if (!nic->quiescent())
            return false;
    }
    return true;
}

EnergyEvents
Network::totalEnergyEvents() const
{
    EnergyEvents total;
    for (const auto &r : routers_)
        total.merge(r->energy());
    for (const auto &nic : nics_)
        total.merge(nic->energy());
    return total;
}

PacketId
Network::injectPacket(NodeId src, NodeId dst, int num_flits, Cycle now,
                      TrafficClass cls)
{
    NOX_ASSERT(src >= 0 && src < numNodes(), "bad source node ", src);
    NOX_ASSERT(dst >= 0 && dst < numNodes(), "bad dest node ", dst);
    NOX_ASSERT(src != dst, "self-addressed packet");
    NOX_ASSERT(num_flits >= 1, "packet needs at least one flit");

    // Unreachable-destination detection at the injection boundary:
    // the packet is refused and counted, never silently stranded.
    if (!table_.reachable(src, dst)) {
        stats_.faults.unreachableRejected += 1;
        if (tracer_) {
            tracer_->record(TraceEventKind::UnreachableReject, src, -1,
                            static_cast<std::uint64_t>(dst), 0, true);
        }
        return kInvalidPacket;
    }

    const PacketId id = nextPacket_++;
    std::uint32_t flow_seq = 0;
    if (faults_) {
        const std::uint64_t flow =
            (static_cast<std::uint64_t>(src) << 32) |
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst));
        flow_seq = flowNextSeq_[flow]++;
        if (faults_->params().packetAgeLimit > 0) {
            ageQueue_.emplace_back(id, now);
            ageInFlight_.insert(id);
        }
    }
    // Member scratch: one packet's flits are built here every
    // injection, and the NIC copies them into its source queue — no
    // per-packet vector allocation on the steady-state path.
    std::vector<FlitDesc> &flits = scratchInjectFlits_;
    flits.clear();
    flits.reserve(static_cast<std::size_t>(num_flits));
    for (int s = 0; s < num_flits; ++s) {
        FlitDesc d;
        d.uid = flitUid(id, static_cast<std::uint32_t>(s));
        d.packet = id;
        d.seq = static_cast<std::uint32_t>(s);
        d.packetSize = static_cast<std::uint32_t>(num_flits);
        d.src = src;
        d.dest = dst;
        d.payload = expectedPayload(id, static_cast<std::uint32_t>(s));
        d.createCycle = now;
        d.cls = cls;
        d.flowSeq = flow_seq;
        // Static VC assignment by class (request/reply isolation).
        if (params_.router.vcCount > 1 && cls == TrafficClass::Reply)
            d.vc = 1;
        flits.push_back(d);
    }
    if (prov_)
        prov_->onPacketCreate(flits, now);
    if (transport_)
        transport_->onInject(flits.front(), now);
    nics_[src]->enqueuePacket(flits);

    if (tracer_) {
        tracer_->record(TraceEventKind::PacketCreate, src, -1, id,
                        (static_cast<std::uint32_t>(dst) << 16) |
                            static_cast<std::uint32_t>(num_flits),
                        true);
    }
    stats_.packetsInjected += 1;
    stats_.flitsInjected += static_cast<std::uint64_t>(num_flits);
    if (now >= stats_.measureStart && now < stats_.measureEnd) {
        stats_.packetsMeasured += 1;
        stats_.flitsCreatedInWindow +=
            static_cast<std::uint64_t>(num_flits);
    }
    stats_.maxSourceQueueFlits =
        std::max(stats_.maxSourceQueueFlits,
                 nics_[src]->sourceQueueFlits());
    return id;
}

std::size_t
Network::sourceQueueFlits(NodeId node) const
{
    return nics_[node]->sourceQueueFlits();
}

void
Network::installCheckpoint(Cycle interval,
                           std::function<void(Network &)> hook)
{
    NOX_ASSERT(interval > 0, "checkpoint interval must be positive");
    checkpointInterval_ = interval;
    checkpointHook_ = std::move(hook);
}

std::string
Network::fingerprint() const
{
    // Doubles are rendered as exact bit patterns: two fingerprints
    // must compare equal iff the constructions are identical, not
    // merely close.
    const auto bits = [](double v) {
        std::uint64_t b;
        std::memcpy(&b, &v, sizeof b);
        return b;
    };
    std::ostringstream os;
    os << "arch=" << archName(routers_[0]->arch()) << " mesh="
       << params_.width << "x" << params_.height << "x"
       << params_.concentration
       << " buf=" << params_.router.bufferDepth
       << " vcs=" << params_.router.vcCount
       << " sink=" << params_.sinkBufferDepth
       << " arb=" << static_cast<int>(params_.router.arbiterKind)
       << " routing=" << static_cast<int>(params_.routing)
       << " sched=" << schedulingModeName(params_.schedulingMode);
    const FaultParams &f = params_.faults;
    os << " faults=" << (f.enabled ? 1 : 0);
    if (f.enabled) {
        os << std::hex << " rates=" << bits(f.bitflipRate) << ","
           << bits(f.dropRate) << "," << bits(f.creditLossRate)
           << std::dec << " seed=" << f.seed
           << " protect=" << (f.protect ? 1 : 0)
           << " retry=" << f.retryTimeout << "," << f.nackDelay
           << " watchdog=" << f.watchdogPeriod
           << " hard=" << f.hardLinkFaults << ","
           << f.hardRouterFaults << "@" << f.hardFaultCycle
           << " age=" << f.packetAgeLimit;
        os << " e2e=" << (f.e2eTransport ? 1 : 0);
        if (f.e2eTransport) {
            os << "/" << f.e2eTimeout << "," << f.e2eRetryLimit << ","
               << f.e2eAckDelay;
        }
        os << " churn=" << f.churnWaves;
        if (f.churnWaves > 0) {
            os << "@" << f.churnStart << "/" << f.churnPeriod << "/"
               << f.churnHealAfter << ":" << f.churnLinks << ","
               << f.churnRouters;
        }
    }
    os << " trace=" << (params_.obs.trace.enabled ? 1 : 0);
    if (params_.obs.trace.enabled)
        os << "/" << params_.obs.trace.capacity;
    os << " metrics=" << (params_.obs.metrics.enabled ? 1 : 0);
    if (params_.obs.metrics.enabled)
        os << "/" << params_.obs.metrics.interval;
    os << " prov=" << (params_.obs.prov.enabled ? 1 : 0);
    // The digest ledger is deliberately absent here (per-run output,
    // not construction geometry), but a deliberate perturbation is a
    // real behavioral difference: two networks that perturb
    // differently are *not* snapshot-compatible trajectories.
    if (params_.debugPerturbCycle != 0) {
        os << " perturb=" << params_.debugPerturbCycle << "@"
           << params_.debugPerturbRouter;
    }
    return os.str();
}

void
Network::serialize(snap::Writer &w) const
{
    snap::tag(w, snap::fourcc("NETW"));
    w.u64(now_);
    w.u64(nextPacket_);
    w.boolean(sourcesEnabled_);
    snap::writeNetworkStats(w, stats_);

    // The hard-fault topology, as replayable kill lists: dead
    // routers, then every explicitly-failed link (canonical
    // direction) — including links whose endpoint router is also
    // dead, because a later heal of that router must not resurrect
    // the link's own fault.
    const std::vector<NodeId> deadRouters = faultMap_.deadRouters();
    w.u64(deadRouters.size());
    for (NodeId r : deadRouters)
        w.i32(r);
    const std::vector<std::pair<NodeId, int>> deadLinks =
        faultMap_.explicitDeadLinks();
    w.u64(deadLinks.size());
    for (const auto &[r, port] : deadLinks) {
        w.i32(r);
        w.i32(port);
    }
    w.u64(table_.rebuilds());

    const auto writeFlowMap =
        [&w](const std::unordered_map<std::uint64_t, std::uint32_t>
                 &m) {
            std::vector<std::uint64_t> keys;
            keys.reserve(m.size());
            for (const auto &[k, v] : m)
                keys.push_back(k);
            std::sort(keys.begin(), keys.end());
            w.u64(keys.size());
            for (std::uint64_t k : keys) {
                w.u64(k);
                w.u32(m.at(k));
            }
        };
    writeFlowMap(flowNextSeq_);
    writeFlowMap(flowMaxDone_);

    w.u64(ageQueue_.size());
    for (const auto &[packet, created] : ageQueue_) {
        w.u64(packet);
        w.u64(created);
    }
    std::vector<PacketId> aged(ageInFlight_.begin(),
                               ageInFlight_.end());
    std::sort(aged.begin(), aged.end());
    w.u64(aged.size());
    for (PacketId p : aged)
        w.u64(p);
    w.boolean(ageDumpLatched_);

    for (std::uint8_t f : routerActive_)
        w.boolean(f != 0);
    for (std::uint8_t f : nicActive_)
        w.boolean(f != 0);
    w.boolean(!prevRouterActive_.empty());
    for (std::uint8_t f : prevRouterActive_)
        w.boolean(f != 0);
    for (std::uint8_t f : prevNicActive_)
        w.boolean(f != 0);
    w.boolean(!lastLinkFlits_.empty());
    for (std::uint64_t v : lastLinkFlits_)
        w.u64(v);
    for (std::uint64_t v : lastCollisions_)
        w.u64(v);

    for (const auto &r : routers_)
        r->serialize(w);
    for (const auto &nic : nics_)
        nic->serialize(w);
    w.u64(sources_.size());
    for (const auto &src : sources_)
        src->serialize(w);
    w.boolean(faults_ != nullptr);
    if (faults_)
        faults_->serialize(w);
    w.boolean(tracer_ != nullptr);
    if (tracer_)
        tracer_->serialize(w);
    w.boolean(metrics_ != nullptr);
    if (metrics_)
        metrics_->serialize(w);
    w.boolean(prov_ != nullptr);
    if (prov_)
        prov_->serialize(w);
    w.boolean(transport_ != nullptr);
    if (transport_)
        transport_->serialize(w);
}

void
Network::serializeDigestGlobals(snap::Writer &w) const
{
    // The Snapshot-scope prefix of Network::serialize, minus the
    // kernel/observer-owned fields (see the header declaration). Keep
    // the two walks in lockstep when adding global state.
    snap::tag(w, snap::fourcc("NETW"));
    w.u64(now_);
    w.u64(nextPacket_);
    w.boolean(sourcesEnabled_);
    snap::writeNetworkStats(w, stats_);
    const std::vector<NodeId> deadRouters = faultMap_.deadRouters();
    w.u64(deadRouters.size());
    for (NodeId r : deadRouters)
        w.i32(r);
    const std::vector<std::pair<NodeId, int>> deadLinks =
        faultMap_.explicitDeadLinks();
    w.u64(deadLinks.size());
    for (const auto &[r, port] : deadLinks) {
        w.i32(r);
        w.i32(port);
    }
    w.u64(table_.rebuilds());
    const auto writeFlowMap =
        [&w](const std::unordered_map<std::uint64_t, std::uint32_t>
                 &m) {
            std::vector<std::uint64_t> keys;
            keys.reserve(m.size());
            for (const auto &[k, v] : m)
                keys.push_back(k);
            std::sort(keys.begin(), keys.end());
            w.u64(keys.size());
            for (std::uint64_t k : keys) {
                w.u64(k);
                w.u32(m.at(k));
            }
        };
    writeFlowMap(flowNextSeq_);
    writeFlowMap(flowMaxDone_);
    w.u64(ageQueue_.size());
    for (const auto &[packet, created] : ageQueue_) {
        w.u64(packet);
        w.u64(created);
    }
    std::vector<PacketId> aged(ageInFlight_.begin(),
                               ageInFlight_.end());
    std::sort(aged.begin(), aged.end());
    w.u64(aged.size());
    for (PacketId p : aged)
        w.u64(p);
}

DigestStride
Network::computeDigestStride(snap::Writer &scratch) const
{
    const auto hash = [&scratch]() {
        const DigestHash h = digestBytes(scratch.data().data(),
                                         scratch.size());
        scratch.clear();
        return h;
    };

    DigestStride s;
    s.cycle = now_;
    scratch.clear();

    serializeDigestGlobals(scratch);
    s.global = hash();

    for (const auto &src : sources_)
        src->serialize(scratch);
    s.sources = hash();

    if (faults_) {
        faults_->serialize(scratch);
        s.faults = hash();
    }
    if (transport_) {
        transport_->serialize(scratch);
        s.transport = hash();
    }

    s.routers.reserve(routers_.size());
    for (const auto &r : routers_) {
        r->serialize(scratch, snap::Scope::Digest);
        s.routers.push_back(hash());
    }
    s.nics.reserve(nics_.size());
    for (const auto &nic : nics_) {
        nic->serialize(scratch, snap::Scope::Digest);
        s.nics.push_back(hash());
    }
    return s;
}

void
Network::restore(snap::Reader &r)
{
    snap::checkTag(r, snap::fourcc("NETW"));
    now_ = r.u64();
    nextPacket_ = r.u64();
    sourcesEnabled_ = r.boolean();
    snap::readNetworkStats(r, stats_);

    // Replay the snapshot's hard-fault topology onto this (freshly
    // built) network before touching any component: Router::restore
    // cross-checks output wiring, and the routing table must describe
    // the faulted mesh when traffic resumes. With healing in the mix
    // the snapshot's dead set is no longer a superset of the
    // construction-time one, so replay in two moves that are always
    // legal on an empty network: heal every current fault back to the
    // pristine mesh (uncounted — the restored stats already include
    // any real heals), then re-kill exactly the snapshot's lists.
    // Explicit link kills replay before router kills because killLink
    // requires both endpoints alive.
    std::vector<NodeId> snapDeadRouters;
    const std::uint64_t ndr = r.u64();
    for (std::uint64_t i = 0; i < ndr; ++i) {
        const NodeId router = r.i32();
        if (router < 0 || router >= numRouters())
            r.fail("dead-router id out of range");
        snapDeadRouters.push_back(router);
    }
    std::vector<std::pair<NodeId, int>> snapDeadLinks;
    const std::uint64_t ndl = r.u64();
    for (std::uint64_t i = 0; i < ndl; ++i) {
        const NodeId router = r.i32();
        const int port = r.i32();
        if (router < 0 || router >= numRouters() ||
            port < kPortNorth || port > kPortWest)
            r.fail("dead-link endpoint out of range");
        snapDeadLinks.emplace_back(router, port);
    }

    bool replayed = false;
    std::vector<FlitDesc> discard; // freshly built: nothing in flight
    for (const auto &[router, port] : faultMap_.explicitDeadLinks()) {
        healLink(router, port, /*record=*/false);
        replayed = true;
    }
    for (NodeId router : faultMap_.deadRouters()) {
        healRouter(router, /*record=*/false);
        replayed = true;
    }
    for (const auto &[router, port] : snapDeadLinks) {
        killLink(router, port, discard);
        replayed = true;
    }
    for (NodeId router : snapDeadRouters) {
        killRouter(router, discard);
        replayed = true;
    }
    NOX_ASSERT(discard.empty(),
               "fault replay on a restore target with traffic");
    if (replayed)
        table_.rebuild(faultMap_);
    table_.setRebuildCount(r.u64());

    const auto readFlowMap =
        [&r](std::unordered_map<std::uint64_t, std::uint32_t> &m) {
            m.clear();
            const std::uint64_t n = r.u64();
            m.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) {
                const std::uint64_t k = r.u64();
                m[k] = r.u32();
            }
        };
    readFlowMap(flowNextSeq_);
    readFlowMap(flowMaxDone_);

    ageQueue_.clear();
    const std::uint64_t nage = r.u64();
    for (std::uint64_t i = 0; i < nage; ++i) {
        const PacketId packet = r.u64();
        const Cycle created = r.u64();
        ageQueue_.emplace_back(packet, created);
    }
    ageInFlight_.clear();
    const std::uint64_t nin = r.u64();
    ageInFlight_.reserve(static_cast<std::size_t>(nin));
    for (std::uint64_t i = 0; i < nin; ++i)
        ageInFlight_.insert(r.u64());
    ageDumpLatched_ = r.boolean();

    for (std::uint8_t &f : routerActive_)
        f = r.boolean() ? 1 : 0;
    for (std::uint8_t &f : nicActive_)
        f = r.boolean() ? 1 : 0;
    if (r.boolean() != !prevRouterActive_.empty())
        r.fail("trace-activity state presence mismatch (wrong "
               "config)");
    for (std::uint8_t &f : prevRouterActive_)
        f = r.boolean() ? 1 : 0;
    for (std::uint8_t &f : prevNicActive_)
        f = r.boolean() ? 1 : 0;
    if (r.boolean() != !lastLinkFlits_.empty())
        r.fail("metrics window-counter presence mismatch (wrong "
               "config)");
    for (std::uint64_t &v : lastLinkFlits_)
        v = r.u64();
    for (std::uint64_t &v : lastCollisions_)
        v = r.u64();

    for (auto &rt : routers_)
        rt->restore(r);
    for (auto &nic : nics_)
        nic->restore(r);
    if (r.u64() != sources_.size())
        r.fail("traffic source count mismatch (wrong config)");
    for (auto &src : sources_)
        src->restore(r);
    if (r.boolean() != (faults_ != nullptr))
        r.fail("fault-injection presence mismatch (wrong config)");
    if (faults_)
        faults_->restore(r);
    if (r.boolean() != (tracer_ != nullptr))
        r.fail("trace recorder presence mismatch (wrong config)");
    if (tracer_)
        tracer_->restore(r);
    if (r.boolean() != (metrics_ != nullptr))
        r.fail("metrics sampler presence mismatch (wrong config)");
    if (metrics_)
        metrics_->restore(r);
    if (r.boolean() != (prov_ != nullptr))
        r.fail("provenance presence mismatch (wrong config)");
    if (prov_)
        prov_->restore(r);
    if (r.boolean() != (transport_ != nullptr))
        r.fail("E2E-transport presence mismatch (wrong config)");
    if (transport_)
        transport_->restore(r);
}

void
Network::onFlitDelivered(NodeId, const FlitDesc &, Cycle now)
{
    stats_.flitsEjected += 1;
    const bool measured =
        now >= stats_.measureStart && now < stats_.measureEnd;
    if (measured)
        stats_.flitsEjectedInWindow += 1;
    if (metrics_)
        metrics_->onFlitEjected(measured);
}

bool
Network::onE2eResend(PacketId base, const TransportEntry &e)
{
    // An impossible resend leaves the entry armed: the next timeout
    // tries again, so the packet rides out any outage shorter than
    // its remaining retry budget.
    if (nics_[e.src]->dead() || !table_.reachable(e.src, e.dest))
        return false;

    const PacketId wire = attemptPacket(base, e.attempt);
    std::vector<FlitDesc> &flits = scratchInjectFlits_;
    flits.clear();
    flits.reserve(e.numFlits);
    for (std::uint32_t s = 0; s < e.numFlits; ++s) {
        FlitDesc d;
        d.uid = flitUid(wire, s);
        d.packet = wire;
        d.seq = s;
        d.packetSize = e.numFlits;
        d.src = e.src;
        d.dest = e.dest;
        d.payload = expectedPayload(wire, s);
        d.createCycle = e.origCreate;
        d.cls = e.cls;
        d.flowSeq = e.flowSeq;
        if (params_.router.vcCount > 1 && e.cls == TrafficClass::Reply)
            d.vc = 1;
        flits.push_back(d);
    }
    if (prov_)
        prov_->onRetransmit(flits, now_);
    nics_[e.src]->enqueuePacket(flits);
    stats_.faults.e2eRetransmits += 1;
    if (tracer_) {
        tracer_->record(TraceEventKind::E2eRetransmit, e.src, -1, base,
                        e.attempt, true);
    }
    return true;
}

void
Network::onE2eAck(PacketId base, const TransportEntry &e)
{
    if (tracer_) {
        tracer_->record(TraceEventKind::E2eAck, e.src, -1, base,
                        e.retries, true);
    }
}

void
Network::onE2eFail(PacketId base, const TransportEntry &e)
{
    stats_.faults.deliveryFailures += 1;
    // Every attempt's partial-arrival record at the destination is
    // stale; the flow filter (marked by the transport) suppresses any
    // straggler flits of the abandoned packet at the door.
    for (std::uint32_t a = 0; a <= e.attempt; ++a)
        nics_[e.dest]->forgetArrived(attemptPacket(base, a));
    ageInFlight_.erase(base);
}

void
Network::onPacketCompleted(NodeId node, const FlitDesc &last_flit,
                           Cycle head_inject, Cycle now)
{
    PacketId packet = last_flit.packet;
    if (transport_) {
        std::uint32_t attempts = 0;
        const bool first =
            transport_->onPacketDelivered(packet, now, attempts);
        NOX_ASSERT(first, "duplicate completion of packet ",
                   basePacket(packet), " at node ", node);
        packet = basePacket(last_flit.packet);
        // Any other attempt's flits still in flight are stale now:
        // scrub their partial-arrival records (the door filter drops
        // the flits themselves when they straggle in).
        for (std::uint32_t a = 0; a <= attempts; ++a) {
            const PacketId other = attemptPacket(packet, a);
            if (other != last_flit.packet)
                nics_[node]->forgetArrived(other);
        }
    }
    if (tracer_) {
        tracer_->record(
            TraceEventKind::PacketDone, node, -1, packet,
            static_cast<std::uint32_t>(now - last_flit.createCycle),
            true);
    }
    stats_.packetsEjected += 1;
    if (faults_) {
        // Per-flow sequence check: adaptive rerouting after a mid-run
        // kill can legitimately reorder a flow; make it visible.
        const std::uint64_t flow =
            (static_cast<std::uint64_t>(last_flit.src) << 32) |
            static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(last_flit.dest));
        auto [it, fresh] = flowMaxDone_.emplace(flow,
                                                last_flit.flowSeq);
        if (!fresh) {
            if (last_flit.flowSeq < it->second)
                stats_.faults.flowReorders += 1;
            else
                it->second = last_flit.flowSeq;
        }
        ageInFlight_.erase(packet);
    }
    const Cycle created = last_flit.createCycle;
    if (created >= stats_.measureStart && created < stats_.measureEnd) {
        const double lat = static_cast<double>(now - created) + 1.0;
        stats_.latency.add(lat);
        stats_.latencyHist.add(lat);
        stats_.netLatency.add(
            static_cast<double>(now - head_inject) + 1.0);
        stats_.latencyByClass[static_cast<int>(last_flit.cls)].add(lat);
        stats_.packetsMeasuredDone += 1;
    }
}

} // namespace nox
