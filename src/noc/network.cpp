#include "noc/network.hpp"

#include <algorithm>
#include <sstream>
#include <string_view>

#include "common/log.hpp"

namespace nox {

std::string
DrainReport::summary() const
{
    std::ostringstream os;
    if (drained) {
        os << "drained by cycle " << stoppedAt;
        return os.str();
    }
    os << "drain timed out at cycle " << stoppedAt << " with "
       << packetsInFlight << " packet(s) in flight; ";
    os << busyRouters.size() << " busy router(s)";
    if (!busyRouters.empty()) {
        os << " [";
        for (std::size_t i = 0; i < busyRouters.size(); ++i)
            os << (i ? " " : "") << busyRouters[i];
        os << "]";
    }
    os << ", " << busyNics.size() << " busy NIC(s)";
    if (!busyNics.empty()) {
        os << " [";
        for (std::size_t i = 0; i < busyNics.size(); ++i)
            os << (i ? " " : "") << busyNics[i];
        os << "]";
    }
    if (!partialPackets.empty()) {
        os << "; partially delivered:";
        for (const auto &p : partialPackets)
            os << " packet " << p.packet << " (" << p.flitsArrived
               << " flits at node " << p.node << ")";
    }
    return os.str();
}

const char *
schedulingModeName(SchedulingMode mode)
{
    switch (mode) {
      case SchedulingMode::AlwaysTick:
        return "alwaystick";
      case SchedulingMode::ActivityDriven:
        return "activity";
      case SchedulingMode::EquivalenceCheck:
        return "equivalence";
    }
    panic("unknown scheduling mode");
}

SchedulingMode
parseSchedulingMode(const char *name)
{
    const std::string_view n(name);
    if (n == "alwaystick" || n == "always")
        return SchedulingMode::AlwaysTick;
    if (n == "activity" || n == "scheduled")
        return SchedulingMode::ActivityDriven;
    if (n == "equivalence" || n == "check")
        return SchedulingMode::EquivalenceCheck;
    fatal("unknown scheduling mode '", n,
          "' (alwaystick | activity | equivalence)");
}

Network::Network(const NetworkParams &params, RouterFactory factory)
    : params_(params),
      mesh_(params.width, params.height, params.concentration)
{
    NOX_ASSERT(factory, "router factory required");

    // Router radix follows the topology's concentration factor.
    RouterParams rp = params.router;
    rp.numPorts = mesh_.radix();
    params_.router = rp;

    const int nr = mesh_.numRouters();
    const int nn = mesh_.numNodes();
    routers_.reserve(static_cast<std::size_t>(nr));
    nics_.reserve(static_cast<std::size_t>(nn));

    for (NodeId r = 0; r < nr; ++r)
        routers_.push_back(factory(r, mesh_, params.route, rp));
    // Sinks hold one buffer's worth per VC (per-VC output credits
    // must all be backed by real sink capacity).
    const int sink_depth = params.sinkBufferDepth * rp.vcCount;
    for (NodeId node = 0; node < nn; ++node)
        nics_.push_back(std::make_unique<Nic>(node, sink_depth));

    // Wire inter-router links: for each router, connect the four mesh
    // outputs to the neighbour's opposite input, and the matching
    // credit return path.
    for (NodeId r = 0; r < nr; ++r) {
        Router &router = *routers_[r];
        for (int port = kPortNorth; port <= kPortWest; ++port) {
            const NodeId nb = mesh_.neighbor(r, port);
            if (nb == kInvalidNode)
                continue;
            const int back = Mesh::oppositePort(port);

            Router::FlitTarget ft;
            ft.router = routers_[nb].get();
            ft.port = back;
            router.connectOutput(port, ft, rp.bufferDepth);

            Router::CreditTarget ct;
            ct.router = routers_[nb].get();
            ct.port = back; // our input `port` is fed by nb's output
            router.connectInputCredit(port, ct);
        }
    }
    // Attach each terminal's NIC to its router's local port.
    for (NodeId node = 0; node < nn; ++node) {
        nics_[node]->connectRouter(
            routers_[mesh_.routerOf(node)].get(),
            mesh_.localPortOf(node));
        nics_[node]->setListener(this);
    }

    // Fault injection: one shared injector, counters bound to this
    // network's stats so the fault schedule and its detection record
    // are part of the cross-kernel equivalence contract.
    if (params.faults.enabled) {
        faults_ = std::make_unique<FaultInjector>(params.faults);
        faults_->bindStats(&stats_.faults);
        for (auto &r : routers_)
            r->attachFaults(faults_.get());
        for (auto &nic : nics_)
            nic->attachFaults(faults_.get());
    }

    // Active-set bookkeeping: everything starts armed (the first
    // cycles retire whatever is genuinely idle). The flag vectors are
    // sized once here and never reallocated, so the bound pointers
    // stay valid for the network's lifetime.
    routerActive_.assign(static_cast<std::size_t>(nr), 1);
    nicActive_.assign(static_cast<std::size_t>(nn), 1);
    scratchRouters_.reserve(static_cast<std::size_t>(nr));
    for (NodeId r = 0; r < nr; ++r)
        routers_[r]->bindActivity(&routerActive_[r]);
    for (NodeId node = 0; node < nn; ++node)
        nics_[node]->bindActivity(&nicActive_[node]);

    // Observability: the recorder and sampler are passive observers —
    // they read committed state and counters but never mutate router,
    // NIC, RNG or stats state, so enabling them cannot change a run.
    if (params.obs.trace.enabled) {
        tracer_ = std::make_unique<TraceRecorder>(params.obs.trace);
        for (auto &r : routers_)
            r->attachTracer(tracer_.get());
        for (auto &nic : nics_)
            nic->attachTracer(tracer_.get());
        if (faults_)
            faults_->attachTracer(tracer_.get());
        prevRouterActive_ = routerActive_;
        prevNicActive_ = nicActive_;
    }
    if (params.obs.metrics.enabled) {
        metrics_ =
            std::make_unique<MetricsSampler>(params.obs.metrics, nr);
        lastLinkFlits_.assign(static_cast<std::size_t>(nr), 0);
        lastCollisions_.assign(static_cast<std::size_t>(nr), 0);
    }
}

void
Network::addSource(std::unique_ptr<TrafficSource> source)
{
    NOX_ASSERT(source, "null traffic source");
    sources_.push_back(std::move(source));
}

void
Network::step()
{
    switch (params_.schedulingMode) {
      case SchedulingMode::AlwaysTick:
        stepAlwaysTick();
        return;
      case SchedulingMode::ActivityDriven:
        stepScheduled(false);
        return;
      case SchedulingMode::EquivalenceCheck:
        stepScheduled(true);
        return;
    }
    panic("unknown scheduling mode");
}

void
Network::stepAlwaysTick()
{
    // 0. Fault-injection clock: draws during this cycle key off now_.
    if (faults_)
        faults_->beginCycle(now_);
    if (tracer_)
        tracer_->beginCycle(now_);

    // 1. Traffic generation for this cycle.
    if (sourcesEnabled_) {
        for (auto &src : sources_)
            src->tick(now_, *this);
    }

    // 1b. Link-layer maintenance (retransmissions, credit watchdog)
    // runs before any router reads its committed state, so a
    // retransmitted flit is staged exactly like a first transmission.
    if (faults_) {
        for (auto &r : routers_)
            r->evaluateLink(now_);
    }

    // 2. NIC injection (stages flits into router local inputs).
    for (auto &nic : nics_)
        nic->evaluateInject(now_);

    // 3. Router evaluation (order-independent; staged effects only).
    for (auto &r : routers_)
        r->evaluate(now_);

    // 4. NIC sinks drain their committed FIFOs.
    for (auto &nic : nics_)
        nic->evaluateSink(now_);

    // 5. Commit staged arrivals and credits everywhere.
    for (auto &r : routers_) {
        r->energy().cycles += 1;
        r->commit();
    }
    for (NodeId n = 0; n < numNodes(); ++n) {
        nics_[n]->commit();
        sampleSourceQueue(n);
    }

    ++now_;
    if (metrics_ && metrics_->windowEnds(now_))
        sampleMetricsWindow();
}

void
Network::stepScheduled(bool check)
{
    const int nr = numRouters();
    const int nn = numNodes();

    // Equivalence mode: every retired component must still honour the
    // quiescence contract at the start of the cycle. Because a
    // retired component's flag is only re-set by staging, this also
    // proves (inductively) that ticking it last cycle was a no-op.
    if (check) {
        for (NodeId r = 0; r < nr; ++r) {
            NOX_ASSERT(routerActive_[r] || routers_[r]->quiescent(),
                       "retired router ", r, " is not quiescent");
        }
        for (NodeId n = 0; n < nn; ++n) {
            NOX_ASSERT(nicActive_[n] || nics_[n]->quiescent(),
                       "retired NIC ", n, " is not quiescent");
        }
    }

    // 0. Fault-injection clock (see stepAlwaysTick).
    if (faults_)
        faults_->beginCycle(now_);
    if (tracer_) {
        tracer_->beginCycle(now_);
        traceWakes();
    }

    // 1. Traffic generation always runs: sources draw from their RNG
    // every cycle regardless of kernel, so both kernels see the same
    // injection sequence. injectPacket() re-arms the target NIC.
    if (sourcesEnabled_) {
        for (auto &src : sources_)
            src->tick(now_, *this);
    }

    // 1b. Link-layer maintenance over the active set. Retired routers
    // are guaranteed a no-op here (quiescent() covers retry entries
    // and owed watchdog credits), so skipping them is exact.
    if (faults_) {
        for (NodeId r = 0; r < nr; ++r) {
            if (routerActive_[r] || check)
                routers_[r]->evaluateLink(now_);
        }
    }

    // 2. NIC injection for the active set (live flags: a NIC armed by
    // this cycle's traffic injects this cycle, as in always-tick).
    for (NodeId n = 0; n < nn; ++n) {
        if (nicActive_[n] || check)
            nics_[n]->evaluateInject(now_);
    }

    // 3. Router evaluation over a snapshot of the active set: a
    // router woken mid-phase by a staged flit starts evaluating next
    // cycle — its staged arrival is latched by this cycle's commit,
    // exactly as under always-tick where evaluation reads committed
    // state only.
    scratchRouters_.clear();
    for (NodeId r = 0; r < nr; ++r) {
        if (routerActive_[r] || check)
            scratchRouters_.push_back(r);
    }
    for (NodeId r : scratchRouters_)
        routers_[r]->evaluate(now_);

    // 4. NIC sinks (live flags; a sink woken this cycle has an empty
    // committed FIFO, so evaluating it is the same no-op as under
    // always-tick).
    for (NodeId n = 0; n < nn; ++n) {
        if (nicActive_[n] || check)
            nics_[n]->evaluateSink(now_);
    }

    // 5. Commit every component that is (or became) active this
    // cycle, then retire those that report quiescent. Clock energy is
    // only charged to committed routers — retired routers are clock
    // gated (equivalence mode charges everyone, like always-tick).
    for (NodeId r = 0; r < nr; ++r) {
        if (!(routerActive_[r] || check))
            continue;
        routers_[r]->energy().cycles += 1;
        routers_[r]->commit();
        if (routerActive_[r] && routers_[r]->quiescent()) {
            routerActive_[r] = 0;
            if (tracer_)
                tracer_->record(TraceEventKind::SchedRetire, r, -1, 0);
        }
    }
    for (NodeId n = 0; n < nn; ++n) {
        if (!(nicActive_[n] || check))
            continue;
        nics_[n]->commit();
        sampleSourceQueue(n);
        if (nicActive_[n] && nics_[n]->quiescent()) {
            nicActive_[n] = 0;
            if (tracer_) {
                tracer_->record(TraceEventKind::SchedRetire, n, -1, 0,
                                0, true);
            }
        }
    }

    ++now_;
    if (metrics_ && metrics_->windowEnds(now_))
        sampleMetricsWindow();
}

void
Network::traceWakes()
{
    // A component whose flag went 0 -> 1 since the last cycle's edge
    // scan was woken by some staging (or fresh traffic); record the
    // edge against the cycle it first gets evaluated as active.
    for (NodeId r = 0; r < numRouters(); ++r) {
        if (routerActive_[r] && !prevRouterActive_[r])
            tracer_->record(TraceEventKind::SchedWake, r, -1, 0);
        prevRouterActive_[r] = routerActive_[r];
    }
    for (NodeId n = 0; n < numNodes(); ++n) {
        if (nicActive_[n] && !prevNicActive_[n])
            tracer_->record(TraceEventKind::SchedWake, n, -1, 0, 0,
                            true);
        prevNicActive_[n] = nicActive_[n];
    }
}

void
Network::sampleMetricsWindow()
{
    std::vector<RouterWindowSample> samples;
    samples.reserve(routers_.size());
    for (NodeId r = 0; r < numRouters(); ++r) {
        const Router &router = *routers_[r];
        RouterWindowSample s;
        s.bufferedFlits = router.bufferedFlits();
        const std::uint64_t link = router.energy().linkFlits;
        const std::uint64_t coll = router.xorCollisions();
        s.linkFlits =
            static_cast<std::uint32_t>(link - lastLinkFlits_[r]);
        s.xorCollisions =
            static_cast<std::uint32_t>(coll - lastCollisions_[r]);
        lastLinkFlits_[r] = link;
        lastCollisions_[r] = coll;
        s.retryPending = router.retryPending();
        s.active = routerActive_[r] != 0;
        samples.push_back(s);
    }
    metrics_->recordWindow(now_, std::move(samples), activeRouters(),
                           activeNics());
}

void
Network::finishObservability()
{
    if (metrics_) {
        if (metrics_->openWindowDirty(now_))
            sampleMetricsWindow();
        if (!metrics_->params().jsonlPath.empty())
            metrics_->writeJsonl(metrics_->params().jsonlPath);
    }
    if (tracer_ && !tracer_->params().chromePath.empty()) {
        tracer_->writeChromeTrace(tracer_->params().chromePath,
                                  params_.width,
                                  params_.concentration);
    }
}

int
Network::activeRouters() const
{
    if (params_.schedulingMode == SchedulingMode::AlwaysTick)
        return numRouters();
    return static_cast<int>(std::count(routerActive_.begin(),
                                       routerActive_.end(), 1));
}

int
Network::activeNics() const
{
    if (params_.schedulingMode == SchedulingMode::AlwaysTick)
        return numNodes();
    return static_cast<int>(
        std::count(nicActive_.begin(), nicActive_.end(), 1));
}

void
Network::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

bool
Network::drain(Cycle limit)
{
    // Draining with live sources would keep injecting fresh packets
    // and burn the whole cycle limit; suspend them for the duration
    // and restore the caller's setting on exit.
    const bool sources_were_enabled = sourcesEnabled_;
    sourcesEnabled_ = false;
    const Cycle deadline = now_ + limit;
    while (packetsInFlight() > 0 && now_ < deadline)
        step();
    sourcesEnabled_ = sources_were_enabled;

    drainReport_ = DrainReport{};
    drainReport_.drained = packetsInFlight() == 0;
    drainReport_.stoppedAt = now_;
    drainReport_.packetsInFlight = packetsInFlight();
    if (!drainReport_.drained) {
        for (NodeId r = 0; r < numRouters(); ++r) {
            if (!routers_[r]->quiescent())
                drainReport_.busyRouters.push_back(r);
        }
        for (NodeId n = 0; n < numNodes(); ++n) {
            if (!nics_[n]->quiescent())
                drainReport_.busyNics.push_back(n);
            for (const auto &[packet, count] :
                 nics_[n]->partialPackets())
                drainReport_.partialPackets.push_back(
                    {n, packet, count});
        }
        // Flight recorder: a drain timeout is exactly the situation
        // the ring exists for — dump the recent event history around
        // the stuck components before anyone tears the network down.
        if (tracer_) {
            tracer_->triggerFlightDump("drain-timeout",
                                       drainReport_.busyRouters);
        }
    }
    return drainReport_.drained;
}

void
Network::setMeasurementWindow(Cycle start, Cycle end)
{
    NOX_ASSERT(start < end, "empty measurement window");
    stats_.measureStart = start;
    stats_.measureEnd = end;
}

std::uint64_t
Network::packetsInFlight() const
{
    return stats_.packetsInjected - stats_.packetsEjected;
}

EnergyEvents
Network::totalEnergyEvents() const
{
    EnergyEvents total;
    for (const auto &r : routers_)
        total.merge(r->energy());
    for (const auto &nic : nics_)
        total.merge(nic->energy());
    return total;
}

PacketId
Network::injectPacket(NodeId src, NodeId dst, int num_flits, Cycle now,
                      TrafficClass cls)
{
    NOX_ASSERT(src >= 0 && src < numNodes(), "bad source node ", src);
    NOX_ASSERT(dst >= 0 && dst < numNodes(), "bad dest node ", dst);
    NOX_ASSERT(src != dst, "self-addressed packet");
    NOX_ASSERT(num_flits >= 1, "packet needs at least one flit");

    const PacketId id = nextPacket_++;
    std::vector<FlitDesc> flits;
    flits.reserve(static_cast<std::size_t>(num_flits));
    for (int s = 0; s < num_flits; ++s) {
        FlitDesc d;
        d.uid = flitUid(id, static_cast<std::uint32_t>(s));
        d.packet = id;
        d.seq = static_cast<std::uint32_t>(s);
        d.packetSize = static_cast<std::uint32_t>(num_flits);
        d.src = src;
        d.dest = dst;
        d.payload = expectedPayload(id, static_cast<std::uint32_t>(s));
        d.createCycle = now;
        d.cls = cls;
        // Static VC assignment by class (request/reply isolation).
        if (params_.router.vcCount > 1 && cls == TrafficClass::Reply)
            d.vc = 1;
        flits.push_back(d);
    }
    nics_[src]->enqueuePacket(std::move(flits));

    if (tracer_) {
        tracer_->record(TraceEventKind::PacketCreate, src, -1, id,
                        (static_cast<std::uint32_t>(dst) << 16) |
                            static_cast<std::uint32_t>(num_flits),
                        true);
    }
    stats_.packetsInjected += 1;
    stats_.flitsInjected += static_cast<std::uint64_t>(num_flits);
    if (now >= stats_.measureStart && now < stats_.measureEnd) {
        stats_.packetsMeasured += 1;
        stats_.flitsCreatedInWindow +=
            static_cast<std::uint64_t>(num_flits);
    }
    stats_.maxSourceQueueFlits =
        std::max(stats_.maxSourceQueueFlits,
                 nics_[src]->sourceQueueFlits());
    return id;
}

std::size_t
Network::sourceQueueFlits(NodeId node) const
{
    return nics_[node]->sourceQueueFlits();
}

void
Network::onFlitDelivered(NodeId, const FlitDesc &, Cycle now)
{
    stats_.flitsEjected += 1;
    const bool measured =
        now >= stats_.measureStart && now < stats_.measureEnd;
    if (measured)
        stats_.flitsEjectedInWindow += 1;
    if (metrics_)
        metrics_->onFlitEjected(measured);
}

void
Network::onPacketCompleted(NodeId node, const FlitDesc &last_flit,
                           Cycle head_inject, Cycle now)
{
    if (tracer_) {
        tracer_->record(
            TraceEventKind::PacketDone, node, -1, last_flit.packet,
            static_cast<std::uint32_t>(now - last_flit.createCycle),
            true);
    }
    stats_.packetsEjected += 1;
    const Cycle created = last_flit.createCycle;
    if (created >= stats_.measureStart && created < stats_.measureEnd) {
        const double lat = static_cast<double>(now - created) + 1.0;
        stats_.latency.add(lat);
        stats_.latencyHist.add(lat);
        stats_.netLatency.add(
            static_cast<double>(now - head_inject) + 1.0);
        stats_.latencyByClass[static_cast<int>(last_flit.cls)].add(lat);
        stats_.packetsMeasuredDone += 1;
    }
}

} // namespace nox
