/**
 * @file
 * End-to-end exactly-once delivery transport at the NICs.
 *
 * The link layer (CRC + nack/retry, credit watchdog) recovers from
 * *transient* faults, but a fail-stop link or router kill throws away
 * every flit buffered on the dead path — without help those packets
 * are gone (packetsLostHard). The E2E transport closes that gap the
 * way real NoCs do: the source NIC keeps each packet in an in-flight
 * window until the destination's end-to-end acknowledgement retires
 * it, retransmitting on timeout with a bounded retry budget, while the
 * destination suppresses duplicates so every accepted packet is
 * delivered exactly once.
 *
 * Wire identity. Each retransmission attempt travels under a distinct
 * wire packet id (attemptPacket(base, n), see flit.hpp), with payloads
 * and flit uids derived from that encoded id. Simultaneously-live
 * copies therefore never alias each other anywhere in the network; the
 * *logical* packet is the base id, and latency is measured from the
 * original create cycle, which every attempt's flits carry.
 *
 * Ack channel. E2E acks are modelled as a reliable out-of-band channel
 * with a fixed delay (FaultParams::e2eAckDelay) rather than as
 * in-network packets. This is a deliberate abstraction: the protocol
 * machinery under test is the *data-path* loss/duplicate handling, and
 * a lossy ack channel only converts acks into extra timeouts, which
 * the timeout path already exercises.
 *
 * Duplicate suppression. The destination tracks delivered packets per
 * (src,dest) flow as a watermark plus a sparse set of out-of-order
 * flow sequence numbers — O(1) amortised and bounded by the window,
 * exactly like a hardware reorder filter. Every flit of an already-
 * delivered (or abandoned) logical packet is dropped at the NIC door
 * before it can touch arrival state, making a second completion
 * structurally impossible.
 */

#ifndef NOX_NOC_TRANSPORT_HPP
#define NOX_NOC_TRANSPORT_HPP

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "noc/flit.hpp"
#include "noc/types.hpp"
#include "snapshot/io.hpp"

namespace nox {

/** Source-side window state for one logical (base-id) packet. */
struct TransportEntry
{
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    std::uint32_t numFlits = 1;
    TrafficClass cls = TrafficClass::Synthetic;
    std::uint32_t flowSeq = 0;   ///< per-(src,dest) sequence number
    Cycle origCreate = 0;        ///< create cycle of attempt 0
    std::uint32_t attempt = 0;   ///< highest attempt sent so far
    std::uint32_t retries = 0;   ///< timeout-triggered resends
    bool delivered = false;      ///< completed at dest, ack pending
};

/**
 * Callbacks the transport raises while sweeping its window. The
 * network implements this: resends re-enter the source queue, acks
 * and failures update statistics and per-packet bookkeeping.
 */
class TransportListener
{
  public:
    virtual ~TransportListener() = default;

    /**
     * Timeout fired: send attempt `e.attempt` (already incremented)
     * of @p base. Return false when the resend is impossible right
     * now (source NIC dead, destination unreachable) — the entry
     * stays armed and the next timeout retries again, so a packet
     * survives any outage shorter than its retry budget.
     */
    virtual bool onE2eResend(PacketId base,
                             const TransportEntry &e) = 0;

    /** The delayed E2E ack arrived; the window entry is retired. */
    virtual void onE2eAck(PacketId base, const TransportEntry &e) = 0;

    /** Retry budget exhausted; the packet is abandoned. */
    virtual void onE2eFail(PacketId base, const TransportEntry &e) = 0;
};

/**
 * The per-network transport instance (one object serves every NIC —
 * state is keyed by packet and flow, and the simulator's global view
 * makes the src/dest split purely notational).
 *
 * Timeout and ack wakeups live in monotone deques (the due cycle of a
 * pushed event never precedes an earlier push), so each sweep pops
 * only due events; retired or superseded entries are skipped lazily
 * via the window lookup.
 */
class E2eTransport
{
  public:
    E2eTransport(Cycle timeout, std::uint32_t retry_limit,
                 Cycle ack_delay);

    /** A new logical packet entered the network (attempt 0). */
    void onInject(const FlitDesc &head, Cycle now);

    /**
     * Destination-door check: true when @p d belongs to a logical
     * packet this flow has already completed (or abandoned) and must
     * be dropped before touching arrival state.
     */
    bool duplicateFlit(const FlitDesc &d) const;

    /**
     * All flits of wire packet @p wire_packet arrived. Returns true
     * exactly once per logical packet — on that first completion the
     * flow filter is marked and the ack timer armed; @p attempts_out
     * reports how many wire copies exist (highest attempt number),
     * so the caller can scrub stale per-attempt arrival state.
     */
    bool onPacketDelivered(PacketId wire_packet, Cycle now,
                           std::uint32_t &attempts_out);

    /** Retire due acks and fire due timeouts (acks first). */
    void sweep(Cycle now, TransportListener &listener);

    /** Logical packets currently held in the source window. */
    std::size_t windowSize() const { return window_.size(); }

    /** Flow key as used by the network's ordering checks. */
    static std::uint64_t
    flowKey(NodeId src, NodeId dest)
    {
        return (static_cast<std::uint64_t>(src) << 32) |
               static_cast<std::uint32_t>(dest);
    }

    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    /** Delivered-set for one (src,dest) flow: every flowSeq below the
     *  watermark is delivered; stragglers above it sit in `above`
     *  until the watermark sweeps past them. */
    struct FlowFilter
    {
        std::uint32_t watermark = 0;
        std::unordered_set<std::uint32_t> above;

        bool
        contains(std::uint32_t seq) const
        {
            return seq < watermark || above.count(seq) != 0;
        }

        void
        insert(std::uint32_t seq)
        {
            if (seq < watermark)
                return;
            above.insert(seq);
            while (above.erase(watermark) != 0)
                ++watermark;
        }
    };

    void markFlowDone(const TransportEntry &e);

    Cycle timeout_;
    std::uint32_t retryLimit_;
    Cycle ackDelay_;

    std::unordered_map<PacketId, TransportEntry> window_;
    std::deque<std::pair<Cycle, PacketId>> timeouts_;
    std::deque<std::pair<Cycle, PacketId>> acks_;
    std::unordered_map<std::uint64_t, FlowFilter> flows_;
};

} // namespace nox

#endif // NOX_NOC_TRANSPORT_HPP
