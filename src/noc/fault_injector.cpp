#include "noc/fault_injector.hpp"

#include <algorithm>

#include "common/config.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "noc/topology.hpp"
#include "snapshot/io.hpp"

namespace nox {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::BitFlip:
        return "bitflip";
    case FaultKind::Drop:
        return "drop";
    case FaultKind::CreditLoss:
        return "creditloss";
    case FaultKind::LinkDead:
        return "linkdead";
    case FaultKind::RouterDead:
        return "routerdead";
    case FaultKind::LinkHeal:
        return "linkheal";
    case FaultKind::RouterHeal:
        return "routerheal";
    }
    return "?";
}

FaultParams
faultParamsFromConfig(const Config &config)
{
    FaultParams p;
    p.bitflipRate = config.getDouble("fault_bitflip_rate", 0.0);
    p.dropRate = config.getDouble("fault_drop_rate", 0.0);
    p.creditLossRate =
        config.getDouble("fault_credit_loss_rate", 0.0);
    p.seed = config.getUint("fault_seed", p.seed);
    p.protect = config.getBool("fault_recovery", true);
    p.retryTimeout = config.getUint("fault_retry_timeout", p.retryTimeout);
    p.watchdogPeriod =
        config.getUint("fault_watchdog_period", p.watchdogPeriod);
    p.hardLinkFaults = static_cast<int>(
        config.getUint("hard_link_faults", 0));
    p.hardRouterFaults = static_cast<int>(
        config.getUint("hard_router_faults", 0));
    p.hardFaultCycle = config.getUint("hard_fault_cycle", 0);
    p.packetAgeLimit = config.getUint("fault_age_limit", 0);
    p.e2eTransport = config.getBool("e2e_transport", false);
    p.e2eTimeout = config.getUint("e2e_timeout", p.e2eTimeout);
    p.e2eRetryLimit = static_cast<int>(
        config.getUint("e2e_retry_limit",
                       static_cast<std::uint64_t>(p.e2eRetryLimit)));
    p.e2eAckDelay = config.getUint("e2e_ack_delay", p.e2eAckDelay);
    p.churnWaves =
        static_cast<int>(config.getUint("churn_waves", 0));
    p.churnStart = config.getUint("churn_start", p.churnStart);
    p.churnPeriod = config.getUint("churn_period", p.churnPeriod);
    p.churnHealAfter =
        config.getUint("churn_heal_after", p.churnHealAfter);
    p.churnLinks = static_cast<int>(
        config.getUint("churn_links",
                       static_cast<std::uint64_t>(p.churnLinks)));
    p.churnRouters = static_cast<int>(
        config.getUint("churn_routers",
                       static_cast<std::uint64_t>(p.churnRouters)));
    NOX_ASSERT(p.e2eRetryLimit >= 0 && p.e2eRetryLimit < 256,
               "e2e_retry_limit must fit the attempt encoding");
    p.enabled = p.anyRate() || p.anyHard() || p.e2eTransport ||
                config.has("fault_seed") ||
                config.has("fault_recovery") ||
                config.has("fault_age_limit");
    return p;
}

FaultInjector::FaultInjector(const FaultParams &params)
    : params_(params), seedMix_(mix64(params.seed ^ 0x6E6F58F4ULL))
{
}

void
FaultInjector::scheduleOneShot(FaultKind kind, Cycle cycle,
                               NodeId router, int port,
                               std::uint64_t flip_mask)
{
    if (faultKindHard(kind)) {
        const bool link = kind == FaultKind::LinkDead ||
                          kind == FaultKind::LinkHeal;
        hardFaults_.push_back({kind, cycle, router, link ? port : -1});
        return;
    }
    oneShots_.push_back({kind, cycle, router, port, flip_mask, false});
}

void
FaultInjector::planHardFaults(const Mesh &mesh)
{
    const int nr = mesh.numRouters();
    std::vector<std::uint8_t> dead(static_cast<std::size_t>(nr), 0);

    // Routers first: the link pool below excludes their stubs.
    NOX_ASSERT(params_.hardRouterFaults < nr,
               "hard_router_faults must leave at least one router");
    for (int i = 0; i < params_.hardRouterFaults; ++i) {
        std::uint64_t attempt = 0;
        for (;;) {
            const auto r = static_cast<NodeId>(
                mix64(seedMix_ ^
                      mix64(0xD0A1ULL ^
                            (static_cast<std::uint64_t>(i) << 32) ^
                            attempt)) %
                static_cast<std::uint64_t>(nr));
            ++attempt;
            if (dead[r])
                continue;
            dead[r] = 1;
            hardFaults_.push_back({FaultKind::RouterDead,
                                   params_.hardFaultCycle, r, -1});
            break;
        }
    }

    // Canonical internal links (East/South from each router) whose
    // endpoints both survive the router kills above.
    std::vector<std::pair<NodeId, int>> pool;
    for (NodeId r = 0; r < static_cast<NodeId>(nr); ++r) {
        if (dead[r])
            continue;
        for (int port : {static_cast<int>(kPortEast),
                         static_cast<int>(kPortSouth)}) {
            const NodeId n = mesh.neighbor(r, port);
            if (n != kInvalidNode && !dead[n])
                pool.emplace_back(r, port);
        }
    }
    NOX_ASSERT(params_.hardLinkFaults <=
                   static_cast<int>(pool.size()),
               "hard_link_faults exceeds the surviving internal links");
    std::vector<std::pair<NodeId, int>> permanentLinks;
    for (int i = 0; i < params_.hardLinkFaults; ++i) {
        const auto idx = static_cast<std::size_t>(
            mix64(seedMix_ ^
                  mix64(0x11F0ULL ^
                        (static_cast<std::uint64_t>(i) << 32))) %
            pool.size());
        const auto [r, port] = pool[idx];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
        permanentLinks.emplace_back(r, port);
        hardFaults_.push_back({FaultKind::LinkDead,
                               params_.hardFaultCycle, r, port});
    }

    // Churn waves: paired kill/heal events. Victims are hash-drawn
    // per wave, disjoint from the permanent kills above (the heal of
    // a churn victim must never resurrect a permanently killed
    // entity) and distinct within the wave. Waves are independent
    // draws; with churnHealAfter < churnPeriod every wave starts from
    // a fully healed mesh, and overlapping schedules degrade safely
    // into no-op kills/heals at application time.
    for (int w = 0; w < params_.churnWaves; ++w) {
        const Cycle killAt =
            params_.churnStart +
            static_cast<Cycle>(w) * params_.churnPeriod;
        const Cycle healAt = killAt + params_.churnHealAfter;
        const auto waveSalt = static_cast<std::uint64_t>(w) << 40;

        std::vector<std::uint8_t> waveDead = dead;
        NOX_ASSERT(params_.churnRouters < nr,
                   "churn_routers must leave at least one router");
        for (int i = 0; i < params_.churnRouters; ++i) {
            std::uint64_t attempt = 0;
            for (;;) {
                const auto r = static_cast<NodeId>(
                    mix64(seedMix_ ^
                          mix64(0xC4A0ULL ^ waveSalt ^
                                (static_cast<std::uint64_t>(i)
                                 << 32) ^
                                attempt)) %
                    static_cast<std::uint64_t>(nr));
                ++attempt;
                if (waveDead[r])
                    continue;
                waveDead[r] = 1;
                hardFaults_.push_back(
                    {FaultKind::RouterDead, killAt, r, -1});
                hardFaults_.push_back(
                    {FaultKind::RouterHeal, healAt, r, -1});
                break;
            }
        }

        std::vector<std::pair<NodeId, int>> wavePool;
        for (NodeId r = 0; r < static_cast<NodeId>(nr); ++r) {
            if (waveDead[r])
                continue;
            for (int port : {static_cast<int>(kPortEast),
                             static_cast<int>(kPortSouth)}) {
                const NodeId n = mesh.neighbor(r, port);
                if (n != kInvalidNode && !waveDead[n] &&
                    std::find(permanentLinks.begin(),
                              permanentLinks.end(),
                              std::make_pair(r, port)) ==
                        permanentLinks.end())
                    wavePool.emplace_back(r, port);
            }
        }
        NOX_ASSERT(params_.churnLinks <=
                       static_cast<int>(wavePool.size()),
                   "churn_links exceeds the surviving internal links");
        for (int i = 0; i < params_.churnLinks; ++i) {
            const auto idx = static_cast<std::size_t>(
                mix64(seedMix_ ^
                      mix64(0x71AEULL ^ waveSalt ^
                            (static_cast<std::uint64_t>(i) << 32))) %
                wavePool.size());
            const auto [r, port] = wavePool[idx];
            wavePool.erase(wavePool.begin() +
                           static_cast<std::ptrdiff_t>(idx));
            hardFaults_.push_back(
                {FaultKind::LinkDead, killAt, r, port});
            hardFaults_.push_back(
                {FaultKind::LinkHeal, healAt, r, port});
        }
    }
}

std::vector<FaultInjector::HardFault>
FaultInjector::takeDueHardFaults(Cycle now)
{
    std::vector<HardFault> due;
    for (const HardFault &h : hardFaults_) {
        if (h.cycle <= now)
            due.push_back(h);
    }
    if (due.empty())
        return due;
    hardFaults_.erase(
        std::remove_if(hardFaults_.begin(), hardFaults_.end(),
                       [now](const HardFault &h) {
                           return h.cycle <= now;
                       }),
        hardFaults_.end());
    for (const HardFault &h : due) {
        // Kills are recorded up front (the planner only schedules
        // valid victims); heals are recorded via recordHeal() once
        // the Network actually applies them.
        if (h.kind == FaultKind::LinkDead ||
            h.kind == FaultKind::RouterDead)
            record(h.kind, h.router, h.port, 0);
    }
    return due;
}

void
FaultInjector::recordHeal(FaultKind kind, NodeId router, int port)
{
    NOX_ASSERT(kind == FaultKind::LinkHeal ||
                   kind == FaultKind::RouterHeal,
               "recordHeal with a non-heal kind");
    record(kind, router, port, 0);
}

std::size_t
FaultInjector::pendingOneShots() const
{
    std::size_t n = 0;
    for (const auto &o : oneShots_)
        if (!o.fired)
            ++n;
    return n;
}

double
FaultInjector::eventUniform(FaultKind kind, NodeId router, int port,
                            std::uint64_t salt) const
{
    // Pure function of (seed, kind, cycle, endpoint): the draw does
    // not depend on evaluation order, so every scheduling kernel sees
    // the same fault schedule.
    std::uint64_t key = seedMix_;
    key ^= mix64((static_cast<std::uint64_t>(kind) << 56) ^
                 (static_cast<std::uint64_t>(now_) << 24) ^
                 (static_cast<std::uint64_t>(router) << 8) ^
                 static_cast<std::uint64_t>(port & 0xFF) ^
                 (salt << 16));
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

bool
FaultInjector::takeOneShot(FaultKind kind, NodeId router, int port,
                           std::uint64_t *flip_mask)
{
    for (auto &o : oneShots_) {
        if (o.fired || o.kind != kind || o.cycle > now_ ||
            o.router != router || o.port != port)
            continue;
        o.fired = true;
        if (flip_mask)
            *flip_mask = o.flipMask ? o.flipMask : 1ULL;
        return true;
    }
    return false;
}

void
FaultInjector::record(FaultKind kind, NodeId router, int port,
                      std::uint64_t flip_mask)
{
    // Heals undo faults rather than inject them: they keep their own
    // counters and trace kind and stay out of faultsInjected.
    bool hard = false;
    bool heal = false;
    switch (kind) {
    case FaultKind::BitFlip:
        stats_->bitflipsInjected += 1;
        break;
    case FaultKind::Drop:
        stats_->dropsInjected += 1;
        break;
    case FaultKind::CreditLoss:
        stats_->creditsLostInjected += 1;
        break;
    case FaultKind::LinkDead:
        stats_->hardLinkFaults += 1;
        hard = true;
        break;
    case FaultKind::RouterDead:
        stats_->hardRouterFaults += 1;
        hard = true;
        break;
    case FaultKind::LinkHeal:
        stats_->linkHeals += 1;
        heal = true;
        break;
    case FaultKind::RouterHeal:
        stats_->routerHeals += 1;
        heal = true;
        break;
    }
    if (!heal)
        stats_->faultsInjected += 1;
    if (log_.size() < kLogCap)
        log_.push_back({now_, kind, router, port, flip_mask});
    if (tracer_) {
        tracer_->record(heal   ? TraceEventKind::HealApply
                        : hard ? TraceEventKind::HardFault
                               : TraceEventKind::FaultInject,
                        router, port, flip_mask,
                        static_cast<std::uint32_t>(kind));
    }
}

FlitFaults
FaultInjector::drawFlitFaults(NodeId router, int in_port)
{
    FlitFaults f;

    // Drop beats bit flip: a vanished flit has no bits to corrupt.
    if (takeOneShot(FaultKind::Drop, router, in_port, nullptr) ||
        (params_.dropRate > 0.0 &&
         eventUniform(FaultKind::Drop, router, in_port, 0) <
             params_.dropRate)) {
        f.dropped = true;
        record(FaultKind::Drop, router, in_port, 0);
        return f;
    }

    std::uint64_t mask = 0;
    if (takeOneShot(FaultKind::BitFlip, router, in_port, &mask)) {
        f.flipMask = mask;
    } else if (params_.bitflipRate > 0.0 &&
               eventUniform(FaultKind::BitFlip, router, in_port, 0) <
                   params_.bitflipRate) {
        // Exactly one payload bit flips per event: a single-bit upset
        // is always caught by the link CRC, and the detection
        // accounting stays exact (one event = one fault).
        const int bit = static_cast<int>(
            mix64(seedMix_ ^
                  mix64((static_cast<std::uint64_t>(now_) << 20) ^
                        (static_cast<std::uint64_t>(router) << 6) ^
                        static_cast<std::uint64_t>(in_port) ^
                        0xB17FULL)) &
            63);
        f.flipMask = 1ULL << bit;
    }
    if (f.flipMask != 0)
        record(FaultKind::BitFlip, router, in_port, f.flipMask);
    return f;
}

bool
FaultInjector::drawCreditLoss(NodeId router, int out_port,
                              std::uint64_t salt)
{
    if (takeOneShot(FaultKind::CreditLoss, router, out_port,
                    nullptr) ||
        (params_.creditLossRate > 0.0 &&
         eventUniform(FaultKind::CreditLoss, router, out_port, salt) <
             params_.creditLossRate)) {
        record(FaultKind::CreditLoss, router, out_port, 0);
        return true;
    }
    return false;
}

void
FaultInjector::serialize(snap::Writer &w) const
{
    snap::tag(w, snap::fourcc("FINJ"));
    w.u64(now_);
    w.u64(oneShots_.size());
    for (const OneShot &o : oneShots_) {
        w.u8(static_cast<std::uint8_t>(o.kind));
        w.u64(o.cycle);
        w.i32(o.router);
        w.i32(o.port);
        w.u64(o.flipMask);
        w.boolean(o.fired);
    }
    w.u64(hardFaults_.size());
    for (const HardFault &h : hardFaults_) {
        w.u8(static_cast<std::uint8_t>(h.kind));
        w.u64(h.cycle);
        w.i32(h.router);
        w.i32(h.port);
    }
    w.u64(log_.size());
    for (const FaultEvent &e : log_) {
        w.u64(e.cycle);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.i32(e.router);
        w.i32(e.port);
        w.u64(e.flipMask);
    }
}

void
FaultInjector::restore(snap::Reader &r)
{
    snap::checkTag(r, snap::fourcc("FINJ"));
    now_ = r.u64();
    oneShots_.clear();
    const std::uint64_t nshot = r.u64();
    oneShots_.reserve(static_cast<std::size_t>(nshot));
    for (std::uint64_t i = 0; i < nshot; ++i) {
        OneShot o;
        o.kind = static_cast<FaultKind>(r.u8());
        o.cycle = r.u64();
        o.router = r.i32();
        o.port = r.i32();
        o.flipMask = r.u64();
        o.fired = r.boolean();
        oneShots_.push_back(o);
    }
    hardFaults_.clear();
    const std::uint64_t nhard = r.u64();
    hardFaults_.reserve(static_cast<std::size_t>(nhard));
    for (std::uint64_t i = 0; i < nhard; ++i) {
        HardFault h;
        h.kind = static_cast<FaultKind>(r.u8());
        h.cycle = r.u64();
        h.router = r.i32();
        h.port = r.i32();
        hardFaults_.push_back(h);
    }
    log_.clear();
    const std::uint64_t nlog = r.u64();
    if (nlog > kLogCap)
        r.fail("fault log exceeds its cap");
    log_.reserve(static_cast<std::size_t>(nlog));
    for (std::uint64_t i = 0; i < nlog; ++i) {
        FaultEvent e;
        e.cycle = r.u64();
        e.kind = static_cast<FaultKind>(r.u8());
        e.router = r.i32();
        e.port = r.i32();
        e.flipMask = r.u64();
        log_.push_back(e);
    }
}

} // namespace nox
