#include "noc/fault_injector.hpp"

#include "common/config.hpp"
#include "common/rng.hpp"

namespace nox {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::BitFlip:
        return "bitflip";
    case FaultKind::Drop:
        return "drop";
    case FaultKind::CreditLoss:
        return "creditloss";
    }
    return "?";
}

FaultParams
faultParamsFromConfig(const Config &config)
{
    FaultParams p;
    p.bitflipRate = config.getDouble("fault_bitflip_rate", 0.0);
    p.dropRate = config.getDouble("fault_drop_rate", 0.0);
    p.creditLossRate =
        config.getDouble("fault_credit_loss_rate", 0.0);
    p.seed = config.getUint("fault_seed", p.seed);
    p.protect = config.getBool("fault_recovery", true);
    p.retryTimeout = config.getUint("fault_retry_timeout", p.retryTimeout);
    p.watchdogPeriod =
        config.getUint("fault_watchdog_period", p.watchdogPeriod);
    p.enabled = p.anyRate() || config.has("fault_seed") ||
                config.has("fault_recovery");
    return p;
}

FaultInjector::FaultInjector(const FaultParams &params)
    : params_(params), seedMix_(mix64(params.seed ^ 0x6E6F58F4ULL))
{
}

void
FaultInjector::scheduleOneShot(FaultKind kind, Cycle cycle,
                               NodeId router, int port,
                               std::uint64_t flip_mask)
{
    oneShots_.push_back({kind, cycle, router, port, flip_mask, false});
}

std::size_t
FaultInjector::pendingOneShots() const
{
    std::size_t n = 0;
    for (const auto &o : oneShots_)
        if (!o.fired)
            ++n;
    return n;
}

double
FaultInjector::eventUniform(FaultKind kind, NodeId router, int port,
                            std::uint64_t salt) const
{
    // Pure function of (seed, kind, cycle, endpoint): the draw does
    // not depend on evaluation order, so every scheduling kernel sees
    // the same fault schedule.
    std::uint64_t key = seedMix_;
    key ^= mix64((static_cast<std::uint64_t>(kind) << 56) ^
                 (static_cast<std::uint64_t>(now_) << 24) ^
                 (static_cast<std::uint64_t>(router) << 8) ^
                 static_cast<std::uint64_t>(port & 0xFF) ^
                 (salt << 16));
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
}

bool
FaultInjector::takeOneShot(FaultKind kind, NodeId router, int port,
                           std::uint64_t *flip_mask)
{
    for (auto &o : oneShots_) {
        if (o.fired || o.kind != kind || o.cycle > now_ ||
            o.router != router || o.port != port)
            continue;
        o.fired = true;
        if (flip_mask)
            *flip_mask = o.flipMask ? o.flipMask : 1ULL;
        return true;
    }
    return false;
}

void
FaultInjector::record(FaultKind kind, NodeId router, int port,
                      std::uint64_t flip_mask)
{
    stats_->faultsInjected += 1;
    switch (kind) {
    case FaultKind::BitFlip:
        stats_->bitflipsInjected += 1;
        break;
    case FaultKind::Drop:
        stats_->dropsInjected += 1;
        break;
    case FaultKind::CreditLoss:
        stats_->creditsLostInjected += 1;
        break;
    }
    if (log_.size() < kLogCap)
        log_.push_back({now_, kind, router, port, flip_mask});
    if (tracer_) {
        tracer_->record(TraceEventKind::FaultInject, router, port,
                        flip_mask,
                        static_cast<std::uint32_t>(kind));
    }
}

FlitFaults
FaultInjector::drawFlitFaults(NodeId router, int in_port)
{
    FlitFaults f;

    // Drop beats bit flip: a vanished flit has no bits to corrupt.
    if (takeOneShot(FaultKind::Drop, router, in_port, nullptr) ||
        (params_.dropRate > 0.0 &&
         eventUniform(FaultKind::Drop, router, in_port, 0) <
             params_.dropRate)) {
        f.dropped = true;
        record(FaultKind::Drop, router, in_port, 0);
        return f;
    }

    std::uint64_t mask = 0;
    if (takeOneShot(FaultKind::BitFlip, router, in_port, &mask)) {
        f.flipMask = mask;
    } else if (params_.bitflipRate > 0.0 &&
               eventUniform(FaultKind::BitFlip, router, in_port, 0) <
                   params_.bitflipRate) {
        // Exactly one payload bit flips per event: a single-bit upset
        // is always caught by the link CRC, and the detection
        // accounting stays exact (one event = one fault).
        const int bit = static_cast<int>(
            mix64(seedMix_ ^
                  mix64((static_cast<std::uint64_t>(now_) << 20) ^
                        (static_cast<std::uint64_t>(router) << 6) ^
                        static_cast<std::uint64_t>(in_port) ^
                        0xB17FULL)) &
            63);
        f.flipMask = 1ULL << bit;
    }
    if (f.flipMask != 0)
        record(FaultKind::BitFlip, router, in_port, f.flipMask);
    return f;
}

bool
FaultInjector::drawCreditLoss(NodeId router, int out_port,
                              std::uint64_t salt)
{
    if (takeOneShot(FaultKind::CreditLoss, router, out_port,
                    nullptr) ||
        (params_.creditLossRate > 0.0 &&
         eventUniform(FaultKind::CreditLoss, router, out_port, salt) <
             params_.creditLossRate)) {
        record(FaultKind::CreditLoss, router, out_port, 0);
        return true;
    }
    return false;
}

} // namespace nox
