/**
 * @file
 * Aggregated per-run network statistics.
 */

#ifndef NOX_NOC_NETWORK_STATS_HPP
#define NOX_NOC_NETWORK_STATS_HPP

#include <array>
#include <cstdint>

#include "common/stats.hpp"
#include "noc/types.hpp"

// Histogram is bucketed in cycles; 1-cycle buckets up to 4096 cover
// everything short of deep saturation (overflow bucket catches that).

namespace nox {

/**
 * Fault-injection and recovery counters. Injected counts are bumped by
 * the FaultInjector at the moment a fault perturbs the fabric;
 * detection/recovery counts are bumped by the link layer, decode
 * logic and sinks as faults are caught and healed. All counters are
 * part of the bit-identical cross-kernel equivalence contract.
 */
struct FaultStats
{
    /** Total injected faults (bit flips + drops + credit losses). */
    std::uint64_t faultsInjected = 0;
    std::uint64_t bitflipsInjected = 0;
    std::uint64_t dropsInjected = 0;
    std::uint64_t creditsLostInjected = 0;

    /** Faults caught by a defence layer: link CRC rejections,
     *  retry-timeout drop detections, XOR-decode payload mismatches
     *  and watchdog credit-divergence detections. */
    std::uint64_t faultsDetected = 0;

    /** Link-level retransmission attempts (includes re-faulted
     *  retries, so this can exceed dropsInjected+bitflipsInjected). */
    std::uint64_t retransmissions = 0;

    /** Credit-watchdog resynchronization events. */
    std::uint64_t creditResyncs = 0;

    /** Corrupted payloads that escaped the link layer and reached a
     *  destination sink (caught there by the end-to-end payload
     *  check; zero whenever recovery is enabled). */
    std::uint64_t corruptedEscapes = 0;

    /** XOR-decode payload mismatches observed mid-network (NoX input
     *  ports) or at ejection sinks — NoX's decode property acting as
     *  a free corruption detector. Also counted in faultsDetected. */
    std::uint64_t decodeMismatches = 0;

    // -- hard (fail-stop) faults and their fallout --

    /** Fail-stop kills applied (links / whole routers). */
    std::uint64_t hardLinkFaults = 0;
    std::uint64_t hardRouterFaults = 0;

    /** Routing-table rebuilds (1 for the initial build; +1 per batch
     *  of hard faults applied). */
    std::uint64_t tableRebuilds = 0;

    /** Flits / packets written off by hard faults (in flight on a
     *  dying link, buffered at a dying router, or stranded when their
     *  destination became unreachable). Without the E2E transport
     *  these are final, counted losses and conservation is
     *  `ejected + packetsLostHard == injected`; with the transport
     *  enabled every write-off is retried from the source window and
     *  the end-state identity is the exactly-once one:
     *  `ejected + deliveryFailures == injected`. */
    std::uint64_t flitsLostHard = 0;
    std::uint64_t packetsLostHard = 0;

    // -- E2E transport (source window / ack / retransmit) --

    /** Whole-packet retransmissions triggered by the source NIC's
     *  E2E timeout (each travels under a fresh attempt id). */
    std::uint64_t e2eRetransmits = 0;

    /** Duplicate flits suppressed at the destination door (late
     *  copies of an already-delivered flow sequence number). */
    std::uint64_t dupSuppressed = 0;

    /** Packets abandoned after exhausting the E2E retry budget —
     *  the only way an accepted packet is not delivered. */
    std::uint64_t deliveryFailures = 0;

    // -- healing --

    /** Heal events applied (revived links / routers). */
    std::uint64_t linkHeals = 0;
    std::uint64_t routerHeals = 0;

    /** Injection attempts rejected because the destination is
     *  unreachable in the current topology (never injected, never
     *  counted in packetsInjected). */
    std::uint64_t unreachableRejected = 0;

    /** Per-flow sequence inversions observed at delivery (adaptive
     *  rerouting after a mid-run kill can reorder flows; the NICs
     *  track per-(src,dst) sequence numbers to make this visible). */
    std::uint64_t flowReorders = 0;

    /** Packet-age watchdog alarms (packets older than the configured
     *  age limit; each also latches the flight recorder once). */
    std::uint64_t ageAlarms = 0;

    bool
    identicalTo(const FaultStats &o) const
    {
        return faultsInjected == o.faultsInjected &&
               bitflipsInjected == o.bitflipsInjected &&
               dropsInjected == o.dropsInjected &&
               creditsLostInjected == o.creditsLostInjected &&
               faultsDetected == o.faultsDetected &&
               retransmissions == o.retransmissions &&
               creditResyncs == o.creditResyncs &&
               corruptedEscapes == o.corruptedEscapes &&
               decodeMismatches == o.decodeMismatches &&
               hardLinkFaults == o.hardLinkFaults &&
               hardRouterFaults == o.hardRouterFaults &&
               tableRebuilds == o.tableRebuilds &&
               flitsLostHard == o.flitsLostHard &&
               packetsLostHard == o.packetsLostHard &&
               e2eRetransmits == o.e2eRetransmits &&
               dupSuppressed == o.dupSuppressed &&
               deliveryFailures == o.deliveryFailures &&
               linkHeals == o.linkHeals &&
               routerHeals == o.routerHeals &&
               unreachableRejected == o.unreachableRejected &&
               flowReorders == o.flowReorders &&
               ageAlarms == o.ageAlarms;
    }
};

/** Latency / throughput statistics gathered by the Network. */
struct NetworkStats
{
    // Totals over the whole simulation.
    std::uint64_t packetsInjected = 0;
    std::uint64_t flitsInjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t flitsEjected = 0;

    // Measurement window [measureStart, measureEnd).
    Cycle measureStart = 0;
    Cycle measureEnd = ~Cycle{0};

    /** Packet latency in cycles (creation to last-flit delivery,
     *  including source-queue time), for packets created inside the
     *  measurement window. */
    SampleStats latency;

    /** Network latency in cycles (head-flit injection into the
     *  router to last-flit delivery), same population. */
    SampleStats netLatency;

    /** Total-latency histogram (cycles) for percentile queries.
     *  Auto-widening: deeply congested runs double the bucket width
     *  instead of silently piling tail latencies into overflow. */
    Histogram latencyHist{1.0, 4096, true};

    /** Per-class total latency (synthetic / request / reply). */
    std::array<SampleStats, 3> latencyByClass;

    /** Packets created in the window (for drain accounting). */
    std::uint64_t packetsMeasured = 0;
    std::uint64_t packetsMeasuredDone = 0;

    /** Flits delivered during the window (accepted throughput). */
    std::uint64_t flitsEjectedInWindow = 0;

    /** Flits created during the window (actual offered load; silent
     *  sources under deterministic patterns inject nothing). */
    std::uint64_t flitsCreatedInWindow = 0;

    /** Largest source-queue depth observed (saturation signal). */
    std::size_t maxSourceQueueFlits = 0;

    /** Fault-injection and recovery counters (all zero when fault
     *  injection is disabled). */
    FaultStats faults;

    /** Accepted throughput in flits/cycle/node over the window. */
    double
    acceptedFlitsPerNodeCycle(int num_nodes) const
    {
        const Cycle window = measureEnd - measureStart;
        if (window == 0 || num_nodes == 0)
            return 0.0;
        return static_cast<double>(flitsEjectedInWindow) /
               (static_cast<double>(window) *
                static_cast<double>(num_nodes));
    }
};

/**
 * Bit-exact equality across every field, including the floating-point
 * latency accumulators. This is the predicate behind the scheduling-
 * kernel equivalence guarantee: an always-tick run and an activity-
 * driven run of the same seeded configuration must satisfy it.
 */
inline bool
identicalStats(const NetworkStats &a, const NetworkStats &b)
{
    for (std::size_t c = 0; c < a.latencyByClass.size(); ++c) {
        if (!a.latencyByClass[c].identicalTo(b.latencyByClass[c]))
            return false;
    }
    return a.packetsInjected == b.packetsInjected &&
           a.flitsInjected == b.flitsInjected &&
           a.packetsEjected == b.packetsEjected &&
           a.flitsEjected == b.flitsEjected &&
           a.measureStart == b.measureStart &&
           a.measureEnd == b.measureEnd &&
           a.latency.identicalTo(b.latency) &&
           a.netLatency.identicalTo(b.netLatency) &&
           a.latencyHist.identicalTo(b.latencyHist) &&
           a.packetsMeasured == b.packetsMeasured &&
           a.packetsMeasuredDone == b.packetsMeasuredDone &&
           a.flitsEjectedInWindow == b.flitsEjectedInWindow &&
           a.flitsCreatedInWindow == b.flitsCreatedInWindow &&
           a.maxSourceQueueFlits == b.maxSourceQueueFlits &&
           a.faults.identicalTo(b.faults);
}

} // namespace nox

#endif // NOX_NOC_NETWORK_STATS_HPP
