#include "noc/transport.hpp"

#include <algorithm>
#include <vector>

#include "common/log.hpp"

namespace nox {

E2eTransport::E2eTransport(Cycle timeout, std::uint32_t retry_limit,
                           Cycle ack_delay)
    : timeout_(timeout), retryLimit_(retry_limit), ackDelay_(ack_delay)
{
    NOX_ASSERT(timeout_ > 0, "E2E timeout must be positive");
}

void
E2eTransport::onInject(const FlitDesc &head, Cycle now)
{
    const PacketId base = basePacket(head.packet);
    NOX_ASSERT(packetAttempt(head.packet) == 0,
               "injected packet already carries attempt bits");
    NOX_ASSERT(window_.find(base) == window_.end(),
               "packet ", base, " already in the transport window");
    TransportEntry e;
    e.src = head.src;
    e.dest = head.dest;
    e.numFlits = head.packetSize;
    e.cls = head.cls;
    e.flowSeq = head.flowSeq;
    e.origCreate = head.createCycle;
    window_.emplace(base, e);
    timeouts_.emplace_back(now + timeout_, base);
}

bool
E2eTransport::duplicateFlit(const FlitDesc &d) const
{
    const auto it = flows_.find(flowKey(d.src, d.dest));
    return it != flows_.end() && it->second.contains(d.flowSeq);
}

bool
E2eTransport::onPacketDelivered(PacketId wire_packet, Cycle now,
                                std::uint32_t &attempts_out)
{
    const PacketId base = basePacket(wire_packet);
    const auto it = window_.find(base);
    // The door filter drops every flit of a retired packet before it
    // can reach arrival counting, so a completion always finds its
    // window entry, and finds it at most once.
    NOX_ASSERT(it != window_.end(),
               "completion for packet ", base,
               " without a transport window entry");
    TransportEntry &e = it->second;
    NOX_ASSERT(!e.delivered, "packet ", base, " completed twice");
    e.delivered = true;
    markFlowDone(e);
    acks_.emplace_back(now + ackDelay_, base);
    attempts_out = e.attempt;
    return true;
}

void
E2eTransport::sweep(Cycle now, TransportListener &listener)
{
    // Acks first: an entry whose ack and (stale) timeout are both due
    // retires cleanly instead of burning a retry.
    while (!acks_.empty() && acks_.front().first <= now) {
        const PacketId base = acks_.front().second;
        acks_.pop_front();
        const auto it = window_.find(base);
        NOX_ASSERT(it != window_.end() && it->second.delivered,
                   "ack due for retired packet ", base);
        const TransportEntry e = it->second;
        window_.erase(it);
        listener.onE2eAck(base, e);
    }

    while (!timeouts_.empty() && timeouts_.front().first <= now) {
        const PacketId base = timeouts_.front().second;
        timeouts_.pop_front();
        const auto it = window_.find(base);
        if (it == window_.end() || it->second.delivered)
            continue; // retired or awaiting its ack — stale wakeup
        TransportEntry &e = it->second;
        if (e.retries >= retryLimit_) {
            // Abandon: mark the flow so stragglers of any attempt are
            // dropped at the door, then surface the failure.
            markFlowDone(e);
            const TransportEntry dead = e;
            window_.erase(it);
            listener.onE2eFail(base, dead);
            continue;
        }
        e.retries += 1;
        e.attempt += 1;
        timeouts_.emplace_back(now + timeout_, base);
        // A false return means the resend could not be performed now
        // (dead source NIC, unreachable destination); the re-armed
        // timeout retries after the next heal window.
        (void)listener.onE2eResend(base, e);
    }
}

void
E2eTransport::markFlowDone(const TransportEntry &e)
{
    flows_[flowKey(e.src, e.dest)].insert(e.flowSeq);
}

void
E2eTransport::serialize(snap::Writer &w) const
{
    snap::tag(w, snap::fourcc("TRNS"));

    std::vector<PacketId> keys;
    keys.reserve(window_.size());
    for (const auto &[base, e] : window_)
        keys.push_back(base);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (const PacketId base : keys) {
        const TransportEntry &e = window_.at(base);
        w.u64(base);
        w.i32(e.src);
        w.i32(e.dest);
        w.u32(e.numFlits);
        w.u8(static_cast<std::uint8_t>(e.cls));
        w.u32(e.flowSeq);
        w.u64(e.origCreate);
        w.u32(e.attempt);
        w.u32(e.retries);
        w.boolean(e.delivered);
    }

    w.u64(timeouts_.size());
    for (const auto &[due, base] : timeouts_) {
        w.u64(due);
        w.u64(base);
    }
    w.u64(acks_.size());
    for (const auto &[due, base] : acks_) {
        w.u64(due);
        w.u64(base);
    }

    std::vector<std::uint64_t> flowKeys;
    flowKeys.reserve(flows_.size());
    for (const auto &[key, filter] : flows_)
        flowKeys.push_back(key);
    std::sort(flowKeys.begin(), flowKeys.end());
    w.u64(flowKeys.size());
    for (const std::uint64_t key : flowKeys) {
        const FlowFilter &f = flows_.at(key);
        w.u64(key);
        w.u32(f.watermark);
        std::vector<std::uint32_t> above(f.above.begin(),
                                         f.above.end());
        std::sort(above.begin(), above.end());
        w.u64(above.size());
        for (const std::uint32_t seq : above)
            w.u32(seq);
    }
}

void
E2eTransport::restore(snap::Reader &r)
{
    snap::checkTag(r, snap::fourcc("TRNS"));

    window_.clear();
    timeouts_.clear();
    acks_.clear();
    flows_.clear();

    const std::uint64_t nw = r.u64();
    for (std::uint64_t i = 0; i < nw; ++i) {
        const PacketId base = r.u64();
        TransportEntry e;
        e.src = r.i32();
        e.dest = r.i32();
        e.numFlits = r.u32();
        e.cls = static_cast<TrafficClass>(r.u8());
        e.flowSeq = r.u32();
        e.origCreate = r.u64();
        e.attempt = r.u32();
        e.retries = r.u32();
        e.delivered = r.boolean();
        if (!window_.emplace(base, e).second)
            r.fail("duplicate transport window entry");
    }

    const std::uint64_t nt = r.u64();
    for (std::uint64_t i = 0; i < nt; ++i) {
        const Cycle due = r.u64();
        const PacketId base = r.u64();
        if (!timeouts_.empty() && due < timeouts_.back().first)
            r.fail("transport timeout deque not monotone");
        timeouts_.emplace_back(due, base);
    }
    const std::uint64_t na = r.u64();
    for (std::uint64_t i = 0; i < na; ++i) {
        const Cycle due = r.u64();
        const PacketId base = r.u64();
        if (!acks_.empty() && due < acks_.back().first)
            r.fail("transport ack deque not monotone");
        acks_.emplace_back(due, base);
    }

    const std::uint64_t nf = r.u64();
    for (std::uint64_t i = 0; i < nf; ++i) {
        const std::uint64_t key = r.u64();
        FlowFilter f;
        f.watermark = r.u32();
        const std::uint64_t ns = r.u64();
        for (std::uint64_t s = 0; s < ns; ++s) {
            const std::uint32_t seq = r.u32();
            if (seq < f.watermark)
                r.fail("flow filter entry below its watermark");
            if (!f.above.insert(seq).second)
                r.fail("duplicate flow filter entry");
        }
        if (!flows_.emplace(key, std::move(f)).second)
            r.fail("duplicate flow filter key");
    }
}

} // namespace nox
