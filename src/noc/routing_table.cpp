#include "noc/routing_table.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/log.hpp"

namespace nox {

namespace {

constexpr int kMeshPorts = 4; ///< N, E, S, W
constexpr int kUnreach = std::numeric_limits<int>::max();

std::size_t
linkIndex(NodeId router, int port)
{
    return static_cast<std::size_t>(router) *
               static_cast<std::size_t>(kMeshPorts) +
           static_cast<std::size_t>(port);
}

} // namespace

// ---------------------------------------------------------------- FaultMap

FaultMap::FaultMap(const Mesh &mesh)
    : mesh_(&mesh),
      routerDead_(static_cast<std::size_t>(mesh.numRouters()), 0),
      linkDead_(static_cast<std::size_t>(mesh.numRouters()) *
                    kMeshPorts,
                0)
{
}

bool
FaultMap::routerDead(NodeId router) const
{
    return routerDead_[static_cast<std::size_t>(router)] != 0;
}

bool
FaultMap::linkDead(NodeId router, int port) const
{
    NOX_ASSERT(port >= kPortNorth && port <= kPortWest,
               "linkDead on non-mesh port ", port);
    if (routerDead(router) ||
        linkDead_[linkIndex(router, port)] != 0)
        return true;
    const NodeId nb = mesh_->neighbor(router, port);
    return nb != kInvalidNode && routerDead(nb);
}

bool
FaultMap::linkDeadExplicit(NodeId router, int port) const
{
    NOX_ASSERT(port >= kPortNorth && port <= kPortWest,
               "linkDeadExplicit on non-mesh port ", port);
    return linkDead_[linkIndex(router, port)] != 0;
}

bool
FaultMap::killLink(NodeId router, int port)
{
    NOX_ASSERT(mesh_ != nullptr, "FaultMap used before binding a mesh");
    if (port < kPortNorth || port > kPortWest)
        return false;
    if (routerDead(router))
        return false;
    const NodeId nb = mesh_->neighbor(router, port);
    if (nb == kInvalidNode || routerDead(nb))
        return false;
    if (linkDead_[linkIndex(router, port)] != 0)
        return false;
    linkDead_[linkIndex(router, port)] = 1;
    linkDead_[linkIndex(nb, Mesh::oppositePort(port))] = 1;
    ++faults_;
    return true;
}

bool
FaultMap::killRouter(NodeId router)
{
    NOX_ASSERT(mesh_ != nullptr, "FaultMap used before binding a mesh");
    if (routerDead(router))
        return false;
    // The router's links go down *implicitly* (derived in linkDead()),
    // so a later heal of the router lifts exactly them and no more.
    routerDead_[static_cast<std::size_t>(router)] = 1;
    ++faults_;
    return true;
}

bool
FaultMap::healLink(NodeId router, int port)
{
    NOX_ASSERT(mesh_ != nullptr, "FaultMap used before binding a mesh");
    if (port < kPortNorth || port > kPortWest)
        return false;
    if (linkDead_[linkIndex(router, port)] == 0)
        return false;
    const NodeId nb = mesh_->neighbor(router, port);
    NOX_ASSERT(nb != kInvalidNode, "explicit kill on an edge port");
    linkDead_[linkIndex(router, port)] = 0;
    linkDead_[linkIndex(nb, Mesh::oppositePort(port))] = 0;
    --faults_;
    NOX_ASSERT(faults_ >= 0, "fault count underflow");
    return true;
}

bool
FaultMap::healRouter(NodeId router)
{
    NOX_ASSERT(mesh_ != nullptr, "FaultMap used before binding a mesh");
    if (!routerDead(router))
        return false;
    routerDead_[static_cast<std::size_t>(router)] = 0;
    --faults_;
    NOX_ASSERT(faults_ >= 0, "fault count underflow");
    return true;
}

std::vector<NodeId>
FaultMap::deadRouters() const
{
    std::vector<NodeId> out;
    for (std::size_t r = 0; r < routerDead_.size(); ++r) {
        if (routerDead_[r])
            out.push_back(static_cast<NodeId>(r));
    }
    return out;
}

std::vector<std::pair<NodeId, int>>
FaultMap::explicitDeadLinks() const
{
    std::vector<std::pair<NodeId, int>> out;
    const auto nr = static_cast<NodeId>(routerDead_.size());
    for (NodeId r = 0; r < nr; ++r) {
        for (int p = kPortNorth; p <= kPortWest; ++p) {
            if (linkDead_[linkIndex(r, p)] == 0)
                continue;
            const NodeId nb = mesh_->neighbor(r, p);
            if (nb != kInvalidNode && r < nb)
                out.emplace_back(r, p);
        }
    }
    return out;
}

int
FaultMap::deadRouterCount() const
{
    int n = 0;
    for (const std::uint8_t d : routerDead_)
        n += d != 0;
    return n;
}

int
FaultMap::explicitDeadLinkCount() const
{
    return static_cast<int>(explicitDeadLinks().size());
}

// ------------------------------------------------------------ RoutingTable

RoutingTable::RoutingTable(const Mesh &mesh, RoutingAlgo algo)
    : mesh_(mesh), algo_(algo), numRouters_(mesh.numRouters()),
      table_(static_cast<std::size_t>(numRouters_) *
                 static_cast<std::size_t>(numRouters_),
             -1),
      routerDead_(static_cast<std::size_t>(numRouters_), 0),
      linkDead_(static_cast<std::size_t>(numRouters_) * kMeshPorts, 0)
{
    buildFaultFree();
    rebuilds_ = 1;
    NOX_ASSERT(dependencyGraphAcyclic(),
               "fault-free routing table has a channel-dependency "
               "cycle");
}

void
RoutingTable::rebuild(const FaultMap &map)
{
    for (NodeId r = 0; r < numRouters_; ++r) {
        routerDead_[static_cast<std::size_t>(r)] =
            map.routerDead(r) ? 1 : 0;
        for (int p = kPortNorth; p <= kPortWest; ++p) {
            linkDead_[linkIndex(r, p)] = map.linkDead(r, p) ? 1 : 0;
        }
    }
    if (map.anyFault())
        buildUpDown(map);
    else
        buildFaultFree();
    ++rebuilds_;
    NOX_ASSERT(dependencyGraphAcyclic(),
               "rebuilt routing table has a channel-dependency cycle");
}

void
RoutingTable::buildFaultFree()
{
    upDown_ = false;
    // Fill straight from the DOR functions: lookup() is then
    // bit-identical to the paper's function-pointer baseline.
    const int conc = mesh_.concentration();
    for (NodeId r = 0; r < numRouters_; ++r) {
        for (NodeId dr = 0; dr < numRouters_; ++dr) {
            const std::size_t at =
                static_cast<std::size_t>(r) *
                    static_cast<std::size_t>(numRouters_) +
                static_cast<std::size_t>(dr);
            if (dr == r) {
                table_[at] = -1; // lookup() resolves local ports
                continue;
            }
            const NodeId node = dr * conc;
            const int port = algo_ == RoutingAlgo::DorYX
                                 ? dorRouteYX(mesh_, r, node)
                                 : dorRoute(mesh_, r, node);
            table_[at] = static_cast<std::int8_t>(port);
        }
    }
}

void
RoutingTable::buildUpDown(const FaultMap &map)
{
    const int nr = numRouters_;
    const auto liveLink = [&](NodeId u, int p) {
        return mesh_.neighbor(u, p) != kInvalidNode &&
               !map.linkDead(u, p);
    };

    // BFS spanning forest: per connected component, levels from the
    // lowest-id live router. key(u) = (level, id) lexicographic;
    // a channel u->v is "up" iff key(v) < key(u). The levels persist
    // (level_) so forbiddenTurn() can classify stale traffic.
    upDown_ = true;
    level_.assign(static_cast<std::size_t>(nr), -1);
    std::vector<int> &level = level_;
    std::deque<NodeId> queue;
    for (NodeId root = 0; root < nr; ++root) {
        if (map.routerDead(root) ||
            level[static_cast<std::size_t>(root)] >= 0)
            continue;
        level[static_cast<std::size_t>(root)] = 0;
        queue.push_back(root);
        while (!queue.empty()) {
            const NodeId u = queue.front();
            queue.pop_front();
            for (int p = kPortNorth; p <= kPortWest; ++p) {
                if (!liveLink(u, p))
                    continue;
                const NodeId v = mesh_.neighbor(u, p);
                if (level[static_cast<std::size_t>(v)] >= 0)
                    continue;
                level[static_cast<std::size_t>(v)] =
                    level[static_cast<std::size_t>(u)] + 1;
                queue.push_back(v);
            }
        }
    }
    const auto key = [&](NodeId u) {
        return (static_cast<std::uint64_t>(
                    level[static_cast<std::size_t>(u)])
                << 32) |
               static_cast<std::uint32_t>(u);
    };

    // Live routers in ascending key order: up channels strictly
    // decrease the key, so relaxing in this order sees final values.
    std::vector<NodeId> byKey;
    byKey.reserve(static_cast<std::size_t>(nr));
    for (NodeId u = 0; u < nr; ++u) {
        if (!map.routerDead(u))
            byKey.push_back(u);
    }
    std::sort(byKey.begin(), byKey.end(),
              [&](NodeId a, NodeId b) { return key(a) < key(b); });

    std::vector<int> total(static_cast<std::size_t>(nr));
    std::vector<std::uint8_t> inDown(static_cast<std::size_t>(nr));
    for (NodeId d = 0; d < nr; ++d) {
        std::int8_t *row = nullptr; // filled per source below
        if (map.routerDead(d)) {
            for (NodeId u = 0; u < nr; ++u) {
                table_[static_cast<std::size_t>(u) *
                           static_cast<std::size_t>(nr) +
                       static_cast<std::size_t>(d)] = -1;
            }
            continue;
        }

        // Phase 1 — the "down set": routers that reach d using down
        // channels only, with their down-path distance. A router in
        // the set always forwards down (to another member), so every
        // path suffix after the first down move stays down-only.
        std::fill(total.begin(), total.end(), kUnreach);
        std::fill(inDown.begin(), inDown.end(), 0);
        total[static_cast<std::size_t>(d)] = 0;
        inDown[static_cast<std::size_t>(d)] = 1;
        queue.clear();
        queue.push_back(d);
        while (!queue.empty()) {
            const NodeId v = queue.front();
            queue.pop_front();
            for (int p = kPortNorth; p <= kPortWest; ++p) {
                if (!liveLink(v, p))
                    continue;
                const NodeId u = mesh_.neighbor(v, p);
                // Predecessor u whose channel u->v is down.
                if (key(u) >= key(v) ||
                    inDown[static_cast<std::size_t>(u)])
                    continue;
                inDown[static_cast<std::size_t>(u)] = 1;
                total[static_cast<std::size_t>(u)] =
                    total[static_cast<std::size_t>(v)] + 1;
                queue.push_back(u);
            }
        }

        // Phase 2 — everyone else climbs: processing in ascending
        // key order, each remaining router takes the up channel that
        // minimises total distance (lowest port breaks ties).
        for (const NodeId u : byKey) {
            if (u == d)
                continue;
            const std::size_t at = static_cast<std::size_t>(u) *
                                       static_cast<std::size_t>(nr) +
                                   static_cast<std::size_t>(d);
            row = &table_[at];
            if (inDown[static_cast<std::size_t>(u)]) {
                // Forced down hop toward d along a shortest down path.
                int bestPort = -1;
                for (int p = kPortNorth; p <= kPortWest; ++p) {
                    if (!liveLink(u, p))
                        continue;
                    const NodeId v = mesh_.neighbor(u, p);
                    if (key(v) <= key(u) ||
                        !inDown[static_cast<std::size_t>(v)])
                        continue;
                    if (total[static_cast<std::size_t>(v)] ==
                        total[static_cast<std::size_t>(u)] - 1) {
                        bestPort = p;
                        break;
                    }
                }
                NOX_ASSERT(bestPort >= 0,
                           "down-set router ", u,
                           " has no down hop toward ", d);
                *row = static_cast<std::int8_t>(bestPort);
                continue;
            }
            int best = kUnreach;
            int bestPort = -1;
            for (int p = kPortNorth; p <= kPortWest; ++p) {
                if (!liveLink(u, p))
                    continue;
                const NodeId v = mesh_.neighbor(u, p);
                if (key(v) >= key(u)) // only up channels here
                    continue;
                if (total[static_cast<std::size_t>(v)] == kUnreach)
                    continue;
                const int cand =
                    1 + total[static_cast<std::size_t>(v)];
                if (cand < best) {
                    best = cand;
                    bestPort = p;
                }
            }
            total[static_cast<std::size_t>(u)] = best;
            *row = static_cast<std::int8_t>(
                bestPort >= 0 ? bestPort : -1);
        }
        for (NodeId u = 0; u < nr; ++u) {
            if (map.routerDead(u)) {
                table_[static_cast<std::size_t>(u) *
                           static_cast<std::size_t>(nr) +
                       static_cast<std::size_t>(d)] = -1;
            }
        }
    }
}

bool
RoutingTable::dependencyGraphAcyclic() const
{
    // A channel is a live directed mesh link (router, out port).
    // Channel c1 depends on c2 when some destination's route enters
    // a router through c1 and immediately leaves through c2.
    const int nr = numRouters_;
    const std::size_t nc = static_cast<std::size_t>(nr) * kMeshPorts;
    std::vector<std::uint8_t> dep(nc * nc, 0);
    for (NodeId d = 0; d < nr; ++d) {
        if (routerDead_[static_cast<std::size_t>(d)])
            continue;
        for (NodeId u = 0; u < nr; ++u) {
            if (routerDead_[static_cast<std::size_t>(u)] || u == d)
                continue;
            const int pu =
                table_[static_cast<std::size_t>(u) *
                           static_cast<std::size_t>(nr) +
                       static_cast<std::size_t>(d)];
            if (pu < 0)
                continue;
            const NodeId v = mesh_.neighbor(u, pu);
            if (v == kInvalidNode || v == d)
                continue;
            const int pv =
                table_[static_cast<std::size_t>(v) *
                           static_cast<std::size_t>(nr) +
                       static_cast<std::size_t>(d)];
            if (pv < 0)
                continue;
            dep[linkIndex(u, pu) * nc + linkIndex(v, pv)] = 1;
        }
    }

    // Iterative three-colour DFS over the channel graph.
    enum : std::uint8_t { White = 0, Grey = 1, Black = 2 };
    std::vector<std::uint8_t> colour(nc, White);
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    for (std::size_t start = 0; start < nc; ++start) {
        if (colour[start] != White)
            continue;
        colour[start] = Grey;
        stack.emplace_back(start, 0);
        while (!stack.empty()) {
            auto &[c, next] = stack.back();
            bool descended = false;
            while (next < nc) {
                const std::size_t succ = next++;
                if (!dep[c * nc + succ])
                    continue;
                if (colour[succ] == Grey)
                    return false; // back edge = cycle
                if (colour[succ] == White) {
                    colour[succ] = Grey;
                    stack.emplace_back(succ, 0);
                    descended = true;
                    break;
                }
            }
            if (!descended && stack.back().second >= nc) {
                colour[stack.back().first] = Black;
                stack.pop_back();
            }
        }
    }
    return true;
}

} // namespace nox
