/**
 * @file
 * The mesh network: routers, NICs, wiring and the cycle loop.
 *
 * The Network is architecture-agnostic — a router factory supplied at
 * construction builds each node's router, so the same substrate hosts
 * all four evaluated microarchitectures (and any future one).
 */

#ifndef NOX_NOC_NETWORK_HPP
#define NOX_NOC_NETWORK_HPP

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "noc/energy_events.hpp"
#include "noc/fault_injector.hpp"
#include "noc/network_stats.hpp"
#include "noc/nic.hpp"
#include "noc/router.hpp"
#include "noc/routing_table.hpp"
#include "noc/traffic_source.hpp"
#include "noc/transport.hpp"
#include "obs/obs_params.hpp"

namespace nox {

/** Builds one router for a node. */
using RouterFactory = std::function<std::unique_ptr<Router>(
    NodeId, const Mesh &, const RoutingTable &, const RouterParams &)>;

/**
 * How Network::step() schedules component evaluation.
 *
 * AlwaysTick is the classic kernel: every router and NIC is evaluated
 * and committed every cycle. ActivityDriven maintains an active set —
 * components are re-armed when a flit or credit is staged to them and
 * retired once they report quiescent() at commit — so an idle mesh
 * region costs nothing (and, as clock gating, accrues no clock
 * energy). EquivalenceCheck runs the always-tick kernel while
 * maintaining the active set and asserts, every cycle, that each
 * retired component is genuinely quiescent — the in-situ validation
 * mode for the activity kernel's contract.
 */
enum class SchedulingMode : std::uint8_t {
    AlwaysTick = 0,
    ActivityDriven = 1,
    EquivalenceCheck = 2,
};

/** Display name ("alwaystick", "activity", "equivalence"). */
const char *schedulingModeName(SchedulingMode mode);

/** Parse a scheduling-mode name (fatal on unknown names). */
SchedulingMode parseSchedulingMode(const char *name);

/** Network construction parameters. */
struct NetworkParams
{
    int width = 8;
    int height = 8;
    int concentration = 1; ///< terminals per router (>1 = CMesh, §8)
    RouterParams router;   ///< numPorts is derived from concentration
    int sinkBufferDepth = 4;
    RoutingAlgo routing = RoutingAlgo::DorXY;
    SchedulingMode schedulingMode = SchedulingMode::AlwaysTick;
    FaultParams faults; ///< link-fault injection (disabled by default)
    ObsParams obs;      ///< tracing + metrics (disabled by default)

    /**
     * Deliberate-divergence knob (test/debug only): at the end of the
     * step whose ending cycle equals @p debugPerturbCycle, corrupt one
     * arbiter decision in router @p debugPerturbRouter (see
     * Router::debugPerturb). Seeds a known, cycle-exact divergence for
     * exercising the digest ledger and `trace_tool bisect`; 0 =
     * disabled. Applied after the kernel commits and before the
     * digest stride is captured, so the first differing stride is
     * labeled with exactly this cycle.
     */
    Cycle debugPerturbCycle = 0;
    NodeId debugPerturbRouter = 0;
};

/**
 * Structured diagnosis of a drain attempt. When a drain times out —
 * typically only under fault injection with recovery off, where
 * dropped flits strand their packets — the report names the
 * non-quiescent components and the partially-delivered packets, so a
 * fault-induced livelock is debuggable instead of a bare `false`.
 */
struct DrainReport
{
    bool drained = true;
    Cycle stoppedAt = 0;
    std::uint64_t packetsInFlight = 0;

    /** Packets deliberately written off by the hard-fault machinery
     *  (in flight on a dying link or stranded unreachable; cumulative
     *  over the run). These are accounted losses, not stalls: they do
     *  not block drained. */
    std::uint64_t undeliverablePackets = 0;

    /** Packets still genuinely in flight at stop — the count that
     *  decides drained (0 = success). */
    std::uint64_t stalledPackets = 0;

    std::vector<NodeId> busyRouters; ///< non-quiescent routers
    std::vector<NodeId> busyNics;    ///< non-quiescent NICs

    /** Packets some of whose flits reached the destination NIC
     *  (node, packet id, flits arrived so far), sorted. */
    struct PartialPacket
    {
        NodeId node = kInvalidNode;
        PacketId packet = kInvalidPacket;
        std::uint32_t flitsArrived = 0;
    };
    std::vector<PartialPacket> partialPackets;

    /** One-paragraph human-readable rendering of the diagnosis. */
    std::string summary() const;
};

/** A width x height mesh of single-cycle routers plus per-node NICs. */
class Network : public PacketInjector,
                public SinkListener,
                public TransportListener
{
  public:
    Network(const NetworkParams &params, RouterFactory factory);

    /** Attach a per-node traffic source (at most one per node). */
    void addSource(std::unique_ptr<TrafficSource> source);

    /** Enable/disable source ticking (off while draining a run). */
    void setSourcesEnabled(bool enabled) { sourcesEnabled_ = enabled; }

    /** Advance one clock cycle. */
    void step();

    /** Advance @p cycles clock cycles. */
    void run(Cycle cycles);

    /**
     * Step until every injected packet has been delivered or @p limit
     * cycles elapse. @return true if fully drained. On timeout, a
     * structured diagnosis of the stuck components is available via
     * lastDrainReport().
     */
    bool drain(Cycle limit);

    /** Diagnosis of the most recent drain() call. */
    const DrainReport &lastDrainReport() const
    {
        return drainReport_;
    }

    /** Restrict latency measurement to packets created in
     *  [start, end); throughput is counted over the same window. */
    void setMeasurementWindow(Cycle start, Cycle end);

    Cycle now() const { return now_; }
    SchedulingMode schedulingMode() const
    {
        return params_.schedulingMode;
    }

    /** Routers currently in the active set (all of them under the
     *  always-tick kernel; introspection for tests and benches). */
    int activeRouters() const;

    /** NICs currently in the active set. */
    int activeNics() const;

    const Mesh &mesh() const { return mesh_; }
    int numNodes() const { return mesh_.numNodes(); }
    int numRouters() const { return mesh_.numRouters(); }

    /** The shared routing table (tests inspect rebuilds/reachability). */
    const RoutingTable &routingTable() const { return table_; }

    /** The applied hard-fault map. */
    const FaultMap &faultMap() const { return faultMap_; }
    Router &router(NodeId r) { return *routers_[r]; }
    const Router &router(NodeId r) const { return *routers_[r]; }
    Nic &nic(NodeId n) { return *nics_[n]; }
    const NetworkStats &stats() const { return stats_; }

    /** The fault injector, or nullptr when injection is disabled
     *  (tests use it to schedule targeted one-shot faults). */
    FaultInjector *faultInjector() { return faults_.get(); }
    const FaultInjector *faultInjector() const { return faults_.get(); }

    /** The trace recorder, or nullptr when tracing is disabled. */
    TraceRecorder *tracer() { return tracer_.get(); }
    const TraceRecorder *tracer() const { return tracer_.get(); }

    /** The metrics sampler, or nullptr when sampling is disabled. */
    MetricsSampler *metrics() { return metrics_.get(); }
    const MetricsSampler *metrics() const { return metrics_.get(); }

    /** The latency-provenance observer, or nullptr when disabled. */
    LatencyProvenance *provenance() { return prov_.get(); }
    const LatencyProvenance *provenance() const { return prov_.get(); }

    /** The simulator self-profiler, or nullptr when disabled. */
    PhaseProfiler *profiler() { return profiler_.get(); }
    const PhaseProfiler *profiler() const { return profiler_.get(); }

    /** The run-telemetry heartbeat, or nullptr when disabled. */
    RunTelemetry *telemetry() { return telemetry_.get(); }
    const RunTelemetry *telemetry() const { return telemetry_.get(); }

    /** The state-digest ledger, or nullptr when disabled. */
    DigestLedger *digest() { return digest_.get(); }
    const DigestLedger *digest() const { return digest_.get(); }

    /**
     * Capture one digest stride of the current state: the canonical
     * Digest-scope serialize() bytes of every component, hashed
     * per-component (see obs/digest.hpp). Must be called between
     * steps, like serialize(). Usable with the ledger off — tests and
     * the bisector digest networks that were built without one.
     * @p scratch is reused across components and strides.
     */
    DigestStride computeDigestStride(snap::Writer &scratch) const;

    /** Convenience overload with a throwaway scratch buffer. */
    DigestStride
    computeDigestStride() const
    {
        snap::Writer scratch;
        return computeDigestStride(scratch);
    }

    /**
     * End-of-run observability flush: closes the final partial
     * metrics window and writes the configured exports (metrics
     * JSONL, Chrome trace JSON). Idempotent on the window flush;
     * call once after the last step()/drain().
     */
    void finishObservability();

    std::uint64_t packetsInFlight() const;

    /** Sum of all router + NIC energy-event counters. */
    EnergyEvents totalEnergyEvents() const;

    // -- checkpointing --

    /**
     * Arm periodic checkpointing: after every step() whose ending
     * cycle is a multiple of @p interval, @p hook is invoked with
     * this network. The hook's owner (runner or tool) decides what
     * to serialize around the network section and where to write it —
     * the Network itself never touches the filesystem.
     */
    void installCheckpoint(Cycle interval,
                           std::function<void(Network &)> hook);

    /**
     * Construction-parameter fingerprint embedded in snapshots and
     * cross-checked at restore: two Networks with equal fingerprints
     * are structurally identical (same topology, microarchitecture,
     * fault plan and observability geometry), so restoring one's
     * dynamic state into the other is well-defined.
     */
    std::string fingerprint() const;

    /**
     * Capture / restore the complete dynamic state. Must be called
     * between steps (no staged effects in flight). restore() expects
     * a freshly constructed Network with the same construction
     * parameters (enforced upstream via fingerprint()); it replays
     * the snapshot's hard-fault topology onto this network before
     * overwriting any component state.
     */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

    // -- PacketInjector --
    PacketId injectPacket(NodeId src, NodeId dst, int num_flits,
                          Cycle now, TrafficClass cls) override;
    std::size_t sourceQueueFlits(NodeId node) const override;

    // -- SinkListener --
    void onFlitDelivered(NodeId node, const FlitDesc &flit,
                         Cycle now) override;
    void onPacketCompleted(NodeId node, const FlitDesc &last_flit,
                           Cycle head_inject, Cycle now) override;

    // -- TransportListener --
    bool onE2eResend(PacketId base, const TransportEntry &e) override;
    void onE2eAck(PacketId base, const TransportEntry &e) override;
    void onE2eFail(PacketId base, const TransportEntry &e) override;

    /** The E2E transport layer, or nullptr when disabled. */
    const E2eTransport *transport() const { return transport_.get(); }

  private:
    /** The classic kernel: evaluate and commit everything. */
    void stepAlwaysTick();

    /** The activity kernel; @p check adds the equivalence-mode
     *  full evaluation and per-cycle quiescence asserts. */
    void stepScheduled(bool check);

    /** Emit SchedWake for components that (re)entered the active set
     *  since the previous cycle (tracing + scheduled kernels only). */
    void traceWakes();

    /** Close the metrics window ending at the current cycle. */
    void sampleMetricsWindow();

    /** Gather a telemetry sample and beat the heartbeat. */
    void emitTelemetry();

    /**
     * Digest-scope serialize of the network-global trajectory state:
     * the subset of the Snapshot-scope globals that is deterministic
     * across kernels and observer configurations. Deliberately
     * excluded: active-set and previous-active flags (kernel
     * bookkeeping), metrics window baselines (observer-owned) and the
     * age-dump latch (only ever set when a tracer is attached).
     */
    void serializeDigestGlobals(snap::Writer &w) const;

    /**
     * Apply every hard fault due at the current cycle: kill the
     * targeted links/routers (in-flight flits on them are lost),
     * rebuild the routing table, and — mid-run only — notify the
     * routers and purge every flit that the new topology can no
     * longer deliver. @p at_construction skips the notification and
     * purge: nothing is in flight yet, and the routers must not enter
     * degraded mode for faults that predate all traffic.
     */
    void applyDueHardFaults(bool at_construction);

    /** Sever the link out of @p router via @p port (both directions),
     *  collecting in-flight casualties. */
    void killLink(NodeId router, int port, std::vector<FlitDesc> &lost);

    /** Kill @p router, all its mesh links and its terminal NICs. */
    void killRouter(NodeId router, std::vector<FlitDesc> &lost);

    /** Re-wire the mesh link out of @p router via @p port in both
     *  directions (as at construction) and refresh both endpoints'
     *  per-port state. Both endpoint routers must be alive. */
    void wireLink(NodeId router, int port);

    /** Heal the explicit link fault on (@p router, @p port), re-wiring
     *  the channel when neither endpoint router remains dead.
     *  @p record counts the heal (false during snapshot replay, where
     *  the restored stats already include it). */
    void healLink(NodeId router, int port, bool record = true);

    /** Revive @p router: re-wire every mesh link not still explicitly
     *  dead and re-attach its terminal NICs (quiescent and empty). */
    void healRouter(NodeId router, bool record = true);

    /** True when traffic has fully settled: nothing in flight and —
     *  with the transport on — no open retransmission window and all
     *  components quiescent (stale attempt flits must reach the
     *  destination door and be suppressed there). */
    bool drainComplete() const;

    /** Age-watchdog sweep (packetAgeLimit > 0 only). */
    void checkPacketAges();

    /** Track the peak source-queue occupancy of NIC @p node. Runs in
     *  the cycle loop: direct Nic::enqueuePacket() calls bypass
     *  injectPacket()'s sampling and only this sweep can see them. */
    void sampleSourceQueue(NodeId node)
    {
        stats_.maxSourceQueueFlits =
            std::max(stats_.maxSourceQueueFlits,
                     nics_[static_cast<std::size_t>(node)]
                         ->sourceQueueFlits());
    }

    NetworkParams params_;
    Mesh mesh_;
    RoutingTable table_;  ///< shared by all routers (built first)
    FaultMap faultMap_;   ///< accumulated hard faults
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Nic>> nics_;
    std::vector<std::unique_ptr<TrafficSource>> sources_;
    std::unique_ptr<FaultInjector> faults_;
    std::unique_ptr<E2eTransport> transport_;
    std::unique_ptr<TraceRecorder> tracer_;
    std::unique_ptr<MetricsSampler> metrics_;
    std::unique_ptr<LatencyProvenance> prov_;
    /** Self-profiler and heartbeat: per-process wall-clock observers,
     *  so deliberately neither serialized nor fingerprinted — a
     *  resumed run may toggle them freely. */
    std::unique_ptr<PhaseProfiler> profiler_;
    std::unique_ptr<RunTelemetry> telemetry_;
    /** State-digest ledger: per-run *output* about the trajectory,
     *  not simulation state — neither serialized nor fingerprinted,
     *  so a bisection re-run may restore a digest-off checkpoint
     *  into a digest-on network. */
    std::unique_ptr<DigestLedger> digest_;
    DrainReport drainReport_;

    /** Per-router counter values at the last closed metrics window
     *  (to form window deltas of the monotonic counters). */
    std::vector<std::uint64_t> lastLinkFlits_;
    std::vector<std::uint64_t> lastCollisions_;

    /** Previous-cycle active flags (SchedWake edge detection; only
     *  maintained when tracing a scheduled kernel). */
    std::vector<std::uint8_t> prevRouterActive_;
    std::vector<std::uint8_t> prevNicActive_;

    /** Active-set flags, indexed by router / node id. Routers and
     *  NICs hold pointers into these (bindActivity) and set them on
     *  any staging; step() clears them on quiescent retirement. */
    std::vector<std::uint8_t> routerActive_;
    std::vector<std::uint8_t> nicActive_;
    std::vector<NodeId> scratchRouters_; ///< per-cycle snapshot
    std::vector<FlitDesc> scratchInjectFlits_; ///< injectPacket() reuse

    NetworkStats stats_;
    Cycle now_ = 0;
    PacketId nextPacket_ = 1;
    bool sourcesEnabled_ = true;

    /** Periodic checkpoint trigger (0 = disabled). */
    Cycle checkpointInterval_ = 0;
    std::function<void(Network &)> checkpointHook_;

    /** Per-flow (src, dest) end-to-end sequence numbers, stamped at
     *  injection and checked at completion (faults enabled only). */
    std::unordered_map<std::uint64_t, std::uint32_t> flowNextSeq_;
    std::unordered_map<std::uint64_t, std::uint32_t> flowMaxDone_;

    /** Age-watchdog state (packetAgeLimit > 0 only). */
    std::deque<std::pair<PacketId, Cycle>> ageQueue_;
    std::unordered_set<PacketId> ageInFlight_;
    bool ageDumpLatched_ = false;
};

} // namespace nox

#endif // NOX_NOC_NETWORK_HPP
