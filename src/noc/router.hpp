/**
 * @file
 * Abstract single-cycle wormhole router.
 *
 * The four evaluated microarchitectures (non-speculative, Spec-Fast,
 * Spec-Accurate, NoX) derive from Router and implement evaluate().
 * The base class owns what they share: input FIFOs, credit counters
 * for each downstream buffer, staged (next-cycle) arrivals, link
 * wiring, route computation and energy-event counting.
 *
 * Two-phase update discipline: during evaluate() a router reads only
 * its own committed state and *stages* flits/credits into neighbours;
 * commit() latches staged arrivals. The network may therefore evaluate
 * routers in any order with identical results.
 */

#ifndef NOX_NOC_ROUTER_HPP
#define NOX_NOC_ROUTER_HPP

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "noc/arbiter.hpp"
#include "noc/energy_events.hpp"
#include "noc/fifo.hpp"
#include "noc/flit.hpp"
#include "noc/routing_table.hpp"
#include "noc/topology.hpp"
#include "noc/types.hpp"
#include "obs/provenance.hpp"
#include "obs/trace_recorder.hpp"
#include "snapshot/io.hpp"

namespace nox {

class FaultInjector;
class Nic;

/** Arbiter selection, exposed for the fairness ablation bench. */
enum class ArbiterKind : std::uint8_t {
    RoundRobin = 0,
    FixedPriority = 1,
    Matrix = 2,
};

/** Construction parameters shared by all router architectures. */
struct RouterParams
{
    int numPorts = kNumPorts; ///< router radix (4 + concentration)
    int bufferDepth = 4;      ///< flits per input FIFO (Table 1)
    int vcCount = 1;          ///< virtual channels (>1 builds the
                              ///< §2.8 exploration router)
    ArbiterKind arbiterKind = ArbiterKind::RoundRobin;
};

/** Base class for all evaluated router microarchitectures. */
class Router
{
  public:
    /** Where an output port's flits go. */
    struct FlitTarget
    {
        Router *router = nullptr;
        Nic *nic = nullptr;
        int port = 0;

        bool connected() const { return router || nic; }
    };

    /** Where an input port's freed-buffer credits go. */
    struct CreditTarget
    {
        Router *router = nullptr;
        Nic *nic = nullptr;
        int port = 0;

        bool connected() const { return router || nic; }
    };

    /** Predicate naming the flits a hard-fault purge must remove.
     *  Called with the router the flit is buffered at, the input
     *  port it arrived through (a local port for NIC-side storage),
     *  and the flit itself: position matters, because a mid-run
     *  table rebuild condemns stale flits whose *next* hop would be
     *  a turn the new up-down table forbids (see
     *  RoutingTable::forbiddenTurn). */
    using FlitCondemned =
        std::function<bool(NodeId at, int in_port, const FlitDesc &)>;

    Router(NodeId id, const Mesh &mesh, const RoutingTable &table,
           const RouterParams &params);
    virtual ~Router() = default;

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    /** The architecture implemented by this router. */
    virtual RouterArch arch() const = 0;

    /** Evaluate one clock cycle (phase 1: combinational + sends). */
    virtual void evaluate(Cycle now) = 0;

    /**
     * Link-layer maintenance, run by the Network before any router's
     * evaluate() each cycle (fault injection only): retransmits
     * nacked or timed-out retry-buffer entries and runs the credit
     * watchdog resync. Guaranteed a no-op on quiescent routers, so
     * the scheduled kernel may skip retired routers here too.
     */
    virtual void evaluateLink(Cycle now);

    /** Latch staged flit/credit arrivals (phase 2). */
    virtual void commit();

    /**
     * Activity contract for the scheduled kernel: true iff ticking
     * this router would be a no-op — no buffered flits, no staged
     * arrivals, no pending (staged) credits, and no architecture-
     * specific in-progress state (wormhole locks, reservations,
     * decode registers, non-reset mask automata). A quiescent router
     * may be retired from the active set; it is re-armed whenever a
     * flit or credit is staged to it.
     *
     * The base implementation covers the shared state; overrides must
     * AND in their own (and err on the side of returning false).
     */
    virtual bool quiescent() const;

    /**
     * Bind the network's active-set flag for this router. Staging a
     * flit or credit to the router sets the flag (re-arming it in the
     * scheduled kernel). Standalone routers (tests) leave it unbound.
     */
    void bindActivity(std::uint8_t *flag) { activityFlag_ = flag; }

    /** Virtual channels per input port (1 for the paper's wormhole
     *  designs; >1 only for the §2.8 exploration router). */
    virtual int vcCount() const { return 1; }

    // -- wiring, performed once by the Network --
    void connectOutput(int out_port, FlitTarget target, int credits);
    void connectInputCredit(int in_port, CreditTarget target);

    /** Attach the network's fault injector (nullptr = fault-free;
     *  every hot path then behaves exactly as before). */
    void attachFaults(FaultInjector *faults);

    /** Attach the network's trace recorder (nullptr = tracing off;
     *  every emission site is guarded by this pointer, so disabled
     *  tracing costs one predictable branch). */
    void attachTracer(TraceRecorder *tracer) { tracer_ = tracer; }

    /** Attach the network's latency-provenance observer (nullptr =
     *  off; every charge site is guarded by this pointer just like
     *  the tracer's emission sites). */
    void attachProvenance(LatencyProvenance *prov) { prov_ = prov; }

    // -- interface used by upstream neighbours / NICs --
    void stageFlit(int in_port, WireFlit &&flit);
    void stageCredit(int out_port, int count = 1);

    /**
     * Synchronous link-level handshake from the downstream receiver
     * of output @p out_port (fault-protected router-router links
     * only). Ack retires the retry-buffer entry; nack schedules its
     * retransmission after the nack turnaround delay.
     */
    void linkAck(int out_port);
    void linkNack(int out_port);

    /** VC-tagged credit return; non-VC routers fold it into the
     *  plain per-port credit. */
    virtual void
    stageCreditVc(int out_port, int vc)
    {
        (void)vc;
        stageCredit(out_port);
    }

    // -- hard (fail-stop) faults, driven by the Network --

    /**
     * Sever output @p out_port: the wire is gone. An unacknowledged
     * retry-buffer entry is appended to @p lost (its flits were never
     * buffered downstream), link-retry state is flushed and the port
     * unwired, so the existing outputConnected() checks in every
     * architecture's allocation double as the dead-port mask.
     */
    virtual void killOutput(int out_port, std::vector<FlitDesc> &lost);

    /** Sever input @p in_port (the matching credit wire is gone).
     *  Flits already buffered in the input FIFO arrived intact and
     *  are rerouted or purged by condemnation, not dropped here. */
    virtual void killInput(int in_port, std::vector<FlitDesc> &lost);

    /**
     * Remove every buffered flit matched by @p condemned (sibling
     * lost, or destination unreachable after a hard fault), appending
     * the removed descriptors to @p removed and returning the freed
     * buffer slots upstream. NoX overrides this to drop whole XOR
     * decode chains when any constituent is condemned.
     */
    virtual void purgeFlits(const FlitCondemned &condemned,
                            std::vector<FlitDesc> &removed);

    /**
     * The network rebuilt the routing tables after a mid-run hard
     * fault. Flits of one packet may now reach a router through a
     * different input than their head did, so every architecture
     * drops its wormhole locks / switch automata here and re-forms
     * them from the traffic; the base permanently enters degraded
     * mode, in which lock-consistency violations downgrade from
     * asserts to graceful re-arbitration.
     */
    virtual void onTableRebuild();

    /**
     * A previously killed output was re-wired by a heal (the network
     * already called connectOutput(), which restores the base per-port
     * credit count). Architectures holding extra per-output state —
     * the VC router's per-lane credit counters — re-initialise it
     * here, exactly as construction would.
     */
    virtual void
    onOutputRevived(int out_port)
    {
        (void)out_port;
    }

    // -- introspection (tests, stats) --
    NodeId id() const { return id_; }
    int numPorts() const { return params_.numPorts; }

    /** Request-mask bit cover for all of this router's ports. */
    RequestMask allPortsMask() const
    {
        return maskAll(params_.numPorts);
    }
    const FlitFifo &inputFifo(int port) const { return in_[port]; }

    /** Mutable FIFO access for test harnesses and trace tooling;
     *  production code must go through stageFlit()/commit(). */
    FlitFifo &inputFifo(int port) { return in_[port]; }
    int outputCredits(int port) const { return credits_[port]; }
    bool outputConnected(int port) const
    {
        return outTarget_[port].connected();
    }

    /** Bitmask of wired output ports (kept in sync by connectOutput
     *  and killOutput; the allocation loops iterate its set bits). */
    RequestMask connectedOutputs() const { return connectedOutMask_; }
    const EnergyEvents &energy() const { return energy_; }
    EnergyEvents &energy() { return energy_; }

    // -- observability introspection (MetricsSampler inputs) --

    /** Flits currently held across all input FIFOs. */
    std::uint32_t
    bufferedFlits() const
    {
        std::uint32_t n = 0;
        for (const FlitFifo &f : in_)
            n += static_cast<std::uint32_t>(f.size());
        return n;
    }

    /** Occupied link-retry buffers (0 without fault injection). */
    std::uint32_t
    retryPending() const
    {
        std::uint32_t n = 0;
        if (faults_) {
            for (const auto &r : retry_)
                n += r.has_value() ? 1 : 0;
        }
        return n;
    }

    /** Productive XOR-encoded transfers so far (NoX routers only;
     *  every other architecture reports 0). */
    virtual std::uint64_t xorCollisions() const { return 0; }

    /**
     * Capture / restore dynamic state (checkpointing). Called between
     * steps, when no arrivals are staged (commit() latched everything
     * — asserted); wiring, parameters and route tables are rebuilt by
     * construction and are not captured. Subclasses override both,
     * call the base method first, then handle their own state.
     *
     * @p scope selects the byte layout: Snapshot is lossless (restore
     * reads it back); Digest feeds the state-digest ledger and omits
     * the EnergyEvents counters, which the activity kernel clock-gates
     * for retired routers and which therefore legitimately differ
     * between bit-identical trajectories.
     */
    virtual void serialize(snap::Writer &w,
                           snap::Scope scope =
                               snap::Scope::Snapshot) const;
    virtual void restore(snap::Reader &r);

    /**
     * Deliberately corrupt one arbiter decision (test/debug only; see
     * NetworkParams::debugPerturbCycle). Used to seed a known
     * divergence for exercising the digest ledger and the trace_tool
     * bisector; a no-op for architectures without priority state.
     */
    virtual void debugPerturb() {}

  protected:
    /** True when the downstream buffer of @p out_port has a slot. */
    bool haveCredit(int out_port) const { return credits_[out_port] > 0; }

    /**
     * True while the link-level retry protocol owns @p out_port: a
     * retry entry is awaiting ack/timeout, or the retry buffer drove
     * the wire this very cycle. Normal sends must stall — the link
     * layer guarantees in-order delivery by never interleaving new
     * flits with an unacknowledged one. Always false without faults.
     */
    bool linkBusy(int out_port, Cycle now) const
    {
        return faults_ != nullptr &&
               (retry_[out_port].has_value() ||
                lastLinkSend_[out_port] == now);
    }

    /**
     * Transfer a flit across the output link: consumes one downstream
     * credit, stages the flit at the receiver and counts link energy.
     */
    void sendFlit(int out_port, WireFlit &&flit);

    /**
     * Dispatch + energy accounting without the base per-port credit
     * bookkeeping (used by routers that manage per-VC credits).
     */
    void dispatchFlit(int out_port, WireFlit &&flit);

    /**
     * Drive an invalid value on the output link (misspeculation or
     * NoX multi-flit abort): energy is spent, nothing is delivered and
     * no downstream credit is consumed.
     */
    void driveWasted(int out_port);

    /** Return a freed input-buffer slot to the upstream sender. */
    void returnCredit(int in_port);

    /** Output port for a flit at this router (lookahead table read;
     *  DOR-identical while the mesh is fault-free). */
    int routeOf(const FlitDesc &flit) const;

    /** Shared purge pass over uncoded input FIFOs: drops condemned
     *  entries and returns their buffer slots upstream. */
    void purgeInputsPlain(const FlitCondemned &condemned,
                          std::vector<FlitDesc> &removed);

    /** Shared purge pass over link-retry state. A flushed entry on a
     *  live link refunds the downstream credit its original send
     *  consumed (the receiver nacked or never saw it). */
    void purgeLinkState(const FlitCondemned &condemned,
                        std::vector<FlitDesc> &removed);

    /** Refund one downstream credit for a flushed retry entry; the
     *  VC router books it against the entry's virtual channel. */
    virtual void
    refundRetryCredit(int out_port, const WireFlit &flit)
    {
        (void)flit;
        credits_[out_port] += 1;
    }

    /**
     * Head flit of input @p port, asserting it is uncoded — valid in
     * every architecture except NoX, whose ports decode instead.
     */
    std::optional<FlitDesc> plainHead(int port) const;

    /** Construct the configured arbiter flavour. */
    std::unique_ptr<Arbiter> makeArbiter() const;

    /** Mark this router active (called on every staging into it). */
    void wake()
    {
        if (activityFlag_)
            *activityFlag_ = 1;
    }

    /** Record a trace event against this router (no-op when tracing
     *  is disabled; the recorder stamps the current cycle). */
    void
    trace(TraceEventKind kind, int port, std::uint64_t id,
          std::uint32_t arg = 0)
    {
        if (tracer_)
            tracer_->record(kind, id_, port, id, arg);
    }

    /** Charge one explicit stall cycle to a flit presented at this
     *  router that cannot move this cycle (no-op when provenance is
     *  disabled or the flit is not actually located here). */
    void
    provStall(const FlitDesc &d, LatencyComponent c, Cycle now)
    {
        if (prov_)
            prov_->onStall(d.uid, c, id_, false, now);
    }

    /** Close a flit's hop span: its wire value was *accepted* onto
     *  output @p out_port this cycle (retransmissions of an already
     *  accepted value are not hop sends). Defined in router.cpp — it
     *  needs the downstream NIC's node id. */
    void provSend(const FlitDesc &d, int out_port, Cycle now);

    NodeId id_;
    const Mesh &mesh_;
    const RoutingTable *table_;
    RouterParams params_;

    /** Set once a mid-run table rebuild happened: in-flight wormholes
     *  may be inconsistent with the new tables, so lock bookkeeping
     *  tolerates foreign flits instead of asserting. Never set on a
     *  fault-free (or statically faulted) mesh. */
    bool degraded_ = false;

    std::vector<FlitFifo> in_;

    /**
     * Staged (next-cycle) arrivals, struct-of-arrays style: the flit
     * payloads live in a dense vector and occupancy lives in one
     * port-indexed bitmask, so commit() walks set bits instead of
     * probing an optional per port and quiescent() is a single
     * compare. stagedIn_[p] is meaningful only while bit p of
     * stagedInMask_ is set.
     */
    std::vector<WireFlit> stagedIn_;
    RequestMask stagedInMask_ = 0;

    /** True iff a flit is staged at input @p port this cycle. */
    bool stagedAt(int port) const
    {
        return (stagedInMask_ & maskBit(port)) != 0;
    }

    /** stagedCredits_[p] is nonzero only while bit p of
     *  stagedCreditMask_ is set — commit() walks set bits, so idle
     *  ports cost nothing there. */
    std::vector<int> stagedCredits_;
    RequestMask stagedCreditMask_ = 0;
    std::vector<int> credits_;
    RequestMask connectedOutMask_ = 0; ///< see connectedOutputs()
    std::vector<FlitTarget> outTarget_;
    std::vector<CreditTarget> creditTarget_;

    /** Unacknowledged wire value of a protected output link. At most
     *  one per port: linkBusy() stalls the datapath until it clears,
     *  which is what keeps link delivery in-order. */
    struct RetryEntry
    {
        WireFlit flit;
        Cycle due = 0;      ///< retransmit time unless acked first
        bool nacked = false; ///< due set by a nack, not the timeout
    };

    FaultInjector *faults_ = nullptr; ///< nullptr = fault-free build
    TraceRecorder *tracer_ = nullptr; ///< nullptr = tracing disabled
    LatencyProvenance *prov_ = nullptr; ///< nullptr = provenance off
    std::vector<std::optional<RetryEntry>> retry_;
    std::vector<Cycle> lastLinkSend_; ///< cycle the retry buffer last
                                      ///< drove each output wire
    std::vector<int> creditsLost_;    ///< per-port credits the injector
                                      ///< swallowed, owed by watchdog

    EnergyEvents energy_;

  private:
    std::uint8_t *activityFlag_ = nullptr;
};

} // namespace nox

#endif // NOX_NOC_ROUTER_HPP
