#include "noc/flit_arena.hpp"

#include "noc/flit.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define NOX_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define NOX_ARENA_ASAN 1
#endif
#endif

#ifdef NOX_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace nox {

namespace {

/**
 * Thread-local lifetime phase of the arena singleton. Static-duration
 * objects holding WireFlits may be destroyed *after* the arena's own
 * thread_local destructor runs; their releases must degrade to plain
 * deallocation instead of touching a dead freelist.
 */
enum : int { kUnborn = 0, kAlive = 1, kDead = 2 };
thread_local int g_arenaPhase = kUnborn;

void
poisonStorage(FlitArena::Block &block)
{
#ifdef NOX_ARENA_ASAN
    if (block.capacity() != 0)
        __asan_poison_memory_region(
            block.data(), block.capacity() * sizeof(FlitDesc));
#else
    (void)block;
#endif
}

void
unpoisonStorage(FlitArena::Block &block)
{
#ifdef NOX_ARENA_ASAN
    if (block.capacity() != 0)
        __asan_unpoison_memory_region(
            block.data(), block.capacity() * sizeof(FlitDesc));
#else
    (void)block;
#endif
}

} // namespace

FlitArena::FlitArena() { g_arenaPhase = kAlive; }

FlitArena::~FlitArena()
{
    drain();
    g_arenaPhase = kDead;
}

FlitArena &
FlitArena::instance()
{
    static thread_local FlitArena arena;
    return arena;
}

FlitArena::Block
FlitArena::acquire()
{
    if (g_arenaPhase == kDead)
        return Block{};
    return instance().acquireImpl();
}

void
FlitArena::release(Block &&block)
{
    if (g_arenaPhase == kDead) {
        Block{}.swap(block);
        return;
    }
    instance().releaseImpl(std::move(block));
}

FlitArena::Block
FlitArena::acquireImpl()
{
    stats_.acquires += 1;
    if (!free_.empty()) {
        stats_.reuses += 1;
        Block block = std::move(free_.back());
        free_.pop_back();
        unpoisonStorage(block);
        return block;
    }
    stats_.growths += 1;
    return Block{};
}

void
FlitArena::releaseImpl(Block &&block)
{
    stats_.releases += 1;
    if (block.capacity() == 0)
        return; // nothing worth parking
    // Scribble over the contents so any stale reference reads an
    // unmistakable pattern even without a sanitizer...
    for (FlitDesc &d : block) {
        d.uid = kPoisonUid;
        d.payload = kPoisonUid;
        d.packet = kInvalidPacket;
    }
    block.clear();
    // ...and under ASan make any touch of the parked storage abort.
    poisonStorage(block);
    free_.push_back(std::move(block));
}

void
FlitArena::drain()
{
    for (Block &block : free_)
        unpoisonStorage(block); // freeing poisoned memory is an
                                // ASan error in its own right
    free_.clear();
    free_.shrink_to_fit();
}

} // namespace nox
