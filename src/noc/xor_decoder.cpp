#include "noc/xor_decoder.hpp"

#include "common/log.hpp"
#include "noc/snapshot_codec.hpp"

namespace nox {

DecodeView
XorDecoder::view(const FlitFifo &fifo, bool lenient) const
{
    DecodeView v;
    if (reg_.has_value()) {
        if (fifo.empty())
            return v; // waiting for the next flit of the chain
        const WireFlit &head = fifo.front();
        if (lenient) {
            const DecodeResult r = tryDecodeDiff(*reg_, head);
            v.fault = r.fault;
            if (r.fault == DecodeFault::Structural)
                return v; // unrecoverable: nothing to present
            scratch_ = *r.flit;
        } else {
            scratch_ = decodeDiff(*reg_, head);
        }
        v.presented = &scratch_;
        v.decodedByXor = true;
        // Popping only happens when the chain continues (head encoded);
        // an uncoded head is kept and presented as itself next.
        v.acceptPops = head.encoded;
        return v;
    }
    if (fifo.empty())
        return v;
    const WireFlit &head = fifo.front();
    if (head.encoded) {
        v.latchBubble = true;
        return v;
    }
    NOX_ASSERT(head.fanin() == 1, "uncoded flit with multiple parts");
    v.presented = &head.parts.front();
    if (lenient && head.payload != v.presented->payload) {
        // The wire bits are what the hardware actually has; the parts
        // bookkeeping records what was sent. A divergence means the
        // flit was corrupted in flight — present the corrupted bits
        // and flag it, exactly like a decode mismatch.
        scratch_ = head.parts.front();
        scratch_.payload = head.payload;
        v.presented = &scratch_;
        v.fault = DecodeFault::PayloadMismatch;
    }
    v.acceptPops = true;
    return v;
}

bool
XorDecoder::latch(FlitFifo &fifo)
{
    NOX_ASSERT(!reg_.has_value(), "latch with valid decode register");
    NOX_ASSERT(!fifo.empty() && fifo.front().encoded,
               "latch requires an encoded head flit");
    reg_ = fifo.pop();
    return true;
}

bool
XorDecoder::accept(FlitFifo &fifo)
{
    if (reg_.has_value()) {
        NOX_ASSERT(!fifo.empty(), "accept with empty FIFO");
        const bool chain_continues = fifo.front().encoded;
        if (chain_continues) {
            reg_ = fifo.pop();
            return true;
        }
        reg_.reset();
        return false; // uncoded head kept; no pop, no credit yet
    }
    NOX_ASSERT(!fifo.empty() && !fifo.front().encoded,
               "accept on invalid decoder state");
    fifo.pop();
    return true;
}

void
XorDecoder::serialize(snap::Writer &w) const
{
    w.boolean(reg_.has_value());
    if (reg_.has_value())
        snap::writeWireFlit(w, *reg_);
}

void
XorDecoder::restore(snap::Reader &r)
{
    if (r.boolean())
        reg_ = snap::readWireFlit(r);
    else
        reg_.reset();
}

} // namespace nox
