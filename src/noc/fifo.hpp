/**
 * @file
 * Fixed-capacity flit FIFO modelling a router's input-buffer SRAM.
 */

#ifndef NOX_NOC_FIFO_HPP
#define NOX_NOC_FIFO_HPP

#include <cstddef>
#include <memory>
#include <utility>

#include "common/log.hpp"
#include "noc/flit.hpp"

namespace nox {

/**
 * Bounded FIFO of WireFlits. Capacity is enforced with assertions:
 * credit-based flow control must make overflow impossible, so an
 * overflow here is a simulator bug, not a recoverable condition.
 *
 * Storage is a flat ring buffer sized once at construction — like the
 * SRAM it models — so push/pop on the per-cycle hot path are a slot
 * move plus an increment-wrap, with no allocator traffic.
 */
class FlitFifo
{
  public:
    explicit FlitFifo(std::size_t capacity)
        : capacity_(capacity),
          slots_(std::make_unique<WireFlit[]>(capacity))
    {
        NOX_ASSERT(capacity > 0, "FIFO capacity must be positive");
    }

    FlitFifo(FlitFifo &&) noexcept = default;
    FlitFifo &operator=(FlitFifo &&) noexcept = default;

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ >= capacity_; }
    std::size_t size() const { return size_; }
    std::size_t capacity() const { return capacity_; }

    void
    push(WireFlit &&f)
    {
        NOX_ASSERT(!full(), "input FIFO overflow (credit protocol bug)");
        slots_[tail_] = std::move(f);
        tail_ = next(tail_);
        size_ += 1;
    }

    const WireFlit &
    front() const
    {
        NOX_ASSERT(!empty(), "front() on empty FIFO");
        return slots_[head_];
    }

    /** i-th held flit from the head (0 == front()); for inspection
     *  and checkpoint serialization, not the hot path. */
    const WireFlit &
    at(std::size_t i) const
    {
        NOX_ASSERT(i < size_, "at() index out of range");
        std::size_t idx = head_ + i;
        if (idx >= capacity_)
            idx -= capacity_;
        return slots_[idx];
    }

    WireFlit
    pop()
    {
        NOX_ASSERT(!empty(), "pop() on empty FIFO");
        WireFlit f = std::move(slots_[head_]);
        head_ = next(head_);
        size_ -= 1;
        return f;
    }

  private:
    std::size_t next(std::size_t i) const
    {
        return i + 1 == capacity_ ? 0 : i + 1;
    }

    std::size_t capacity_;
    std::unique_ptr<WireFlit[]> slots_;
    std::size_t head_ = 0;
    std::size_t tail_ = 0;
    std::size_t size_ = 0;
};

} // namespace nox

#endif // NOX_NOC_FIFO_HPP
