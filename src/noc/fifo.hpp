/**
 * @file
 * Fixed-capacity flit FIFO modelling a router's input-buffer SRAM.
 */

#ifndef NOX_NOC_FIFO_HPP
#define NOX_NOC_FIFO_HPP

#include <cstddef>
#include <deque>

#include "common/log.hpp"
#include "noc/flit.hpp"

namespace nox {

/**
 * Bounded FIFO of WireFlits. Capacity is enforced with assertions:
 * credit-based flow control must make overflow impossible, so an
 * overflow here is a simulator bug, not a recoverable condition.
 */
class FlitFifo
{
  public:
    explicit FlitFifo(std::size_t capacity) : capacity_(capacity)
    {
        NOX_ASSERT(capacity > 0, "FIFO capacity must be positive");
    }

    bool empty() const { return q_.empty(); }
    bool full() const { return q_.size() >= capacity_; }
    std::size_t size() const { return q_.size(); }
    std::size_t capacity() const { return capacity_; }

    void
    push(WireFlit f)
    {
        NOX_ASSERT(!full(), "input FIFO overflow (credit protocol bug)");
        q_.push_back(std::move(f));
    }

    const WireFlit &
    front() const
    {
        NOX_ASSERT(!empty(), "front() on empty FIFO");
        return q_.front();
    }

    WireFlit
    pop()
    {
        NOX_ASSERT(!empty(), "pop() on empty FIFO");
        WireFlit f = std::move(q_.front());
        q_.pop_front();
        return f;
    }

  private:
    std::size_t capacity_;
    std::deque<WireFlit> q_;
};

} // namespace nox

#endif // NOX_NOC_FIFO_HPP
