/**
 * @file
 * Routing functions. The paper uses dimension-ordered routing
 * (Table 1) with lookahead route computation [Galles, SGI Spider], so
 * route lookup costs no pipeline stage in any evaluated router.
 */

#ifndef NOX_NOC_ROUTING_HPP
#define NOX_NOC_ROUTING_HPP

#include "noc/topology.hpp"
#include "noc/types.hpp"

namespace nox {

/** Routing function: output port at @p current for @p dest. */
using RoutingFunction = int (*)(const Mesh &, NodeId current, NodeId dest);

/**
 * Dimension-ordered (X then Y) routing. Deterministic and deadlock
 * free on a mesh. Returns kPortLocal when current == dest.
 */
int dorRoute(const Mesh &mesh, NodeId current, NodeId dest);

/** Y-then-X variant (used by tests and the second physical network
 *  could use it; the paper keeps DOR on both). */
int dorRouteYX(const Mesh &mesh, NodeId current, NodeId dest);

} // namespace nox

#endif // NOX_NOC_ROUTING_HPP
