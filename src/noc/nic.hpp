/**
 * @file
 * Network interface controller: per-tile packet source queue feeding
 * the router's local input port, and the ejection sink that drains the
 * router's local output port.
 *
 * The sink contains the same XOR decode logic as a NoX input port
 * (§2.4) so that encoded flits arriving at the ejection port of a NoX
 * network are recovered exactly as in Figure 3. Non-NoX networks only
 * ever deliver uncoded flits, for which the decoder is a pass-through.
 */

#ifndef NOX_NOC_NIC_HPP
#define NOX_NOC_NIC_HPP

#include <deque>
#include <vector>
#include <optional>
#include <unordered_map>

#include "noc/energy_events.hpp"
#include "noc/fifo.hpp"
#include "noc/flit.hpp"
#include "noc/router.hpp"
#include "noc/xor_decoder.hpp"

namespace nox {

class FaultInjector;
class E2eTransport;

/** Receives flit/packet delivery notifications from the sinks. */
class SinkListener
{
  public:
    virtual ~SinkListener() = default;

    /** A (decoded) flit reached its destination NIC. */
    virtual void onFlitDelivered(NodeId node, const FlitDesc &flit,
                                 Cycle now) = 0;

    /**
     * All flits of a packet have reached the destination NIC.
     * @param head_inject the cycle the packet's head flit left its
     *        source queue (for network-latency accounting).
     */
    virtual void onPacketCompleted(NodeId node, const FlitDesc &last_flit,
                                   Cycle head_inject, Cycle now) = 0;
};

/** Per-node network interface (source queue + ejection sink). */
class Nic
{
  public:
    Nic(NodeId node, int sink_buffer_depth);

    Nic(Nic &&) = default;

    /** Attach to the node's router at local port @p local_port
     *  (kPortLocal + terminal index on a concentrated mesh). */
    void connectRouter(Router *router, int local_port = kPortLocal);

    /** Observer for delivered flits/packets (owned elsewhere). */
    void setListener(SinkListener *listener) { listener_ = listener; }

    /** Attach the network's fault injector: the ejection sink then
     *  decodes leniently and reports corrupted deliveries instead of
     *  asserting (nullptr = fault-free, legacy behavior). */
    void attachFaults(FaultInjector *faults) { faults_ = faults; }

    /** Attach the network's trace recorder (nullptr = tracing off). */
    void attachTracer(TraceRecorder *tracer) { tracer_ = tracer; }

    /** Attach the network's latency-provenance observer (nullptr =
     *  off). */
    void attachProvenance(LatencyProvenance *prov) { prov_ = prov; }

    /** Attach the network's E2E transport (nullptr = off). The sink
     *  then drops duplicate flits — stragglers of already-completed
     *  or abandoned logical packets — at the door, before they can
     *  touch arrival or delivery state. */
    void attachTransport(E2eTransport *transport)
    {
        transport_ = transport;
    }

    // -- per-cycle evaluation (two-phase, like Router) --
    void evaluateInject(Cycle now);
    void evaluateSink(Cycle now);
    void commit();

    /**
     * Activity contract (see Router::quiescent): true iff ticking
     * this NIC would be a no-op — empty source queues (a stalled but
     * non-empty queue keeps the NIC active so it injects the moment a
     * credit returns), empty sink FIFO, no staged flit/credits, and
     * an empty ejection decode register. Partially-arrived packets
     * (`arrived_`) do not block quiescence: their remaining flits are
     * elsewhere in the network and re-arm the NIC on arrival.
     */
    bool quiescent() const;

    /** Bind the network's active-set flag (see Router::bindActivity). */
    void bindActivity(std::uint8_t *flag) { activityFlag_ = flag; }

    // -- traffic-generator side --
    /** Queue all flits of a packet for injection (FIFO order). The
     *  caller keeps ownership — Network reuses one scratch vector for
     *  every packet it builds. */
    void enqueuePacket(const std::vector<FlitDesc> &flits);

    /** Flits waiting in the source queues (saturation metric). */
    std::size_t
    sourceQueueFlits() const
    {
        std::size_t n = 0;
        for (const auto &q : injectQueue_)
            n += q.size();
        return n;
    }

    // -- router side (staged until commit) --
    void stageSinkFlit(WireFlit &&flit);
    void stageInjectCredit(int count = 1, int vc = 0);

    // -- hard (fail-stop) fault handling --

    /**
     * The attached router died: every queued source flit and every
     * sink-side value (FIFO, decode register) is lost, credits are
     * zeroed, and the NIC goes permanently inert (inject/sink
     * evaluation become no-ops; it reports quiescent).
     */
    void killAttached(std::vector<FlitDesc> &lost);

    /** Remove condemned flits from the source queues and — since sink
     *  values are XOR chains like a NoX port — drop the whole sink
     *  contents when any constituent is condemned (credits for
     *  dropped sink values return to the live router). */
    void purgeCondemned(const Router::FlitCondemned &condemned,
                        std::vector<FlitDesc> &removed);

    /** Forget the partial-arrival record of a lost packet (its
     *  remaining flits were purged; it will never complete). */
    void forgetArrived(PacketId packet) { arrived_.erase(packet); }

    /** A heal re-attached this NIC's router: leave the dead state.
     *  The caller re-wires via connectRouter(), which restores the
     *  credit books; queues were emptied by killAttached(). */
    void revive() { dead_ = false; }

    bool dead() const { return dead_; }

    NodeId node() const { return node_; }
    const EnergyEvents &energy() const { return energy_; }

    /** Packets with some but not all flits delivered here, sorted by
     *  id — the receiver-side view of in-flight traffic, used by the
     *  drain-timeout diagnosis. */
    std::vector<std::pair<PacketId, std::uint32_t>>
    partialPackets() const;

    const FlitFifo &sinkFifo() const { return sinkFifo_; }
    int injectCredits(int vc = 0) const
    {
        return injectCredits_[static_cast<std::size_t>(vc)];
    }

    /** Capture / restore dynamic state (checkpointing); taken between
     *  steps, when nothing is staged (asserted). Digest scope omits
     *  the kernel-dependent energy counters (see Router::serialize). */
    void serialize(snap::Writer &w,
                   snap::Scope scope = snap::Scope::Snapshot) const;
    void restore(snap::Reader &r);

  private:
    void deliver(const FlitDesc &flit, Cycle now);

    void wake()
    {
        if (activityFlag_)
            *activityFlag_ = 1;
    }

    /** Record a NIC-side trace event (no-op when tracing is off). */
    void
    trace(TraceEventKind kind, std::uint64_t id, std::uint32_t arg = 0)
    {
        if (tracer_)
            tracer_->record(kind, node_, localPort_, id, arg, true);
    }

    std::uint8_t *activityFlag_ = nullptr;
    NodeId node_;
    bool dead_ = false; ///< attached router was hard-killed
    Router *router_ = nullptr;
    int localPort_ = kPortLocal;
    SinkListener *listener_ = nullptr;
    FaultInjector *faults_ = nullptr;
    TraceRecorder *tracer_ = nullptr;
    LatencyProvenance *prov_ = nullptr;
    E2eTransport *transport_ = nullptr;

    // Injection side (per VC; one entry for the paper's VC-free
    // routers). Per-VC source queues avoid head-of-line blocking
    // between classes, mirroring the per-network queues of a
    // multiple-physical-channel design.
    std::vector<std::deque<FlitDesc>> injectQueue_;
    std::vector<int> injectCredits_;
    std::vector<int> stagedInjectCredits_;
    int injectRr_ = 0; ///< round-robin pointer across VC queues

    // Ejection side.
    FlitFifo sinkFifo_;
    std::optional<WireFlit> stagedSinkFlit_;
    XorDecoder decoder_;

    struct Arrival
    {
        std::uint32_t count = 0;
        Cycle headInject = 0;
    };
    std::unordered_map<PacketId, Arrival> arrived_;

    EnergyEvents energy_;
};

} // namespace nox

#endif // NOX_NOC_NIC_HPP
