/**
 * @file
 * Flit representations.
 *
 * A FlitDesc is an original, un-coded flit as produced by a source
 * NIC. What actually travels on links and sits in input FIFOs is a
 * WireFlit: either a single FlitDesc (uncoded) or the bitwise XOR of
 * several colliding flits (NoX encoded form, §2.2 of the paper).
 *
 * The 64-bit payload is modelled faithfully — encoded WireFlits carry
 * the real XOR of their constituents' payloads, and decode asserts the
 * recovered bits match — while the `parts` vector carries simulation
 * bookkeeping (packet ids, destinations) that in hardware lives inside
 * those 64 bits.
 */

#ifndef NOX_NOC_FLIT_HPP
#define NOX_NOC_FLIT_HPP

#include <cstdint>
#include <vector>

#include "noc/types.hpp"

namespace nox {

/** An original (un-coded) flit. */
struct FlitDesc
{
    std::uint64_t uid = 0;       ///< globally unique flit id
    PacketId packet = kInvalidPacket;
    std::uint32_t seq = 0;       ///< flit index within the packet
    std::uint32_t packetSize = 1; ///< total flits in the packet
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    std::uint64_t payload = 0;   ///< the 64 data bits on the wire
    Cycle createCycle = 0;       ///< when the packet entered the source
    Cycle injectCycle = 0;       ///< when this flit left the source
                                 ///< queue into the router
    TrafficClass cls = TrafficClass::Synthetic;
    std::uint8_t vc = 0;         ///< virtual channel (VC routers only)

    bool isHead() const { return seq == 0; }
    bool isTail() const { return seq + 1 == packetSize; }
    bool isMultiFlit() const { return packetSize > 1; }
};

/** Deterministic payload for (packet, seq), checkable at the sink. */
std::uint64_t expectedPayload(PacketId packet, std::uint32_t seq);

/** Deterministic uid for (packet, seq). */
std::uint64_t flitUid(PacketId packet, std::uint32_t seq);

/**
 * A value travelling on a link or stored in an input FIFO: one flit,
 * or the XOR superposition of several (NoX encoded form).
 */
struct WireFlit
{
    std::uint64_t payload = 0; ///< XOR of constituent payloads
    bool encoded = false;      ///< encoded marker bit on the link
    std::uint8_t vc = 0;       ///< virtual channel tag on the link
    std::vector<FlitDesc> parts; ///< constituents (bookkeeping)

    /** Wrap a single flit. */
    static WireFlit fromDesc(const FlitDesc &d);

    /** Build the XOR superposition of @p inputs (size >= 1). */
    static WireFlit combine(const std::vector<FlitDesc> &inputs);

    bool valid() const { return !parts.empty(); }
    std::size_t fanin() const { return parts.size(); }
};

/**
 * Decode one flit from two consecutively received WireFlits: returns
 * the unique constituent of @p prev that is absent from @p next (the
 * packet that won arbitration upstream, §2.2). Panics — and thereby
 * verifies payload integrity end-to-end — if prev is not next plus
 * exactly one flit, or if the XOR of the payloads does not equal the
 * recovered flit's payload.
 */
FlitDesc decodeDiff(const WireFlit &prev, const WireFlit &next);

} // namespace nox

#endif // NOX_NOC_FLIT_HPP
