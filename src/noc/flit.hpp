/**
 * @file
 * Flit representations.
 *
 * A FlitDesc is an original, un-coded flit as produced by a source
 * NIC. What actually travels on links and sits in input FIFOs is a
 * WireFlit: either a single FlitDesc (uncoded) or the bitwise XOR of
 * several colliding flits (NoX encoded form, §2.2 of the paper).
 *
 * The 64-bit payload is modelled faithfully — encoded WireFlits carry
 * the real XOR of their constituents' payloads, and decode asserts the
 * recovered bits match — while the `parts` vector carries simulation
 * bookkeeping (packet ids, destinations) that in hardware lives inside
 * those 64 bits.
 */

#ifndef NOX_NOC_FLIT_HPP
#define NOX_NOC_FLIT_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "noc/flit_arena.hpp"
#include "noc/types.hpp"

namespace nox {

/** An original (un-coded) flit. */
struct FlitDesc
{
    std::uint64_t uid = 0;       ///< globally unique flit id
    PacketId packet = kInvalidPacket;
    std::uint32_t seq = 0;       ///< flit index within the packet
    std::uint32_t packetSize = 1; ///< total flits in the packet
    NodeId src = kInvalidNode;
    NodeId dest = kInvalidNode;
    std::uint64_t payload = 0;   ///< the 64 data bits on the wire
    Cycle createCycle = 0;       ///< when the packet entered the source
    Cycle injectCycle = 0;       ///< when this flit left the source
                                 ///< queue into the router
    TrafficClass cls = TrafficClass::Synthetic;
    std::uint8_t vc = 0;         ///< virtual channel (VC routers only)
    std::uint32_t flowSeq = 0;   ///< per-(src,dest) flow sequence
                                 ///< number (end-to-end ordering
                                 ///< check under fault injection)

    bool isHead() const { return seq == 0; }
    bool isTail() const { return seq + 1 == packetSize; }
    bool isMultiFlit() const { return packetSize > 1; }
};

/**
 * Small-buffer sequence of WireFlit constituents. WireFlits are
 * copied on every hop (FIFO staging, decode registers), and almost
 * all of them are uncoded singles; keeping up to kInlineParts
 * in-place makes those copies allocation-free. Longer encoded chains
 * (NoX collisions) spill to an arena-recycled block (FlitArena), so
 * steady-state collision traffic performs no heap allocation either.
 */
class PartsVec
{
  public:
    static constexpr std::size_t kInlineParts = 1;

    PartsVec() = default;

    PartsVec(const PartsVec &other)
        : inline_(other.inline_), size_(other.size_)
    {
        if (other.onHeap()) {
            heap_ = FlitArena::acquire();
            heap_.assign(other.heap_.begin(), other.heap_.end());
        }
    }

    PartsVec(PartsVec &&other) noexcept
        : inline_(other.inline_), size_(other.size_),
          heap_(std::move(other.heap_))
    {
        other.heap_.clear();
        other.size_ = 0;
    }

    PartsVec &
    operator=(const PartsVec &other)
    {
        if (this == &other)
            return *this;
        inline_ = other.inline_;
        size_ = other.size_;
        if (other.onHeap()) {
            if (heap_.capacity() == 0)
                heap_ = FlitArena::acquire();
            heap_.assign(other.heap_.begin(), other.heap_.end());
        } else {
            heap_.clear(); // keep any block for a future spill
        }
        return *this;
    }

    PartsVec &
    operator=(PartsVec &&other) noexcept
    {
        if (this == &other)
            return *this;
        releaseHeap();
        inline_ = other.inline_;
        size_ = other.size_;
        heap_ = std::move(other.heap_);
        other.heap_.clear();
        other.size_ = 0;
        return *this;
    }

    ~PartsVec() { releaseHeap(); }

    void
    push_back(const FlitDesc &d)
    {
        if (!onHeap()) {
            if (size_ < kInlineParts) {
                inline_[size_++] = d;
                return;
            }
            // Spill: from here on heap_ is the single source of truth.
            if (heap_.capacity() == 0)
                heap_ = FlitArena::acquire();
            heap_.reserve(size_ + 1);
            heap_.assign(inline_.begin(), inline_.end());
        }
        heap_.push_back(d);
    }

    std::size_t size() const { return onHeap() ? heap_.size() : size_; }
    bool empty() const { return size() == 0; }
    const FlitDesc *
    begin() const
    {
        return onHeap() ? heap_.data() : inline_.data();
    }
    const FlitDesc *end() const { return begin() + size(); }
    const FlitDesc &front() const { return *begin(); }
    const FlitDesc &operator[](std::size_t i) const
    {
        return begin()[i];
    }

  private:
    bool onHeap() const { return !heap_.empty(); }

    /** Hand the spill block (if any) back to the arena. */
    void
    releaseHeap()
    {
        if (heap_.capacity() != 0)
            FlitArena::release(std::move(heap_));
    }

    std::array<FlitDesc, kInlineParts> inline_{};
    std::size_t size_ = 0;
    std::vector<FlitDesc> heap_;
};

/** Deterministic payload for (packet, seq), checkable at the sink. */
std::uint64_t expectedPayload(PacketId packet, std::uint32_t seq);

/** Deterministic uid for (packet, seq). */
std::uint64_t flitUid(PacketId packet, std::uint32_t seq);

/** Inverse of flitUid: the owning packet id. */
inline PacketId
flitPacket(std::uint64_t uid)
{
    return uid >> 8;
}

/** Inverse of flitUid: the flit's sequence number in its packet. */
inline std::uint32_t
flitSeq(std::uint64_t uid)
{
    return static_cast<std::uint32_t>(uid & 0xffu);
}

/**
 * E2E-retransmission attempt encoding. Every retransmission of a
 * logical packet travels under a distinct *wire* packet id so that the
 * simultaneously-live copies never alias each other in FIFO dedup,
 * arrival counting or provenance: the attempt number (1..255) rides in
 * the packet id's high bits, leaving the low 48 bits as the logical
 * (base) id. Payloads and uids derive from the *encoded* id, so the
 * sink's integrity checks stay self-consistent per attempt.
 */
constexpr int kPacketAttemptShift = 48;
constexpr PacketId kPacketBaseMask =
    (PacketId{1} << kPacketAttemptShift) - 1;

/** Logical packet id with any attempt bits stripped. */
inline PacketId
basePacket(PacketId packet)
{
    return packet & kPacketBaseMask;
}

/** E2E retransmission attempt (0 = the original transmission). */
inline std::uint32_t
packetAttempt(PacketId packet)
{
    return static_cast<std::uint32_t>(packet >> kPacketAttemptShift);
}

/** Wire packet id for retransmission @p attempt of @p base. */
inline PacketId
attemptPacket(PacketId base, std::uint32_t attempt)
{
    return base |
           (static_cast<PacketId>(attempt) << kPacketAttemptShift);
}

/**
 * A value travelling on a link or stored in an input FIFO: one flit,
 * or the XOR superposition of several (NoX encoded form).
 */
struct WireFlit
{
    std::uint64_t payload = 0; ///< XOR of constituent payloads
    bool encoded = false;      ///< encoded marker bit on the link
    std::uint8_t vc = 0;       ///< virtual channel tag on the link
    std::uint32_t crc = 0;     ///< link-level checksum (set at send
                               ///< when fault protection is enabled)
    PartsVec parts;            ///< constituents (bookkeeping)

    /** Wrap a single flit. */
    static WireFlit fromDesc(const FlitDesc &d);

    /** Build the XOR superposition of @p inputs (size >= 1). */
    static WireFlit combine(const std::vector<FlitDesc> &inputs);

    bool valid() const { return !parts.empty(); }
    std::size_t fanin() const { return parts.size(); }
};

/**
 * CRC-32C over the bits a link physically carries: the 64-bit payload
 * plus the encoded marker and VC tag. Senders stamp WireFlit::crc with
 * this before link traversal (fault-protected links only); receivers
 * recompute and compare to detect in-flight corruption.
 */
std::uint32_t wireChecksum(const WireFlit &w);

/** True iff @p w's stored crc matches its current contents. */
inline bool
wireChecksumOk(const WireFlit &w)
{
    return w.crc == wireChecksum(w);
}

/** What went wrong (if anything) during one XOR decode step. */
enum class DecodeFault : std::uint8_t {
    None = 0,
    /** Structure is intact but the XOR of the received payloads does
     *  not reproduce the recovered flit's bits — in-flight payload
     *  corruption reached the decode chain. */
    PayloadMismatch = 1,
    /** prev is not next plus exactly one flit: a wire value was lost
     *  or duplicated mid-chain. No flit can be recovered. */
    Structural = 2,
};

/** Outcome of a fault-tolerant decode step. */
struct DecodeResult
{
    /** Recovered flit. On PayloadMismatch this carries the payload
     *  the hardware would actually compute (prev XOR next), i.e. the
     *  corruption propagates bit-faithfully. Empty on Structural. */
    std::optional<FlitDesc> flit;
    DecodeFault fault = DecodeFault::None;
};

/**
 * Fault-tolerant decode of one flit from two consecutively received
 * WireFlits: the unique constituent of @p prev absent from @p next
 * (the packet that won arbitration upstream, §2.2). Never panics;
 * integrity violations are reported in DecodeResult::fault.
 */
DecodeResult tryDecodeDiff(const WireFlit &prev, const WireFlit &next);

/**
 * Strict decode for fault-free operation: panics — and thereby
 * verifies payload integrity end-to-end — if prev is not next plus
 * exactly one flit, or if the XOR of the payloads does not equal the
 * recovered flit's payload.
 */
FlitDesc decodeDiff(const WireFlit &prev, const WireFlit &next);

} // namespace nox

#endif // NOX_NOC_FLIT_HPP
