#include "noc/arbiter.hpp"

#include <bit>

#include "common/log.hpp"
#include "snapshot/io.hpp"

namespace nox {

void
Arbiter::serialize(snap::Writer &) const
{
}

void
Arbiter::restore(snap::Reader &)
{
}

RoundRobinArbiter::RoundRobinArbiter(int num_inputs)
    : Arbiter(num_inputs), pointer_(0)
{
    NOX_ASSERT(num_inputs > 0 && num_inputs <= kMaxMaskBits,
               "bad arbiter width");
}

int
RoundRobinArbiter::grant(RequestMask requests)
{
    if (requests == 0)
        return -1;
    // First set bit at or above the pointer, wrapping to the lowest
    // set bit — exactly the rotating search, without the modulo loop.
    const RequestMask above = requests >> pointer_;
    const int idx = above != 0
                        ? pointer_ + std::countr_zero(above)
                        : std::countr_zero(requests);
    pointer_ = idx + 1 == numInputs_ ? 0 : idx + 1;
    return idx;
}

void
RoundRobinArbiter::reset()
{
    pointer_ = 0;
    perturbs_ = 0;
}

void
RoundRobinArbiter::serialize(snap::Writer &w) const
{
    w.i32(pointer_);
    w.u32(perturbs_);
}

void
RoundRobinArbiter::restore(snap::Reader &r)
{
    pointer_ = r.i32();
    if (pointer_ < 0 || pointer_ >= numInputs_)
        r.fail("round-robin pointer out of range");
    perturbs_ = r.u32();
}

void
RoundRobinArbiter::perturb()
{
    pointer_ = pointer_ + 1 == numInputs_ ? 0 : pointer_ + 1;
    ++perturbs_;
}

int
FixedPriorityArbiter::grant(RequestMask requests)
{
    if (requests == 0)
        return -1;
    for (int i = 0; i < numInputs_; ++i) {
        if (requests & maskBit(i))
            return i;
    }
    return -1;
}

MatrixArbiter::MatrixArbiter(int num_inputs)
    : Arbiter(num_inputs)
{
    NOX_ASSERT(num_inputs > 0 && num_inputs <= kMaxMaskBits,
               "bad arbiter width");
    reset();
}

int
MatrixArbiter::grant(RequestMask requests)
{
    if (requests == 0)
        return -1;
    int winner = -1;
    for (int i = 0; i < numInputs_; ++i) {
        if (!(requests & maskBit(i)))
            continue;
        bool beaten = false;
        for (int j = 0; j < numInputs_; ++j) {
            if (j == i || !(requests & maskBit(j)))
                continue;
            if (prio_[j][i]) {
                beaten = true;
                break;
            }
        }
        if (!beaten) {
            winner = i;
            break;
        }
    }
    NOX_ASSERT(winner >= 0, "matrix arbiter priority relation broken");
    // Winner becomes lowest priority relative to everyone.
    for (int j = 0; j < numInputs_; ++j) {
        if (j != winner) {
            prio_[winner][j] = false;
            prio_[j][winner] = true;
        }
    }
    return winner;
}

void
MatrixArbiter::reset()
{
    prio_.assign(static_cast<std::size_t>(numInputs_),
                 std::vector<bool>(static_cast<std::size_t>(numInputs_),
                                   false));
    for (int i = 0; i < numInputs_; ++i) {
        for (int j = i + 1; j < numInputs_; ++j)
            prio_[i][j] = true; // initial total order by index
    }
    perturbs_ = 0;
}

void
MatrixArbiter::serialize(snap::Writer &w) const
{
    for (const auto &row : prio_)
        for (bool b : row)
            w.boolean(b);
    w.u32(perturbs_);
}

void
MatrixArbiter::restore(snap::Reader &r)
{
    for (auto &row : prio_)
        for (std::size_t j = 0; j < row.size(); ++j)
            row[j] = r.boolean();
    perturbs_ = r.u32();
}

void
MatrixArbiter::perturb()
{
    // Swap the relative priority of the first input pair; the next
    // contested grant between them flips.
    if (numInputs_ < 2)
        return;
    prio_[0][1] = !prio_[0][1];
    prio_[1][0] = !prio_[1][0];
    ++perturbs_;
}

} // namespace nox
