/**
 * @file
 * Table-based fault-tolerant routing.
 *
 * The paper evaluates every router on a pristine mesh with
 * dimension-ordered routing; this layer generalises route lookup to a
 * precomputed per-router table so the network can keep serving
 * traffic around *permanent* (fail-stop) link and router faults:
 *
 *  - On a fault-free mesh the table is filled directly from
 *    dorRoute()/dorRouteYX(), so lookup() is bit-identical to the
 *    paper's DOR baseline (verified pairwise by tests).
 *  - As soon as any hard fault exists, the affected topology is
 *    re-routed with up-down routing [Schroeder et al., Autonet]:
 *    a BFS spanning tree per connected component orients every live
 *    channel "up" (toward the root) or "down"; a legal path uses
 *    zero or more up channels followed by zero or more down channels.
 *    Forbidding the down->up turn makes the channel-dependency graph
 *    acyclic (every up channel strictly decreases the (level, id)
 *    key, every down channel strictly increases it), hence the
 *    routing is deadlock-free; rebuild() re-verifies this with an
 *    explicit cycle check on the CDG.
 *  - Reachability is exact: lookup() returns -1 for (and only for)
 *    pairs that BFS over live links cannot connect.
 */

#ifndef NOX_NOC_ROUTING_TABLE_HPP
#define NOX_NOC_ROUTING_TABLE_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "noc/types.hpp"

namespace nox {

/** Baseline routing algorithm used while the mesh is fault-free. */
enum class RoutingAlgo : std::uint8_t {
    DorXY = 0, ///< X-then-Y dimension order (the paper's baseline)
    DorYX = 1, ///< Y-then-X variant
};

/**
 * The set of fail-stop faults currently applied to a mesh. Links die
 * symmetrically (both directions at once — a fail-stop link takes its
 * turnaround credit wire down with it); killing a router implicitly
 * deadens all four of its mesh links. Faults are no longer permanent:
 * heal events undo kills entry-for-entry, and when the map empties
 * (`anyFault()` back to false) routing returns to the bit-identical
 * DOR baseline. Explicit link kills are tracked separately from the
 * links a dead router merely *implies* are down, so healing a router
 * does not silently resurrect a link that was killed in its own
 * right.
 */
class FaultMap
{
  public:
    FaultMap() = default;
    explicit FaultMap(const Mesh &mesh);

    /**
     * Kill the mesh link leaving @p router through @p port (and its
     * reverse direction). Returns false if there is no live link
     * there (edge of the mesh, already dead, or dead endpoint).
     */
    bool killLink(NodeId router, int port);

    /** Kill @p router and all of its mesh links. Returns false if it
     *  is already dead. */
    bool killRouter(NodeId router);

    /** Heal an explicitly killed link (both directions). Returns
     *  false when no explicit kill exists there — including links
     *  that are only down because an endpoint router is dead. */
    bool healLink(NodeId router, int port);

    /** Heal a dead router. Its implied link deaths lift with it;
     *  explicitly killed adjacent links stay dead until their own
     *  heal. Returns false if @p router is alive. */
    bool healRouter(NodeId router);

    bool routerDead(NodeId router) const;
    /** True when the link out of @p router through mesh direction
     *  @p port is dead — explicitly killed, or implied by a dead
     *  endpoint router. */
    bool linkDead(NodeId router, int port) const;

    /** True only for links killed in their own right (not merely
     *  implied dead by a dead endpoint). */
    bool linkDeadExplicit(NodeId router, int port) const;

    /** Any hard fault applied at all? While false, routing stays on
     *  the bit-identical DOR fast path. */
    bool anyFault() const { return faults_ > 0; }

    /** Currently dead routers, ascending. */
    std::vector<NodeId> deadRouters() const;

    /** Explicitly killed links as canonical (router, port) pairs
     *  (the lower-id endpoint), ascending — the replayable kill
     *  list checkpoints serialize. */
    std::vector<std::pair<NodeId, int>> explicitDeadLinks() const;

    int deadRouterCount() const;
    int explicitDeadLinkCount() const;

  private:
    const Mesh *mesh_ = nullptr;
    std::vector<std::uint8_t> routerDead_;
    /** Explicit link kills only: [router * 4 + port]. Links implied
     *  dead by a dead endpoint router are derived in linkDead(). */
    std::vector<std::uint8_t> linkDead_;
    int faults_ = 0;
};

/**
 * Per-router routing table: output port for every (current router,
 * destination router) pair, precomputed from a FaultMap.
 *
 * One instance is shared by every router of a Network; a router's
 * "private" table is its row. Lookup is a flat array read — cheaper
 * than the coordinate arithmetic it replaces.
 */
class RoutingTable
{
  public:
    RoutingTable(const Mesh &mesh, RoutingAlgo algo);

    /**
     * Recompute every entry for the given fault map. Fault-free maps
     * reproduce dorRoute()/dorRouteYX() exactly; any hard fault
     * switches the affected topology to up-down routing. Asserts
     * the resulting channel-dependency graph is acyclic.
     */
    void rebuild(const FaultMap &map);

    /**
     * Output port at @p router for a flit addressed to terminal
     * @p dest_node: a mesh direction, the destination's local port
     * when it lives on @p router, or -1 when @p dest_node is
     * unreachable from @p router.
     */
    int
    lookup(NodeId router, NodeId dest_node) const
    {
        const NodeId dr = mesh_.routerOf(dest_node);
        if (dr == router) {
            return routerDead_[static_cast<std::size_t>(router)]
                       ? -1
                       : mesh_.localPortOf(dest_node);
        }
        return table_[static_cast<std::size_t>(router) *
                          static_cast<std::size_t>(numRouters_) +
                      static_cast<std::size_t>(dr)];
    }

    /** Can traffic injected at @p src_node reach @p dest_node? */
    bool
    reachable(NodeId src_node, NodeId dest_node) const
    {
        const NodeId sr = mesh_.routerOf(src_node);
        if (routerDead_[static_cast<std::size_t>(sr)])
            return false;
        return lookup(sr, dest_node) >= 0;
    }

    bool
    routerDead(NodeId router) const
    {
        return routerDead_[static_cast<std::size_t>(router)] != 0;
    }

    /** Number of rebuild() calls so far (the fault-free build in the
     *  constructor counts as the first). */
    std::uint64_t rebuilds() const { return rebuilds_; }

    /** Overwrite the rebuild counter (checkpoint restore only: the
     *  restore path replays fault-map kills with one rebuild, then
     *  reinstates the original run's count). */
    void setRebuildCount(std::uint64_t n) { rebuilds_ = n; }

    /**
     * True when a flit that arrived over channel @p from -> @p at and
     * would next traverse @p at -> @p to makes the down-then-up turn
     * the current up-down table forbids. The table itself never
     * routes such a turn; it can only appear on *stale* traffic that
     * was already past @p from when a rebuild changed the table, so a
     * mid-run rebuild purges exactly these flits — every later wait
     * they could cause is then a table edge, covered by the CDG
     * acyclicity argument. A fault-free (DOR) table applies its own
     * turn rule instead (XY never turns a vertical channel into a
     * horizontal one; YX the transpose), so healing back to an empty
     * fault map purges the up-down stragglers the restored DOR table
     * could never have produced. Channels touching dead routers are
     * exempt (their flits are condemned outright).
     */
    bool
    forbiddenTurn(NodeId from, NodeId at, NodeId to) const
    {
        if (routerDead_[static_cast<std::size_t>(from)] ||
            routerDead_[static_cast<std::size_t>(at)] ||
            routerDead_[static_cast<std::size_t>(to)])
            return false;
        if (!upDown_) {
            const bool inVertical =
                mesh_.coordOf(from).x == mesh_.coordOf(at).x;
            const bool outVertical =
                mesh_.coordOf(to).x == mesh_.coordOf(at).x;
            return algo_ == RoutingAlgo::DorYX
                       ? (!inVertical && outVertical)
                       : (inVertical && !outVertical);
        }
        return chanKey(at) > chanKey(from) && // arrived going down
               chanKey(to) < chanKey(at);     // would next go up
    }

    /**
     * Explicitly verify the current table's channel-dependency graph
     * is acyclic (a channel is a live directed mesh link; channel A
     * depends on channel B when some destination routes a flit from
     * A directly into B). rebuild() asserts this; the fuzz tests
     * call it directly.
     */
    bool dependencyGraphAcyclic() const;

  private:
    void buildFaultFree();
    void buildUpDown(const FaultMap &map);

    /** Up-down ordering key: (BFS level, id) lexicographic. An
     *  u -> v channel is "up" iff chanKey(v) < chanKey(u). */
    std::uint64_t
    chanKey(NodeId u) const
    {
        return (static_cast<std::uint64_t>(
                    level_[static_cast<std::size_t>(u)])
                << 32) |
               static_cast<std::uint32_t>(u);
    }

    const Mesh &mesh_;
    RoutingAlgo algo_;
    int numRouters_;
    /** Output port per (router, destRouter); -1 = unreachable. */
    std::vector<std::int8_t> table_;
    std::vector<std::uint8_t> routerDead_;
    std::vector<std::uint8_t> linkDead_;
    std::vector<int> level_;   ///< BFS levels of the up-down forest
    bool upDown_ = false;      ///< last build used up-down routing
    std::uint64_t rebuilds_ = 0;
};

} // namespace nox

#endif // NOX_NOC_ROUTING_TABLE_HPP
