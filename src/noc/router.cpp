#include "noc/router.hpp"

#include <bit>

#include "common/log.hpp"
#include "noc/fault_injector.hpp"
#include "noc/nic.hpp"
#include "noc/snapshot_codec.hpp"

namespace nox {

Router::Router(NodeId id, const Mesh &mesh, const RoutingTable &table,
               const RouterParams &params)
    : id_(id), mesh_(mesh), table_(&table), params_(params)
{
    NOX_ASSERT(params.bufferDepth > 0, "buffer depth must be positive");
    NOX_ASSERT(params.numPorts >= 2 && params.numPorts <= kMaxMaskBits,
               "unsupported router radix ", params.numPorts);
    in_.reserve(static_cast<std::size_t>(params.numPorts));
    for (int p = 0; p < params.numPorts; ++p)
        in_.emplace_back(static_cast<std::size_t>(params.bufferDepth));
    stagedIn_.resize(static_cast<std::size_t>(params.numPorts));
    stagedCredits_.assign(static_cast<std::size_t>(params.numPorts), 0);
    credits_.assign(static_cast<std::size_t>(params.numPorts), 0);
    outTarget_.resize(static_cast<std::size_t>(params.numPorts));
    creditTarget_.resize(static_cast<std::size_t>(params.numPorts));
}

void
Router::commit()
{
    RequestMask staged = stagedInMask_;
    stagedInMask_ = 0;
    while (staged) {
        const int p = std::countr_zero(staged);
        staged &= staged - 1;
        energy_.bufferWrites += 1;
        in_[p].push(std::move(stagedIn_[p]));
    }
    RequestMask credited = stagedCreditMask_;
    stagedCreditMask_ = 0;
    while (credited) {
        const int p = std::countr_zero(credited);
        credited &= credited - 1;
        credits_[p] += stagedCredits_[p];
        stagedCredits_[p] = 0;
    }
}

bool
Router::quiescent() const
{
    if (stagedInMask_ != 0)
        return false;
    for (int p = 0; p < params_.numPorts; ++p) {
        if (!in_[p].empty() || stagedCredits_[p] != 0)
            return false;
    }
    // Link-layer state keeps a router live: a pending retry entry
    // still needs its ack timeout, and lost credits still need the
    // watchdog to run. Retiring here would strand both.
    if (faults_) {
        for (int p = 0; p < params_.numPorts; ++p) {
            if (retry_[p].has_value() || creditsLost_[p] != 0)
                return false;
        }
    }
    return true;
}

void
Router::attachFaults(FaultInjector *faults)
{
    faults_ = faults;
    if (!faults_)
        return;
    retry_.assign(static_cast<std::size_t>(params_.numPorts),
                  std::nullopt);
    lastLinkSend_.assign(static_cast<std::size_t>(params_.numPorts),
                         ~Cycle{0});
    creditsLost_.assign(static_cast<std::size_t>(params_.numPorts), 0);
}

void
Router::linkAck(int out_port)
{
    retry_[out_port].reset();
}

void
Router::linkNack(int out_port)
{
    NOX_ASSERT(retry_[out_port].has_value(),
               "link nack with no pending retry entry on ",
               portName(out_port));
    retry_[out_port]->due = faults_->now() + faults_->params().nackDelay;
    retry_[out_port]->nacked = true;
    trace(TraceEventKind::LinkNack, out_port,
          retry_[out_port]->flit.parts.front().uid);
}

void
Router::evaluateLink(Cycle now)
{
    if (!faults_)
        return;
    if (prov_) {
        // Every cycle a retry entry is outstanding, its wire value is
        // somewhere between acceptance and a successful restage: bill
        // the wait to the link-protection machinery. The charge is
        // located at the *downstream* receiver — where onHopSend
        // placed the accepted flit — so encoded-chain constituents
        // that lost arbitration here (NoX) are filtered out by the
        // provenance location guard and keep accruing their own
        // XorRecovery/arbitration charges instead.
        for (int o = 0; o < params_.numPorts; ++o) {
            if (!retry_[o] || !outTarget_[o].router)
                continue;
            const NodeId down = outTarget_[o].router->id();
            for (const FlitDesc &d : retry_[o]->flit.parts)
                prov_->onStall(d.uid, LatencyComponent::Retransmit,
                               down, false, now);
        }
    }
    for (int o = 0; o < params_.numPorts; ++o) {
        if (!retry_[o] || retry_[o]->due > now)
            continue;
        // Timeout with no nack means the wire value never arrived:
        // the link layer has detected a drop.
        if (!retry_[o]->nacked)
            faults_->onDropDetected();
        // Re-arm before driving the wire — the receiver's synchronous
        // ack/nack during stageFlit overrides this entry.
        retry_[o]->nacked = false;
        retry_[o]->due = now + faults_->params().retryTimeout;
        faults_->onRetransmission();
        trace(TraceEventKind::Retransmit, o,
              retry_[o]->flit.parts.front().uid);
        lastLinkSend_[o] = now;
        // The retry buffer drives the link directly (no crossbar
        // traversal); no downstream credit is consumed — the slot was
        // reserved by the original send.
        energy_.linkFlits += 1;
        const FlitTarget &t = outTarget_[o];
        WireFlit copy = retry_[o]->flit;
        t.router->stageFlit(t.port, std::move(copy));
    }
    const Cycle period = faults_->params().watchdogPeriod;
    if (faults_->protectEnabled() && period > 0 && now % period == 0) {
        for (int o = 0; o < params_.numPorts; ++o) {
            if (creditsLost_[o] == 0)
                continue;
            // The watchdog audits the credit loop and restores the
            // counter to what the downstream buffer really holds.
            faults_->onCreditResync(
                static_cast<std::uint64_t>(creditsLost_[o]));
            trace(TraceEventKind::CreditResync, o, 0,
                  static_cast<std::uint32_t>(creditsLost_[o]));
            credits_[o] += creditsLost_[o];
            creditsLost_[o] = 0;
        }
    }
}

void
Router::connectOutput(int out_port, FlitTarget target, int credits)
{
    NOX_ASSERT(out_port >= 0 && out_port < params_.numPorts,
               "bad port");
    NOX_ASSERT(!outTarget_[out_port].connected(),
               "output port wired twice");
    outTarget_[out_port] = target;
    if (target.connected())
        connectedOutMask_ |= maskBit(out_port);
    credits_[out_port] = credits;
}

void
Router::connectInputCredit(int in_port, CreditTarget target)
{
    NOX_ASSERT(in_port >= 0 && in_port < params_.numPorts,
               "bad port");
    NOX_ASSERT(!creditTarget_[in_port].connected(),
               "input credit port wired twice");
    creditTarget_[in_port] = target;
}

void
Router::stageFlit(int in_port, WireFlit &&flit)
{
    NOX_ASSERT(in_port >= 0 && in_port < params_.numPorts,
               "bad port");
    // Fault boundary: only inter-router mesh links are perturbed —
    // a router upstream on the credit path identifies one (NIC
    // inject/eject connections are short, protected terminal wires).
    if (faults_ && creditTarget_[in_port].router) {
        const FlitFaults f = faults_->drawFlitFaults(id_, in_port);
        if (f.dropped)
            return; // vanished on the wire; sender timeout recovers
        flit.payload ^= f.flipMask;
        if (faults_->protectEnabled()) {
            Router *up = creditTarget_[in_port].router;
            const int up_port = creditTarget_[in_port].port;
            if (!wireChecksumOk(flit)) {
                // Corrupted arrival: reject (never buffered, so the
                // XOR decode chain stays clean) and nack the sender.
                faults_->onCorruptionRejected();
                trace(TraceEventKind::CrcReject, in_port,
                      flit.parts.front().uid);
                up->linkNack(up_port);
                return;
            }
            up->linkAck(up_port);
        }
    }
    NOX_ASSERT(!stagedAt(in_port),
               "two flits staged at one input in one cycle (router ",
               id_, " port ", portName(in_port), ")");
    stagedIn_[in_port] = std::move(flit);
    stagedInMask_ |= maskBit(in_port);
    wake();
}

void
Router::stageCredit(int out_port, int count)
{
    NOX_ASSERT(out_port >= 0 && out_port < params_.numPorts,
               "bad port");
    if (faults_ && outTarget_[out_port].router) {
        int survived = 0;
        for (int i = 0; i < count; ++i) {
            if (!faults_->drawCreditLoss(
                    id_, out_port, static_cast<std::uint64_t>(i))) {
                ++survived;
                continue;
            }
            // With protection, the loss is owed to this port until
            // the watchdog's next audit restores it; raw mode just
            // leaks the downstream buffer slot.
            if (faults_->protectEnabled())
                creditsLost_[out_port] += 1;
        }
        count = survived;
    }
    stagedCredits_[out_port] += count;
    stagedCreditMask_ |= maskBit(out_port);
    wake();
}

void
Router::sendFlit(int out_port, WireFlit &&flit)
{
    NOX_ASSERT(credits_[out_port] > 0,
               "send without downstream credit on ", portName(out_port));
    --credits_[out_port];
    dispatchFlit(out_port, std::move(flit));
}

void
Router::dispatchFlit(int out_port, WireFlit &&flit)
{
    NOX_ASSERT(outTarget_[out_port].connected(),
               "send on unconnected output ", portName(out_port));

    if (tracer_) {
        tracer_->record(TraceEventKind::FlitSend, id_, out_port,
                        flit.encoded ? 0 : flit.parts.front().uid,
                        static_cast<std::uint32_t>(flit.fanin()));
    }
    energy_.xbarOutputCycles += 1;
    if (out_port >= kPortLocal)
        energy_.localLinkFlits += 1;
    else
        energy_.linkFlits += 1;

    const FlitTarget &t = outTarget_[out_port];
    if (t.router) {
        if (faults_ && faults_->protectEnabled()) {
            // Stamp the link CRC and park a copy in the retry buffer
            // *before* driving the wire: the receiver's synchronous
            // ack/nack lands on this entry.
            flit.crc = wireChecksum(flit);
            NOX_ASSERT(!retry_[out_port].has_value(),
                       "send while link retry pending on ",
                       portName(out_port));
            retry_[out_port] = RetryEntry{
                flit, faults_->now() + faults_->params().retryTimeout,
                false};
        }
        t.router->stageFlit(t.port, std::move(flit));
    } else {
        t.nic->stageSinkFlit(std::move(flit));
    }
}

void
Router::provSend(const FlitDesc &d, int out_port, Cycle now)
{
    if (!prov_)
        return;
    const FlitTarget &t = outTarget_[out_port];
    if (t.router)
        prov_->onHopSend(d.uid, now, t.router->id(), false);
    else if (t.nic)
        prov_->onHopSend(d.uid, now, d.dest, true);
}

void
Router::driveWasted(int out_port)
{
    energy_.xbarOutputCycles += 1;
    if (out_port >= kPortLocal)
        energy_.localLinkWasted += 1;
    else
        energy_.linkWastedCycles += 1;
}

void
Router::returnCredit(int in_port)
{
    const CreditTarget &t = creditTarget_[in_port];
    if (!t.connected())
        return; // edge port with no upstream (should stay unused)
    if (t.router)
        t.router->stageCredit(t.port);
    else
        t.nic->stageInjectCredit();
}

int
Router::routeOf(const FlitDesc &flit) const
{
    const int port = table_->lookup(id_, flit.dest);
    NOX_ASSERT(port >= 0, "flit for unreachable destination ",
               flit.dest, " buffered at router ", id_,
               " (hard-fault purge missed it) packet=", flit.packet,
               " seq=", flit.seq, " src=", flit.src, " uid=",
               flit.uid);
    return port;
}

void
Router::killOutput(int out_port, std::vector<FlitDesc> &lost)
{
    if (!outTarget_[out_port].connected())
        return;
    if (faults_) {
        // A pending retry entry was never acknowledged: the receiver
        // rejected or never saw it, so its flits die with the wire.
        if (retry_[out_port]) {
            for (const FlitDesc &d : retry_[out_port]->flit.parts)
                lost.push_back(d);
            retry_[out_port].reset();
        }
        lastLinkSend_[out_port] = ~Cycle{0};
        creditsLost_[out_port] = 0;
    }
    credits_[out_port] = 0;
    stagedCredits_[out_port] = 0;
    outTarget_[out_port] = FlitTarget{};
    connectedOutMask_ &= ~maskBit(out_port);
}

void
Router::killInput(int in_port, std::vector<FlitDesc> &lost)
{
    if (stagedAt(in_port)) {
        for (const FlitDesc &d : stagedIn_[in_port].parts)
            lost.push_back(d);
        stagedIn_[in_port] = WireFlit{}; // returns any spill block
        stagedInMask_ &= ~maskBit(in_port);
    }
    creditTarget_[in_port] = CreditTarget{};
}

void
Router::purgeInputsPlain(const FlitCondemned &condemned,
                         std::vector<FlitDesc> &removed)
{
    for (int p = 0; p < params_.numPorts; ++p) {
        FlitFifo &fifo = in_[p];
        const std::size_t n = fifo.size();
        for (std::size_t i = 0; i < n; ++i) {
            WireFlit w = fifo.pop();
            bool bad = false;
            for (const FlitDesc &d : w.parts)
                bad = bad || condemned(id_, p, d);
            if (!bad) {
                fifo.push(std::move(w));
                continue;
            }
            for (const FlitDesc &d : w.parts)
                removed.push_back(d);
            returnCredit(p); // no-op if the upstream link died too
        }
    }
}

void
Router::purgeLinkState(const FlitCondemned &condemned,
                       std::vector<FlitDesc> &removed)
{
    NOX_ASSERT(stagedInMask_ == 0,
               "hard-fault purge ran mid-cycle (router ", id_, ")");
    for (int p = 0; p < params_.numPorts; ++p) {
        if (!faults_ || !retry_[p])
            continue;
        // The retry copy's original is (or will be, on resend) in the
        // downstream neighbour's buffer: judge it at that position.
        // (Retry entries exist only on router-to-router mesh links.)
        const NodeId nb = p >= kPortNorth && p <= kPortWest
                              ? mesh_.neighbor(id_, p)
                              : kInvalidNode;
        const NodeId at = nb == kInvalidNode ? id_ : nb;
        const int in_port =
            nb == kInvalidNode ? p : Mesh::oppositePort(p);
        bool bad = false;
        for (const FlitDesc &d : retry_[p]->flit.parts)
            bad = bad || condemned(at, in_port, d);
        if (!bad)
            continue;
        const WireFlit flushed = retry_[p]->flit;
        retry_[p].reset();
        for (const FlitDesc &d : flushed.parts)
            removed.push_back(d);
        // The original send consumed a downstream credit that will
        // never be returned (the receiver nacked / never buffered the
        // value); refund it so flow control stays exact.
        if (outTarget_[p].connected())
            refundRetryCredit(p, flushed);
    }
}

void
Router::purgeFlits(const FlitCondemned &condemned,
                   std::vector<FlitDesc> &removed)
{
    purgeInputsPlain(condemned, removed);
    purgeLinkState(condemned, removed);
}

void
Router::onTableRebuild()
{
    degraded_ = true;
}

std::optional<FlitDesc>
Router::plainHead(int port) const
{
    const FlitFifo &fifo = in_[port];
    if (fifo.empty())
        return std::nullopt;
    const WireFlit &head = fifo.front();
    NOX_ASSERT(!head.encoded,
               "encoded flit reached a non-decoding input port");
    return head.parts.front();
}

std::unique_ptr<Arbiter>
Router::makeArbiter() const
{
    switch (params_.arbiterKind) {
      case ArbiterKind::RoundRobin:
        return std::make_unique<RoundRobinArbiter>(params_.numPorts);
      case ArbiterKind::FixedPriority:
        return std::make_unique<FixedPriorityArbiter>(params_.numPorts);
      case ArbiterKind::Matrix:
        return std::make_unique<MatrixArbiter>(params_.numPorts);
    }
    panic("unknown arbiter kind");
}

void
Router::serialize(snap::Writer &w, snap::Scope scope) const
{
    // Snapshots are taken between steps: commit() has latched every
    // staged arrival, so staged state is structurally empty.
    NOX_ASSERT(stagedInMask_ == 0 && stagedCreditMask_ == 0,
               "serialize with staged arrivals (mid-step snapshot)");
    snap::tag(w, snap::fourcc("ROUT"));
    w.i32(id_);
    w.u64(connectedOutMask_); // structural cross-check on restore
    w.boolean(degraded_);
    for (const FlitFifo &f : in_)
        snap::writeFlitFifo(w, f);
    for (int c : credits_)
        w.i32(c);
    w.boolean(faults_ != nullptr);
    if (faults_) {
        for (int p = 0; p < params_.numPorts; ++p) {
            const auto &entry = retry_[static_cast<std::size_t>(p)];
            w.boolean(entry.has_value());
            if (entry.has_value()) {
                snap::writeWireFlit(w, entry->flit);
                w.u64(entry->due);
                w.boolean(entry->nacked);
            }
            w.u64(lastLinkSend_[static_cast<std::size_t>(p)]);
            w.i32(creditsLost_[static_cast<std::size_t>(p)]);
        }
    }
    // Energy counters are kernel-dependent (the activity kernel
    // clock-gates retired routers), so the digest scope omits them.
    if (scope == snap::Scope::Snapshot)
        snap::writeEnergyEvents(w, energy_);
}

void
Router::restore(snap::Reader &r)
{
    NOX_ASSERT(stagedInMask_ == 0 && stagedCreditMask_ == 0,
               "restore with staged arrivals (mid-step restore)");
    snap::checkTag(r, snap::fourcc("ROUT"));
    if (r.i32() != id_)
        r.fail("router id mismatch (stream desync)");
    if (r.u64() != connectedOutMask_) {
        r.fail("router output wiring mismatch: the snapshot's fault "
               "map was not replayed onto this network");
    }
    degraded_ = r.boolean();
    for (FlitFifo &f : in_)
        snap::readFlitFifo(r, f);
    for (int &c : credits_)
        c = r.i32();
    if (r.boolean() != (faults_ != nullptr))
        r.fail("fault-injection presence mismatch (wrong config)");
    if (faults_) {
        for (int p = 0; p < params_.numPorts; ++p) {
            auto &entry = retry_[static_cast<std::size_t>(p)];
            if (r.boolean()) {
                RetryEntry e;
                e.flit = snap::readWireFlit(r);
                e.due = r.u64();
                e.nacked = r.boolean();
                entry = std::move(e);
            } else {
                entry.reset();
            }
            lastLinkSend_[static_cast<std::size_t>(p)] = r.u64();
            creditsLost_[static_cast<std::size_t>(p)] = r.i32();
        }
    }
    energy_ = snap::readEnergyEvents(r);
}

} // namespace nox
