#include "noc/router.hpp"

#include "common/log.hpp"
#include "noc/nic.hpp"

namespace nox {

Router::Router(NodeId id, const Mesh &mesh, RoutingFunction route,
               const RouterParams &params)
    : id_(id), mesh_(mesh), route_(route), params_(params)
{
    NOX_ASSERT(params.bufferDepth > 0, "buffer depth must be positive");
    NOX_ASSERT(params.numPorts >= 2 && params.numPorts <= kMaxMaskBits,
               "unsupported router radix ", params.numPorts);
    in_.reserve(static_cast<std::size_t>(params.numPorts));
    for (int p = 0; p < params.numPorts; ++p)
        in_.emplace_back(static_cast<std::size_t>(params.bufferDepth));
    stagedIn_.resize(static_cast<std::size_t>(params.numPorts));
    stagedCredits_.assign(static_cast<std::size_t>(params.numPorts), 0);
    credits_.assign(static_cast<std::size_t>(params.numPorts), 0);
    outTarget_.resize(static_cast<std::size_t>(params.numPorts));
    creditTarget_.resize(static_cast<std::size_t>(params.numPorts));
}

void
Router::commit()
{
    for (int p = 0; p < params_.numPorts; ++p) {
        if (stagedIn_[p]) {
            energy_.bufferWrites += 1;
            in_[p].push(std::move(*stagedIn_[p]));
            stagedIn_[p].reset();
        }
        credits_[p] += stagedCredits_[p];
        stagedCredits_[p] = 0;
    }
}

bool
Router::quiescent() const
{
    for (int p = 0; p < params_.numPorts; ++p) {
        if (!in_[p].empty() || stagedIn_[p] || stagedCredits_[p] != 0)
            return false;
    }
    return true;
}

void
Router::connectOutput(int out_port, FlitTarget target, int credits)
{
    NOX_ASSERT(out_port >= 0 && out_port < params_.numPorts,
               "bad port");
    NOX_ASSERT(!outTarget_[out_port].connected(),
               "output port wired twice");
    outTarget_[out_port] = target;
    credits_[out_port] = credits;
}

void
Router::connectInputCredit(int in_port, CreditTarget target)
{
    NOX_ASSERT(in_port >= 0 && in_port < params_.numPorts,
               "bad port");
    NOX_ASSERT(!creditTarget_[in_port].connected(),
               "input credit port wired twice");
    creditTarget_[in_port] = target;
}

void
Router::stageFlit(int in_port, WireFlit flit)
{
    NOX_ASSERT(in_port >= 0 && in_port < params_.numPorts,
               "bad port");
    NOX_ASSERT(!stagedIn_[in_port],
               "two flits staged at one input in one cycle (router ",
               id_, " port ", portName(in_port), ")");
    stagedIn_[in_port] = std::move(flit);
    wake();
}

void
Router::stageCredit(int out_port, int count)
{
    NOX_ASSERT(out_port >= 0 && out_port < params_.numPorts,
               "bad port");
    stagedCredits_[out_port] += count;
    wake();
}

void
Router::sendFlit(int out_port, WireFlit flit)
{
    NOX_ASSERT(credits_[out_port] > 0,
               "send without downstream credit on ", portName(out_port));
    --credits_[out_port];
    dispatchFlit(out_port, std::move(flit));
}

void
Router::dispatchFlit(int out_port, WireFlit flit)
{
    NOX_ASSERT(outTarget_[out_port].connected(),
               "send on unconnected output ", portName(out_port));

    energy_.xbarOutputCycles += 1;
    if (out_port >= kPortLocal)
        energy_.localLinkFlits += 1;
    else
        energy_.linkFlits += 1;

    const FlitTarget &t = outTarget_[out_port];
    if (t.router)
        t.router->stageFlit(t.port, std::move(flit));
    else
        t.nic->stageSinkFlit(std::move(flit));
}

void
Router::driveWasted(int out_port)
{
    energy_.xbarOutputCycles += 1;
    if (out_port >= kPortLocal)
        energy_.localLinkWasted += 1;
    else
        energy_.linkWastedCycles += 1;
}

void
Router::returnCredit(int in_port)
{
    const CreditTarget &t = creditTarget_[in_port];
    if (!t.connected())
        return; // edge port with no upstream (should stay unused)
    if (t.router)
        t.router->stageCredit(t.port);
    else
        t.nic->stageInjectCredit();
}

int
Router::routeOf(const FlitDesc &flit) const
{
    return route_(mesh_, id_, flit.dest);
}

std::optional<FlitDesc>
Router::plainHead(int port) const
{
    const FlitFifo &fifo = in_[port];
    if (fifo.empty())
        return std::nullopt;
    const WireFlit &head = fifo.front();
    NOX_ASSERT(!head.encoded,
               "encoded flit reached a non-decoding input port");
    return head.parts.front();
}

std::unique_ptr<Arbiter>
Router::makeArbiter() const
{
    switch (params_.arbiterKind) {
      case ArbiterKind::RoundRobin:
        return std::make_unique<RoundRobinArbiter>(params_.numPorts);
      case ArbiterKind::FixedPriority:
        return std::make_unique<FixedPriorityArbiter>(params_.numPorts);
      case ArbiterKind::Matrix:
        return std::make_unique<MatrixArbiter>(params_.numPorts);
    }
    panic("unknown arbiter kind");
}

} // namespace nox
