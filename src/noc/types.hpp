/**
 * @file
 * Fundamental identifiers and constants for the on-chip network.
 */

#ifndef NOX_NOC_TYPES_HPP
#define NOX_NOC_TYPES_HPP

#include <cstdint>

namespace nox {

/** Node (tile) identifier; row-major within the mesh. */
using NodeId = std::int32_t;

/** Simulation time in router clock cycles. */
using Cycle = std::uint64_t;

/** Globally unique packet identifier within one simulation. */
using PacketId = std::uint64_t;

constexpr NodeId kInvalidNode = -1;
constexpr PacketId kInvalidPacket = 0;

/**
 * Router port numbering. The four mesh directions come first so that
 * direction arithmetic is easy; local (NIC) ports follow. On a
 * concentrated mesh with C terminals per router, the local ports are
 * kPortLocal .. kPortLocal+C-1 and the router radix is 4+C.
 */
enum Port : int {
    kPortNorth = 0,
    kPortEast = 1,
    kPortSouth = 2,
    kPortWest = 3,
    kPortLocal = 4,
    kNumPorts = 5, ///< radix of the standard (concentration-1) router
};

/** Radix of a mesh router with @p concentration local terminals. */
constexpr int
meshRadix(int concentration)
{
    return 4 + concentration;
}

/** Human-readable port name ("N", "E", "S", "W", "L"). */
const char *portName(int port);

/** Traffic classes used for per-class statistics. */
enum class TrafficClass : std::uint8_t {
    Synthetic = 0,
    Request = 1,
    Reply = 2,
};

/** The four router microarchitectures evaluated in the paper. */
enum class RouterArch : std::uint8_t {
    NonSpeculative = 0, ///< SA then ST inside one long cycle (Fig 5)
    SpecFast = 1,       ///< Mullins-style minimal-period speculation
    SpecAccurate = 2,   ///< speculation with accurate Switch-Next
    Nox = 3,            ///< XOR-coded crossbar (the paper's design)
};

/** Display name for a router architecture. */
const char *archName(RouterArch arch);

/** Parse an architecture name ("nonspec", "specfast", ...). */
RouterArch parseArch(const char *name);

/** All four architectures, in the paper's presentation order. */
inline constexpr RouterArch kAllArchs[] = {
    RouterArch::NonSpeculative,
    RouterArch::SpecFast,
    RouterArch::SpecAccurate,
    RouterArch::Nox,
};

} // namespace nox

#endif // NOX_NOC_TYPES_HPP
