/**
 * @file
 * Deterministic link-fault injection.
 *
 * The injector perturbs traffic at the inter-router link boundary
 * (flit bit flips, whole-flit drops, lost credits) and keeps the
 * authoritative record of every injected event. Local (router<->NIC)
 * links are modelled as short, protected terminal connections and are
 * never faulted; the long global mesh wires are where upsets happen.
 *
 * Determinism: every decision is a pure function of the fault seed and
 * the event's identity (cycle, receiving router, input port, kind) —
 * a hash-keyed stream rather than a sequential one. Because link
 * events themselves are identical across scheduling kernels, the same
 * seed therefore produces the same fault schedule — and bit-identical
 * NetworkStats — under alwaystick, activity and equivalence
 * scheduling, regardless of which components happen to be evaluated.
 * The stream is independent of every traffic RNG.
 */

#ifndef NOX_NOC_FAULT_INJECTOR_HPP
#define NOX_NOC_FAULT_INJECTOR_HPP

#include <cstdint>
#include <vector>

#include "noc/network_stats.hpp"
#include "noc/types.hpp"
#include "obs/trace_recorder.hpp"

namespace nox {

class Config;
class Mesh;

/** The fault classes: transient link upsets, fail-stop kills, and
 *  the heal events that undo them. */
enum class FaultKind : std::uint8_t {
    BitFlip = 0,    ///< one payload bit inverted in flight
    Drop = 1,       ///< the whole wire value vanishes
    CreditLoss = 2, ///< a returning credit vanishes
    LinkDead = 3,   ///< a bidirectional mesh link fails
    RouterDead = 4, ///< a whole router (and its links) fails
    LinkHeal = 5,   ///< a killed link comes back into service
    RouterHeal = 6, ///< a killed router (and its NIC) revives
};

/** Display name ("bitflip", ..., "linkheal", "routerheal"). */
const char *faultKindName(FaultKind kind);

/** True for the fail-stop kill/heal kinds handled by the hard-fault
 *  queue (as opposed to the per-event soft upsets). */
inline bool
faultKindHard(FaultKind kind)
{
    return kind == FaultKind::LinkDead ||
           kind == FaultKind::RouterDead ||
           kind == FaultKind::LinkHeal ||
           kind == FaultKind::RouterHeal;
}

/** Fault-injection configuration (all rates are per link event). */
struct FaultParams
{
    /** Master switch; no injector is built when false. */
    bool enabled = false;

    double bitflipRate = 0.0;    ///< P(one payload bit flips) per flit
    double dropRate = 0.0;       ///< P(flit lost) per link traversal
    double creditLossRate = 0.0; ///< P(credit lost) per credit return

    /** Seed of the injector's own stream (independent of traffic). */
    std::uint64_t seed = 0xFA01;

    /**
     * Link-level protection: CRC stamped at send and checked at
     * receive, nack/timeout-driven retransmission from a per-port
     * retry buffer, and the credit watchdog. With protection off the
     * fabric is raw: corruption propagates (detected only by decode
     * integrity checks and the sink payload check) and dropped flits
     * or credits are simply lost.
     */
    bool protect = true;

    /** Cycles a sender waits for the (synchronous) ack before it
     *  declares the flit dropped and retransmits. */
    Cycle retryTimeout = 8;

    /** Cycles between a received nack and the retransmission
     *  (nack turnaround of the link-level protocol). */
    Cycle nackDelay = 1;

    /** Period of the credit watchdog's divergence audit. */
    Cycle watchdogPeriod = 64;

    /** Hard (fail-stop) faults planned at construction: this many
     *  distinct internal mesh links / routers are killed, drawn
     *  deterministically from the fault seed. */
    int hardLinkFaults = 0;
    int hardRouterFaults = 0;

    /** Cycle the planned hard faults fire at. 0 (default) kills at
     *  construction, before any traffic; a later cycle exercises the
     *  mid-run graceful-degradation path (in-flight flits on dying
     *  links are lost and counted). */
    Cycle hardFaultCycle = 0;

    /** Per-packet age watchdog: a packet in flight longer than this
     *  many cycles latches the flight recorder once (livelock alarm).
     *  0 disables the watchdog. */
    Cycle packetAgeLimit = 0;

    // -- E2E transport (source-side exactly-once delivery) --

    /** Enable the NIC transport layer: source-side in-flight window,
     *  destination acks and duplicate suppression, timeout-driven
     *  whole-packet retransmission. Turns hard-fault write-offs into
     *  recoverable losses. */
    bool e2eTransport = false;

    /** Cycles without delivery before the source retransmits. */
    Cycle e2eTimeout = 2000;

    /** Retransmission attempts before a packet is abandoned as a
     *  deliveryFailure (bounded so a permanently dead destination
     *  cannot stall drain forever). Capped at 255 by the attempt
     *  encoding. */
    int e2eRetryLimit = 16;

    /** Cycles between a completed delivery and the E2E ack retiring
     *  the source window entry (models the return-path latency). */
    Cycle e2eAckDelay = 8;

    // -- fault churn (seeded kill + heal waves) --

    /** Number of kill+heal waves. Each wave kills churnRouters
     *  routers and churnLinks links at its wave cycle and heals the
     *  same victims churnHealAfter cycles later; all draws are
     *  hash-keyed off the fault seed. */
    int churnWaves = 0;

    /** Cycle of the first wave's kills. */
    Cycle churnStart = 5000;

    /** Spacing between consecutive waves' kill cycles. */
    Cycle churnPeriod = 20000;

    /** Delay from a wave's kills to its heals. */
    Cycle churnHealAfter = 8000;

    /** Victims per wave. */
    int churnLinks = 2;
    int churnRouters = 1;

    bool
    anyRate() const
    {
        return bitflipRate > 0.0 || dropRate > 0.0 ||
               creditLossRate > 0.0;
    }

    bool
    anyHard() const
    {
        return hardLinkFaults > 0 || hardRouterFaults > 0 ||
               churnWaves > 0;
    }
};

/**
 * Read `fault_*` keys from @p config:
 *   fault_bitflip_rate=, fault_drop_rate=, fault_credit_loss_rate=,
 *   fault_seed=, fault_recovery= (default true),
 *   fault_retry_timeout=, fault_watchdog_period=,
 *   hard_link_faults=, hard_router_faults=, hard_fault_cycle=,
 *   fault_age_limit=, e2e_transport=, e2e_timeout=,
 *   e2e_retry_limit=, e2e_ack_delay=, churn_waves=, churn_start=,
 *   churn_period=, churn_heal_after=, churn_links=, churn_routers=.
 * `enabled` is set when any rate, hard-fault count, churn wave or the
 * E2E transport is requested, or fault_seed/fault_recovery is given
 * explicitly.
 */
FaultParams faultParamsFromConfig(const Config &config);

/** One injected fault, as recorded in the fault log. */
struct FaultEvent
{
    Cycle cycle = 0;
    FaultKind kind = FaultKind::BitFlip;
    NodeId router = kInvalidNode; ///< receiving router
    int port = -1;                ///< receiving input port (flits) or
                                  ///< sender output port (credits)
    std::uint64_t flipMask = 0;   ///< payload bits inverted (BitFlip)
};

/** Outcome of the fault draw for one flit link traversal. */
struct FlitFaults
{
    std::uint64_t flipMask = 0; ///< payload bits to invert (0 = none)
    bool dropped = false;
};

/**
 * Deterministic, seeded fault source shared by all routers of one
 * network. Also owns the fault log and (unless rebound) the
 * FaultStats counters the defence layers report into.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultParams &params);

    const FaultParams &params() const { return params_; }
    bool protectEnabled() const { return params_.protect; }

    /** Advance the injector's notion of time (once per Network
     *  cycle, before any evaluation phase). */
    void beginCycle(Cycle now) { now_ = now; }
    Cycle now() const { return now_; }

    /** Point the counters at external storage (the Network binds its
     *  NetworkStats::faults here). */
    void bindStats(FaultStats *stats) { stats_ = stats; }
    const FaultStats &stats() const { return *stats_; }

    /** Attach the network's trace recorder: every injected fault is
     *  then also recorded as a FaultInject trace event. */
    void attachTracer(TraceRecorder *tracer) { tracer_ = tracer; }

    /**
     * Schedule a targeted one-shot fault: fires on the first matching
     * link event at/after @p cycle on (receiving router, port) —
     * irrespective of the configured rates. @p flip_mask selects the
     * payload bits to invert for BitFlip (0 picks bit 0).
     *
     * Hard kinds (LinkDead/RouterDead and their heal inverses) are
     * routed to the hard-fault queue instead: they fire via
     * takeDueHardFaults() at @p cycle (@p router is the dying or
     * reviving router; @p port is the output port of the affected
     * link for the link kinds, ignored for the router kinds).
     */
    void scheduleOneShot(FaultKind kind, Cycle cycle, NodeId router,
                         int port, std::uint64_t flip_mask = 0);

    /** Pending (not yet fired) one-shot faults. */
    std::size_t pendingOneShots() const;

    // -- hard (fail-stop) faults and heals --

    /** One planned or scheduled fail-stop fault or heal event. */
    struct HardFault
    {
        FaultKind kind = FaultKind::LinkDead;
        Cycle cycle = 0;
        NodeId router = kInvalidNode; ///< affected router / endpoint
        int port = -1; ///< output port of the affected link (link kinds)
    };

    /**
     * Draw the configured hardLinkFaults/hardRouterFaults from the
     * fault seed: distinct routers first, then distinct canonical
     * internal links (East/South, both endpoints still live) — plus
     * the churn schedule: churnWaves waves of paired kill/heal
     * events, each wave's victims hash-drawn from the seed and
     * disjoint from the permanent kills (a churn heal must never
     * resurrect a permanently killed entity). Pure function of the
     * seed and @p mesh — every scheduling kernel sees the identical
     * schedule. Call once at network construction.
     */
    void planHardFaults(const Mesh &mesh);

    /** Remove and return every hard kill/heal due at/before @p now.
     *  Kills are recorded in the stats, log and trace immediately;
     *  heal events are recorded by the Network via recordHeal() only
     *  once actually applied (a churn heal whose victim was never
     *  killed — e.g. overlapping waves — is a silent no-op). */
    std::vector<HardFault> takeDueHardFaults(Cycle now);

    /** Record one *applied* heal in the stats, log and trace. */
    void recordHeal(FaultKind kind, NodeId router, int port);

    /** True while any hard fault is still queued. */
    bool hardFaultsPending() const { return !hardFaults_.empty(); }

    // -- draws, called by the link layer at event boundaries --

    /** Fault draw for a flit arriving at (router, in_port). Records
     *  any injected fault in the counters and log. */
    FlitFaults drawFlitFaults(NodeId router, int in_port);

    /** True iff the credit returning to (router, out_port) is lost.
     *  @p salt distinguishes multiple credits on the same port in the
     *  same cycle (index, or VC id for per-VC credit returns). */
    bool drawCreditLoss(NodeId router, int out_port,
                        std::uint64_t salt = 0);

    // -- detection / recovery reporting from the defence layers --

    void
    onCorruptionRejected() // link CRC caught a bad flit
    {
        stats_->faultsDetected += 1;
    }
    void
    onDropDetected() // retry timeout expired: flit declared lost
    {
        stats_->faultsDetected += 1;
    }
    void
    onRetransmission()
    {
        stats_->retransmissions += 1;
    }
    void
    onCreditResync(std::uint64_t credits_restored)
    {
        stats_->creditResyncs += 1;
        stats_->faultsDetected += credits_restored;
    }
    void
    onDecodeMismatch()
    {
        stats_->decodeMismatches += 1;
        stats_->faultsDetected += 1;
    }
    void
    onCorruptedDelivery()
    {
        stats_->corruptedEscapes += 1;
    }
    void
    onDupSuppressed()
    {
        stats_->dupSuppressed += 1;
    }

    /** Every injected fault, in injection order (capped; counters
     *  stay exact past the cap). */
    const std::vector<FaultEvent> &log() const { return log_; }

    /** Capture / restore dynamic state (checkpointing): clock, the
     *  one-shot and hard-fault queues and the log. Draws are pure
     *  functions of (seed, event identity), so no RNG cursor exists —
     *  params come from the construction config (fingerprinted). */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    /** Uniform double in [0, 1) keyed by the event identity. */
    double eventUniform(FaultKind kind, NodeId router, int port,
                        std::uint64_t salt) const;

    /** True + consumes a matching one-shot, if one is due. */
    bool takeOneShot(FaultKind kind, NodeId router, int port,
                     std::uint64_t *flip_mask);

    void record(FaultKind kind, NodeId router, int port,
                std::uint64_t flip_mask);

    static constexpr std::size_t kLogCap = 4096;

    FaultParams params_;
    std::uint64_t seedMix_; ///< pre-mixed seed for event hashing
    Cycle now_ = 0;

    struct OneShot
    {
        FaultKind kind;
        Cycle cycle;
        NodeId router;
        int port;
        std::uint64_t flipMask;
        bool fired = false;
    };
    std::vector<OneShot> oneShots_;
    std::vector<HardFault> hardFaults_; ///< queued fail-stop faults

    FaultStats ownStats_; ///< used until bindStats() rebinds
    FaultStats *stats_ = &ownStats_;
    TraceRecorder *tracer_ = nullptr;
    std::vector<FaultEvent> log_;
};

} // namespace nox

#endif // NOX_NOC_FAULT_INJECTOR_HPP
