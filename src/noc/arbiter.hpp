/**
 * @file
 * Arbiters used by the routers' output allocation logic.
 *
 * The round-robin arbiter is the default everywhere (the paper's
 * fairness discussion assumes a fair arbiter); a fixed-priority and a
 * matrix (least-recently-served) arbiter are provided for ablation
 * studies.
 */

#ifndef NOX_NOC_ARBITER_HPP
#define NOX_NOC_ARBITER_HPP

#include <cstdint>
#include <vector>

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/**
 * Request bit-vector; bit i set means input i requests the output.
 * 64 bits wide so high-radix concentrated-mesh routers (radix
 * 4 + concentration) cannot silently truncate a request.
 */
using RequestMask = std::uint64_t;

/** Widest request vector any arbiter or router may be built with. */
inline constexpr int kMaxMaskBits = 64;

/** Single-input request mask for input @p i. */
constexpr RequestMask
maskBit(int i)
{
    return RequestMask{1} << i;
}

/** Mask with the low @p n bits set (all inputs of an n-wide port). */
constexpr RequestMask
maskAll(int n)
{
    return n >= kMaxMaskBits ? ~RequestMask{0}
                             : (RequestMask{1} << n) - 1;
}

/** Common arbiter interface: pick one set bit of the request mask. */
class Arbiter
{
  public:
    explicit Arbiter(int num_inputs) : numInputs_(num_inputs) {}
    virtual ~Arbiter() = default;

    /**
     * Grant one requesting input, updating internal priority state.
     * @return granted input index, or -1 when no bit is set.
     */
    virtual int grant(RequestMask requests) = 0;

    /** Reset priority state to the post-construction value. */
    virtual void reset() = 0;

    /** Capture / restore priority state (checkpointing). Stateless
     *  arbiters write nothing. */
    virtual void serialize(snap::Writer &w) const;
    virtual void restore(snap::Reader &r);

    /**
     * Deliberately corrupt the priority state so the next grant can
     * differ (test/debug only; seeds a known divergence for the digest
     * ledger / trace_tool bisect machinery). Stateful arbiters also
     * bump a perturb counter that serialize() includes in the
     * canonical bytes: the priority nudge itself can be silently
     * erased by the next uncontested grant (which rewrites the
     * priority state wholesale), and a divergence beacon that can
     * evaporate before the next ledger stride is useless. The counter
     * makes the perturbation a permanent, checkpoint-faithful state
     * difference from the cycle it is applied. Stateless arbiters
     * have nothing to corrupt and keep the no-op default.
     */
    virtual void perturb() {}

    int numInputs() const { return numInputs_; }

  protected:
    int numInputs_;
};

/** Rotating-priority (round-robin) arbiter. */
class RoundRobinArbiter : public Arbiter
{
  public:
    explicit RoundRobinArbiter(int num_inputs);

    int grant(RequestMask requests) override;
    void reset() override;
    void serialize(snap::Writer &w) const override;
    void restore(snap::Reader &r) override;
    void perturb() override;

    /** Input that currently has highest priority (for tests). */
    int pointer() const { return pointer_; }

  private:
    int pointer_;
    std::uint32_t perturbs_ = 0; ///< serialized; see Arbiter::perturb
};

/** Static fixed-priority arbiter (lowest index wins). */
class FixedPriorityArbiter : public Arbiter
{
  public:
    explicit FixedPriorityArbiter(int num_inputs) : Arbiter(num_inputs) {}

    int grant(RequestMask requests) override;
    void reset() override {}
};

/**
 * Matrix arbiter: grants the least-recently-served requester; strong
 * fairness, slightly larger state (n^2 bits in hardware).
 */
class MatrixArbiter : public Arbiter
{
  public:
    explicit MatrixArbiter(int num_inputs);

    int grant(RequestMask requests) override;
    void reset() override;
    void serialize(snap::Writer &w) const override;
    void restore(snap::Reader &r) override;
    void perturb() override;

  private:
    /** prio_[i][j] true when input i beats input j. */
    std::vector<std::vector<bool>> prio_;
    std::uint32_t perturbs_ = 0; ///< serialized; see Arbiter::perturb
};

} // namespace nox

#endif // NOX_NOC_ARBITER_HPP
