/**
 * @file
 * Freelist arena for flit-part blocks.
 *
 * WireFlits travel by value, but an *encoded* WireFlit's PartsVec
 * spills its constituent list to the heap. On the steady-state hot
 * path (NoX collision chains under load) that used to mean one heap
 * allocation per spill and one free per retirement — per-flit churn
 * the paper's nearly-free common case should not pay. The arena keeps
 * retired part blocks on a freelist and hands their capacity back to
 * the next spill, so a warmed-up simulation performs zero heap
 * allocation for flit plumbing.
 *
 * Ownership rules:
 *   - A PartsVec that spills acquire()s a block and owns it until the
 *     PartsVec is destroyed, overwritten, or shrunk back — each of
 *     which release()s the block to the freelist.
 *   - Hard-fault write-offs destroy WireFlits through exactly these
 *     paths, so purged traffic returns its blocks to the arena (see
 *     the lifecycle tests and ARCHITECTURE.md).
 *
 * Released blocks are poisoned: contents are overwritten with
 * kPoisonUid descriptors, and under AddressSanitizer the block's
 * storage is additionally hardware-poisoned so any stale reference
 * into a released block aborts the run.
 *
 * The arena is thread-local (the simulator core is single-threaded;
 * a future sharded core gets one arena per worker for free) and is
 * drained at thread exit, so leak checkers see nothing outstanding.
 */

#ifndef NOX_NOC_FLIT_ARENA_HPP
#define NOX_NOC_FLIT_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nox {

struct FlitDesc;

/** Allocation counters for the flit-part arena (test introspection
 *  and the memory section of the bench reports). */
struct FlitArenaStats
{
    std::uint64_t acquires = 0; ///< blocks handed out
    std::uint64_t releases = 0; ///< blocks returned
    std::uint64_t reuses = 0;   ///< acquires served from the freelist
    std::uint64_t growths = 0;  ///< acquires that had to allocate
                                ///< (freelist was exhausted)

    /** Blocks currently owned by live PartsVecs. */
    std::uint64_t live() const { return acquires - releases; }
};

/** Thread-local freelist of flit-part blocks. */
class FlitArena
{
  public:
    using Block = std::vector<FlitDesc>;

    /** uid written into every descriptor of a released block. */
    static constexpr std::uint64_t kPoisonUid = 0xDEADF11DDEADF11Dull;

    /** The calling thread's arena (constructed on first use). */
    static FlitArena &instance();

    /**
     * Take a block from the freelist (empty, capacity recycled) or
     * allocate a fresh one when the freelist is exhausted. Safe to
     * call at any point in the thread's lifetime; after the arena is
     * torn down it degrades to plain allocation.
     */
    static Block acquire();

    /**
     * Return @p block to the freelist: poison its contents, clear it,
     * and keep its capacity for the next acquire(). After arena
     * teardown the block is simply freed.
     */
    static void release(Block &&block);

    const FlitArenaStats &stats() const { return stats_; }
    void resetStats() { stats_ = FlitArenaStats{}; }

    /** Blocks currently parked on the freelist. */
    std::size_t freeBlocks() const { return free_.size(); }

    /** Free every parked block (tests; also runs at thread exit). */
    void drain();

    FlitArena(const FlitArena &) = delete;
    FlitArena &operator=(const FlitArena &) = delete;

  private:
    FlitArena();
    ~FlitArena();

    Block acquireImpl();
    void releaseImpl(Block &&block);

    std::vector<Block> free_;
    FlitArenaStats stats_;
};

} // namespace nox

#endif // NOX_NOC_FLIT_ARENA_HPP
