/**
 * @file
 * The NoX input-port decode state machine (§2.4, Figure 4).
 *
 * A single decode register R plus the input FIFO suffice to recover
 * all flits from an encoded chain E1=x1^..^xk, E2=x2^..^xk, ..., Ek=xk:
 *
 *   - R empty, head uncoded   -> present head; pop on accept.
 *   - R empty, head encoded   -> latch R=head, pop (one bubble cycle).
 *   - R valid, FIFO non-empty -> present R ^ head (= decodeDiff).
 *       on accept: head encoded -> R=head, pop (chain continues);
 *                  head uncoded -> clear R, KEEP head (it is itself
 *                  the next packet, presented on a later cycle).
 *
 * Used by the NoX router's input ports and by every NIC ejection sink
 * (all architectures may legally receive only uncoded flits; the sink
 * logic is shared so NoX ejection decodes identically to §2.3.2).
 */

#ifndef NOX_NOC_XOR_DECODER_HPP
#define NOX_NOC_XOR_DECODER_HPP

#include <optional>

#include "noc/fifo.hpp"
#include "noc/flit.hpp"

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/** Outcome of one decoder evaluation for the current cycle. */
struct DecodeView
{
    /**
     * Flit presentable to the switch / sink this cycle, if any
     * (nullptr when nothing can be presented). Points into the
     * port's FIFO head or the decoder's scratch slot — NOT owned by
     * the view. Valid until the decoder or its FIFO next mutates
     * (accept/latch/pop/push); copy the FlitDesc before committing
     * anything. A FlitDesc copy per port per cycle is measurable in
     * the always-tick kernel, which is why this is not a value.
     */
    const FlitDesc *presented = nullptr;

    /** True when the cycle is consumed latching an encoded head. */
    bool latchBubble = false;

    /** True when accepting pops a flit from the FIFO (credit freed). */
    bool acceptPops = false;

    /** True when this presentation performed an XOR decode. */
    bool decodedByXor = false;

    /** Integrity outcome of the decode (lenient mode only; strict
     *  mode panics instead). PayloadMismatch still presents a flit —
     *  carrying the corrupted prev^next payload the hardware would
     *  compute. Structural presents nothing: the chain is
     *  unrecoverable and the port wedges. */
    DecodeFault fault = DecodeFault::None;
};

/** Per-port decode register state machine. */
class XorDecoder
{
  public:
    XorDecoder() = default;

    /**
     * Inspect @p fifo and report what this port can do this cycle.
     * Does not mutate state; call latch()/accept() to commit.
     *
     * Strict mode (@p lenient false, the default) panics on decode
     * integrity violations — fault-free operation treats them as
     * simulator bugs. Lenient mode (fault injection active) reports
     * them in DecodeView::fault instead.
     */
    DecodeView view(const FlitFifo &fifo, bool lenient = false) const;

    /**
     * Commit the bubble-latch indicated by DecodeView::latchBubble:
     * pops the encoded head into the decode register. Returns true if
     * a pop happened (a credit must be returned upstream).
     */
    bool latch(FlitFifo &fifo);

    /**
     * Commit acceptance of the presented flit. Returns true if a flit
     * was popped from the FIFO (credit must be returned upstream).
     */
    bool accept(FlitFifo &fifo);

    bool registerValid() const { return reg_.has_value(); }
    const WireFlit &registerValue() const { return *reg_; }
    void reset() { reg_.reset(); }

    /** Capture / restore the decode register (checkpointing). The
     *  scratch slot is per-view derived state and is not captured. */
    void serialize(snap::Writer &w) const;
    void restore(snap::Reader &r);

  private:
    std::optional<WireFlit> reg_;
    /** Backing store for DecodeView::presented when the presented
     *  flit is computed (XOR decode, lenient payload correction)
     *  rather than sitting verbatim in the FIFO head. Mutable: view()
     *  is logically const. */
    mutable FlitDesc scratch_;
};

} // namespace nox

#endif // NOX_NOC_XOR_DECODER_HPP
