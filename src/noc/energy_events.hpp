/**
 * @file
 * Per-router event counters consumed by the power model (§4 of the
 * paper: "a cycle-accurate C++ simulation model is complemented with
 * necessary event counters to form an accurate power model").
 */

#ifndef NOX_NOC_ENERGY_EVENTS_HPP
#define NOX_NOC_ENERGY_EVENTS_HPP

#include <cstdint>

namespace nox {

/** Raw activity counts; the power model assigns energy per event. */
struct EnergyEvents
{
    std::uint64_t bufferWrites = 0;   ///< flits written into input SRAM
    std::uint64_t bufferReads = 0;    ///< flits read from input SRAM
    std::uint64_t xbarInputDrives = 0; ///< input drivers active (per cycle)
    std::uint64_t xbarOutputCycles = 0; ///< output columns active
    std::uint64_t linkFlits = 0;      ///< productive inter-router flits
    std::uint64_t linkWastedCycles = 0; ///< invalid drives on tile links
    std::uint64_t localLinkFlits = 0; ///< NIC-side (inject/eject) flits
    std::uint64_t localLinkWasted = 0; ///< invalid drives on local links
    std::uint64_t arbDecisions = 0;   ///< output arbiter evaluations
    std::uint64_t allocEvals = 0;     ///< Switch-Next allocator evaluations
    std::uint64_t decodeOps = 0;      ///< XOR decode operations (NoX)
    std::uint64_t decodeLatches = 0;  ///< decode-register writes (NoX)
    std::uint64_t maskUpdates = 0;    ///< NoX mask recomputations
    std::uint64_t abortCycles = 0;    ///< NoX multi-flit abort cycles
    std::uint64_t misspecCycles = 0;  ///< speculative collision cycles
    std::uint64_t cycles = 0;         ///< router clock cycles elapsed

    /** Accumulate another counter block into this one. */
    void
    merge(const EnergyEvents &o)
    {
        bufferWrites += o.bufferWrites;
        bufferReads += o.bufferReads;
        xbarInputDrives += o.xbarInputDrives;
        xbarOutputCycles += o.xbarOutputCycles;
        linkFlits += o.linkFlits;
        linkWastedCycles += o.linkWastedCycles;
        localLinkFlits += o.localLinkFlits;
        localLinkWasted += o.localLinkWasted;
        arbDecisions += o.arbDecisions;
        allocEvals += o.allocEvals;
        decodeOps += o.decodeOps;
        decodeLatches += o.decodeLatches;
        maskUpdates += o.maskUpdates;
        abortCycles += o.abortCycles;
        misspecCycles += o.misspecCycles;
        cycles += o.cycles;
    }
};

/** Counter delta between two snapshots (later - earlier). */
inline EnergyEvents
diff(const EnergyEvents &later, const EnergyEvents &earlier)
{
    EnergyEvents d;
    d.bufferWrites = later.bufferWrites - earlier.bufferWrites;
    d.bufferReads = later.bufferReads - earlier.bufferReads;
    d.xbarInputDrives = later.xbarInputDrives - earlier.xbarInputDrives;
    d.xbarOutputCycles =
        later.xbarOutputCycles - earlier.xbarOutputCycles;
    d.linkFlits = later.linkFlits - earlier.linkFlits;
    d.linkWastedCycles =
        later.linkWastedCycles - earlier.linkWastedCycles;
    d.localLinkFlits = later.localLinkFlits - earlier.localLinkFlits;
    d.localLinkWasted = later.localLinkWasted - earlier.localLinkWasted;
    d.arbDecisions = later.arbDecisions - earlier.arbDecisions;
    d.allocEvals = later.allocEvals - earlier.allocEvals;
    d.decodeOps = later.decodeOps - earlier.decodeOps;
    d.decodeLatches = later.decodeLatches - earlier.decodeLatches;
    d.maskUpdates = later.maskUpdates - earlier.maskUpdates;
    d.abortCycles = later.abortCycles - earlier.abortCycles;
    d.misspecCycles = later.misspecCycles - earlier.misspecCycles;
    d.cycles = later.cycles - earlier.cycles;
    return d;
}

} // namespace nox

#endif // NOX_NOC_ENERGY_EVENTS_HPP
