#include "noc/routing.hpp"

#include "common/log.hpp"

namespace nox {

int
dorRoute(const Mesh &mesh, NodeId current, NodeId dest)
{
    NOX_ASSERT(dest >= 0 && dest < mesh.numNodes(),
               "route to invalid destination ", dest);
    const Coord c = mesh.coordOf(current);
    const Coord d = mesh.coordOf(mesh.routerOf(dest));
    if (c.x < d.x)
        return kPortEast;
    if (c.x > d.x)
        return kPortWest;
    if (c.y < d.y)
        return kPortSouth;
    if (c.y > d.y)
        return kPortNorth;
    return mesh.localPortOf(dest);
}

int
dorRouteYX(const Mesh &mesh, NodeId current, NodeId dest)
{
    NOX_ASSERT(dest >= 0 && dest < mesh.numNodes(),
               "route to invalid destination ", dest);
    const Coord c = mesh.coordOf(current);
    const Coord d = mesh.coordOf(mesh.routerOf(dest));
    if (c.y < d.y)
        return kPortSouth;
    if (c.y > d.y)
        return kPortNorth;
    if (c.x < d.x)
        return kPortEast;
    if (c.x > d.x)
        return kPortWest;
    return mesh.localPortOf(dest);
}

} // namespace nox
