/**
 * @file
 * 2-D mesh topology helpers (the paper's 8x8 mesh, Table 1).
 */

#ifndef NOX_NOC_TOPOLOGY_HPP
#define NOX_NOC_TOPOLOGY_HPP

#include "noc/types.hpp"

namespace nox {

/** Integer tile coordinates within the mesh. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &) const = default;
};

/**
 * A width x height 2-D mesh of routers, each concentrating
 * `concentration` terminal nodes (the paper's §8 future-work
 * direction: higher-radix topologies such as the concentrated mesh
 * of Balfour & Dally [1]). Concentration 1 is the paper's baseline
 * 8x8 mesh. Routers are numbered row-major; terminal nodes are
 * numbered router-major (node = router * concentration + terminal).
 */
class Mesh
{
  public:
    Mesh(int width, int height, int concentration = 1);

    int width() const { return width_; }
    int height() const { return height_; }
    int concentration() const { return concentration_; }
    int numRouters() const { return width_ * height_; }
    int numNodes() const { return numRouters() * concentration_; }

    /** Router radix: four directions plus the local terminals. */
    int radix() const { return meshRadix(concentration_); }

    /** Router hosting a terminal node. */
    NodeId routerOf(NodeId node) const;

    /** Local port index of a terminal node at its router. */
    int localPortOf(NodeId node) const;

    /** Terminal node attached to @p router 's local port @p port. */
    NodeId terminalAt(NodeId router, int port) const;

    Coord coordOf(NodeId router) const;
    NodeId routerAt(Coord c) const;
    bool contains(Coord c) const;

    /** Terminal node (concentration-1 convenience: node == router). */
    NodeId nodeAt(Coord c) const;

    /**
     * Neighbour of @p router through mesh direction @p port
     * (kPortNorth..kPortWest). Returns kInvalidNode at an edge.
     */
    NodeId neighbor(NodeId router, int port) const;

    /** Port on the neighbour that faces back toward @p port. */
    static int oppositePort(int port);

    /** Minimal router-hop count between two terminal nodes. */
    int hopDistance(NodeId a, NodeId b) const;

  private:
    int width_;
    int height_;
    int concentration_;
};

} // namespace nox

#endif // NOX_NOC_TOPOLOGY_HPP
