#include "noc/types.hpp"

#include <cstring>

#include "common/log.hpp"

namespace nox {

const char *
portName(int port)
{
    switch (port) {
      case kPortNorth: return "N";
      case kPortEast: return "E";
      case kPortSouth: return "S";
      case kPortWest: return "W";
      default: return port >= kPortLocal ? "L" : "?";
    }
}

const char *
archName(RouterArch arch)
{
    switch (arch) {
      case RouterArch::NonSpeculative: return "NonSpec";
      case RouterArch::SpecFast: return "Spec-Fast";
      case RouterArch::SpecAccurate: return "Spec-Accurate";
      case RouterArch::Nox: return "NoX";
    }
    return "?";
}

RouterArch
parseArch(const char *name)
{
    if (!std::strcmp(name, "nonspec") || !std::strcmp(name, "NonSpec"))
        return RouterArch::NonSpeculative;
    if (!std::strcmp(name, "specfast") || !std::strcmp(name, "Spec-Fast"))
        return RouterArch::SpecFast;
    if (!std::strcmp(name, "specaccurate") ||
        !std::strcmp(name, "Spec-Accurate"))
        return RouterArch::SpecAccurate;
    if (!std::strcmp(name, "nox") || !std::strcmp(name, "NoX"))
        return RouterArch::Nox;
    fatal("unknown router architecture: '", name,
          "' (expected nonspec|specfast|specaccurate|nox)");
}

} // namespace nox
