/**
 * @file
 * Snapshot codecs for the small value types shared across the NoC
 * layer: flits, FIFOs, energy counters and the aggregate statistics
 * blocks. Components compose these from their own serialize()/
 * restore() methods so every field is written exactly once, in one
 * place, in a fixed order.
 */

#ifndef NOX_NOC_SNAPSHOT_CODEC_HPP
#define NOX_NOC_SNAPSHOT_CODEC_HPP

#include "noc/energy_events.hpp"
#include "noc/fifo.hpp"
#include "noc/flit.hpp"
#include "noc/network_stats.hpp"
#include "snapshot/io.hpp"

namespace nox::snap {

void writeFlitDesc(Writer &w, const FlitDesc &d);
FlitDesc readFlitDesc(Reader &r);

void writeWireFlit(Writer &w, const WireFlit &f);
WireFlit readWireFlit(Reader &r);

/** Capacity is construction geometry; read checks it and throws on
 *  mismatch. The restored FIFO holds the same flits in the same
 *  order (physical head position is irrelevant to behaviour). */
void writeFlitFifo(Writer &w, const FlitFifo &f);
void readFlitFifo(Reader &r, FlitFifo &f);

void writeEnergyEvents(Writer &w, const EnergyEvents &e);
EnergyEvents readEnergyEvents(Reader &r);

void writeFaultStats(Writer &w, const FaultStats &s);
void readFaultStats(Reader &r, FaultStats &s);

void writeNetworkStats(Writer &w, const NetworkStats &s);
void readNetworkStats(Reader &r, NetworkStats &s);

} // namespace nox::snap

#endif // NOX_NOC_SNAPSHOT_CODEC_HPP
