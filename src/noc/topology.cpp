#include "noc/topology.hpp"

#include <cstdlib>

#include "common/log.hpp"

namespace nox {

Mesh::Mesh(int width, int height, int concentration)
    : width_(width), height_(height), concentration_(concentration)
{
    NOX_ASSERT(width > 0 && height > 0, "mesh dimensions must be > 0");
    NOX_ASSERT(concentration >= 1 && concentration <= 16,
               "unsupported concentration factor");
}

NodeId
Mesh::routerOf(NodeId node) const
{
    NOX_ASSERT(node >= 0 && node < numNodes(), "node out of range");
    return node / concentration_;
}

int
Mesh::localPortOf(NodeId node) const
{
    NOX_ASSERT(node >= 0 && node < numNodes(), "node out of range");
    return kPortLocal + static_cast<int>(node % concentration_);
}

NodeId
Mesh::terminalAt(NodeId router, int port) const
{
    NOX_ASSERT(router >= 0 && router < numRouters(),
               "router out of range");
    NOX_ASSERT(port >= kPortLocal && port < radix(),
               "not a local port: ", port);
    return router * concentration_ + (port - kPortLocal);
}

Coord
Mesh::coordOf(NodeId router) const
{
    NOX_ASSERT(router >= 0 && router < numRouters(),
               "node out of range");
    return {router % width_, router / width_};
}

NodeId
Mesh::routerAt(Coord c) const
{
    NOX_ASSERT(contains(c), "coordinate outside mesh");
    return c.y * width_ + c.x;
}

NodeId
Mesh::nodeAt(Coord c) const
{
    return routerAt(c) * concentration_;
}

bool
Mesh::contains(Coord c) const
{
    return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

NodeId
Mesh::neighbor(NodeId router, int port) const
{
    Coord c = coordOf(router);
    switch (port) {
      case kPortNorth: c.y -= 1; break;
      case kPortSouth: c.y += 1; break;
      case kPortEast: c.x += 1; break;
      case kPortWest: c.x -= 1; break;
      default:
        panic("neighbor() needs a mesh direction, got port ", port);
    }
    return contains(c) ? routerAt(c) : kInvalidNode;
}

int
Mesh::oppositePort(int port)
{
    switch (port) {
      case kPortNorth: return kPortSouth;
      case kPortSouth: return kPortNorth;
      case kPortEast: return kPortWest;
      case kPortWest: return kPortEast;
      default:
        panic("oppositePort() needs a mesh direction, got ", port);
    }
}

int
Mesh::hopDistance(NodeId a, NodeId b) const
{
    const Coord ca = coordOf(routerOf(a));
    const Coord cb = coordOf(routerOf(b));
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
}

} // namespace nox
