/**
 * @file
 * Interfaces decoupling traffic generation from the network model.
 */

#ifndef NOX_NOC_TRAFFIC_SOURCE_HPP
#define NOX_NOC_TRAFFIC_SOURCE_HPP

#include <cstddef>

#include "noc/types.hpp"

namespace nox {

namespace snap {
class Writer;
class Reader;
} // namespace snap

/** Sink through which traffic sources create packets. */
class PacketInjector
{
  public:
    virtual ~PacketInjector() = default;

    /**
     * Create a packet of @p num_flits flits from @p src to @p dst with
     * creation timestamp @p now and queue it at the source NIC.
     * @return the new packet's id.
     */
    virtual PacketId injectPacket(NodeId src, NodeId dst, int num_flits,
                                  Cycle now, TrafficClass cls) = 0;

    /** Flits currently waiting in @p node's source queue. */
    virtual std::size_t sourceQueueFlits(NodeId node) const = 0;
};

/**
 * A per-node packet generator, ticked once per network cycle before
 * injection is evaluated.
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    virtual void tick(Cycle now, PacketInjector &inj) = 0;

    /** Capture / restore generator state — RNG cursors, burst phase,
     *  replay position (checkpointing). Stateless sources keep the
     *  empty defaults. */
    virtual void serialize(snap::Writer &w) const { (void)w; }
    virtual void restore(snap::Reader &r) { (void)r; }
};

} // namespace nox

#endif // NOX_NOC_TRAFFIC_SOURCE_HPP
