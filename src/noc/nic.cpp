#include "noc/nic.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "noc/fault_injector.hpp"
#include "noc/snapshot_codec.hpp"
#include "noc/transport.hpp"

namespace nox {

Nic::Nic(NodeId node, int sink_buffer_depth)
    : node_(node), sinkFifo_(static_cast<std::size_t>(sink_buffer_depth))
{
    injectQueue_.resize(1);
}

void
Nic::connectRouter(Router *router, int local_port)
{
    NOX_ASSERT(router, "null router");
    router_ = router;
    localPort_ = local_port;

    // Our sink FIFO is the downstream buffer of the router's local
    // output; freed source-queue slots come back from its local input.
    Router::FlitTarget ft;
    ft.nic = this;
    router->connectOutput(local_port, ft,
                          static_cast<int>(sinkFifo_.capacity()));

    Router::CreditTarget ct;
    ct.nic = this;
    router->connectInputCredit(local_port, ct);

    const int vcs = router->vcCount();
    NOX_ASSERT(sourceQueueFlits() == 0,
               "NIC rewired with packets queued");
    injectQueue_.resize(static_cast<std::size_t>(vcs));
    injectCredits_.assign(
        static_cast<std::size_t>(vcs),
        static_cast<int>(router->inputFifo(local_port).capacity()));
    stagedInjectCredits_.assign(static_cast<std::size_t>(vcs), 0);
}

void
Nic::evaluateInject(Cycle now)
{
    if (dead_)
        return;
    // One flit per cycle into the router's local port; round-robin
    // across the per-VC source queues with available credits.
    const int vcs = static_cast<int>(injectQueue_.size());
    for (int i = 0; i < vcs; ++i) {
        // Wrap without the modulo: a runtime integer division per NIC
        // per cycle is measurable in the always-tick kernel.
        int lane = injectRr_ + i;
        if (lane >= vcs)
            lane -= vcs;
        const auto vc = static_cast<std::size_t>(lane);
        if (injectQueue_[vc].empty() || injectCredits_[vc] <= 0)
            continue;
        FlitDesc d = injectQueue_[vc].front();
        injectQueue_[vc].pop_front();
        --injectCredits_[vc];
        d.injectCycle = now;
        trace(TraceEventKind::FlitInject, d.uid,
              static_cast<std::uint32_t>(d.seq));
        if (prov_)
            prov_->onInject(d.uid, router_->id(), now);
        router_->stageFlit(localPort_, WireFlit::fromDesc(d));
        energy_.localLinkFlits += 1;
        injectRr_ = lane + 1 == vcs ? 0 : lane + 1;
        return;
    }
}

void
Nic::evaluateSink(Cycle now)
{
    if (dead_)
        return;
    // Idle sink (no buffered wire values, no open decode chain): skip
    // even the decode-view construction — on quiet nodes this is the
    // whole per-cycle cost of the ejection side.
    if (sinkFifo_.empty() && !decoder_.registerValid())
        return;
    const DecodeView v = decoder_.view(sinkFifo_, faults_ != nullptr);
    if (v.latchBubble) {
        if (prov_) {
            // The cycle is consumed latching an encoded head: bill the
            // chain constituent already accepted toward this sink (the
            // location guard skips constituents still upstream).
            for (const FlitDesc &d : sinkFifo_.front().parts)
                prov_->onStall(d.uid, LatencyComponent::XorRecovery,
                               node_, true, now);
        }
        const int vc = sinkFifo_.front().vc;
        decoder_.latch(sinkFifo_);
        energy_.bufferReads += 1;
        energy_.decodeLatches += 1;
        router_->stageCreditVc(localPort_, vc);
        return;
    }
    if (!v.presented) {
        if (prov_ && decoder_.registerValid()) {
            // Decode register loaded but the chain's next wire value
            // has not arrived: the flit it will recover waits on XOR
            // machinery, not on the link.
            for (const FlitDesc &d : decoder_.registerValue().parts)
                prov_->onStall(d.uid, LatencyComponent::XorRecovery,
                               node_, true, now);
        }
        return;
    }
    if (v.decodedByXor) {
        energy_.decodeOps += 1;
        trace(TraceEventKind::XorDecode, v.presented->uid);
    }
    // Mid-chain corruption surfaces here when the NoX ejection port
    // decodes it (counted once, at acceptance).
    if (v.fault == DecodeFault::PayloadMismatch) {
        faults_->onDecodeMismatch();
        trace(TraceEventKind::DecodeFault, v.presented->uid);
        if (tracer_)
            tracer_->triggerFlightDump("decode-fault", {node_});
    }
    // Copy before accept(): the view points into the FIFO head /
    // decoder scratch, both invalidated by the pop.
    const FlitDesc d = *v.presented;
    const int vc = sinkFifo_.empty() ? 0 : sinkFifo_.front().vc;
    const bool popped = decoder_.accept(sinkFifo_);
    if (popped) {
        energy_.bufferReads += 1;
        router_->stageCreditVc(localPort_, vc);
    }
    deliver(d, now);
}

void
Nic::deliver(const FlitDesc &flit, Cycle now)
{
    NOX_ASSERT(flit.dest == node_, "flit delivered to wrong node: dest ",
               flit.dest, " at ", node_);
    // Exactly-once door: a flit of a logical packet this flow already
    // completed (or abandoned) is a duplicate — some other attempt won
    // the race, or the retry budget ran out. Dropped before touching
    // arrival, stats or listener state, a straggler can never cause a
    // second completion.
    if (transport_ && transport_->duplicateFlit(flit)) {
        faults_->onDupSuppressed();
        trace(TraceEventKind::DupSuppress, flit.uid,
              packetAttempt(flit.packet));
        if (prov_)
            prov_->forgetFlit(flit.uid);
        return;
    }
    if (flit.payload != expectedPayload(flit.packet, flit.seq)) {
        // End-to-end payload check: the last line of defence. Under
        // fault injection a corrupted delivery is an accounted escape
        // (it can only happen with link protection off); without an
        // injector it is a simulator bug, as before.
        NOX_ASSERT(faults_ != nullptr,
                   "payload corruption detected at sink for packet ",
                   flit.packet, " flit ", flit.seq);
        faults_->onCorruptedDelivery();
        trace(TraceEventKind::CorruptEscape, flit.uid,
              static_cast<std::uint32_t>(flit.seq));
        if (tracer_)
            tracer_->triggerFlightDump("corrupt-escape", {node_});
    }

    trace(TraceEventKind::FlitEject, flit.uid,
          static_cast<std::uint32_t>(flit.seq));
    if (listener_)
        listener_->onFlitDelivered(node_, flit, now);

    // Single-flit packets complete on arrival: no partial-arrival
    // record to create and immediately erase. Same observable event
    // order as the general path below.
    if (flit.packetSize == 1) {
        if (prov_)
            prov_->onDelivered(flit, now, true);
        if (listener_)
            listener_->onPacketCompleted(node_, flit, flit.injectCycle,
                                         now);
        return;
    }

    Arrival &a = arrived_[flit.packet];
    if (a.count == 0 || flit.injectCycle < a.headInject)
        a.headInject = flit.injectCycle;
    a.count += 1;
    NOX_ASSERT(a.count <= flit.packetSize, "packet ", flit.packet,
               " delivered more flits than its size");
    if (prov_)
        prov_->onDelivered(flit, now, a.count == flit.packetSize);
    if (a.count == flit.packetSize) {
        const Cycle head_inject = a.headInject;
        arrived_.erase(flit.packet);
        if (listener_)
            listener_->onPacketCompleted(node_, flit, head_inject,
                                         now);
    }
}

void
Nic::commit()
{
    if (stagedSinkFlit_) {
        energy_.bufferWrites += 1;
        sinkFifo_.push(std::move(*stagedSinkFlit_));
        stagedSinkFlit_.reset();
    }
    for (std::size_t v = 0; v < injectCredits_.size(); ++v) {
        injectCredits_[v] += stagedInjectCredits_[v];
        stagedInjectCredits_[v] = 0;
    }
}

void
Nic::enqueuePacket(const std::vector<FlitDesc> &flits)
{
    NOX_ASSERT(!flits.empty(), "empty packet");
    auto vc = static_cast<std::size_t>(flits.front().vc);
    NOX_ASSERT(vc < injectQueue_.size(), "packet VC out of range");
    for (const auto &f : flits)
        injectQueue_[vc].push_back(f);
    wake();
}

void
Nic::stageSinkFlit(WireFlit &&flit)
{
    NOX_ASSERT(!stagedSinkFlit_,
               "two flits staged at one sink in one cycle");
    stagedSinkFlit_ = std::move(flit);
    wake();
}

void
Nic::stageInjectCredit(int count, int vc)
{
    NOX_ASSERT(static_cast<std::size_t>(vc) <
                   stagedInjectCredits_.size(),
               "credit VC out of range");
    stagedInjectCredits_[static_cast<std::size_t>(vc)] += count;
    wake();
}

void
Nic::killAttached(std::vector<FlitDesc> &lost)
{
    if (dead_)
        return;
    dead_ = true;
    NOX_ASSERT(!stagedSinkFlit_, "hard fault applied mid-cycle");
    for (auto &q : injectQueue_) {
        for (const FlitDesc &d : q)
            lost.push_back(d);
        q.clear();
    }
    while (!sinkFifo_.empty()) {
        const WireFlit w = sinkFifo_.pop();
        for (const FlitDesc &d : w.parts)
            lost.push_back(d);
    }
    if (decoder_.registerValid()) {
        for (const FlitDesc &d : decoder_.registerValue().parts)
            lost.push_back(d);
        decoder_.reset();
    }
    std::fill(injectCredits_.begin(), injectCredits_.end(), 0);
    std::fill(stagedInjectCredits_.begin(),
              stagedInjectCredits_.end(), 0);
    arrived_.clear();
}

void
Nic::purgeCondemned(const Router::FlitCondemned &condemned,
                    std::vector<FlitDesc> &removed)
{
    if (dead_)
        return;
    NOX_ASSERT(!stagedSinkFlit_, "hard-fault purge ran mid-cycle");

    // Source queues: drop condemned flits in place (they never left
    // the NIC, so no credits are involved).
    for (auto &q : injectQueue_) {
        std::deque<FlitDesc> keep;
        for (const FlitDesc &d : q) {
            if (condemned(router_->id(), localPort_, d))
                removed.push_back(d);
            else
                keep.push_back(d);
        }
        q.swap(keep);
    }

    // Ejection side: like a NoX input port, the FIFO holds wire
    // values. A chain still open here will never be continued after
    // the rebuild reset the upstream output masks — drop the
    // undecodable open suffix (register and/or trailing encoded
    // values) exactly as a NoX input port does.
    {
        const std::size_t n = sinkFifo_.size();
        std::vector<WireFlit> entries;
        entries.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            entries.push_back(sinkFifo_.pop());
        bool open = decoder_.registerValid();
        std::ptrdiff_t start = open ? -1 : 0; // -1 = the register
        for (std::size_t i = 0; i < n; ++i) {
            if (open) {
                if (!entries[i].encoded)
                    open = false;
            } else if (entries[i].encoded) {
                open = true;
                start = static_cast<std::ptrdiff_t>(i);
            }
        }
        if (open) {
            if (start < 0) {
                for (const FlitDesc &d :
                     decoder_.registerValue().parts)
                    removed.push_back(d);
                decoder_.reset();
                start = 0;
            }
            for (std::size_t i = static_cast<std::size_t>(start);
                 i < n; ++i) {
                for (const FlitDesc &d : entries[i].parts)
                    removed.push_back(d);
                router_->stageCreditVc(localPort_, entries[i].vc);
            }
            entries.resize(static_cast<std::size_t>(start));
        }
        for (WireFlit &w : entries)
            sinkFifo_.push(std::move(w));
    }

    // The remaining chains are complete, but any condemned
    // constituent still poisons every value it appears in —
    // contamination drops the whole sink contents.
    bool contaminated = false;
    if (decoder_.registerValid()) {
        for (const FlitDesc &d : decoder_.registerValue().parts)
            contaminated = contaminated || condemned(router_->id(), localPort_, d);
    }
    const std::size_t n = sinkFifo_.size();
    for (std::size_t i = 0; i < n && !contaminated; ++i) {
        WireFlit w = sinkFifo_.pop();
        for (const FlitDesc &d : w.parts)
            contaminated = contaminated || condemned(router_->id(), localPort_, d);
        sinkFifo_.push(std::move(w));
    }
    if (!contaminated)
        return;
    if (decoder_.registerValid()) {
        for (const FlitDesc &d : decoder_.registerValue().parts)
            removed.push_back(d);
        decoder_.reset();
    }
    while (!sinkFifo_.empty()) {
        const WireFlit w = sinkFifo_.pop();
        for (const FlitDesc &d : w.parts)
            removed.push_back(d);
        // The slot frees up: its credit goes back to the (live)
        // router exactly as if the value had been accepted.
        router_->stageCreditVc(localPort_, w.vc);
    }
}

std::vector<std::pair<PacketId, std::uint32_t>>
Nic::partialPackets() const
{
    std::vector<std::pair<PacketId, std::uint32_t>> out;
    out.reserve(arrived_.size());
    for (const auto &[packet, arrival] : arrived_)
        out.emplace_back(packet, arrival.count);
    std::sort(out.begin(), out.end());
    return out;
}

bool
Nic::quiescent() const
{
    for (const auto &q : injectQueue_) {
        if (!q.empty())
            return false;
    }
    for (int staged : stagedInjectCredits_) {
        if (staged != 0)
            return false;
    }
    return sinkFifo_.empty() && !stagedSinkFlit_ &&
           !decoder_.registerValid();
}

void
Nic::serialize(snap::Writer &w, snap::Scope scope) const
{
    NOX_ASSERT(!stagedSinkFlit_, "serialize with a staged sink flit");
    for (int staged : stagedInjectCredits_)
        NOX_ASSERT(staged == 0, "serialize with staged credits");
    snap::tag(w, snap::fourcc("NIC_"));
    w.i32(node_);
    w.boolean(dead_);
    w.u64(injectQueue_.size()); // VC count: structural cross-check
    for (const auto &q : injectQueue_) {
        w.u64(q.size());
        for (const FlitDesc &d : q)
            snap::writeFlitDesc(w, d);
    }
    for (int c : injectCredits_)
        w.i32(c);
    w.i32(injectRr_);
    snap::writeFlitFifo(w, sinkFifo_);
    decoder_.serialize(w);
    // Sorted keys: unordered_map iteration order must not leak into
    // the byte stream.
    std::vector<PacketId> keys;
    keys.reserve(arrived_.size());
    for (const auto &[id, a] : arrived_)
        keys.push_back(id);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (PacketId id : keys) {
        const Arrival &a = arrived_.at(id);
        w.u64(id);
        w.u32(a.count);
        w.u64(a.headInject);
    }
    if (scope == snap::Scope::Snapshot)
        snap::writeEnergyEvents(w, energy_);
}

void
Nic::restore(snap::Reader &r)
{
    NOX_ASSERT(!stagedSinkFlit_, "restore with a staged sink flit");
    snap::checkTag(r, snap::fourcc("NIC_"));
    if (r.i32() != node_)
        r.fail("NIC node id mismatch (stream desync)");
    dead_ = r.boolean();
    if (r.u64() != injectQueue_.size())
        r.fail("NIC VC count mismatch (wrong geometry)");
    for (auto &q : injectQueue_) {
        q.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            q.push_back(snap::readFlitDesc(r));
    }
    for (int &c : injectCredits_)
        c = r.i32();
    injectRr_ = r.i32();
    snap::readFlitFifo(r, sinkFifo_);
    decoder_.restore(r);
    arrived_.clear();
    const std::uint64_t narr = r.u64();
    for (std::uint64_t i = 0; i < narr; ++i) {
        const PacketId id = r.u64();
        Arrival &a = arrived_[id];
        a.count = r.u32();
        a.headInject = r.u64();
    }
    energy_ = snap::readEnergyEvents(r);
}

} // namespace nox
