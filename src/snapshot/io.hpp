/**
 * @file
 * Byte-stream primitives for deterministic snapshots.
 *
 * A snapshot is a flat little-endian byte stream: every stateful
 * component appends its fields to a Writer in a fixed order and reads
 * them back from a Reader in the same order. There is no in-stream
 * schema — the component code *is* the schema — so the format is
 * guarded three ways: a CRC-32C per section (see file.hpp), fourcc
 * sanity tags at component boundaries (checkTag), and strict bounds /
 * value checks in the Reader (truncation, oversized strings and
 * non-0/1 booleans all throw instead of yielding garbage).
 *
 * All failures throw SnapshotError; callers at the load boundary
 * translate that into a structured error message. Writers never fail.
 */

#ifndef NOX_SNAPSHOT_IO_HPP
#define NOX_SNAPSHOT_IO_HPP

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace nox::snap {

/**
 * What a serialize() pass is feeding. The byte layout is identical in
 * both scopes except that Digest omits per-process / per-configuration
 * state that is deliberately allowed to differ between two equivalent
 * trajectories — today that is the EnergyEvents counters, which the
 * activity kernel clock-gates for retired components. Snapshot scope
 * must stay lossless (restore() reads every field back); Digest scope
 * exists so the state-digest ledger hashes only the canonical,
 * kernel-independent trajectory.
 */
enum class Scope : std::uint8_t
{
    Snapshot,
    Digest,
};

/** Any malformed-snapshot condition: truncation, bad tag, bad value. */
class SnapshotError : public std::runtime_error
{
  public:
    explicit SnapshotError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * CRC-32C (Castagnoli) over an arbitrary buffer — the same polynomial
 * and bit order as the link-level wireChecksum() in noc/flit.cpp, so
 * the snapshot integrity check reuses hardware-verified math.
 */
std::uint32_t crc32c(const std::uint8_t *data, std::size_t len);

/** Little-endian append-only byte sink. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(v); }

    void
    u16(std::uint16_t v)
    {
        le(static_cast<std::uint64_t>(v), 2);
    }

    void
    u32(std::uint32_t v)
    {
        le(static_cast<std::uint64_t>(v), 4);
    }

    void u64(std::uint64_t v) { le(v, 8); }

    void
    i32(std::int32_t v)
    {
        u32(static_cast<std::uint32_t>(v));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    /** Bit-exact double round-trip (NaN/±inf safe). */
    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void boolean(bool v) { u8(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    void
    bytes(const std::uint8_t *data, std::size_t len)
    {
        buf_.insert(buf_.end(), data, data + len);
    }

    const std::vector<std::uint8_t> &data() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

    /** Drop the contents but keep the capacity — the digest ledger
     *  reuses one scratch Writer across components so the steady-state
     *  hash path never allocates. */
    void clear() { buf_.clear(); }

  private:
    void
    le(std::uint64_t v, int nbytes)
    {
        for (int i = 0; i < nbytes; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian byte source over a borrowed buffer. */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        return static_cast<std::uint16_t>(le(2));
    }

    std::uint32_t
    u32()
    {
        return static_cast<std::uint32_t>(le(4));
    }

    std::uint64_t u64() { return le(8); }

    std::int32_t
    i32()
    {
        return static_cast<std::int32_t>(u32());
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    /** Strict: any byte other than 0/1 means the stream desynced. */
    bool
    boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            fail("boolean byte out of range (stream desync)");
        return v != 0;
    }

    std::string
    str()
    {
        const std::uint64_t len = u64();
        if (len > remaining())
            fail("string length exceeds remaining bytes");
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(len));
        pos_ += static_cast<std::size_t>(len);
        return s;
    }

    void
    bytes(std::uint8_t *out, std::size_t len)
    {
        need(len);
        std::memcpy(out, data_ + pos_, len);
        pos_ += len;
    }

    std::size_t remaining() const { return size_ - pos_; }
    std::size_t offset() const { return pos_; }

    /** Call once a section is fully consumed: trailing bytes are
     *  just as much a desync as missing ones. */
    void
    expectEnd() const
    {
        if (pos_ != size_) {
            throw SnapshotError(
                "section has " + std::to_string(size_ - pos_) +
                " unconsumed trailing byte(s) (stream desync)");
        }
    }

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw SnapshotError(why + " at offset " +
                            std::to_string(pos_) + " of " +
                            std::to_string(size_));
    }

  private:
    void
    need(std::size_t n) const
    {
        if (n > remaining())
            fail("truncated stream (need " + std::to_string(n) +
                 " byte(s))");
    }

    std::uint64_t
    le(int nbytes)
    {
        need(static_cast<std::size_t>(nbytes));
        std::uint64_t v = 0;
        for (int i = 0; i < nbytes; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_ + i])
                 << (8 * i);
        pos_ += static_cast<std::size_t>(nbytes);
        return v;
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Pack a 4-character tag ("NETW") into its little-endian u32. */
constexpr std::uint32_t
fourcc(const char (&s)[5])
{
    return static_cast<std::uint32_t>(
        static_cast<std::uint8_t>(s[0]) |
        (static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(s[1]))
         << 8) |
        (static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(s[2]))
         << 16) |
        (static_cast<std::uint32_t>(
             static_cast<std::uint8_t>(s[3]))
         << 24));
}

/** Render a fourcc back to text for error messages. */
std::string fourccName(std::uint32_t tag);

/** Write a component-boundary sanity tag. */
inline void
tag(Writer &w, std::uint32_t t)
{
    w.u32(t);
}

/** Check a component-boundary sanity tag; throws on mismatch. */
void checkTag(Reader &r, std::uint32_t expect);

} // namespace nox::snap

#endif // NOX_SNAPSHOT_IO_HPP
